(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6–§7) and runs Bechamel micro-benchmarks of the
   operations each figure's cost model is built on.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --only fig7  -- one figure
     dune exec bench/main.exe -- --skip-micro -- figures only
*)

module Figures = Mycelium_costmodel.Figures
module Device_compute = Mycelium_costmodel.Device_compute
module Rng = Mycelium_util.Rng
module Params = Mycelium_bgv.Params
module Bgv = Mycelium_bgv.Bgv
module Ntt = Mycelium_math.Ntt
module Sha256 = Mycelium_crypto.Sha256
module Chacha20 = Mycelium_crypto.Chacha20
module Elgamal = Mycelium_crypto.Elgamal
module Merkle = Mycelium_crypto.Merkle
module Onion = Mycelium_mixnet.Onion
module Shamir = Mycelium_secrets.Shamir
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Runtime = Mycelium_core.Runtime
module Fault_plan = Mycelium_faults.Fault_plan
module Injector = Mycelium_faults.Injector

let only =
  let rec find = function
    | "--only" :: v :: _ -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let skip_micro = Array.exists (fun a -> a = "--skip-micro") Sys.argv

let wants id = match only with None -> true | Some o -> o = id

let emit fig = if wants fig.Figures.id then print_string (Figures.render fig)

(* ------------------------------------------------------------------ *)
(* Figures from the closed-form cost model                             *)
(* ------------------------------------------------------------------ *)

let () =
  print_endline "Mycelium evaluation reproduction (SOSP 2021, Roth et al.)";
  print_endline "==========================================================";
  List.iter emit (Figures.all ())

(* ------------------------------------------------------------------ *)
(* Measurement-backed figures                                          *)
(* ------------------------------------------------------------------ *)

let () =
  if wants "sec6_4" then begin
    let costs = Device_compute.measure (Rng.create 1L) in
    emit (Figures.sec6_4_device_costs costs)
  end;
  if wants "fig5-mc" then emit (Figures.fig5_monte_carlo ~n:400 ~seed:7L);
  if wants "sec7" then emit (Figures.sec7_baseline ~n:20_000 ~seed:11L)

(* ------------------------------------------------------------------ *)
(* Chaos: end-to-end query cost under the §6.3 fault model             *)
(* ------------------------------------------------------------------ *)

(* Runs the same HISTO query through a fault-free pipeline and through
   one degrading under a fixed fault plan (10% churn, 10% drops, one
   crashed committee member, one aggregator restart), and reports the
   wall-clock cost of graceful degradation plus the deterministic
   degradation report.  Replay with `--only chaos`. *)
let run_chaos () =
  let graph seed =
    let rng = Rng.create seed in
    let g =
      Cg.generate
        { Cg.default_config with Cg.population = 16; degree_bound = 4; extra_contact_rate = 1.5 }
        rng
    in
    let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
    g
  in
  let config faults =
    { Runtime.default_config with
      Runtime.params = Params.test_small;
      degree_bound = 4;
      seed = 5L;
      faults
    }
  in
  let time_query faults =
    let sys = Runtime.init (config faults) (graph 4242L) in
    let t0 = Unix.gettimeofday () in
    match Runtime.run_query sys (Mycelium_query.Corpus.find "Q5").Mycelium_query.Corpus.sql with
    | Ok r -> (Unix.gettimeofday () -. t0, r)
    | Error _ -> failwith "bench chaos: query failed"
  in
  let plan =
    Fault_plan.make ~drop_rate:0.1 ~churn_rate:0.1 ~crashed_committee:[ 2 ]
      ~aggregator_restarts:1 ~seed:2024L ()
  in
  let clean_s, clean = time_query None in
  let faulted_s, faulted = time_query (Some plan) in
  print_endline "";
  print_endline "=== Chaos: query under the Section 6.3 fault model ===";
  Printf.printf "  fault-free run      %8.2f ms  (origins %d)\n" (clean_s *. 1e3)
    clean.Runtime.origins_included;
  Printf.printf "  degraded run        %8.2f ms  (origins %d)\n" (faulted_s *. 1e3)
    faulted.Runtime.origins_included;
  Printf.printf "  degradation overhead %+7.1f%%\n"
    ((faulted_s /. clean_s -. 1.0) *. 100.0);
  Printf.printf "  %s\n" (Injector.report_to_string faulted.Runtime.degradation)

let () = if wants "chaos" then run_chaos ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Rng.create 42L in
  (* BGV at the medium test parameters: the per-operation costs behind
     §6.4 and Figure 9b. *)
  let ctx = Bgv.make_ctx Params.test_medium in
  let sk, pk = Bgv.keygen ctx rng in
  let ct_a = Bgv.encrypt_value ctx rng pk 1 in
  let ct_b = Bgv.encrypt_value ctx rng pk 2 in
  let prod = Bgv.mul ct_a ct_b in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  (* NTT at N=1024 (the figure-scaling primitive), plus the schoolbook
     oracle as an ablation. *)
  let p = List.hd (Ntt.find_primes ~degree:1024 ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:1024 in
  let poly_a = Array.init 1024 (fun i -> (i * 7) mod p) in
  let poly_b = Array.init 1024 (fun i -> (i * 13) mod p) in
  let p256 = List.hd (Ntt.find_primes ~degree:256 ~bits:28 ~count:1) in
  let small_plan = Ntt.make_plan ~p:p256 ~degree:256 in
  let small_a = Array.init 256 (fun i -> (i * 7) mod p256) in
  let small_b = Array.init 256 (fun i -> (i * 13) mod p256) in
  (* Crypto primitives behind the mixnet figures. *)
  let msg_4k = Bytes.create 4096 in
  let key32 = Rng.bytes rng 32 in
  let hop_keys = List.init 3 (fun _ -> Rng.bytes rng 32) in
  let eg_pk, eg_sk = Elgamal.generate rng in
  let eg_ct = Elgamal.encrypt rng eg_pk key32 in
  let leaves = Array.init 256 (fun i -> Bytes.of_string (string_of_int i)) in
  let tree = Merkle.build leaves in
  let shamir_p = 1073479681 in
  [
    Test.make ~name:"fig9b/bgv-add" (Staged.stage (fun () -> ignore (Bgv.add ct_a ct_b)));
    Test.make ~name:"sec6_4/bgv-encrypt" (Staged.stage (fun () -> ignore (Bgv.encrypt_value ctx rng pk 3)));
    Test.make ~name:"sec6_4/bgv-mul" (Staged.stage (fun () -> ignore (Bgv.mul ct_a ct_b)));
    Test.make ~name:"sec6_4/bgv-relinearize" (Staged.stage (fun () -> ignore (Bgv.relinearize ctx rk prod)));
    Test.make ~name:"ablation/ntt-mul-1024" (Staged.stage (fun () -> ignore (Ntt.multiply plan poly_a poly_b)));
    Test.make ~name:"ablation/naive-mul-256" (Staged.stage (fun () -> ignore (Ntt.multiply_naive ~p:p256 small_a small_b)));
    Test.make ~name:"ablation/ntt-mul-256" (Staged.stage (fun () -> ignore (Ntt.multiply small_plan small_a small_b)));
    Test.make ~name:"fig5/sha256-4k" (Staged.stage (fun () -> ignore (Sha256.digest msg_4k)));
    Test.make ~name:"fig5/chacha20-4k"
      (Staged.stage (fun () ->
           ignore (Chacha20.encrypt ~key:key32 ~nonce:(Chacha20.nonce_of_round 1) msg_4k)));
    Test.make ~name:"fig5/onion-wrap-3hops"
      (Staged.stage (fun () -> ignore (Onion.wrap ~hop_keys ~round:1 msg_4k)));
    Test.make ~name:"fig5d/elgamal-encrypt" (Staged.stage (fun () -> ignore (Elgamal.encrypt rng eg_pk key32)));
    Test.make ~name:"fig5d/elgamal-decrypt" (Staged.stage (fun () -> ignore (Elgamal.decrypt eg_sk eg_ct)));
    Test.make ~name:"fig9a/merkle-build-256" (Staged.stage (fun () -> ignore (Merkle.build leaves)));
    Test.make ~name:"fig9a/merkle-prove" (Staged.stage (fun () -> ignore (Merkle.prove tree 17)));
    Test.make ~name:"fig8/shamir-share-c10"
      (Staged.stage (fun () ->
           ignore (Shamir.share_secret ~p:shamir_p rng ~threshold:4 ~parties:10 123456)));
  ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None () in
  let grouped = Test.make_grouped ~name:"mycelium" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  print_endline "";
  print_endline "=== Micro-benchmarks (Bechamel) ===";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        let pretty =
          if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
          else Printf.sprintf "%8.0f ns" est
        in
        Printf.printf "  %-32s %s\n" name pretty
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    rows

let () = if (not skip_micro) && only = None then run_micro ()
