(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6–§7) and runs Bechamel micro-benchmarks of the
   operations each figure's cost model is built on.

   Usage:
     dune exec bench/main.exe                     -- everything
     dune exec bench/main.exe -- --only fig7      -- one figure
     dune exec bench/main.exe -- --only parallel  -- domain scaling
     dune exec bench/main.exe -- --only ringops   -- ring backend old-vs-new
     dune exec bench/main.exe -- --only mixnet    -- mixnet scale sweep (Figs 7-9)
     dune exec bench/main.exe -- --only lint      -- full-repo static analysis
     dune exec bench/main.exe -- --skip-micro     -- figures only
     dune exec bench/main.exe -- --json           -- machine-readable
     dune exec bench/main.exe -- --only ringops --check
                                                  -- CI gate: exit 1 unless the
                                                     Montgomery forward at N=8192
                                                     is >= 2x BENCH_pr4.json

   With --json the pretty output is suppressed and a single JSON
   document goes to stdout: wall-clock seconds per section, the chaos
   timings, the domain-scaling sweep and (unless --skip-micro) the
   per-operation estimates. *)

module Figures = Mycelium_costmodel.Figures
module Device_compute = Mycelium_costmodel.Device_compute
module Rng = Mycelium_util.Rng
module Params = Mycelium_bgv.Params
module Bgv = Mycelium_bgv.Bgv
module Ntt = Mycelium_math.Ntt
module Sha256 = Mycelium_crypto.Sha256
module Chacha20 = Mycelium_crypto.Chacha20
module Elgamal = Mycelium_crypto.Elgamal
module Merkle = Mycelium_crypto.Merkle
module Onion = Mycelium_mixnet.Onion
module Sim = Mycelium_mixnet.Sim
module Shamir = Mycelium_secrets.Shamir
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Runtime = Mycelium_core.Runtime
module Fault_plan = Mycelium_faults.Fault_plan
module Injector = Mycelium_faults.Injector
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs

(* --only takes one section id or a comma-separated list
   ("--only serving,lint" runs both). *)
let only =
  let rec find = function
    | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let skip_micro = Array.exists (fun a -> a = "--skip-micro") Sys.argv
let json_mode = Array.exists (fun a -> a = "--json") Sys.argv
let check_mode = Array.exists (fun a -> a = "--check") Sys.argv

let wants id = match only with None -> true | Some ids -> List.mem id ids

(* All human-readable output funnels through [say] so --json can keep
   stdout clean for the document. *)
let say fmt = Printf.ksprintf (fun s -> if not json_mode then print_string s) fmt

let emit fig = if wants fig.Figures.id then say "%s" (Figures.render fig)

(* ------------------------------------------------------------------ *)
(* JSON accumulator (the shared lib/obs encoder)                       *)
(* ------------------------------------------------------------------ *)

module Json = Mycelium_obs.Obs.Json
open Json (* the constructors: Num, Int, Str, List, Obj *)

(* Sections are prepended (appending to the tail re-walks the list
   every time) and reversed once at emission. *)
let json_sections : (string * Json.t) list ref = ref []

(* [section id f] runs [f] when selected, timing it; [f] returns extra
   key/values merged into the section's JSON record. *)
let section id f =
  if wants id then begin
    let t0 = Unix.gettimeofday () in
    let extras = f () in
    let dt = Unix.gettimeofday () -. t0 in
    json_sections := (id, Obj (("seconds", Num dt) :: extras)) :: !json_sections
  end

(* ------------------------------------------------------------------ *)
(* Figures from the closed-form cost model                             *)
(* ------------------------------------------------------------------ *)

let () =
  say "Mycelium evaluation reproduction (SOSP 2021, Roth et al.)\n";
  say "==========================================================\n";
  let t0 = Unix.gettimeofday () in
  List.iter emit (Figures.all ());
  if only = None then
    json_sections :=
      ("figures", Obj [ ("seconds", Num (Unix.gettimeofday () -. t0)) ]) :: !json_sections

(* ------------------------------------------------------------------ *)
(* Measurement-backed figures                                          *)
(* ------------------------------------------------------------------ *)

let () =
  section "sec6_4" (fun () ->
      let costs = Device_compute.measure (Rng.create 1L) in
      emit (Figures.sec6_4_device_costs costs);
      []);
  section "fig5-mc" (fun () ->
      emit (Figures.fig5_monte_carlo ~n:400 ~seed:7L);
      []);
  section "sec7" (fun () ->
      emit (Figures.sec7_baseline ~n:20_000 ~seed:11L);
      [])

(* ------------------------------------------------------------------ *)
(* Shared end-to-end fixture (chaos and parallel sections)             *)
(* ------------------------------------------------------------------ *)

let bench_graph seed =
  let rng = Rng.create seed in
  let g =
    Cg.generate
      { Cg.default_config with Cg.population = 16; degree_bound = 4; extra_contact_rate = 1.5 }
      rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
  g

let bench_config faults =
  { Runtime.default_config with
    Runtime.params = Params.test_small;
    degree_bound = 4;
    seed = 5L;
    faults
  }

let time_query faults =
  let sys = Runtime.init (bench_config faults) (bench_graph 4242L) in
  let t0 = Unix.gettimeofday () in
  match Runtime.run_query sys (Mycelium_query.Corpus.find "Q5").Mycelium_query.Corpus.sql with
  | Ok r -> (Unix.gettimeofday () -. t0, r)
  | Error _ -> failwith "bench: query failed"

(* ------------------------------------------------------------------ *)
(* Chaos: end-to-end query cost under the §6.3 fault model             *)
(* ------------------------------------------------------------------ *)

(* Runs the same HISTO query through a fault-free pipeline and through
   one degrading under a fixed fault plan (10% churn, 10% drops, one
   crashed committee member, one aggregator restart), and reports the
   wall-clock cost of graceful degradation plus the deterministic
   degradation report.  Replay with `--only chaos`. *)
let () =
  section "chaos" (fun () ->
      let plan =
        Fault_plan.make ~drop_rate:0.1 ~churn_rate:0.1 ~crashed_committee:[ 2 ]
          ~aggregator_restarts:1 ~seed:2024L ()
      in
      let clean_s, clean = time_query None in
      let faulted_s, faulted = time_query (Some plan) in
      say "\n";
      say "=== Chaos: query under the Section 6.3 fault model ===\n";
      say "  fault-free run      %8.2f ms  (origins %d)\n" (clean_s *. 1e3)
        clean.Runtime.origins_included;
      say "  degraded run        %8.2f ms  (origins %d)\n" (faulted_s *. 1e3)
        faulted.Runtime.origins_included;
      say "  degradation overhead %+7.1f%%\n" ((faulted_s /. clean_s -. 1.0) *. 100.0);
      say "  %s\n" (Injector.report_to_string faulted.Runtime.degradation);
      [
        ("clean_ms", Num (clean_s *. 1e3));
        ("degraded_ms", Num (faulted_s *. 1e3));
        ("overhead_pct", Num ((faulted_s /. clean_s -. 1.0) *. 100.0));
      ])

(* ------------------------------------------------------------------ *)
(* Parallel: domain scaling of the end-to-end query                    *)
(* ------------------------------------------------------------------ *)

(* Sweeps the work pool over 1/2/4/8 domains on the same fault-free
   query and reports wall-clock and speedup relative to the sequential
   run.  The numbers are honest about the host: with fewer physical
   cores than domains the extra domains only add scheduling overhead,
   so the achievable speedup is bounded by [cores].  The release is
   checked byte-identical across the sweep (the determinism contract —
   see DESIGN.md), so this measures the same computation every time. *)
let () =
  section "parallel" (fun () ->
      let cores = Domain.recommended_domain_count () in
      let at domains =
        Pool.with_domains domains (fun () -> time_query None)
      in
      ignore (at 1);
      (* warm the allocator and code paths *)
      let counts = [ 1; 2; 4; 8 ] in
      let runs = List.map (fun d -> (d, at d)) counts in
      let base_s, base = List.assoc 1 runs |> fun (s, r) -> (s, r) in
      say "\n";
      say "=== Parallel: end-to-end query at 1/2/4/8 domains ===\n";
      say "  host cores: %d%s\n" cores
        (if cores < 4 then "  (speedup is bounded by the core count)" else "");
      List.iter
        (fun (d, (s, r)) ->
          if r.Runtime.noisy_bins <> base.Runtime.noisy_bins then
            failwith "bench parallel: result differs across domain counts";
          say "  %d domain%s %10.2f ms   speedup %5.2fx\n" d
            (if d = 1 then " " else "s")
            (s *. 1e3) (base_s /. s))
        runs;
      [
        ("cores", Int cores);
        ( "domains",
          List
            (List.map
               (fun (d, (s, _)) ->
                 Obj
                   [
                     ("domains", Int d);
                     ("ms", Num (s *. 1e3));
                     ("speedup", Num (base_s /. s));
                   ])
               runs) );
      ])

(* ------------------------------------------------------------------ *)
(* Obs: cost of the tracing + metrics instrumentation                  *)
(* ------------------------------------------------------------------ *)

(* The instrumented code is the only code in the tree, so the disabled
   overhead cannot be measured as a diff against an uninstrumented
   build.  Instead: (a) run the end-to-end query with tracing disabled
   and enabled and report the enabled overhead directly; (b) time the
   disabled fast path — one flag load plus a branch — in a
   microbenchmark, count the instrumentation events one enabled query
   actually crosses, and bound the disabled overhead by
   branch_ns * events / disabled_time.  The release must come out
   byte-identical either way (the DESIGN.md §8 contract; also enforced
   by test/test_obs.ml). *)
let () =
  section "obs" (fun () ->
      let best_of n f =
        let best = ref infinity and last = ref None in
        for _ = 1 to n do
          let s, r = f () in
          if s < !best then best := s;
          last := Some r
        done;
        (!best, Option.get !last)
      in
      let disabled_s, disabled_r = best_of 3 (fun () -> time_query None) in
      let enabled_s, enabled_r, spans, events =
        Obs.with_enabled (fun () ->
            ignore (time_query None);
            (* warm *)
            Obs.reset ();
            let s, r = time_query None in
            let count name = Obs.Metrics.(value (counter name)) in
            let spans = Obs.span_count () in
            let events =
              spans + count "rq.limb_ntt_muls" + count "bgv.encrypts"
              + count "bgv.ciphertext_muls" + count "bgv.relinearizations"
              + count "pool.chunks_run"
            in
            (s, r, spans, events))
      in
      if disabled_r.Runtime.noisy_bins <> enabled_r.Runtime.noisy_bins then
        failwith "bench obs: query result differs with tracing enabled";
      if
        not
          (Injector.report_equal disabled_r.Runtime.degradation
             enabled_r.Runtime.degradation)
      then failwith "bench obs: degradation report differs with tracing enabled";
      (* The disabled fast path: Obs.enabled () + branch, including the
         loop around it, so the estimate errs high. *)
      let branch_ns =
        let n = 10_000_000 in
        let acc = ref 0 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          if Obs.enabled () then incr acc
        done;
        let dt = Unix.gettimeofday () -. t0 in
        ignore (Sys.opaque_identity !acc);
        dt *. 1e9 /. float_of_int n
      in
      let disabled_overhead_pct =
        branch_ns *. float_of_int events /. (disabled_s *. 1e9) *. 100.
      in
      let enabled_overhead_pct = (enabled_s /. disabled_s -. 1.0) *. 100.0 in
      if disabled_overhead_pct >= 2.0 then
        failwith "bench obs: disabled instrumentation overhead exceeds 2%";
      say "\n";
      say "=== Obs: instrumentation overhead on the end-to-end query ===\n";
      say "  tracing disabled    %8.2f ms\n" (disabled_s *. 1e3);
      say "  tracing enabled     %8.2f ms  (%+.1f%%, %d spans, %d events)\n"
        (enabled_s *. 1e3) enabled_overhead_pct spans events;
      say "  disabled fast path  %8.2f ns/check -> %.4f%% of the query (bound)\n"
        branch_ns disabled_overhead_pct;
      [
        ("disabled_ms", Num (disabled_s *. 1e3));
        ("enabled_ms", Num (enabled_s *. 1e3));
        ("enabled_overhead_pct", Num enabled_overhead_pct);
        ("disabled_overhead_pct", Num disabled_overhead_pct);
        ("spans", Int spans);
        ("events", Int events);
        ("branch_ns", Num branch_ns);
      ])

(* ------------------------------------------------------------------ *)
(* Telemetry: sampler overhead, recorder throughput, ledger appends    *)
(* ------------------------------------------------------------------ *)

(* The PR8 instrumentation has three costs worth tracking: the
   background sampler stealing cycles from the query (measured at off /
   10ms / 1ms periods on the same end-to-end fixture, with the release
   checked identical across settings), the flight recorder's lock-free
   note path, and the ledger's append+flush.  The 1ms overhead and
   recorder throughput gate against BENCH_pr8.json under --check. *)
let telemetry_measured = ref None

let () =
  section "telemetry" (fun () ->
      let best_of n f =
        let best = ref infinity and last = ref None in
        for _ = 1 to n do
          let s, r = f () in
          if s < !best then best := s;
          last := Some r
        done;
        (!best, Option.get !last)
      in
      let with_sampler period f =
        match period with
        | None -> f ()
        | Some p ->
          Obs.Sampler.start ~period_s:p ();
          Fun.protect ~finally:Obs.Sampler.stop f
      in
      ignore (time_query None);
      (* warm *)
      let off_s, off_r = best_of 3 (fun () -> with_sampler None (fun () -> time_query None)) in
      let s10_s, s10_r =
        best_of 3 (fun () -> with_sampler (Some 0.010) (fun () -> time_query None))
      in
      let s1_s, s1_r =
        best_of 3 (fun () -> with_sampler (Some 0.001) (fun () -> time_query None))
      in
      if
        off_r.Runtime.noisy_bins <> s10_r.Runtime.noisy_bins
        || off_r.Runtime.noisy_bins <> s1_r.Runtime.noisy_bins
      then failwith "bench telemetry: query result differs with the sampler running";
      let pct s = (s /. off_s -. 1.0) *. 100.0 in
      let ticks = Obs.Sampler.tick_count () in
      (* Recorder throughput: the hot [note] path (fetch_and_add plus a
         slot write) at a realistic detail size, ring wrapping freely. *)
      Obs.Recorder.enable ~capacity:4096 ();
      let n_events = 200_000 in
      let t0 = Unix.gettimeofday () in
      for i = 1 to n_events do
        Obs.Recorder.note ~detail:[ ("round", Int i); ("source", Int 7) ] "bench.event"
      done;
      let rec_s = Unix.gettimeofday () -. t0 in
      let events_per_s = float_of_int n_events /. rec_s in
      Obs.Recorder.disable ();
      Obs.Recorder.clear ();
      (* Ledger append: one realistic record per call, flushed each
         time (the durability the audit trail promises). *)
      let path = Filename.temp_file "mycelium_bench_ledger" ".jsonl" in
      let l = Obs.Ledger.open_ path in
      let n_rec = 2_000 in
      let record i =
        Obj
          [
            ("schema", Str "mycelium-ledger/1");
            ("query", Int i);
            ("name", Str "bench");
            ("status", Str "ok");
            ("charged", Bool true);
            ("epsilon", Num 0.5);
            ( "phases",
              Obj
                [
                  ("gather_s", Num 0.0123);
                  ("aggregate_s", Num 0.0456);
                  ("summation_s", Num 0.0078);
                  ("decrypt_s", Num 0.0009);
                ] );
            ("budget_spent", Num (0.5 *. float_of_int i));
          ]
      in
      let t0 = Unix.gettimeofday () in
      for i = 1 to n_rec do
        Obs.Ledger.append l (record i)
      done;
      let led_s = Unix.gettimeofday () -. t0 in
      Obs.Ledger.close l;
      Sys.remove path;
      let append_us = led_s *. 1e6 /. float_of_int n_rec in
      telemetry_measured := Some (pct s1_s, events_per_s);
      say "\n";
      say "=== Telemetry: sampler / flight recorder / audit ledger ===\n";
      say "  sampler off         %8.2f ms\n" (off_s *. 1e3);
      say "  sampler @ 10 ms     %8.2f ms  (%+.1f%%)\n" (s10_s *. 1e3) (pct s10_s);
      say "  sampler @ 1 ms      %8.2f ms  (%+.1f%%, %d ticks total)\n" (s1_s *. 1e3)
        (pct s1_s) ticks;
      say "  recorder note       %8.0f ns/event  (%.2f M events/s)\n"
        (rec_s *. 1e9 /. float_of_int n_events)
        (events_per_s /. 1e6);
      say "  ledger append       %8.2f us/record (flushed)\n" append_us;
      [
        ("sampler_off_ms", Num (off_s *. 1e3));
        ("sampler_10ms_ms", Num (s10_s *. 1e3));
        ("sampler_10ms_overhead_pct", Num (pct s10_s));
        ("sampler_1ms_ms", Num (s1_s *. 1e3));
        ("sampler_1ms_overhead_pct", Num (pct s1_s));
        ("sampler_ticks", Int ticks);
        ("recorder_events_per_s", Num events_per_s);
        ("recorder_event_ns", Num (rec_s *. 1e9 /. float_of_int n_events));
        ("ledger_append_us", Num append_us);
        ("ledger_records", Int n_rec);
      ])

(* ------------------------------------------------------------------ *)
(* Serving: batched round-trips + encrypted-aggregate cache           *)
(* ------------------------------------------------------------------ *)

(* The PR9 serving layer's reason to exist, measured: a mixed ego-query
   workload (three shapes, repeated) released one query at a time with
   the cache off, against the same workload at batch 8 with a warm
   cache — faults on, every contribution routed through the mixnet.
   Both paths run the workload twice and time the second pass, so the
   admission sequence numbers (and with them every member's DP-noise
   seed) line up and the releases can be checked byte-identical before
   the speedup is reported.  The warm-batched sustained qps must reach
   2x the sequential baseline under --check (the acceptance target is
   3x; the gate leaves room for CI noise). *)
let serving_measured = ref None

let () =
  section "serving" (fun () ->
      let module Serve = Mycelium_serve.Serve in
      let module Agg_cache = Mycelium_serve.Agg_cache in
      let module Corpus = Mycelium_query.Corpus in
      let mix_cfg =
        {
          Sim.default_config with
          Sim.hops = 2;
          replicas = 2;
          fraction = 0.4;
          fast_setup = true;
          verify_proofs = false;
        }
      in
      let plan =
        Fault_plan.make ~drop_rate:0.1 ~churn_rate:0.1 ~crashed_committee:[ 2 ] ~seed:2024L ()
      in
      let runtime () =
        Runtime.init
          { (bench_config (Some plan)) with
            Runtime.route_through_mixnet = Some mix_cfg;
            epsilon_budget = Float.max_float
          }
          (bench_graph 4242L)
      in
      (* 16 requests per pass over three query shapes; one user per
         request index so the per-user accountant never binds. *)
      let shapes = [| "Q5"; "Q4"; "Q8"; "Q5"; "Q4"; "Q5"; "Q8"; "Q4" |] in
      let n_requests = 16 in
      let requests =
        List.init n_requests (fun i ->
            {
              Serve.user = Printf.sprintf "analyst%d" i;
              epsilon = 0.25;
              sql = (Corpus.find shapes.(i mod Array.length shapes)).Corpus.sql;
              name = Some shapes.(i mod Array.length shapes);
            })
      in
      let pass srv =
        let t0 = Unix.gettimeofday () in
        let responses = ref [] in
        List.iter
          (fun req ->
            match Serve.submit srv ~arrival:0.0 req with
            | Serve.Queued _, flushed -> responses := List.rev_append flushed !responses
            | Serve.Rejected r, _ ->
              failwith ("bench serving: rejected: " ^ Serve.rejection_to_string r))
          requests;
        let responses = List.rev_append (Serve.drain srv) !responses in
        let dt = Unix.gettimeofday () -. t0 in
        let released =
          List.map
            (fun r ->
              match r.Serve.outcome with
              | Ok qr -> (r.Serve.seq, qr.Runtime.noisy_bins)
              | Error _ -> failwith "bench serving: member errored")
            responses
          |> List.sort compare
        in
        (dt, released, List.exists (fun r -> r.Serve.cache_hit) responses)
      in
      let serve_with ~batch_size ~cache_capacity =
        Serve.create
          ~config:
            { Serve.default_config with
              Serve.batch_size;
              cache_capacity;
              per_user_budget = 1e9
            }
          (runtime ())
      in
      (* Sequential baseline: batch 1, cache off, two passes, the
         second timed (so both paths pay any first-pass warmup). *)
      let seq = serve_with ~batch_size:1 ~cache_capacity:0 in
      let _, _, _ = pass seq in
      let seq_s, seq_released, seq_hit = pass seq in
      if seq_hit then failwith "bench serving: baseline must never hit the cache";
      (* Batched serving: batch 8, cache warm after the first pass. *)
      let batched = serve_with ~batch_size:8 ~cache_capacity:64 in
      let cold_s, _, _ = pass batched in
      let warm_s, warm_released, warm_hit = pass batched in
      if not warm_hit then failwith "bench serving: warm pass did not hit the cache";
      if List.map snd warm_released <> List.map snd seq_released then
        failwith "bench serving: batched releases differ from the sequential baseline";
      let qps s = float_of_int n_requests /. s in
      let speedup = seq_s /. warm_s in
      serving_measured := Some speedup;
      say "\n";
      say "=== Serving: batched round-trips + encrypted-aggregate cache ===\n";
      say "  sequential (batch 1, cache off)  %8.2f ms  %6.1f qps\n" (seq_s *. 1e3) (qps seq_s);
      say "  batched cold (batch 8)           %8.2f ms  %6.1f qps\n" (cold_s *. 1e3) (qps cold_s);
      say "  batched warm (batch 8, cached)   %8.2f ms  %6.1f qps\n" (warm_s *. 1e3) (qps warm_s);
      say "  sustained speedup %.2fx (target 3x, CI floor 2x)\n" speedup;
      [
        ("n_requests", Int n_requests);
        ("sequential_s", Num seq_s);
        ("sequential_qps", Num (qps seq_s));
        ("batched_cold_s", Num cold_s);
        ("batched_cold_qps", Num (qps cold_s));
        ("batched_warm_s", Num warm_s);
        ("batched_warm_qps", Num (qps warm_s));
        ("speedup", Num speedup);
      ])

(* ------------------------------------------------------------------ *)
(* Ringops: the ring backend, old representation vs new               *)
(* ------------------------------------------------------------------ *)

(* Old-vs-new cost of the polynomial arithmetic the whole pipeline sits
   on, at degrees 1024..8192.  "Old" is the pre-evaluation-domain
   backend, reconstructed locally so the baseline stays honest as the
   live code moves on: butterflies that pay a hardware division
   ("* w mod p"), a fresh Array.copy per multiply input, and a
   Bgv-level multiply whose every cross term runs the full
   forward/pointwise/inverse NTT pipeline per limb.  "New" is the live
   code: Shoup butterflies, copy-free transforms and Eval-resident
   ciphertexts whose products are one pointwise pass per limb. *)
module Old_kernels = struct
  type plan = { p : int; n : int; psi_pows : int array; inv_psi_pows : int array; n_inv : int }

  let bit_reverse_index bits i =
    let r = ref 0 and v = ref i in
    for _ = 1 to bits do
      r := (!r lsl 1) lor (!v land 1);
      v := !v lsr 1
    done;
    !r

  let make ~p ~degree:n =
    let log_n =
      let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
      go 0 1
    in
    let open Mycelium_math in
    let psi = Modarith.nth_root_of_unity p (2 * n) in
    let inv_psi = Modarith.inv p psi in
    let table root =
      let t = Array.make n 1 in
      let pow = Array.make n 1 in
      for i = 1 to n - 1 do
        pow.(i) <- Modarith.mul p pow.(i - 1) root
      done;
      for i = 0 to n - 1 do
        t.(i) <- pow.(bit_reverse_index log_n i)
      done;
      t
    in
    { p; n; psi_pows = table psi; inv_psi_pows = table inv_psi; n_inv = Modarith.inv p n }

  let forward t a =
    let p = t.p and n = t.n in
    let m = ref 1 and len = ref (n / 2) in
    while !len >= 1 do
      let m_v = !m and len_v = !len in
      for i = 0 to m_v - 1 do
        let w = t.psi_pows.(m_v + i) in
        let j1 = 2 * i * len_v in
        for j = j1 to j1 + len_v - 1 do
          let u = a.(j) in
          let v = a.(j + len_v) * w mod p in
          let s = u + v in
          a.(j) <- (if s >= p then s - p else s);
          let d = u - v in
          a.(j + len_v) <- (if d < 0 then d + p else d)
        done
      done;
      m := m_v * 2;
      len := len_v / 2
    done

  let inverse t a =
    let p = t.p and n = t.n in
    let m = ref (n / 2) and len = ref 1 in
    while !m >= 1 do
      let m_v = !m and len_v = !len in
      for i = 0 to m_v - 1 do
        let w = t.inv_psi_pows.(m_v + i) in
        let j1 = 2 * i * len_v in
        for j = j1 to j1 + len_v - 1 do
          let u = a.(j) in
          let v = a.(j + len_v) in
          let s = u + v in
          a.(j) <- (if s >= p then s - p else s);
          let d = u - v in
          let d = if d < 0 then d + p else d in
          a.(j + len_v) <- d * w mod p
        done
      done;
      m := m_v / 2;
      len := len_v * 2
    done;
    for i = 0 to n - 1 do
      a.(i) <- a.(i) * t.n_inv mod p
    done

  let multiply t a b =
    let fa = Array.copy a and fb = Array.copy b in
    forward t fa;
    forward t fb;
    let p = t.p in
    for i = 0 to t.n - 1 do
      fa.(i) <- fa.(i) * fb.(i) mod p
    done;
    inverse t fa;
    fa
end

(* The measured Montgomery forward at N=8192 from the table below,
   compared against the committed BENCH_pr4.json by --check. *)
let mont_fwd_8192_ns = ref None

let () =
  section "ringops" (fun () ->
      let module Modarith = Mycelium_math.Modarith in
      let module Rns = Mycelium_math.Rns in
      let module Rq = Mycelium_math.Rq in
      let module Ring_backend = Mycelium_math.Ring_backend in
      let levels = 3 in
      let ns_per_op ?(reps = 5) ~inner f =
        let best = ref infinity in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          for _ = 1 to inner do
            f ()
          done;
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt
        done;
        !best *. 1e9 /. float_of_int inner
      in
      say "\n";
      say "=== Ringops: ring backends, Reference (Shoup) vs Montgomery (Bigarray radix-4) ===\n";
      say "  %7s %12s %12s %8s %12s %12s %8s %12s %12s %12s\n" "degree" "fwd ref"
        "fwd mont" "speedup" "inv ref" "inv mont" "speedup" "pointwise" "rq.mul ref"
        "rq.mul mont";
      let rows =
        List.map
          (fun degree ->
            let rng = Rng.create (Int64.of_int (9000 + degree)) in
            let p = List.hd (Ntt.find_primes ~degree ~bits:30 ~count:1) in
            let rplan = Ring_backend.Reference.make_plan ~p ~degree in
            let mplan = Ring_backend.Montgomery.make_plan ~p ~degree in
            let rand () = Array.init degree (fun _ -> Rng.int rng p) in
            let a = rand () and b = rand () in
            (* Kernel-level: transforms run in place on a scratch row
               (any reduced row is a valid input, so repeated
               application measures steady-state cost). *)
            let scratch = Array.copy a in
            let inner = max 4 (524_288 / degree) in
            let fwd_ref = ns_per_op ~inner (fun () -> Ring_backend.forward rplan scratch) in
            let fwd_mont = ns_per_op ~inner (fun () -> Ring_backend.forward mplan scratch) in
            let inv_ref = ns_per_op ~inner (fun () -> Ring_backend.inverse rplan scratch) in
            let inv_mont = ns_per_op ~inner (fun () -> Ring_backend.inverse mplan scratch) in
            let pw =
              ns_per_op ~inner (fun () -> Ring_backend.pointwise_into mplan ~dst:scratch a b)
            in
            if degree = 8192 then mont_fwd_8192_ns := Some fwd_mont;
            (* Rq level: a 3-limb basis per backend, matching the
               pipeline shape (Eval-resident operands, so this measures
               the pointwise path plus dispatch). *)
            let primes = Ntt.find_primes ~degree ~bits:30 ~count:levels in
            let b_ref = Rns.make ~backend:"reference" ~primes ~degree () in
            let b_mont = Rns.make ~backend:"montgomery" ~primes ~degree () in
            let heavy = max 2 (65_536 / degree) in
            let rq_on basis =
              let x = Rq.random_uniform basis (Rng.create 77L) in
              let y = Rq.random_uniform basis (Rng.create 78L) in
              Rq.force_eval x;
              Rq.force_eval y;
              ns_per_op ~inner:heavy (fun () -> ignore (Rq.mul x y))
            in
            let rq_ref = rq_on b_ref in
            let rq_mont = rq_on b_mont in
            say "  %7d %10.1fus %10.1fus %7.2fx %10.1fus %10.1fus %7.2fx %10.2fus %10.1fus %10.1fus\n"
              degree (fwd_ref /. 1e3) (fwd_mont /. 1e3) (fwd_ref /. fwd_mont)
              (inv_ref /. 1e3) (inv_mont /. 1e3) (inv_ref /. inv_mont) (pw /. 1e3)
              (rq_ref /. 1e3) (rq_mont /. 1e3);
            ( degree,
              Obj
                [
                  ("degree", Int degree);
                  ("ntt_forward_old_ns", Num fwd_ref);
                  ("ntt_forward_ns", Num fwd_mont);
                  ("ntt_forward_speedup", Num (fwd_ref /. fwd_mont));
                  ("ntt_inverse_old_ns", Num inv_ref);
                  ("ntt_inverse_ns", Num inv_mont);
                  ("ntt_inverse_speedup", Num (inv_ref /. inv_mont));
                  ("pointwise_ns", Num pw);
                  ("rq_mul_old_ns", Num rq_ref);
                  ("rq_mul_ns", Num rq_mont);
                ] ))
          [ 1024; 2048; 4096; 8192; 32768 ]
      in
      (* Representation ablation at 4096, pinning the PR4 acceptance
         metric: the pre-evaluation-domain backend (Old_kernels, full
         coefficient-domain convolution per cross term) vs the live
         Eval-resident Bgv.mul. *)
      let degree = 4096 in
      let rng = Rng.create (Int64.of_int (9000 + degree)) in
      let basis =
        Rns.make ~primes:(Ntt.find_primes ~degree ~bits:30 ~count:levels) ~degree ()
      in
      let oplans = Array.map (fun p -> Old_kernels.make ~p ~degree) (Rns.primes basis) in
      let rows_of v =
        let c = Rq.of_residues ~repr:(Rq.repr_of v) basis (Rq.residues v) in
        Rq.force_coeff c;
        Rq.residues c
      in
      let params =
        { Params.degree; plain_modulus = 65537; prime_bits = 30; levels; error_eta = 2 }
      in
      let ctx = Bgv.make_ctx params in
      let _sk, pk = Bgv.keygen ctx rng in
      let ct_a = Bgv.encrypt_value ctx rng pk 1 in
      let ct_b = Bgv.encrypt_value ctx rng pk 2 in
      let ca = Array.map rows_of (Bgv.components ct_a) in
      let cb = Array.map rows_of (Bgv.components ct_b) in
      let primes = Rns.primes basis in
      let old_bgv_mul () =
        let da = Array.length ca and db = Array.length cb in
        Array.init (da + db - 1) (fun k ->
            let acc = Array.map (fun _ -> Array.make degree 0) primes in
            for i = max 0 (k - db + 1) to min (da - 1) k do
              Array.iteri
                (fun j p ->
                  let prod = Old_kernels.multiply oplans.(j) ca.(i).(j) cb.(k - i).(j) in
                  let accj = acc.(j) in
                  for c = 0 to degree - 1 do
                    accj.(c) <- Modarith.add p accj.(c) prod.(c)
                  done)
                primes
            done;
            acc)
      in
      (* Sanity: old and new representations agree before we time them. *)
      let expected = old_bgv_mul () in
      let got = Array.map rows_of (Bgv.components (Bgv.mul ct_a ct_b)) in
      if got <> expected then failwith "bench ringops: old and new representations disagree";
      let heavy = max 2 (65_536 / degree) in
      let bgv_old = ns_per_op ~inner:heavy (fun () -> ignore (old_bgv_mul ())) in
      let bgv_new = ns_per_op ~inner:heavy (fun () -> ignore (Bgv.mul ct_a ct_b)) in
      let speedup_4096 = bgv_old /. bgv_new in
      say "  bgv.mul at 4096: old representation %.1fus, live %.1fus -> %.1fx (floor: 2x)\n"
        (bgv_old /. 1e3) (bgv_new /. 1e3) speedup_4096;
      (* Paper profile (§5): N=32768, 19 30-bit primes (~550-bit q),
         t=2^30 — the full keygen/encrypt/mul/relinearize/decrypt
         pipeline at the parameters the paper deploys, run end-to-end
         on the default (Montgomery) backend. *)
      say "\n";
      say "  --- paper profile: N=32768, %d-bit q, t=2^30 ---\n"
        (Params.modulus_bits Params.paper);
      let once label f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        say "  %-22s %10.1f ms\n" label ms;
        ((label ^ "_ms", Num ms), r)
      in
      let t_ctx, pctx = once "make_ctx" (fun () -> Bgv.make_ctx Params.paper) in
      let prng = Rng.create 4242L in
      let t_keygen, (psk, ppk) = once "keygen" (fun () -> Bgv.keygen pctx prng) in
      (* 30-bit digits keep the relin key at ~19 digit rows instead of
         ~69: the right operating point at a 550-bit modulus. *)
      let t_rk, prk =
        once "relin_keygen" (fun () ->
            Bgv.relin_keygen ~digit_bits:30 pctx prng psk ~max_degree:2)
      in
      let t_enc, (pa, pb) =
        once "encrypt_x2" (fun () ->
            (Bgv.encrypt_value pctx prng ppk 3, Bgv.encrypt_value pctx prng ppk 5))
      in
      let t_mul, pprod = once "mul" (fun () -> Bgv.mul pa pb) in
      let t_relin, prelin = once "relinearize" (fun () -> Bgv.relinearize pctx prk pprod) in
      let t_dec, ppt = once "decrypt" (fun () -> Bgv.decrypt pctx psk prelin) in
      let module Plaintext = Mycelium_bgv.Plaintext in
      if Plaintext.coeff ppt 8 <> 1 || Plaintext.coeff ppt 7 <> 0 then
        failwith "bench ringops: paper-profile pipeline decrypted incorrectly";
      say "  decrypt(x^3 * x^5) = x^8: ok\n";
      [ ("levels", Int levels);
        ("bgv_mul_speedup_4096", Num speedup_4096);
        ("bgv_mul_old_ns_4096", Num bgv_old);
        ("bgv_mul_ns_4096", Num bgv_new);
        ( "paper_profile",
          Obj
            ([
               ("degree", Int Params.paper.Params.degree);
               ("modulus_bits", Int (Params.modulus_bits Params.paper));
               ("backend", Str (Rns.backend_name (Bgv.basis pctx)));
             ]
            @ [ t_ctx; t_keygen; t_rk; t_enc; t_mul; t_relin; t_dec ]) );
        ("degrees", List (List.map snd rows)) ])

(* ------------------------------------------------------------------ *)
(* Mixnet at scale: the Figure 7-9 quantities, measured                *)
(* ------------------------------------------------------------------ *)

(* Streams the arena simulator (DESIGN.md §12) across population
   sizes with churn and Byzantine fractions, and reports the measured
   counterparts of the paper's mixnet evaluation: anonymity-set size
   (Fig 7), identification probability (Fig 8), C-round duration and
   deposited bytes / goodput (Fig 9).  Every cell uses [fast_keys] —
   the sweep measures forwarding, mixing and verification, not modular
   exponentiation at setup.  The 10^6-device flagship runs only in a
   full bench (it takes minutes); under --check the reduced cells
   rerun and gate against the committed BENCH_pr7.json. *)

(* The n=10^5 anchor's measurements, for the --check gate. *)
let mixnet_anchor = ref None

let () =
  section "mixnet" (fun () ->
      say "\n=== Mixnet: streaming simulator at scale (Figures 7-9) ===\n";
      say "  %-14s %6s %5s %9s %9s %7s %7s %10s %10s %8s\n" "cell" "churn" "byz"
        "setup s" "round s" "anon" "ident" "dep MB" "goodput" "heap MB";
      let h_round = Obs.Metrics.histogram "bench.mixnet.cround_seconds" in
      let h_goodput = Obs.Metrics.histogram "bench.mixnet.goodput_mbps" in
      let payload = Bytes.make 32 'q' in
      let run_cell ~label ~n ~degree ~churn ~byz ~qrounds ~verify_sample ~anon_sample =
        let cfg =
          {
            Sim.default_config with
            Sim.n_devices = n;
            degree;
            hops = 3;
            replicas = 2;
            fraction = 0.1;
            churn;
            malicious_fraction = byz;
            fast_setup = true;
            fast_keys = true;
            verify_sample;
            anon_sample;
            seed = 20260809L;
          }
        in
        let t = Sim.create cfg in
        let t0 = Unix.gettimeofday () in
        let (_ : Sim.setup_stats) = Sim.setup_paths t in
        let setup_s = Unix.gettimeofday () -. t0 in
        let round_s = ref 0. in
        let sent = ref 0 and delivered = ref 0 and identified = ref 0 in
        let dep_bytes = ref 0 in
        let anon_sum = ref 0. and anon_n = ref 0 in
        for _ = 1 to qrounds do
          let t0 = Unix.gettimeofday () in
          let r = Sim.run_query_round t ~payload in
          let dt = Unix.gettimeofday () -. t0 in
          round_s := !round_s +. dt;
          Obs.Metrics.observe h_round dt;
          sent := !sent + r.Sim.messages_sent;
          delivered := !delivered + r.Sim.delivered;
          identified := !identified + r.Sim.identified;
          dep_bytes := !dep_bytes + r.Sim.deposited_bytes;
          Array.iter
            (fun s ->
              anon_sum := !anon_sum +. float_of_int s;
              incr anon_n)
            r.Sim.anonymity_sets
        done;
        let anon_mean = if !anon_n = 0 then 0. else !anon_sum /. float_of_int !anon_n in
        let ident_prob = float_of_int !identified /. float_of_int (max 1 !sent) in
        (* Goodput: delivered payload bytes per second of C-round time
           (Fig 9's useful-throughput axis, with the deposited-bytes
           column giving the overhead it is paid for). *)
        let goodput =
          float_of_int (!delivered * Bytes.length payload) /. max 1e-9 !round_s
        in
        Obs.Metrics.observe h_goodput (goodput /. 1e6);
        let fp = Sim.footprint t in
        let heap_bytes = (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8) in
        say "  %-14s %6.2f %5.2f %9.2f %9.2f %7.1f %7.4f %10.1f %8.2f/s %8d\n" label
          churn byz setup_s
          (!round_s /. float_of_int qrounds)
          anon_mean ident_prob
          (float_of_int !dep_bytes /. 1e6)
          (goodput /. 1e6)
          (heap_bytes / (1024 * 1024));
        if n = 100_000 then mixnet_anchor := Some (goodput, heap_bytes);
        Obj
          [
            ("label", Str label);
            ("n", Int n);
            ("churn", Num churn);
            ("byz", Num byz);
            ("query_rounds", Int qrounds);
            ("setup_seconds", Num setup_s);
            ("cround_seconds", Num (!round_s /. float_of_int (qrounds * cfg.Sim.hops + qrounds)));
            ("round_seconds", Num (!round_s /. float_of_int qrounds));
            ("messages", Int !sent);
            ("delivered", Int !delivered);
            ("anonymity_mean", Num anon_mean);
            ("identification_probability", Num ident_prob);
            ("deposited_bytes", Int !dep_bytes);
            ("goodput_bytes_per_s", Num goodput);
            ("slot_capacity", Int fp.Sim.slot_capacity);
            ("arena_bytes", Int fp.Sim.arena_bytes);
            ("top_heap_bytes", Int heap_bytes);
          ]
      in
      Obs.with_enabled (fun () ->
          let cells = ref [] in
          let add c = cells := c :: !cells in
          (* Churn x Byzantine sweep at n=10^4: the Fig 7/8 axes. *)
          List.iter
            (fun churn ->
              List.iter
                (fun byz ->
                  add
                    (run_cell
                       ~label:(Printf.sprintf "n10k-c%g-b%g" churn byz)
                       ~n:10_000 ~degree:2 ~churn ~byz ~qrounds:1 ~verify_sample:0
                       ~anon_sample:0))
                [ 0.0; 0.02; 0.1 ])
            [ 0.0; 0.05 ];
          (* The n=10^5 anchor: sampled verification and closure, two
             query rounds — the cell the --check gate reruns. *)
          add
            (run_cell ~label:"n100k" ~n:100_000 ~degree:1 ~churn:0.01 ~byz:0.02
               ~qrounds:2 ~verify_sample:101 ~anon_sample:13);
          (* The 10^6 flagship: the paper's Fig 9 scale.  Skipped under
             --check (minutes of runtime); the gate instead asserts the
             committed record has it. *)
          if not check_mode then
            add
              (run_cell ~label:"n1000k" ~n:1_000_000 ~degree:1 ~churn:0.01 ~byz:0.02
                 ~qrounds:2 ~verify_sample:1009 ~anon_sample:101);
          [ ("payload_bytes", Int (Bytes.length payload)); ("cells", List (List.rev !cells)) ]))

(* ------------------------------------------------------------------ *)
(* Lint: the full-repo static-analysis pass                            *)
(* ------------------------------------------------------------------ *)

(* Times the same walk `dune build @lint` runs — parse every .ml/.mli
   under lib/, bin/, bench/ and test/ and check every rule — so the
   cost of the gate is tracked alongside the code it gates.  Skipped
   gracefully when the sources are not reachable from the working
   directory (an installed binary run elsewhere). *)

(* (cold_ms, warm_ms, warm summarizations) for the --check gate below. *)
let analyze_cold_warm_ms = ref None

let () =
  section "lint" (fun () ->
      let module Lint = Mycelium_lint.Lint in
      let rec find_root dir =
        if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
        else begin
          let parent = Filename.dirname dir in
          if String.equal parent dir then None else find_root parent
        end
      in
      let root =
        match find_root (Sys.getcwd ()) with
        | Some r when Sys.file_exists (Filename.concat r "lib") -> Some r
        | Some _ | None -> None
      in
      match root with
      | None ->
        say "\n=== Lint: repository sources not found; section skipped ===\n";
        [ ("skipped", Bool true) ]
      | Some root ->
        let cwd = Sys.getcwd () in
        let report, dt =
          Fun.protect
            ~finally:(fun () -> Sys.chdir cwd)
            (fun () ->
              Sys.chdir root;
              let roots =
                List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]
              in
              let t0 = Unix.gettimeofday () in
              let report = Lint.run ~roots () in
              (report, Unix.gettimeofday () -. t0))
        in
        let files = report.Lint.files in
        say "\n";
        say "=== Lint: full-repo static analysis ===\n";
        say "  %d files in %.1f ms (%.0f files/s)\n" files (dt *. 1e3)
          (float_of_int files /. dt);
        say "  violations %d, suppressed %d\n"
          (List.length report.Lint.violations)
          (List.length report.Lint.suppressed);
        let syntactic =
          [
            ("files", Int files);
            ("ms", Num (dt *. 1e3));
            ("files_per_s", Num (float_of_int files /. dt));
            ("violations", Int (List.length report.Lint.violations));
            ("suppressed", Int (List.length report.Lint.suppressed));
          ]
        in
        (* The interprocedural analyzer over the built .cmt trees: one
           cold run against a fresh summary cache, then warm runs (best
           of three) that should skip every summarization.  Skipped
           when the build tree is absent (installed binary, clean
           checkout). *)
        let build = Filename.concat root (Filename.concat "_build" "default") in
        let aroots =
          List.filter Sys.file_exists
            [ Filename.concat build "lib"; Filename.concat build "bin" ]
        in
        let module A = Mycelium_lint.Analyze in
        if aroots = [] || List.concat_map (fun r -> A.find_cmts r []) aroots = []
        then begin
          say "  (no .cmt build tree; analyzer cells skipped)\n";
          syntactic @ [ ("analyze_skipped", Bool true) ]
        end
        else begin
          let cache = Filename.temp_file "mycelium_analyze_bench" ".cache" in
          Sys.remove cache;
          Fun.protect
            ~finally:(fun () -> if Sys.file_exists cache then Sys.remove cache)
            (fun () ->
              let timed () =
                let t0 = Unix.gettimeofday () in
                let res = A.run ~cache ~roots:aroots () in
                (res, (Unix.gettimeofday () -. t0) *. 1e3)
              in
              let cold, cold_ms = timed () in
              let warms = List.init 3 (fun _ -> timed ()) in
              let warm, warm_ms =
                List.fold_left
                  (fun (br, bms) (r, ms) -> if ms < bms then (r, ms) else (br, bms))
                  (List.hd warms) (List.tl warms)
              in
              analyze_cold_warm_ms := Some (cold_ms, warm_ms, warm.A.stats.A.sa_summarized);
              let s = cold.A.stats in
              say "=== Analyze: interprocedural privacy flow ===\n";
              say "  %d modules, %d functions; cold %.1f ms, warm %.1f ms (%.2fx)\n"
                s.A.sa_modules s.A.sa_functions cold_ms warm_ms (cold_ms /. warm_ms);
              say "  violations %d, suppressed %d; warm cache hits %d/%d\n"
                (List.length cold.A.report.Lint.violations)
                (List.length cold.A.report.Lint.suppressed)
                warm.A.stats.A.sa_cache_hits s.A.sa_modules;
              syntactic
              @ [
                  ("analyze_modules", Int s.A.sa_modules);
                  ("analyze_functions", Int s.A.sa_functions);
                  ("analyze_cold_ms", Num cold_ms);
                  ("analyze_warm_ms", Num warm_ms);
                  ("analyze_warm_speedup", Num (cold_ms /. warm_ms));
                  ("analyze_violations", Int (List.length cold.A.report.Lint.violations));
                  ("analyze_suppressed", Int (List.length cold.A.report.Lint.suppressed));
                ])
        end)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Rng.create 42L in
  (* BGV at the medium test parameters: the per-operation costs behind
     §6.4 and Figure 9b. *)
  let ctx = Bgv.make_ctx Params.test_medium in
  let sk, pk = Bgv.keygen ctx rng in
  let ct_a = Bgv.encrypt_value ctx rng pk 1 in
  let ct_b = Bgv.encrypt_value ctx rng pk 2 in
  let prod = Bgv.mul ct_a ct_b in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  (* NTT at N=1024 (the figure-scaling primitive), plus the schoolbook
     oracle as an ablation. *)
  let p = List.hd (Ntt.find_primes ~degree:1024 ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:1024 in
  let poly_a = Array.init 1024 (fun i -> (i * 7) mod p) in
  let poly_b = Array.init 1024 (fun i -> (i * 13) mod p) in
  let p256 = List.hd (Ntt.find_primes ~degree:256 ~bits:28 ~count:1) in
  let small_plan = Ntt.make_plan ~p:p256 ~degree:256 in
  let small_a = Array.init 256 (fun i -> (i * 7) mod p256) in
  let small_b = Array.init 256 (fun i -> (i * 13) mod p256) in
  (* Crypto primitives behind the mixnet figures. *)
  let msg_4k = Bytes.create 4096 in
  let key32 = Rng.bytes rng 32 in
  let hop_keys = List.init 3 (fun _ -> Rng.bytes rng 32) in
  let eg_pk, eg_sk = Elgamal.generate rng in
  let eg_ct = Elgamal.encrypt rng eg_pk key32 in
  let leaves = Array.init 256 (fun i -> Bytes.of_string (string_of_int i)) in
  let tree = Merkle.build leaves in
  let shamir_p = 1073479681 in
  [
    Test.make ~name:"fig9b/bgv-add" (Staged.stage (fun () -> ignore (Bgv.add ct_a ct_b)));
    Test.make ~name:"sec6_4/bgv-encrypt" (Staged.stage (fun () -> ignore (Bgv.encrypt_value ctx rng pk 3)));
    Test.make ~name:"sec6_4/bgv-mul" (Staged.stage (fun () -> ignore (Bgv.mul ct_a ct_b)));
    Test.make ~name:"sec6_4/bgv-relinearize" (Staged.stage (fun () -> ignore (Bgv.relinearize ctx rk prod)));
    Test.make ~name:"ablation/ntt-mul-1024" (Staged.stage (fun () -> ignore (Ntt.multiply plan poly_a poly_b)));
    Test.make ~name:"ablation/naive-mul-256" (Staged.stage (fun () -> ignore (Ntt.multiply_naive ~p:p256 small_a small_b)));
    Test.make ~name:"ablation/ntt-mul-256" (Staged.stage (fun () -> ignore (Ntt.multiply small_plan small_a small_b)));
    Test.make ~name:"fig5/sha256-4k" (Staged.stage (fun () -> ignore (Sha256.digest msg_4k)));
    Test.make ~name:"fig5/chacha20-4k"
      (Staged.stage (fun () ->
           ignore (Chacha20.encrypt ~key:key32 ~nonce:(Chacha20.nonce_of_round 1) msg_4k)));
    Test.make ~name:"fig5/onion-wrap-3hops"
      (Staged.stage (fun () -> ignore (Onion.wrap ~hop_keys ~round:1 msg_4k)));
    Test.make ~name:"fig5d/elgamal-encrypt" (Staged.stage (fun () -> ignore (Elgamal.encrypt rng eg_pk key32)));
    Test.make ~name:"fig5d/elgamal-decrypt" (Staged.stage (fun () -> ignore (Elgamal.decrypt eg_sk eg_ct)));
    Test.make ~name:"fig9a/merkle-build-256" (Staged.stage (fun () -> ignore (Merkle.build leaves)));
    Test.make ~name:"fig9a/merkle-prove" (Staged.stage (fun () -> ignore (Merkle.prove tree 17)));
    Test.make ~name:"fig8/shamir-share-c10"
      (Staged.stage (fun () ->
           ignore (Shamir.share_secret ~p:shamir_p rng ~threshold:4 ~parties:10 123456)));
  ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None () in
  let grouped = Test.make_grouped ~name:"mycelium" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  say "\n";
  say "=== Micro-benchmarks (Bechamel) ===\n";
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        let pretty =
          if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
          else Printf.sprintf "%8.0f ns" est
        in
        say "  %-32s %s\n" name pretty;
        Some (name, Num est)
      | Some [] | None ->
        say "  %-32s (no estimate)\n" name;
        None)
    rows

let () =
  if (not skip_micro) && only = None then begin
    let t0 = Unix.gettimeofday () in
    let estimates = run_micro () in
    json_sections :=
      ( "micro",
        Obj
          [
            ("seconds", Num (Unix.gettimeofday () -. t0));
            ("estimates_ns", Obj estimates);
          ] )
      :: !json_sections
  end

(* ------------------------------------------------------------------ *)
(* JSON document (last: every section has run)                         *)
(* ------------------------------------------------------------------ *)

let () =
  if json_mode then
    print_endline
      (Json.to_string
         (Obj
            [
              ("schema", Str "mycelium-bench/1");
              ("cores", Int (Domain.recommended_domain_count ()));
              ("sections", Obj (List.rev !json_sections));
            ]))

(* ------------------------------------------------------------------ *)
(* --check: the ringops CI gate (runs last so --json stays intact)     *)
(* ------------------------------------------------------------------ *)

(* Fails the process unless the Montgomery forward at N=8192 measured
   above is at least 2x faster than the ntt_forward_ns committed in
   BENCH_pr4.json (the Reference-backend number of record).  Keeps the
   backend's reason to exist from silently regressing. *)
let () =
  if check_mode && wants "ringops" then begin
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check: " ^ s); exit 1) fmt in
    let reference_ns =
      let rec find_root dir =
        if Sys.file_exists (Filename.concat dir "BENCH_pr4.json") then Some dir
        else
          let parent = Filename.dirname dir in
          if String.equal parent dir then None else find_root parent
      in
      match find_root (Sys.getcwd ()) with
      | None -> fail "BENCH_pr4.json not found upward of %s" (Sys.getcwd ())
      | Some root ->
        let path = Filename.concat root "BENCH_pr4.json" in
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Json.parse s with
        | Error e -> fail "%s does not parse: %s" path e
        | Ok doc ->
          let ( >>= ) o f = Option.bind o f in
          let row =
            Json.member "sections" doc >>= Json.member "ringops"
            >>= Json.member "degrees"
            >>= function
            | List rows ->
              List.find_opt
                (fun r -> Json.member "degree" r = Some (Int 8192))
                rows
            | _ -> None
          in
          (match row >>= Json.member "ntt_forward_ns" with
          | Some (Num ns) -> ns
          | _ -> fail "%s has no ntt_forward_ns row at degree 8192" path))
    in
    match !mont_fwd_8192_ns with
    | None -> fail "ringops section did not measure the N=8192 forward"
    | Some measured ->
      let speedup = reference_ns /. measured in
      if speedup < 2.0 then
        fail
          "montgomery forward at N=8192 is %.0f ns vs %.0f ns committed (%.2fx < 2x floor)"
          measured reference_ns speedup;
      say "check: montgomery forward at N=8192: %.0f ns vs %.0f ns committed (%.2fx >= 2x) ok\n"
        measured reference_ns speedup
  end

(* ------------------------------------------------------------------ *)
(* --check: the analyzer summary-cache gate                            *)
(* ------------------------------------------------------------------ *)

(* The cache's reason to exist: a warm run must skip every
   summarization and come in measurably under the cold run (best warm
   of three against one cold, so scheduler noise cannot flip it). *)
let () =
  if check_mode && wants "lint" then begin
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check: " ^ s); exit 1) fmt in
    match !analyze_cold_warm_ms with
    | None -> say "check: analyzer cells skipped (no build tree); cache gate not applicable\n"
    | Some (cold_ms, warm_ms, warm_summarized) ->
      if warm_summarized <> 0 then
        fail "warm analyzer run re-summarized %d modules (want 0)" warm_summarized;
      if warm_ms >= cold_ms *. 0.9 then
        fail "warm analyzer run %.1f ms vs cold %.1f ms (< 1.11x; cache buys nothing)"
          warm_ms cold_ms;
      say "check: analyzer summary cache: cold %.1f ms, warm %.1f ms (%.2fx) ok\n"
        cold_ms warm_ms (cold_ms /. warm_ms)
  end

(* ------------------------------------------------------------------ *)
(* --check: the mixnet memory/throughput gate                          *)
(* ------------------------------------------------------------------ *)

(* Reruns the reduced-N mixnet cells (the section above skips the 10^6
   flagship under --check) and compares the n=10^5 anchor against the
   committed BENCH_pr7.json: top-heap must stay under 2x the committed
   bytes (a leak regression at this scale at least doubles it) and
   goodput must hold 0.6x the committed rate (generous to scheduler
   noise — losing the arena path costs far more than that).  Also
   asserts the committed record still carries the flagship cell, so
   the 10^6 measurement of record cannot silently vanish. *)
let () =
  if check_mode && wants "mixnet" then begin
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check: " ^ s); exit 1) fmt in
    let ( >>= ) o f = Option.bind o f in
    let doc =
      let rec find_root dir =
        if Sys.file_exists (Filename.concat dir "BENCH_pr7.json") then Some dir
        else
          let parent = Filename.dirname dir in
          if String.equal parent dir then None else find_root parent
      in
      match find_root (Sys.getcwd ()) with
      | None -> fail "BENCH_pr7.json not found upward of %s" (Sys.getcwd ())
      | Some root ->
        let path = Filename.concat root "BENCH_pr7.json" in
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Json.parse s with
        | Error e -> fail "BENCH_pr7.json does not parse: %s" e
        | Ok doc -> doc)
    in
    let cells =
      match Json.member "sections" doc >>= Json.member "mixnet" >>= Json.member "cells" with
      | Some (List cells) -> cells
      | _ -> fail "BENCH_pr7.json has no mixnet cells"
    in
    let cell label =
      List.find_opt
        (fun c -> match Json.member "label" c with Some (Str l) -> String.equal l label | _ -> false)
        cells
    in
    if cell "n1000k" = None then fail "BENCH_pr7.json lost the n=10^6 flagship cell";
    let committed_goodput, committed_heap =
      match
        ( cell "n100k" >>= Json.member "goodput_bytes_per_s",
          cell "n100k" >>= Json.member "top_heap_bytes" )
      with
      | Some (Num g), Some (Int h) -> (g, h)
      | _ -> fail "BENCH_pr7.json anchor cell n100k is missing goodput or heap"
    in
    match !mixnet_anchor with
    | None -> fail "mixnet section did not run the n=10^5 anchor"
    | Some (goodput, heap) ->
      if heap > 2 * committed_heap then
        fail "mixnet anchor top-heap %d MB vs %d MB committed (> 2x ceiling)"
          (heap / (1024 * 1024))
          (committed_heap / (1024 * 1024));
      if goodput < 0.6 *. committed_goodput then
        fail "mixnet anchor goodput %.2f MB/s vs %.2f MB/s committed (< 0.6x floor)"
          (goodput /. 1e6) (committed_goodput /. 1e6);
      say "check: mixnet anchor heap %d MB <= 2x %d MB, goodput %.2f MB/s >= 0.6x %.2f MB/s ok\n"
        (heap / (1024 * 1024))
        (committed_heap / (1024 * 1024))
        (goodput /. 1e6) (committed_goodput /. 1e6)
  end

(* ------------------------------------------------------------------ *)
(* --check: the telemetry gate                                         *)
(* ------------------------------------------------------------------ *)

(* Compares the telemetry section against the committed BENCH_pr8.json:
   the 1ms-sampler overhead may drift at most 10 percentage points
   above the committed figure (the sampler must stay in the noise of a
   ~100ms query), and the recorder's note throughput must hold 0.2x the
   committed rate (losing the lock-free path costs an order of
   magnitude, well past that floor).  Both thresholds are generous to
   scheduler noise on shared CI hosts. *)
let () =
  if check_mode && wants "telemetry" then begin
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check: " ^ s); exit 1) fmt in
    let ( >>= ) o f = Option.bind o f in
    let doc =
      let rec find_root dir =
        if Sys.file_exists (Filename.concat dir "BENCH_pr8.json") then Some dir
        else
          let parent = Filename.dirname dir in
          if String.equal parent dir then None else find_root parent
      in
      match find_root (Sys.getcwd ()) with
      | None -> fail "BENCH_pr8.json not found upward of %s" (Sys.getcwd ())
      | Some root ->
        let path = Filename.concat root "BENCH_pr8.json" in
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Json.parse s with
        | Error e -> fail "BENCH_pr8.json does not parse: %s" e
        | Ok doc -> doc)
    in
    let sec = Json.member "sections" doc >>= Json.member "telemetry" in
    let committed_pct, committed_rate =
      match
        ( sec >>= Json.member "sampler_1ms_overhead_pct",
          sec >>= Json.member "recorder_events_per_s" )
      with
      | Some (Num p), Some (Num r) -> (p, r)
      | _ -> fail "BENCH_pr8.json telemetry section is missing its gate fields"
    in
    match !telemetry_measured with
    | None -> fail "telemetry section did not run"
    | Some (pct, rate) ->
      if pct > committed_pct +. 10.0 then
        fail "sampler @ 1ms overhead %.1f%% vs %.1f%% committed (> +10 point ceiling)" pct
          committed_pct;
      if rate < 0.2 *. committed_rate then
        fail "recorder throughput %.2f M events/s vs %.2f M committed (< 0.2x floor)"
          (rate /. 1e6) (committed_rate /. 1e6);
      say
        "check: telemetry sampler %.1f%% <= %.1f%%+10, recorder %.2f M/s >= 0.2x %.2f M/s ok\n"
        pct committed_pct (rate /. 1e6) (committed_rate /. 1e6)
  end

(* ------------------------------------------------------------------ *)
(* --check: the serving gate                                           *)
(* ------------------------------------------------------------------ *)

(* The serving section already verified byte-identity between the
   batched and sequential releases; the gate holds the performance
   claim: warm batch-8 serving must sustain at least 2x the sequential
   qps measured in the same run (the acceptance target is 3x; the CI
   floor leaves room for scheduler noise on shared hosts).  An in-run
   ratio, so the gate is host-speed independent. *)
let () =
  if check_mode && wants "serving" then begin
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check: " ^ s); exit 1) fmt in
    match !serving_measured with
    | None -> fail "serving section did not run"
    | Some speedup ->
      if speedup < 2.0 then
        fail "warm batch-8 serving is %.2fx the sequential baseline (< 2x floor)" speedup;
      say "check: warm batch-8 serving %.2fx >= 2x sequential baseline ok\n" speedup
  end
