(* cmt -> module summary: the local half of mycelium-analyze.

   One pass over a module's typedtree produces, per top-level (and
   nested-module-level) binding, a symbolic summary — result sym,
   call-site table, mutable-cell table — plus the module's
   pool-purity findings, which are purely local and therefore decided
   here so they cache with the summary.

   Conventions and approximations (DESIGN.md §15 spells these out):

   - Canonical names: local module aliases ([module Dp =
     Mycelium_dp.Dp]) are expanded, dune wrapper mangling
     ([Lib__Mod]) becomes [Lib.Mod], executables lose their
     [Dune__exe__] prefix.  The typechecker already resolved [open]s.

   - Mutable cells are tracked per (root identifier, record field):
     every write joins into the cell, every read of the identifier
     sees the join of all writes in the same function.  The function
     body is walked twice so a read textually before a write (loops,
     backpatching) still observes it.  Cross-function mutable state
     (one function writes a field, another reads it) is out of scope.

   - A closure literal passed to an unknown higher-order function is
     analyzed with its parameters bound to the join of the call's
     other arguments — the [List.map f xs] idiom flows xs through f.
     Other closures are analyzed with unknown (bottom) parameters.

   - Conditions of if/match do not taint the branches (no implicit
     flows). *)

module T = Typedtree

module IdentMap = Map.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

type pre_violation = { pv_line : int; pv_col : int; pv_msg : string }

(* ------------------------------------------------------------------ *)
(* Canonical names                                                     *)
(* ------------------------------------------------------------------ *)

let nice_unit name =
  let name =
    if String.starts_with ~prefix:"Dune__exe__" name then
      String.sub name 11 (String.length name - 11)
    else name
  in
  (* dune wrapper mangling: Mycelium_dp__Dp -> Mycelium_dp.Dp *)
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

type state = {
  st_unit : string;
  st_source : string;
  mutable st_aliases : string IdentMap.t;  (* local module alias -> canonical *)
  mutable st_globals : string IdentMap.t;  (* unit-level value -> canonical *)
  mutable st_funs : Taint.fsummary list;
  mutable st_pool : pre_violation list;
  mutable st_anon : int;
}

let rec canon st (p : Path.t) =
  match p with
  | Path.Pident id -> (
    match IdentMap.find_opt id st.st_aliases with
    | Some s -> s
    | None -> nice_unit (Ident.name id))
  | Path.Pdot (p, s) -> canon st p ^ "." ^ s
  | Path.Papply _ -> nice_unit (Path.name p)
  | Path.Pextra_ty (p, _) -> canon st p

(* ------------------------------------------------------------------ *)
(* Small typedtree helpers                                             *)
(* ------------------------------------------------------------------ *)

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let label_string = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled l -> "~" ^ l
  | Asttypes.Optional l -> "?" ^ l

(* Immediate sub-expressions of a node, one level deep: the generic
   fallback for constructs the walker does not model. *)
let children_of (e : T.expression) =
  let acc = ref [] in
  let shallow =
    { Tast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc)
    }
  in
  Tast_iterator.default_iterator.expr shallow e;
  List.rev !acc

(* All idents bound anywhere inside an expression (closure params,
   let/match bindings, loop indices): the capture test of
   pool-purity. *)
let bound_idents_in (e : T.expression) =
  let acc = ref [] in
  let it =
    { Tast_iterator.default_iterator with
      pat = (fun _sub p -> acc := T.pat_bound_idents p @ !acc);
      expr =
        (fun sub ex ->
          (match ex.T.exp_desc with
          | T.Texp_for (id, _, _, _, _, _) -> acc := id :: !acc
          | T.Texp_function { param; _ } -> acc := param :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr sub ex)
    }
  in
  it.expr it e;
  !acc

let mentions_any ids (e : T.expression) =
  let hit = ref false in
  let it =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub ex ->
          (match ex.T.exp_desc with
          | T.Texp_ident (Path.Pident id, _, _)
            when List.exists (Ident.same id) ids ->
            hit := true
          | _ -> ());
          if not !hit then Tast_iterator.default_iterator.expr sub ex)
    }
  in
  it.expr it e;
  !hit

(* The root identifier of a write target: digs through record fields
   and through reads like [a.(i)] / [Hashtbl.find t k]. *)
let rec root_ident (e : T.expression) =
  match e.T.exp_desc with
  | T.Texp_ident (Path.Pident id, _, _) -> Some id
  | T.Texp_ident _ -> None
  | T.Texp_field (e, _, _) -> root_ident e
  | T.Texp_apply (_, args) -> (
    match
      List.find_opt (fun (l, a) -> l = Asttypes.Nolabel && a <> None) args
    with
    | Some (_, Some a) -> root_ident a
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-function walker                                             *)
(* ------------------------------------------------------------------ *)

type fctx = {
  fc_st : state;
  mutable fc_env : Taint.sym IdentMap.t;
  mutable fc_calls : Taint.call list;  (* reversed *)
  mutable fc_ncalls : int;
  fc_cells : (Ident.t * string option, int) Hashtbl.t;
  mutable fc_cell_syms : Taint.sym list array;  (* writes per cell, reversed *)
  mutable fc_recording : bool;  (* false on pass 1: cells only *)
}

let cell_id fc key =
  match Hashtbl.find_opt fc.fc_cells key with
  | Some i -> i
  | None ->
    let i = Hashtbl.length fc.fc_cells in
    Hashtbl.add fc.fc_cells key i;
    if i >= Array.length fc.fc_cell_syms then begin
      let bigger = Array.make (max 8 (2 * (i + 1))) [] in
      Array.blit fc.fc_cell_syms 0 bigger 0 (Array.length fc.fc_cell_syms);
      fc.fc_cell_syms <- bigger
    end;
    i

let cell_write fc id tag sym =
  let c = cell_id fc (id, tag) in
  fc.fc_cell_syms.(c) <- sym :: fc.fc_cell_syms.(c)

(* Reading an identifier that has mutable cells: the untagged cell
   joins in whole, the field-tagged cells become record fields so
   projections stay precise. *)
let read_ident fc id base =
  let tagged = ref [] and whole = ref [ base ] in
  Hashtbl.iter
    (fun (i, tag) c ->
      if Ident.same i id then
        match tag with
        | None -> whole := Taint.Cell c :: !whole
        | Some f -> tagged := (f, Taint.Cell c) :: !tagged)
    fc.fc_cells;
  match !tagged with
  | [] -> Taint.mk_join !whole
  | fields -> Taint.RecordS (fields, Taint.mk_join !whole)

let add_call fc fn args loc =
  let line, col = line_col loc in
  let i = fc.fc_ncalls in
  fc.fc_calls <- { Taint.c_fn = fn; c_args = args; c_line = line; c_col = col } :: fc.fc_calls;
  fc.fc_ncalls <- i + 1;
  Taint.Call i

let float_lit fc (loc : Location.t) =
  let line, _ = line_col loc in
  Taint.Lit
    {
      Taint.f_level = Taint.Public;
      f_srcs = [];
      f_eps =
        [ { Taint.o_what = "float constant"; o_file = fc.fc_st.st_source; o_line = line } ];
    }

(* value-pattern bindings against a scrutinee sym *)
let rec bind_pat fc (p : T.pattern) s =
  match p.T.pat_desc with
  | T.Tpat_var (id, _) -> fc.fc_env <- IdentMap.add id s fc.fc_env
  | T.Tpat_alias (p, id, _) ->
    fc.fc_env <- IdentMap.add id s fc.fc_env;
    bind_pat fc p s
  | T.Tpat_tuple ps | T.Tpat_array ps -> List.iter (fun p -> bind_pat fc p s) ps
  | T.Tpat_construct (_, _, ps, _) -> List.iter (fun p -> bind_pat fc p s) ps
  | T.Tpat_variant (_, po, _) -> Option.iter (fun p -> bind_pat fc p s) po
  | T.Tpat_record (fields, _) ->
    List.iter (fun (_, lbl, p) -> bind_pat fc p (Taint.mk_field lbl.Types.lbl_name s)) fields
  | T.Tpat_lazy p -> bind_pat fc p s
  | T.Tpat_or (a, b, _) ->
    bind_pat fc a s;
    bind_pat fc b s
  | T.Tpat_any | T.Tpat_constant _ -> ()

let bind_computation_pat fc (p : T.computation T.general_pattern) s =
  let value_pat, exn_pat = T.split_pattern p in
  Option.iter (fun p -> bind_pat fc p s) value_pat;
  Option.iter (fun p -> bind_pat fc p Taint.Bot) exn_pat

(* ------------------------------------------------------------------ *)
(* Expression -> sym                                                   *)
(* ------------------------------------------------------------------ *)

let rec expr_sym fc (e : T.expression) : Taint.sym =
  match e.T.exp_desc with
  | T.Texp_ident (Path.Pident id, _, _) -> (
    match IdentMap.find_opt id fc.fc_env with
    | Some s -> read_ident fc id s
    | None -> (
      match IdentMap.find_opt id fc.fc_st.st_globals with
      | Some name -> add_call fc name [] e.T.exp_loc
      | None -> read_ident fc id Taint.Bot))
  | T.Texp_ident (p, _, _) -> add_call fc (canon fc.fc_st p) [] e.T.exp_loc
  | T.Texp_constant (Asttypes.Const_float _) -> float_lit fc e.T.exp_loc
  | T.Texp_constant _ -> Taint.Bot
  | T.Texp_let (rf, vbs, body) ->
    (match rf with
    | Asttypes.Recursive ->
      List.iter (fun vb -> bind_pat_general fc vb.T.vb_pat Taint.Bot) vbs;
      List.iter (fun vb -> ignore (expr_sym fc vb.T.vb_expr)) vbs
    | Asttypes.Nonrecursive ->
      List.iter
        (fun vb ->
          let s = expr_sym fc vb.T.vb_expr in
          bind_pat_general fc vb.T.vb_pat s)
        vbs);
    expr_sym fc body
  | T.Texp_function { param; cases; _ } ->
    (* a closure used as a value: parameters unknown *)
    lambda_sym fc param cases Taint.Bot
  | T.Texp_apply (head, args) -> apply_sym fc e head args
  | T.Texp_match (scrut, cases, _) ->
    let s = expr_sym fc scrut in
    Taint.mk_join
      (List.map
         (fun c ->
           bind_computation_pat fc c.T.c_lhs s;
           Option.iter (fun g -> ignore (expr_sym fc g)) c.T.c_guard;
           expr_sym fc c.T.c_rhs)
         cases)
  | T.Texp_try (body, cases) ->
    let b = expr_sym fc body in
    Taint.mk_join
      (b
      :: List.map
           (fun c ->
             bind_pat fc c.T.c_lhs Taint.Bot;
             Option.iter (fun g -> ignore (expr_sym fc g)) c.T.c_guard;
             expr_sym fc c.T.c_rhs)
           cases)
  | T.Texp_tuple es | T.Texp_array es -> Taint.mk_join (List.map (expr_sym fc) es)
  | T.Texp_construct (_, _, es) -> Taint.mk_join (List.map (expr_sym fc) es)
  | T.Texp_variant (_, eo) -> (
    match eo with Some e -> expr_sym fc e | None -> Taint.Bot)
  | T.Texp_record { fields; extended_expression; _ } ->
    let base =
      match extended_expression with
      | Some e -> expr_sym fc e
      | None -> Taint.Bot
    in
    let fs =
      Array.to_list fields
      |> List.map (fun (lbl, def) ->
             let name = lbl.Types.lbl_name in
             match def with
             | T.Kept (_, _) -> (name, Taint.mk_field name base)
             | T.Overridden (_, e) -> (name, expr_sym fc e))
    in
    Taint.RecordS (fs, Taint.Bot)
  | T.Texp_field (e, _, lbl) -> Taint.mk_field lbl.Types.lbl_name (expr_sym fc e)
  | T.Texp_setfield (target, _, lbl, value) ->
    let v = expr_sym fc value in
    ignore (expr_sym fc target);
    (match root_ident target with
    | Some id -> cell_write fc id (Some lbl.Types.lbl_name) v
    | None -> ());
    Taint.Bot
  | T.Texp_sequence (a, b) ->
    ignore (expr_sym fc a);
    expr_sym fc b
  | T.Texp_ifthenelse (c, t, eo) ->
    ignore (expr_sym fc c);
    let t = expr_sym fc t in
    Taint.mk_join (t :: (match eo with Some e -> [ expr_sym fc e ] | None -> []))
  | T.Texp_while (c, body) ->
    ignore (expr_sym fc c);
    ignore (expr_sym fc body);
    Taint.Bot
  | T.Texp_for (id, _, lo, hi, _, body) ->
    ignore (expr_sym fc lo);
    ignore (expr_sym fc hi);
    fc.fc_env <- IdentMap.add id Taint.Bot fc.fc_env;
    ignore (expr_sym fc body);
    Taint.Bot
  | T.Texp_open (_, body) -> expr_sym fc body
  | T.Texp_letmodule (ido, _, _, mexpr, body) ->
    (match (ido, mexpr.T.mod_desc) with
    | Some id, T.Tmod_ident (p, _) ->
      fc.fc_st.st_aliases <- IdentMap.add id (canon fc.fc_st p) fc.fc_st.st_aliases
    | _ -> ());
    expr_sym fc body
  | T.Texp_lazy e -> expr_sym fc e
  | T.Texp_assert (e, _) ->
    ignore (expr_sym fc e);
    Taint.Bot
  | _ ->
    (* generic: join of the immediate children, so calls inside
       unmodelled constructs are still recorded *)
    Taint.mk_join (List.map (expr_sym fc) (children_of e))

and bind_pat_general :
    type k. fctx -> k T.general_pattern -> Taint.sym -> unit =
 fun fc p s ->
  match T.classify_pattern p with
  | T.Value -> bind_pat fc p s
  | T.Computation -> bind_computation_pat fc p s

(* A closure literal: [param_sym] is what flows into its parameter
   chain (bottom when unknown, the sibling-argument join under the
   higher-order heuristic).  Returns the body's result sym. *)
and lambda_sym fc param cases param_sym =
  fc.fc_env <- IdentMap.add param param_sym fc.fc_env;
  Taint.mk_join
    (List.map
       (fun c ->
         bind_pat_general fc c.T.c_lhs param_sym;
         Option.iter (fun g -> ignore (expr_sym fc g)) c.T.c_guard;
         expr_sym fc c.T.c_rhs)
       cases)

and apply_sym fc e head args =
  let arg_exprs = List.filter_map (fun (l, a) -> Option.map (fun a -> (l, a)) a) args in
  match head.T.exp_desc with
  | T.Texp_ident (p, _, _) ->
    let fn =
      match p with
      | Path.Pident id -> (
        match IdentMap.find_opt id fc.fc_st.st_globals with
        | Some name -> Some name
        | None -> if IdentMap.mem id fc.fc_env then None else Some (canon fc.fc_st p))
      | _ -> Some (canon fc.fc_st p)
    in
    (match fn with
    | None ->
      (* call through a local binding: the binding's sym already
         approximates the closure's result *)
      let s = expr_sym fc head in
      Taint.mk_join (s :: List.map (fun (_, a) -> expr_sym fc a) arg_exprs)
    | Some fn ->
      if Policy.is_pool_entry fn then check_pool_purity fc arg_exprs;
      (* each argument is walked exactly once; non-lambda args first,
         so literal lambdas can see the join of their siblings (the
         higher-order heuristic) *)
      let pre =
        List.map
          (fun (l, a) ->
            match a.T.exp_desc with
            | T.Texp_function _ -> (l, a, None)
            | _ -> (l, a, Some (expr_sym fc a)))
          arg_exprs
      in
      let sibling = Taint.mk_join (List.filter_map (fun (_, _, s) -> s) pre) in
      let arg_syms =
        List.map
          (fun (l, a, s) ->
            let s =
              match (s, a.T.exp_desc) with
              | Some s, _ -> s
              | None, T.Texp_function { param; cases; _ } ->
                lambda_sym fc param cases sibling
              | None, _ -> Taint.Bot
            in
            (label_string l, s))
          pre
      in
      (match Policy.writer_of fn with
      | Some w -> (
        let positional =
          List.concat_map
            (fun ((l, a, _), (_, s)) ->
              if l = Asttypes.Nolabel then [ (a, s) ] else [])
            (List.combine pre arg_syms)
        in
        match List.nth_opt positional w.Policy.w_target with
        | Some (target, _) -> (
          match root_ident target with
          | Some id ->
            let v =
              match w.Policy.w_value with
              | Some vi -> (
                match List.nth_opt positional vi with
                | Some (_, s) -> s
                | None -> Taint.Bot)
              | None -> Taint.Bot
            in
            cell_write fc id None v
          | None -> ())
        | None -> ())
      | None -> ());
      add_call fc fn arg_syms e.T.exp_loc)
  | T.Texp_function { param; cases; _ } ->
    (* immediately-applied lambda: inline the first argument *)
    let first =
      match arg_exprs with
      | (_, a) :: _ -> expr_sym fc a
      | [] -> Taint.Bot
    in
    List.iter
      (fun (_, a) ->
        match a.T.exp_desc with
        | T.Texp_function _ -> ()
        | _ -> ignore (expr_sym fc a))
      (match arg_exprs with [] -> [] | _ :: rest -> rest);
    lambda_sym fc param cases first
  | _ ->
    Taint.mk_join (expr_sym fc head :: List.map (fun (_, a) -> expr_sym fc a) arg_exprs)

(* ------------------------------------------------------------------ *)
(* pool-purity                                                         *)
(* ------------------------------------------------------------------ *)

(* Closures passed positionally to Pool entry points must not write
   captured mutable state, unless the write is evidently
   disjoint-by-index: the element/offset argument mentions a variable
   bound inside the closure.  The sequential-decide /
   parallel-compute / sequential-merge shape falls out: decide and
   merge code runs outside the closure and may mutate freely. *)
and check_pool_purity fc arg_exprs =
  List.iter
    (fun (l, a) ->
      match (l, a.T.exp_desc) with
      | Asttypes.Nolabel, T.Texp_function _ ->
        let bound = bound_idents_in a in
        let report (loc : Location.t) msg =
          let line, col = line_col loc in
          if fc.fc_recording then
            fc.fc_st.st_pool <-
              { pv_line = line; pv_col = col; pv_msg = msg } :: fc.fc_st.st_pool
        in
        let it =
          { Tast_iterator.default_iterator with
            expr =
              (fun sub ex ->
                (match ex.T.exp_desc with
                | T.Texp_setfield (target, _, lbl, _) -> (
                  match root_ident target with
                  | Some id when not (List.exists (Ident.same id) bound) ->
                    if not (mentions_any bound target) then
                      report ex.T.exp_loc
                        (Printf.sprintf
                           "closure passed to the pool writes field '%s' of captured '%s'; \
                            parallel tasks may only write disjoint-by-index slots or \
                            mutate outside the closure (sequential decide/merge)"
                           lbl.Types.lbl_name (Ident.name id))
                  | _ -> ())
                | T.Texp_apply ({ T.exp_desc = T.Texp_ident (p, _, _); _ }, wargs) -> (
                  match Policy.writer_of (canon fc.fc_st p) with
                  | Some w -> (
                    let positional =
                      List.filter_map
                        (fun (l, a) ->
                          match (l, a) with
                          | Asttypes.Nolabel, Some a -> Some a
                          | _ -> None)
                        wargs
                    in
                    match List.nth_opt positional w.Policy.w_target with
                    | Some target -> (
                      match root_ident target with
                      | Some id when not (List.exists (Ident.same id) bound) ->
                        let disjoint =
                          match w.Policy.w_index with
                          | Some ii -> (
                            match List.nth_opt positional ii with
                            | Some ie -> mentions_any bound ie
                            | None -> false)
                          | None -> false
                        in
                        if not disjoint then
                          report ex.T.exp_loc
                            (Printf.sprintf
                               "closure passed to the pool mutates captured '%s' via %s \
                                with no closure-bound index; prove the writes \
                                disjoint-by-index or move them to the sequential \
                                decide/merge phase"
                               (Ident.name id) w.Policy.w_fn)
                      | _ -> ())
                    | None -> ())
                  | None -> ())
                | _ -> ());
                Tast_iterator.default_iterator.expr sub ex)
          }
        in
        it.expr it a
      | _ -> ())
    arg_exprs

(* ------------------------------------------------------------------ *)
(* Bindings and structures                                             *)
(* ------------------------------------------------------------------ *)

(* Walk a binding's leading fun-chain collecting parameter labels;
   multi-case [function] terminates the chain. *)
let rec fun_chain fc idx (e : T.expression) (labels : string list) =
  match e.T.exp_desc with
  | T.Texp_function { arg_label; param; cases; _ } -> (
    let labels = labels @ [ label_string arg_label ] in
    match cases with
    | [ { T.c_lhs; c_guard = None; c_rhs } ] ->
      bind_pat_general fc c_lhs (Taint.Param idx);
      fc.fc_env <- IdentMap.add param (Taint.Param idx) fc.fc_env;
      fun_chain fc (idx + 1) c_rhs labels
    | _ ->
      fc.fc_env <- IdentMap.add param (Taint.Param idx) fc.fc_env;
      let body =
        Taint.mk_join
          (List.map
             (fun c ->
               bind_pat_general fc c.T.c_lhs (Taint.Param idx);
               Option.iter (fun g -> ignore (expr_sym fc g)) c.T.c_guard;
               expr_sym fc c.T.c_rhs)
             cases)
      in
      (labels, body))
  | _ -> (labels, expr_sym fc e)

let fresh_fctx st =
  {
    fc_st = st;
    fc_env = IdentMap.empty;
    fc_calls = [];
    fc_ncalls = 0;
    fc_cells = Hashtbl.create 8;
    fc_cell_syms = Array.make 8 [];
    fc_recording = false;
  }

let summarize_binding st name (expr : T.expression) =
  let line, _ = line_col expr.T.exp_loc in
  let fc = fresh_fctx st in
  (* pass 1: discover mutable cells (reads before writes) *)
  ignore (fun_chain fc 0 expr []);
  (* pass 2: the real walk against the full cell map *)
  fc.fc_env <- IdentMap.empty;
  fc.fc_calls <- [];
  fc.fc_ncalls <- 0;
  Array.iteri (fun i _ -> fc.fc_cell_syms.(i) <- []) fc.fc_cell_syms;
  fc.fc_recording <- true;
  let labels, result = fun_chain fc 0 expr [] in
  let tags = Array.make (Hashtbl.length fc.fc_cells) None in
  Hashtbl.iter (fun (_, tag) c -> tags.(c) <- tag) fc.fc_cells;
  let cells =
    Array.init (Hashtbl.length fc.fc_cells) (fun i ->
        [ (tags.(i), Taint.mk_join (List.rev fc.fc_cell_syms.(i))) ])
  in
  st.st_funs <-
    {
      Taint.fs_name = name;
      fs_params = labels;
      fs_result = result;
      fs_calls = Array.of_list (List.rev fc.fc_calls);
      fs_cells = cells;
      fs_line = line;
    }
    :: st.st_funs

let rec structure_items st prefix items =
  (* register the unit's own bindings first so forward and recursive
     references resolve to canonical names *)
  List.iter
    (fun (si : T.structure_item) ->
      match si.T.str_desc with
      | T.Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.T.vb_pat.T.pat_desc with
            | T.Tpat_var (id, _) | T.Tpat_alias (_, id, _) ->
              st.st_globals <-
                IdentMap.add id (prefix ^ "." ^ Ident.name id) st.st_globals
            | _ -> ())
          vbs
      | T.Tstr_module mb -> (
        match (mb.T.mb_id, mb.T.mb_expr.T.mod_desc) with
        | Some id, T.Tmod_ident (p, _) ->
          st.st_aliases <- IdentMap.add id (canon st p) st.st_aliases
        | Some id, (T.Tmod_structure _ | T.Tmod_constraint _) ->
          st.st_aliases <- IdentMap.add id (prefix ^ "." ^ Ident.name id) st.st_aliases
        | _ -> ())
      | _ -> ())
    items;
  List.iter
    (fun (si : T.structure_item) ->
      match si.T.str_desc with
      | T.Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.T.vb_pat.T.pat_desc with
            | T.Tpat_var (id, _) | T.Tpat_alias (_, id, _) ->
              summarize_binding st (prefix ^ "." ^ Ident.name id) vb.T.vb_expr
            | _ ->
              st.st_anon <- st.st_anon + 1;
              summarize_binding st
                (Printf.sprintf "%s.(toplevel#%d)" prefix st.st_anon)
                vb.T.vb_expr)
          vbs
      | T.Tstr_eval (e, _) ->
        st.st_anon <- st.st_anon + 1;
        summarize_binding st (Printf.sprintf "%s.(toplevel#%d)" prefix st.st_anon) e
      | T.Tstr_module mb -> (
        match mb.T.mb_id with
        | Some id -> module_expr st (prefix ^ "." ^ Ident.name id) mb.T.mb_expr
        | None -> ())
      | _ -> ())
    items

and module_expr st prefix (m : T.module_expr) =
  match m.T.mod_desc with
  | T.Tmod_structure s -> structure_items st prefix s.T.str_items
  | T.Tmod_constraint (inner, _, _, _) -> module_expr st prefix inner
  | T.Tmod_ident _ | T.Tmod_functor _ | T.Tmod_apply _ | T.Tmod_apply_unit _
  | T.Tmod_unpack _ ->
    ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let of_cmt path : Taint.msummary option =
  let cmt = Cmt_format.read_cmt path in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
    let unit_name = nice_unit cmt.Cmt_format.cmt_modname in
    let source =
      match cmt.Cmt_format.cmt_sourcefile with Some s -> s | None -> path
    in
    let st =
      {
        st_unit = unit_name;
        st_source = source;
        st_aliases = IdentMap.empty;
        st_globals = IdentMap.empty;
        st_funs = [];
        st_pool = [];
        st_anon = 0;
      }
    in
    structure_items st unit_name str.T.str_items;
    Some
      {
        Taint.m_unit = st.st_unit;
        m_source = st.st_source;
        m_funs = List.rev st.st_funs;
        m_pool =
          List.rev_map (fun pv -> (pv.pv_line, pv.pv_col, pv.pv_msg)) st.st_pool;
      }
  | _ -> None
