(** mycelium-lint: a compiler-libs static-analysis pass over the
    repository's own sources, machine-checking the determinism,
    domain-safety and comparison invariants that DESIGN.md states in
    prose.  Zero external dependencies: parsing is the compiler's own
    [compiler-libs], JSON output is [Obs.Json].

    Rule catalogue, motivations and suppression syntax: DESIGN.md §10. *)

module Json = Mycelium_obs.Obs.Json

(** Which part of the tree a file belongs to; rules are scoped per
    zone (e.g. [obs-guard] only runs in [Lib_hot] = lib/math +
    lib/bgv, [determinism] exempts [Lib_rng] = lib/util/rng.ml). *)
type zone = Lint_rules.zone =
  | Lib
  | Lib_hot
  | Lib_rng
  | Bin
  | Bench
  | Test

type violation = Lint_rules.violation = {
  rule : string;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  msg : string;
}

type report = {
  files : int;  (** files analysed *)
  violations : violation list;  (** unsuppressed, sorted by (file, line, col) *)
  suppressed : violation list;  (** sites carrying a reasoned suppression *)
}

val rule_ids : string list
(** The closed set of rule identifiers accepted by suppressions —
    both the syntactic rules of this module and the interprocedural
    rules of [Analyze]. *)

(** {2 Suppression machinery, shared with [Analyze]} *)

type suppressions = {
  file_level : string list;
  by_line : (int * string) list;  (** (line, rule) *)
  ranges : (string * int * int) list;  (** (rule, first, last) — attrs *)
}

val scan_comment_suppressions : string -> string list * (int * string) list
(** [(file_level, by_line)] from the [(* lint: allow ... — reason *)]
    comment forms of one source text.  The attribute form is
    AST-positional and only available to the syntactic linter. *)

val is_suppressed : suppressions -> violation -> bool

val read_file : string -> string

val compare_violations : violation -> violation -> int

val json_of_violation : violation -> Json.t

val zone_of_rel : string -> zone option
(** Zone of a repo-root-relative path; [None] for files the linter
    does not analyse. *)

type kind = Ml | Mli

val lint_source : zone:zone -> file:string -> kind:kind -> string -> violation list * violation list
(** [lint_source ~zone ~file ~kind src] parses and checks one source
    text, returning [(violations, suppressed)].  Parse failures
    surface as a single ["parse-error"] violation. *)

val run : ?force_zone:zone -> roots:string list -> unit -> report
(** Walk [roots] (directories or single files, repo-root relative),
    analyse every [.ml]/[.mli] found — skipping [_build] and
    [lint_fixtures] — and aggregate.  [force_zone] pins every file to
    one zone (used by the fixture tests). *)

val json_of_report : report -> Json.t
val console_of_report : report -> string
