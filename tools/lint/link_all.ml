(* Nothing to run: this executable exists so that the @analyze rule
   can depend on it, which makes dune build every mycelium library in
   its (libraries ...) field — and building a library produces the
   .cmt files the analyzer walks.  See tools/lint/dune. *)

let () = ()
