(* mycelium-lint CLI.

     main.exe [--root DIR] [--json PATH|-] [ROOT...]

   Analyses every .ml/.mli under the given roots (default: lib bin
   bench test, relative to --root or the current directory), prints
   the console report, optionally writes the JSON report, and exits
   non-zero when unsuppressed violations remain. *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse roots json = function
    | "--root" :: dir :: rest ->
      Sys.chdir dir;
      parse roots json rest
    | "--json" :: path :: rest -> parse roots (Some path) rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      prerr_endline ("mycelium-lint: unknown option " ^ arg);
      exit 2
    | root :: rest -> parse (root :: roots) json rest
    | [] -> (List.rev roots, json)
  in
  let roots, json = parse [] None args in
  let roots = if roots = [] then [ "lib"; "bin"; "bench"; "test" ] else roots in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("mycelium-lint: no such root: " ^ r ^ " (run from the repo root or pass --root)");
        exit 2
      end)
    roots;
  let report = Mycelium_lint.Lint.run ~roots () in
  print_string (Mycelium_lint.Lint.console_of_report report);
  (match json with
  | Some "-" -> print_endline (Mycelium_lint.Lint.Json.to_string (Mycelium_lint.Lint.json_of_report report))
  | Some path ->
    let oc = open_out path in
    output_string oc (Mycelium_lint.Lint.Json.to_string (Mycelium_lint.Lint.json_of_report report));
    output_string oc "\n";
    close_out oc
  | None -> ());
  if report.violations <> [] then exit 1
