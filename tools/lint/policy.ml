(* The privacy policy of mycelium-analyze: which canonical names are
   sources, sanitizers, sinks and charge points, and the sets the
   budget-order and pool-purity rules are parameterized by.  This
   file IS the policy — reviewing a change to the repo's privacy
   discipline means reviewing a diff of this file (DESIGN.md §15).

   Canonical names are fully-expanded dotted paths as the analyzer
   resolves them from the typedtree: local module aliases expanded,
   dune wrapper mangling ["Lib__Mod"] rewritten to ["Lib.Mod"], the
   stdlib under its ["Stdlib."] prefix.

   Design decisions worth their comments:

   - Contact graphs become Secret at *construction* ([generate],
     [of_edges]); accessors ([neighbors], [k_hop], ...) propagate
     whatever the graph argument carries.  This is what makes
     [Contact_graph.clip_to_degree_bound] load-bearing: the runtime
     clips the graph once at init, every later accessor returns
     Clipped data, and a path that skips the clip keeps returning
     Secret.

   - [Committee.decrypt_and_release]/[decrypt_batch] are *noise*
     sanitizers, not sources: per the paper (§4.2) the committee adds
     the calibrated Laplace noise inside the MPC before anything
     reaches the aggregator.  Noise maps Clipped to Noised but leaves
     Secret alone — noise over unclipped data has unbounded
     sensitivity, so the Clipped→Noised ordering is enforced by the
     lattice itself.  Raw [Bgv.decrypt] stays a Secret source.

   - Structural graph aggregates ([population], [edge_count],
     [max_degree], [degree], [degree_bound], [horizon_days]) are
     neutral: they are config echoes or whole-population counts the
     operator already knows, not per-user data.  [vertex]/[neighbors]
     and friends do propagate.

   - Digests are neutral: cache keys and fault coordinates are
     derived from digests of query shapes and adjacency, and treating
     a hash as Secret would poison every key comparison while
     releasing nothing an analyst can invert.  (A formal treatment
     would call this a declassification point; it is listed here so
     the review trail says so.) *)

(* ------------------------------------------------------------------ *)
(* Classification of canonical names                                   *)
(* ------------------------------------------------------------------ *)

type classification =
  | Source of Taint.level
  | Sanitize of Taint.tf
  | Sink of string  (* short description used in messages *)
  | Charge of int  (* positional index of the epsilon argument *)
  | Neutral  (* result carries nothing, whatever the args *)
  | Passthrough  (* join of the arguments, provenance kept *)
  | Opaque  (* join of the arguments, const/env provenance dropped *)

let sources =
  [
    ("Mycelium_graph.Contact_graph.generate", Taint.Secret);
    ("Mycelium_graph.Contact_graph.of_edges", Taint.Secret);
    ("Mycelium_graph.Epidemic.run", Taint.Secret);
    (* raw threshold decryption, before any noise *)
    ("Mycelium_bgv.Bgv.decrypt", Taint.Secret);
    ("Mycelium_core.Committee.reconstruct_for_tests", Taint.Secret);
  ]

let sanitizers =
  [
    ("Mycelium_graph.Contact_graph.clip_to_degree_bound", Taint.tf_clip);
    ("Mycelium_dp.Dp.laplace_noise", Taint.tf_noise);
    ("Mycelium_dp.Dp.noise_vector", Taint.tf_noise);
    ("Mycelium_dp.Dp.release_histogram", Taint.tf_noise);
    ("Mycelium_dp.Dp.release_sum", Taint.tf_noise);
    (* the committee noises inside the MPC (§4.2) *)
    ("Mycelium_core.Committee.decrypt_and_release", Taint.tf_noise);
    ("Mycelium_core.Committee.decrypt_batch", Taint.tf_noise);
  ]

let sinks =
  [
    ("Mycelium_obs.Obs.Ledger.append", "audit-ledger row");
    ("Mycelium_obs.Obs.write_chrome_trace", "trace export");
    ("Mycelium_obs.Obs.chrome_trace_to_channel", "trace export");
    ("Mycelium_obs.Obs.write_prometheus", "metrics export");
    ("Stdlib.print_string", "stdout");
    ("Stdlib.print_endline", "stdout");
    ("Stdlib.print_int", "stdout");
    ("Stdlib.print_float", "stdout");
    ("Stdlib.prerr_string", "stderr");
    ("Stdlib.prerr_endline", "stderr");
    ("Stdlib.output_string", "channel write");
    ("Stdlib.Printf.printf", "stdout");
    ("Stdlib.Printf.eprintf", "stderr");
    ("Stdlib.Printf.fprintf", "channel write");
    ("Stdlib.Format.printf", "stdout");
    ("Stdlib.Format.eprintf", "stderr");
    ("Stdlib.Format.fprintf", "channel write");
  ]

let charges =
  [ ("Mycelium_dp.Dp.budget_charge", 1); ("Mycelium_serve.Accountant.charge", 1) ]

(* Pure plumbing whose result provably carries nothing from the
   arguments: predicates, sizes, structural aggregates, digests. *)
let neutrals =
  [
    "Mycelium_graph.Contact_graph.population";
    "Mycelium_graph.Contact_graph.degree_bound";
    "Mycelium_graph.Contact_graph.horizon_days";
    "Mycelium_graph.Contact_graph.degree";
    "Mycelium_graph.Contact_graph.max_degree";
    "Mycelium_graph.Contact_graph.edge_count";
    "Stdlib.compare";
    "Stdlib.List.length";
    "Stdlib.Array.length";
    "Stdlib.String.length";
    "Stdlib.Bytes.length";
    "Stdlib.Hashtbl.length";
    "Stdlib.ignore";
  ]

let neutral_prefixes =
  [
    (* hashes are identifiers, not data — see the header comment *)
    "Stdlib.Digest.";
    (* deterministic generator plumbing: seeds and draws are not
       user data, and Rng handles flow everywhere *)
    "Mycelium_util.Rng.";
    (* metric names *)
    "Mycelium_obs.Obs.Names.";
  ]

(* Combinators whose result is evidently built from their arguments
   and nothing else: provenance (including const/env epsilon
   origins) rides through.  Scaling a constant epsilon is still a
   constant epsilon. *)
let passthroughs =
  [
    "Stdlib.+.";
    "Stdlib.-.";
    "Stdlib.*.";
    "Stdlib./.";
    "Stdlib.~-.";
    "Stdlib.+";
    "Stdlib.-";
    "Stdlib.*";
    "Stdlib.~-";
    "Stdlib.abs_float";
    "Stdlib.min";
    "Stdlib.max";
    "Stdlib.fst";
    "Stdlib.snd";
    "Stdlib.!";
    "Stdlib.ref";
    "Stdlib.Float.min";
    "Stdlib.Float.max";
    "Stdlib.Float.abs";
    "Stdlib.Option.value";
    "Stdlib.Option.get";
    "Stdlib.Option.some";
    "Stdlib.Result.get_ok";
  ]

let comparisons =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=";
    "Stdlib.=="; "Stdlib.!="; "Stdlib.&&"; "Stdlib.||"; "Stdlib.not" ]

let table : (string, classification) Hashtbl.t =
  let t = Hashtbl.create 128 in
  List.iter (fun (n, l) -> Hashtbl.replace t n (Source l)) sources;
  List.iter (fun (n, tf) -> Hashtbl.replace t n (Sanitize tf)) sanitizers;
  List.iter (fun (n, d) -> Hashtbl.replace t n (Sink d)) sinks;
  List.iter (fun (n, i) -> Hashtbl.replace t n (Charge i)) charges;
  List.iter (fun n -> Hashtbl.replace t n Neutral) neutrals;
  List.iter (fun n -> Hashtbl.replace t n Neutral) comparisons;
  List.iter (fun n -> Hashtbl.replace t n Passthrough) passthroughs;
  t

let classify name : classification option =
  match Hashtbl.find_opt table name with
  | Some c -> Some c
  | None ->
    if List.exists (fun p -> String.starts_with ~prefix:p name) neutral_prefixes
    then Some Neutral
    else None

(* ------------------------------------------------------------------ *)
(* epsilon-flow                                                        *)
(* ------------------------------------------------------------------ *)

(* Reading the environment is a provenance origin, like a float
   literal: an epsilon from the process environment did not come
   from the analyst's parsed query. *)
let env_readers = [ "Stdlib.Sys.getenv"; "Stdlib.Sys.getenv_opt" ]

(* ------------------------------------------------------------------ *)
(* budget-order                                                        *)
(* ------------------------------------------------------------------ *)

(* Serve-path entry points: within each, in evaluation order, no
   call transitively reaching crypto/gather work may precede the
   first call transitively reaching an accountant charge.  Functions
   whose name starts with [serve_entry_] are entries too — that is
   how fixtures (and future serve paths) opt in without editing this
   file. *)
let serve_entries =
  [
    "Mycelium_serve.Serve.submit";
    "Mycelium_core.Runtime.run_batch";
    "Mycelium_core.Runtime.run_query_ast";
  ]

let serve_entry_prefix = "serve_entry_"

let is_serve_entry name =
  List.mem name serve_entries
  ||
  let base = match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  String.starts_with ~prefix:serve_entry_prefix base

(* The expensive work a charge must precede. *)
let crypto_names =
  [
    "Mycelium_core.Runtime.run_batch";
    "Mycelium_core.Runtime.run_query";
    "Mycelium_core.Runtime.run_query_ast";
    "Mycelium_core.Committee.decrypt_and_release";
    "Mycelium_core.Committee.decrypt_batch";
    "Mycelium_core.Committee.genesis";
    "Mycelium_core.Committee.rotate";
  ]

(* Contribution is deliberately NOT a whole-module prefix: it mixes
   the expensive per-row ciphertext work (below) with pure query-shape
   accessors ([sequence_length], [wire_size]) that admission-time
   validation legitimately calls before any charge. *)
let crypto_prefixes =
  [ "Mycelium_bgv.Bgv."; "Mycelium_mixnet."; "Mycelium_core.Summation_tree." ]

let crypto_contribution =
  [
    "Mycelium_core.Contribution.build";
    "Mycelium_core.Contribution.build_malicious";
    "Mycelium_core.Contribution.verify";
    "Mycelium_core.Contribution.aggregate_subtree";
    "Mycelium_core.Contribution.aggregate_origin";
    "Mycelium_core.Contribution.of_bytes";
  ]

let is_crypto name =
  List.mem name crypto_names
  || List.mem name crypto_contribution
  || List.exists (fun p -> String.starts_with ~prefix:p name) crypto_prefixes

(* Paths whose members were already charged at their own admission:
   [Serve.drain]/[run_chunk] flush queries that each paid
   [Accountant.charge] when [submit] accepted them, so a deadline
   flush at the top of [submit] — before the *new* request's charge
   — is not a violation.  Reachability does not traverse through
   these. *)
let assume_charged =
  [ "Mycelium_serve.Serve.drain"; "Mycelium_serve.Serve.run_chunk" ]

let is_assume_charged name = List.mem name assume_charged

(* ------------------------------------------------------------------ *)
(* pool-purity                                                         *)
(* ------------------------------------------------------------------ *)

(* Parallel entry points of lib/parallel: closures passed positionally
   to these run concurrently.  (reduce's ~combine runs sequentially
   in element order and is exempt by its label.) *)
let pool_entries =
  [
    "Mycelium_parallel.Pool.map_array";
    "Mycelium_parallel.Pool.mapi_array";
    "Mycelium_parallel.Pool.init";
    "Mycelium_parallel.Pool.reduce";
  ]

let is_pool_entry name = List.mem name pool_entries

(* Mutating operations: function, positional index of the mutated
   target, index of the written value (None when none carries data,
   e.g. incr), and index of the element/offset argument whose
   dependence on a closure-bound variable proves disjoint-by-index
   writes. *)
type writer = {
  w_fn : string;
  w_target : int;
  w_value : int option;
  w_index : int option;
}

let writers =
  [
    { w_fn = "Stdlib.:="; w_target = 0; w_value = Some 1; w_index = None };
    { w_fn = "Stdlib.incr"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.decr"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.Array.set"; w_target = 0; w_value = Some 2; w_index = Some 1 };
    { w_fn = "Stdlib.Array.unsafe_set"; w_target = 0; w_value = Some 2; w_index = Some 1 };
    { w_fn = "Stdlib.Array.fill"; w_target = 0; w_value = Some 3; w_index = Some 1 };
    { w_fn = "Stdlib.Array.blit"; w_target = 2; w_value = Some 0; w_index = Some 3 };
    { w_fn = "Stdlib.Bytes.set"; w_target = 0; w_value = Some 2; w_index = Some 1 };
    { w_fn = "Stdlib.Bytes.unsafe_set"; w_target = 0; w_value = Some 2; w_index = Some 1 };
    { w_fn = "Stdlib.Bytes.fill"; w_target = 0; w_value = Some 3; w_index = Some 1 };
    { w_fn = "Stdlib.Bytes.blit"; w_target = 2; w_value = Some 0; w_index = Some 3 };
    { w_fn = "Stdlib.Bytes.blit_string"; w_target = 2; w_value = Some 0; w_index = Some 3 };
    { w_fn = "Stdlib.Bytes.unsafe_blit"; w_target = 2; w_value = Some 0; w_index = Some 3 };
    { w_fn = "Stdlib.Bigarray.Array1.set"; w_target = 0; w_value = Some 2; w_index = Some 1 };
    { w_fn = "Stdlib.Bigarray.Array1.unsafe_set"; w_target = 0; w_value = Some 2; w_index = Some 1 };
    { w_fn = "Stdlib.Hashtbl.replace"; w_target = 0; w_value = Some 2; w_index = None };
    { w_fn = "Stdlib.Hashtbl.add"; w_target = 0; w_value = Some 2; w_index = None };
    { w_fn = "Stdlib.Hashtbl.remove"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.Hashtbl.reset"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.Hashtbl.clear"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.Buffer.add_string"; w_target = 0; w_value = Some 1; w_index = None };
    { w_fn = "Stdlib.Buffer.add_char"; w_target = 0; w_value = Some 1; w_index = None };
    { w_fn = "Stdlib.Buffer.add_bytes"; w_target = 0; w_value = Some 1; w_index = None };
    { w_fn = "Stdlib.Buffer.clear"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.Buffer.reset"; w_target = 0; w_value = None; w_index = None };
    { w_fn = "Stdlib.Queue.push"; w_target = 1; w_value = Some 0; w_index = None };
    { w_fn = "Stdlib.Queue.add"; w_target = 1; w_value = Some 0; w_index = None };
  ]

let writer_of name = List.find_opt (fun w -> String.equal w.w_fn name) writers

(* ------------------------------------------------------------------ *)
(* Policy digest                                                       *)
(* ------------------------------------------------------------------ *)

(* Folded into the summary-cache key together with the analyzer
   version: editing the policy invalidates every cached summary. *)
let digest =
  let b = Buffer.create 1024 in
  List.iter (fun (n, l) -> Buffer.add_string b (n ^ "=" ^ Taint.level_name l)) sources;
  List.iter
    (fun (n, tf) ->
      Buffer.add_string b n;
      Array.iter (fun r -> Buffer.add_string b (string_of_int r)) tf)
    sanitizers;
  List.iter (fun (n, d) -> Buffer.add_string b (n ^ ":" ^ d)) sinks;
  List.iter (fun (n, i) -> Buffer.add_string b (n ^ "#" ^ string_of_int i)) charges;
  List.iter (Buffer.add_string b) neutrals;
  List.iter (Buffer.add_string b) neutral_prefixes;
  List.iter (Buffer.add_string b) passthroughs;
  List.iter (Buffer.add_string b) comparisons;
  List.iter (Buffer.add_string b) env_readers;
  List.iter (Buffer.add_string b) serve_entries;
  List.iter (Buffer.add_string b) crypto_names;
  List.iter (Buffer.add_string b) crypto_prefixes;
  List.iter (Buffer.add_string b) crypto_contribution;
  List.iter (Buffer.add_string b) assume_charged;
  List.iter (Buffer.add_string b) pool_entries;
  List.iter
    (fun w ->
      Buffer.add_string b
        (Printf.sprintf "%s/%d/%s/%s" w.w_fn w.w_target
           (match w.w_value with Some i -> string_of_int i | None -> "-")
           (match w.w_index with Some i -> string_of_int i | None -> "-")))
    writers;
  Digest.to_hex (Digest.string (Buffer.contents b))
