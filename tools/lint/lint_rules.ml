(* The rule catalogue.  Each rule is a pure function from a parsed
   compilation unit to violations; the engine (lint.ml) decides which
   rules apply to which zone of the tree and applies suppressions.
   Every rule is motivated by a bug this repository actually shipped —
   the catalogue with war stories lives in DESIGN.md §10. *)

open Parsetree
open Lint_ast

type zone =
  | Lib  (** everything under lib/ *)
  | Lib_hot  (** lib/math and lib/bgv — the traced hot paths *)
  | Lib_rng  (** lib/util/rng.ml — the one sanctioned randomness source *)
  | Bin
  | Bench
  | Test

type violation = { rule : string; file : string; line : int; col : int; msg : string }

let viol rule file loc msg =
  let line, col = line_col loc in
  { rule; file; line; col; msg }

(* ------------------------------------------------------------------ *)
(* Rule 1: poly-compare                                               *)
(* ------------------------------------------------------------------ *)

(* Past bug: PR 4's [Rq.equal] compared ciphertext polynomials with
   polymorphic [=] across Coeff/Eval representations — structurally
   different, mathematically equal.  Ban polymorphic comparison at
   structured operands and every use of bare [compare],
   [Hashtbl.hash] and polymorphic [List.mem]/[assoc] in lib/. *)

let list_mem_like = [ "mem"; "assoc"; "assoc_opt"; "mem_assoc" ]

let poly_compare ~file str =
  let out = ref [] in
  let add loc msg = out := viol "poly-compare" file loc msg :: !out in
  (* start offsets of identifiers already handled as application heads,
     so the bare-identifier case below does not double-report them *)
  let consumed = ref [] in
  let consume loc = consumed := fst (loc_range loc) :: !consumed in
  let is_consumed loc =
    let s = fst (loc_range loc) in
    List.exists (Int.equal s) !consumed
  in
  let flag_path loc = function
    | [ "compare" ] ->
      add loc
        "polymorphic Stdlib.compare; use a typed compare (Int.compare, \
         Float.compare, M.compare)"
    | [ "Hashtbl"; "hash" ] ->
      add loc "Hashtbl.hash is polymorphic; hash a typed serialization instead"
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc }; _ } as _head), args)
            -> (
            let path = norm_path txt in
            match (path, args) with
            | [ (("=" | "<>") as op) ], [ (_, a); (_, b) ] ->
              consume loc;
              if
                (not (evidently_immediate a || evidently_immediate b))
                && (evidently_structured a || evidently_structured b)
              then
                add loc
                  (Printf.sprintf
                     "polymorphic (%s) on structured operands; use a typed equal \
                      (Int.equal, Float.equal, M.equal)"
                     op)
            | [ "compare" ], _ | [ "Hashtbl"; "hash" ], _ ->
              consume loc;
              flag_path loc path
            | [ "List"; fn ], (_, key) :: _ when List.mem fn list_mem_like ->
              consume loc;
              if not (evidently_immediate key) then
                add loc
                  (Printf.sprintf
                     "polymorphic List.%s; use List.exists/find_opt with a typed \
                      equal"
                     fn)
            | _ -> ())
          | Pexp_ident { txt; loc } when not (is_consumed loc) -> (
            match norm_path txt with
            | [ ("=" | "<>") ] ->
              add loc
                "polymorphic comparison operator passed as a value; pass a typed \
                 equal instead"
            | path -> flag_path loc path)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !out

(* ------------------------------------------------------------------ *)
(* Rule 2: determinism                                                *)
(* ------------------------------------------------------------------ *)

(* Contract: released values are byte-identical across runs, domain
   counts and tracing states.  Process-global randomness, wall clocks
   and unordered hash-table iteration are banned from lib/ and bin/
   (lib/util/rng.ml and bench/ excepted); measurement-only uses carry
   a reasoned suppression. *)

let determinism ~file str =
  let out = ref [] in
  let add loc msg = out := viol "determinism" file loc msg :: !out in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
            match norm_path txt with
            | "Random" :: _ :: _ ->
              add loc
                "Stdlib.Random is process-global and seed-unmanaged; thread an \
                 explicit Rng.t (lib/util/rng.mli)"
            | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
              add loc "wall-clock read; released values must not depend on time"
            | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ]
              ->
              add loc
                "Hashtbl iteration order is unspecified; sort the bindings before \
                 they can feed a released value"
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !out

(* ------------------------------------------------------------------ *)
(* Rule 3: rng-capture                                                *)
(* ------------------------------------------------------------------ *)

(* The domain-ownership rule of rng.mli: an [Rng.t] advanced inside a
   [Pool] task is a data race and a scheduling dependence.  Flag any
   closure literal passed to Pool.map_array/mapi_array/init/reduce
   that references an rng-ish name it does not bind itself — the
   sanctioned pattern derives a task-local stream from a pre-drawn
   seed via [Rng.mix64] inside the task. *)

let pool_entry_points = [ "map_array"; "mapi_array"; "init"; "reduce" ]

let rng_capture ~file str =
  let out = ref [] in
  let check_closure f =
    let bound = bound_vars_in f in
    iter_idents f (fun lid loc ->
        match lid with
        | Longident.Lident n when rngish n && not (List.exists (String.equal n) bound)
          ->
          out :=
            viol "rng-capture" file loc
              (Printf.sprintf
                 "Rng stream `%s' captured by a Pool task; pre-split the stream \
                  (Rng.mix64 on stable coordinates) and create a task-local \
                  generator instead (rng.mli, domain ownership rule)"
                 n)
            :: !out
        | lid when (match List.rev (flatten lid) with
                   | last :: _ :: _ -> rngish last
                   | _ -> false) ->
          out :=
            viol "rng-capture" file loc
              "shared record field holding an Rng stream dereferenced inside a \
               Pool task; derive a task-local generator instead (rng.mli, domain \
               ownership rule)"
            :: !out
        | _ -> ())
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            match List.rev (norm_path txt) with
            | fn :: "Pool" :: _ when List.exists (String.equal fn) pool_entry_points
              ->
              List.iter
                (fun (_, a) ->
                  match as_fun_literal a with
                  | Some f -> check_closure f
                  | None -> ())
                args
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !out

(* ------------------------------------------------------------------ *)
(* Rule 4: obs-guard                                                  *)
(* ------------------------------------------------------------------ *)

(* The lib/obs overhead contract: in the hot modules (lib/math,
   lib/bgv) every span/metric update sits under an [Obs.enabled]
   guard, and the disabled path performs no allocation-producing work
   (string building, closure construction). *)

let obs_update_heads path =
  match path with
  | [ "Obs"; ("span" | "sampled_span") ]
  | [ "Mycelium_obs"; "Obs"; ("span" | "sampled_span") ]
  | [ "Obs"; "Metrics"; ("incr" | "add" | "set" | "observe") ]
  | [ "Mycelium_obs"; "Obs"; "Metrics"; ("incr" | "add" | "set" | "observe") ] ->
    true
  | _ -> false

let allocating_head path =
  match path with
  | [ "Printf"; "sprintf" ]
  | [ "Format"; ("asprintf" | "sprintf") ]
  | [ "String"; ("concat" | "cat") ]
  | [ ("^" | "^^" | "@") ] ->
    true
  (* Bigarray scratch creation: a malloc + custom-block allocation,
     far too heavy for the disabled fast path of a kernel (the
     Mont_backend butterflies keep theirs in domain-local state). *)
  | [ "Bigarray"; ("Array1" | "Array2" | "Array3" | "Genarray"); "create" ]
  | [ ("Array1" | "Array2" | "Array3" | "Genarray"); "create" ] ->
    true
  | _ -> false

let obs_guard ~file str =
  (* pass 1: collect the character ranges of enabled- and
     disabled-path branches of Obs.enabled guards *)
  let enabled_ranges = ref [] and disabled_ranges = ref [] in
  let note polarity (e : expression) =
    let r = loc_range e.pexp_loc in
    match polarity with
    | `On -> enabled_ranges := r :: !enabled_ranges
    | `Off -> disabled_ranges := r :: !disabled_ranges
  in
  let collect =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ifthenelse (cond, then_, else_) when mentions_enabled cond -> (
            match guard_polarity cond with
            | `On ->
              note `On then_;
              Option.iter (note `Off) else_
            | `Off ->
              note `Off then_;
              Option.iter (note `On) else_
            | `Unknown ->
              (* complex condition: treat both branches as consciously
                 guarded, no disabled-path classification *)
              note `On then_;
              Option.iter (note `On) else_)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  collect.structure collect str;
  let in_any ranges loc = List.exists (fun r -> within r loc) ranges in
  (* pass 2: flag unguarded updates and disabled-path allocations *)
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
            when obs_update_heads (norm_path txt) ->
            if not (in_any !enabled_ranges loc) then
              out :=
                viol "obs-guard" file loc
                  "Obs span/metric update in a hot module outside an `if \
                   Obs.enabled ()' guard; the disabled path must be one flag load \
                   + branch (DESIGN.md §8)"
                :: !out
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
            when allocating_head (norm_path txt) && in_any !disabled_ranges loc ->
            out :=
              viol "obs-guard" file loc
                "allocation (string building or Bigarray create) on the \
                 tracing-disabled path of a hot module"
              :: !out
          | Pexp_fun _ | Pexp_function _ when in_any !disabled_ranges e.pexp_loc ->
            out :=
              viol "obs-guard" file e.pexp_loc
                "closure constructed on the tracing-disabled path of a hot module"
              :: !out
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !out

(* ------------------------------------------------------------------ *)
(* Rule 4b: obs-guard — the metric-name registry                      *)
(* ------------------------------------------------------------------ *)

(* Library and CLI code must draw metric and time-series names from
   [Obs.Names] instead of inline string literals: the registry is what
   keeps the Prometheus exposition, the sampler sources and the
   DESIGN.md §8 taxonomy in sync, and a literal typo silently forks a
   series.  Bench and test zones keep their ad-hoc names.  Reported
   under the obs-guard rule id (it is the same contract), so the
   existing suppression comments apply. *)

let obs_register_heads path =
  match List.rev path with
  | ("counter" | "gauge" | "histogram") :: "Metrics" :: ("Obs" :: _ | [])
  | "register" :: "Timeseries" :: ("Obs" :: _ | []) ->
    true
  | _ -> false

let obs_metric_names ~file str =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when obs_register_heads (norm_path txt) -> (
            let unlabelled =
              List.find_opt (function Asttypes.Nolabel, _ -> true | _ -> false) args
            in
            match unlabelled with
            | Some (_, { pexp_desc = Pexp_constant (Pconst_string _); pexp_loc; _ }) ->
              out :=
                viol "obs-guard" file pexp_loc
                  "metric registered with an inline string literal; draw the name \
                   from Obs.Names so the registry, the Prometheus exposition and \
                   DESIGN.md §8 stay in sync"
                :: !out
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !out

(* ------------------------------------------------------------------ *)
(* Rule 5: interface — the signature half                             *)
(* ------------------------------------------------------------------ *)

(* Modules exposing an undrived [type t] must also expose a typed
   [equal] or [compare], so callers never have a reason to reach for
   polymorphic comparison.  The missing-.mli half of the rule lives in
   the engine's directory walk. *)

let has_deriving (td : type_declaration) =
  List.exists
    (fun (a : attribute) ->
      String.equal a.attr_name.txt "deriving"
      || String.equal a.attr_name.txt "deriving_inline")
    td.ptype_attributes

let interface_signature ~file (sg : signature) =
  let out = ref [] in
  let rec check_scope items =
    let type_t = ref None in
    let has_eq = ref false in
    List.iter
      (fun item ->
        match item.psig_desc with
        | Psig_type (_, decls) ->
          List.iter
            (fun td ->
              if String.equal td.ptype_name.txt "t" && not (has_deriving td) then
                type_t := Some td.ptype_name.loc)
            decls
        | Psig_value vd ->
          if
            String.equal vd.pval_name.txt "equal"
            || String.equal vd.pval_name.txt "compare"
          then has_eq := true
        | Psig_module { pmd_type = { pmty_desc = Pmty_signature sub; _ }; _ } ->
          check_scope sub
        | _ -> ())
      items;
    match !type_t with
    | Some loc when not !has_eq ->
      out :=
        viol "interface" file loc
          "module exposes an abstract `type t' without a typed `equal'/`compare'; \
           add one (or a reasoned suppression) so callers never need polymorphic \
           comparison"
        :: !out
    | _ -> ()
  in
  check_scope sg;
  !out
