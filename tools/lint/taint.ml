(* The taint lattice and the symbolic summary IR of mycelium-analyze
   (DESIGN.md §15).

   A value's privacy state is a point on the four-level chain

       Public  ⊑  Noised  ⊑  Clipped  ⊑  Secret

   ordered by how dangerous it is to release: [Secret] is raw
   per-user data (neighborhoods, decrypted pre-noise aggregates),
   [Clipped] has bounded sensitivity but no noise yet, [Noised] has
   been through calibrated noise and is releasable, [Public] never
   touched user data.  Join goes toward [Secret].

   Sanitizers are monotone maps on the chain, represented as
   4-element rank tables so they compose and marshal trivially:
   clip sends Secret to Clipped and fixes everything else; noise
   sends Clipped to Noised but leaves Secret alone — noise applied
   to unclipped data has unbounded sensitivity and sanitizes
   nothing, which is exactly the Clipped→Noised ordering the
   dp-release rule enforces.

   Per-function facts are *symbolic*: a [sym] is a tree over the
   function's parameters, its call sites (by index into the
   function's site table) and its mutable cells, so a module can be
   summarized once, cached against its cmt digest, and evaluated
   later against whatever the rest of the repo turns out to pass
   in.  Evaluation happens in [Analyze]'s global fixpoint; the
   concrete summary [conc] a fixpoint round produces for a function
   is affine: a base fact joined with, per parameter, a rank table
   and an epsilon-passthrough bit. *)

type level = Public | Noised | Clipped | Secret

let rank = function Public -> 0 | Noised -> 1 | Clipped -> 2 | Secret -> 3
let of_rank = function 0 -> Public | 1 -> Noised | 2 -> Clipped | _ -> Secret

let level_name = function
  | Public -> "Public"
  | Noised -> "Noised"
  | Clipped -> "Clipped"
  | Secret -> "Secret"

let level_join a b = if rank a >= rank b then a else b

(* A witness: where a Secret source, a float constant or an env read
   entered the flow.  [o_what] is a short human label ("source
   Mycelium_graph.Contact_graph.generate", "float constant", ...). *)
type origin = { o_what : string; o_file : string; o_line : int }

let origin_compare a b =
  let c = String.compare a.o_file b.o_file in
  if c <> 0 then c
  else
    let c = Int.compare a.o_line b.o_line in
    if c <> 0 then c else String.compare a.o_what b.o_what

let origins_union a b = List.sort_uniq origin_compare (List.rev_append a b)

(* The concrete fact about one value: its level, the source origins
   that explain the level (dp-release diagnostics), and the
   constant/env origins that reached it (epsilon-flow). *)
type fact = { f_level : level; f_srcs : origin list; f_eps : origin list }

let bot_fact = { f_level = Public; f_srcs = []; f_eps = [] }

let fact_join a b =
  if a == b then a
  else
    {
      f_level = level_join a.f_level b.f_level;
      f_srcs = origins_union a.f_srcs b.f_srcs;
      f_eps = origins_union a.f_eps b.f_eps;
    }

let fact_equal a b =
  a.f_level = b.f_level && a.f_srcs = b.f_srcs && a.f_eps = b.f_eps

(* ------------------------------------------------------------------ *)
(* Rank tables: monotone level -> level maps                           *)
(* ------------------------------------------------------------------ *)

type tf = int array (* length 4; tf.(rank l) = rank of the image *)

let tf_id = [| 0; 1; 2; 3 |]
let tf_clip = [| 0; 1; 2; 2 |]
let tf_noise = [| 0; 1; 1; 3 |]
let tf_dead = [| 0; 0; 0; 0 |]

let tf_apply (t : tf) l = of_rank t.(rank l)
let tf_compose (a : tf) (b : tf) : tf = Array.init 4 (fun i -> a.(b.(i)))
let tf_join (a : tf) (b : tf) : tf = Array.init 4 (fun i -> max a.(i) b.(i))

(* A table through which no taint survives carries no witnesses
   either. *)
let tf_passes (t : tf) = Array.exists (fun r -> r > 0) t

(* ------------------------------------------------------------------ *)
(* Symbolic values                                                     *)
(* ------------------------------------------------------------------ *)

(* [Call i] / [Cell i] index into the owning function's [fs_calls] /
   [fs_cells] tables, so the result sym, the site list and the cell
   contents share structure and marshal as plain data. *)
type sym =
  | Bot
  | Lit of fact
  | Param of int
  | Join of sym list
  | Call of int
  | Field of string * sym
  | RecordS of (string * sym) list * sym
  | Cell of int

(* Structural field projection, resolved as far as the shape allows
   at construction time; an opaque inner sym degrades to
   whole-value flow. *)
let rec mk_field label s =
  match s with
  | Bot -> Bot
  | RecordS (fields, base) -> (
    match List.assoc_opt label fields with
    | Some f -> (
      match base with Bot -> f | _ -> Join [ f; mk_field label base ])
    | None -> mk_field label base)
  | Join ss -> Join (List.map (mk_field label) ss)
  | Lit _ | Param _ | Call _ | Field _ | Cell _ -> Field (label, s)

let mk_join = function [] -> Bot | [ s ] -> s | ss -> Join ss

(* One call site: canonical callee name, labelled argument syms in
   application order ("" = positional), and the source position. *)
type call = {
  c_fn : string;
  c_args : (string * sym) list;
  c_line : int;
  c_col : int;
}

(* A per-function summary.  [fs_params] are the parameter labels in
   curried order ("" positional, "~l" labelled, "?l" optional);
   [fs_cells] holds the joined writes of each mutable cell the body
   assigns (refs, arrays, hashtables, record fields), tagged with
   the record field name when the write was a setfield. *)
type fsummary = {
  fs_name : string;
  fs_params : string list;
  fs_result : sym;
  fs_calls : call array;
  fs_cells : (string option * sym) list array;
  fs_line : int;
}

(* A module summary: what the cache stores per cmt. *)
type msummary = {
  m_unit : string;  (* canonical unit name, e.g. "Mycelium_dp.Dp" *)
  m_source : string;  (* repo-relative source path *)
  m_funs : fsummary list;
  m_pool : (int * int * string) list;  (* pool-purity pre-violations *)
}

(* ------------------------------------------------------------------ *)
(* Abstract values: affine in the enclosing function's parameters      *)
(* ------------------------------------------------------------------ *)

type coeff = { k_tf : tf; k_eps : bool }

let coeff_id = { k_tf = tf_id; k_eps = true }

let coeff_join a b = { k_tf = tf_join a.k_tf b.k_tf; k_eps = a.k_eps || b.k_eps }

let coeff_equal a b = a.k_tf = b.k_tf && a.k_eps = b.k_eps

type absval = { v_base : fact; v_coeffs : (int * coeff) list (* sorted *) }

let bot_av = { v_base = bot_fact; v_coeffs = [] }

let av_of_fact f = { v_base = f; v_coeffs = [] }

let av_param i = { v_base = bot_fact; v_coeffs = [ (i, coeff_id) ] }

let rec merge_coeffs a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (i, ca) :: ta, (j, cb) :: tb ->
    if i = j then (i, coeff_join ca cb) :: merge_coeffs ta tb
    else if i < j then (i, ca) :: merge_coeffs ta ((j, cb) :: tb)
    else (j, cb) :: merge_coeffs ((i, ca) :: ta) tb

let av_join a b =
  if a == b then a
  else
    { v_base = fact_join a.v_base b.v_base; v_coeffs = merge_coeffs a.v_coeffs b.v_coeffs }

let av_joins l = List.fold_left av_join bot_av l

(* Push a value through a sanitizer / transfer table. *)
let av_map_tf t av =
  {
    v_base =
      {
        f_level = tf_apply t av.v_base.f_level;
        f_srcs = (if tf_passes t then av.v_base.f_srcs else []);
        f_eps = av.v_base.f_eps;
      };
    v_coeffs =
      List.filter_map
        (fun (i, c) ->
          let t' = tf_compose t c.k_tf in
          if (not (tf_passes t')) && not c.k_eps then None
          else Some (i, { c with k_tf = t' }))
        av.v_coeffs;
  }

(* Strip the constant/env provenance: unknown external functions
   launder epsilon provenance (a float that went through arbitrary
   library plumbing is no longer evidently "a constant") but are
   conservative for levels (secrets stay secret through e.g.
   [String.concat]). *)
let av_drop_eps av =
  {
    v_base = { av.v_base with f_eps = [] };
    v_coeffs =
      List.filter_map
        (fun (i, c) ->
          if tf_passes c.k_tf then Some (i, { c with k_eps = false }) else None)
        av.v_coeffs;
  }

(* Instantiate an abstract value against concrete per-parameter
   facts (missing parameters stay bottom). *)
let fact_of_av (params : fact array) av =
  List.fold_left
    (fun acc (i, c) ->
      if i >= Array.length params then acc
      else
        let p = params.(i) in
        fact_join acc
          {
            f_level = tf_apply c.k_tf p.f_level;
            f_srcs = (if tf_passes c.k_tf then p.f_srcs else []);
            f_eps = (if c.k_eps then p.f_eps else []);
          })
    av.v_base av.v_coeffs

(* ------------------------------------------------------------------ *)
(* Concrete summaries                                                  *)
(* ------------------------------------------------------------------ *)

(* What a whole function does to its arguments, as computed by the
   global fixpoint: a base fact (taint created inside, regardless of
   arguments) plus an optional coefficient per parameter. *)
type conc = { cn_base : fact; cn_coeffs : coeff option array }

let conc_bot arity = { cn_base = bot_fact; cn_coeffs = Array.make arity None }

let conc_equal a b =
  fact_equal a.cn_base b.cn_base
  && Array.length a.cn_coeffs = Array.length b.cn_coeffs
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some cx, Some cy -> coeff_equal cx cy
         | _ -> false)
       a.cn_coeffs b.cn_coeffs

(* Apply a concrete summary to abstract arguments (already matched
   to parameter positions; [None] = argument not supplied). *)
let conc_apply cn (args : absval option array) =
  let acc = ref (av_of_fact cn.cn_base) in
  Array.iteri
    (fun i c ->
      match (c, if i < Array.length args then args.(i) else None) with
      | Some c, Some av ->
        let through = av_map_tf c.k_tf av in
        let through = if c.k_eps then through else av_drop_eps through in
        acc := av_join !acc through
      | _ -> ())
    cn.cn_coeffs;
  !acc
