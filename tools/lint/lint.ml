(* mycelium-lint engine: file discovery, zone mapping, parsing,
   suppression handling and reporting.  The rules themselves live in
   Lint_rules; this module decides which rules see which files and
   renders the results.

   Zero external dependencies: parsing comes from the compiler's own
   bundled [compiler-libs], JSON from [Obs.Json]. *)

module Json = Mycelium_obs.Obs.Json
open Parsetree

type zone = Lint_rules.zone =
  | Lib
  | Lib_hot
  | Lib_rng
  | Bin
  | Bench
  | Test

type violation = Lint_rules.violation = {
  rule : string;
  file : string;
  line : int;
  col : int;
  msg : string;
}

type report = {
  files : int;
  violations : violation list;  (** unsuppressed, sorted *)
  suppressed : violation list;
}

let rule_ids =
  [
    "poly-compare"; "determinism"; "rng-capture"; "obs-guard"; "interface";
    "parse-error";
    (* the interprocedural rules of mycelium-analyze (Analyze);
       suppression comments share one namespace with the syntactic
       rules so a site reads the same either way *)
    "dp-release"; "budget-order"; "epsilon-flow"; "pool-purity";
  ]

(* ------------------------------------------------------------------ *)
(* Zones                                                              *)
(* ------------------------------------------------------------------ *)

let normalize_rel p =
  let p = if String.length p > 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2) else p in
  String.concat "/" (String.split_on_char '\\' p)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let zone_of_rel path =
  let p = normalize_rel path in
  if has_prefix ~prefix:"lib/util/rng.ml" p then Some Lib_rng
  else if has_prefix ~prefix:"lib/math/" p || has_prefix ~prefix:"lib/bgv/" p then
    Some Lib_hot
  else if has_prefix ~prefix:"lib/" p then Some Lib
  else if has_prefix ~prefix:"bin/" p then Some Bin
  else if has_prefix ~prefix:"bench/" p then Some Bench
  else if has_prefix ~prefix:"test/" p then Some Test
  else None

let lib_zone = function Lib | Lib_hot | Lib_rng -> true | Bin | Bench | Test -> false

(* ------------------------------------------------------------------ *)
(* Suppressions                                                       *)
(* ------------------------------------------------------------------ *)

(* Two spellings, one meaning: a reasoned opt-out visible at the site.
     (* lint: allow rule-id[, rule-id] — reason *)     covers its own
                                                       and the next line
     (* lint: allow-file rule-id — reason *)           covers the file
     [@lint.allow "rule-id"] / [@@lint.allow "..."]    covers the
                                                       annotated node *)

type suppressions = {
  file_level : string list;
  by_line : (int * string) list;  (* (line, rule) *)
  ranges : (string * int * int) list;  (* (rule, first_line, last_line) *)
}

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

(* Rule-id tokens after the marker, stopping at the first token that
   is not a known rule id (the start of the required reason). *)
let parse_ids rest =
  let n = String.length rest in
  let ids = ref [] and i = ref 0 and stop = ref false in
  while (not !stop) && !i < n do
    (* skip separators *)
    while !i < n && (match rest.[!i] with ' ' | '\t' | ',' -> true | _ -> false) do incr i done;
    let start = !i in
    while !i < n && (match rest.[!i] with 'a' .. 'z' | '-' -> true | _ -> false) do incr i done;
    if !i = start then stop := true
    else begin
      let tok = String.sub rest start (!i - start) in
      if List.exists (String.equal tok) rule_ids then ids := tok :: !ids else stop := true
    end
  done;
  List.rev !ids

let scan_comment_suppressions src =
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let n = Array.length lines in
  (* A suppression comment may wrap over several lines; it covers the
     line on which the comment closes, plus the one after. *)
  let closing_lnum i =
    let rec go j =
      if j >= n then i + 1
      else
        match find_sub lines.(j) "*)" with Some _ -> j + 1 | None -> go (j + 1)
    in
    go i
  in
  let file_level = ref [] and by_line = ref [] in
  Array.iteri
    (fun i line ->
      match find_sub line "lint: allow-file" with
      | Some off ->
        let rest = String.sub line (off + 16) (String.length line - off - 16) in
        file_level := parse_ids rest @ !file_level
      | None -> (
        match find_sub line "lint: allow" with
        | Some off ->
          let rest = String.sub line (off + 11) (String.length line - off - 11) in
          let lnum = closing_lnum i in
          List.iter (fun r -> by_line := (lnum, r) :: !by_line) (parse_ids rest)
        | None -> ()))
    lines;
  (!file_level, !by_line)

let attr_ids (a : Parsetree.attribute) =
  if not (String.equal a.attr_name.txt "lint.allow") then []
  else
    match a.attr_payload with
    | PStr
        [ { pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _ } ] ->
      parse_ids s
    | _ -> []

let collect_attr_ranges ~structure ~signature () =
  let ranges = ref [] in
  let note (loc : Location.t) attrs =
    List.iter
      (fun a ->
        List.iter
          (fun r -> ranges := (r, loc.loc_start.pos_lnum, loc.loc_end.pos_lnum) :: !ranges)
          (attr_ids a))
      attrs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          note e.pexp_loc e.pexp_attributes;
          Ast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_eval (_, attrs) -> note si.pstr_loc attrs
          | Pstr_value (_, vbs) ->
            List.iter (fun (vb : Parsetree.value_binding) -> note vb.pvb_loc vb.pvb_attributes) vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
      signature_item =
        (fun self si ->
          (match si.psig_desc with
          | Psig_value vd -> note si.psig_loc vd.pval_attributes
          | Psig_type (_, tds) ->
            List.iter
              (fun (td : Parsetree.type_declaration) -> note td.ptype_loc td.ptype_attributes)
              tds
          | _ -> ());
          Ast_iterator.default_iterator.signature_item self si);
      type_declaration =
        (fun self td ->
          note td.ptype_loc td.ptype_attributes;
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  Option.iter (it.structure it) structure;
  Option.iter (it.signature it) signature;
  !ranges

let is_suppressed sup (v : violation) =
  List.exists (String.equal v.rule) sup.file_level
  || List.exists (fun (l, r) -> (l = v.line || l = v.line - 1) && String.equal r v.rule) sup.by_line
  || List.exists
       (fun (r, lo, hi) -> String.equal r v.rule && v.line >= lo && v.line <= hi)
       sup.ranges

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                  *)
(* ------------------------------------------------------------------ *)

type kind = Ml | Mli

let kind_of_path p =
  if Filename.check_suffix p ".mli" then Some Mli
  else if Filename.check_suffix p ".ml" then Some Ml
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ml_rules_for zone : (file:string -> Parsetree.structure -> violation list) list =
  let r1 = Lint_rules.poly_compare and r2 = Lint_rules.determinism in
  let r3 = Lint_rules.rng_capture and r4 = Lint_rules.obs_guard in
  let r5 = Lint_rules.obs_metric_names in
  match zone with
  | Lib -> [ r1; r2; r3; r5 ]
  | Lib_hot -> [ r1; r2; r3; r4; r5 ]
  | Lib_rng -> [ r1; r3; r5 ]
  | Bin -> [ r2; r3; r5 ]
  | Bench | Test -> [ r3 ]

(* Lint one source text.  Returns (violations, suppressed). *)
let lint_source ~zone ~file ~kind src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  let file_level, by_line = scan_comment_suppressions src in
  let raw, ranges =
    match kind with
    | Ml -> (
      match Parse.implementation lexbuf with
      | str ->
        ( List.concat_map (fun rule -> rule ~file str) (ml_rules_for zone),
          collect_attr_ranges ~structure:(Some str) ~signature:None () )
      | exception exn ->
        ( [ { rule = "parse-error"; file; line = 1; col = 0; msg = Printexc.to_string exn } ],
          [] ))
    | Mli -> (
      match Parse.interface lexbuf with
      | sg ->
        ( (if lib_zone zone then Lint_rules.interface_signature ~file sg else []),
          collect_attr_ranges ~structure:None ~signature:(Some sg) () )
      | exception exn ->
        ( [ { rule = "parse-error"; file; line = 1; col = 0; msg = Printexc.to_string exn } ],
          [] ))
  in
  let sup = { file_level; by_line; ranges } in
  List.partition (fun v -> not (is_suppressed sup v)) raw

(* ------------------------------------------------------------------ *)
(* Discovery + the cross-file half of the interface rule              *)
(* ------------------------------------------------------------------ *)

let rec walk path acc =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if String.length name = 0 || name.[0] = '.' then acc
        else if
          String.equal name "_build" || String.equal name "lint_fixtures"
          || String.equal name "node_modules"
        then acc
        else walk (Filename.concat path name) acc)
      acc entries
  else
    match kind_of_path path with
    (* dune materializes "(* Auto-generated by Dune *)" .mli stubs for
       executables inside _build sandboxes; nothing of ours to lint *)
    | Some _
      when (let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let n = in_channel_length ic in
                n = 0
                || n < 64
                   &&
                   let s = really_input_string ic n in
                   Option.is_some (find_sub s "Auto-generated by Dune"))) ->
      acc
    | Some k -> (normalize_rel path, k) :: acc
    | None -> acc

let compare_violations a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let run ?force_zone ~roots () =
  let files = List.fold_left (fun acc r -> walk r acc) [] roots in
  let files = List.sort (fun (a, _) (b, _) -> String.compare a b) files in
  let viols = ref [] and supp = ref [] in
  let seen = ref 0 in
  List.iter
    (fun (file, kind) ->
      match (match force_zone with Some z -> Some z | None -> zone_of_rel file) with
      | None -> ()
      | Some zone ->
        incr seen;
        let src = read_file file in
        let v, s = lint_source ~zone ~file ~kind src in
        (* missing-.mli half of the interface rule *)
        let v =
          if
            kind = Ml && lib_zone zone
            && not (Sys.file_exists (Filename.remove_extension file ^ ".mli"))
          then
            { rule = "interface";
              file;
              line = 1;
              col = 0;
              msg = "implementation has no .mli; every lib/ module declares its interface";
            }
            :: v
          else v
        in
        let file_level, _ = scan_comment_suppressions src in
        let v, extra_s =
          List.partition
            (fun x ->
              not (String.equal x.rule "interface" && List.exists (String.equal "interface") file_level))
            v
        in
        viols := v @ !viols;
        supp := extra_s @ s @ !supp)
    files;
  {
    files = !seen;
    violations = List.sort compare_violations !viols;
    suppressed = List.sort compare_violations !supp;
  }

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

let json_of_violation v =
  Json.Obj
    [
      ("rule", Json.Str v.rule);
      ("file", Json.Str v.file);
      ("line", Json.Int v.line);
      ("col", Json.Int v.col);
      ("message", Json.Str v.msg);
    ]

let json_of_report r =
  Json.Obj
    [
      ("tool", Json.Str "mycelium-lint");
      ("files", Json.Int r.files);
      ("violation_count", Json.Int (List.length r.violations));
      ("suppressed_count", Json.Int (List.length r.suppressed));
      ("violations", Json.List (List.map json_of_violation r.violations));
      ("suppressed", Json.List (List.map json_of_violation r.suppressed));
    ]

let console_of_report r =
  let b = Buffer.create 1024 in
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule v.msg))
    r.violations;
  Buffer.add_string b
    (Printf.sprintf "mycelium-lint: %d files, %d violations, %d suppressed\n" r.files
       (List.length r.violations) (List.length r.suppressed));
  Buffer.contents b
