(* mycelium-analyze CLI.

     analyze_main.exe [--root DIR] [--source-root DIR] [--json PATH|-]
                      [--cache PATH] [--stats] [ROOT...]

   ROOTs are directories walked for [.cmt] files (default: lib bin —
   build trees, so typically run from [_build/default] via [--root]).
   [--cache] points at the persistent summary cache; [--stats] prints
   the summary/cache/rule table.  Exits non-zero when unsuppressed
   violations remain. *)

module A = Mycelium_lint.Analyze

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse roots json cache stats srcroot = function
    | "--root" :: dir :: rest ->
      Sys.chdir dir;
      parse roots json cache stats srcroot rest
    | "--source-root" :: dir :: rest -> parse roots json cache stats dir rest
    | "--json" :: path :: rest -> parse roots (Some path) cache stats srcroot rest
    | "--cache" :: path :: rest -> parse roots json (Some path) stats srcroot rest
    | "--stats" :: rest -> parse roots json cache true srcroot rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      prerr_endline ("mycelium-analyze: unknown option " ^ arg);
      exit 2
    | root :: rest -> parse (root :: roots) json cache stats srcroot rest
    | [] -> (List.rev roots, json, cache, stats, srcroot)
  in
  let roots, json, cache, stats, source_root = parse [] None None false "." args in
  let roots = if roots = [] then [ "lib"; "bin" ] else roots in
  (* convenience: when run from the repo root, cmts live in _build *)
  let roots =
    List.map
      (fun r ->
        let built = Filename.concat (Filename.concat "_build" "default") r in
        if Sys.file_exists r && A.find_cmts r [] <> [] then r
        else if Sys.file_exists built then built
        else r)
      roots
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline
          ("mycelium-analyze: no such root: " ^ r
         ^ " (run from the repo root or pass --root)");
        exit 2
      end)
    roots;
  let res = A.run ?cache ~source_root ~roots () in
  print_string (A.console_of_result res);
  if stats then print_string (A.stats_of_result res);
  (match json with
  | Some "-" -> print_endline (A.Json.to_string (A.json_of_result res))
  | Some path ->
    let oc = open_out path in
    output_string oc (A.Json.to_string (A.json_of_result res));
    output_string oc "\n";
    close_out oc
  | None -> ());
  if res.A.report.Mycelium_lint.Lint.violations <> [] then exit 1
