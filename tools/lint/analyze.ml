(* mycelium-analyze: the interprocedural half of the static-analysis
   stack (DESIGN.md §15).

   Input is the set of [.cmt] files dune already produces for every
   module; [Summarize] turns each into a symbolic per-function summary
   (cached against the cmt digest + [Policy.digest]), and this module
   runs the whole-repo phases on top:

     1. name resolution — call sites recorded against open-bound
        sibling modules ("Committee.decrypt_batch" seen from inside
        lib/core) are re-anchored to canonical wrapped names
        ("Mycelium_core.Committee.decrypt_batch") now that the whole
        repo's function table is known;
     2. the effect fixpoint — per function, an affine concrete
        summary [Taint.conc] (base fact + per-parameter transfer
        coefficient), iterated to stability over the call graph;
     3. the context fixpoint — per function, the join of the argument
        facts observed at every call site, so a sink reached inside a
        helper fires with the taint its callers actually pass;
     4. the rule checks — dp-release, budget-order, epsilon-flow from
        the fixpoint results, pool-purity straight from the cached
        per-module findings;
     5. suppression filtering, shared comment syntax and machinery
        with the syntactic linter ([Lint.scan_comment_suppressions]).

   Everything is compiler-libs + [Obs.Json]; no new dependencies. *)

module Json = Mycelium_obs.Obs.Json

let version = "mycelium-analyze/1"

type stats = {
  sa_modules : int;  (** cmt files analysed (after unit dedup) *)
  sa_summarized : int;  (** summaries computed this run (cache misses) *)
  sa_cache_hits : int;
  sa_functions : int;
  sa_conc_rounds : int;
  sa_ctx_rounds : int;
}

type result = { report : Lint.report; stats : stats }

(* ------------------------------------------------------------------ *)
(* Discovery                                                          *)
(* ------------------------------------------------------------------ *)

(* [.objs] directories start with a dot, so the walk skips nothing;
   roots are expected to be build trees (e.g. [_build/default/lib]). *)
let rec find_cmts path acc =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name -> find_cmts (Filename.concat path name) acc)
      acc entries
  end
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* ------------------------------------------------------------------ *)
(* Summary cache                                                      *)
(* ------------------------------------------------------------------ *)

(* One Marshal'd file: header (analyzer version, policy digest) +
   entries keyed by cmt path, each pinned to the cmt's digest.  A
   header mismatch — new analyzer, edited policy — drops the whole
   cache; a digest mismatch re-summarizes just that module. *)

type centry = { ce_digest : Digest.t; ce_ms : Taint.msummary }

let load_cache path : (string, centry) Hashtbl.t =
  let empty () = Hashtbl.create 64 in
  if not (Sys.file_exists path) then empty ()
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> (Marshal.from_channel ic : string * string * (string * centry) list))
    with
    | v, p, entries when String.equal v version && String.equal p Policy.digest ->
      let t = empty () in
      List.iter (fun (k, e) -> Hashtbl.replace t k e) entries;
      t
    | _ -> empty ()
    | exception _ -> empty ()

let save_cache path (t : (string, centry) Hashtbl.t) =
  let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t [] in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc (version, Policy.digest, entries) [])

(* ------------------------------------------------------------------ *)
(* The global function table                                          *)
(* ------------------------------------------------------------------ *)

type gf = {
  g_name : string;
  g_wrapper : string;  (* library wrapper prefix, e.g. "Mycelium_core" *)
  g_source : string;  (* repo-relative source path *)
  g_fs : Taint.fsummary;
  g_arity : int;
  mutable g_resolved : string array;  (* canonical callee per call index *)
  mutable g_conc : Taint.conc;
  mutable g_ctx : Taint.fact array;  (* observed per-parameter facts *)
}

let wrapper_of unit_name =
  match String.index_opt unit_name '.' with
  | Some i -> String.sub unit_name 0 i
  | None -> unit_name

(* A name the policy or repo knows under some classification — used to
   decide whether wrapper-prefixing improved a raw name. *)
let known funs name =
  Hashtbl.mem funs name
  || Option.is_some (Policy.classify name)
  || List.exists (String.equal name) Policy.env_readers
  || Policy.is_crypto name
  || Policy.is_pool_entry name
  || Policy.is_assume_charged name
  || Option.is_some (Policy.writer_of name)

(* Call sites in lib/foo/bar.ml reach sibling modules through the
   open'd wrapper alias, so the typedtree prints them unprefixed
   ("Committee.decrypt_batch").  Re-anchor against the wrapper. *)
let resolve funs ~wrapper name =
  if known funs name || String.equal wrapper "" then name
  else
    let p = wrapper ^ "." ^ name in
    if known funs p then p else name

(* ------------------------------------------------------------------ *)
(* Evaluation: sym -> absval under the current fixpoint state         *)
(* ------------------------------------------------------------------ *)

type ectx = {
  e_funs : (string, gf) Hashtbl.t;
  e_f : gf;
  e_call_memo : Taint.absval option array;
  mutable e_cells_busy : int list;
}

let fresh_ectx funs f =
  {
    e_funs = funs;
    e_f = f;
    e_call_memo = Array.make (Array.length f.g_fs.Taint.fs_calls) None;
    e_cells_busy = [];
  }

(* Match labelled argument values to a callee's parameter positions.
   Positional args fill successive positional params; ~l matches ~l or
   ?l.  Unmatched (over-application, mismatched labels) arguments are
   returned separately and joined into the result — conservative for
   levels. *)
let match_args (params : string list) (args : (string * Taint.absval) list) :
    Taint.absval option array * Taint.absval =
  let parr = Array.of_list params in
  let n = Array.length parr in
  let arr = Array.make n None in
  let extra = ref Taint.bot_av in
  let next_pos = ref 0 in
  let place i av =
    arr.(i) <- Some (match arr.(i) with None -> av | Some prev -> Taint.av_join prev av)
  in
  List.iter
    (fun (l, av) ->
      if String.equal l "" then begin
        let rec find i =
          if i >= n then None
          else if String.equal parr.(i) "" then Some i
          else find (i + 1)
        in
        match find !next_pos with
        | Some i ->
          place i av;
          next_pos := i + 1
        | None -> extra := Taint.av_join !extra av
      end
      else begin
        let base = String.sub l 1 (String.length l - 1) in
        let rec find i =
          if i >= n then None
          else if
            String.equal parr.(i) ("~" ^ base) || String.equal parr.(i) ("?" ^ base)
          then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i -> place i av
        | None -> extra := Taint.av_join !extra av
      end)
    args;
  (arr, !extra)

let source_origin ec fn (c : Taint.call) =
  {
    Taint.o_what = "source " ^ fn;
    o_file = ec.e_f.g_source;
    o_line = c.Taint.c_line;
  }

let env_origin ec fn (c : Taint.call) =
  {
    Taint.o_what = "environment read (" ^ fn ^ ")";
    o_file = ec.e_f.g_source;
    o_line = c.Taint.c_line;
  }

let rec eval ec (s : Taint.sym) : Taint.absval =
  match s with
  | Taint.Bot -> Taint.bot_av
  | Taint.Lit f -> Taint.av_of_fact f
  | Taint.Param i -> Taint.av_param i
  | Taint.Join ss -> Taint.av_joins (List.map (eval ec) ss)
  | Taint.Field (_, inner) -> eval ec inner
  | Taint.RecordS (fields, base) ->
    Taint.av_joins (eval ec base :: List.map (fun (_, s) -> eval ec s) fields)
  | Taint.Cell i ->
    if List.mem i ec.e_cells_busy then Taint.bot_av
    else begin
      ec.e_cells_busy <- i :: ec.e_cells_busy;
      let writes =
        if i < Array.length ec.e_f.g_fs.Taint.fs_cells then
          ec.e_f.g_fs.Taint.fs_cells.(i)
        else []
      in
      let r = Taint.av_joins (List.map (fun (_, s) -> eval ec s) writes) in
      ec.e_cells_busy <- List.tl ec.e_cells_busy;
      r
    end
  | Taint.Call i -> (
    match ec.e_call_memo.(i) with
    | Some v -> v
    | None ->
      (* break sym-graph cycles (recursive reads through cells) *)
      ec.e_call_memo.(i) <- Some Taint.bot_av;
      let v = eval_call ec i in
      ec.e_call_memo.(i) <- Some v;
      v)

and eval_call ec i =
  let c = ec.e_f.g_fs.Taint.fs_calls.(i) in
  let fn = ec.e_f.g_resolved.(i) in
  let arg_avs = List.map (fun (l, s) -> (l, eval ec s)) c.Taint.c_args in
  let all = Taint.av_joins (List.map snd arg_avs) in
  match Hashtbl.find_opt ec.e_funs fn with
  | Some callee ->
    let matched, extra = match_args callee.g_fs.Taint.fs_params arg_avs in
    Taint.av_join (Taint.conc_apply callee.g_conc matched) extra
  | None -> (
    if List.exists (String.equal fn) Policy.env_readers then
      Taint.av_of_fact
        { Taint.f_level = Taint.Public; f_srcs = []; f_eps = [ env_origin ec fn c ] }
    else
      match Policy.classify fn with
      | Some (Policy.Source l) ->
        Taint.av_of_fact
          { Taint.f_level = l; f_srcs = [ source_origin ec fn c ]; f_eps = [] }
      | Some (Policy.Sanitize tf) -> Taint.av_map_tf tf all
      | Some (Policy.Sink _) | Some (Policy.Charge _) | Some Policy.Neutral ->
        Taint.bot_av
      | Some Policy.Passthrough -> all
      | Some Policy.Opaque | None ->
        (* unknown exterior plumbing: conservative for levels, drops
           the const/env epsilon provenance (see taint.ml) *)
        Taint.av_drop_eps all)

(* ------------------------------------------------------------------ *)
(* Fixpoints                                                          *)
(* ------------------------------------------------------------------ *)

let conc_of_result arity (av : Taint.absval) : Taint.conc =
  {
    Taint.cn_base = av.Taint.v_base;
    cn_coeffs =
      Array.init arity (fun i -> List.assoc_opt i av.Taint.v_coeffs);
  }

let conc_fixpoint funs (order : gf list) =
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    changed := false;
    List.iter
      (fun f ->
        let ec = fresh_ectx funs f in
        let av = eval ec f.g_fs.Taint.fs_result in
        let cn = conc_of_result f.g_arity av in
        if not (Taint.conc_equal cn f.g_conc) then begin
          f.g_conc <- cn;
          changed := true
        end)
      order
  done;
  !rounds

(* Per call site, the data the context fixpoint and the rule checks
   both need: resolved callee, argument values (labelled, in
   application order) and their callee-parameter matching. *)
type site = {
  s_fn : string;
  s_line : int;
  s_col : int;
  s_args : (string * Taint.absval) list;
  s_matched : Taint.absval option array;  (* vs callee params if known *)
}

let sites_of funs f =
  let ec = fresh_ectx funs f in
  Array.to_list
    (Array.mapi
       (fun i (c : Taint.call) ->
         let fn = f.g_resolved.(i) in
         let args = List.map (fun (l, s) -> (l, eval ec s)) c.Taint.c_args in
         let matched =
           match Hashtbl.find_opt funs fn with
           | Some callee -> fst (match_args callee.g_fs.Taint.fs_params args)
           | None -> [||]
         in
         { s_fn = fn; s_line = c.Taint.c_line; s_col = c.Taint.c_col; s_args = args; s_matched = matched })
       f.g_fs.Taint.fs_calls)

let ctx_fixpoint funs (order : (gf * site list) list) =
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    changed := false;
    List.iter
      (fun (f, sites) ->
        List.iter
          (fun s ->
            match Hashtbl.find_opt funs s.s_fn with
            | None -> ()
            | Some callee ->
              Array.iteri
                (fun i avo ->
                  match avo with
                  | None -> ()
                  | Some av ->
                    if i < Array.length callee.g_ctx then begin
                      let incoming = Taint.fact_of_av f.g_ctx av in
                      let joined = Taint.fact_join callee.g_ctx.(i) incoming in
                      if not (Taint.fact_equal joined callee.g_ctx.(i)) then begin
                        callee.g_ctx.(i) <- joined;
                        changed := true
                      end
                    end)
                s.s_matched)
          sites)
      order
  done;
  !rounds

(* ------------------------------------------------------------------ *)
(* Rule checks                                                        *)
(* ------------------------------------------------------------------ *)

let origins_blurb srcs =
  match srcs with
  | [] -> ""
  | l ->
    let shown = List.filteri (fun i _ -> i < 3) l in
    let rest = List.length l - List.length shown in
    " (from "
    ^ String.concat ", "
        (List.map
           (fun (o : Taint.origin) ->
             Printf.sprintf "%s at %s:%d" o.Taint.o_what o.Taint.o_file o.Taint.o_line)
           shown)
    ^ (if rest > 0 then Printf.sprintf " and %d more" rest else "")
    ^ ")"

(* dp-release: a value still Secret or Clipped reaching a sink. *)
let check_dp_release (f : gf) sites acc =
  List.fold_left
    (fun acc s ->
      match Policy.classify s.s_fn with
      | Some (Policy.Sink what) ->
        List.fold_left
          (fun acc (_, av) ->
            let fact = Taint.fact_of_av f.g_ctx av in
            match fact.Taint.f_level with
            | Taint.Secret | Taint.Clipped ->
              {
                Lint_rules.rule = "dp-release";
                file = f.g_source;
                line = s.s_line;
                col = s.s_col;
                msg =
                  Printf.sprintf
                    "%s value reaches %s (%s) without the clip+noise release \
                     path%s"
                    (Taint.level_name fact.Taint.f_level)
                    what s.s_fn
                    (origins_blurb fact.Taint.f_srcs);
              }
              :: acc
            | Taint.Public | Taint.Noised -> acc)
          acc s.s_args
      | _ -> acc)
    acc sites

(* epsilon-flow: a charge-site epsilon whose provenance includes a
   float constant or an environment read.  Attributed at the origin so
   each is individually suppressible. *)
let check_epsilon_flow (f : gf) sites acc =
  List.fold_left
    (fun acc s ->
      match Policy.classify s.s_fn with
      | Some (Policy.Charge idx) -> (
        let positional = List.filter (fun (l, _) -> String.equal l "") s.s_args in
        match List.nth_opt positional idx with
        | None -> acc
        | Some (_, av) ->
          let fact = Taint.fact_of_av f.g_ctx av in
          List.fold_left
            (fun acc (o : Taint.origin) ->
              {
                Lint_rules.rule = "epsilon-flow";
                file = o.Taint.o_file;
                line = o.Taint.o_line;
                col = 0;
                msg =
                  Printf.sprintf
                    "%s flows into the epsilon charged by %s; epsilons must \
                     originate from the parsed query AST"
                    o.Taint.o_what s.s_fn;
              }
              :: acc)
            acc fact.Taint.f_eps)
      | _ -> acc)
    acc sites

(* budget-order: on serve entry paths, no call transitively reaching
   crypto/gather work may precede the first call transitively reaching
   an accountant charge.  Sites reaching both count as charging;
   reachability does not traverse [Policy.assume_charged]. *)
let reach_sets (table : (string * site list) list) =
  let is_charge n =
    match Policy.classify n with Some (Policy.Charge _) -> true | _ -> false
  in
  let reaches pred =
    let set = Hashtbl.create 64 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (name, sites) ->
          if not (Hashtbl.mem set name) then
            if
              List.exists
                (fun s ->
                  (not (Policy.is_assume_charged s.s_fn))
                  && (pred s.s_fn || Hashtbl.mem set s.s_fn))
                sites
            then begin
              Hashtbl.replace set name ();
              changed := true
            end)
        table
    done;
    set
  in
  (reaches is_charge, reaches Policy.is_crypto, is_charge)

let check_budget_order funs (by_name : (string * site list) list) acc =
  let charge_set, crypto_set, is_charge = reach_sets by_name in
  let site_reaches set pred s =
    (not (Policy.is_assume_charged s.s_fn)) && (pred s.s_fn || Hashtbl.mem set s.s_fn)
  in
  List.fold_left
    (fun acc (name, sites) ->
      if not (Policy.is_serve_entry name) then acc
      else
        let f = Hashtbl.find funs name in
        let sites =
          List.sort
            (fun a b ->
              let c = Int.compare a.s_line b.s_line in
              if c <> 0 then c else Int.compare a.s_col b.s_col)
            sites
        in
        let charging = site_reaches charge_set is_charge in
        let crypto s = site_reaches crypto_set Policy.is_crypto s in
        let first_charge =
          List.find_map (fun s -> if charging s then Some (s.s_line, s.s_col) else None) sites
        in
        List.fold_left
          (fun acc s ->
            let before =
              match first_charge with
              | None -> true
              | Some (l, c) -> s.s_line < l || (s.s_line = l && s.s_col < c)
            in
            if before && crypto s && not (charging s) then
              {
                Lint_rules.rule = "budget-order";
                file = f.g_source;
                line = s.s_line;
                col = s.s_col;
                msg =
                  Printf.sprintf
                    "crypto/gather work (%s) on serve path %s is reachable \
                     before the accountant charge; admission must charge first"
                    s.s_fn name;
              }
              :: acc
            else acc)
          acc sites)
    acc by_name

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run ?cache ?(source_root = ".") ~roots () : result =
  let cmts =
    List.concat_map (fun r -> find_cmts r []) roots
    |> List.sort_uniq String.compare
  in
  let ctbl =
    match cache with Some p -> load_cache p | None -> Hashtbl.create 16
  in
  let hits = ref 0 and misses = ref 0 in
  let summaries = ref [] in
  let seen_units = Hashtbl.create 64 in
  List.iter
    (fun path ->
      let digest = Digest.file path in
      let ms =
        match Hashtbl.find_opt ctbl path with
        | Some e when String.equal e.ce_digest digest ->
          incr hits;
          Some e.ce_ms
        | _ -> (
          match try Summarize.of_cmt path with _ -> None with
          | Some ms ->
            incr misses;
            Hashtbl.replace ctbl path { ce_digest = digest; ce_ms = ms };
            Some ms
          | None -> None)
      in
      match ms with
      | Some ms when not (Hashtbl.mem seen_units ms.Taint.m_unit) ->
        Hashtbl.replace seen_units ms.Taint.m_unit ();
        summaries := ms :: !summaries
      | _ -> ())
    cmts;
  let summaries = List.rev !summaries in
  Option.iter (fun p -> save_cache p ctbl) cache;
  (* global function table *)
  let funs : (string, gf) Hashtbl.t = Hashtbl.create 512 in
  let order = ref [] in
  List.iter
    (fun (ms : Taint.msummary) ->
      let wrapper = wrapper_of ms.Taint.m_unit in
      List.iter
        (fun (fs : Taint.fsummary) ->
          let arity = List.length fs.Taint.fs_params in
          let f =
            {
              g_name = fs.Taint.fs_name;
              g_wrapper = wrapper;
              g_source = ms.Taint.m_source;
              g_fs = fs;
              g_arity = arity;
              g_resolved = [||];
              g_conc = Taint.conc_bot arity;
              g_ctx = Array.make arity Taint.bot_fact;
            }
          in
          Hashtbl.replace funs fs.Taint.fs_name f;
          order := f :: !order)
        ms.Taint.m_funs)
    summaries;
  let order = List.rev !order in
  (* resolution pass: needs the complete table *)
  List.iter
    (fun f ->
      f.g_resolved <-
        Array.map
          (fun (c : Taint.call) -> resolve funs ~wrapper:f.g_wrapper c.Taint.c_fn)
          f.g_fs.Taint.fs_calls)
    order;
  (* fixpoints *)
  let conc_rounds = conc_fixpoint funs order in
  let with_sites = List.map (fun f -> (f, sites_of funs f)) order in
  let ctx_rounds = ctx_fixpoint funs with_sites in
  (* checks *)
  let by_name = List.map (fun (f, s) -> (f.g_name, s)) with_sites in
  let raw = ref [] in
  List.iter
    (fun (f, sites) ->
      raw := check_dp_release f sites !raw;
      raw := check_epsilon_flow f sites !raw)
    with_sites;
  raw := check_budget_order funs by_name !raw;
  List.iter
    (fun (ms : Taint.msummary) ->
      List.iter
        (fun (line, col, msg) ->
          raw :=
            { Lint_rules.rule = "pool-purity"; file = ms.Taint.m_source; line; col; msg }
            :: !raw)
        ms.Taint.m_pool)
    summaries;
  (* one violation per (rule, file, line, col, msg) *)
  let raw =
    List.sort_uniq
      (fun (a : Lint.violation) b ->
        let c = Lint.compare_violations a b in
        if c <> 0 then c else String.compare a.msg b.msg)
      !raw
  in
  (* suppression filtering, shared comment syntax with mycelium-lint *)
  let sup_cache : (string, Lint.suppressions) Hashtbl.t = Hashtbl.create 32 in
  let suppressions_for file =
    match Hashtbl.find_opt sup_cache file with
    | Some s -> s
    | None ->
      let s =
        match Lint.read_file (Filename.concat source_root file) with
        | src ->
          let file_level, by_line = Lint.scan_comment_suppressions src in
          { Lint.file_level; by_line; ranges = [] }
        | exception _ -> { Lint.file_level = []; by_line = []; ranges = [] }
      in
      Hashtbl.replace sup_cache file s;
      s
  in
  let violations, suppressed =
    List.partition (fun v -> not (Lint.is_suppressed (suppressions_for v.Lint.file) v)) raw
  in
  {
    report =
      {
        Lint.files = List.length summaries;
        violations = List.sort Lint.compare_violations violations;
        suppressed = List.sort Lint.compare_violations suppressed;
      };
    stats =
      {
        sa_modules = List.length summaries;
        sa_summarized = !misses;
        sa_cache_hits = !hits;
        sa_functions = List.length order;
        sa_conc_rounds = conc_rounds;
        sa_ctx_rounds = ctx_rounds;
      };
  }

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

let rule_table (r : Lint.report) =
  let rules = [ "dp-release"; "budget-order"; "epsilon-flow"; "pool-purity" ] in
  List.map
    (fun rule ->
      let count l = List.length (List.filter (fun (v : Lint.violation) -> String.equal v.rule rule) l) in
      (rule, count r.Lint.violations, count r.Lint.suppressed))
    rules

let json_of_result (res : result) =
  let r = res.report and s = res.stats in
  Json.Obj
    [
      ("tool", Json.Str "mycelium-analyze");
      ("modules", Json.Int s.sa_modules);
      ("functions", Json.Int s.sa_functions);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int s.sa_cache_hits);
            ("summarized", Json.Int s.sa_summarized);
            ( "hit_rate",
              Json.Num
                (if s.sa_cache_hits + s.sa_summarized = 0 then 0.
                 else
                   float_of_int s.sa_cache_hits
                   /. float_of_int (s.sa_cache_hits + s.sa_summarized)) );
          ] );
      ( "fixpoint",
        Json.Obj
          [
            ("effect_rounds", Json.Int s.sa_conc_rounds);
            ("context_rounds", Json.Int s.sa_ctx_rounds);
          ] );
      ("violation_count", Json.Int (List.length r.Lint.violations));
      ("suppressed_count", Json.Int (List.length r.Lint.suppressed));
      ("violations", Json.List (List.map Lint.json_of_violation r.Lint.violations));
      ("suppressed", Json.List (List.map Lint.json_of_violation r.Lint.suppressed));
      ( "rules",
        Json.Obj
          (List.map
             (fun (rule, v, sup) ->
               (rule, Json.Obj [ ("violations", Json.Int v); ("suppressed", Json.Int sup) ]))
             (rule_table r)) );
    ]

let console_of_result (res : result) =
  let r = res.report in
  let b = Buffer.create 1024 in
  List.iter
    (fun (v : Lint.violation) ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule v.msg))
    r.Lint.violations;
  Buffer.add_string b
    (Printf.sprintf "mycelium-analyze: %d modules, %d functions, %d violations, %d suppressed\n"
       res.stats.sa_modules res.stats.sa_functions
       (List.length r.Lint.violations)
       (List.length r.Lint.suppressed));
  Buffer.contents b

let stats_of_result (res : result) =
  let s = res.stats in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "modules summarized:  %d (cache hits %d, hit rate %.0f%%)\n"
       s.sa_summarized s.sa_cache_hits
       (if s.sa_cache_hits + s.sa_summarized = 0 then 0.
        else
          100.
          *. float_of_int s.sa_cache_hits
          /. float_of_int (s.sa_cache_hits + s.sa_summarized)));
  Buffer.add_string b
    (Printf.sprintf "functions:           %d\n" s.sa_functions);
  Buffer.add_string b
    (Printf.sprintf "fixpoint rounds:     %d effect, %d context\n" s.sa_conc_rounds
       s.sa_ctx_rounds);
  Buffer.add_string b "rule                 violations  suppressed\n";
  List.iter
    (fun (rule, v, sup) ->
      Buffer.add_string b (Printf.sprintf "%-20s %10d  %10d\n" rule v sup))
    (rule_table res.report);
  Buffer.contents b
