(* Parsetree plumbing shared by the rules: identifier paths, operand
   classification for the polymorphic-compare rule, pattern-variable
   collection for the capture rule, and location helpers.

   The linter works on the parsetree (no type information): every
   classification here is a documented syntactic approximation, erring
   toward silence on bare identifiers and toward reporting on
   structurally-typed operands (records, tuples, constructors with
   payloads, unknown function results).  DESIGN.md §10 spells out the
   contract rule by rule. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Identifier paths                                                   *)
(* ------------------------------------------------------------------ *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* Strip the explicit stdlib prefixes so [Stdlib.compare] and
   [compare] are the same path, likewise [Stdlib.Random.int]. *)
let norm_path lid =
  match flatten lid with
  | ("Stdlib" | "Pervasives") :: rest -> rest
  | p -> p

let line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let loc_range (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let within (lo, hi) (loc : Location.t) =
  let s = loc.loc_start.pos_cnum in
  s >= lo && s <= hi

(* ------------------------------------------------------------------ *)
(* Operand classification (poly-compare rule)                         *)
(* ------------------------------------------------------------------ *)

(* Applications whose result is evidently an immediate (int-like)
   value: arithmetic and bit operators, the [length] family, character
   codes.  Comparing their results with [=] is fine. *)
let int_returning_head path =
  match path with
  | [ ("+" | "-" | "*" | "/" | "mod" | "land" | "lor" | "lxor" | "lsl" | "lsr" | "asr"
      | "abs" | "succ" | "pred" | "~-" | "~+" | "int_of_float" | "int_of_char"
      | "int_of_string") ] ->
    true
  | [ _; "length" ] | [ "Char"; "code" ] | [ _; "to_int" ] -> true
  | _ -> false

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> strip e'
  | _ -> e

(* Immediate-safe operands: int/char/string literals, nullary
   constructors and polymorphic variants (immediate enums), and
   int-returning applications.  Float literals are deliberately NOT
   immediate: [x = 0.0] is a NaN trap and must go through
   [Float.equal].  Suffixed integer literals (1L, 0l, 3n) are NOT
   immediate either: Int64/Int32/Nativeint values are boxed, so
   [x = 1L] walks structure and belongs to [Int64.equal]. *)
let rec evidently_immediate e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_integer (_, None) | Pconst_char _ | Pconst_string _) -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    int_returning_head (norm_path txt)
    || (match (norm_path txt, args) with
       (* unary minus on a literal *)
       | ([ ("~-" | "-") ], [ (_, a) ]) -> evidently_immediate a
       | _ -> false)
  | _ -> false

(* Operands that evidently carry structure a polymorphic [=] would
   walk: literal records/tuples/arrays, constructors and variants with
   payloads (covers list cells), float literals, boxed-integer
   literals (1L, 0l, 3n) and Int64/Int32/Nativeint module constants,
   lazy values, closures and the result of an unknown (non-arithmetic)
   function call. *)
let evidently_structured e =
  match (strip e).pexp_desc with
  | Pexp_record _ | Pexp_tuple _ | Pexp_array _ -> true
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constant (Pconst_integer (_, Some ('l' | 'L' | 'n'))) -> true
  | Pexp_ident { txt; _ } -> (
    match norm_path txt with
    (* a bare module constant like [Int64.zero] on one side of [=]
       means the comparison is over boxed integers *)
    | [ ("Int64" | "Int32" | "Nativeint"); _ ] -> true
    | _ -> false)
  | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) -> true
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let p = norm_path txt in
    (not (int_returning_head p))
    && (match p with
       (* indexing yields an element of unknown type: neutral, not
          structured — [a.(i) = b.(i)] over int arrays is idiomatic *)
       | [ ("Array" | "String" | "Bytes"); ("get" | "unsafe_get") ] -> false
       | [ op ] when String.length op > 0 && not (op.[0] >= 'a' && op.[0] <= 'z') ->
         false (* remaining operator idents: neutral *)
       | _ -> true)
  | Pexp_apply _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pattern variables and free-identifier scans (rng-capture rule)     *)
(* ------------------------------------------------------------------ *)

(* Every variable bound anywhere inside [e] (fun parameters, lets,
   match cases...).  Over-approximates lexical scope, which is the
   safe direction for a capture check: a name bound anywhere inside
   the closure is treated as task-local. *)
let bound_vars_in (e : expression) : string list =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.expr it e;
  !acc

let iter_idents (e : expression) (f : Longident.t -> Location.t -> unit) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e' ->
          (match e'.pexp_desc with
          | Pexp_ident { txt; loc } -> f txt loc
          | Pexp_field (_, { txt; loc }) -> f txt loc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e');
    }
  in
  it.expr it e

(* A name that plausibly denotes an [Rng.t] stream. *)
let rngish name =
  let name = String.lowercase_ascii name in
  let n = String.length name in
  let rec find i =
    i + 3 <= n && (String.sub name i 3 = "rng" || find (i + 1))
  in
  find 0

(* Unwrap [fun]-literal arguments through constraints and [@...]
   wrappers. *)
let as_fun_literal e =
  match (strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> Some (strip e)
  | _ -> None

(* Does [e] syntactically contain a call through [Obs.enabled]? *)
let mentions_enabled (e : expression) =
  let found = ref false in
  iter_idents e (fun lid _ ->
      match norm_path lid with
      | [ "Obs"; "enabled" ] | [ "Mycelium_obs"; "Obs"; "enabled" ] | [ "enabled" ] ->
        found := true
      | _ -> ());
  !found

(* Polarity of an enabled-guard condition: [`On] when the condition is
   the flag itself ([Obs.enabled ()]), [`Off] when it is the negation,
   [`Unknown] for anything more complex (then treated conservatively
   as enabled on both branches). *)
let rec guard_polarity (e : expression) =
  match (strip e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ]) -> (
    match norm_path txt with
    | [ "Obs"; "enabled" ] | [ "Mycelium_obs"; "Obs"; "enabled" ] | [ "enabled" ] -> `On
    | [ "not" ] -> (
      match guard_polarity arg with `On -> `Off | `Off -> `On | u -> u)
    | _ -> `Unknown)
  | _ -> `Unknown
