(* benchdiff: compare two bench --json documents section by section.

     dune exec tools/benchdiff/benchdiff.exe -- BENCH_pr7.json BENCH_pr8.json
     dune exec tools/benchdiff/benchdiff.exe -- --gate 25 old.json new.json

   Every numeric leaf present in both documents is compared and printed
   with its relative change, grouped by section and sorted by magnitude
   within each.  Leaves present on only one side are listed so a
   vanished measurement cannot pass silently.  With --gate PCT the exit
   status is 1 when any shared leaf moved by more than PCT percent —
   useful as a coarse regression tripwire between committed records
   (time-like metrics regress upward, throughput-like downward; the
   gate is direction-agnostic on purpose, a big move either way is
   worth a look). *)

module Json = Mycelium_obs.Obs.Json

let usage () =
  prerr_endline "usage: benchdiff [--gate PCT] OLD.json NEW.json";
  exit 2

let gate, old_path, new_path =
  let rec parse gate = function
    | "--gate" :: v :: rest -> (
      match float_of_string_opt v with
      | Some g when g > 0. -> parse (Some g) rest
      | Some _ | None -> usage ())
    | [ a; b ] -> (gate, a, b)
    | _ -> usage ()
  in
  parse None (List.tl (Array.to_list Sys.argv))

let load path =
  let ic = try open_in_bin path with Sys_error e -> prerr_endline ("benchdiff: " ^ e); exit 2 in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.parse s with
  | Ok doc -> doc
  | Error e ->
    Printf.eprintf "benchdiff: %s does not parse: %s\n" path e;
    exit 2

(* Flatten every numeric leaf to a dotted path.  Lists index by a
   stable key when their elements carry one (the bench documents label
   rows with "degree", "label" or "domains"), falling back to the
   position, so reordered rows still line up. *)
let rec flatten prefix j acc =
  match j with
  | Json.Int i -> (prefix, float_of_int i) :: acc
  | Json.Num v -> (prefix, v) :: acc
  | Json.Obj fields ->
    List.fold_left (fun acc (k, v) -> flatten (prefix ^ "." ^ k) v acc) acc fields
  | Json.List elts ->
    let key_of e =
      let field k =
        match Json.member k e with
        | Some (Json.Str s) -> Some s
        | Some (Json.Int i) -> Some (string_of_int i)
        | _ -> None
      in
      match (field "label", field "degree", field "domains") with
      | Some l, _, _ -> Some l
      | None, Some d, _ -> Some d
      | None, None, Some d -> Some d
      | None, None, None -> None
    in
    List.fold_left
      (fun (i, acc) e ->
        let k = match key_of e with Some k -> k | None -> string_of_int i in
        (i + 1, flatten (prefix ^ "[" ^ k ^ "]") e acc))
      (0, acc) elts
    |> snd
  | Json.Null | Json.Bool _ | Json.Str _ -> acc

let section_of path =
  (* "sections.telemetry.sampler_off_ms" -> "telemetry" *)
  match String.split_on_char '.' path with
  | "" :: "sections" :: s :: _ -> s
  | _ -> "(top)"

let () =
  let old_doc = load old_path and new_doc = load new_path in
  let olds = flatten "" old_doc [] and news = flatten "" new_doc [] in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace old_tbl p v) olds;
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace new_tbl p v) news;
  let shared =
    List.filter_map
      (fun (p, nv) ->
        match Hashtbl.find_opt old_tbl p with
        | Some ov -> Some (p, ov, nv)
        | None -> None)
      news
  in
  let only_old = List.filter (fun (p, _) -> not (Hashtbl.mem new_tbl p)) olds in
  let only_new = List.filter (fun (p, _) -> not (Hashtbl.mem old_tbl p)) news in
  let delta_pct ov nv =
    if Float.abs ov < 1e-12 then if Float.abs nv < 1e-12 then 0. else Float.infinity
    else (nv -. ov) /. Float.abs ov *. 100.
  in
  Printf.printf "benchdiff: %s -> %s\n" old_path new_path;
  Printf.printf "  shared numeric leaves: %d  (only old: %d, only new: %d)\n"
    (List.length shared) (List.length only_old) (List.length only_new);
  let by_section = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (p, ov, nv) ->
      let s = section_of p in
      if not (Hashtbl.mem by_section s) then order := s :: !order;
      Hashtbl.replace by_section s ((p, ov, nv) :: Option.value ~default:[] (Hashtbl.find_opt by_section s)))
    shared;
  let worst = ref 0. in
  List.iter
    (fun s ->
      let rows = Hashtbl.find by_section s in
      let rows =
        List.sort
          (fun (_, ov1, nv1) (_, ov2, nv2) ->
            Float.compare (Float.abs (delta_pct ov2 nv2)) (Float.abs (delta_pct ov1 nv1)))
          rows
      in
      Printf.printf "  [%s]\n" s;
      List.iter
        (fun (p, ov, nv) ->
          let d = delta_pct ov nv in
          if Float.abs d > Float.abs !worst then worst := d;
          Printf.printf "    %-64s %14.6g -> %14.6g  %+8.1f%%\n" p ov nv d)
        rows)
    (List.rev !order);
  let list_only tag l =
    if l <> [] then begin
      Printf.printf "  %s:\n" tag;
      List.iter (fun (p, v) -> Printf.printf "    %-64s %14.6g\n" p v) l
    end
  in
  list_only "only in old" only_old;
  list_only "only in new" only_new;
  match gate with
  | None -> ()
  | Some g ->
    let over =
      List.filter (fun (_, ov, nv) -> Float.abs (delta_pct ov nv) > g) shared
    in
    if over <> [] then begin
      Printf.printf "gate: %d leaf(s) moved more than %.0f%%:\n" (List.length over) g;
      List.iter
        (fun (p, ov, nv) -> Printf.printf "  %-64s %+8.1f%%\n" p (delta_pct ov nv))
        over;
      exit 1
    end
    else Printf.printf "gate: no leaf moved more than %.0f%% ok\n" g
