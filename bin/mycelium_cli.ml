(* Command-line front end: generate a synthetic population, run
   differentially-private graph queries over it, or inspect a query's
   static analysis.

     dune exec bin/mycelium_cli.exe -- analyze "SELECT ..."
     dune exec bin/mycelium_cli.exe -- run --population 30 --epsilon 1.0 "SELECT ..."
     dune exec bin/mycelium_cli.exe -- corpus
     dune exec bin/mycelium_cli.exe -- audit ledger.jsonl
*)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Parser = Mycelium_query.Parser
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Corpus = Mycelium_query.Corpus
module Ast = Mycelium_query.Ast
module Params = Mycelium_bgv.Params
module Runtime = Mycelium_core.Runtime
module Engine = Mycelium_baseline.Engine
module Obs = Mycelium_obs.Obs

open Cmdliner

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"The query (or a corpus id like Q5).")

let resolve_query src =
  match Corpus.find src with
  | e -> e.Corpus.sql
  | exception Not_found -> src

let print_result = function
  | Semantics.Histogram groups ->
    Array.iter
      (fun (label, bins) ->
        Printf.printf "%-16s" label;
        Array.iteri (fun i v -> if Float.abs v > 0.4 then Printf.printf " %d:%.1f" i v) bins;
        print_newline ())
      groups
  | Semantics.Sums groups ->
    Array.iter (fun (label, v) -> Printf.printf "%-16s %.3f\n" label v) groups

(* --- analyze ------------------------------------------------------- *)

let analyze_cmd =
  let doc = "Parse a query and print its static analysis." in
  let run src =
    let src = resolve_query src in
    match Parser.parse src with
    | Error e -> Printf.eprintf "parse error at %d: %s\n" e.Parser.position e.Parser.message; 1
    | Ok q -> (
      match Analysis.analyze q with
      | Error e -> Printf.eprintf "analysis error: %s\n" e; 1
      | Ok info ->
        Printf.printf "query:           %s\n" (Ast.to_string q);
        Printf.printf "hops:            %d\n" q.Ast.hops;
        Printf.printf "ciphertexts/row: %d\n" info.Analysis.ciphertext_count;
        Printf.printf "groups:          %d\n" info.Analysis.layout.Analysis.group_count;
        Printf.printf "bins needed:     %d\n" info.Analysis.layout.Analysis.total_bins;
        Printf.printf "multiplications: %d\n" info.Analysis.multiplications;
        Printf.printf "sensitivity:     %.1f\n" info.Analysis.sensitivity;
        (match Analysis.feasible info Params.paper with
        | Ok () -> Printf.printf "paper params:    feasible\n"
        | Error m -> Printf.printf "paper params:    infeasible (%s)\n" m);
        0)
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ query_arg)

(* --- run ----------------------------------------------------------- *)

let run_cmd =
  let doc = "Generate a population and run a query end to end (encrypted pipeline)." in
  let population =
    Arg.(value & opt int 30 & info [ "population"; "n" ] ~doc:"Number of devices.")
  in
  let degree = Arg.(value & opt int 4 & info [ "degree"; "d" ] ~doc:"Degree bound d.") in
  let epsilon = Arg.(value & opt float 1.0 & info [ "epsilon" ] ~doc:"Privacy epsilon (0 = exact, non-private).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let plaintext =
    Arg.(value & flag & info [ "plaintext" ] ~doc:"Use the clear-text baseline engine instead.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a trace of the run and write it to $(docv) in Chrome trace_event \
             format (open in Perfetto or about://tracing). Enables the lib/obs \
             instrumentation; results are identical either way.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the lib/obs metrics registry (ciphertext ops, NTT multiplies, pool \
             chunks, degradation counters, ...) after the query. Enables the \
             instrumentation; results are identical either way.")
  in
  let ledger_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append one audit record per query to $(docv) (JSONL; summarize with \
             $(b,mycelium audit)). Results are identical either way.")
  in
  let flight_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder: structured events (spans, fault injections, \
             retries, decryption fallbacks) are kept in a bounded ring and dumped to \
             $(docv) when a fault fires or the process exits.")
  in
  let prometheus_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus" ] ~docv:"FILE"
          ~doc:
            "After the query, write the metrics registry and sampled time series to \
             $(docv) in Prometheus text exposition format.")
  in
  let sample_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-ms" ] ~docv:"MS"
          ~doc:
            "Start the background telemetry sampler with a $(docv)-millisecond period \
             (GC, pool, mixnet and fault-report gauges into fixed-capacity rings).")
  in
  let run population degree epsilon seed plaintext trace_file metrics ledger_file
      flight_file prometheus_file sample_ms src =
    let src = resolve_query src in
    let rng = Rng.create (Int64.of_int seed) in
    let graph =
      Cg.generate
        { Cg.default_config with Cg.population; degree_bound = degree; extra_contact_rate = 1.5 }
        rng
    in
    let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng graph in
    let eps = if epsilon <= 0. then Float.infinity else epsilon in
    if plaintext then begin
      match Parser.parse src with
      | Error e -> Printf.eprintf "parse error: %s\n" e.Parser.message; 1
      | Ok q -> (
        match Analysis.analyze ~degree_bound:degree q with
        | Error e -> Printf.eprintf "analysis error: %s\n" e; 1
        | Ok info ->
          print_result (Engine.run info graph);
          0)
    end
    else begin
      (match flight_file with
      | Some path ->
        Obs.Recorder.enable ();
        Obs.Recorder.arm path
      | None -> ());
      (match sample_ms with
      | Some ms -> Obs.Sampler.start ~period_s:(float_of_int (max 1 ms) /. 1000.) ()
      | None -> ());
      let sys =
        Runtime.init
          { Runtime.default_config with
            Runtime.params = Params.test_small;
            degree_bound = degree;
            trace = trace_file <> None || metrics || prometheus_file <> None;
            ledger = ledger_file
          }
          graph
      in
      match Runtime.run_query ~epsilon:eps sys src with
      | Ok r ->
        print_result r.Runtime.result;
        Printf.printf "(origins: %d, discarded: %d, committee generation: %d)\n"
          r.Runtime.origins_included r.Runtime.discarded_contributions
          r.Runtime.committee_generation;
        (match trace_file with
        | Some path ->
          Obs.write_chrome_trace path;
          Printf.printf "(trace: %d spans written to %s)\n" (Obs.span_count ()) path
        | None -> ());
        if metrics then print_string (Obs.metrics_table ());
        Obs.Sampler.stop ();
        (match prometheus_file with
        | Some path ->
          Obs.write_prometheus path;
          Printf.printf "(prometheus exposition written to %s)\n" path
        | None -> ());
        (match flight_file with
        | Some path ->
          Obs.Recorder.flush ();
          Printf.printf "(flight recorder: %d events, dump at %s)\n"
            (Obs.Recorder.recorded ()) path
        | None -> ());
        (match ledger_file with
        | Some path -> Printf.printf "(audit ledger appended to %s)\n" path
        | None -> ());
        0
      | Error (Runtime.Parse_error m) -> Printf.eprintf "parse error: %s\n" m; 1
      | Error (Runtime.Analysis_error m) -> Printf.eprintf "analysis error: %s\n" m; 1
      | Error (Runtime.Infeasible m) -> Printf.eprintf "infeasible: %s\n" m; 1
      | Error (Runtime.Budget_exhausted v) -> Printf.eprintf "budget exhausted (%.2f left)\n" v; 1
      | Error (Runtime.Pipeline_error m) -> Printf.eprintf "pipeline error: %s\n" m; 1
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ population $ degree $ epsilon $ seed $ plaintext $ trace_file $ metrics
      $ ledger_file $ flight_file $ prometheus_file $ sample_ms $ query_arg)

(* --- audit --------------------------------------------------------- *)

let audit_cmd =
  let doc = "Summarize an audit ledger (per-query privacy spend, written by run --ledger)." in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Ledger JSONL file.")
  in
  let run file =
    match Obs.Ledger.read file with
    | Error e ->
      Printf.eprintf "audit: %s: %s\n" file e;
      1
    | Ok records ->
      let s = Obs.Ledger.summarize records in
      Printf.printf "ledger:            %s\n" file;
      Printf.printf "queries:           %d (ok %d, rejected %d, errored %d)\n"
        s.Obs.Ledger.records s.Obs.Ledger.ok s.Obs.Ledger.rejected s.Obs.Ledger.errored;
      Printf.printf "epsilon spent:     %.6g\n" s.Obs.Ledger.epsilon_spent;
      if s.Obs.Ledger.uncharged > 0 then
        Printf.printf "uncharged:         %d (epsilon = infinity, exact release)\n"
          s.Obs.Ledger.uncharged;
      (match (s.Obs.Ledger.budget_total, s.Obs.Ledger.budget_remaining) with
      | Some total, Some remaining ->
        Printf.printf "budget:            %.6g total, %.6g remaining\n" total remaining
      | _ -> ());
      if s.Obs.Ledger.by_name <> [] then begin
        Printf.printf "per query name:\n";
        List.iter
          (fun (name, runs, eps) ->
            Printf.printf "  %-24s %4d run%s  epsilon %.6g\n" name runs
              (if runs = 1 then " " else "s")
              eps)
          s.Obs.Ledger.by_name
      end;
      0
  in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const run $ file)

(* --- corpus -------------------------------------------------------- *)

let corpus_cmd =
  let doc = "List the paper's ten queries (Figure 2)." in
  let run () =
    List.iter
      (fun (e : Corpus.entry) ->
        Printf.printf "%-4s %s\n     %s\n" e.Corpus.id e.Corpus.description e.Corpus.sql)
      Corpus.all;
    0
  in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const run $ const ())

let () =
  let doc = "Mycelium: large-scale distributed graph queries with differential privacy" in
  let info = Cmd.info "mycelium" ~doc in
  exit (Cmd.eval' (Cmd.group info [ analyze_cmd; run_cmd; corpus_cmd; audit_cmd ]))
