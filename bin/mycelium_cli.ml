(* Command-line front end: generate a synthetic population, run
   differentially-private graph queries over it, or inspect a query's
   static analysis.

     dune exec bin/mycelium_cli.exe -- analyze "SELECT ..."
     dune exec bin/mycelium_cli.exe -- run --population 30 --epsilon 1.0 "SELECT ..."
     dune exec bin/mycelium_cli.exe -- corpus
     dune exec bin/mycelium_cli.exe -- serve workload.jsonl --batch-size 8
     dune exec bin/mycelium_cli.exe -- audit ledger.jsonl
*)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Parser = Mycelium_query.Parser
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Corpus = Mycelium_query.Corpus
module Ast = Mycelium_query.Ast
module Params = Mycelium_bgv.Params
module Runtime = Mycelium_core.Runtime
module Engine = Mycelium_baseline.Engine
module Obs = Mycelium_obs.Obs
module Serve = Mycelium_serve.Serve
module Accountant = Mycelium_serve.Accountant
module Agg_cache = Mycelium_serve.Agg_cache

open Cmdliner

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"The query (or a corpus id like Q5).")

let resolve_query src =
  match Corpus.find src with
  | e -> e.Corpus.sql
  | exception Not_found -> src

let print_result = function
  | Semantics.Histogram groups ->
    Array.iter
      (fun (label, bins) ->
        Printf.printf "%-16s" label;
        Array.iteri (fun i v -> if Float.abs v > 0.4 then Printf.printf " %d:%.1f" i v) bins;
        print_newline ())
      groups
  | Semantics.Sums groups ->
    Array.iter (fun (label, v) -> Printf.printf "%-16s %.3f\n" label v) groups

(* --- analyze ------------------------------------------------------- *)

let analyze_cmd =
  let doc = "Parse a query and print its static analysis." in
  let run src =
    let src = resolve_query src in
    match Parser.parse src with
    | Error e -> Printf.eprintf "parse error at %d: %s\n" e.Parser.position e.Parser.message; 1
    | Ok q -> (
      match Analysis.analyze q with
      | Error e -> Printf.eprintf "analysis error: %s\n" e; 1
      | Ok info ->
        Printf.printf "query:           %s\n" (Ast.to_string q);
        Printf.printf "hops:            %d\n" q.Ast.hops;
        Printf.printf "ciphertexts/row: %d\n" info.Analysis.ciphertext_count;
        Printf.printf "groups:          %d\n" info.Analysis.layout.Analysis.group_count;
        Printf.printf "bins needed:     %d\n" info.Analysis.layout.Analysis.total_bins;
        Printf.printf "multiplications: %d\n" info.Analysis.multiplications;
        Printf.printf "sensitivity:     %.1f\n" info.Analysis.sensitivity;
        (match Analysis.feasible info Params.paper with
        | Ok () -> Printf.printf "paper params:    feasible\n"
        | Error m -> Printf.printf "paper params:    infeasible (%s)\n" m);
        0)
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ query_arg)

(* --- run ----------------------------------------------------------- *)

let run_cmd =
  let doc = "Generate a population and run a query end to end (encrypted pipeline)." in
  let population =
    Arg.(value & opt int 30 & info [ "population"; "n" ] ~doc:"Number of devices.")
  in
  let degree = Arg.(value & opt int 4 & info [ "degree"; "d" ] ~doc:"Degree bound d.") in
  let epsilon = Arg.(value & opt float 1.0 & info [ "epsilon" ] ~doc:"Privacy epsilon (0 = exact, non-private).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let plaintext =
    Arg.(value & flag & info [ "plaintext" ] ~doc:"Use the clear-text baseline engine instead.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a trace of the run and write it to $(docv) in Chrome trace_event \
             format (open in Perfetto or about://tracing). Enables the lib/obs \
             instrumentation; results are identical either way.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the lib/obs metrics registry (ciphertext ops, NTT multiplies, pool \
             chunks, degradation counters, ...) after the query. Enables the \
             instrumentation; results are identical either way.")
  in
  let ledger_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append one audit record per query to $(docv) (JSONL; summarize with \
             $(b,mycelium audit)). Results are identical either way.")
  in
  let flight_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder: structured events (spans, fault injections, \
             retries, decryption fallbacks) are kept in a bounded ring and dumped to \
             $(docv) when a fault fires or the process exits.")
  in
  let prometheus_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus" ] ~docv:"FILE"
          ~doc:
            "After the query, write the metrics registry and sampled time series to \
             $(docv) in Prometheus text exposition format.")
  in
  let sample_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-ms" ] ~docv:"MS"
          ~doc:
            "Start the background telemetry sampler with a $(docv)-millisecond period \
             (GC, pool, mixnet and fault-report gauges into fixed-capacity rings).")
  in
  let run population degree epsilon seed plaintext trace_file metrics ledger_file
      flight_file prometheus_file sample_ms src =
    let src = resolve_query src in
    let rng = Rng.create (Int64.of_int seed) in
    let graph =
      Cg.generate
        { Cg.default_config with Cg.population; degree_bound = degree; extra_contact_rate = 1.5 }
        rng
    in
    let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng graph in
    let eps = if epsilon <= 0. then Float.infinity else epsilon in
    if plaintext then begin
      match Parser.parse src with
      | Error e -> Printf.eprintf "parse error: %s\n" e.Parser.message; 1
      | Ok q -> (
        match Analysis.analyze ~degree_bound:degree q with
        | Error e -> Printf.eprintf "analysis error: %s\n" e; 1
        | Ok info ->
          print_result (Engine.run info graph);
          0)
    end
    else begin
      (match flight_file with
      | Some path ->
        Obs.Recorder.enable ();
        Obs.Recorder.arm path
      | None -> ());
      (match sample_ms with
      | Some ms -> Obs.Sampler.start ~period_s:(float_of_int (max 1 ms) /. 1000.) ()
      | None -> ());
      let sys =
        Runtime.init
          { Runtime.default_config with
            Runtime.params = Params.test_small;
            degree_bound = degree;
            trace = trace_file <> None || metrics || prometheus_file <> None;
            ledger = ledger_file
          }
          graph
      in
      match Runtime.run_query ~epsilon:eps sys src with
      | Ok r ->
        print_result r.Runtime.result;
        Printf.printf "(origins: %d, discarded: %d, committee generation: %d)\n"
          r.Runtime.origins_included r.Runtime.discarded_contributions
          r.Runtime.committee_generation;
        (match trace_file with
        | Some path ->
          Obs.write_chrome_trace path;
          Printf.printf "(trace: %d spans written to %s)\n" (Obs.span_count ()) path
        | None -> ());
        if metrics then print_string (Obs.metrics_table ());
        Obs.Sampler.stop ();
        (match prometheus_file with
        | Some path ->
          Obs.write_prometheus path;
          Printf.printf "(prometheus exposition written to %s)\n" path
        | None -> ());
        (match flight_file with
        | Some path ->
          Obs.Recorder.flush ();
          Printf.printf "(flight recorder: %d events, dump at %s)\n"
            (Obs.Recorder.recorded ()) path
        | None -> ());
        (match ledger_file with
        | Some path -> Printf.printf "(audit ledger appended to %s)\n" path
        | None -> ());
        0
      | Error (Runtime.Parse_error m) -> Printf.eprintf "parse error: %s\n" m; 1
      | Error (Runtime.Analysis_error m) -> Printf.eprintf "analysis error: %s\n" m; 1
      | Error (Runtime.Infeasible m) -> Printf.eprintf "infeasible: %s\n" m; 1
      | Error (Runtime.Budget_exhausted v) -> Printf.eprintf "budget exhausted (%.2f left)\n" v; 1
      | Error (Runtime.Pipeline_error m) -> Printf.eprintf "pipeline error: %s\n" m; 1
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ population $ degree $ epsilon $ seed $ plaintext $ trace_file $ metrics
      $ ledger_file $ flight_file $ prometheus_file $ sample_ms $ query_arg)

(* --- serve --------------------------------------------------------- *)

(* One workload line: {"user": "...", "epsilon": 0.5, "query": "Q5",
   "arrival": 1.25} — query is a corpus id or inline SQL, arrival (in
   seconds, monotone) drives the batch deadline and defaults to 0. *)
let parse_workload_line lineno line =
  match Obs.Json.parse line with
  | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
  | Ok json ->
    let str k = match Obs.Json.member k json with Some (Obs.Json.Str s) -> Some s | _ -> None in
    let num k =
      match Obs.Json.member k json with
      | Some (Obs.Json.Num f) -> Some f
      | Some (Obs.Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    (match (str "user", str "query") with
    | Some user, Some q ->
      let epsilon = Option.value ~default:1.0 (num "epsilon") in
      let epsilon = if epsilon <= 0. then Float.infinity else epsilon in
      let arrival = Option.value ~default:0.0 (num "arrival") in
      (* a corpus id doubles as the query's name, so ledger rows and
         responses say "Q5", not the parser's "query" placeholder *)
      let name = match Corpus.find q with _ -> Some q | exception Not_found -> None in
      Ok (arrival, { Serve.user; epsilon; sql = resolve_query q; name })
    | _ -> Error (Printf.sprintf "line %d: needs \"user\" and \"query\" fields" lineno))

let serve_cmd =
  let doc =
    "Serve a workload file through the batching scheduler: admitted queries share one \
     mixnet round-trip and one committee decryption session per batch, repeated query \
     shapes hit the encrypted-aggregate cache, and each analyst draws from their own \
     privacy budget."
  in
  let workload_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "JSONL workload: one {\"user\", \"epsilon\", \"query\", \"arrival\"} object \
             per line; \"query\" is a corpus id (Q1..Q10) or inline SQL.")
  in
  let population =
    Arg.(value & opt int 30 & info [ "population"; "n" ] ~doc:"Number of devices.")
  in
  let degree = Arg.(value & opt int 4 & info [ "degree"; "d" ] ~doc:"Degree bound d.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed (graph, DP noise streams).") in
  let batch_size =
    Arg.(value & opt int 8 & info [ "batch-size" ] ~doc:"Flush a batch at this many admitted members.")
  in
  let deadline =
    Arg.(
      value & opt float 1.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Flush when the oldest pending member has waited this long on the workload's arrival clock.")
  in
  let cache_capacity =
    Arg.(value & opt int 64 & info [ "cache-capacity" ] ~doc:"Encrypted-aggregate cache entries (0 disables).")
  in
  let user_budget =
    Arg.(value & opt float 10.0 & info [ "user-budget" ] ~doc:"Per-analyst total epsilon.")
  in
  let no_budget =
    Arg.(
      value & flag
      & info [ "no-budget" ]
          ~doc:
            "Admit epsilon <= 0 (infinite-epsilon, exact-release) queries. Without this \
             flag the scheduler rejects them: a serving layer does not release \
             unbudgeted results.")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record a trace and write Chrome trace_event format to $(docv). Results are identical either way.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (serve.* admission, batch and cache counters included) after the workload.")
  in
  let ledger_file =
    Arg.(
      value & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Append one audit record per batch member to $(docv) (summarize with $(b,mycelium audit)).")
  in
  let run workload population degree seed batch_size deadline cache_capacity user_budget
      no_budget trace_file metrics ledger_file =
    let lines =
      let ic = open_in workload in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc n =
            match input_line ic with
            | line ->
              let acc = if String.trim line = "" then acc else (n, line) :: acc in
              go acc (n + 1)
            | exception End_of_file -> List.rev acc
          in
          go [] 1)
    in
    let requests =
      List.filter_map
        (fun (n, line) ->
          match parse_workload_line n line with
          | Ok r -> Some r
          | Error e ->
            Printf.eprintf "serve: %s: %s\n" workload e;
            exit 1)
        lines
    in
    let rng = Rng.create (Int64.of_int seed) in
    let graph =
      Cg.generate
        { Cg.default_config with Cg.population; degree_bound = degree; extra_contact_rate = 1.5 }
        rng
    in
    let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng graph in
    let sys =
      Runtime.init
        { Runtime.default_config with
          Runtime.params = Params.test_small;
          degree_bound = degree;
          seed = Int64.of_int seed;
          epsilon_budget = Float.max_float;
          trace = trace_file <> None || metrics;
          ledger = ledger_file
        }
        graph
    in
    let srv =
      Serve.create
        ~config:
          { Serve.batch_size;
            deadline_s = deadline;
            per_user_budget = user_budget;
            accounting = Mycelium_dp.Dp.Basic;
            cache_capacity;
            allow_unbudgeted = no_budget;
            seed = Int64.of_int seed
          }
        sys
    in
    let admitted = ref 0 and rejected = ref 0 in
    let print_responses rs =
      List.iter
        (fun r ->
          match r.Serve.outcome with
          | Ok qr ->
            Printf.printf "#%d %s %s [%s]\n" r.Serve.seq r.Serve.user r.Serve.query_name
              (if r.Serve.cache_hit then "cache hit" else "fresh");
            print_result qr.Runtime.result
          | Error e ->
            Printf.printf "#%d %s %s failed: %s\n" r.Serve.seq r.Serve.user
              r.Serve.query_name
              (Serve.rejection_to_string (Serve.Invalid e)))
        rs
    in
    List.iter
      (fun (arrival, req) ->
        let adm, flushed = Serve.submit srv ~arrival req in
        (match adm with
        | Serve.Queued _ -> incr admitted
        | Serve.Rejected r ->
          incr rejected;
          Printf.printf "rejected %s: %s\n" req.Serve.user (Serve.rejection_to_string r));
        print_responses flushed)
      requests;
    print_responses (Serve.drain srv);
    Printf.printf "(admitted %d, rejected %d; cache: %d entries, %d evictions)\n" !admitted
      !rejected
      (Agg_cache.length (Serve.cache srv))
      (Agg_cache.evictions (Serve.cache srv));
    let acct = Serve.accountant srv in
    List.iter
      (fun user ->
        Printf.printf "(budget %-12s spent %.6g of %.6g)\n" user (Accountant.spent acct ~user)
          (Accountant.per_user_total acct))
      (Accountant.users acct);
    (match trace_file with
    | Some path ->
      Obs.write_chrome_trace path;
      Printf.printf "(trace: %d spans written to %s)\n" (Obs.span_count ()) path
    | None -> ());
    if metrics then print_string (Obs.metrics_table ());
    (match ledger_file with
    | Some path -> Printf.printf "(audit ledger appended to %s)\n" path
    | None -> ());
    0
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ workload_arg $ population $ degree $ seed $ batch_size $ deadline
      $ cache_capacity $ user_budget $ no_budget $ trace_file $ metrics $ ledger_file)

(* --- audit --------------------------------------------------------- *)

let audit_cmd =
  let doc = "Summarize an audit ledger (per-query privacy spend, written by run --ledger)." in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Ledger JSONL file.")
  in
  let run file =
    match Obs.Ledger.read file with
    | Error e ->
      Printf.eprintf "audit: %s: %s\n" file e;
      1
    | Ok records ->
      let s = Obs.Ledger.summarize records in
      Printf.printf "ledger:            %s\n" file;
      Printf.printf "queries:           %d (ok %d, rejected %d, errored %d)\n"
        s.Obs.Ledger.records s.Obs.Ledger.ok s.Obs.Ledger.rejected s.Obs.Ledger.errored;
      Printf.printf "epsilon spent:     %.6g\n" s.Obs.Ledger.epsilon_spent;
      if s.Obs.Ledger.uncharged > 0 then
        Printf.printf "uncharged:         %d (epsilon = infinity, exact release)\n"
          s.Obs.Ledger.uncharged;
      (match (s.Obs.Ledger.budget_total, s.Obs.Ledger.budget_remaining) with
      | Some total, Some remaining ->
        Printf.printf "budget:            %.6g total, %.6g remaining\n" total remaining
      | _ -> ());
      if s.Obs.Ledger.by_name <> [] then begin
        Printf.printf "per query name:\n";
        List.iter
          (fun (name, runs, eps) ->
            Printf.printf "  %-24s %4d run%s  epsilon %.6g\n" name runs
              (if runs = 1 then " " else "s")
              eps)
          s.Obs.Ledger.by_name
      end;
      0
  in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const run $ file)

(* --- corpus -------------------------------------------------------- *)

let corpus_cmd =
  let doc = "List the paper's ten queries (Figure 2)." in
  let run () =
    List.iter
      (fun (e : Corpus.entry) ->
        Printf.printf "%-4s %s\n     %s\n" e.Corpus.id e.Corpus.description e.Corpus.sql)
      Corpus.all;
    0
  in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const run $ const ())

let () =
  let doc = "Mycelium: large-scale distributed graph queries with differential privacy" in
  let info = Cmd.info "mycelium" ~doc in
  exit (Cmd.eval' (Cmd.group info [ analyze_cmd; run_cmd; serve_cmd; corpus_cmd; audit_cmd ]))
