lib/baseline/pregel.mli: Mycelium_graph
