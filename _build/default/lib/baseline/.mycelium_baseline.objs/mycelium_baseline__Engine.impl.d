lib/baseline/engine.ml: Array Fun Hashtbl List Mycelium_graph Mycelium_query Unix
