lib/baseline/engine.mli: Mycelium_graph Mycelium_query
