lib/baseline/pregel.ml: Array List Mycelium_graph
