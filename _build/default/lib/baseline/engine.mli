(** The plaintext baseline: evaluates Mycelium queries in the clear,
    the way a trusted aggregator with GraphX would (§7, §2.4's first
    strawman).

    Two entry points: {!run} evaluates any corpus query exactly via the
    shared reference semantics (the correctness oracle for the HE
    engine), and {!run_flooded} executes the same computation as a
    Pregel vertex program with explicit flooding — demonstrating the
    §4.4 message structure in the clear and cross-checking the direct
    evaluation. *)

val run :
  Mycelium_query.Analysis.info ->
  Mycelium_graph.Contact_graph.t ->
  Mycelium_query.Semantics.result
(** Exact, noise-free query answer. *)

val histogram :
  Mycelium_query.Analysis.info -> Mycelium_graph.Contact_graph.t -> int array
(** The raw pre-decode bin counts (for equality checks against the HE
    pipeline). *)

val run_flooded :
  Mycelium_query.Analysis.info ->
  Mycelium_graph.Contact_graph.t ->
  int array * int
(** Evaluate via the Pregel engine with §4.4's 2k-round
    flood-then-aggregate schedule; returns (bins, supersteps). Bins
    equal {!histogram}'s. Only 1-hop queries use plain neighbor
    messaging; k-hop queries flood query ids with upstream tracking
    exactly as the paper describes. *)

val time_plaintext_query :
  Mycelium_query.Analysis.info ->
  Mycelium_graph.Contact_graph.t ->
  float
(** Wall-clock seconds for {!run}; the §7 measurement input that the
    cost model extrapolates to the paper's billion-vertex anecdote. *)
