(** A minimal Pregel-style bulk-synchronous graph engine (Malewicz et
    al. [65]) — the stand-in for GraphX in the §7 plaintext baseline,
    and the computation model Mycelium's queries compile to (§2.5).

    Computation proceeds in supersteps: every active vertex receives
    the messages sent to it in the previous superstep, updates its
    state, and may send messages along its edges or vote to halt. The
    engine is polymorphic in state and message types. *)

type ('state, 'msg) vertex_ctx = {
  vertex : int;
  superstep : int;
  state : 'state;
  messages : 'msg list;  (** received this superstep *)
  send : int -> 'msg -> unit;  (** to a neighbor (checked) *)
  send_all_neighbors : 'msg -> unit;
  vote_halt : unit -> unit;
}

type ('state, 'msg) program = ('state, 'msg) vertex_ctx -> 'state

val run :
  Mycelium_graph.Contact_graph.t ->
  init:(int -> 'state) ->
  program:('state, 'msg) program ->
  max_supersteps:int ->
  'state array * int
(** Runs until every vertex halts with no messages in flight, or the
    superstep bound is hit; returns final states and supersteps used.
    A halted vertex reactivates when it receives a message. *)
