(** ChaCha20-Poly1305 authenticated encryption (RFC 8439 §2.8), the
    paper's AE instantiation (§5). Per §3.5, the nonce is the C-round
    number known to both endpoints and is never transmitted. *)

val key_size : int (* 32 *)
val overhead : int (* 16, the Poly1305 tag *)

val seal : key:bytes -> round:int -> ?aad:bytes -> bytes -> bytes
(** [seal ~key ~round msg] is ciphertext || tag. *)

val open_ : key:bytes -> round:int -> ?aad:bytes -> bytes -> bytes option
(** [open_ ~key ~round ct] is [Some plaintext] iff the tag verifies. *)

val seal_nonce : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes
val open_nonce : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes option
(** Explicit-nonce variants, used by the RFC test vectors. *)
