(** Poly1305 one-time authenticator (RFC 8439). Combined with
    {!Chacha20} it forms Mycelium's AE scheme for telescoping-circuit
    control messages and the innermost onion layer. *)

val tag_size : int (* 16 *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] with a 32-byte one-time key; returns 16 bytes. *)

val verify : key:bytes -> tag:bytes -> bytes -> bool
(** Constant-time-shaped comparison of the expected and received tag. *)
