module Bigint = Mycelium_math.Bigint
module Rng = Mycelium_util.Rng

type public_key = { n : Bigint.t; e : Bigint.t }
type private_key = { pub : public_key; d : Bigint.t }

let e_fixed = Bigint.of_int 65537

let generate rng ~bits =
  if bits < 128 then invalid_arg "Rsa.generate: key too small";
  let half = bits / 2 in
  let rec gen () =
    let p = Bigint.random_prime rng ~bits:half in
    let q = Bigint.random_prime rng ~bits:(bits - half) in
    if Bigint.equal p q then gen ()
    else begin
      let n = Bigint.mul p q in
      let p1 = Bigint.sub p Bigint.one and q1 = Bigint.sub q Bigint.one in
      let phi = Bigint.mul p1 q1 in
      if not (Bigint.equal (Bigint.gcd e_fixed phi) Bigint.one) then gen ()
      else begin
        let d = Bigint.mod_inv e_fixed phi in
        let pub = { n; e = e_fixed } in
        (pub, { pub; d })
      end
    end
  in
  gen ()

let public_of_private sk = sk.pub

let modulus_bytes pk = (Bigint.num_bits pk.n + 7) / 8

(* EB = 00 || 02 || PS (>= 8 nonzero bytes) || 00 || D *)
let max_plaintext pk = modulus_bytes pk - 11

let encrypt rng pk msg =
  let k = modulus_bytes pk in
  let mlen = Bytes.length msg in
  if mlen > max_plaintext pk then invalid_arg "Rsa.encrypt: message too long";
  let eb = Bytes.create k in
  Bytes.set_uint8 eb 0 0;
  Bytes.set_uint8 eb 1 2;
  let ps_len = k - 3 - mlen in
  for i = 0 to ps_len - 1 do
    Bytes.set_uint8 eb (2 + i) (1 + Rng.int rng 255)
  done;
  Bytes.set_uint8 eb (2 + ps_len) 0;
  Bytes.blit msg 0 eb (3 + ps_len) mlen;
  let m = Bigint.of_bytes_be eb in
  let c = Bigint.mod_pow m pk.e pk.n in
  let cb = Bigint.to_bytes_be c in
  (* Left-pad the ciphertext to the modulus size. *)
  let out = Bytes.make k '\x00' in
  Bytes.blit cb 0 out (k - Bytes.length cb) (Bytes.length cb);
  out

let decrypt sk ct =
  let k = modulus_bytes sk.pub in
  if Bytes.length ct <> k then None
  else begin
    let c = Bigint.of_bytes_be ct in
    if Bigint.compare c sk.pub.n >= 0 then None
    else begin
      let m = Bigint.mod_pow c sk.d sk.pub.n in
      let mb = Bigint.to_bytes_be m in
      let eb = Bytes.make k '\x00' in
      Bytes.blit mb 0 eb (k - Bytes.length mb) (Bytes.length mb);
      if Bytes.get_uint8 eb 0 <> 0 || Bytes.get_uint8 eb 1 <> 2 then None
      else begin
        (* Find the 0x00 separator after at least 8 padding bytes. *)
        let rec find i =
          if i >= k then None
          else if Bytes.get_uint8 eb i = 0 then Some i
          else find (i + 1)
        in
        match find 2 with
        | Some sep when sep >= 10 -> Some (Bytes.sub eb (sep + 1) (k - sep - 1))
        | _ -> None
      end
    end
  end

let pub_to_bytes pk =
  let nb = Bigint.to_bytes_be pk.n and eb = Bigint.to_bytes_be pk.e in
  let buf = Buffer.create (Bytes.length nb + Bytes.length eb + 8) in
  let le32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    b
  in
  Buffer.add_bytes buf (le32 (Bytes.length nb));
  Buffer.add_bytes buf nb;
  Buffer.add_bytes buf (le32 (Bytes.length eb));
  Buffer.add_bytes buf eb;
  Buffer.to_bytes buf

let pub_of_bytes b =
  let len = Bytes.length b in
  if len < 8 then None
  else begin
    let n_len = Int32.to_int (Bytes.get_int32_le b 0) in
    if n_len < 0 || 4 + n_len + 4 > len then None
    else begin
      let e_len = Int32.to_int (Bytes.get_int32_le b (4 + n_len)) in
      if e_len < 0 || 8 + n_len + e_len <> len then None
      else
        Some
          {
            n = Bigint.of_bytes_be (Bytes.sub b 4 n_len);
            e = Bigint.of_bytes_be (Bytes.sub b (8 + n_len) e_len);
          }
    end
  end

let fingerprint pk = Sha256.digest (pub_to_bytes pk)
