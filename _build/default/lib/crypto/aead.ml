let key_size = 32
let overhead = Poly1305.tag_size

let pad16 buf len = Buffer.add_bytes buf (Bytes.make ((16 - (len mod 16)) mod 16) '\x00')

let le64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let poly_input ~aad ~ct =
  let buf = Buffer.create (Bytes.length aad + Bytes.length ct + 48) in
  Buffer.add_bytes buf aad;
  pad16 buf (Bytes.length aad);
  Buffer.add_bytes buf ct;
  pad16 buf (Bytes.length ct);
  le64 buf (Bytes.length aad);
  le64 buf (Bytes.length ct);
  Buffer.to_bytes buf

let one_time_key ~key ~nonce = Bytes.sub (Chacha20.block ~key ~nonce ~counter:0) 0 32

let seal_nonce ~key ~nonce ?(aad = Bytes.empty) msg =
  let ct = Chacha20.encrypt ~key ~nonce ~counter:1 msg in
  let otk = one_time_key ~key ~nonce in
  let tag = Poly1305.mac ~key:otk (poly_input ~aad ~ct) in
  Bytes.cat ct tag

let open_nonce ~key ~nonce ?(aad = Bytes.empty) data =
  let len = Bytes.length data in
  if len < overhead then None
  else begin
    let ct = Bytes.sub data 0 (len - overhead) in
    let tag = Bytes.sub data (len - overhead) overhead in
    let otk = one_time_key ~key ~nonce in
    if Poly1305.verify ~key:otk ~tag (poly_input ~aad ~ct) then
      Some (Chacha20.encrypt ~key ~nonce ~counter:1 ct)
    else None
  end

let seal ~key ~round ?aad msg = seal_nonce ~key ~nonce:(Chacha20.nonce_of_round round) ?aad msg

let open_ ~key ~round ?aad data =
  open_nonce ~key ~nonce:(Chacha20.nonce_of_round round) ?aad data
