(** RSA public-key encryption with PKCS#1 v1.5-style padding, over the
    from-scratch {!Mycelium_math.Bigint}.

    This instantiates PEnc (§5: "RSA-PKCS1 public key encryption") used
    during path setup to deliver fresh symmetric keys to hops. Key
    sizes are configurable; tests and simulation use 512–1024 bits for
    speed while the cost model charges paper-scale sizes. *)

type public_key = { n : Mycelium_math.Bigint.t; e : Mycelium_math.Bigint.t }
type private_key

val generate : Mycelium_util.Rng.t -> bits:int -> public_key * private_key
(** [bits >= 128]; [e = 65537]. *)

val public_of_private : private_key -> public_key

val max_plaintext : public_key -> int
(** Largest message the padding admits, in bytes. *)

val encrypt : Mycelium_util.Rng.t -> public_key -> bytes -> bytes
(** Raises [Invalid_argument] if the message exceeds {!max_plaintext}. *)

val decrypt : private_key -> bytes -> bytes option
(** [None] on malformed padding or out-of-range ciphertext. *)

val fingerprint : public_key -> bytes
(** SHA-256 of the canonical encoding; Mycelium derives pseudonyms as
    [h_i = H(pk_i)] (§3.1). *)

val pub_to_bytes : public_key -> bytes
val pub_of_bytes : bytes -> public_key option
