lib/crypto/rsa.mli: Mycelium_math Mycelium_util
