lib/crypto/chacha20.ml: Array Bytes Int64
