lib/crypto/sha256.ml: Array Buffer Bytes Char Mycelium_util String
