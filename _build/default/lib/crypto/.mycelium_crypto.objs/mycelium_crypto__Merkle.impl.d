lib/crypto/merkle.ml: Array Bytes List Sha256
