lib/crypto/elgamal.ml: Aead Bytes Chacha20 Mycelium_math Mycelium_util Sha256
