lib/crypto/aead.mli:
