lib/crypto/merkle.mli:
