lib/crypto/elgamal.mli: Mycelium_util
