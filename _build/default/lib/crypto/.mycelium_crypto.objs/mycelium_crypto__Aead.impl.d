lib/crypto/aead.ml: Buffer Bytes Chacha20 Int64 Poly1305
