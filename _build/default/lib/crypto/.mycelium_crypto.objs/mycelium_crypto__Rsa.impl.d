lib/crypto/rsa.ml: Buffer Bytes Int32 Mycelium_math Mycelium_util Sha256
