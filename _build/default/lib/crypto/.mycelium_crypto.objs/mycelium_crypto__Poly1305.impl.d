lib/crypto/poly1305.ml: Bytes Mycelium_math
