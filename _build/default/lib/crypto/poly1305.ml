module Bigint = Mycelium_math.Bigint

let tag_size = 16

(* p = 2^130 - 5 *)
let p = Bigint.sub (Bigint.shift_left Bigint.one 130) (Bigint.of_int 5)
let two_128 = Bigint.shift_left Bigint.one 128

let le_number b off len =
  (* Little-endian bytes to Bigint. *)
  let acc = ref Bigint.zero in
  for i = len - 1 downto 0 do
    acc := Bigint.add_int (Bigint.shift_left !acc 8) (Bytes.get_uint8 b (off + i))
  done;
  !acc

let clamp_r key =
  let r = Bytes.sub key 0 16 in
  Bytes.set_uint8 r 3 (Bytes.get_uint8 r 3 land 15);
  Bytes.set_uint8 r 7 (Bytes.get_uint8 r 7 land 15);
  Bytes.set_uint8 r 11 (Bytes.get_uint8 r 11 land 15);
  Bytes.set_uint8 r 15 (Bytes.get_uint8 r 15 land 15);
  Bytes.set_uint8 r 4 (Bytes.get_uint8 r 4 land 252);
  Bytes.set_uint8 r 8 (Bytes.get_uint8 r 8 land 252);
  Bytes.set_uint8 r 12 (Bytes.get_uint8 r 12 land 252);
  r

let mac ~key msg =
  if Bytes.length key <> 32 then invalid_arg "Poly1305.mac: bad key size";
  let r = le_number (clamp_r key) 0 16 in
  let s = le_number key 16 16 in
  let len = Bytes.length msg in
  let acc = ref Bigint.zero in
  let off = ref 0 in
  while !off < len do
    let chunk = min 16 (len - !off) in
    (* Block value with the 2^(8*len) high bit appended. *)
    let n = Bigint.add (le_number msg !off chunk) (Bigint.shift_left Bigint.one (8 * chunk)) in
    acc := Bigint.erem (Bigint.mul (Bigint.add !acc n) r) p;
    off := !off + 16
  done;
  let tag_num = Bigint.erem (Bigint.add !acc s) two_128 in
  let out = Bytes.make 16 '\x00' in
  let bytes_be = Bigint.to_bytes_be tag_num in
  (* Convert the big-endian magnitude to little-endian, padded to 16. *)
  let nb = Bytes.length bytes_be in
  for i = 0 to nb - 1 do
    Bytes.set out i (Bytes.get bytes_be (nb - 1 - i))
  done;
  out

let verify ~key ~tag msg =
  if Bytes.length tag <> 16 then false
  else begin
    let expected = mac ~key msg in
    (* Accumulate differences so timing does not depend on the first
       mismatching byte. *)
    let diff = ref 0 in
    for i = 0 to 15 do
      diff := !diff lor (Bytes.get_uint8 expected i lxor Bytes.get_uint8 tag i)
    done;
    !diff = 0
  end
