(** Aggregator computation (Figure 9b, §6.6): the cores needed to
    verify every device's ZKPs and sum the ciphertexts within a
    deadline. Groth16 verification is linear in the public I/O — here
    the 4.3 MB ciphertexts — so it dominates; the homomorphic additions
    barely register ("the bars for the aggregation are very small"). *)

val zkp_verify_seconds_per_device : Defaults.t -> cq:int -> float
(** One contribution proof per message sent (d per device, Cq
    ciphertexts each) plus the origin's aggregation proof. *)

val aggregation_seconds_per_device : cq:int -> float
(** Homomorphic additions attributable to one device's data. *)

val cores_needed : Defaults.t -> n:float -> deadline_seconds:float -> cq:int -> float
(** Total cores to finish [n] devices within the deadline (the paper
    uses 10 hours). *)

val cores_breakdown :
  Defaults.t -> n:float -> deadline_seconds:float -> cq:int -> float * float
(** (zkp_cores, aggregation_cores). *)

(** {2 Spot-checking (§6.6)}

    "The aggregator could reduce this cost by spot-checking only a
    fraction of the ZKPs": verifying each proof with probability s cuts
    verification cores by s, while a Byzantine device slipping one bad
    contribution past goes undetected with probability (1-s) — the
    accept-a-bad-row probability the analyst trades against the bill. *)

val cores_with_spot_check :
  Defaults.t -> n:float -> deadline_seconds:float -> cq:int -> fraction:float -> float

val undetected_bad_row_probability : fraction:float -> float
(** P(one malicious contribution escapes checking). *)

val expected_undetected_rows : Defaults.t -> n:float -> fraction:float -> float
(** Expected bad rows surviving per query under the MC assumption's
    malicious population. *)
