(** Regeneration of every table and figure in the paper's evaluation
    (§6, §7). Each function returns structured data; {!render} prints a
    text table, which is what `bench/main.exe` emits.

    Figure 5's curves come in two flavours: the closed-form model at
    paper scale (what the figures plot), and Monte Carlo runs of the
    actual simulator at a simulable population, which the test suite
    uses to validate the model. *)

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : series list;
  notes : string list;
}

val fig2 : unit -> figure
(** The query corpus with per-query analysis (re-printed SQL goes in
    the notes). *)

val fig4 : unit -> figure
val fig5a : unit -> figure
val fig5b : unit -> figure
val fig5c : unit -> figure
val fig5d : unit -> figure

val fig5_monte_carlo :
  n:int -> seed:int64 -> figure
(** Simulator-vs-model validation at small scale: measured goodput and
    anonymity against the closed forms. *)

val fig6 : unit -> figure
val fig7 : unit -> figure

val sec6_2_generality : unit -> figure
(** Which corpus queries are expressible and feasible (Q1's exclusion). *)

val sec6_4_device_costs : Device_compute.unit_costs -> figure
val fig8a : unit -> figure
val fig8b : unit -> figure
val sec6_5_committee : unit -> figure
val fig9a : unit -> figure
val fig9b : unit -> figure

val ablation_key_distribution : unit -> figure
(** Beyond the paper's figures but central to its §4.2 claim: the
    per-query key-distribution traffic of Orchard's workflow vs
    Mycelium's VSR hand-off. *)

val ablation_spot_check : unit -> figure
(** Beyond the paper: the §6.6 suggestion quantified — verification
    cores vs. surviving Byzantine rows as the checking fraction
    drops. *)

val sec7_baseline : n:int -> seed:int64 -> figure
(** Plaintext Q1 on a generated graph, measured and extrapolated to the
    paper's billion-vertex anecdote (~5 s). *)

val all : unit -> figure list
(** Everything except the measurement-dependent entries
    ([fig5_monte_carlo], [sec6_4_device_costs], [sec7_baseline]). *)

val render : figure -> string
