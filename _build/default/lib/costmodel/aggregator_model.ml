module Zkp = Mycelium_zkp.Zkp

let zkp_verify_seconds_per_device (d : Defaults.t) ~cq =
  let per_proof = Zkp.Cost.verify_seconds ~public_io_bytes:(int_of_float Defaults.ciphertext_bytes) in
  (* d messages x Cq ciphertext proofs, plus one aggregation proof over
     a (d+1)-component ciphertext. *)
  let agg_io = Defaults.ciphertext_bytes *. float_of_int (d.Defaults.degree + 1) /. 2. in
  (float_of_int (d.Defaults.degree * cq) *. per_proof)
  +. Zkp.Cost.verify_seconds ~public_io_bytes:(int_of_float agg_io)

let aggregation_seconds_per_device ~cq =
  (* One homomorphic addition per ciphertext: a linear pass over the
     ~4.5 MB of residues; ~5 ms at memory bandwidth. *)
  0.005 *. float_of_int cq

let cores_breakdown d ~n ~deadline_seconds ~cq =
  ( n *. zkp_verify_seconds_per_device d ~cq /. deadline_seconds,
    n *. aggregation_seconds_per_device ~cq /. deadline_seconds )

let cores_needed d ~n ~deadline_seconds ~cq =
  let z, a = cores_breakdown d ~n ~deadline_seconds ~cq in
  z +. a

let cores_with_spot_check d ~n ~deadline_seconds ~cq ~fraction =
  if fraction < 0. || fraction > 1. then invalid_arg "Aggregator_model: fraction in [0,1]";
  let z, a = cores_breakdown d ~n ~deadline_seconds ~cq in
  (fraction *. z) +. a

let undetected_bad_row_probability ~fraction = 1. -. fraction

let expected_undetected_rows (d : Defaults.t) ~n ~fraction =
  (* Malicious devices submit d*Cq bad rows each; an unchecked bad row
     survives. *)
  n *. d.Defaults.malicious *. float_of_int d.Defaults.degree
  *. undetected_bad_row_probability ~fraction
