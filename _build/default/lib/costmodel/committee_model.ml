let log_binom n k =
  (* log of C(n, k) via lgamma-free accumulation. *)
  let acc = ref 0. in
  for i = 1 to k do
    acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
  done;
  !acc

let binom_tail n p k_min =
  (* P(X >= k_min) for X ~ Binomial(n, p). *)
  if p <= 0. then if k_min <= 0 then 1. else 0.
  else if p >= 1. then if k_min <= n then 1. else 0.
  else begin
    let acc = ref 0. in
    for k = max 0 k_min to n do
      let logp =
        log_binom n k +. (float_of_int k *. log p) +. (float_of_int (n - k) *. log (1. -. p))
      in
      acc := !acc +. exp logp
    done;
    Float.min 1. !acc
  end

let majority c = (c / 2) + 1

let privacy_failure ~committee ~malicious = binom_tail committee malicious (majority committee)

let liveness ~committee ~failure_rate =
  binom_tail committee (1. -. failure_rate) (majority committee)

(* Anchored to §6.5: 3 minutes and 4.5 GB per member at c=10. MPC
   wall-clock grows ~quadratically (pairwise channels), offline traffic
   ~linearly in the committee beyond the base ciphertext exchange. *)
let mpc_seconds ~committee =
  let c = float_of_int committee in
  180. *. (c /. 10.) ** 2.

let mpc_bandwidth_bytes ~committee =
  let c = float_of_int committee in
  4.5e9 *. c /. 10.

(* Two ring components (a fresh-ciphertext-sized object) for the
   encryption key. *)
let public_key_bytes = Defaults.ciphertext_bytes

let orchard_per_query_key_bytes ~n = n *. public_key_bytes

let mycelium_per_query_key_bytes ~committee =
  (* Each of the t+1 dealers sends every new member a sub-share of the
     key polynomial (one ring element of residues, ~half a ciphertext)
     plus batched Feldman commitments (negligible beside it). *)
  let dealers = float_of_int ((committee / 2) + 1) in
  dealers *. float_of_int committee *. (Defaults.ciphertext_bytes /. 2.)
