lib/costmodel/defaults.ml: Format Mycelium_bgv Mycelium_query
