lib/costmodel/figures.mli: Device_compute
