lib/costmodel/aggregator_model.mli: Defaults
