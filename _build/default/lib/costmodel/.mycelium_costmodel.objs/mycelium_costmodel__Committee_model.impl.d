lib/costmodel/committee_model.ml: Defaults Float
