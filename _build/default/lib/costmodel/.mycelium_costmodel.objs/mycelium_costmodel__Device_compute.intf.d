lib/costmodel/device_compute.mli: Defaults Mycelium_bgv Mycelium_util
