lib/costmodel/committee_model.mli:
