lib/costmodel/aggregator_model.ml: Defaults Mycelium_zkp
