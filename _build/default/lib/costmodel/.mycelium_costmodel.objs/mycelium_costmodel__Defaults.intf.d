lib/costmodel/defaults.mli: Format
