lib/costmodel/bandwidth.mli: Defaults
