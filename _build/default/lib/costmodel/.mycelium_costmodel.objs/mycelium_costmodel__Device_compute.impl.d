lib/costmodel/device_compute.ml: Defaults Mycelium_bgv Mycelium_util Mycelium_zkp Unix
