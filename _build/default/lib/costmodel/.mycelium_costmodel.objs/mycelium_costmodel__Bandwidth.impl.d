lib/costmodel/bandwidth.ml: Defaults
