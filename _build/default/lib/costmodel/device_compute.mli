(** Per-device computation (§6.4): the paper reports ~14 minutes of
    ciphertext operations (their unoptimized Python BGV) plus ~1 minute
    of ZKP proving, for ~15 minutes total.

    We reproduce the methodology rather than the Python constant:
    measure our own per-operation costs at a small ring degree,
    extrapolate to the paper's N=32768/19-prime parameters by the
    N log N * levels scaling of NTT arithmetic, and report both our
    extrapolated figure and the paper's anchor. *)

type unit_costs = {
  params : Mycelium_bgv.Params.t;
  encrypt_s : float;
  multiply_s : float;  (** one degree-1 x degree-k component multiply *)
  add_s : float;
}

val measure : ?params:Mycelium_bgv.Params.t -> Mycelium_util.Rng.t -> unit_costs
(** Wall-clock micro-measurement (default [test_medium]). *)

val extrapolate : unit_costs -> Mycelium_bgv.Params.t -> unit_costs
(** Scale to another parameter set. *)

type breakdown = {
  encryptions : int;
  multiplications : int;
  he_seconds : float;
  zkp_seconds : float;
  total_seconds : float;
}

val device_query_cost : Defaults.t -> unit_costs -> cq:int -> breakdown
(** Work one device does for one query: encrypt d*Cq contributions,
    multiply ~d ciphertexts into the local aggregate, and prove. ZKP
    proving time comes from the Groth16 cost model (~1 min). *)

val paper_anchor_seconds : float
(** 15 minutes: what §6.4 reports for the Python prototype. *)
