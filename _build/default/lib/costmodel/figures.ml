module Units = Mycelium_util.Units
module Stats = Mycelium_util.Stats
module Rng = Mycelium_util.Rng
module Model = Mycelium_mixnet.Model
module Sim = Mycelium_mixnet.Sim
module Analysis = Mycelium_query.Analysis
module Corpus = Mycelium_query.Corpus
module Params = Mycelium_bgv.Params
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Engine = Mycelium_baseline.Engine

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : series list;
  notes : string list;
}

let d = Defaults.paper

(* ------------------------------------------------------------------ *)

let fig2 () =
  let series =
    List.map
      (fun (e : Corpus.entry) ->
        let info = Analysis.analyze_exn ~degree_bound:d.Defaults.degree e.Corpus.query in
        {
          label = e.Corpus.id;
          points =
            [
              (float_of_int e.Corpus.query.Mycelium_query.Ast.hops, float_of_int info.Analysis.ciphertext_count);
            ];
        })
      Corpus.all
  in
  {
    id = "fig2";
    title = "Figure 2: example queries (hops, ciphertexts per contribution)";
    x_label = "hops";
    y_label = "ciphertexts";
    series;
    notes = List.map (fun (e : Corpus.entry) -> e.Corpus.id ^ ": " ^ e.Corpus.sql) Corpus.all;
  }

let fig4 () =
  {
    id = "fig4";
    title = "Figure 4: default parameters";
    x_label = "-";
    y_label = "value";
    series =
      [
        { label = "devices N"; points = [ (0., d.Defaults.n_devices) ] };
        { label = "onion hops k"; points = [ (0., float_of_int d.Defaults.hops) ] };
        { label = "replicas r"; points = [ (0., float_of_int d.Defaults.replicas) ] };
        { label = "forwarder fraction f"; points = [ (0., d.Defaults.fraction) ] };
        { label = "committee size c"; points = [ (0., float_of_int d.Defaults.committee_size) ] };
        { label = "degree bound d"; points = [ (0., float_of_int d.Defaults.degree) ] };
      ];
    notes = [ Format.asprintf "%a" Defaults.pp d ];
  }

let hops_axis = [ 2; 3; 4 ]

let fig5a () =
  let series =
    List.map
      (fun r ->
        {
          label = Printf.sprintf "r=%d" r;
          points =
            List.map
              (fun k ->
                ( float_of_int k,
                  Model.anonymity_set ~n:d.Defaults.n_devices ~hops:k ~replicas:r
                    ~fraction:d.Defaults.fraction ~malicious:d.Defaults.malicious ))
              hops_axis;
        })
      [ 1; 2; 3 ]
  in
  {
    id = "fig5a";
    title = "Figure 5a: size of the anonymity set";
    x_label = "hops k";
    y_label = "expected anonymity set";
    series;
    notes =
      [
        "each honest hop multiplies the candidate set by r/f; expectation over Binomial(k, 1-mal)";
        Printf.sprintf "anchor (§6.3): r=2,k=3,mal=0.02 -> %.0f (paper: over 7000)"
          (Model.anonymity_set ~n:d.Defaults.n_devices ~hops:3 ~replicas:2 ~fraction:0.1
             ~malicious:0.02);
      ];
  }

let fig5b () =
  let series =
    List.map
      (fun mal ->
        {
          label = Printf.sprintf "mal=%.2f, r=%d" mal d.Defaults.replicas;
          points =
            List.map
              (fun k ->
                ( float_of_int k,
                  Model.identification_probability ~hops:k ~replicas:d.Defaults.replicas
                    ~malicious:mal ))
              hops_axis;
        })
      [ 0.02; 0.04 ]
  in
  {
    id = "fig5b";
    title = "Figure 5b: probability of identification";
    x_label = "hops k";
    y_label = "P(all hops of some replica malicious)";
    series;
    notes =
      [
        Printf.sprintf "anchor (§6.3): k=3, mal=0.02 -> %.1e (paper: ~1e-5)"
          (Model.identification_probability ~hops:3 ~replicas:2 ~malicious:0.02);
      ];
  }

let fig5c () =
  let rates = [ 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.07 ] in
  let series =
    List.map
      (fun r ->
        {
          label = Printf.sprintf "r=%d" r;
          points =
            List.map
              (fun rate ->
                (100. *. rate, Model.goodput ~hops:d.Defaults.hops ~replicas:r ~failure_rate:rate))
              rates;
        })
      [ 1; 2; 3 ]
  in
  {
    id = "fig5c";
    title = "Figure 5c: goodput (message success rate)";
    x_label = "node failure rate (malice + churn), %";
    y_label = "P(message delivered)";
    series;
    notes =
      [
        Printf.sprintf "anchor (§6.3): r=2, 4%% failure -> %.4f (paper: ~1 in 100 lost)"
          (Model.goodput ~hops:3 ~replicas:2 ~failure_rate:0.04);
      ];
  }

let fig5d () =
  {
    id = "fig5d";
    title = "Figure 5d: duration in C-rounds";
    x_label = "hops k";
    y_label = "C-rounds";
    series =
      [
        {
          label = "telescoping (k^2+2k)";
          points =
            List.map (fun k -> (float_of_int k, float_of_int (Model.telescoping_rounds ~hops:k))) hops_axis;
        };
        {
          label = "message forwarding (2k+2)";
          points =
            List.map (fun k -> (float_of_int k, float_of_int (Model.forwarding_rounds ~hops:k))) hops_axis;
        };
      ];
    notes = [ "one-hour C-rounds: a one-hop query finishes in under a day (§6.3)" ];
  }

let fig5_monte_carlo ~n ~seed =
  let base =
    {
      Sim.default_config with
      Sim.n_devices = n;
      malicious_fraction = 0.;
      fast_setup = true;
      verify_proofs = false;
      seed;
    }
  in
  let run cfg =
    let t = Sim.create cfg in
    ignore (Sim.setup_paths t);
    Sim.run_query_round t ~payload:(Bytes.of_string "probe")
  in
  let rates = [ 0.0; 0.04; 0.08 ] in
  let trials = 3 in
  (* Goodput under churn, r in {1,2}, vs the model (the simulated
     source must also be online to deposit, hence the extra (1-rate)
     factor on the closed form). Each point averages several seeds:
     forwarder sharing correlates copy failures, so single runs are
     noisy. *)
  let goodput_series r =
    {
      label = Printf.sprintf "sim goodput r=%d" r;
      points =
        List.map
          (fun rate ->
            let acc = ref 0. in
            for trial = 1 to trials do
              let stats =
                run
                  {
                    base with
                    Sim.replicas = r;
                    churn = rate;
                    seed = Int64.add seed (Int64.of_int (trial * 7919));
                  }
              in
              acc :=
                !acc
                +. (float_of_int stats.Sim.delivered /. float_of_int (max 1 stats.Sim.messages_sent))
            done;
            (100. *. rate, !acc /. float_of_int trials))
          rates;
    }
  in
  let model_series r =
    {
      label = Printf.sprintf "model goodput r=%d" r;
      points =
        List.map
          (fun rate ->
            ( 100. *. rate,
              (1. -. rate) *. Model.goodput ~hops:base.Sim.hops ~replicas:r ~failure_rate:rate ))
          rates;
    }
  in
  let anon =
    let stats = run { base with Sim.malicious_fraction = 0.05 } in
    let sets = Array.map float_of_int stats.Sim.anonymity_sets in
    if Array.length sets = 0 then 0. else Stats.mean sets
  in
  {
    id = "fig5-mc";
    title = Printf.sprintf "Figure 5 Monte Carlo validation (n=%d)" n;
    x_label = "failure rate %";
    y_label = "delivery probability";
    series = [ goodput_series 1; model_series 1; goodput_series 2; model_series 2 ];
    notes =
      [
        Printf.sprintf "mean anonymity set at n=%d, 5%% malicious: %.0f (capped by n)" n anon;
      ];
  }

let fig6 () =
  {
    id = "fig6";
    title = "Figure 6: number of ciphertexts sent for each query";
    x_label = "query";
    y_label = "ciphertexts";
    series =
      List.mapi
        (fun i (e : Corpus.entry) ->
          let info = Analysis.analyze_exn ~degree_bound:d.Defaults.degree e.Corpus.query in
          { label = e.Corpus.id; points = [ (float_of_int (i + 1), float_of_int info.Analysis.ciphertext_count) ] })
        Corpus.all;
    notes =
      List.map
        (fun (id, v) -> Printf.sprintf "paper: %s -> %d" id v)
        Corpus.paper_ciphertext_counts;
  }

let fig7 () =
  let series =
    List.concat_map
      (fun (kind, f) ->
        List.map
          (fun r ->
            {
              label = Printf.sprintf "r=%d, %s" r kind;
              points =
                List.map
                  (fun k ->
                    (float_of_int k, f { d with Defaults.hops = k; replicas = r } ~cq:1))
                  hops_axis;
            })
          [ 1; 2; 3 ])
      [
        ("non-forwarder", Bandwidth.non_forwarder_bytes); ("forwarder", Bandwidth.forwarder_bytes);
      ]
  in
  {
    id = "fig7";
    title = "Figure 7: avg. bandwidth required of each participant per query (bytes)";
    x_label = "hops k";
    y_label = "bytes per query (Cq=1)";
    series;
    notes =
      [
        Printf.sprintf "defaults: non-forwarder %s, forwarder %s, expectation %s (paper: 170 MB / 1030 MB / ~430 MB)"
          (Units.bytes_to_string (Bandwidth.non_forwarder_bytes d ~cq:1))
          (Units.bytes_to_string (Bandwidth.forwarder_bytes d ~cq:1))
          (Units.bytes_to_string (Bandwidth.expected_bytes d ~cq:1));
        Printf.sprintf "ciphertext size: %s (paper: 4.3 MB)" (Units.bytes_to_string Defaults.ciphertext_bytes);
      ];
  }

let sec6_2_generality () =
  let series =
    List.map
      (fun (e : Corpus.entry) ->
        let info = Analysis.analyze_exn ~degree_bound:d.Defaults.degree e.Corpus.query in
        let feasible =
          match Analysis.feasible info Params.paper with Ok () -> 1. | Error _ -> 0.
        in
        { label = e.Corpus.id; points = [ (float_of_int info.Analysis.multiplications, feasible) ] })
      Corpus.all
  in
  {
    id = "generality";
    title = "§6.2 generality: (multiplications needed, feasible at paper parameters)";
    x_label = "homomorphic multiplications";
    y_label = "1 = runs, 0 = exceeds noise budget";
    series;
    notes =
      [
        Printf.sprintf "multiplication budget at paper parameters: ~%d"
          (Analysis.max_multiplications Params.paper);
        "paper: all queries expressible; all run except Q1 (d^2 = 100 multiplications)";
      ];
  }

let sec6_4_device_costs costs =
  let paper_costs = Device_compute.extrapolate costs Params.paper in
  let b = Device_compute.device_query_cost d paper_costs ~cq:1 in
  {
    id = "sec6_4";
    title = "§6.4 per-device cost for a Cq=1 query";
    x_label = "-";
    y_label = "seconds / bytes";
    series =
      [
        { label = "HE compute (s)"; points = [ (0., b.Device_compute.he_seconds) ] };
        { label = "ZKP proving (s)"; points = [ (0., b.Device_compute.zkp_seconds) ] };
        { label = "total compute (s)"; points = [ (0., b.Device_compute.total_seconds) ] };
        { label = "expected bandwidth (B)"; points = [ (0., Bandwidth.expected_bytes d ~cq:1) ] };
      ];
    notes =
      [
        Printf.sprintf
          "measured at N=%d and extrapolated by N log N x levels; paper's Python prototype: ~%.0f s"
          costs.Device_compute.params.Params.degree Device_compute.paper_anchor_seconds;
        "the paper notes these costs 'could be dramatically reduced' with optimized HE - our \
         OCaml NTT implementation is such an optimization, hence the smaller HE figure";
      ];
  }

let committee_sizes = [ 10; 20; 30; 40 ]

let fig8a () =
  let rates = [ 0.005; 0.01; 0.02; 0.04 ] in
  {
    id = "fig8a";
    title = "Figure 8a: probability of privacy failure (committee majority captured)";
    x_label = "% malicious users";
    y_label = "P(failure)";
    series =
      List.map
        (fun c ->
          {
            label = Printf.sprintf "c=%d" c;
            points =
              List.map
                (fun m -> (100. *. m, Committee_model.privacy_failure ~committee:c ~malicious:m))
                rates;
          })
        committee_sizes;
    notes = [ "failure = at least a majority of the committee is malicious" ];
  }

let fig8b () =
  let rates = [ 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.07 ] in
  {
    id = "fig8b";
    title = "Figure 8b: probability of liveness";
    x_label = "% malice + churn";
    y_label = "P(enough members to decrypt)";
    series =
      List.map
        (fun c ->
          {
            label = Printf.sprintf "c=%d" c;
            points =
              List.map
                (fun m -> (100. *. m, Committee_model.liveness ~committee:c ~failure_rate:m))
                rates;
          })
        committee_sizes;
    notes = [ "liveness = a majority of members reachable for the decryption MPC" ];
  }

let sec6_5_committee () =
  {
    id = "sec6_5";
    title = "§6.5 committee-member costs";
    x_label = "committee size";
    y_label = "seconds / bytes";
    series =
      [
        {
          label = "MPC wall-clock (s)";
          points =
            List.map (fun c -> (float_of_int c, Committee_model.mpc_seconds ~committee:c)) committee_sizes;
        };
        {
          label = "per-member traffic (B)";
          points =
            List.map
              (fun c -> (float_of_int c, Committee_model.mpc_bandwidth_bytes ~committee:c))
              committee_sizes;
        };
      ];
    notes = [ "anchors (§6.5, c=10): ~3 minutes, ~4.5 GB per member" ];
  }

let fig9a () =
  let series =
    List.map
      (fun r ->
        {
          label = Printf.sprintf "r=%d" r;
          points =
            List.map
              (fun k ->
                ( float_of_int k,
                  Bandwidth.aggregator_per_device_bytes { d with Defaults.hops = k; replicas = r } ~cq:1 ))
              hops_axis;
        })
      [ 1; 2; 3 ]
  in
  {
    id = "fig9a";
    title = "Figure 9a: per-user traffic sent by the aggregator per query";
    x_label = "hops k";
    y_label = "bytes per device";
    series;
    notes =
      [
        Printf.sprintf "anchor (§6.6): k=3, r=2 -> %s (paper: ~350 MB)"
          (Units.bytes_to_string (Bandwidth.aggregator_per_device_bytes d ~cq:1));
      ];
  }

let fig9b () =
  let ns = [ 1e6; 1e7; 1e8; 1e9 ] in
  let deadline = 10. *. 3600. in
  {
    id = "fig9b";
    title = "Figure 9b: aggregator cores to finish within 10 hours";
    x_label = "number of participants";
    y_label = "cores";
    series =
      [
        {
          label = "ZKP verification";
          points =
            List.map
              (fun n -> (n, fst (Aggregator_model.cores_breakdown d ~n ~deadline_seconds:deadline ~cq:1)))
              ns;
        };
        {
          label = "global aggregation";
          points =
            List.map
              (fun n -> (n, snd (Aggregator_model.cores_breakdown d ~n ~deadline_seconds:deadline ~cq:1)))
              ns;
        };
      ];
    notes =
      [
        "Groth16 verification is linear in the public I/O (the 4.3 MB ciphertexts) and dominates";
        "the aggregation bars are negligible, as in the paper";
      ];
  }

let ablation_spot_check () =
  let fractions = [ 1.0; 0.5; 0.1; 0.01 ] in
  let deadline = 10. *. 3600. in
  {
    id = "ablation-spotcheck";
    title = "Ablation (§6.6 suggestion): ZKP spot-checking at N=1.1e6";
    x_label = "fraction of proofs verified";
    y_label = "cores / surviving bad rows";
    series =
      [
        {
          label = "aggregator cores";
          points =
            List.map
              (fun f ->
                ( f,
                  Aggregator_model.cores_with_spot_check d ~n:d.Defaults.n_devices
                    ~deadline_seconds:deadline ~cq:1 ~fraction:f ))
              fractions;
        };
        {
          label = "expected undetected bad rows";
          points =
            List.map
              (fun f -> (f, Aggregator_model.expected_undetected_rows d ~n:d.Defaults.n_devices ~fraction:f))
              fractions;
        };
      ];
    notes =
      [
        "a HISTO bad row shifts at most one bin by 1 (§4.7), so a handful of undetected rows \
         is dominated by the Laplace noise - the tradeoff the paper hints at";
      ];
  }

let ablation_key_distribution () =
  let ns = [ 1e6; 1e7; 1e8; 1e9 ] in
  {
    id = "ablation-keydist";
    title = "Ablation (§2.5/§4.2): per-query key distribution, Orchard vs Mycelium VSR";
    x_label = "devices N";
    y_label = "bytes per query";
    series =
      [
        {
          label = "Orchard (re-key every device)";
          points = List.map (fun n -> (n, Committee_model.orchard_per_query_key_bytes ~n)) ns;
        };
        {
          label = "Mycelium (VSR among c=10)";
          points =
            List.map
              (fun n -> (n, Committee_model.mycelium_per_query_key_bytes ~committee:10))
              ns;
        };
      ];
    notes =
      [
        "Mycelium's second Orchard modification: keys are generated once by the genesis \
         committee and handed between committees by verifiable secret redistribution, so \
         per-query key traffic is O(c^2) ring elements instead of O(N) public keys";
        Printf.sprintf "at N=1.1e6 the gap is %s vs %s per query (%.0fx)"
          (Units.bytes_to_string (Committee_model.orchard_per_query_key_bytes ~n:1.1e6))
          (Units.bytes_to_string (Committee_model.mycelium_per_query_key_bytes ~committee:10))
          (Committee_model.orchard_per_query_key_bytes ~n:1.1e6
          /. Committee_model.mycelium_per_query_key_bytes ~committee:10);
      ];
  }

let sec7_baseline ~n ~seed =
  let rng = Rng.create seed in
  let graph =
    Cg.generate { Cg.default_config with Cg.population = n; degree_bound = Defaults.paper.Defaults.degree } rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng graph in
  (* Q1 restricted to one hop, as in §7's GraphX measurement. *)
  let q =
    Mycelium_query.Parser.parse_exn ~name:"Q1-1hop"
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf AND self.inf"
  in
  let info = Analysis.analyze_exn ~degree_bound:Defaults.paper.Defaults.degree q in
  let seconds = Engine.time_plaintext_query info graph in
  let per_vertex = seconds /. float_of_int n in
  let extrapolated = per_vertex *. 1e9 in
  {
    id = "sec7";
    title = "§7 plaintext baseline: Q1 (1-hop) in the clear";
    x_label = "vertices";
    y_label = "seconds";
    series =
      [
        { label = "measured"; points = [ (float_of_int n, seconds) ] };
        { label = "extrapolated to 1e9 (single core)"; points = [ (1e9, extrapolated) ] };
      ];
    notes =
      [
        "paper: GraphX on one CloudLab machine answered Q1 on a billion-vertex graph in ~5 s";
        Printf.sprintf
          "our single-core engine: %.2e s/vertex; a ~100-core cluster brings the billion-vertex \
           run to %.1f s - same orders of magnitude, and either way ~5 orders below Mycelium's \
           encrypted cost, which is the point of §7"
          per_vertex (extrapolated /. 100.);
      ];
  }

let all () =
  [
    fig2 (); fig4 (); fig5a (); fig5b (); fig5c (); fig5d (); fig6 (); fig7 ();
    sec6_2_generality (); fig8a (); fig8b (); sec6_5_committee (); fig9a (); fig9b ();
    ablation_spot_check (); ablation_key_distribution ();
  ]

let render f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s [%s] ===\n" f.title f.id);
  Buffer.add_string buf (Printf.sprintf "  x: %s | y: %s\n" f.x_label f.y_label);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  %-28s" s.label);
      List.iter (fun (x, y) -> Buffer.add_string buf (Printf.sprintf " (%g, %g)" x y)) s.points;
      Buffer.add_char buf '\n')
    f.series;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) f.notes;
  Buffer.contents buf
