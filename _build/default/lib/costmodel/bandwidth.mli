(** Bandwidth extrapolation (§6.4, §6.6; Figures 7 and 9a).

    A device sends r*Cq*d ciphertexts (d messages, r replicas, Cq
    ciphertexts each — Figure 6) and receives as many responses; a
    device chosen as a forwarder additionally handles batches of
    (r*Cq*d)/f ciphertexts. A k*f fraction of devices serve as
    forwarders, giving the paper's ~430 MB expectation with the
    Figure 4 defaults, against 1030 MB for forwarders and 170 MB for
    non-forwarders (§6.4). The aggregator sends each device its mailbox
    contents: (k+1)*r*Cq*d ciphertexts, ~350 MB (§6.6, Figure 9a). *)

val non_forwarder_bytes :
  Defaults.t -> cq:int -> float
(** Own messages out plus responses back: 2*r*Cq*d ciphertexts. *)

val forwarder_bytes : Defaults.t -> cq:int -> float
(** Non-forwarder traffic plus the forwarding batch. *)

val expected_bytes : Defaults.t -> cq:int -> float
(** Weighted by the k*f chance of serving as a forwarder. *)

val aggregator_per_device_bytes : Defaults.t -> cq:int -> float
(** Fig 9a: traffic the aggregator sends each device per query. *)

val aggregator_total_bytes : Defaults.t -> cq:int -> float
