(** Committee-size tradeoffs (Figure 8, §6.5), computed the way the
    paper does — from the binomial equations (credited to the
    Honeycrisp authors).

    A committee of c devices sampled from a population with malicious
    fraction m suffers a privacy failure when a majority of its members
    are malicious (they reconstruct the key); it loses liveness when
    fewer than a majority are reachable. *)

val privacy_failure : committee:int -> malicious:float -> float
(** P(#malicious >= majority) for one committee draw (Fig 8a). *)

val liveness : committee:int -> failure_rate:float -> float
(** P(#present >= majority) where each member is independently absent
    (malicious or churned out) with the given rate (Fig 8b). *)

val mpc_seconds : committee:int -> float
(** Wall-clock of the decryption MPC: ~3 minutes at c=10 (§6.5),
    growing quadratically in committee size (pairwise traffic). *)

val mpc_bandwidth_bytes : committee:int -> float
(** Per-member traffic: ~4.5 GB at c=10 (§6.5): the SCALE-MAMBA offline
    phase dominates, scaling with the ciphertext size and committee. *)

(** {2 Key distribution: Orchard vs Mycelium (§2.5, §4.2)}

    Mycelium's second modification to Orchard: generate all keys once
    and move the secret between committees with VSR, instead of
    generating and distributing fresh keys to every device for every
    query — "at the scale of millions of devices, key distribution is
    a significant source of overhead and complexity". *)

val public_key_bytes : float
(** A BGV public key at paper parameters (two ring elements) plus the
    relinearization keys devices need to check; dominated by the ring
    elements. *)

val orchard_per_query_key_bytes : n:float -> float
(** Aggregate traffic to re-key every device for one query (Orchard's
    workflow). *)

val mycelium_per_query_key_bytes : committee:int -> float
(** Mycelium's per-query key cost: one VSR hand-off among c members —
    sub-shares plus commitments, independent of N. *)
