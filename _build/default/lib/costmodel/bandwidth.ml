let cts (d : Defaults.t) ~cq = float_of_int (d.Defaults.replicas * cq * d.Defaults.degree)

let non_forwarder_bytes d ~cq = 2. *. cts d ~cq *. Defaults.ciphertext_bytes

let forwarder_bytes d ~cq =
  non_forwarder_bytes d ~cq
  +. (cts d ~cq /. d.Defaults.fraction *. Defaults.ciphertext_bytes)

let forwarder_probability (d : Defaults.t) = float_of_int d.Defaults.hops *. d.Defaults.fraction

let expected_bytes d ~cq =
  let p = forwarder_probability d in
  (p *. forwarder_bytes d ~cq) +. ((1. -. p) *. non_forwarder_bytes d ~cq)

let aggregator_per_device_bytes d ~cq =
  (* Deliveries to the destination plus k forwarder-batch downloads,
     amortized: (k+1) * r * Cq * d ciphertexts. *)
  float_of_int (d.Defaults.hops + 1) *. cts d ~cq *. Defaults.ciphertext_bytes

let aggregator_total_bytes d ~cq = d.Defaults.n_devices *. aggregator_per_device_bytes d ~cq
