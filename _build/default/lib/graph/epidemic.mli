(** A discrete-time epidemic over a contact graph, used as the
    synthetic workload for queries Q1–Q10 (the paper's motivating
    scenario; see §2.1 and DESIGN.md's substitution table).

    The process is SIR-like with *overdispersed* individual
    infectiousness: each case draws a multiplier from a heavy-tailed
    distribution, producing the superspreading phenomenon the
    epidemiology literature quantifies ([6, 37, 62]) and that Q1's
    cluster-size histogram is designed to surface. Transmission
    probability scales with contact duration and is boosted for
    household edges. Diagnosis day (t_inf) is infection day plus a
    short reporting lag, clipped to the horizon. *)

type config = {
  seeds : int;  (** initially infected individuals *)
  base_transmission : float;  (** per-contact-day transmission probability *)
  household_boost : float;  (** multiplier for household edges *)
  dispersion : float;  (** log-normal sigma of individual infectiousness;
                           0 = homogeneous, ~1.5 = strong superspreading *)
  reporting_lag : int;  (** days from infection to diagnosis *)
}

val default_config : config

type outcome = {
  infected_count : int;
  attack_rate : float;
  generations : int;  (** epidemic depth reached within the horizon *)
}

val run : config -> Mycelium_util.Rng.t -> Contact_graph.t -> outcome
(** Mutates the graph's vertex data: sets [infected] and [t_inf]. *)

val secondary_cases : Contact_graph.t -> int -> int
(** Number of neighbors an infected vertex infected (neighbors whose
    diagnosis follows its own by > 2 days — the paper's Q3/Q6/Q7
    attribution rule). 0 for non-infected vertices. *)
