module Rng = Mycelium_util.Rng

type config = {
  seeds : int;
  base_transmission : float;
  household_boost : float;
  dispersion : float;
  reporting_lag : int;
}

let default_config =
  {
    seeds = 5;
    base_transmission = 0.03;
    household_boost = 3.0;
    dispersion = 1.2;
    reporting_lag = 2;
  }

type outcome = { infected_count : int; attack_rate : float; generations : int }

let run config rng graph =
  let n = Contact_graph.population graph in
  let horizon = Contact_graph.horizon_days graph in
  if config.seeds < 1 || config.seeds > n then invalid_arg "Epidemic.run: bad seed count";
  let infection_day = Array.make n (-1) in
  (* Individual infectiousness multipliers: log-normal, the
     superspreading knob. *)
  let infectiousness =
    Array.init n (fun _ -> exp (Rng.gaussian rng config.dispersion))
  in
  let seeds = Rng.sample_without_replacement rng config.seeds n in
  Array.iter (fun s -> infection_day.(s) <- 0) seeds;
  let generations = ref 0 in
  let frontier = ref (Array.to_list seeds) in
  let day = ref 0 in
  while !frontier <> [] && !day < horizon do
    incr day;
    let next = ref [] in
    List.iter
      (fun u ->
        let boost = infectiousness.(u) in
        List.iter
          (fun (v, (e : Schema.edge_data)) ->
            if infection_day.(v) < 0 then begin
              let household =
                match e.Schema.location with Schema.Household -> config.household_boost | _ -> 1.0
              in
              (* Longer cumulative contact, higher risk. *)
              let duration_factor = Float.min 3.0 (float_of_int e.Schema.duration_min /. 60.) in
              let p =
                Float.min 0.95 (config.base_transmission *. boost *. household *. (0.5 +. duration_factor))
              in
              if Rng.bernoulli rng p then begin
                infection_day.(v) <- !day;
                next := v :: !next
              end
            end)
          (Contact_graph.neighbors graph u))
      !frontier;
    if !next <> [] then generations := !day;
    frontier := !next
  done;
  (* Write outcomes back as diagnosed cases. *)
  let infected_count = ref 0 in
  for i = 0 to n - 1 do
    if infection_day.(i) >= 0 then begin
      incr infected_count;
      let t_inf = min (horizon - 1) (infection_day.(i) + config.reporting_lag) in
      let v = Contact_graph.vertex graph i in
      Contact_graph.set_vertex graph i { v with Schema.infected = true; t_inf = Some t_inf }
    end
  done;
  {
    infected_count = !infected_count;
    attack_rate = float_of_int !infected_count /. float_of_int n;
    generations = !generations;
  }

let secondary_cases graph i =
  let v = Contact_graph.vertex graph i in
  match v.Schema.t_inf with
  | None -> 0
  | Some self_t ->
    List.fold_left
      (fun acc (j, _) ->
        match (Contact_graph.vertex graph j).Schema.t_inf with
        | Some dest_t when dest_t > self_t + 2 -> acc + 1
        | Some _ | None -> acc)
      0
      (Contact_graph.neighbors graph i)
