lib/graph/epidemic.mli: Contact_graph Mycelium_util
