lib/graph/contact_graph.ml: Array Hashtbl List Mycelium_util Queue Schema
