lib/graph/epidemic.ml: Array Contact_graph Float List Mycelium_util Schema
