lib/graph/schema.mli:
