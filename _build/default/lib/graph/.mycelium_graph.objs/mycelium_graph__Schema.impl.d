lib/graph/schema.ml:
