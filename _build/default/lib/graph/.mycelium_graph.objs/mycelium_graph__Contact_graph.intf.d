lib/graph/contact_graph.mli: Hashtbl Mycelium_util Schema
