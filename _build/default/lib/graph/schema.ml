type location = Household | Subway | Workplace | SocialVenue | Other

type setting = Family | Social | Work

type vertex_data = {
  infected : bool;
  t_inf : int option;
  age : int;
  household : int;
}

type edge_data = {
  duration_min : int;
  contacts : int;
  last_contact : int;
  location : location;
  setting : setting;
}

let location_to_string = function
  | Household -> "household"
  | Subway -> "subway"
  | Workplace -> "workplace"
  | SocialVenue -> "social-venue"
  | Other -> "other"

let setting_to_string = function Family -> "family" | Social -> "social" | Work -> "work"

let age_group age = max 0 (min 9 (age / 10))
let age_groups = 10

let stage_of_delay delay = if delay <= 5 then 0 else 1
let stages = 2

let on_subway = function Subway -> true | Household | Workplace | SocialVenue | Other -> false
let is_household = function Household -> true | Subway | Workplace | SocialVenue | Other -> false

let t_inf_days = 14
