(** The attribute schema visible to Mycelium queries (§4): per-vertex
    private data ([self] / [dest] column groups) and per-edge private
    data ([edge]). The fields are the union of what queries Q1–Q10
    touch: infection status and time, age, and contact context. *)

type location = Household | Subway | Workplace | SocialVenue | Other

type setting = Family | Social | Work
(** Exposure type for Q7's GROUP BY edge.setting. *)

type vertex_data = {
  infected : bool;  (** self.inf / dest.inf *)
  t_inf : int option;  (** day of diagnosis; None if never infected *)
  age : int;  (** years, 0..99 *)
  household : int;  (** household id, for isHousehold-style predicates *)
}

type edge_data = {
  duration_min : int;  (** cumulative proximity time (Q2) *)
  contacts : int;  (** number of distinct contact events (Q3) *)
  last_contact : int;  (** day of last contact (Q2's window anchor) *)
  location : location;  (** where contact happened (Q4, Q8) *)
  setting : setting;  (** exposure type (Q7) *)
}

val location_to_string : location -> string
val setting_to_string : setting -> string

val age_group : int -> int
(** Decade bucket 0..9, the paper's GROUP BY self.age granularity. *)

val age_groups : int
(** Number of decade buckets (10). *)

val stage_of_delay : int -> int
(** [stage_of_delay (dest.tInf - self.tInf)]: 0 = incubation period
    (2–5 days), 1 = illness period (> 5 days) — Q10's [stage()]. *)

val stages : int

val on_subway : location -> bool
val is_household : location -> bool

val t_inf_days : int
(** Upper bound on the discrete diagnosis-day range used by
    cross-column comparisons (14, per the 14-day windows in Q1/Q2). *)
