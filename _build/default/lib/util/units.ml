let pp_bytes fmt v =
  let abs = Float.abs v in
  if abs >= 1e12 then Format.fprintf fmt "%.1f TB" (v /. 1e12)
  else if abs >= 1e9 then Format.fprintf fmt "%.1f GB" (v /. 1e9)
  else if abs >= 1e6 then Format.fprintf fmt "%.1f MB" (v /. 1e6)
  else if abs >= 1e3 then Format.fprintf fmt "%.1f KB" (v /. 1e3)
  else Format.fprintf fmt "%.0f B" v

let pp_seconds fmt v =
  let abs = Float.abs v in
  if abs < 1e-3 then Format.fprintf fmt "%.1f us" (v *. 1e6)
  else if abs < 1. then Format.fprintf fmt "%.1f ms" (v *. 1e3)
  else if abs < 120. then Format.fprintf fmt "%.1f s" v
  else if abs < 7200. then Format.fprintf fmt "%.1f min" (v /. 60.)
  else if abs < 172800. then Format.fprintf fmt "%.1f h" (v /. 3600.)
  else Format.fprintf fmt "%.1f days" (v /. 86400.)

let bytes_to_string v = Format.asprintf "%a" pp_bytes v
let seconds_to_string v = Format.asprintf "%a" pp_seconds v

let mib v = v *. 1e6
let gib v = v *. 1e9
