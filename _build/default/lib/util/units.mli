(** Human-readable formatting of byte counts and durations, used by the
    cost model and the benchmark reports. *)

val pp_bytes : Format.formatter -> float -> unit
(** 1536.0 -> "1.5 KB"; powers of 1000 like the paper's MB/GB figures. *)

val pp_seconds : Format.formatter -> float -> unit
(** 95.0 -> "1.6 min"; picks ms/s/min/h/days. *)

val bytes_to_string : float -> string
val seconds_to_string : float -> string

val mib : float -> float
(** Megabytes (1e6 bytes) to raw bytes. *)

val gib : float -> float
(** Gigabytes (1e9 bytes) to raw bytes. *)
