lib/util/hex.mli:
