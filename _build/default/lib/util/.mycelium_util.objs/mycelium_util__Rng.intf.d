lib/util/rng.mli:
