lib/util/stats.mli:
