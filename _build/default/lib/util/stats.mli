(** Small descriptive-statistics helpers used by the simulators and the
    benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays of fewer than two elements. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val sum : float array -> float

val minimum : float array -> float
val maximum : float array -> float

type running
(** Online mean/variance accumulator (Welford). *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stddev : running -> float
