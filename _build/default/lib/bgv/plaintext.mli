(** Plaintexts of the BGV scheme: polynomials over Z_t of degree < N.

    Mycelium's encoding (§4.1) represents the value [a] as the monomial
    [x^a]; homomorphic multiplication then adds exponents (summing
    contributions inside a neighborhood) and homomorphic addition adds
    coefficients (counting, across origin vertices, how many
    neighborhoods produced each value — i.e. a histogram). *)

type t

val create : plain_modulus:int -> int array -> t
(** Coefficients are reduced mod t. *)

val zero : plain_modulus:int -> degree:int -> t

val monomial : plain_modulus:int -> degree:int -> exponent:int -> t
(** [x^exponent] with coefficient 1; raises [Invalid_argument] if the
    exponent does not fit the ring degree (the paper's "cannot support
    more bins than the degree N" restriction). *)

val value_encode : plain_modulus:int -> degree:int -> int -> t
(** Alias of {!monomial} stressing the §4.1 encoding. *)

val coeffs : t -> int array
val plain_modulus : t -> int
val degree : t -> int

val coeff : t -> int -> int
(** Coefficient of x^i (0 if beyond length). *)

val is_monomial : t -> (int * int) option
(** [Some (exponent, coeff)] if exactly one coefficient is non-zero,
    [None] otherwise (the all-zero plaintext is [Some (0, 0)]...
    no: all-zero returns [None]). Used by the well-formedness ZKP. *)

val add : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val histogram : t -> max_bin:int -> int array
(** Read the first [max_bin+1] coefficients as bin counts, centering
    values above t/2 as negative (which indicates a protocol bug and is
    surfaced as-is). *)
