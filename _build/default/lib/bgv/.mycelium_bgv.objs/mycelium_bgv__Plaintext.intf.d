lib/bgv/plaintext.mli: Format
