lib/bgv/params.mli:
