lib/bgv/params.ml:
