lib/bgv/bgv.mli: Mycelium_math Mycelium_util Params Plaintext
