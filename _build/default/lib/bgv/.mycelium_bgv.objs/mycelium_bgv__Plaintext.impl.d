lib/bgv/plaintext.ml: Array Format
