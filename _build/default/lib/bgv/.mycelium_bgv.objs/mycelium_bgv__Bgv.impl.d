lib/bgv/bgv.ml: Array Buffer Bytes Float Int32 Mycelium_math Mycelium_util Params Plaintext
