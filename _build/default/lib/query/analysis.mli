(** Static analysis of queries: predicate placement, ciphertext counts
    (Figure 6), histogram bin layout, sensitivity (§4.7), and HE
    feasibility (§6.2).

    Placement rules. Every atomic predicate is evaluated by whoever
    holds all its columns: [dest]+[edge] atoms by the destination
    vertex (edge attributes are contact records shared by both
    endpoints), [self]+[edge] atoms by the origin. An atom that mixes
    [self] and [dest] columns can be evaluated by neither — it uses the
    §4.5 sequence mechanism, where the destination sends one ciphertext
    per possible (discretized) value of its compared column. This is
    what makes Q3/Q6/Q7/Q10 cost 14 ciphertexts (the 14-day diagnosis
    window) and Q9 cost 10 (decade age buckets), reproducing Figure 6.

    Values are discretized before encoding so histograms fit the
    exponent space: durations to hours (13 buckets), contact counts
    capped at 20, diagnosis days 0..13, ages to decades.

    GSUM ratio queries (SUM/COUNT, the secondary-attack-rate form)
    cannot divide under HE; the origin instead packs its locally-known
    denominator C into the exponent — bin index = group*stride_g +
    C*stride_c + S — and the decryption committee computes the clipped
    ratio sum from the histogram during final processing, which is the
    natural reading of §4.4's GSUM post-processing formula. *)

type pred_side =
  | Origin_side  (** self and/or edge columns only *)
  | Dest_side  (** dest and/or edge columns only *)
  | Cross of Ast.field  (** self and dest mixed; field drives the §4.5
                            sequence length *)
  | Constant

val classify_atom : Ast.pred -> (pred_side, string) result
(** For atomic predicates only (no And/Or). *)

type group_kind =
  | Group_none
  | Group_self  (** origin shifts its single result into its group *)
  | Group_edge  (** per-edge groups: origin aggregates per group *)
  | Group_cross of Ast.field  (** group function mixes dest and self *)

type layout = {
  group_count : int;
  count_slots : int;  (** 1 unless GSUM ratio packing *)
  value_slots : int;
  total_bins : int;  (** group_count * count_slots * value_slots *)
}

type info = {
  query : Ast.t;
  degree_bound : int;
  ciphertext_count : int;  (** Figure 6's column *)
  group_kind : group_kind;
  layout : layout;
  influence_bound : int;
      (** max origins one device can influence: |k-hop ball| under the
          degree bound (§4.7's "total number of devices in their local
          neighborhood") *)
  multiplications : int;  (** d^hops, the §6.2 measure *)
  sensitivity : float;
  clip : (float * float) option;  (** GSUM clipping range *)
}

val analyze : ?degree_bound:int -> Ast.t -> (info, string) result
(** [degree_bound] defaults to 10 (Figure 4). *)

val analyze_exn : ?degree_bound:int -> Ast.t -> info

(** {2 Value discretization} *)

val field_slots : Ast.field -> int
(** Distinct encoded values of a field. *)

val bucketize : Ast.field -> int -> int
(** Map a raw attribute value into its bucket. *)

(** {2 Feasibility under BGV parameters (§6.2)} *)

val max_multiplications : Mycelium_bgv.Params.t -> int
(** How many sequential homomorphic multiplications the parameter set
    supports before the noise budget runs out (conservative model;
    see EXPERIMENTS.md). *)

val feasible : info -> Mycelium_bgv.Params.t -> (unit, string) result
(** Checks both the multiplication budget and that the bin layout fits
    the ring degree ("cannot support more bins than the degree N"). *)
