type entry = { id : string; description : string; sql : string; query : Ast.t }

let make id description sql =
  { id; description; sql; query = Parser.parse_exn ~name:id sql }

let all =
  [
    make "Q1"
      "Histogram of the number of infections in an infected participant's two-hop \
       neighborhood, within 14 days"
      "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf AND self.inf";
    make "Q2"
      "Histogram of the amount of time A has spent near B, if A is infected within 5-15 days \
       of contact with B"
      "SELECT HISTO(SUM(edge.duration)) FROM neigh(1) WHERE self.inf AND (dest.tInf IN \
       [edge.last_contact+5, edge.last_contact+10])";
    make "Q3"
      "Histogram of the frequency of contact between A and B, if A infected B"
      "SELECT HISTO(SUM(edge.contacts)) FROM neigh(1) WHERE self.inf AND dest.tInf AND \
       (dest.tInf > self.tInf+2)";
    make "Q4" "Secondary attack rate of infected participants if they travelled on the subway"
      "SELECT HISTO(SUM(dest.inf)) FROM neigh(1) WHERE onSubway(edge.location) AND self.inf";
    make "Q5"
      "Histogram of the number of distinct contacts within the last 24 hours, for different \
       age groups"
      "SELECT HISTO(COUNT(*)) FROM neigh(1) GROUP BY self.age";
    make "Q6"
      "Histogram of secondary infections caused by infected participants in different age \
       groups"
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.inf AND dest.tInf AND (dest.tInf > \
       self.tInf+2) GROUP BY self.age";
    make "Q7"
      "Histogram of secondary infections based on type of exposure (such as family, social, \
       work)"
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.inf AND dest.tInf AND (dest.tInf > \
       self.tInf+2) GROUP BY edge.setting";
    make "Q8" "Secondary attack rates in household vs non-household contacts"
      "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE self.inf GROUP BY \
       isHousehold(edge.location)";
    make "Q9"
      "Secondary attack rates within case-contact pairs in the same age group vs different \
       age groups"
      "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE (dest.age IN [0,100]) AND \
       (self.age IN [dest.age-10, dest.age+10])";
    make "Q10"
      "Secondary attack rates at different stages of the disease (incubation period vs \
       illness period)"
      "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE self.inf AND (dest.tInf > \
       self.tInf+2) GROUP BY stage(dest.tInf-self.tInf)";
  ]

let find id = List.find (fun e -> e.id = id) all

let paper_ciphertext_counts =
  [
    ("Q1", 1); ("Q2", 1); ("Q3", 14); ("Q4", 1); ("Q5", 1); ("Q6", 14); ("Q7", 14);
    ("Q8", 1); ("Q9", 10); ("Q10", 14);
  ]
