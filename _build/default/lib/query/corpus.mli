(** The ten queries of Figure 2, in this library's concrete syntax.
    Each entry carries the paper's description; [all] preserves the
    paper's numbering (Q1 first). *)

type entry = {
  id : string;  (** "Q1" .. "Q10" *)
  description : string;  (** Figure 2's English description *)
  sql : string;
  query : Ast.t;  (** parsed form *)
}

val all : entry list

val find : string -> entry
(** By id; raises [Not_found]. *)

val paper_ciphertext_counts : (string * int) list
(** Figure 6's reported values, for regression against
    {!Analysis.analyze}. *)
