(** Parser for the query language. Hand-written recursive descent over
    a hand-written lexer — the grammar is small and the sealed
    environment ships no parser generators.

    Grammar (keywords case-insensitive):
    {v
    query   ::= SELECT output FROM neigh '(' INT ')'
                [WHERE pred] [GROUP BY group] [CLIP '[' INT ',' INT ']']
    output  ::= HISTO '(' agg ')' | GSUM '(' agg ['/' COUNT '(' '*' ')'] ')'
    agg     ::= COUNT '(' '*' ')' | SUM '(' colref ')'
    group   ::= colref | IDENT '(' scalar ')'
    pred    ::= conj (OR conj)*
    conj    ::= atom (AND atom)*
    atom    ::= '(' pred ')' | IDENT '(' colref ')' | scalar rest
    rest    ::= cmp scalar | IN '[' scalar ',' scalar ']' | (empty: truthy column)
    scalar  ::= (INT | colref) (('+'|'-') (INT | colref))*
    colref  ::= IDENT '.' IDENT
    v} *)

type error = { message : string; position : int }

val parse : ?name:string -> string -> (Ast.t, error) result

val parse_exn : ?name:string -> string -> Ast.t
(** Raises [Failure] with a located message. *)
