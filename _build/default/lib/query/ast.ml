type column_group = Self | Dest | Edge

type field = Inf | T_inf | Age | Duration | Contacts | Last_contact | Location | Setting

type colref = { group : column_group; field : field }

type scalar =
  | Col of colref
  | Const of int
  | Plus of scalar * int
  | Minus of scalar * int
  | Minus_col of scalar * colref

type cmp = Lt | Le | Gt | Ge | Eq

type pred =
  | True
  | And of pred * pred
  | Or of pred * pred
  | Truthy of colref
  | Cmp of cmp * scalar * scalar
  | Between of scalar * scalar * scalar
  | Fn of string * colref

type agg = Count | Sum of colref

type output = Histo of agg | Gsum of { num : agg; ratio : bool; clip : (int * int) option }

type group_by = No_group | By_col of colref | By_fn of string * scalar

type t = {
  name : string;
  output : output;
  hops : int;
  where : pred;
  group_by : group_by;
}

let field_of_string = function
  | "inf" -> Some Inf
  | "tInf" -> Some T_inf
  | "age" -> Some Age
  | "duration" -> Some Duration
  | "contacts" -> Some Contacts
  | "last_contact" -> Some Last_contact
  | "location" -> Some Location
  | "setting" -> Some Setting
  | _ -> None

let field_to_string = function
  | Inf -> "inf"
  | T_inf -> "tInf"
  | Age -> "age"
  | Duration -> "duration"
  | Contacts -> "contacts"
  | Last_contact -> "last_contact"
  | Location -> "location"
  | Setting -> "setting"

let group_to_string = function Self -> "self" | Dest -> "dest" | Edge -> "edge"

let colref_valid c =
  match (c.group, c.field) with
  | (Self | Dest), (Inf | T_inf | Age) -> true
  | (Self | Dest), (Duration | Contacts | Last_contact | Location | Setting) -> false
  | Edge, (Duration | Contacts | Last_contact | Location | Setting) -> true
  | Edge, (Inf | T_inf | Age) -> false

let colref_to_string c = group_to_string c.group ^ "." ^ field_to_string c.field

let rec scalar_to_string = function
  | Col c -> colref_to_string c
  | Const v -> string_of_int v
  | Plus (s, v) -> scalar_to_string s ^ "+" ^ string_of_int v
  | Minus (s, v) -> scalar_to_string s ^ "-" ^ string_of_int v
  | Minus_col (s, c) -> scalar_to_string s ^ "-" ^ colref_to_string c

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "="

let rec pred_to_string = function
  | True -> "TRUE"
  | And (a, b) -> pred_to_string a ^ " AND " ^ pred_to_string b
  | Or (a, b) -> "(" ^ pred_to_string a ^ " OR " ^ pred_to_string b ^ ")"
  | Truthy c -> colref_to_string c
  | Cmp (op, a, b) -> "(" ^ scalar_to_string a ^ cmp_to_string op ^ scalar_to_string b ^ ")"
  | Between (x, lo, hi) ->
    "(" ^ scalar_to_string x ^ " IN [" ^ scalar_to_string lo ^ "," ^ scalar_to_string hi ^ "])"
  | Fn (name, c) -> name ^ "(" ^ colref_to_string c ^ ")"

let agg_to_string = function Count -> "COUNT(*)" | Sum c -> "SUM(" ^ colref_to_string c ^ ")"

let output_to_string = function
  | Histo a -> "HISTO(" ^ agg_to_string a ^ ")"
  | Gsum { num; ratio; clip = _ } ->
    let body = agg_to_string num ^ if ratio then "/COUNT(*)" else "" in
    "GSUM(" ^ body ^ ")"

let group_by_to_string = function
  | No_group -> ""
  | By_col c -> " GROUP BY " ^ colref_to_string c
  | By_fn (name, s) -> " GROUP BY " ^ name ^ "(" ^ scalar_to_string s ^ ")"

let to_string q =
  let where = match q.where with True -> "" | p -> " WHERE " ^ pred_to_string p in
  let clip =
    match q.output with
    | Gsum { clip = Some (a, b); _ } -> Printf.sprintf " CLIP [%d,%d]" a b
    | Gsum { clip = None; _ } | Histo _ -> ""
  in
  Printf.sprintf "SELECT %s FROM neigh(%d)%s%s%s" (output_to_string q.output) q.hops where
    (group_by_to_string q.group_by) clip

let pp fmt q = Format.pp_print_string fmt (to_string q)

let rec fold_preds f acc = function
  | And (a, b) | Or (a, b) -> fold_preds f (fold_preds f acc a) b
  | (True | Truthy _ | Cmp _ | Between _ | Fn _) as p -> f acc p

let rec scalar_cols = function
  | Col c -> [ c ]
  | Const _ -> []
  | Plus (s, _) | Minus (s, _) -> scalar_cols s
  | Minus_col (s, c) -> c :: scalar_cols s

let pred_cols p =
  fold_preds
    (fun acc atom ->
      match atom with
      | True -> acc
      | Truthy c -> c :: acc
      | Cmp (_, a, b) -> scalar_cols a @ scalar_cols b @ acc
      | Between (x, lo, hi) -> scalar_cols x @ scalar_cols lo @ scalar_cols hi @ acc
      | Fn (_, c) -> c :: acc
      | And _ | Or _ -> acc)
    [] p
