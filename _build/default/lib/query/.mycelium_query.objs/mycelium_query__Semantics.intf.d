lib/query/semantics.mli: Analysis Ast Mycelium_graph
