lib/query/corpus.mli: Ast
