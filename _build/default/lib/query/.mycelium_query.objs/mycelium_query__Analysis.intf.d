lib/query/analysis.mli: Ast Mycelium_bgv
