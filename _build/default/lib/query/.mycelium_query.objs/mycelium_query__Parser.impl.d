lib/query/parser.ml: Ast List Printf String
