lib/query/ast.ml: Format Printf
