lib/query/corpus.ml: Ast List Parser
