lib/query/analysis.ml: Ast List Mycelium_bgv Mycelium_dp Mycelium_graph Printf Result
