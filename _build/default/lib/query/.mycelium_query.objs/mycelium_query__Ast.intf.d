lib/query/ast.mli: Format
