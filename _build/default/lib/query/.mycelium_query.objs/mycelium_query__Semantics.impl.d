lib/query/semantics.ml: Analysis Array Ast Float Hashtbl List Mycelium_graph Option Printf
