(** Reference semantics for queries over a contact graph.

    This is the ground truth that both engines share: the plaintext
    baseline ([Mycelium_baseline]) evaluates it directly, and the HE
    engine ([Mycelium_core]) must produce exactly the same histogram
    (before noise). It mirrors the protocol's structure:

    - the [neigh(k)] table has a row per BFS-reachable member of the
      origin's k-hop neighborhood plus the origin itself; the [edge]
      column group holds the first edge on the BFS path (undefined for
      the origin row — predicates touching it then fail, NULL-style);
    - WHERE must split into conjuncts that are each origin-side,
      dest-side or cross (the language restriction of §4);
    - self-only conjuncts gate the whole origin (Enc(0));
      row-level conjuncts gate individual contributions (exponent 0);
    - ages are compared and grouped at decade granularity, matching the
      10-ciphertext sequence length of the §4.5 mechanism;
    - GSUM ratio queries pack (sum, count) per row into the exponent:
      row exponent = b * count_stride + passes, so the final bin index
      decodes to the (S, C) pair the committee turns into a clipped
      ratio (see Analysis). *)

type row_ctx = {
  self : Mycelium_graph.Schema.vertex_data;
  dest : Mycelium_graph.Schema.vertex_data;
  edge : Mycelium_graph.Schema.edge_data option;
}

val eval_atom : Ast.pred -> row_ctx -> bool option
(** Atomic predicate on a row; [None] when a referenced value is
    undefined (missing edge, undiagnosed tInf in arithmetic). *)

val eval_pred : Ast.pred -> row_ctx -> bool
(** Whole predicate; undefined atoms are false (SQL-ish NULL). *)

val split_where :
  Ast.pred -> (Ast.pred list * Ast.pred list, string) result
(** [(origin_global, row_level)] conjuncts. Fails when a conjunct mixes
    a self-only disjunct with dest parts in a way the protocol cannot
    place. *)

val row_value : Analysis.info -> row_ctx -> int
(** The §4.3 contribution b of one row: aggregation argument gated by
    the row-level predicates (0 when gated; 1 for COUNT; bucketized
    attribute for SUM). *)

val row_group : Analysis.info -> row_ctx -> int option
(** Group index of a row for edge-/cross-grouped queries; [None] when
    the grouping expression is undefined on the row. *)

val origin_group : Analysis.info -> Mycelium_graph.Schema.vertex_data -> int
(** Group index for self-grouped queries. *)

val origin_gate : Analysis.info -> Mycelium_graph.Schema.vertex_data -> bool
(** Whether the self-only WHERE conjuncts hold for this origin; when
    false the origin contributes Enc(0). *)

val accumulation_group : Analysis.info -> row_ctx -> int option
(** Which per-origin accumulator a row feeds: always 0 for ungrouped or
    self-grouped queries; the row's group for edge-/cross-grouped
    ones. *)

val is_ratio : Analysis.info -> bool

val row_passes : Analysis.info -> row_ctx -> bool
(** All row-level predicates hold (the GSUM ratio denominator test). *)

val pack_exponents :
  Analysis.info ->
  self:Mycelium_graph.Schema.vertex_data ->
  sums:int array ->
  counts:int array ->
  int list
(** Turn per-group (sum, count) accumulators into the origin's final
    bin indices (clamping to the layout). *)

val local_exponents :
  Analysis.info -> Mycelium_graph.Contact_graph.t -> origin:int -> int list option
(** The bin indices this origin contributes to the global aggregation:
    [None] when the origin gate fails (it contributes Enc(0)); one
    index for ungrouped/self-grouped queries, one per group otherwise.
    Each index is < [info.layout.total_bins]. *)

val global_histogram :
  Analysis.info -> Mycelium_graph.Contact_graph.t -> int array
(** Sum of all origins' contributions: the exact (pre-noise) content of
    the aggregate plaintext polynomial. *)

(** {2 Final processing (§4.4 committee post-processing)} *)

type result =
  | Histogram of (string * float array) array
      (** per group label, bin counts *)
  | Sums of (string * float) array  (** per group label, clipped GSUM *)

val decode : Analysis.info -> float array -> result
(** Interpret (possibly noised) bin counts. *)

val group_labels : Analysis.info -> string array
