(** Zero-knowledge proofs of ciphertext well-formedness and product
    correctness (§4.6).

    The paper uses Groth16 via ZoKrates/bellman with a trusted setup
    performed by the genesis committee. A pairing-based SNARK stack is
    out of scope for this reproduction (see DESIGN.md); what the system
    needs from the ZKP layer is (a) *soundness inside the simulation* —
    a Byzantine device must not get a malformed contribution accepted —
    and (b) *faithful costs* for the evaluation figures.

    Both are provided without pairings:
    - [prove_*] actually checks the constraint system against the
      witness (for contributions, it re-encrypts deterministically from
      the witness seed and compares ciphertexts, and checks the §4.6
      plaintext structure: zero, or a single coefficient equal to 1).
      It refuses to sign otherwise, like a real prover that cannot find
      a satisfying witness.
    - Accepted statements are bound by a MAC under a key derived from
      the trusted setup (standing in for the SRS trapdoor); [forge]
      models a Byzantine device fabricating a proof without a witness,
      which verification rejects.
    - {!Cost} carries the Groth16 cost model (constant proof size;
      verification linear in the public I/O, which for Mycelium is
      dominated by the 4.3 MB ciphertexts — the reason ZKP verification
      dominates Figure 9b). *)

type srs
(** The structured reference string from the genesis committee's
    trusted setup. *)

val setup : Mycelium_util.Rng.t -> srs

type proof

val proof_size_bytes : proof -> int

val proof_to_bytes : proof -> bytes
(** Wire form (the simulation's stand-in for the 192-byte Groth16
    proof). *)

val proof_of_bytes : bytes -> proof option

(** {2 Statement 1: well-formed contribution} *)

val prove_contribution :
  srs ->
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_bgv.Bgv.public_key ->
  plaintext:Mycelium_bgv.Plaintext.t ->
  seed:int64 ->
  Mycelium_bgv.Bgv.ciphertext ->
  proof option
(** [None] when the witness does not satisfy the constraints: the
    ciphertext is not the deterministic encryption of [plaintext] under
    [seed], or the plaintext is neither zero nor a coefficient-1
    monomial. *)

val verify_contribution :
  srs -> Mycelium_bgv.Bgv.ctx -> Mycelium_bgv.Bgv.ciphertext -> proof -> bool

(** {2 Statement 2: correct local aggregation (ciphertext product)} *)

val prove_product :
  srs ->
  inputs:Mycelium_bgv.Bgv.ciphertext list ->
  output:Mycelium_bgv.Bgv.ciphertext ->
  proof option
(** [None] unless [output] is the product of [inputs] (balanced tree,
    as computed by [Bgv.mul_many]). *)

val verify_product :
  srs ->
  inputs:Mycelium_bgv.Bgv.ciphertext list ->
  output:Mycelium_bgv.Bgv.ciphertext ->
  proof ->
  bool

(** {2 Generic aggregation transcripts}

    Origin vertices do more than multiply when a query uses the §4.5
    sequence mechanism or GROUP BY shifts: the proven statement is
    "output = F(inputs)" for the query-determined aggregation circuit
    F. The prover re-executes F on the witness; the statement digest
    binds the label, a public context string (the selection sets and
    shifts, which are public query parameters), the inputs and the
    output. *)

val prove_transcript :
  srs ->
  label:string ->
  context:bytes ->
  inputs:Mycelium_bgv.Bgv.ciphertext list ->
  output:Mycelium_bgv.Bgv.ciphertext ->
  recompute:(Mycelium_bgv.Bgv.ciphertext list -> Mycelium_bgv.Bgv.ciphertext) ->
  proof option

val verify_transcript :
  srs ->
  label:string ->
  context:bytes ->
  inputs:Mycelium_bgv.Bgv.ciphertext list ->
  output:Mycelium_bgv.Bgv.ciphertext ->
  proof ->
  bool

val forge : Mycelium_util.Rng.t -> proof
(** What a Byzantine device without a witness can produce; never
    verifies (except with the trapdoor, which nobody in the simulated
    protocol holds). *)

(** {2 Groth16 cost model} *)

module Cost : sig
  val proof_bytes : int
  (** 192: three group elements at BN254 sizes. *)

  val prove_seconds : constraints:int -> float
  (** Linear in the circuit size; calibrated so that one Mycelium
      contribution proof (~2^22 constraints for an N=32768 ciphertext
      encryption) takes ~60 s, the paper's "around a minute". *)

  val verify_seconds : public_io_bytes:int -> float
  (** Pairing check plus one scalar multiplication per public-input
      field element; linear in the I/O size ("Groth16 scales linearly
      in the public I/O size, which ... includes the fairly large
      ciphertexts", §6.6). ~10 s for a 4.3 MB ciphertext. *)

  val contribution_constraints : Mycelium_bgv.Params.t -> int
  (** Circuit size for the §4.6 encryption statement under the given
      BGV parameters. *)
end
