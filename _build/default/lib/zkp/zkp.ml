module Rng = Mycelium_util.Rng
module Sha256 = Mycelium_crypto.Sha256
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext

type srs = { trapdoor : bytes }

let setup rng = { trapdoor = Rng.bytes rng 32 }

type proof = { statement : bytes; mac : bytes }

let proof_size_bytes _ = 192

let proof_to_bytes p = Bytes.cat p.statement p.mac

let proof_of_bytes b =
  if Bytes.length b <> 64 then None
  else Some { statement = Bytes.sub b 0 32; mac = Bytes.sub b 32 32 }

let digest_parts parts =
  let ctx = Sha256.init () in
  List.iter (fun p -> Sha256.update ctx p) parts;
  Sha256.finalize ctx

let sign srs statement = Sha256.hmac ~key:srs.trapdoor statement

let check srs statement proof =
  Bytes.equal proof.statement statement && Bytes.equal proof.mac (sign srs statement)

(* The §4.6 plaintext structure: zero everywhere, or exactly one
   coefficient and it equals 1. *)
let plaintext_admissible pt =
  match Plaintext.is_monomial pt with
  | None -> Array.for_all (fun c -> c = 0) (Plaintext.coeffs pt)
  | Some (_, c) -> c = 1

let contribution_statement ct = digest_parts [ Bytes.of_string "contribution"; Bgv.serialize ct ]

let prove_contribution srs ctx pk ~plaintext ~seed ct =
  if not (plaintext_admissible plaintext) then None
  else begin
    (* Re-run the encryption circuit on the witness. *)
    let reenc = Bgv.encrypt ctx (Rng.create seed) pk plaintext in
    if not (Bytes.equal (Bgv.serialize reenc) (Bgv.serialize ct)) then None
    else begin
      let statement = contribution_statement ct in
      Some { statement; mac = sign srs statement }
    end
  end

let verify_contribution srs _ctx ct proof = check srs (contribution_statement ct) proof

let product_statement ~inputs ~output =
  digest_parts
    (Bytes.of_string "product" :: Bgv.serialize output :: List.map Bgv.serialize inputs)

let prove_product srs ~inputs ~output =
  match inputs with
  | [] -> None
  | _ ->
    let recomputed = Bgv.mul_many inputs in
    if not (Bytes.equal (Bgv.serialize recomputed) (Bgv.serialize output)) then None
    else begin
      let statement = product_statement ~inputs ~output in
      Some { statement; mac = sign srs statement }
    end

let verify_product srs ~inputs ~output proof = check srs (product_statement ~inputs ~output) proof

let transcript_statement ~label ~context ~inputs ~output =
  digest_parts
    (Bytes.of_string ("transcript:" ^ label)
    :: context
    :: Bgv.serialize output
    :: List.map Bgv.serialize inputs)

let prove_transcript srs ~label ~context ~inputs ~output ~recompute =
  let recomputed = recompute inputs in
  if not (Bytes.equal (Bgv.serialize recomputed) (Bgv.serialize output)) then None
  else begin
    let statement = transcript_statement ~label ~context ~inputs ~output in
    Some { statement; mac = sign srs statement }
  end

let verify_transcript srs ~label ~context ~inputs ~output proof =
  check srs (transcript_statement ~label ~context ~inputs ~output) proof

let forge rng =
  { statement = Rng.bytes rng 32; mac = Rng.bytes rng 32 }

module Cost = struct
  let proof_bytes = 192

  (* Calibration anchors from §6.4/§6.6: contribution proof generation
     ~60 s; verification of one contribution (4.3 MB public I/O) ~10 s,
     which puts N=1e6 device verifications at ~1e4 core-hours / 10 h =
     ~300 cores, the regime of Figure 9b. *)
  let prove_seconds ~constraints = 3.2e-5 *. float_of_int constraints

  let verify_seconds ~public_io_bytes = 0.002 +. (2.3e-6 *. float_of_int public_io_bytes)

  let contribution_constraints p =
    (* One R1CS constraint per NTT butterfly per prime, for the two
       component polynomials: ~2 * levels * N log N, plus range checks. *)
    let n = p.Params.degree in
    let logn =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
      go 0 n
    in
    2 * p.Params.levels * n * logn / 10
end
