lib/zkp/zkp.ml: Array Bytes List Mycelium_bgv Mycelium_crypto Mycelium_util
