lib/zkp/zkp.mli: Mycelium_bgv Mycelium_util
