(** Elements of the polynomial ring R_q = Z_q[x]/(x^N + 1) in RNS form.

    An element stores, for every prime of the basis, a length-N residue
    array in the coefficient domain. All operations are functional
    (inputs are never mutated). *)

type t

val basis_of : t -> Rns.t

val zero : Rns.t -> t
val one : Rns.t -> t

val constant : Rns.t -> int -> t
(** The constant polynomial with the given (signed) integer value. *)

val monomial : Rns.t -> coeff:int -> exponent:int -> t
(** [monomial basis ~coeff ~exponent] is [coeff * x^exponent]; the
    exponent is reduced negacyclically ([x^N = -1]). *)

val of_centered_coeffs : Rns.t -> int array -> t
(** Lift an array of signed machine-int coefficients (length <= N,
    padded with zeros). *)

val to_bigint_coeffs : t -> Bigint.t array
(** CRT-reconstruct every coefficient, centered in [(-q/2, q/2\]].
    Cold path. *)

val residues : t -> int array array
(** Underlying per-prime rows (do not mutate). *)

val of_residues : Rns.t -> int array array -> t
(** Adopt per-prime rows (copied). Lengths must match the basis. *)

val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Negacyclic product via per-prime NTT. *)

val mul_scalar : t -> int -> t
(** Multiply by a signed integer scalar. *)

val mul_scalar_residues : t -> int array -> t
(** Multiply by a scalar given directly by its per-prime residues (for
    scalars wider than a machine word, e.g. digit weights B^i in key
    switching). *)

val random_uniform : Rns.t -> Mycelium_util.Rng.t -> t
(** Uniform element of R_q (independent uniform residues per prime,
    which is exactly uniform mod q by CRT). *)

val sample_ternary : Rns.t -> Mycelium_util.Rng.t -> t
(** Coefficients uniform in {-1, 0, 1}; the BGV secret-key
    distribution. *)

val sample_cbd : Rns.t -> eta:int -> Mycelium_util.Rng.t -> t
(** Centered binomial with parameter eta (variance eta/2): the error
    distribution, a standard stand-in for a discrete Gaussian. *)

val pp : Format.formatter -> t -> unit
(** Prints the first few reconstructed coefficients; for debugging. *)
