lib/math/ntt.ml: Array List Modarith
