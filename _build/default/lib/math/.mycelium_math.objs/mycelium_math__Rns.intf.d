lib/math/rns.mli: Bigint Ntt
