lib/math/modarith.ml: List
