lib/math/rq.mli: Bigint Format Mycelium_util Rns
