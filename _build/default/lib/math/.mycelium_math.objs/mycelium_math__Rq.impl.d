lib/math/rq.ml: Array Bigint Format Modarith Mycelium_util Ntt Rns
