lib/math/rns.ml: Array Bigint List Modarith Ntt
