lib/math/bigint.ml: Array Buffer Bytes Char Format List Modarith Mycelium_util Printf String
