lib/math/bigint.mli: Format Mycelium_util
