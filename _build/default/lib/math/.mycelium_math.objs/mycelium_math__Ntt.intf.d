lib/math/ntt.mli:
