lib/math/modarith.mli:
