(** Arbitrary-precision integers, written from scratch because the
    sealed environment has no [zarith].

    Values are immutable, sign-magnitude, with 26-bit limbs so that all
    intermediate products and accumulators in schoolbook multiplication
    and Knuth division stay inside OCaml's 63-bit native [int].

    Used on cold paths only: CRT reconstruction at BGV decryption,
    RSA-style public-key encryption, Feldman commitments, and key
    switching. Hot polynomial arithmetic stays in RNS ({!Rns}). *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
val to_int : t -> int
(** Raises [Failure] if the value does not fit in a native int. *)

val to_int_opt : t -> int option
val to_float : t -> float

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val add_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [|r| < |b|], and [r]
    having the sign of [a] (truncated division, like [Stdlib.( / )]).
    Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder: always in [\[0, |b|)]. *)

val rem_int : t -> int -> int
(** [rem_int a p] is the Euclidean remainder of [a] by a positive
    word-sized modulus [p < 2^31]; much faster than general division.
    Used on the RNS projection path. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val testbit : t -> int -> bool

val pow : t -> int -> t
(** [pow b e] for small non-negative [e]. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow base e m] is [base^e mod m] for [e >= 0], [m > 0]. *)

val gcd : t -> t -> t

val mod_inv : t -> t -> t
(** [mod_inv a m] with [gcd a m = 1]; result in [\[0, m)]. Raises
    [Invalid_argument] if not invertible. *)

val of_string : string -> t
(** Decimal, with optional leading '-'. *)

val to_string : t -> string

val of_bytes_be : bytes -> t
(** Big-endian unsigned magnitude. *)

val to_bytes_be : t -> bytes
(** Minimal-length big-endian magnitude of [abs t]; empty for zero. *)

val of_hex : string -> t

val random : Mycelium_util.Rng.t -> t -> t
(** [random rng bound] is uniform in [\[0, bound)] for [bound > 0]. *)

val random_bits : Mycelium_util.Rng.t -> int -> t
(** Uniform with exactly the given number of bits (top bit set). *)

val is_probable_prime : ?rounds:int -> Mycelium_util.Rng.t -> t -> bool
(** Miller–Rabin with random bases; error probability <= 4^-rounds. *)

val random_prime : Mycelium_util.Rng.t -> bits:int -> t
(** Random probable prime with the given bit length. *)

val random_safe_prime : Mycelium_util.Rng.t -> bits:int -> t * t
(** [(p, q)] with [p = 2q + 1] both probable primes; used for the
    Feldman commitment group. Slow for large sizes; tests use small. *)

val pp : Format.formatter -> t -> unit
