type plan = {
  p : int;
  n : int;
  log_n : int;
  (* psi_pows.(i) = psi^(bitrev i), psi a primitive 2n-th root: merged
     twist + twiddle tables in the Cooley–Tukey / Gentleman–Sande pair
     of loops below (Longa–Naehrig layout). *)
  psi_pows : int array;
  inv_psi_pows : int array;
  n_inv : int;
}

let modulus t = t.p
let degree t = t.n

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let find_primes ~degree ~bits ~count =
  if bits > 31 then invalid_arg "Ntt.find_primes: bits must be <= 31";
  if not (is_power_of_two degree) then invalid_arg "Ntt.find_primes: degree not a power of two";
  let step = 2 * degree in
  let top = 1 lsl bits in
  (* Largest candidate of the form k*2N + 1 below 2^bits. *)
  let start = ((top - 2) / step * step) + 1 in
  let rec collect acc cand remaining =
    if remaining = 0 then List.rev acc
    else if cand <= step then failwith "Ntt.find_primes: exhausted candidates"
    else if Modarith.is_prime cand then collect (cand :: acc) (cand - step) (remaining - 1)
    else collect acc (cand - step) remaining
  in
  collect [] start count

let bit_reverse_index bits i =
  let r = ref 0 and v = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!v land 1);
    v := !v lsr 1
  done;
  !r

let make_plan ~p ~degree:n =
  if not (is_power_of_two n) then invalid_arg "Ntt.make_plan: degree not a power of two";
  if (p - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.make_plan: p <> 1 mod 2N";
  let log_n =
    let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
    go 0 1
  in
  let psi = Modarith.nth_root_of_unity p (2 * n) in
  let inv_psi = Modarith.inv p psi in
  let table root =
    let t = Array.make n 1 in
    let pow = Array.make n 1 in
    for i = 1 to n - 1 do
      pow.(i) <- Modarith.mul p pow.(i - 1) root
    done;
    for i = 0 to n - 1 do
      t.(i) <- pow.(bit_reverse_index log_n i)
    done;
    t
  in
  {
    p;
    n;
    log_n;
    psi_pows = table psi;
    inv_psi_pows = table inv_psi;
    n_inv = Modarith.inv p n;
  }

(* Cooley–Tukey decimation-in-time with the psi powers folded into the
   twiddles; performs the negacyclic twist implicitly. *)
let forward t a =
  let p = t.p and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.forward: wrong length";
  let m = ref 1 and len = ref (n / 2) in
  while !len >= 1 do
    let m_v = !m and len_v = !len in
    for i = 0 to m_v - 1 do
      let w = t.psi_pows.(m_v + i) in
      let j1 = 2 * i * len_v in
      for j = j1 to j1 + len_v - 1 do
        let u = a.(j) in
        let v = a.(j + len_v) * w mod p in
        let s = u + v in
        a.(j) <- (if s >= p then s - p else s);
        let d = u - v in
        a.(j + len_v) <- (if d < 0 then d + p else d)
      done
    done;
    m := m_v * 2;
    len := len_v / 2
  done

(* Gentleman–Sande decimation-in-frequency inverse, with the inverse
   twist folded in, followed by scaling by n^-1. *)
let inverse t a =
  let p = t.p and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.inverse: wrong length";
  let m = ref (n / 2) and len = ref 1 in
  while !m >= 1 do
    let m_v = !m and len_v = !len in
    for i = 0 to m_v - 1 do
      let w = t.inv_psi_pows.(m_v + i) in
      let j1 = 2 * i * len_v in
      for j = j1 to j1 + len_v - 1 do
        let u = a.(j) in
        let v = a.(j + len_v) in
        let s = u + v in
        a.(j) <- (if s >= p then s - p else s);
        let d = u - v in
        let d = if d < 0 then d + p else d in
        a.(j + len_v) <- d * w mod p
      done
    done;
    m := m_v / 2;
    len := len_v * 2
  done;
  for i = 0 to n - 1 do
    a.(i) <- a.(i) * t.n_inv mod p
  done

let multiply t a b =
  let n = t.n and p = t.p in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Ntt.multiply: wrong length";
  let fa = Array.copy a and fb = Array.copy b in
  forward t fa;
  forward t fb;
  for i = 0 to n - 1 do
    fa.(i) <- fa.(i) * fb.(i) mod p
  done;
  inverse t fa;
  fa

let multiply_naive ~p a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Ntt.multiply_naive: length mismatch";
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0 then
      for j = 0 to n - 1 do
        if b.(j) <> 0 then begin
          let prod = a.(i) * b.(j) mod p in
          let k = i + j in
          if k < n then out.(k) <- Modarith.add p out.(k) prod
          else out.(k - n) <- Modarith.sub p out.(k - n) prod
        end
      done
  done;
  out
