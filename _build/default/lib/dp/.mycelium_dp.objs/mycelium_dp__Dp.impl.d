lib/dp/dp.ml: Array Float List Mycelium_util
