lib/dp/dp.mli: Mycelium_util
