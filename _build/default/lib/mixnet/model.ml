let telescoping_rounds ~hops = (hops * hops) + (2 * hops)

let forwarding_rounds ~hops = (2 * hops) + 2

let binom n k =
  let rec go acc i = if i > k then acc else go (acc *. float_of_int (n - i + 1) /. float_of_int i) (i + 1) in
  go 1. 1

let anonymity_set ~n ~hops ~replicas ~fraction ~malicious =
  let growth = float_of_int replicas /. fraction in
  let acc = ref 0. in
  for honest = 0 to hops do
    let p =
      binom hops honest
      *. ((1. -. malicious) ** float_of_int honest)
      *. (malicious ** float_of_int (hops - honest))
    in
    acc := !acc +. (p *. Float.min n (growth ** float_of_int honest))
  done;
  Float.min n !acc

let identification_probability ~hops ~replicas ~malicious =
  1. -. ((1. -. (malicious ** float_of_int hops)) ** float_of_int replicas)

let goodput ~hops ~replicas ~failure_rate =
  let copy_survives = (1. -. failure_rate) ** float_of_int hops in
  1. -. ((1. -. copy_survives) ** float_of_int replicas)

let batch_size ~replicas ~degree ~fraction =
  float_of_int (replicas * degree) /. fraction
