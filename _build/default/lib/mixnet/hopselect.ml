module Sha256 = Mycelium_crypto.Sha256
module Rng = Mycelium_util.Rng

let slice ~beacon x =
  let ctx = Sha256.init () in
  Sha256.update_string ctx (string_of_int x);
  Sha256.update ctx beacon;
  let h = Sha256.finalize ctx in
  (* First 52 bits as a fraction: plenty of resolution, exact in a
     float. *)
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Bytes.get_uint8 h i
  done;
  let v = (!v lsl 4) lor (Bytes.get_uint8 h 6 lsr 4) in
  float_of_int v /. 0x1.0p52

let eligible ~beacon ~fraction ~hop x =
  if hop < 1 then invalid_arg "Hopselect.eligible: hops are 1-based";
  let s = slice ~beacon x in
  s >= float_of_int (hop - 1) *. fraction && s < float_of_int hop *. fraction

let slot ~beacon ~fraction ~hops x =
  let s = slice ~beacon x in
  if s >= fraction *. float_of_int hops then None
  else Some (1 + int_of_float (s /. fraction))

let draw rng ~beacon ~fraction ~hop ~total =
  let max_tries = 200 + int_of_float (50. /. fraction) in
  let rec go tries =
    if tries = 0 then failwith "Hopselect.draw: no eligible pseudonym found"
    else begin
      let x = Rng.int rng total in
      if eligible ~beacon ~fraction ~hop x then x else go (tries - 1)
    end
  in
  go max_tries

let draw_path rng ~beacon ~fraction ~hops ~total =
  Array.init hops (fun i -> draw rng ~beacon ~fraction ~hop:(i + 1) ~total)
