lib/mixnet/onion.ml: List Mycelium_crypto Mycelium_util
