lib/mixnet/model.ml: Float
