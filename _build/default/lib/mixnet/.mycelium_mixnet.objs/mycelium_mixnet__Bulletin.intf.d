lib/mixnet/bulletin.mli:
