lib/mixnet/vmap.mli: Mycelium_crypto Mycelium_util
