lib/mixnet/model.mli:
