lib/mixnet/hopselect.mli: Mycelium_util
