lib/mixnet/bulletin.ml: Bytes List Mycelium_crypto
