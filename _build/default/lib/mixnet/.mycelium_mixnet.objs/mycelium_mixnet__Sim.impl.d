lib/mixnet/sim.ml: Array Bulletin Bytes Float Hashtbl Hopselect Int64 List Model Mycelium_crypto Mycelium_util Onion Option Printf Seq Vmap
