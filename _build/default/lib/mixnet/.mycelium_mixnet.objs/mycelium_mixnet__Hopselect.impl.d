lib/mixnet/hopselect.ml: Array Bytes Mycelium_crypto Mycelium_util
