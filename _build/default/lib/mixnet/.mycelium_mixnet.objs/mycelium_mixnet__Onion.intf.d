lib/mixnet/onion.mli: Mycelium_util
