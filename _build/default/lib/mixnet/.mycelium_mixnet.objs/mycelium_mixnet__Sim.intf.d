lib/mixnet/sim.mli: Bulletin Vmap
