lib/mixnet/vmap.ml: Array Buffer Bytes Hashtbl List Mycelium_crypto Mycelium_util Option String
