(** Hash-based hop selection (§3.4).

    Forwarding duty is restricted to a fraction f of pseudonyms per hop
    position: pseudonym number x is eligible as hop i iff
    (i-1)*f <= H(x || B)/H_max < i*f, where B is a beacon chosen
    collectively (Honeycrisp-style) after M1 is committed — so the
    aggregator can bias neither the map (positions are fixed first) nor
    the coin. k hop slots make a k*f fraction of devices forwarders
    overall, which is how the cost model apportions forwarding load. *)

val slice : beacon:bytes -> int -> float
(** H(x || B) / H_max in [0, 1). *)

val eligible : beacon:bytes -> fraction:float -> hop:int -> int -> bool
(** [eligible ~beacon ~fraction ~hop x]; hops are 1-based. *)

val slot : beacon:bytes -> fraction:float -> hops:int -> int -> int option
(** Which hop slot (1..hops) pseudonym x serves, if any. *)

val draw :
  Mycelium_util.Rng.t -> beacon:bytes -> fraction:float -> hop:int -> total:int -> int
(** Rejection-sample an eligible pseudonym number for the given hop
    slot, as a device building a path does. Raises [Failure] if the
    slot appears empty after many tries. *)

val draw_path :
  Mycelium_util.Rng.t ->
  beacon:bytes ->
  fraction:float ->
  hops:int ->
  total:int ->
  int array
(** One pseudonym number per hop slot 1..hops. *)
