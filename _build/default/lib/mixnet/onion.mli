(** Onion message encoding (§3.2, §3.5).

    The innermost layer — source to destination — uses authenticated
    encryption (ciphertext integrity end to end). Every outer layer
    uses the plain stream cipher SEnc, *without* a MAC: §3.5's
    dummy-generation argument requires that a forwarder can substitute
    a uniformly random string for a dropped message and the next hop
    cannot tell. Nonces are never transmitted; both ends derive them
    from the C-round number. All layers preserve length, so message
    size does not reveal position along the path. *)

val layer_key_size : int (* 32 *)

val seal_inner : key:bytes -> round:int -> bytes -> bytes
(** AE to the destination; adds {!inner_overhead} bytes. *)

val open_inner : key:bytes -> round:int -> bytes -> bytes option

val inner_overhead : int

val add_layer : key:bytes -> round:int -> bytes -> bytes
(** One SEnc layer (length-preserving). *)

val peel_layer : key:bytes -> round:int -> bytes -> bytes
(** Inverse of {!add_layer} under the same key and round. *)

val wrap : hop_keys:bytes list -> round:int -> bytes -> bytes
(** [wrap ~hop_keys ~round inner] applies layers so that the first key
    in the list peels first (the first hop). *)

val unwrap : hop_keys:bytes list -> round:int -> bytes -> bytes
(** Peels all layers in order; for tests and reverse-path handling. *)

val dummy : Mycelium_util.Rng.t -> length:int -> bytes
(** A uniformly random string of the given length: what a forwarder
    uploads in place of a missing message. *)
