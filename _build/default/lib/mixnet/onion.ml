module Chacha20 = Mycelium_crypto.Chacha20
module Aead = Mycelium_crypto.Aead
module Rng = Mycelium_util.Rng

let layer_key_size = 32

let seal_inner ~key ~round msg = Aead.seal ~key ~round msg

let open_inner ~key ~round ct = Aead.open_ ~key ~round ct

let inner_overhead = Aead.overhead

let add_layer ~key ~round msg =
  Chacha20.encrypt ~key ~nonce:(Chacha20.nonce_of_round round) msg

let peel_layer = add_layer (* XOR stream: involutive *)

let wrap ~hop_keys ~round inner =
  (* The first hop peels first, so its layer goes on last. *)
  List.fold_left (fun acc key -> add_layer ~key ~round acc) inner (List.rev hop_keys)

let unwrap ~hop_keys ~round ct =
  List.fold_left (fun acc key -> peel_layer ~key ~round acc) ct hop_keys

let dummy rng ~length = Rng.bytes rng length
