(** Analytic models of the communication layer (§6.3), used to draw
    Figure 5 at paper scale exactly the way the paper does — small
    measurements plus closed-form extrapolation — and validated against
    the Monte Carlo simulator ({!Sim}) at simulable scale. *)

val telescoping_rounds : hops:int -> int
(** k^2 + 2k C-rounds for path setup (§3.4, Figure 5d). *)

val forwarding_rounds : hops:int -> int
(** 2k + 2 C-rounds per query: k+1 out for the query, k+1 back for the
    response (§6.3, Figure 5d). *)

val anonymity_set :
  n:float -> hops:int -> replicas:int -> fraction:float -> malicious:float -> float
(** Expected anonymity-set size of an edge (§6.3): each *honest* hop
    multiplies the candidate-sender set by r/f; malicious hops
    contribute nothing. Expectation over the binomial number of honest
    hops, capped at N. Matches the paper's ">7000 at r=2, k=3,
    mal=0.02" anchor. *)

val identification_probability : hops:int -> replicas:int -> malicious:float -> float
(** Probability that some replica's path is entirely malicious, fully
    identifying the sender (Figure 5b): 1 - (1 - m^k)^r. ~1e-5 at the
    default parameters. *)

val goodput : hops:int -> replicas:int -> failure_rate:float -> float
(** Probability a message survives: each copy must traverse k hops that
    are each up and honest; 1 - (1 - (1-fail)^k)^r (Figure 5c). *)

val batch_size : replicas:int -> degree:int -> fraction:float -> float
(** r*d/f messages mixed per forwarder per C-round (§3.2). *)
