lib/core/runtime.mli: Committee Mycelium_bgv Mycelium_dp Mycelium_graph Mycelium_mixnet Mycelium_query
