lib/core/contribution.mli: Mycelium_bgv Mycelium_graph Mycelium_query Mycelium_util Mycelium_zkp
