lib/core/contribution.ml: Array Buffer Bytes Int32 List Mycelium_bgv Mycelium_graph Mycelium_query Mycelium_util Mycelium_zkp Option
