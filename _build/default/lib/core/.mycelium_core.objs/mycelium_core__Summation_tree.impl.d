lib/core/summation_tree.ml: Array Bytes List Mycelium_bgv Mycelium_crypto
