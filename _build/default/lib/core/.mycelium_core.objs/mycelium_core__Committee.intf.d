lib/core/committee.mli: Mycelium_bgv Mycelium_query Mycelium_util Mycelium_zkp
