lib/core/committee.ml: Array Fun List Mycelium_bgv Mycelium_dp Mycelium_query Mycelium_secrets Mycelium_util Mycelium_zkp
