lib/core/summation_tree.mli: Mycelium_bgv
