(** Feldman verifiable secret sharing commitments.

    A dealer sharing a secret with polynomial f(X) = a_0 + ... + a_t X^t
    over Z_p publishes C_k = g^{a_k} in a group of order p; any party
    can then check its share (x, y) against g^y = prod_k C_k^{x^k},
    detecting a misdealing dealer. Mycelium's Extended VSR (§4.2, [46])
    uses such commitments so that committee hand-offs are verifiable.

    The group is a subgroup of order p inside Z_P^* for a prime
    P = k*p + 1; group arithmetic runs on {!Mycelium_math.Bigint}. Test
    and simulation parameters are far below cryptographic size — the
    protocol logic, not 2048-bit arithmetic, is what the reproduction
    exercises (see DESIGN.md). *)

type group = {
  big_p : Mycelium_math.Bigint.t;  (** the prime P *)
  g : Mycelium_math.Bigint.t;  (** generator of the order-p subgroup *)
  order : int;  (** p, the Shamir field prime *)
}

val group_for_prime : Mycelium_util.Rng.t -> int -> group
(** Find a prime P = k*p + 1 and an order-p generator. *)

type commitment = Mycelium_math.Bigint.t array
(** One group element per polynomial coefficient. *)

val commit : group -> int array -> commitment
(** [commit group coeffs] publishes g^{a_k} for each coefficient. *)

val verify_share : group -> commitment -> Shamir.share -> bool
(** Check g^y = prod_k C_k^{x^k}. *)

val commitment_to_secret : commitment -> Mycelium_math.Bigint.t
(** C_0 = g^{secret}: binds the dealer to the shared value without
    revealing it; used by VSR to check old-share consistency. *)

val combine_commitments : group -> commitment list -> int array -> commitment
(** [combine_commitments group cs lambdas] is the commitment to the
    polynomial [sum_i lambda_i f_i]: pointwise [prod_i C_{i,k}^{lambda_i}].
    All commitments must have equal length. *)
