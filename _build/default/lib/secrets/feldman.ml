module Rng = Mycelium_util.Rng
module Bigint = Mycelium_math.Bigint
module Modarith = Mycelium_math.Modarith

type group = { big_p : Bigint.t; g : Bigint.t; order : int }

let group_for_prime rng p =
  if not (Modarith.is_prime p) then invalid_arg "Feldman.group_for_prime: order not prime";
  let big_order = Bigint.of_int p in
  (* Search k = 2, 4, 6, ... for P = k*p + 1 prime. *)
  let rec find k =
    let candidate = Bigint.add_int (Bigint.mul_int big_order k) 1 in
    if Bigint.is_probable_prime rng candidate then (candidate, k) else find (k + 2)
  in
  let big_p, k = find 2 in
  let exp = Bigint.of_int k in
  let rec find_gen () =
    let h = Bigint.add (Bigint.random rng (Bigint.sub big_p (Bigint.of_int 3))) Bigint.two in
    let g = Bigint.mod_pow h exp big_p in
    if Bigint.equal g Bigint.one then find_gen () else g
  in
  { big_p; g = find_gen (); order = p }

type commitment = Bigint.t array

let commit group coeffs =
  Array.map (fun a -> Bigint.mod_pow group.g (Bigint.of_int (Modarith.reduce group.order a)) group.big_p) coeffs

let verify_share group commitment (share : Shamir.share) =
  let p = group.order in
  let lhs = Bigint.mod_pow group.g (Bigint.of_int (Modarith.reduce p share.Shamir.y)) group.big_p in
  let rhs = ref Bigint.one in
  let xk = ref 1 in
  Array.iter
    (fun c ->
      rhs := Bigint.erem (Bigint.mul !rhs (Bigint.mod_pow c (Bigint.of_int !xk) group.big_p)) group.big_p;
      xk := Modarith.mul p !xk share.Shamir.x)
    commitment;
  Bigint.equal lhs !rhs

let commitment_to_secret commitment = commitment.(0)

let combine_commitments group cs lambdas =
  match cs with
  | [] -> invalid_arg "Feldman.combine_commitments: empty"
  | first :: _ ->
    let len = Array.length first in
    List.iter
      (fun c -> if Array.length c <> len then invalid_arg "Feldman.combine_commitments: length mismatch")
      cs;
    if List.length cs <> Array.length lambdas then
      invalid_arg "Feldman.combine_commitments: lambda count mismatch";
    Array.init len (fun k ->
        List.fold_left
          (fun acc (i, c) ->
            let factor = Bigint.mod_pow c.(k) (Bigint.of_int lambdas.(i)) group.big_p in
            Bigint.erem (Bigint.mul acc factor) group.big_p)
          Bigint.one
          (List.mapi (fun i c -> (i, c)) cs))
