lib/secrets/feldman.mli: Mycelium_math Mycelium_util Shamir
