lib/secrets/vsr.mli: Feldman Mycelium_math Mycelium_util Shamir
