lib/secrets/threshold.mli: Mycelium_bgv Mycelium_math Mycelium_util Shamir
