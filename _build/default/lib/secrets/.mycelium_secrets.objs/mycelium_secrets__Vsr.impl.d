lib/secrets/vsr.ml: Array Bytes Feldman Int32 List Mycelium_crypto Mycelium_math Mycelium_util Printf Shamir
