lib/secrets/threshold.ml: Array List Mycelium_bgv Mycelium_math Mycelium_util Shamir
