lib/secrets/shamir.ml: Array List Mycelium_math Mycelium_util
