lib/secrets/shamir.mli: Mycelium_math Mycelium_util
