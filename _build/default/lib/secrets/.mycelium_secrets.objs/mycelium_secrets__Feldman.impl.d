lib/secrets/feldman.ml: Array List Mycelium_math Mycelium_util Shamir
