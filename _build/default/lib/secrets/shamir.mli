(** Shamir secret sharing over a word-sized prime field (Shamir '79).

    Mycelium shares the BGV decryption key among a committee of user
    devices so that any [threshold + 1] members can decrypt but no
    [threshold] colluding members learn anything (§4.2, §5: "any subset
    of t+1 members can reconstruct"). *)

type share = { x : int; y : int }
(** Evaluation point and value; x >= 1. *)

val share_secret :
  p:int ->
  Mycelium_util.Rng.t ->
  threshold:int ->
  parties:int ->
  int ->
  share array
(** [share_secret ~p rng ~threshold ~parties v] returns one share per
    party at x = 1..parties; any [threshold+1] reconstruct [v], and any
    [threshold] values are jointly uniform. Requires
    [0 < threshold + 1 <= parties < p]. *)

val share_with_poly :
  p:int ->
  Mycelium_util.Rng.t ->
  threshold:int ->
  parties:int ->
  int ->
  share array * int array
(** Also returns the coefficients (a_0 = secret first) for commitment
    schemes. *)

val eval_poly : p:int -> int array -> int -> int
(** Horner evaluation of a coefficient array at a point. *)

val reconstruct : p:int -> share list -> int
(** Lagrange interpolation at zero using all given shares (callers pass
    exactly [threshold+1] distinct-x shares). Raises
    [Invalid_argument] on duplicate x. *)

val lagrange_at_zero : p:int -> int array -> int array
(** [lagrange_at_zero ~p xs] gives the coefficients lambda_i such that
    [f(0) = sum_i lambda_i f(xs.(i))] for any polynomial of degree
    < length xs. *)

(** {2 Vector (ring element) sharing} *)

type rq_share = { idx : int; value : Mycelium_math.Rq.t }
(** A share of a ring element: every coefficient of every RNS residue
    row independently Shamir-shared at the same x = idx. Linear ring
    operations on shares commute with reconstruction. *)

val share_rq :
  Mycelium_util.Rng.t ->
  threshold:int ->
  parties:int ->
  Mycelium_math.Rq.t ->
  rq_share array

val reconstruct_rq : Mycelium_math.Rns.t -> rq_share list -> Mycelium_math.Rq.t

val lambda_rows : Mycelium_math.Rns.t -> int array -> int array array
(** Per-prime Lagrange-at-zero coefficients for the given x
    coordinates: [lambda_rows basis xs].(i) is the coefficient vector
    in the i-th prime field. *)
