(** Verifiable secret redistribution (Extended VSR, Gupta–Gopinath
    [46]; §4.2).

    Moves a Shamir-shared secret from an old committee with threshold t
    to a new committee with threshold t' *without ever reconstructing
    it*, and in a way the new members can verify. Members of different
    committees cannot pool their (old + new) shares to recover the key,
    because the new shares are re-randomized by fresh sub-share
    polynomials.

    Protocol, per secret element over field p:
    + a subset U of t+1 old members each re-shares its share y_i to the
      new committee (threshold t'), publishing a Feldman commitment to
      the sub-share polynomial;
    + every new member j checks each sub-share against the commitment,
      and checks the commitment's constant term against g^{f(x_i)}
      derived from the *old* commitment — so a lying old member is
      caught;
    + new member j's share is y'_j = sum_{i in U} lambda_i yhat_{ij}.

    The BGV key is a ring element (N coefficients x L primes); the
    committee hand-off runs {!redistribute_rq} for the share arithmetic
    and checks a Fiat–Shamir random linear combination of coefficients
    with the scalar verified protocol ({!batch_weights} + scalar
    dealings), rather than publishing N*L commitment vectors. *)

type dealing = {
  from_x : int;  (** the old member's share index *)
  sub_shares : Shamir.share array;  (** one per new member, x = 1..n' *)
  commitment : Feldman.commitment;  (** commits to the sub-polynomial *)
}

val deal :
  group:Feldman.group ->
  Mycelium_util.Rng.t ->
  new_threshold:int ->
  new_parties:int ->
  Shamir.share ->
  dealing
(** An old member re-shares its share to the new committee. *)

val expected_constant :
  group:Feldman.group -> old_commitment:Feldman.commitment -> int -> Mycelium_math.Bigint.t
(** [expected_constant ~group ~old_commitment x] = g^{f(x)}: what the
    constant term of an honest member-x dealing must commit to. *)

val verify_dealing :
  group:Feldman.group -> old_commitment:Feldman.commitment -> dealing -> bool
(** Binding check (constant term vs old commitment) + all sub-shares
    verify. *)

val verify_sub_share : group:Feldman.group -> dealing -> int -> bool
(** [verify_sub_share ~group d j] checks only new member [j]'s
    sub-share (1-based), which is all member j can check privately. *)

val finish : p:int -> dealings:dealing list -> int -> Shamir.share
(** [finish ~p ~dealings j] computes new member [j]'s share (1-based)
    from the sub-shares addressed to it. The dealings' [from_x] must be
    distinct. *)

val new_commitment : group:Feldman.group -> dealings:dealing list -> Feldman.commitment
(** Commitment to the new sharing polynomial, publishable for the next
    round. *)

(** {2 Ring-element redistribution} *)

val redistribute_rq :
  Mycelium_util.Rng.t ->
  new_threshold:int ->
  new_parties:int ->
  Shamir.rq_share list ->
  Shamir.rq_share array
(** Redistribute a shared ring element (e.g. the BGV key): takes t+1
    old shares, returns the new committee's shares. Reconstruction of
    the new shares equals reconstruction of the old. *)

val batch_weights :
  Mycelium_math.Rns.t -> context:bytes -> int array array
(** Fiat–Shamir weights gamma.(prime).(coeff) derived from a public
    context hash; both dealer and verifier compute them, so the scalar
    [sum gamma_c * share_c mod p] of any share is publicly agreed. *)

val fold_rq : Mycelium_math.Rns.t -> int array array -> Mycelium_math.Rq.t -> int array
(** [fold_rq basis gamma v] collapses a ring element to one scalar per
    prime with the given weights; linear, so it commutes with Shamir
    reconstruction — the hook that lets scalar commitments vouch for
    ring dealings. *)
