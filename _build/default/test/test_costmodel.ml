(* Tests for mycelium_costmodel: every extrapolated figure must hit the
   paper's anchors (§6.3–§6.6, §7) within tolerance, and the analytic
   models must agree with the Monte Carlo simulator at small scale. *)

module Rng = Mycelium_util.Rng
module Defaults = Mycelium_costmodel.Defaults
module Bandwidth = Mycelium_costmodel.Bandwidth
module Committee_model = Mycelium_costmodel.Committee_model
module Aggregator_model = Mycelium_costmodel.Aggregator_model
module Device_compute = Mycelium_costmodel.Device_compute
module Figures = Mycelium_costmodel.Figures
module Params = Mycelium_bgv.Params

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let within name lo hi v =
  checkb (Printf.sprintf "%s: %g in [%g, %g]" name v lo hi) true (v >= lo && v <= hi)

let d = Defaults.paper

(* ------------------------------------------------------------------ *)

let test_ciphertext_size () =
  (* Paper: 4.3 MB. Our 19x30-bit modulus gives slightly more. *)
  within "ciphertext bytes" 4.0e6 5.0e6 Defaults.ciphertext_bytes

let test_fig6_cq () =
  List.iter
    (fun (id, expected) -> checki id expected (Defaults.ciphertexts_per_query id))
    [ ("Q1", 1); ("Q3", 14); ("Q9", 10) ]

let test_sec6_4_bandwidth_anchors () =
  (* Paper: 170 MB non-forwarder / 1030 MB forwarder / ~430 MB expected. *)
  within "non-forwarder" 1.5e8 2.2e8 (Bandwidth.non_forwarder_bytes d ~cq:1);
  within "forwarder" 0.9e9 1.3e9 (Bandwidth.forwarder_bytes d ~cq:1);
  within "expected" 3.8e8 5.2e8 (Bandwidth.expected_bytes d ~cq:1)

let test_bandwidth_scales_with_cq () =
  (* Complex queries multiply by the Figure 6 factor. *)
  let b1 = Bandwidth.expected_bytes d ~cq:1 in
  let b14 = Bandwidth.expected_bytes d ~cq:14 in
  checkb "14x ciphertexts, 14x bandwidth" true (Float.abs ((b14 /. b1) -. 14.) < 1e-9)

let test_fig9a_anchor () =
  (* Paper: ~350 MB sent by the aggregator per device. *)
  within "aggregator per device" 3.0e8 4.5e8 (Bandwidth.aggregator_per_device_bytes d ~cq:1);
  (* Monotone in k and r. *)
  let v k r = Bandwidth.aggregator_per_device_bytes { d with Defaults.hops = k; replicas = r } ~cq:1 in
  checkb "monotone in k" true (v 2 2 < v 3 2 && v 3 2 < v 4 2);
  checkb "monotone in r" true (v 3 1 < v 3 2 && v 3 2 < v 3 3)

let test_fig9b_shape () =
  let deadline = 10. *. 3600. in
  let zkp n = fst (Aggregator_model.cores_breakdown d ~n ~deadline_seconds:deadline ~cq:1) in
  let agg n = snd (Aggregator_model.cores_breakdown d ~n ~deadline_seconds:deadline ~cq:1) in
  (* ZKP verification dominates ("the bars for the aggregation are very
     small"). *)
  checkb "zkp >> aggregation" true (zkp 1e6 > 100. *. agg 1e6);
  (* Linear in N across the 1e6..1e9 range. *)
  checkb "linear in N" true (Float.abs ((zkp 1e9 /. zkp 1e6) -. 1000.) < 1.);
  (* Plausible magnitude: a data center, not a laptop and not the
     planet. *)
  within "cores at 1e6" 1e2 1e5 (zkp 1e6);
  within "cores at 1e9" 1e5 1e8 (zkp 1e9)

let test_fig8a_shape () =
  let pf c m = Committee_model.privacy_failure ~committee:c ~malicious:m in
  (* More malice, more failure; larger committees, safer. *)
  checkb "monotone in malice" true (pf 10 0.01 < pf 10 0.02 && pf 10 0.02 < pf 10 0.04);
  checkb "bigger committee safer" true (pf 20 0.02 < pf 10 0.02 && pf 40 0.02 < pf 20 0.02);
  (* At the MC assumption (2%), a 10-member committee is very unlikely
     to be captured. *)
  checkb "tiny at defaults" true (pf 10 0.02 < 1e-6);
  (* Sanity at the extremes. *)
  checkb "all malicious" true (pf 10 1.0 > 0.999999);
  checkb "none malicious" true (pf 10 0.0 = 0.)

let test_fig8b_shape () =
  let lv c r = Committee_model.liveness ~committee:c ~failure_rate:r in
  checkb "high at defaults" true (lv 10 0.02 > 0.999);
  checkb "monotone down in churn" true (lv 10 0.3 < lv 10 0.1);
  checkb "bigger committee more robust" true (lv 40 0.3 > lv 10 0.3);
  checkb "dead network" true (lv 10 1.0 = 0.)

let test_sec6_5_anchors () =
  (* Paper: ~3 minutes and ~4.5 GB per member at c=10. *)
  within "mpc seconds" 120. 300. (Committee_model.mpc_seconds ~committee:10);
  within "mpc bytes" 4.0e9 5.0e9 (Committee_model.mpc_bandwidth_bytes ~committee:10);
  checkb "grows with committee" true
    (Committee_model.mpc_seconds ~committee:20 > Committee_model.mpc_seconds ~committee:10)

let test_device_compute () =
  let rng = Rng.create 9L in
  let costs = Device_compute.measure ~params:Params.test_small rng in
  checkb "positive measurements" true
    (costs.Device_compute.encrypt_s > 0. && costs.Device_compute.multiply_s > 0.);
  (* Extrapolation to the same parameters is the identity. *)
  let same = Device_compute.extrapolate costs Params.test_small in
  checkb "identity extrapolation" true
    (Float.abs (same.Device_compute.encrypt_s -. costs.Device_compute.encrypt_s) < 1e-12);
  (* To paper scale: bigger, and the breakdown is sane. *)
  let paper_costs = Device_compute.extrapolate costs Params.paper in
  checkb "paper scale slower" true
    (paper_costs.Device_compute.encrypt_s > costs.Device_compute.encrypt_s);
  let b = Device_compute.device_query_cost d paper_costs ~cq:1 in
  checki "encryptions = d*cq + 1" 11 b.Device_compute.encryptions;
  (* ZKP proving ~ a minute (§6.4). *)
  within "zkp seconds" 30. 120. b.Device_compute.zkp_seconds;
  (* Total well under the paper's unoptimized 15 minutes but not
     trivially zero. *)
  within "total seconds" 1. Device_compute.paper_anchor_seconds b.Device_compute.total_seconds

let test_key_distribution_gap () =
  (* The §4.2 claim: per-query key traffic independent of N and orders
     of magnitude below re-keying every device. *)
  let orchard = Committee_model.orchard_per_query_key_bytes ~n:1.1e6 in
  let mycelium = Committee_model.mycelium_per_query_key_bytes ~committee:10 in
  checkb "at least 1000x cheaper" true (orchard > 1000. *. mycelium);
  checkb "independent of N" true
    (Committee_model.mycelium_per_query_key_bytes ~committee:10 = mycelium);
  checkb "orchard linear in N" true
    (Committee_model.orchard_per_query_key_bytes ~n:2.2e6 = 2. *. orchard)

let test_figures_render () =
  let figs = Figures.all () in
  checki "sixteen standing figures" 16 (List.length figs);
  let ids = List.map (fun f -> f.Figures.id) figs in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
  List.iter
    (fun f ->
      let s = Figures.render f in
      checkb (f.Figures.id ^ " renders") true (String.length s > 40);
      checkb (f.Figures.id ^ " has series") true (f.Figures.series <> []))
    figs

let test_fig5_monte_carlo_agrees () =
  let fig = Figures.fig5_monte_carlo ~n:300 ~seed:21L in
  let find label =
    List.find (fun s -> s.Figures.label = label) fig.Figures.series
  in
  (* r=1 has no replica correlation: the closed form should be tight.
     With replicas, copies of a message share forwarders, so their
     failures correlate and the independence model is an upper bound
     (the paper's model makes the same assumption) — allow slack but
     require the ordering. *)
  List.iter
    (fun r ->
      let sim = find (Printf.sprintf "sim goodput r=%d" r) in
      let model = find (Printf.sprintf "model goodput r=%d" r) in
      List.iter2
        (fun (x1, sim_v) (x2, model_v) ->
          checkb "same x" true (x1 = x2);
          let tolerance = if r = 1 then 0.09 else 0.15 in
          checkb
            (Printf.sprintf "r=%d rate=%g: sim %.3f vs model %.3f" r x1 sim_v model_v)
            true
            (Float.abs (sim_v -. model_v) < tolerance))
        sim.Figures.points model.Figures.points)
    [ 1; 2 ];
  (* Replication still helps in the simulator. *)
  let last l = List.nth l (List.length l - 1) in
  let sim1 = snd (last (find "sim goodput r=1").Figures.points) in
  let sim2 = snd (last (find "sim goodput r=2").Figures.points) in
  checkb "r=2 beats r=1 under churn" true (sim2 > sim1)

let test_sec7_baseline () =
  let fig = Figures.sec7_baseline ~n:2000 ~seed:3L in
  let measured =
    List.find (fun s -> s.Figures.label = "measured") fig.Figures.series
  in
  (match measured.Figures.points with
  | [ (n, secs) ] ->
    checkb "n recorded" true (n = 2000.);
    (* The plaintext engine is fast: well under a millisecond per
       vertex. *)
    checkb "fast per vertex" true (secs /. n < 1e-3)
  | _ -> Alcotest.fail "unexpected points");
  checkb "notes mention the paper's 5 s" true
    (List.exists (fun n -> String.length n > 0) fig.Figures.notes)

let () =
  Alcotest.run "mycelium-costmodel"
    [
      ( "anchors",
        [
          Alcotest.test_case "ciphertext ~4.3MB" `Quick test_ciphertext_size;
          Alcotest.test_case "Fig 6 Cq" `Quick test_fig6_cq;
          Alcotest.test_case "§6.4 bandwidth" `Quick test_sec6_4_bandwidth_anchors;
          Alcotest.test_case "bandwidth scales with Cq" `Quick test_bandwidth_scales_with_cq;
          Alcotest.test_case "Fig 9a aggregator traffic" `Quick test_fig9a_anchor;
          Alcotest.test_case "Fig 9b cores shape" `Quick test_fig9b_shape;
          Alcotest.test_case "Fig 8a privacy failure" `Quick test_fig8a_shape;
          Alcotest.test_case "Fig 8b liveness" `Quick test_fig8b_shape;
          Alcotest.test_case "§6.5 committee costs" `Quick test_sec6_5_anchors;
          Alcotest.test_case "key distribution gap (§4.2)" `Quick test_key_distribution_gap;
          Alcotest.test_case "§6.4 device compute" `Quick test_device_compute;
        ] );
      ( "figures",
        [
          Alcotest.test_case "all render" `Quick test_figures_render;
          Alcotest.test_case "Fig 5 Monte Carlo vs model" `Slow test_fig5_monte_carlo_agrees;
          Alcotest.test_case "§7 plaintext baseline" `Quick test_sec7_baseline;
        ] );
    ]
