test/test_bgv.ml: Alcotest Array Bytes Hashtbl Int64 Lazy List Mycelium_bgv Mycelium_math Mycelium_util Printf QCheck QCheck_alcotest
