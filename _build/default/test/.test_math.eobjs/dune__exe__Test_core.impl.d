test/test_core.ml: Alcotest Array Float Hashtbl Int64 Lazy List Mycelium_baseline Mycelium_bgv Mycelium_core Mycelium_graph Mycelium_mixnet Mycelium_query Mycelium_util Mycelium_zkp Printf
