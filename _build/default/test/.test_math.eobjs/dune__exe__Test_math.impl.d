test/test_math.ml: Alcotest Array Bytes Float Int64 Lazy List Mycelium_math Mycelium_util QCheck QCheck_alcotest
