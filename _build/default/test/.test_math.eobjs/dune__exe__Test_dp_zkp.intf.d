test/test_dp_zkp.mli:
