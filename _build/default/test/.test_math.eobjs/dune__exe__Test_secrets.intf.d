test/test_secrets.mli:
