test/test_crypto.ml: Alcotest Array Bytes Char Int64 Lazy List Mycelium_crypto Mycelium_math Mycelium_util Printf QCheck QCheck_alcotest String
