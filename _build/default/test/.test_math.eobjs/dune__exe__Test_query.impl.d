test/test_query.ml: Alcotest Array Lazy List Mycelium_bgv Mycelium_graph Mycelium_query Mycelium_util QCheck QCheck_alcotest
