test/test_mixnet.ml: Alcotest Array Bytes Float Int64 List Mycelium_crypto Mycelium_mixnet Mycelium_util QCheck QCheck_alcotest
