test/test_dp_zkp.ml: Alcotest Array Float Lazy List Mycelium_bgv Mycelium_dp Mycelium_util Mycelium_zkp Printf
