test/test_costmodel.ml: Alcotest Float List Mycelium_bgv Mycelium_costmodel Mycelium_util Printf String
