test/test_mixnet.mli:
