test/test_secrets.ml: Alcotest Array Bytes Int64 Lazy List Mycelium_bgv Mycelium_math Mycelium_secrets Mycelium_util Printf QCheck QCheck_alcotest
