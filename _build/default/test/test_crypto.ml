(* Tests for mycelium_crypto: SHA-256/HMAC/HKDF against FIPS/RFC
   vectors, ChaCha20/Poly1305/AEAD against RFC 8439 vectors, Merkle
   trees, and the RSA-style PEnc. *)

module Rng = Mycelium_util.Rng
module Hex = Mycelium_util.Hex
module Sha256 = Mycelium_crypto.Sha256
module Chacha20 = Mycelium_crypto.Chacha20
module Poly1305 = Mycelium_crypto.Poly1305
module Aead = Mycelium_crypto.Aead
module Merkle = Mycelium_crypto.Merkle
module Rsa = Mycelium_crypto.Rsa

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_hex name expected b = Alcotest.(check string) name expected (Hex.encode b)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* SHA-256                                                             *)
(* ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_string (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* Chunked update must agree with one-shot for many split points. *)
  let data = Bytes.of_string (String.init 1000 (fun i -> Char.chr (i mod 256))) in
  let oneshot = Sha256.digest data in
  List.iter
    (fun split ->
      let ctx = Sha256.init () in
      Sha256.update ctx (Bytes.sub data 0 split);
      Sha256.update ctx (Bytes.sub data split (1000 - split));
      checkb (Printf.sprintf "split at %d" split) true (Bytes.equal oneshot (Sha256.finalize ctx)))
    [ 0; 1; 63; 64; 65; 127; 128; 500; 999; 1000 ]

let test_sha256_double_finalize () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "second finalize rejected"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let test_hmac_rfc4231 () =
  check_hex "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hmac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There"));
  check_hex "case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hmac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?"));
  (* Case 6: key longer than a block gets hashed first. *)
  check_hex "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.hmac ~key:(Bytes.make 131 '\xaa')
       (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hkdf_rfc5869 () =
  let ikm = Bytes.make 22 '\x0b' in
  let salt = Hex.decode "000102030405060708090a0b0c" in
  let info = "\xf0\xf1\xf2\xf3\xf4\xf5\xf6\xf7\xf8\xf9" in
  check_hex "test case 1"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Sha256.hkdf ~salt ~ikm ~info ~length:42 ())

(* ------------------------------------------------------------------ *)
(* ChaCha20 / Poly1305 / AEAD                                          *)
(* ------------------------------------------------------------------ *)

let rfc_key = Hex.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

let test_chacha20_block_vector () =
  (* RFC 8439 §2.3.2 *)
  let nonce = Hex.decode "000000090000004a00000000" in
  check_hex "keystream block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Chacha20.block ~key:rfc_key ~nonce ~counter:1)

let test_chacha20_encrypt_vector () =
  (* RFC 8439 §2.4.2 *)
  let nonce = Hex.decode "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  check_hex "ciphertext"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
    (Chacha20.encrypt ~key:rfc_key ~nonce ~counter:1 (Bytes.of_string plaintext))

let test_chacha20_roundtrip () =
  let rng = Rng.create 2L in
  let key = Rng.bytes rng 32 and nonce = Rng.bytes rng 12 in
  for _ = 1 to 20 do
    let msg = Rng.bytes rng (Rng.int rng 500) in
    let ct = Chacha20.encrypt ~key ~nonce msg in
    checkb "decrypt inverts" true (Bytes.equal msg (Chacha20.encrypt ~key ~nonce ct))
  done

let test_poly1305_vector () =
  (* RFC 8439 §2.5.2 *)
  let key = Hex.decode "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  check_hex "tag" "a8061dc1305136c6c22b8baf0c0127a9"
    (Poly1305.mac ~key (Bytes.of_string "Cryptographic Forum Research Group"))

let test_poly1305_verify () =
  let key = Hex.decode "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  let msg = Bytes.of_string "Cryptographic Forum Research Group" in
  let tag = Poly1305.mac ~key msg in
  checkb "valid tag accepted" true (Poly1305.verify ~key ~tag msg);
  let bad = Bytes.copy tag in
  Bytes.set_uint8 bad 0 (Bytes.get_uint8 bad 0 lxor 1);
  checkb "flipped tag rejected" false (Poly1305.verify ~key ~tag:bad msg);
  checkb "wrong length rejected" false (Poly1305.verify ~key ~tag:(Bytes.create 8) msg)

let test_aead_rfc8439 () =
  (* RFC 8439 §2.8.2 *)
  let key = Hex.decode "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f" in
  let nonce = Hex.decode "070000004041424344454647" in
  let aad = Hex.decode "50515253c0c1c2c3c4c5c6c7" in
  let plaintext =
    Bytes.of_string
      "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let sealed = Aead.seal_nonce ~key ~nonce ~aad plaintext in
  let n = Bytes.length sealed in
  check_hex "tag" "1ae10b594f09e26a7e902ecbd0600691" (Bytes.sub sealed (n - 16) 16);
  check_hex "ciphertext prefix" "d31a8d34648e60db7b86afbc53ef7ec2"
    (Bytes.sub sealed 0 16);
  match Aead.open_nonce ~key ~nonce ~aad sealed with
  | Some pt -> checkb "roundtrip" true (Bytes.equal pt plaintext)
  | None -> Alcotest.fail "AEAD open failed"

let test_aead_tamper_detection () =
  let rng = Rng.create 3L in
  let key = Rng.bytes rng 32 in
  let msg = Bytes.of_string "are you ill?" in
  let sealed = Aead.seal ~key ~round:7 msg in
  (match Aead.open_ ~key ~round:7 sealed with
  | Some pt -> checkb "roundtrip" true (Bytes.equal pt msg)
  | None -> Alcotest.fail "open failed");
  (* Any bit flip must be rejected (existential unforgeability in the
     §3.5 dummy-attack discussion relies on this). *)
  for i = 0 to Bytes.length sealed - 1 do
    let bad = Bytes.copy sealed in
    Bytes.set_uint8 bad i (Bytes.get_uint8 bad i lxor 0x40);
    checkb "tampered rejected" true (Aead.open_ ~key ~round:7 bad = None)
  done;
  (* Wrong round = wrong nonce = rejection. *)
  checkb "wrong round rejected" true (Aead.open_ ~key ~round:8 sealed = None)

let prop_aead_roundtrip =
  qtest "aead seal/open roundtrip" QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 300)) small_nat)
    (fun (msg, round) ->
      let key = Sha256.digest_string "fixed test key" in
      let sealed = Aead.seal ~key ~round (Bytes.of_string msg) in
      match Aead.open_ ~key ~round sealed with
      | Some pt -> Bytes.to_string pt = msg
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Merkle                                                              *)
(* ------------------------------------------------------------------ *)

let leaves_of_n n = Array.init n (fun i -> Bytes.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_all_proofs_verify () =
  List.iter
    (fun n ->
      let leaves = leaves_of_n n in
      let t = Merkle.build leaves in
      checki "leaf count" n (Merkle.leaf_count t);
      for i = 0 to n - 1 do
        let proof = Merkle.prove t i in
        checkb
          (Printf.sprintf "n=%d i=%d" n i)
          true
          (Merkle.verify ~root:(Merkle.root t) ~leaf:leaves.(i) proof)
      done)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33; 100 ]

let test_merkle_wrong_leaf_rejected () =
  let leaves = leaves_of_n 10 in
  let t = Merkle.build leaves in
  let proof = Merkle.prove t 3 in
  checkb "wrong leaf" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:(Bytes.of_string "forged") proof);
  (* A proof for index 3 must not verify for leaf 4's content. *)
  checkb "leaf/index mismatch" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:leaves.(4) proof)

let test_merkle_wrong_index_rejected () =
  (* The positional check: same sibling hashes, different claimed index.
     This is what lets devices audit M1 lookups (§3.3). *)
  let leaves = leaves_of_n 8 in
  let t = Merkle.build leaves in
  let proof = Merkle.prove t 3 in
  let forged = { proof with Merkle.index = 5 } in
  checkb "index tamper" false (Merkle.verify ~root:(Merkle.root t) ~leaf:leaves.(3) forged)

let test_merkle_tampered_sibling_rejected () =
  let leaves = leaves_of_n 16 in
  let t = Merkle.build leaves in
  let proof = Merkle.prove t 7 in
  let forged =
    { proof with Merkle.siblings = List.map (fun _ -> Merkle.empty_hash) proof.Merkle.siblings }
  in
  checkb "sibling tamper" false (Merkle.verify ~root:(Merkle.root t) ~leaf:leaves.(7) forged)

let test_merkle_root_depends_on_all_leaves () =
  let leaves = leaves_of_n 20 in
  let r1 = Merkle.root (Merkle.build leaves) in
  leaves.(19) <- Bytes.of_string "changed";
  let r2 = Merkle.root (Merkle.build leaves) in
  checkb "root changed" false (Bytes.equal r1 r2)

let test_merkle_depth () =
  checki "1 leaf" 0 (Merkle.depth (Merkle.build (leaves_of_n 1)));
  checki "2 leaves" 1 (Merkle.depth (Merkle.build (leaves_of_n 2)));
  checki "5 leaves" 3 (Merkle.depth (Merkle.build (leaves_of_n 5)));
  checki "8 leaves" 3 (Merkle.depth (Merkle.build (leaves_of_n 8)))

let prop_merkle_random =
  qtest "random trees verify" QCheck.(int_range 1 64) (fun n ->
      let rng = Rng.create (Int64.of_int (n * 7919)) in
      let leaves = Array.init n (fun _ -> Rng.bytes rng 24) in
      let t = Merkle.build leaves in
      let i = Rng.int rng n in
      Merkle.verify ~root:(Merkle.root t) ~leaf:leaves.(i) (Merkle.prove t i))

(* ------------------------------------------------------------------ *)
(* RSA                                                                 *)
(* ------------------------------------------------------------------ *)

let shared_keypair = lazy (Rsa.generate (Rng.create 1234L) ~bits:512)

let test_rsa_roundtrip () =
  let pk, sk = Lazy.force shared_keypair in
  let rng = Rng.create 9L in
  for _ = 1 to 10 do
    let msg = Rng.bytes rng (1 + Rng.int rng (Rsa.max_plaintext pk)) in
    match Rsa.decrypt sk (Rsa.encrypt rng pk msg) with
    | Some pt -> checkb "roundtrip" true (Bytes.equal pt msg)
    | None -> Alcotest.fail "decrypt failed"
  done

let test_rsa_randomized_padding () =
  let pk, _ = Lazy.force shared_keypair in
  let rng = Rng.create 10L in
  let msg = Bytes.of_string "symmetric key material.........." in
  let c1 = Rsa.encrypt rng pk msg and c2 = Rsa.encrypt rng pk msg in
  checkb "same message encrypts differently" false (Bytes.equal c1 c2)

let test_rsa_tamper () =
  let pk, sk = Lazy.force shared_keypair in
  let rng = Rng.create 11L in
  let ct = Rsa.encrypt rng pk (Bytes.of_string "hello") in
  let bad = Bytes.copy ct in
  Bytes.set_uint8 bad (Bytes.length bad - 1) (Bytes.get_uint8 bad (Bytes.length bad - 1) lxor 1);
  (* Either padding fails (None) or the plaintext differs. *)
  (match Rsa.decrypt sk bad with
  | None -> ()
  | Some pt -> checkb "tampered differs" false (Bytes.equal pt (Bytes.of_string "hello")));
  checkb "wrong length rejected" true (Rsa.decrypt sk (Bytes.create 7) = None)

let test_rsa_message_too_long () =
  let pk, _ = Lazy.force shared_keypair in
  let rng = Rng.create 12L in
  Alcotest.check_raises "too long" (Invalid_argument "Rsa.encrypt: message too long") (fun () ->
      ignore (Rsa.encrypt rng pk (Bytes.create (Rsa.max_plaintext pk + 1))))

let test_rsa_pub_serialization () =
  let pk, _ = Lazy.force shared_keypair in
  match Rsa.pub_of_bytes (Rsa.pub_to_bytes pk) with
  | Some pk' ->
    checkb "roundtrip" true
      (Mycelium_math.Bigint.equal pk.Rsa.n pk'.Rsa.n
      && Mycelium_math.Bigint.equal pk.Rsa.e pk'.Rsa.e);
    checkb "fingerprint stable" true (Bytes.equal (Rsa.fingerprint pk) (Rsa.fingerprint pk'))
  | None -> Alcotest.fail "deserialize failed"

let test_rsa_fingerprints_distinct () =
  let rng = Rng.create 77L in
  let pk1, _ = Rsa.generate rng ~bits:256 in
  let pk2, _ = Rsa.generate rng ~bits:256 in
  checkb "distinct keys distinct pseudonyms" false
    (Bytes.equal (Rsa.fingerprint pk1) (Rsa.fingerprint pk2))

let () =
  Alcotest.run "mycelium-crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
          Alcotest.test_case "double finalize" `Quick test_sha256_double_finalize;
          Alcotest.test_case "HMAC RFC 4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "HKDF RFC 5869" `Quick test_hkdf_rfc5869;
        ] );
      ( "chacha20-poly1305",
        [
          Alcotest.test_case "block vector" `Quick test_chacha20_block_vector;
          Alcotest.test_case "encrypt vector" `Quick test_chacha20_encrypt_vector;
          Alcotest.test_case "roundtrip" `Quick test_chacha20_roundtrip;
          Alcotest.test_case "poly1305 vector" `Quick test_poly1305_vector;
          Alcotest.test_case "poly1305 verify" `Quick test_poly1305_verify;
          Alcotest.test_case "AEAD RFC 8439" `Quick test_aead_rfc8439;
          Alcotest.test_case "AEAD tamper detection" `Quick test_aead_tamper_detection;
          prop_aead_roundtrip;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "all proofs verify" `Quick test_merkle_all_proofs_verify;
          Alcotest.test_case "wrong leaf rejected" `Quick test_merkle_wrong_leaf_rejected;
          Alcotest.test_case "wrong index rejected" `Quick test_merkle_wrong_index_rejected;
          Alcotest.test_case "tampered sibling rejected" `Quick test_merkle_tampered_sibling_rejected;
          Alcotest.test_case "root depends on leaves" `Quick test_merkle_root_depends_on_all_leaves;
          Alcotest.test_case "depth" `Quick test_merkle_depth;
          prop_merkle_random;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "randomized padding" `Quick test_rsa_randomized_padding;
          Alcotest.test_case "tamper" `Quick test_rsa_tamper;
          Alcotest.test_case "message too long" `Quick test_rsa_message_too_long;
          Alcotest.test_case "pubkey serialization" `Quick test_rsa_pub_serialization;
          Alcotest.test_case "fingerprints distinct" `Quick test_rsa_fingerprints_distinct;
        ] );
    ]
