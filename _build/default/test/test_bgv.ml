(* Tests for mycelium_bgv: correctness of enc/dec, the homomorphic
   operations and the §4.1 histogram encoding, relinearization, noise
   budgets, and serialization. *)

module Rng = Mycelium_util.Rng
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext
module Bgv = Mycelium_bgv.Bgv
module Rq = Mycelium_math.Rq

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let pt_testable = Alcotest.testable Plaintext.pp Plaintext.equal

let ctx_small = lazy (Bgv.make_ctx Params.test_small)
let ctx_medium = lazy (Bgv.make_ctx Params.test_medium)

let keys_small = lazy (Bgv.keygen (Lazy.force ctx_small) (Rng.create 1000L))
let keys_medium = lazy (Bgv.keygen (Lazy.force ctx_medium) (Rng.create 2000L))

let mono ctx e =
  let p = Bgv.params ctx in
  Plaintext.monomial ~plain_modulus:p.Params.plain_modulus ~degree:p.Params.degree ~exponent:e

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

let test_params_validate () =
  Params.validate Params.test_small;
  Params.validate Params.test_medium;
  Params.validate Params.test_wide;
  Params.validate Params.paper;
  Alcotest.check_raises "bad degree"
    (Invalid_argument "Params: degree must be a power of two >= 2") (fun () ->
      Params.validate { Params.test_small with Params.degree = 100 })

let test_params_paper_ciphertext_size () =
  (* The paper reports ~4.3 MB per (degree-1) ciphertext: 2 components
     x 32768 coefficients x 550+ bits. Our 19x30-bit modulus gives
     ~4.6 MB; same order, as required. *)
  let bytes = Params.ciphertext_bytes Params.paper ~degree:1 in
  checkb "within [4.0 MB, 5.0 MB]" true (bytes >= 4_000_000 && bytes <= 5_000_000);
  checki "modulus bits 570" 570 (Params.modulus_bits Params.paper)

(* ------------------------------------------------------------------ *)
(* Enc/Dec                                                             *)
(* ------------------------------------------------------------------ *)

let test_encrypt_decrypt_roundtrip () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 42L in
  for _ = 1 to 10 do
    let e = Rng.int rng (Bgv.params ctx).Params.degree in
    let ct = Bgv.encrypt_value ctx rng pk e in
    Alcotest.check pt_testable "roundtrip" (mono ctx e) (Bgv.decrypt ctx sk ct)
  done

let test_decrypt_with_wrong_key_garbles () =
  let ctx = Lazy.force ctx_small in
  let _, pk = Lazy.force keys_small in
  let rng = Rng.create 43L in
  let wrong_sk, _ = Bgv.keygen ctx rng in
  let ct = Bgv.encrypt_value ctx rng pk 5 in
  checkb "wrong key gives wrong plaintext" false
    (Plaintext.equal (mono ctx 5) (Bgv.decrypt ctx wrong_sk ct))

let test_ciphertexts_randomized () =
  let ctx = Lazy.force ctx_small in
  let _, pk = Lazy.force keys_small in
  let rng = Rng.create 44L in
  let c1 = Bgv.encrypt_value ctx rng pk 5 and c2 = Bgv.encrypt_value ctx rng pk 5 in
  checkb "same value, different ciphertexts" false
    (Bytes.equal (Bgv.serialize c1) (Bgv.serialize c2))

let test_fresh_noise_budget_positive () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 45L in
  let ct = Bgv.encrypt_value ctx rng pk 1 in
  let budget = Bgv.noise_budget ctx sk ct in
  checkb "fresh budget well positive" true (budget > 40)

(* ------------------------------------------------------------------ *)
(* Homomorphic operations                                              *)
(* ------------------------------------------------------------------ *)

let test_hom_addition_bins () =
  (* §4.1: summing Enc(x^0+x^1) and Enc(x^0+x^2) gives 2x^0+x^1+x^2. *)
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 46L in
  let t = (Bgv.params ctx).Params.plain_modulus in
  let pt1 = Plaintext.create ~plain_modulus:t (Array.init 2 (fun _ -> 1)) in
  let pt2 = Plaintext.create ~plain_modulus:t [| 1; 0; 1 |] in
  let sum = Bgv.add (Bgv.encrypt ctx rng pk pt1) (Bgv.encrypt ctx rng pk pt2) in
  let decrypted = Bgv.decrypt ctx sk sum in
  checki "bin0" 2 (Plaintext.coeff decrypted 0);
  checki "bin1" 1 (Plaintext.coeff decrypted 1);
  checki "bin2" 1 (Plaintext.coeff decrypted 2);
  checki "bin3" 0 (Plaintext.coeff decrypted 3)

let test_hom_multiplication_exponents () =
  (* §4.1: Enc(x^a) * Enc(x^b) = Enc(x^(a+b)). *)
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 47L in
  let ct = Bgv.mul (Bgv.encrypt_value ctx rng pk 7) (Bgv.encrypt_value ctx rng pk 13) in
  checki "degree grows to 2" 2 (Bgv.degree ct);
  Alcotest.check pt_testable "x^7 * x^13 = x^20" (mono ctx 20) (Bgv.decrypt ctx sk ct)

let test_hom_mul_chain () =
  (* A neighborhood aggregation: product of several Enc(x^{b_i}) equals
     Enc(x^{sum b_i}); degree grows by one per factor (deferred
     relinearization as in §5). *)
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 48L in
  let values = [ 1; 0; 1; 1; 0; 1 ] in
  let cts = List.map (Bgv.encrypt_value ctx rng pk) values in
  let prod = Bgv.mul_many cts in
  checki "degree = number of factors" (List.length values) (Bgv.degree prod);
  let expected = List.fold_left ( + ) 0 values in
  Alcotest.check pt_testable "product sums exponents" (mono ctx expected)
    (Bgv.decrypt ctx sk prod);
  checkb "budget still positive" true (Bgv.noise_budget ctx sk prod > 0)

let test_hom_add_then_mul () =
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 49L in
  (* (x^2 aggregated from two vertices each) then global add. *)
  let local1 = Bgv.mul (Bgv.encrypt_value ctx rng pk 1) (Bgv.encrypt_value ctx rng pk 1) in
  let local2 = Bgv.mul (Bgv.encrypt_value ctx rng pk 0) (Bgv.encrypt_value ctx rng pk 1) in
  let global = Bgv.add local1 local2 in
  let pt = Bgv.decrypt ctx sk global in
  checki "bin 2 (two infected)" 1 (Plaintext.coeff pt 2);
  checki "bin 1 (one infected)" 1 (Plaintext.coeff pt 1);
  checki "bin 0" 0 (Plaintext.coeff pt 0)

let test_hom_add_plain_sub_plain () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 50L in
  let t = (Bgv.params ctx).Params.plain_modulus in
  let ct = Bgv.encrypt_value ctx rng pk 3 in
  let two = Plaintext.create ~plain_modulus:t [| 2 |] in
  let ct' = Bgv.add_plain ctx ct two in
  let pt = Bgv.decrypt ctx sk ct' in
  checki "x^3 + 2 constant term" 2 (Plaintext.coeff pt 0);
  checki "x^3 + 2 cubic term" 1 (Plaintext.coeff pt 3);
  let ct'' = Bgv.sub_plain ctx ct' two in
  Alcotest.check pt_testable "sub_plain undoes add_plain" (mono ctx 3) (Bgv.decrypt ctx sk ct'')

let test_hom_mul_plain () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 51L in
  let t = (Bgv.params ctx).Params.plain_modulus in
  let ct = Bgv.encrypt_value ctx rng pk 4 in
  (* Multiply by plaintext x^10: the GROUP BY bin shift (§4.5). *)
  let shift = Plaintext.monomial ~plain_modulus:t ~degree:(Bgv.params ctx).Params.degree ~exponent:10 in
  let shifted = Bgv.mul_plain ctx ct shift in
  checki "degree unchanged by plain mult" 1 (Bgv.degree shifted);
  Alcotest.check pt_testable "x^4 shifted to x^14" (mono ctx 14) (Bgv.decrypt ctx sk shifted)

let test_enc_zero_polynomial_neutral () =
  (* Dropped-out or predicate-failing vertices contribute Enc(x^0) in
     products and Enc(0) in sums; check both neutralities. *)
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 52L in
  let ct5 = Bgv.encrypt_value ctx rng pk 5 in
  let ct_x0 = Bgv.encrypt_value ctx rng pk 0 in
  Alcotest.check pt_testable "x^0 neutral for products" (mono ctx 5)
    (Bgv.decrypt ctx sk (Bgv.mul ct5 ct_x0));
  let ct_zero = Bgv.encrypt_zero_polynomial ctx rng pk in
  Alcotest.check pt_testable "0 neutral for sums" (mono ctx 5)
    (Bgv.decrypt ctx sk (Bgv.add ct5 ct_zero));
  Alcotest.check pt_testable "0 annihilates products"
    (Plaintext.zero ~plain_modulus:(Bgv.plain_modulus ctx) ~degree:4)
    (Bgv.decrypt ctx sk (Bgv.mul ct5 ct_zero))

let test_sub () =
  (* §4.5 cross-column trick subtracts Enc(l - 1) from a sum. *)
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 53L in
  let t = Bgv.plain_modulus ctx in
  (* Enc(2 + x^m) - Enc(2) = Enc(x^m) *)
  let pt_sum = Plaintext.create ~plain_modulus:t [| 2; 0; 0; 0; 0; 0; 1 |] in
  let pt_two = Plaintext.create ~plain_modulus:t [| 2 |] in
  let diff = Bgv.sub (Bgv.encrypt ctx rng pk pt_sum) (Bgv.encrypt ctx rng pk pt_two) in
  Alcotest.check pt_testable "difference" (mono ctx 6) (Bgv.decrypt ctx sk diff)

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let prop_homomorphism =
  (* For random small exponent lists: the product of encryptions
     decrypts to x^(sum), and the sum of encryptions to the coefficient
     multiset — the §4.1 encoding as one property. *)
  qtest "hom product/sum match plaintext semantics"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (int_range 0 20))
    (fun values ->
      let ctx = Lazy.force ctx_medium in
      let sk, pk = Lazy.force keys_medium in
      let rng = Rng.create (Int64.of_int (Hashtbl.hash values)) in
      let cts = List.map (Bgv.encrypt_value ctx rng pk) values in
      let product = Bgv.mul_many cts in
      let sum = List.fold_left Bgv.add (List.hd cts) (List.tl cts) in
      let total = List.fold_left ( + ) 0 values in
      let prod_ok = Plaintext.equal (Bgv.decrypt ctx sk product) (mono ctx total) in
      let decrypted_sum = Bgv.decrypt ctx sk sum in
      let sum_ok =
        List.for_all
          (fun v ->
            Plaintext.coeff decrypted_sum v
            = List.length (List.filter (fun x -> x = v) values))
          (List.sort_uniq compare values)
      in
      prod_ok && sum_ok)

let prop_serialize_roundtrip =
  qtest "serialize/deserialize identity" QCheck.(int_range 0 50) (fun e ->
      let ctx = Lazy.force ctx_small in
      let _, pk = Lazy.force keys_small in
      let rng = Rng.create (Int64.of_int (e + 999)) in
      let ct = Bgv.encrypt_value ctx rng pk e in
      match Bgv.deserialize ctx (Bgv.serialize ct) with
      | Some ct' -> Bytes.equal (Bgv.serialize ct) (Bgv.serialize ct')
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Relinearization                                                     *)
(* ------------------------------------------------------------------ *)

let test_relinearize_degree2 () =
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 54L in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 3) (Bgv.encrypt_value ctx rng pk 4) in
  let lin = Bgv.relinearize ctx rk prod in
  checki "back to degree 1" 1 (Bgv.degree lin);
  Alcotest.check pt_testable "still decrypts to x^7" (mono ctx 7) (Bgv.decrypt ctx sk lin);
  checkb "budget positive after relin" true (Bgv.noise_budget ctx sk lin > 0)

let test_relinearize_high_degree () =
  (* The aggregator's deferred relinearization (§5): reduce a degree-4
     product to degree 1 in one pass, then threshold-decrypt. *)
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 55L in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:4 in
  let cts = List.map (Bgv.encrypt_value ctx rng pk) [ 1; 1; 0; 1 ] in
  let prod = List.fold_left Bgv.mul (List.hd cts) (List.tl cts) in
  checki "degree 4" 4 (Bgv.degree prod);
  let lin = Bgv.relinearize ctx rk prod in
  checki "degree 1" 1 (Bgv.degree lin);
  Alcotest.check pt_testable "decrypts to x^3" (mono ctx 3) (Bgv.decrypt ctx sk lin)

let test_relinearize_too_high_rejected () =
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 56L in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  let cts = List.map (Bgv.encrypt_value ctx rng pk) [ 1; 1; 1 ] in
  let prod = List.fold_left Bgv.mul (List.hd cts) (List.tl cts) in
  Alcotest.check_raises "degree 3 vs max 2"
    (Invalid_argument "Bgv.relinearize: ciphertext degree exceeds relin key") (fun () ->
      ignore (Bgv.relinearize ctx rk prod))

let test_relin_then_add () =
  (* Global aggregation operates on relinearized degree-1 ciphertexts. *)
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 57L in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  let local v1 v2 =
    Bgv.relinearize ctx rk (Bgv.mul (Bgv.encrypt_value ctx rng pk v1) (Bgv.encrypt_value ctx rng pk v2))
  in
  let sum = Bgv.add (Bgv.add (local 1 1) (local 1 0)) (local 0 0) in
  let pt = Bgv.decrypt ctx sk sum in
  checki "bin 2" 1 (Plaintext.coeff pt 2);
  checki "bin 1" 1 (Plaintext.coeff pt 1);
  checki "bin 0" 1 (Plaintext.coeff pt 0)

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let test_noise_grows_with_mults () =
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 58L in
  let fresh = Bgv.encrypt_value ctx rng pk 1 in
  let b0 = Bgv.noise_budget ctx sk fresh in
  let p1 = Bgv.mul fresh (Bgv.encrypt_value ctx rng pk 1) in
  let b1 = Bgv.noise_budget ctx sk p1 in
  let p2 = Bgv.mul p1 (Bgv.encrypt_value ctx rng pk 1) in
  let b2 = Bgv.noise_budget ctx sk p2 in
  checkb "mult consumes budget" true (b0 > b1 && b1 > b2);
  checkb "estimate is conservative" true
    (Bgv.noise_estimate_bits p2 >= Bgv.noise_estimate_bits p1)

let test_noise_estimate_upper_bounds_actual () =
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 59L in
  let ct = ref (Bgv.encrypt_value ctx rng pk 1) in
  for _ = 1 to 4 do
    ct := Bgv.mul !ct (Bgv.encrypt_value ctx rng pk 1)
  done;
  let actual_noise = float_of_int (Bgv.modulus_bits ctx - 1 - Bgv.noise_budget ctx sk !ct) in
  checkb "estimate >= actual" true (Bgv.noise_estimate_bits !ct >= actual_noise)

(* ------------------------------------------------------------------ *)
(* Modulus switching                                                   *)
(* ------------------------------------------------------------------ *)

let test_mod_switch_fresh () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 70L in
  let small = Bgv.drop_level ctx in
  let sk' = Bgv.project_secret_key small sk in
  for e = 0 to 5 do
    let ct = Bgv.encrypt_value ctx rng pk e in
    let switched = Bgv.mod_switch small ct in
    Alcotest.check pt_testable "plaintext preserved" (mono ctx e) (Bgv.decrypt small sk' switched)
  done

let test_mod_switch_product () =
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 71L in
  let small = Bgv.drop_level ctx in
  let sk' = Bgv.project_secret_key small sk in
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 4) (Bgv.encrypt_value ctx rng pk 6) in
  let switched = Bgv.mod_switch small prod in
  checki "degree preserved" 2 (Bgv.degree switched);
  Alcotest.check pt_testable "x^10 preserved" (mono ctx 10) (Bgv.decrypt small sk' switched)

let test_mod_switch_reduces_relative_noise () =
  (* After a multiplication, switching divides the noise by the dropped
     prime but the modulus only shrinks by the same factor: the noise
     floor makes the *relative* budget recover versus a second
     multiplication without switching. Check the mechanism directly:
     absolute noise (bits) drops by roughly the prime size. *)
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 72L in
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 1) (Bgv.encrypt_value ctx rng pk 1) in
  let noise_before = Bgv.modulus_bits ctx - 1 - Bgv.noise_budget ctx sk prod in
  let small = Bgv.drop_level ctx in
  let sk' = Bgv.project_secret_key small sk in
  let switched = Bgv.mod_switch small prod in
  let noise_after = Bgv.modulus_bits small - 1 - Bgv.noise_budget small sk' switched in
  (* Net reduction ~ prime_bits - t_bits: the rescale divides by the
     28-bit prime, the plaintext-scale correction multiplies back by up
     to t (16 bits here). *)
  checkb
    (Printf.sprintf "noise dropped (%d -> %d bits)" noise_before noise_after)
    true
    (noise_after < noise_before - 6)

let test_mod_switch_ladder () =
  (* The leveled pattern: multiply, switch, multiply a switched-down
     fresh ciphertext, switch, ... down to the last level. *)
  let ctx = Lazy.force ctx_medium in
  let sk, pk = Lazy.force keys_medium in
  let rng = Rng.create 73L in
  let levels = ref ctx and acc = ref (Bgv.encrypt_value ctx rng pk 1) in
  let fresh_at level_ctx =
    (* Fresh ciphertexts are encrypted at the top and switched down. *)
    let ct = ref (Bgv.encrypt_value ctx rng pk 1) in
    let cur = ref ctx in
    while Bgv.modulus_bits !cur > Bgv.modulus_bits level_ctx do
      cur := Bgv.drop_level !cur;
      ct := Bgv.mod_switch !cur !ct
    done;
    !ct
  in
  let depth = 2 in
  for _ = 1 to depth do
    acc := Bgv.mul !acc (fresh_at !levels);
    levels := Bgv.drop_level !levels;
    acc := Bgv.mod_switch !levels !acc
  done;
  let sk' = Bgv.project_secret_key !levels sk in
  checkb "budget still positive at the bottom" true (Bgv.noise_budget !levels sk' !acc > 0);
  Alcotest.check pt_testable "x^(depth+1) decrypts" (mono ctx (depth + 1))
    (Bgv.decrypt !levels sk' !acc)

let test_mod_switch_level_mismatch () =
  let ctx = Lazy.force ctx_small in
  let _, pk = Lazy.force keys_small in
  let rng = Rng.create 74L in
  let ct = Bgv.encrypt_value ctx rng pk 1 in
  let two_down = Bgv.drop_level (Bgv.drop_level ctx) in
  Alcotest.check_raises "two levels at once rejected"
    (Invalid_argument "Bgv.mod_switch: ciphertext must live one level above the target context")
    (fun () -> ignore (Bgv.mod_switch two_down ct))

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let test_serialize_roundtrip () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 60L in
  let ct = Bgv.mul (Bgv.encrypt_value ctx rng pk 2) (Bgv.encrypt_value ctx rng pk 3) in
  match Bgv.deserialize ctx (Bgv.serialize ct) with
  | Some ct' ->
    checki "degree preserved" (Bgv.degree ct) (Bgv.degree ct');
    Alcotest.check pt_testable "decrypts the same" (Bgv.decrypt ctx sk ct) (Bgv.decrypt ctx sk ct')
  | None -> Alcotest.fail "deserialize failed"

let test_deserialize_garbage () =
  let ctx = Lazy.force ctx_small in
  checkb "empty" true (Bgv.deserialize ctx Bytes.empty = None);
  checkb "truncated" true (Bgv.deserialize ctx (Bytes.create 10) = None);
  let ct = Bgv.encrypt_value ctx (Rng.create 61L) (snd (Lazy.force keys_small)) 1 in
  let b = Bgv.serialize ct in
  checkb "truncated real ciphertext" true
    (Bgv.deserialize ctx (Bytes.sub b 0 (Bytes.length b - 5)) = None)

(* ------------------------------------------------------------------ *)
(* Threshold-decryption hooks                                          *)
(* ------------------------------------------------------------------ *)

let test_linear_eval_matches_decrypt () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 62L in
  let ct = Bgv.encrypt_value ctx rng pk 9 in
  let v = Bgv.linear_eval ct ~s:(Bgv.secret_poly sk) in
  Alcotest.check pt_testable "decode_noisy = decrypt" (Bgv.decrypt ctx sk ct)
    (Bgv.decode_noisy ctx v)

let test_linear_eval_requires_degree1 () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 63L in
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 1) (Bgv.encrypt_value ctx rng pk 1) in
  Alcotest.check_raises "degree 2 rejected"
    (Invalid_argument "Bgv.linear_eval: ciphertext must be degree 1") (fun () ->
      ignore (Bgv.linear_eval prod ~s:(Bgv.secret_poly sk)))

let test_secret_key_of_poly () =
  let ctx = Lazy.force ctx_small in
  let sk, pk = Lazy.force keys_small in
  let rng = Rng.create 64L in
  let sk' = Bgv.secret_key_of_poly ctx (Bgv.secret_poly sk) in
  let ct = Bgv.encrypt_value ctx rng pk 7 in
  Alcotest.check pt_testable "reconstructed key decrypts" (mono ctx 7) (Bgv.decrypt ctx sk' ct)

let () =
  Alcotest.run "mycelium-bgv"
    [
      ( "params",
        [
          Alcotest.test_case "validate" `Quick test_params_validate;
          Alcotest.test_case "paper ciphertext ~4.3MB" `Quick test_params_paper_ciphertext_size;
        ] );
      ( "enc-dec",
        [
          Alcotest.test_case "roundtrip" `Quick test_encrypt_decrypt_roundtrip;
          Alcotest.test_case "wrong key garbles" `Quick test_decrypt_with_wrong_key_garbles;
          Alcotest.test_case "probabilistic encryption" `Quick test_ciphertexts_randomized;
          Alcotest.test_case "fresh noise budget" `Quick test_fresh_noise_budget_positive;
        ] );
      ( "homomorphic",
        [
          Alcotest.test_case "addition aggregates bins" `Quick test_hom_addition_bins;
          Alcotest.test_case "multiplication adds exponents" `Quick test_hom_multiplication_exponents;
          Alcotest.test_case "multiplication chain" `Quick test_hom_mul_chain;
          Alcotest.test_case "local mult + global add" `Quick test_hom_add_then_mul;
          Alcotest.test_case "add/sub plain" `Quick test_hom_add_plain_sub_plain;
          Alcotest.test_case "mul plain (GROUP BY shift)" `Quick test_hom_mul_plain;
          Alcotest.test_case "zero encodings are neutral" `Quick test_enc_zero_polynomial_neutral;
          Alcotest.test_case "ciphertext subtraction" `Quick test_sub;
          prop_homomorphism;
          prop_serialize_roundtrip;
        ] );
      ( "relinearization",
        [
          Alcotest.test_case "degree 2" `Quick test_relinearize_degree2;
          Alcotest.test_case "high degree (deferred)" `Quick test_relinearize_high_degree;
          Alcotest.test_case "exceeding key rejected" `Quick test_relinearize_too_high_rejected;
          Alcotest.test_case "relin then aggregate" `Quick test_relin_then_add;
        ] );
      ( "noise",
        [
          Alcotest.test_case "grows with multiplications" `Quick test_noise_grows_with_mults;
          Alcotest.test_case "estimate upper-bounds actual" `Quick test_noise_estimate_upper_bounds_actual;
        ] );
      ( "mod-switch",
        [
          Alcotest.test_case "fresh ciphertexts" `Quick test_mod_switch_fresh;
          Alcotest.test_case "products" `Quick test_mod_switch_product;
          Alcotest.test_case "noise reduction" `Quick test_mod_switch_reduces_relative_noise;
          Alcotest.test_case "leveled ladder" `Quick test_mod_switch_ladder;
          Alcotest.test_case "level mismatch rejected" `Quick test_mod_switch_level_mismatch;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_deserialize_garbage;
        ] );
      ( "threshold-hooks",
        [
          Alcotest.test_case "linear_eval matches decrypt" `Quick test_linear_eval_matches_decrypt;
          Alcotest.test_case "degree-1 requirement" `Quick test_linear_eval_requires_degree1;
          Alcotest.test_case "key from polynomial" `Quick test_secret_key_of_poly;
        ] );
    ]
