(* Tests for mycelium_dp (Laplace mechanism, budget) and mycelium_zkp
   (simulated Groth16 with real constraint checking). *)

module Rng = Mycelium_util.Rng
module Stats = Mycelium_util.Stats
module Dp = Mycelium_dp.Dp
module Zkp = Mycelium_zkp.Zkp
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext
module Bgv = Mycelium_bgv.Bgv

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf name = Alcotest.(check (float 1e-9)) name

(* ------------------------------------------------------------------ *)
(* DP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_sensitivity_bounds () =
  checkf "histo 1-hop" 2.0 (Dp.histo_sensitivity ~neighborhood_bound:1);
  checkf "histo influence 11" 22.0 (Dp.histo_sensitivity ~neighborhood_bound:11);
  checkf "gsum clip [0,10]" 10.0 (Dp.gsum_sensitivity ~clip_lo:0. ~clip_hi:10. ~neighborhood_bound:1);
  checkf "gsum with influence" 50.0 (Dp.gsum_sensitivity ~clip_lo:0. ~clip_hi:10. ~neighborhood_bound:5);
  Alcotest.check_raises "empty clip" (Invalid_argument "Dp.gsum_sensitivity: empty clipping range")
    (fun () -> ignore (Dp.gsum_sensitivity ~clip_lo:1. ~clip_hi:0. ~neighborhood_bound:1))

let test_laplace_scale () =
  (* Lap(s/eps) has stddev sqrt(2) * s / eps. *)
  let rng = Rng.create 1L in
  let s = 2.0 and eps = 0.5 in
  let xs = Array.init 200_000 (fun _ -> Dp.laplace_noise rng ~sensitivity:s ~epsilon:eps) in
  let expected = sqrt 2. *. s /. eps in
  checkb "stddev matches" true (Float.abs (Stats.stddev xs -. expected) /. expected < 0.03);
  checkb "mean near zero" true (Float.abs (Stats.mean xs) < 0.05)

let test_epsilon_infinity_exact () =
  let rng = Rng.create 2L in
  checkf "no noise" 0. (Dp.laplace_noise rng ~sensitivity:5. ~epsilon:Float.infinity);
  let released = Dp.release_histogram rng ~sensitivity:2. ~epsilon:Float.infinity [| 3; 1; 4 |] in
  checkb "exact release" true (released = [| 3.; 1.; 4. |])

let test_release_histogram_noisy () =
  let rng = Rng.create 3L in
  let counts = Array.make 50 100 in
  let released = Dp.release_histogram rng ~sensitivity:2. ~epsilon:1.0 counts in
  (* Bins perturbed but near the truth. *)
  checkb "perturbed" true (Array.exists (fun v -> v <> 100.) released);
  Array.iter (fun v -> checkb "within 12 sigma-ish" true (Float.abs (v -. 100.) < 40.)) released

let test_budget_accounting () =
  let b = Dp.budget_create ~total:1.0 () in
  checkf "full" 1.0 (Dp.budget_remaining b);
  checkb "first query ok" true (Dp.budget_charge b 0.4 = Ok ());
  checkb "second query ok" true (Dp.budget_charge b 0.4 = Ok ());
  checkf "remaining" 0.2 (Dp.budget_remaining b);
  (match Dp.budget_charge b 0.4 with
  | Error (`Exhausted r) -> checkb "reports remaining" true (Float.abs (r -. 0.2) < 1e-9)
  | Ok () -> Alcotest.fail "over-budget query accepted");
  (* Failed charges spend nothing. *)
  checkf "unchanged after refusal" 0.2 (Dp.budget_remaining b);
  checki "history has two entries" 2 (List.length (Dp.budget_history b));
  checkb "exact exhaustion allowed" true (Dp.budget_charge b 0.2 = Ok ())

let test_advanced_composition () =
  (* Advanced composition stretches the budget (§4.4) once the query
     count passes ~2 ln(1/delta): many *small* queries compose
     sublinearly (sqrt(k) instead of k). *)
  let eps_each = 0.01 in
  let queries_under accounting =
    let b = Dp.budget_create ~accounting ~total:1.0 () in
    let n = ref 0 in
    while Dp.budget_charge b eps_each = Ok () && !n < 10_000 do
      incr n
    done;
    !n
  in
  let basic = queries_under Dp.Basic in
  let advanced = queries_under (Dp.Advanced { delta = 1e-6 }) in
  checki "basic fits total/eps queries" 100 basic;
  checkb (Printf.sprintf "advanced fits more (%d > %d)" advanced basic) true (advanced > basic);
  (* The composed epsilon formula itself: k identical queries. *)
  let eps = Dp.composed_epsilon (Dp.Advanced { delta = 1e-6 }) (List.init 50 (fun _ -> 0.1)) in
  let expected = sqrt (2. *. log 1e6 *. 50. *. 0.01) +. (50. *. 0.1 *. (exp 0.1 -. 1.)) in
  checkb "matches Dwork-Roth formula" true (Float.abs (eps -. expected) < 1e-9);
  (* For a single query, advanced is worse (the sqrt term) — the
     crossover is why the paper's default stays Basic. *)
  checkb "single query: basic cheaper" true
    (Dp.composed_epsilon Dp.Basic [ 0.5 ] < Dp.composed_epsilon (Dp.Advanced { delta = 1e-6 }) [ 0.5 ])

let test_above_threshold () =
  let rng = Rng.create 42L in
  (* Far-below probes come back negative (statistically). *)
  let negatives = ref 0 in
  for _ = 1 to 200 do
    let t = Dp.above_threshold_create rng ~sensitivity:1. ~epsilon:1.0 ~threshold:100. in
    match Dp.above_threshold_query t 10. with
    | Ok false -> incr negatives
    | Ok true | Error `Exhausted -> ()
  done;
  checkb "far-below almost always negative" true (!negatives > 190);
  (* Far-above probes trip it. *)
  let positives = ref 0 in
  for _ = 1 to 200 do
    let t = Dp.above_threshold_create rng ~sensitivity:1. ~epsilon:1.0 ~threshold:100. in
    match Dp.above_threshold_query t 200. with
    | Ok true -> incr positives
    | Ok false | Error `Exhausted -> ()
  done;
  checkb "far-above almost always positive" true (!positives > 190);
  (* One positive answer, then exhausted; negatives are free. *)
  let t = Dp.above_threshold_create rng ~sensitivity:1. ~epsilon:1.0 ~threshold:50. in
  let rec probe_until_positive tries =
    if tries = 0 then Alcotest.fail "never tripped"
    else begin
      match Dp.above_threshold_query t (if tries > 95 then 0. else 500.) with
      | Ok false -> probe_until_positive (tries - 1)
      | Ok true -> ()
      | Error `Exhausted -> Alcotest.fail "exhausted before answering"
    end
  in
  probe_until_positive 100;
  checkb "exhausted after the positive" true (Dp.above_threshold_exhausted t);
  checkb "further probes refused" true (Dp.above_threshold_query t 500. = Error `Exhausted)

let test_budget_validation () =
  Alcotest.check_raises "bad total" (Invalid_argument "Dp.budget_create: total must be positive")
    (fun () -> ignore (Dp.budget_create ~total:0. ()));
  let b = Dp.budget_create ~total:1.0 () in
  Alcotest.check_raises "bad epsilon" (Invalid_argument "Dp.budget_charge: epsilon must be positive")
    (fun () -> ignore (Dp.budget_charge b (-1.)))

(* ------------------------------------------------------------------ *)
(* ZKP                                                                 *)
(* ------------------------------------------------------------------ *)

let ctx = lazy (Bgv.make_ctx Params.test_small)
let keys = lazy (Bgv.keygen (Lazy.force ctx) (Rng.create 500L))
let srs = lazy (Zkp.setup (Rng.create 501L))

let mono e =
  let p = Params.test_small in
  Plaintext.monomial ~plain_modulus:p.Params.plain_modulus ~degree:p.Params.degree ~exponent:e

let encrypt_seeded seed pt =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  Bgv.encrypt ctx (Rng.create seed) pk pt

let test_zkp_contribution_roundtrip () =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  let pt = mono 1 in
  let ct = encrypt_seeded 7L pt in
  match Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed:7L ct with
  | Some proof ->
    checkb "verifies" true (Zkp.verify_contribution srs ctx ct proof);
    checki "proof reported size" 192 (Zkp.proof_size_bytes proof)
  | None -> Alcotest.fail "honest prover refused"

let test_zkp_zero_plaintext_admissible () =
  (* Predicate-false contributions are Enc(0) and must be provable. *)
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  let pt = Plaintext.zero ~plain_modulus:(Bgv.plain_modulus ctx) ~degree:16 in
  let ct = encrypt_seeded 8L pt in
  checkb "provable" true (Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed:8L ct <> None)

let test_zkp_bad_plaintext_refused () =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  (* Coefficient 2: a Byzantine device trying to double-count (§4.6). *)
  let pt = Plaintext.create ~plain_modulus:(Bgv.plain_modulus ctx) [| 0; 2 |] in
  let ct = encrypt_seeded 9L pt in
  checkb "no proof for coefficient > 1" true
    (Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed:9L ct = None);
  (* Two non-zero coefficients. *)
  let pt2 = Plaintext.create ~plain_modulus:(Bgv.plain_modulus ctx) [| 1; 1 |] in
  let ct2 = encrypt_seeded 10L pt2 in
  checkb "no proof for two bins" true
    (Zkp.prove_contribution srs ctx pk ~plaintext:pt2 ~seed:10L ct2 = None)

let test_zkp_mismatched_witness_refused () =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  let pt = mono 1 in
  let ct = encrypt_seeded 11L pt in
  (* Claiming a different (admissible) plaintext than what's inside. *)
  checkb "wrong plaintext refused" true
    (Zkp.prove_contribution srs ctx pk ~plaintext:(mono 0) ~seed:11L ct = None);
  (* Right plaintext, wrong randomness. *)
  checkb "wrong seed refused" true
    (Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed:12L ct = None)

let test_zkp_forgery_rejected () =
  let ctx = Lazy.force ctx in
  let srs = Lazy.force srs in
  let ct = encrypt_seeded 13L (mono 2) in
  let forged = Zkp.forge (Rng.create 502L) in
  checkb "forged proof rejected" false (Zkp.verify_contribution srs ctx ct forged)

let test_zkp_proof_not_transferable () =
  (* A proof for ciphertext A must not verify for ciphertext B. *)
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  let pt = mono 1 in
  let ct_a = encrypt_seeded 14L pt in
  let ct_b = encrypt_seeded 15L pt in
  match Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed:14L ct_a with
  | Some proof -> checkb "not transferable" false (Zkp.verify_contribution srs ctx ct_b proof)
  | None -> Alcotest.fail "honest prover refused"

let test_zkp_product_roundtrip () =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  let rng = Rng.create 503L in
  let inputs = List.map (fun v -> Bgv.encrypt_value ctx rng pk v) [ 1; 0; 1 ] in
  let output = Bgv.mul_many inputs in
  (match Zkp.prove_product srs ~inputs ~output with
  | Some proof -> checkb "verifies" true (Zkp.verify_product srs ~inputs ~output proof)
  | None -> Alcotest.fail "honest prover refused");
  (* A wrong product must be unprovable. *)
  let wrong = Bgv.mul_many (List.tl inputs) in
  checkb "wrong product refused" true (Zkp.prove_product srs ~inputs ~output:wrong = None)

let test_zkp_product_input_substitution () =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs = Lazy.force srs in
  let rng = Rng.create 504L in
  let inputs = List.map (fun v -> Bgv.encrypt_value ctx rng pk v) [ 1; 1 ] in
  let output = Bgv.mul_many inputs in
  match Zkp.prove_product srs ~inputs ~output with
  | Some proof ->
    (* Verifying against a different input set fails. *)
    let other = List.map (fun v -> Bgv.encrypt_value ctx rng pk v) [ 1; 1 ] in
    checkb "inputs bound" false (Zkp.verify_product srs ~inputs:other ~output proof)
  | None -> Alcotest.fail "honest prover refused"

let test_zkp_different_srs () =
  let ctx = Lazy.force ctx in
  let _, pk = Lazy.force keys in
  let srs_a = Lazy.force srs in
  let srs_b = Zkp.setup (Rng.create 505L) in
  let pt = mono 3 in
  let ct = encrypt_seeded 16L pt in
  match Zkp.prove_contribution srs_a ctx pk ~plaintext:pt ~seed:16L ct with
  | Some proof -> checkb "proof tied to setup" false (Zkp.verify_contribution srs_b ctx ct proof)
  | None -> Alcotest.fail "honest prover refused"

let test_zkp_cost_model () =
  (* Anchors from the paper: ~1 min proving, ~10 s verification of a
     4.3 MB ciphertext, 192-byte proofs. *)
  let c = Zkp.Cost.contribution_constraints Params.paper in
  let prove = Zkp.Cost.prove_seconds ~constraints:c in
  checkb "prove near a minute" true (prove > 30. && prove < 120.);
  let verify = Zkp.Cost.verify_seconds ~public_io_bytes:(Params.ciphertext_bytes Params.paper ~degree:1) in
  checkb "verify ~10s" true (verify > 5. && verify < 20.);
  checki "proof bytes" 192 Zkp.Cost.proof_bytes;
  (* Verification cost grows with I/O. *)
  checkb "monotone in IO" true
    (Zkp.Cost.verify_seconds ~public_io_bytes:2_000_000
    < Zkp.Cost.verify_seconds ~public_io_bytes:8_000_000)

let () =
  Alcotest.run "mycelium-dp-zkp"
    [
      ( "dp",
        [
          Alcotest.test_case "sensitivity bounds" `Quick test_sensitivity_bounds;
          Alcotest.test_case "laplace scale" `Slow test_laplace_scale;
          Alcotest.test_case "epsilon infinity exact" `Quick test_epsilon_infinity_exact;
          Alcotest.test_case "noisy histogram release" `Quick test_release_histogram_noisy;
          Alcotest.test_case "budget accounting" `Quick test_budget_accounting;
          Alcotest.test_case "advanced composition" `Quick test_advanced_composition;
          Alcotest.test_case "sparse vector (above threshold)" `Quick test_above_threshold;
          Alcotest.test_case "budget validation" `Quick test_budget_validation;
        ] );
      ( "zkp",
        [
          Alcotest.test_case "contribution roundtrip" `Quick test_zkp_contribution_roundtrip;
          Alcotest.test_case "zero plaintext admissible" `Quick test_zkp_zero_plaintext_admissible;
          Alcotest.test_case "bad plaintext refused" `Quick test_zkp_bad_plaintext_refused;
          Alcotest.test_case "mismatched witness refused" `Quick test_zkp_mismatched_witness_refused;
          Alcotest.test_case "forgery rejected" `Quick test_zkp_forgery_rejected;
          Alcotest.test_case "proof not transferable" `Quick test_zkp_proof_not_transferable;
          Alcotest.test_case "product roundtrip" `Quick test_zkp_product_roundtrip;
          Alcotest.test_case "product inputs bound" `Quick test_zkp_product_input_substitution;
          Alcotest.test_case "proof tied to setup" `Quick test_zkp_different_srs;
          Alcotest.test_case "Groth16 cost anchors" `Quick test_zkp_cost_model;
        ] );
    ]
