examples/query_tour.mli:
