examples/epidemic_study.mli:
