examples/mixnet_demo.mli:
