examples/mixnet_demo.ml: Array Bytes Mycelium_mixnet Mycelium_util Printf
