examples/query_tour.ml: List Mycelium_bgv Mycelium_query Printf String
