examples/quickstart.ml: Array Float Mycelium_bgv Mycelium_core Mycelium_dp Mycelium_graph Mycelium_query Mycelium_util Printf
