examples/quickstart.mli:
