(* A tour of the query language: parse the paper's ten queries, show
   what the static analysis derives for each — predicate placement,
   ciphertext counts (Figure 6), sensitivity (§4.7), exponent-space
   layout, and HE feasibility at the paper's parameters (§6.2).

     dune exec examples/query_tour.exe *)

module Corpus = Mycelium_query.Corpus
module Analysis = Mycelium_query.Analysis
module Ast = Mycelium_query.Ast
module Parser = Mycelium_query.Parser
module Params = Mycelium_bgv.Params

let () =
  Printf.printf "%-4s %-5s %-4s %-6s %-6s %-6s %-6s %s\n" "id" "hops" "cts" "groups" "bins"
    "mults" "sens" "feasible at paper params";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun (e : Corpus.entry) ->
      let info = Analysis.analyze_exn ~degree_bound:10 e.Corpus.query in
      let feasible =
        match Analysis.feasible info Params.paper with
        | Ok () -> "yes"
        | Error msg -> "NO: " ^ msg
      in
      Printf.printf "%-4s %-5d %-4d %-6d %-6d %-6d %-6.0f %s\n" e.Corpus.id
        e.Corpus.query.Ast.hops info.Analysis.ciphertext_count
        info.Analysis.layout.Analysis.group_count info.Analysis.layout.Analysis.total_bins
        info.Analysis.multiplications info.Analysis.sensitivity feasible)
    Corpus.all;
  Printf.printf "\nHE multiplication budget at N=32768, 570-bit q: ~%d\n"
    (Analysis.max_multiplications Params.paper);

  (* The language also rejects things the protocol cannot place. *)
  print_endline "\nrejected by the language / placement rules:";
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error e -> Printf.printf "  parse error (%s): %s\n" e.Parser.message src
      | Ok q -> (
        match Mycelium_query.Semantics.split_where q.Ast.where with
        | Error msg -> Printf.printf "  placement error (%s): %s\n" msg src
        | Ok _ -> (
          match Analysis.analyze q with
          | Error msg -> Printf.printf "  analysis error (%s): %s\n" msg src
          | Ok info -> (
            match Analysis.feasible info Params.paper with
            | Error msg -> Printf.printf "  infeasible (%s): %s\n" msg src
            | Ok () -> Printf.printf "  unexpectedly fine: %s\n" src))))
    [
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.inf OR dest.inf";
      "SELECT HISTO(SUM(dest.location)) FROM neigh(1)";
      "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf AND self.inf";
    ];

  (* Round-tripping: the canonical printer emits parseable syntax. *)
  print_endline "\nprint/parse round-trip:";
  List.iter
    (fun (e : Corpus.entry) ->
      let printed = Ast.to_string e.Corpus.query in
      let again = Parser.parse_exn printed in
      Printf.printf "  %s: %s\n" e.Corpus.id
        (if Ast.to_string again = printed then "stable" else "UNSTABLE"))
    Corpus.all
