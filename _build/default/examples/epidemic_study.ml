(* An epidemiologist's session: the secondary-attack-rate studies from
   the paper's motivating literature (§2.1), run as differentially
   private queries over a synthetic epidemic with superspreading.

     dune exec examples/epidemic_study.exe

   The session runs Q7 (secondary infections by exposure type), Q8
   (household vs non-household attack rates) and Q10 (attack rates by
   disease stage) against one privacy budget, then shows the budget
   refusing further queries. *)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Schema = Mycelium_graph.Schema
module Epidemic = Mycelium_graph.Epidemic
module Runtime = Mycelium_core.Runtime
module Corpus = Mycelium_query.Corpus
module Semantics = Mycelium_query.Semantics
module Params = Mycelium_bgv.Params
module Dp = Mycelium_dp.Dp

let print_result id (r : Runtime.query_result) =
  Printf.printf "--- %s: %s\n" id (Corpus.find id).Corpus.description;
  (match r.Runtime.result with
  | Semantics.Sums groups ->
    Array.iter (fun (label, v) -> Printf.printf "    %-16s %.2f\n" label v) groups
  | Semantics.Histogram groups ->
    Array.iter
      (fun (label, bins) ->
        let mass = Array.fold_left ( +. ) 0. bins in
        if mass > 0.5 then begin
          Printf.printf "    %-16s" label;
          Array.iteri (fun i v -> if v > 0.4 then Printf.printf " %d:%0.1f" i v) bins;
          print_newline ()
        end)
      groups);
  Printf.printf "    (ZKP-discarded rows: %d, committee generation: %d)\n"
    r.Runtime.discarded_contributions r.Runtime.committee_generation

let () =
  let rng = Rng.create 1918L in
  (* A population with realistic structure: households plus workplace,
     transit and social contacts, degree-capped at d=5. *)
  let graph =
    Cg.generate
      {
        Cg.default_config with
        Cg.population = 40;
        degree_bound = 5;
        mean_household = 2.8;
        extra_contact_rate = 2.0;
      }
      rng
  in
  (* Overdispersed epidemic: a few superspreaders drive transmission. *)
  let outcome =
    Epidemic.run { Epidemic.default_config with Epidemic.dispersion = 1.5; seeds = 4 } rng graph
  in
  Printf.printf "cohort: %d people, %d infected (%.0f%% attack rate), %d generations\n"
    (Cg.population graph) outcome.Epidemic.infected_count
    (100. *. outcome.Epidemic.attack_rate) outcome.Epidemic.generations;
  let top_spreader =
    let best = ref 0 in
    for i = 0 to Cg.population graph - 1 do
      best := max !best (Epidemic.secondary_cases graph i)
    done;
    !best
  in
  Printf.printf "largest superspreading event: %d secondary cases from one person\n\n" top_spreader;

  let sys =
    Runtime.init
      {
        Runtime.default_config with
        Runtime.params = Params.test_small;
        degree_bound = 5;
        epsilon_budget = 3.0;
        seed = 3L;
      }
      graph
  in
  print_endline "privacy budget for this study: epsilon = 3.0 total\n";
  List.iter
    (fun id ->
      match Runtime.run_query ~epsilon:1.0 sys (Corpus.find id).Corpus.sql with
      | Ok r -> print_result id r
      | Error _ -> Printf.printf "--- %s failed\n" id)
    [ "Q7"; "Q8"; "Q10" ];
  Printf.printf "\nbudget remaining: %.2f\n" (Dp.budget_remaining (Runtime.budget sys));
  (* A fourth query must be refused. *)
  match Runtime.run_query ~epsilon:1.0 sys (Corpus.find "Q5").Corpus.sql with
  | Error (Runtime.Budget_exhausted left) ->
    Printf.printf "fourth query refused: privacy budget exhausted (%.2f left < 1.0 needed)\n" left
  | Ok _ -> print_endline "unexpected: budget not enforced"
  | Error _ -> print_endline "unexpected error"
