(* Quickstart: stand up a small Mycelium deployment and run one
   differentially-private graph query end to end.

     dune exec examples/quickstart.exe

   Every number below comes out of the real pipeline: BGV-encrypted
   contributions with well-formedness proofs, homomorphic neighborhood
   aggregation, threshold decryption by a device committee, and Laplace
   noise added inside the committee before release. *)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Runtime = Mycelium_core.Runtime
module Semantics = Mycelium_query.Semantics
module Params = Mycelium_bgv.Params

let () =
  (* 1. A population of devices forming a contact graph, with a
     simulated epidemic providing the private per-device data. *)
  let rng = Rng.create 2026L in
  let graph =
    Cg.generate
      { Cg.default_config with Cg.population = 30; degree_bound = 4; extra_contact_rate = 1.5 }
      rng
  in
  let outcome = Epidemic.run Epidemic.default_config rng graph in
  Printf.printf "population: %d devices, %d contact edges, %d infected (%.0f%%)\n"
    (Cg.population graph) (Cg.edge_count graph) outcome.Epidemic.infected_count
    (100. *. outcome.Epidemic.attack_rate);

  (* 2. Initialize the system: genesis key ceremony, first committee,
     ZKP trusted setup. *)
  let sys =
    Runtime.init
      { Runtime.default_config with Runtime.params = Params.test_small; degree_bound = 4 }
      graph
  in
  print_endline "system initialized: BGV keys shared among a 10-device committee";

  (* 3. An analyst submits a query: how many contacts do people in each
     age group have? (Q5 from the paper.) *)
  let query = "SELECT HISTO(COUNT(*)) FROM neigh(1) GROUP BY self.age" in
  Printf.printf "\nanalyst query (epsilon = 1.0):\n  %s\n\n" query;
  match Runtime.run_query ~epsilon:1.0 sys query with
  | Error _ -> prerr_endline "query failed"
  | Ok r ->
    (match r.Runtime.result with
    | Semantics.Histogram groups ->
      print_endline "released histogram (noisy counts of devices per contact count):";
      Array.iter
        (fun (label, bins) ->
          let total = Array.fold_left ( +. ) 0. bins in
          if Float.abs total > 0.5 then begin
            Printf.printf "  %-10s" label;
            Array.iteri (fun i v -> if Float.abs v > 0.4 then Printf.printf " [%d contacts: %.1f]" i v) bins;
            print_newline ()
          end)
        groups
    | Semantics.Sums _ -> ());
    print_endline
      "\n(the noise dwarfs a 30-person toy cohort: sensitivity 22 at epsilon 1; at the paper's\n\
      \ millions of devices the same noise is negligible relative to the counts)";
    Printf.printf "\ncommittee generation after query: %d (rotated by VSR)\n"
      r.Runtime.committee_generation;
    Printf.printf "privacy budget remaining: %.1f\n"
      (Mycelium_dp.Dp.budget_remaining (Runtime.budget sys))
