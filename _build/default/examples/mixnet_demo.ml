(* The communication layer on its own: verifiable maps, telescoping
   path setup, onion forwarding with dummies, and what the
   aggregator-side adversary can (and cannot) learn.

     dune exec examples/mixnet_demo.exe *)

module Rng = Mycelium_util.Rng
module Stats = Mycelium_util.Stats
module Sim = Mycelium_mixnet.Sim
module Model = Mycelium_mixnet.Model
module Bulletin = Mycelium_mixnet.Bulletin
module Vmap = Mycelium_mixnet.Vmap

let () =
  let cfg =
    {
      Sim.default_config with
      Sim.n_devices = 300;
      degree = 5;
      hops = 3;
      replicas = 2;
      malicious_fraction = 0.05;
      fast_setup = true;
      seed = 31L;
    }
  in
  Printf.printf
    "mix network: %d devices, k=%d hops, r=%d replicas, f=%.0f%% forwarder slices, %.0f%% malicious\n\n"
    cfg.Sim.n_devices cfg.Sim.hops cfg.Sim.replicas (100. *. cfg.Sim.fraction)
    (100. *. cfg.Sim.malicious_fraction);

  let t = Sim.create cfg in
  (* Every honest device audits the aggregator's verifiable maps. *)
  Printf.printf "M1/M2 committed to the bulletin board; device audits pass: %b\n"
    (Sim.audit_all t);
  Printf.printf "verifiable map: %d pseudonyms across %d devices\n"
    (Vmap.size (Sim.vmap t)) (Vmap.device_count (Sim.vmap t));

  let setup = Sim.setup_paths t in
  Printf.printf "\npath setup: %d/%d paths established in %d C-rounds (k^2+2k)\n"
    setup.Sim.paths_established setup.Sim.paths_requested setup.Sim.setup_rounds;

  let stats = Sim.run_query_round t ~payload:(Bytes.of_string "query 7: are you ill?") in
  Printf.printf "\none vertex-program round (%d C-rounds):\n" stats.Sim.rounds_used;
  Printf.printf "  messages: %d sent, %d delivered, %d lost\n" stats.Sim.messages_sent
    stats.Sim.delivered stats.Sim.lost;
  Printf.printf "  dummies injected by forwarders: %d\n" stats.Sim.dummies_uploaded;
  Printf.printf "  senders fully identified (all-malicious path): %d\n" stats.Sim.identified;
  let sets = Array.map float_of_int stats.Sim.anonymity_sets in
  if Array.length sets > 0 then
    Printf.printf "  adversary's anonymity sets: mean %.0f, min %.0f (population %d)\n"
      (Stats.mean sets) (Stats.minimum sets) cfg.Sim.n_devices;

  (* The closed-form model at the paper's scale. *)
  print_newline ();
  print_endline "extrapolation to the paper's N = 1.1M (Figure 5):";
  Printf.printf "  expected anonymity set: %.0f devices\n"
    (Model.anonymity_set ~n:1.1e6 ~hops:3 ~replicas:2 ~fraction:0.1 ~malicious:0.02);
  Printf.printf "  identification probability per query: %.1e\n"
    (Model.identification_probability ~hops:3 ~replicas:2 ~malicious:0.02);
  Printf.printf "  message loss at 4%% failures: %.2f%%\n"
    (100. *. (1. -. Model.goodput ~hops:3 ~replicas:2 ~failure_rate:0.04));
  Printf.printf "\nbulletin board: %d entries, hash chain intact: %b\n"
    (Bulletin.length (Sim.bulletin t))
    (Bulletin.verify_chain (Sim.bulletin t))
