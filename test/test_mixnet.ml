(* Tests for mycelium_mixnet: bulletin board, verifiable maps + audits,
   hop selection, onion encoding, the analytic model (§6.3 anchors) and
   the C-round simulator. *)

module Rng = Mycelium_util.Rng
module Stats = Mycelium_util.Stats
module Elgamal = Mycelium_crypto.Elgamal
module Bulletin = Mycelium_mixnet.Bulletin
module Vmap = Mycelium_mixnet.Vmap
module Hopselect = Mycelium_mixnet.Hopselect
module Onion = Mycelium_mixnet.Onion
module Model = Mycelium_mixnet.Model
module Sim = Mycelium_mixnet.Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Bulletin                                                            *)
(* ------------------------------------------------------------------ *)

let test_bulletin_chain () =
  let b = Bulletin.create () in
  let e1 = Bulletin.post b ~author:"aggregator" (Bytes.of_string "roots") in
  let e2 = Bulletin.post b ~author:"device-3" (Bytes.of_string "complaint") in
  checki "sequence" 0 e1.Bulletin.seq;
  checki "sequence" 1 e2.Bulletin.seq;
  checkb "chained" true (Bytes.equal e2.Bulletin.prev_hash e1.Bulletin.hash);
  checkb "chain verifies" true (Bulletin.verify_chain b);
  checkb "head is newest" true (Bytes.equal (Bulletin.head_hash b) e2.Bulletin.hash)

let test_bulletin_queries () =
  let b = Bulletin.create () in
  for i = 0 to 9 do
    ignore (Bulletin.post b ~author:"a" (Bytes.of_string (string_of_int i)))
  done;
  checki "length" 10 (Bulletin.length b);
  checki "entries_since 7" 3 (List.length (Bulletin.entries_since b 7));
  (match Bulletin.get b 4 with
  | Some e -> checkb "payload" true (Bytes.to_string e.Bulletin.payload = "4")
  | None -> Alcotest.fail "entry 4 missing");
  checkb "find newest matching" true
    (match Bulletin.find b ~f:(fun e -> e.Bulletin.seq mod 2 = 0) with
    | Some e -> e.Bulletin.seq = 8
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Vmap                                                                *)
(* ------------------------------------------------------------------ *)

let make_leaves ?(pseudonyms_per_device = 1) n =
  let rng = Rng.create 99L in
  Array.init (n * pseudonyms_per_device) (fun i ->
      let pk, _ = Elgamal.generate rng in
      {
        Vmap.pseudonym = Elgamal.fingerprint pk;
        pk = Elgamal.pub_to_bytes pk;
        device = i / pseudonyms_per_device;
      })

let test_vmap_build_and_lookup () =
  let leaves = make_leaves 12 in
  match Vmap.build ~max_pseudonyms_per_device:1 leaves with
  | Error e -> Alcotest.fail e
  | Ok v ->
    checki "size" 12 (Vmap.size v);
    checki "devices" 12 (Vmap.device_count v);
    for i = 0 to 11 do
      let l = Vmap.lookup v i in
      checkb "lookup verifies" true (Vmap.verify_lookup ~m1_root:(Vmap.m1_root v) ~index:i l);
      checkb "device matches" true (l.Vmap.leaf.Vmap.device = i)
    done

let test_vmap_lookup_wrong_index_rejected () =
  let leaves = make_leaves 8 in
  let v = Vmap.build_unchecked ~max_pseudonyms_per_device:1 leaves in
  let l = Vmap.lookup v 3 in
  (* An aggregator answering lookup 5 with entry 3 is caught. *)
  checkb "misdirected lookup rejected" false
    (Vmap.verify_lookup ~m1_root:(Vmap.m1_root v) ~index:5 l)

let test_vmap_build_rejects_cheating () =
  let leaves = make_leaves 6 in
  (* Duplicate pseudonym. *)
  let dup = Array.copy leaves in
  dup.(5) <- { dup.(0) with Vmap.device = 5 };
  (match Vmap.build ~max_pseudonyms_per_device:1 dup with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate pseudonym accepted");
  (* Pseudonym not H(pk). *)
  let forged = Array.copy leaves in
  forged.(2) <- { forged.(2) with Vmap.pseudonym = Bytes.make 32 'x' };
  (match Vmap.build ~max_pseudonyms_per_device:1 forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged pseudonym accepted");
  (* Too many pseudonyms for one device. *)
  let sybil = Array.map (fun l -> { l with Vmap.device = 0 }) leaves in
  match Vmap.build ~max_pseudonyms_per_device:2 sybil with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pseudonym bound violation accepted"

let test_vmap_audits_pass_honest () =
  let leaves = make_leaves ~pseudonyms_per_device:3 5 in
  match Vmap.build ~max_pseudonyms_per_device:3 leaves with
  | Error e -> Alcotest.fail e
  | Ok v ->
    let rng = Rng.create 7L in
    checkb "spot check passes" true (Vmap.audit_spot_check v rng ~samples:30);
    (* Device 2 audits its own three pseudonyms. *)
    let own =
      Array.to_list leaves
      |> List.filter (fun l -> l.Vmap.device = 2)
      |> List.map (fun l -> l.Vmap.pseudonym)
    in
    checki "three pseudonyms" 3 (List.length own);
    checkb "own audit passes" true (Vmap.audit_own_pseudonyms v ~device:2 ~pseudonyms:own)

let test_vmap_own_audit_detects_omission () =
  let leaves = make_leaves 6 in
  let omitted = Array.sub leaves 0 5 in
  let v = Vmap.build_unchecked ~max_pseudonyms_per_device:1 omitted in
  (* Device 5's pseudonym was dropped by the aggregator. *)
  checkb "omission detected" false
    (Vmap.audit_own_pseudonyms v ~device:5 ~pseudonyms:[ leaves.(5).Vmap.pseudonym ])

let test_vmap_spot_check_detects_mismatch () =
  let leaves = make_leaves 8 in
  (* Malicious aggregator maps pseudonym 3 to device 6 (whose M2 leaf
     does not contain pk 3). *)
  let bad = Array.copy leaves in
  bad.(3) <- { bad.(3) with Vmap.device = 6 };
  let v = Vmap.build_unchecked ~max_pseudonyms_per_device:1 bad in
  let rng = Rng.create 11L in
  (* With enough samples the spot check must hit index 3. *)
  checkb "mismatch detected" false (Vmap.audit_spot_check v rng ~samples:200)

(* ------------------------------------------------------------------ *)
(* Hopselect                                                           *)
(* ------------------------------------------------------------------ *)

let beacon = Mycelium_crypto.Sha256.digest_string "test beacon"

let test_hopselect_deterministic () =
  (* The slice of a pseudonym is a pure function of (x, beacon). *)
  for x = 0 to 50 do
    Alcotest.(check (float 0.)) "deterministic" (Hopselect.slice ~beacon x) (Hopselect.slice ~beacon x)
  done

let test_hopselect_slots_partition () =
  (* Each index belongs to at most one hop slot, and slot fractions
     roughly match f. *)
  let total = 20000 and f = 0.1 and k = 3 in
  let counts = Array.make (k + 1) 0 in
  for x = 0 to total - 1 do
    match Hopselect.slot ~beacon ~fraction:f ~hops:k x with
    | Some s ->
      checkb "slot in range" true (s >= 1 && s <= k);
      counts.(s) <- counts.(s) + 1;
      checkb "eligible consistent" true (Hopselect.eligible ~beacon ~fraction:f ~hop:s x)
    | None -> counts.(0) <- counts.(0) + 1
  done;
  for s = 1 to k do
    let frac = float_of_int counts.(s) /. float_of_int total in
    checkb "slot fraction near f" true (Float.abs (frac -. f) < 0.01)
  done;
  let non_forwarders = float_of_int counts.(0) /. float_of_int total in
  checkb "1 - k*f are not forwarders" true (Float.abs (non_forwarders -. 0.7) < 0.02)

let test_hopselect_draw () =
  let rng = Rng.create 3L in
  for hop = 1 to 3 do
    for _ = 1 to 50 do
      let x = Hopselect.draw rng ~beacon ~fraction:0.1 ~hop ~total:10000 in
      checkb "drawn index eligible" true (Hopselect.eligible ~beacon ~fraction:0.1 ~hop x)
    done
  done;
  let path = Hopselect.draw_path rng ~beacon ~fraction:0.1 ~hops:3 ~total:10000 in
  checki "path length" 3 (Array.length path)

let test_hopselect_beacon_matters () =
  let other = Mycelium_crypto.Sha256.digest_string "other beacon" in
  let differs = ref false in
  for x = 0 to 100 do
    if Hopselect.slice ~beacon x <> Hopselect.slice ~beacon:other x then differs := true
  done;
  checkb "different beacons give different slices" true !differs

(* ------------------------------------------------------------------ *)
(* Onion                                                               *)
(* ------------------------------------------------------------------ *)

let test_onion_wrap_unwrap () =
  let rng = Rng.create 21L in
  let keys = List.init 3 (fun _ -> Rng.bytes rng 32) in
  let dst_key = Rng.bytes rng 32 in
  let payload = Bytes.of_string "query 7: are you ill?" in
  let inner = Onion.seal_inner ~key:dst_key ~round:5 payload in
  let onion = Onion.wrap ~hop_keys:keys ~round:5 inner in
  (* Peel hop by hop in path order. *)
  let after = List.fold_left (fun acc key -> Onion.peel_layer ~key ~round:5 acc) onion keys in
  (match Onion.open_inner ~key:dst_key ~round:5 after with
  | Some p -> checkb "payload intact" true (Bytes.equal p payload)
  | None -> Alcotest.fail "inner layer did not open");
  checkb "unwrap matches manual peeling" true
    (Bytes.equal after (Onion.unwrap ~hop_keys:keys ~round:5 onion))

let test_onion_length_constant () =
  let rng = Rng.create 22L in
  let keys = List.init 4 (fun _ -> Rng.bytes rng 32) in
  let inner = Onion.seal_inner ~key:(Rng.bytes rng 32) ~round:1 (Bytes.create 100) in
  let onion = Onion.wrap ~hop_keys:keys ~round:1 inner in
  checki "wrapping preserves length" (Bytes.length inner) (Bytes.length onion);
  let peeled = Onion.peel_layer ~key:(List.hd keys) ~round:1 onion in
  checki "peeling preserves length" (Bytes.length onion) (Bytes.length peeled)

let test_onion_dummy_undetectable_shape () =
  (* A dummy has the same length as a real layered message, and peeling
     it yields bytes, not an error — only the destination's AE can tell
     (the §3.5 design). *)
  let rng = Rng.create 23L in
  let key = Rng.bytes rng 32 and dst = Rng.bytes rng 32 in
  let real =
    Onion.add_layer ~key ~round:2 (Onion.seal_inner ~key:dst ~round:2 (Bytes.create 40))
  in
  let dummy = Onion.dummy rng ~length:(Bytes.length real) in
  checki "same length" (Bytes.length real) (Bytes.length dummy);
  let peeled = Onion.peel_layer ~key ~round:2 dummy in
  checkb "dummy rejected only by the destination AE" true
    (Onion.open_inner ~key:dst ~round:2 peeled = None)

let test_onion_wrong_round_fails () =
  let rng = Rng.create 24L in
  let dst = Rng.bytes rng 32 in
  let inner = Onion.seal_inner ~key:dst ~round:3 (Bytes.of_string "m") in
  checkb "wrong round rejected" true (Onion.open_inner ~key:dst ~round:4 inner = None)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let prop_onion_roundtrip =
  qtest "onion wrap/peel identity for random paths"
    QCheck.(triple (int_range 1 6) (int_range 0 512) small_nat)
    (fun (hops, len, round) ->
      let rng = Rng.create (Int64.of_int ((hops * 1009) + len + round)) in
      let keys = List.init hops (fun _ -> Rng.bytes rng 32) in
      let dst = Rng.bytes rng 32 in
      let payload = Rng.bytes rng len in
      let onion =
        Onion.wrap ~hop_keys:keys ~round (Onion.seal_inner ~key:dst ~round payload)
      in
      match Onion.open_inner ~key:dst ~round (Onion.unwrap ~hop_keys:keys ~round onion) with
      | Some p -> Bytes.equal p payload
      | None -> false)

let prop_onion_partial_peel_garbles =
  qtest "missing a layer leaves the inner AE closed" QCheck.(int_range 2 5) (fun hops ->
      let rng = Rng.create (Int64.of_int (hops * 31)) in
      let keys = List.init hops (fun _ -> Rng.bytes rng 32) in
      let dst = Rng.bytes rng 32 in
      let onion =
        Onion.wrap ~hop_keys:keys ~round:1 (Onion.seal_inner ~key:dst ~round:1 (Bytes.create 32))
      in
      (* Peel all but the last layer. *)
      let almost =
        List.fold_left
          (fun acc key -> Onion.peel_layer ~key ~round:1 acc)
          onion
          (List.filteri (fun i _ -> i < hops - 1) keys)
      in
      Onion.open_inner ~key:dst ~round:1 almost = None)

(* ------------------------------------------------------------------ *)
(* Analytic model (§6.3 anchors)                                       *)
(* ------------------------------------------------------------------ *)

let test_model_rounds () =
  (* Figure 5d. *)
  checki "telescoping k=2" 8 (Model.telescoping_rounds ~hops:2);
  checki "telescoping k=3" 15 (Model.telescoping_rounds ~hops:3);
  checki "telescoping k=4" 24 (Model.telescoping_rounds ~hops:4);
  checki "forwarding k=2" 6 (Model.forwarding_rounds ~hops:2);
  checki "forwarding k=3" 8 (Model.forwarding_rounds ~hops:3);
  checki "forwarding k=4" 10 (Model.forwarding_rounds ~hops:4)

let test_model_anonymity_anchor () =
  (* §6.3: r=2, k=3, f=0.1, mal=0.02 -> anonymity set over 7000. *)
  let v = Model.anonymity_set ~n:1.1e6 ~hops:3 ~replicas:2 ~fraction:0.1 ~malicious:0.02 in
  checkb "over 7000" true (v > 7000.);
  checkb "below (r/f)^k" true (v <= 8000.);
  (* Larger r gives larger sets (the Fig 5a trend). *)
  let v3 = Model.anonymity_set ~n:1.1e6 ~hops:3 ~replicas:3 ~fraction:0.1 ~malicious:0.02 in
  let v1 = Model.anonymity_set ~n:1.1e6 ~hops:3 ~replicas:1 ~fraction:0.1 ~malicious:0.02 in
  checkb "monotone in r" true (v1 < v && v < v3);
  (* More hops give larger sets. *)
  let v4 = Model.anonymity_set ~n:1.1e6 ~hops:4 ~replicas:2 ~fraction:0.1 ~malicious:0.02 in
  checkb "monotone in k" true (v4 > v)

let test_model_identification_anchor () =
  (* §6.3: k=3, mal=0.02 -> p ~ 1e-5 per query. *)
  let p = Model.identification_probability ~hops:3 ~replicas:2 ~malicious:0.02 in
  checkb "around 1e-5" true (p > 5e-6 && p < 5e-5);
  (* Monotone in malice, decreasing in hops. *)
  checkb "worse with more malice" true
    (Model.identification_probability ~hops:3 ~replicas:2 ~malicious:0.04 > p);
  checkb "better with more hops" true
    (Model.identification_probability ~hops:4 ~replicas:2 ~malicious:0.02 < p)

let test_model_goodput_anchor () =
  (* §6.3: r=2, 4% failure -> about one in 100 messages lost. *)
  let g = Model.goodput ~hops:3 ~replicas:2 ~failure_rate:0.04 in
  let loss = 1. -. g in
  checkb "about 1%" true (loss > 0.005 && loss < 0.02);
  checkb "r=1 worse" true (Model.goodput ~hops:3 ~replicas:1 ~failure_rate:0.04 < g);
  checkb "r=3 better" true (Model.goodput ~hops:3 ~replicas:3 ~failure_rate:0.04 > g)

let test_model_batch_size () =
  Alcotest.(check (float 1e-9)) "r*d/f" 200. (Model.batch_size ~replicas:2 ~degree:10 ~fraction:0.1)

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  { Sim.default_config with Sim.n_devices = 60; degree = 3; hops = 2; replicas = 2; seed = 42L }

let test_sim_setup_and_delivery () =
  let t = Sim.create small_cfg in
  checkb "audits pass" true (Sim.audit_all t);
  let s = Sim.setup_paths t in
  checki "paths requested" (60 * 3 * 2) s.Sim.paths_requested;
  checkb "most paths established" true (s.Sim.paths_established > s.Sim.paths_requested * 9 / 10);
  checki "setup rounds k^2+2k" 8 s.Sim.setup_rounds;
  let r = Sim.run_query_round t ~payload:(Bytes.of_string "ping") in
  checki "all messages sent" 180 r.Sim.messages_sent;
  (* No churn: everything established must be delivered. *)
  checkb "high delivery" true (r.Sim.delivered >= r.Sim.messages_sent * 9 / 10);
  checki "rounds used 2k+2" 6 r.Sim.rounds_used

let test_sim_payload_integrity () =
  let t = Sim.create { small_cfg with Sim.malicious_fraction = 0. } in
  ignore (Sim.setup_paths t);
  let payload = Bytes.of_string "the vertex program message" in
  let r = Sim.run_query_round t ~payload in
  checkb "all delivered" true (r.Sim.lost = 0);
  List.iter
    (fun (_, _, body) -> checkb "payload intact" true (Bytes.equal body payload))
    (Sim.deliveries t);
  checki "one delivery per message" r.Sim.delivered (List.length (Sim.deliveries t))

let test_sim_self_targets_by_default () =
  let t = Sim.create { small_cfg with Sim.malicious_fraction = 0. } in
  ignore (Sim.setup_paths t);
  ignore (Sim.run_query_round t ~payload:(Bytes.of_string "x"));
  List.iter
    (fun (src, dst, _) -> checki "self-loop" src dst)
    (Sim.deliveries t)

let test_sim_churn_costs_delivery () =
  let run churn =
    let t =
      Sim.create
        { small_cfg with Sim.churn; malicious_fraction = 0.; fast_setup = true; seed = 77L }
    in
    ignore (Sim.setup_paths t);
    let r = Sim.run_query_round t ~payload:(Bytes.of_string "x") in
    (r.Sim.delivered, r.Sim.messages_sent, r.Sim.dummies_uploaded)
  in
  let d0, m0, _ = run 0.0 in
  let d3, m3, dummies = run 0.3 in
  checki "no churn, full delivery" m0 d0;
  checkb "heavy churn loses messages" true (d3 < m3);
  checkb "dummies cover gaps" true (dummies > 0)

let test_sim_malicious_forwarders_drop () =
  (* With most devices malicious, forwarders drop covertly: deliveries
     fall and dummies appear, but the traffic pattern (uploads) is
     preserved by construction. *)
  let t =
    Sim.create
      { small_cfg with Sim.malicious_fraction = 0.8; fast_setup = true; seed = 9L }
  in
  ignore (Sim.setup_paths t);
  let r = Sim.run_query_round t ~payload:(Bytes.of_string "x") in
  checkb "messages lost to malice" true (r.Sim.lost > 0);
  checkb "dummies mask the drops" true (r.Sim.dummies_uploaded > 0);
  checkb "some senders identified" true (r.Sim.identified > 0)

let test_sim_anonymity_grows_with_population () =
  let anon n =
    let t =
      Sim.create
        {
          small_cfg with
          Sim.n_devices = n;
          fast_setup = true;
          malicious_fraction = 0.05;
          seed = 13L;
        }
    in
    ignore (Sim.setup_paths t);
    let r = Sim.run_query_round t ~payload:(Bytes.of_string "x") in
    Stats.mean (Array.map float_of_int r.Sim.anonymity_sets)
  in
  let a60 = anon 60 and a200 = anon 200 in
  checkb "bigger population, bigger anonymity sets" true (a200 > a60);
  checkb "set bounded by population" true (a60 <= 60.)

let test_sim_observer_never_breaks_honest_paths () =
  (* With zero malicious devices the adversary's candidate sets must be
     large: no delivered message is pinned to one sender. *)
  let t =
    Sim.create
      { small_cfg with Sim.malicious_fraction = 0.; fast_setup = true; seed = 15L }
  in
  ignore (Sim.setup_paths t);
  let r = Sim.run_query_round t ~payload:(Bytes.of_string "x") in
  checki "nobody identified" 0 r.Sim.identified;
  Array.iter (fun a -> checkb "anonymity > 1" true (a > 1)) r.Sim.anonymity_sets

let test_sim_bulletin_records_rounds () =
  let t = Sim.create { small_cfg with Sim.fast_setup = true } in
  ignore (Sim.setup_paths t);
  let before = Bulletin.length (Sim.bulletin t) in
  ignore (Sim.run_query_round t ~payload:(Bytes.of_string "x"));
  let after = Bulletin.length (Sim.bulletin t) in
  (* One MHT-root commitment per C-round with traffic. *)
  checkb "round commitments posted" true (after >= before + 2);
  checkb "chain verifies" true (Bulletin.verify_chain (Sim.bulletin t))

let test_sim_multi_pseudonym () =
  (* P = 3 pseudonyms per device (assumption 4, §3.1): the pseudonym
     space triples, hop slots are drawn from it, devices fetch all
     their mailboxes, and the M1/M2 audits still pass with the larger
     bound. Messages target specific pseudonyms of specific devices. *)
  let n = 40 and p = 3 in
  let t =
    Sim.create
      {
        small_cfg with
        Sim.n_devices = n;
        pseudonyms_per_device = p;
        degree = 2;
        malicious_fraction = 0.;
        seed = 88L;
      }
  in
  checkb "audits pass at P=3" true (Sim.audit_all t);
  checki "pseudonym space tripled" (n * p) (Vmap.size (Sim.vmap t));
  (* Device i messages two distinct pseudonyms of device i+1. *)
  let targets =
    Array.init n (fun i ->
        let next = (i + 1) mod n in
        [| (next * p) + 1; (next * p) + 2 |])
  in
  let s = Sim.setup_paths ~targets t in
  checkb "paths established through pseudonym space" true
    (s.Sim.paths_established > s.Sim.paths_requested * 9 / 10);
  let r = Sim.run_query_round t ~payload:(Bytes.of_string "multi") in
  checkb "delivered" true (r.Sim.delivered >= r.Sim.messages_sent * 9 / 10);
  List.iter
    (fun (src, dst_pseudo, _) ->
      let dst_dev = dst_pseudo / p in
      checki "ring neighbor" ((src + 1) mod n) dst_dev;
      checkb "targeted pseudonym slot" true (dst_pseudo mod p = 1 || dst_pseudo mod p = 2))
    (Sim.deliveries t)

let test_sim_repeated_rounds () =
  (* Paths persist across vertex-program rounds; every round delivers,
     and the adversary's anonymity sets do not erode over time — the
     §4.7 traffic-analysis claim: because every device participates in
     every stage (dummies included), repeated observation adds no
     information. *)
  let t =
    Sim.create
      { small_cfg with Sim.malicious_fraction = 0.1; fast_setup = true; seed = 99L }
  in
  ignore (Sim.setup_paths t);
  let means =
    List.init 3 (fun i ->
        let r = Sim.run_query_round t ~payload:(Bytes.of_string (string_of_int i)) in
        checkb "round delivers" true (r.Sim.delivered > r.Sim.messages_sent * 8 / 10);
        Stats.mean (Array.map float_of_int r.Sim.anonymity_sets))
  in
  match means with
  | [ m1; m2; m3 ] ->
    checkb "anonymity does not erode" true (m2 >= m1 *. 0.9 && m3 >= m1 *. 0.9)
  | _ -> Alcotest.fail "expected three rounds"

let test_sim_footprint_stable () =
  (* Leak regression: [run_query_round] owns a per-round lifecycle —
     slot ids, origin tags, downloads and mailboxes all reset — so the
     simulator's long-lived structures stop growing once the slot slab
     and arenas reach their high-water mark in round one.  With zero
     churn the rounds are also deterministically identical, so the
     per-round stats must repeat exactly. *)
  let t =
    Sim.create
      {
        small_cfg with
        Sim.malicious_fraction = 0.1;
        churn = 0.;
        fast_setup = true;
        seed = 21L;
      }
  in
  ignore (Sim.setup_paths t);
  let run i = Sim.run_query_round t ~payload:(Bytes.of_string (string_of_int i)) in
  let r1 = run 1 in
  let f1 = Sim.footprint t in
  let r2 = run 2 in
  let r3 = run 3 in
  let r4 = run 4 in
  let r5 = run 5 in
  ignore r2;
  ignore r3;
  ignore r4;
  let f5 = Sim.footprint t in
  checki "paths stable" f1.Sim.established_paths f5.Sim.established_paths;
  checki "route entries stable" f1.Sim.route_entries f5.Sim.route_entries;
  checki "slot slab at high-water mark" f1.Sim.slot_capacity f5.Sim.slot_capacity;
  checki "arenas at high-water mark" f1.Sim.arena_bytes f5.Sim.arena_bytes;
  checki "key arena stable" f1.Sim.key_bytes f5.Sim.key_bytes;
  checki "downloads bounded per round" f1.Sim.download_entries f5.Sim.download_entries;
  checki "link index drained" 0 f5.Sim.link_index_entries;
  checki "mailboxes drained" 0 f5.Sim.mailboxes_in_use;
  (* Churn-free rounds replay exactly: any drift here means per-round
     state leaked into the next round's decisions. *)
  checki "delivered stable" r1.Sim.delivered r5.Sim.delivered;
  checki "dummies stable" r1.Sim.dummies_uploaded r5.Sim.dummies_uploaded;
  checki "deposited bytes stable" r1.Sim.deposited_bytes r5.Sim.deposited_bytes

let test_sim_acceptance_100k () =
  (* ISSUE.md acceptance cell: a 10^5-device, 2-query-round run under
     a fixed heap bound.  [fast_keys] swaps key generation for the
     insecure-but-fast variant (538µs -> ~0 per path) and sampling
     caps the observer's verification and anonymity work; the Gc
     ceiling below is the documented "memory-bounded streaming" claim
     at this scale (see DESIGN.md §12). *)
  let n = 100_000 in
  let t =
    Sim.create
      {
        Sim.default_config with
        Sim.n_devices = n;
        degree = 1;
        hops = 3;
        replicas = 2;
        churn = 0.01;
        malicious_fraction = 0.02;
        fraction = 0.1;
        fast_setup = true;
        fast_keys = true;
        verify_sample = 101;
        anon_sample = 13;
        seed = 7L;
      }
  in
  let s = Sim.setup_paths t in
  checkb "most paths established" true (s.Sim.paths_established > s.Sim.paths_requested * 9 / 10);
  let r1 = Sim.run_query_round t ~payload:(Bytes.of_string "acceptance-1") in
  let f1 = Sim.footprint t in
  let r2 = Sim.run_query_round t ~payload:(Bytes.of_string "acceptance-2") in
  let f2 = Sim.footprint t in
  checkb "round 1 delivers" true (r1.Sim.delivered > r1.Sim.messages_sent * 9 / 10);
  checkb "round 2 delivers" true (r2.Sim.delivered > r2.Sim.messages_sent * 9 / 10);
  checki "slot slab stable across rounds" f1.Sim.slot_capacity f2.Sim.slot_capacity;
  checki "arenas stable across rounds" f1.Sim.arena_bytes f2.Sim.arena_bytes;
  let heap_bytes = (Gc.stat ()).Gc.top_heap_words * (Sys.word_size / 8) in
  checkb
    (Printf.sprintf "top heap %d MB under 2 GB budget" (heap_bytes / (1024 * 1024)))
    true
    (heap_bytes < 2 * 1024 * 1024 * 1024)

let test_sim_rounds_advance_clock () =
  let t = Sim.create { small_cfg with Sim.fast_setup = true } in
  ignore (Sim.setup_paths t);
  let before = Sim.current_round t in
  let r = Sim.run_query_round t ~payload:(Bytes.of_string "x") in
  checkb "C-round clock advanced" true (Sim.current_round t >= before + r.Sim.rounds_used)

let test_sim_explicit_targets () =
  let n = 40 in
  let t =
    Sim.create
      { small_cfg with Sim.n_devices = n; degree = 2; malicious_fraction = 0.; seed = 21L }
  in
  (* A ring: device i messages i+1 and i+2. *)
  let targets = Array.init n (fun i -> [| (i + 1) mod n; (i + 2) mod n |]) in
  ignore (Sim.setup_paths ~targets t);
  let r = Sim.run_query_round t ~payload:(Bytes.of_string "hi") in
  checki "all delivered" r.Sim.messages_sent r.Sim.delivered;
  List.iter
    (fun (src, dst, _) ->
      checkb "ring structure" true (dst = (src + 1) mod n || dst = (src + 2) mod n))
    (Sim.deliveries t)

let () =
  Alcotest.run "mycelium-mixnet"
    [
      ( "bulletin",
        [
          Alcotest.test_case "hash chain" `Quick test_bulletin_chain;
          Alcotest.test_case "queries" `Quick test_bulletin_queries;
        ] );
      ( "vmap",
        [
          Alcotest.test_case "build and lookup" `Quick test_vmap_build_and_lookup;
          Alcotest.test_case "wrong index rejected" `Quick test_vmap_lookup_wrong_index_rejected;
          Alcotest.test_case "build rejects cheating" `Quick test_vmap_build_rejects_cheating;
          Alcotest.test_case "audits pass honest map" `Quick test_vmap_audits_pass_honest;
          Alcotest.test_case "own audit detects omission" `Quick test_vmap_own_audit_detects_omission;
          Alcotest.test_case "spot check detects mismatch" `Quick test_vmap_spot_check_detects_mismatch;
        ] );
      ( "hopselect",
        [
          Alcotest.test_case "deterministic" `Quick test_hopselect_deterministic;
          Alcotest.test_case "slots partition f-slices" `Quick test_hopselect_slots_partition;
          Alcotest.test_case "draw eligibility" `Quick test_hopselect_draw;
          Alcotest.test_case "beacon matters" `Quick test_hopselect_beacon_matters;
        ] );
      ( "onion",
        [
          Alcotest.test_case "wrap/unwrap roundtrip" `Quick test_onion_wrap_unwrap;
          Alcotest.test_case "length constant" `Quick test_onion_length_constant;
          Alcotest.test_case "dummies look right" `Quick test_onion_dummy_undetectable_shape;
          Alcotest.test_case "wrong round fails" `Quick test_onion_wrong_round_fails;
          prop_onion_roundtrip;
          prop_onion_partial_peel_garbles;
        ] );
      ( "model",
        [
          Alcotest.test_case "round counts (Fig 5d)" `Quick test_model_rounds;
          Alcotest.test_case "anonymity anchor (Fig 5a)" `Quick test_model_anonymity_anchor;
          Alcotest.test_case "identification anchor (Fig 5b)" `Quick test_model_identification_anchor;
          Alcotest.test_case "goodput anchor (Fig 5c)" `Quick test_model_goodput_anchor;
          Alcotest.test_case "batch size" `Quick test_model_batch_size;
        ] );
      ( "sim",
        [
          Alcotest.test_case "setup and delivery" `Quick test_sim_setup_and_delivery;
          Alcotest.test_case "payload integrity" `Quick test_sim_payload_integrity;
          Alcotest.test_case "self targets by default" `Quick test_sim_self_targets_by_default;
          Alcotest.test_case "churn costs delivery" `Quick test_sim_churn_costs_delivery;
          Alcotest.test_case "malicious forwarders drop covertly" `Quick test_sim_malicious_forwarders_drop;
          Alcotest.test_case "anonymity grows with population" `Quick test_sim_anonymity_grows_with_population;
          Alcotest.test_case "honest paths stay anonymous" `Quick test_sim_observer_never_breaks_honest_paths;
          Alcotest.test_case "bulletin records rounds" `Quick test_sim_bulletin_records_rounds;
          Alcotest.test_case "multiple pseudonyms per device" `Quick test_sim_multi_pseudonym;
          Alcotest.test_case "repeated rounds keep anonymity" `Quick test_sim_repeated_rounds;
          Alcotest.test_case "rounds advance the clock" `Quick test_sim_rounds_advance_clock;
          Alcotest.test_case "explicit targets" `Quick test_sim_explicit_targets;
          Alcotest.test_case "footprint stable over rounds" `Quick test_sim_footprint_stable;
          Alcotest.test_case "100k acceptance under heap bound" `Slow test_sim_acceptance_100k;
        ] );
    ]
