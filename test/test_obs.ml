(* Observability suite (DESIGN.md §8): span recording under the domain
   pool, histogram bucket math, exporter round-trips through the shared
   JSON codec, and the acceptance contract — query results, DP noise
   and degradation reports are byte-identical with tracing off or on,
   at any domain count.

   The @obs dune alias runs this twice: once plainly and once under
   MYCELIUM_DOMAINS=8, so every cell also executes with spans landing
   in eight per-domain buffers. *)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Corpus = Mycelium_query.Corpus
module Params = Mycelium_bgv.Params
module Runtime = Mycelium_core.Runtime
module Fault_plan = Mycelium_faults.Fault_plan
module Injector = Mycelium_faults.Injector
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs
module Ring_backend = Mycelium_math.Ring_backend
module Json = Mycelium_obs.Obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("bool", Json.Bool true);
      ("int", Json.Int (-42));
      ("num", Json.Num 3.25);
      ("str", Json.Str "a \"quoted\"\\\nline\x01");
      ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("obj", Json.Obj [ ("k", Json.Bool false) ]);
    ]

let test_json_roundtrip () =
  match Json.parse (Json.to_string sample_json) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok v -> checkb "round-trip preserves the value" true (v = sample_json)

let test_json_rejects () =
  let bad = [ "{\"a\":1} trailing"; "[1,]"; "{\"a\"}"; "nope"; "\"unterminated"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    bad

let test_json_member () =
  checkb "member finds a key" true (Json.member "int" sample_json = Some (Json.Int (-42)));
  checkb "member misses absent keys" true (Json.member "absent" sample_json = None);
  checkb "member on non-objects" true (Json.member "x" (Json.Int 1) = None)

let test_json_escapes () =
  (* \uXXXX escapes decode to UTF-8, surrogate pairs combine, and the
     emitter's control-character escapes survive a round trip. *)
  let parse_exn s =
    match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  checkb "BMP escape" true (parse_exn {|"\u00e9"|} = Json.Str "\xc3\xa9");
  checkb "ASCII escape" true (parse_exn {|"\u0041"|} = Json.Str "A");
  checkb "three-byte escape" true (parse_exn {|"\u20ac"|} = Json.Str "\xe2\x82\xac");
  checkb "surrogate pair -> U+1F600" true
    (parse_exn {|"\ud83d\ude00"|} = Json.Str "\xf0\x9f\x98\x80");
  (* Embedded NUL: escaped on output, preserved through a round trip. *)
  let nul = Json.Str "a\x00b" in
  checkb "NUL survives a round trip" true (Json.parse (Json.to_string nul) = Ok nul);
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [
      {|"\ud83d"|} (* lone high surrogate *);
      {|"\ude00"|} (* lone low surrogate *);
      {|"\ud83dA"|} (* high surrogate followed by a non-surrogate *);
      {|"\u12g4"|} (* non-hex digit *);
      {|"\u1_34"|} (* OCaml literal underscore is not JSON hex *);
      {|"\u123"|} (* truncated *);
    ]

let test_json_depth_limit () =
  let nested n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  (match Json.parse (nested 100) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 100 should parse: %s" e);
  (match Json.parse (nested 511) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 511 should parse: %s" e);
  (match Json.parse (nested 5000) with
  | Ok _ -> Alcotest.fail "parser accepted 5000 levels of nesting"
  | Error _ -> ());
  (* Same limit through object nesting. *)
  let deep_obj n =
    String.concat ""
      [ String.concat "" (List.init n (fun _ -> "{\"k\":")); "1"; String.make n '}' ]
  in
  match Json.parse (deep_obj 5000) with
  | Ok _ -> Alcotest.fail "parser accepted 5000 levels of object nesting"
  | Error _ -> ()

let test_json_to_channel () =
  (* The streaming writer emits byte-identical output to to_string. *)
  let path = Filename.temp_file "obs_json" ".json" in
  let oc = open_out_bin path in
  Json.to_channel oc sample_json;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  checkb "to_channel matches to_string" true (String.equal s (Json.to_string sample_json))

(* ------------------------------------------------------------------ *)
(* Histogram bucket math                                               *)
(* ------------------------------------------------------------------ *)

let test_histogram () =
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4.; 8. |] "test.hist" in
  (* Upper bounds are inclusive; past the last bound is the overflow
     bucket. *)
  checki "0.5 -> bucket 0" 0 (Obs.Metrics.bucket_index h 0.5);
  checki "1.0 -> bucket 0 (bound inclusive)" 0 (Obs.Metrics.bucket_index h 1.0);
  checki "1.5 -> bucket 1" 1 (Obs.Metrics.bucket_index h 1.5);
  checki "4.0 -> bucket 2" 2 (Obs.Metrics.bucket_index h 4.0);
  checki "8.0 -> bucket 3" 3 (Obs.Metrics.bucket_index h 8.0);
  checki "9.0 -> overflow" 4 (Obs.Metrics.bucket_index h 9.0);
  Obs.with_enabled (fun () ->
      Obs.reset ();
      List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 4.0; 8.0; 9.0; 100. ];
      checkb "counts per bucket" true
        (Obs.Metrics.histogram_counts h = [| 2; 1; 1; 1; 2 |]);
      checki "total count" 7 (Obs.Metrics.histogram_count h);
      checkb "sum" true (Float.abs (Obs.Metrics.histogram_sum h -. 124.0) < 1e-9));
  (* Disabled observations must not record. *)
  Obs.Metrics.observe h 1.0;
  checki "disabled observe is a no-op" 7 (Obs.Metrics.histogram_count h)

let test_counter_gauge () =
  let c = Obs.Metrics.counter "test.counter" in
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Obs.Metrics.set g 2.5);
  checki "counter accumulates" 5 (Obs.Metrics.value c);
  checkb "gauge holds the last value" true (Obs.Metrics.gauge_value g = 2.5);
  Obs.Metrics.incr c;
  checki "disabled incr is a no-op" 5 (Obs.Metrics.value c);
  checkb "same name returns the same metric" true
    (Obs.Metrics.value (Obs.Metrics.counter "test.counter") = 5)

(* ------------------------------------------------------------------ *)
(* Time-series rings and the background sampler                        *)
(* ------------------------------------------------------------------ *)

let test_timeseries_ring () =
  let s = Obs.Timeseries.register ~capacity:4 "test.ring" in
  checki "ring capacity" 4 (Obs.Timeseries.capacity s);
  checkb "empty last" true (Obs.Timeseries.last s = None);
  for i = 1 to 10 do
    Obs.Timeseries.record s (float_of_int i)
  done;
  checki "total counts every record" 10 (Obs.Timeseries.total s);
  let pts = Obs.Timeseries.points s in
  checki "window holds capacity points" 4 (Array.length pts);
  checkb "oldest-first window is 7..10" true
    (Array.map snd pts = [| 7.; 8.; 9.; 10. |]);
  (match Obs.Timeseries.last s with
  | Some (_, v) -> checkb "last is the newest" true (v = 10.)
  | None -> Alcotest.fail "last missing");
  (* timestamps monotone non-decreasing *)
  let ts = Array.map fst pts in
  Array.iteri (fun i t -> if i > 0 then checkb "ns monotone" true (ts.(i - 1) <= t)) ts;
  checkb "register is lookup-or-create" true
    (Obs.Timeseries.total (Obs.Timeseries.register "test.ring") = 10)

let test_sampler_sources () =
  let calls = ref 0 in
  Obs.Sampler.register_source ~name:"test-src" (fun () ->
      incr calls;
      [ ("test.sampled", float_of_int !calls) ]);
  checkb "source registered" true (List.mem "test-src" (Obs.Sampler.source_names ()));
  (* replace-by-name: a second registration under the same name wins *)
  Obs.Sampler.register_source ~name:"test-src" (fun () ->
      incr calls;
      [ ("test.sampled", float_of_int !calls) ]);
  let before = List.length (Obs.Sampler.source_names ()) in
  Obs.Sampler.register_source ~name:"test-src" (fun () -> [ ("test.sampled", 0.) ]);
  checki "replacement does not grow the registry" before
    (List.length (Obs.Sampler.source_names ()));
  Obs.Sampler.sample_once ();
  let gc = Obs.Timeseries.register Obs.Names.gc_heap_words in
  checkb "gc series sampled" true (Obs.Timeseries.total gc > 0);
  let s = Obs.Timeseries.register "test.sampled" in
  checkb "registered source sampled" true (Obs.Timeseries.total s > 0);
  (* A raising source is swallowed, not propagated. *)
  Obs.Sampler.register_source ~name:"test-broken" (fun () -> failwith "boom");
  Obs.Sampler.sample_once ();
  (* background thread: start, let it tick, stop; idempotent stop *)
  let t0 = Obs.Sampler.tick_count () in
  Obs.Sampler.start ~period_s:0.001 ();
  checkb "sampler active" true (Obs.Sampler.active ());
  Thread.delay 0.05;
  Obs.Sampler.stop ();
  Obs.Sampler.stop ();
  checkb "sampler stopped" false (Obs.Sampler.active ());
  checkb "ticker advanced" true (Obs.Sampler.tick_count () > t0)

let test_prometheus_export () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Obs.Metrics.incr (Obs.Metrics.counter "test.prom.counter");
      Obs.Metrics.set (Obs.Metrics.gauge "test.prom.gauge") 2.5;
      let h = Obs.Metrics.histogram ~buckets:[| 1.; 2. |] "test.prom.hist" in
      List.iter (Obs.Metrics.observe h) [ 0.5; 1.5; 3.0 ];
      Obs.Timeseries.record (Obs.Timeseries.register "test.prom.series") 7.25;
      let s = Obs.prometheus_string () in
      let has needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      checkb "counter TYPE line" true (has "# TYPE mycelium_test_prom_counter counter");
      checkb "counter sample" true (has "mycelium_test_prom_counter 1");
      checkb "gauge sample" true (has "mycelium_test_prom_gauge 2.5");
      checkb "histogram TYPE line" true (has "# TYPE mycelium_test_prom_hist histogram");
      checkb "cumulative le bucket" true (has "mycelium_test_prom_hist_bucket{le=\"2\"} 2");
      checkb "+Inf bucket" true (has "mycelium_test_prom_hist_bucket{le=\"+Inf\"} 3");
      checkb "histogram count" true (has "mycelium_test_prom_hist_count 3");
      checkb "timeseries family" true
        (has "mycelium_timeseries{series=\"test.prom.series\"} 7.25");
      (* Streaming export is byte-identical to the string. *)
      let path = Filename.temp_file "obs_prom" ".txt" in
      Obs.write_prometheus path;
      let ic = open_in_bin path in
      let file = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      checkb "write_prometheus matches prometheus_string" true (String.equal file s))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_recorder_ring () =
  Obs.Recorder.enable ~capacity:8 ();
  checkb "recording" true (Obs.Recorder.recording ());
  checki "capacity applied" 8 (Obs.Recorder.capacity ());
  for i = 1 to 20 do
    Obs.Recorder.note ~detail:[ ("i", Json.Int i) ] "test.ev"
  done;
  checki "recorded counts every note" 20 (Obs.Recorder.recorded ());
  let evs = Obs.Recorder.events () in
  checki "ring keeps the last capacity events" 8 (List.length evs);
  let seqs = List.map (fun (e : Obs.Recorder.event) -> e.Obs.Recorder.ev_seq) evs in
  checkb "oldest-first, the final window" true (seqs = [ 12; 13; 14; 15; 16; 17; 18; 19 ]);
  (* Dump round-trips through the hardened parser. *)
  (match Json.parse (Obs.Recorder.dump_string ()) with
  | Error e -> Alcotest.failf "dump does not re-parse: %s" e
  | Ok doc ->
    checkb "schema" true (Json.member "schema" doc = Some (Json.Str "mycelium-flight/1"));
    checkb "dropped = recorded - window" true (Json.member "dropped" doc = Some (Json.Int 12)));
  (* Disabled note is a no-op. *)
  Obs.Recorder.disable ();
  Obs.Recorder.note "test.ghost";
  checki "disabled note records nothing" 20 (Obs.Recorder.recorded ());
  Obs.Recorder.clear ()

let test_recorder_autodump () =
  let path = Filename.temp_file "obs_flight" ".json" in
  Sys.remove path;
  Obs.Recorder.enable ~capacity:16 ();
  Obs.Recorder.arm path;
  checkb "no dump before any trigger" false (Sys.file_exists path);
  Obs.Recorder.note ~detail:[ ("round", Json.Int 1) ] "fault.drop";
  Obs.Recorder.trigger ();
  checkb "first trigger writes immediately" true (Sys.file_exists path);
  (* Later events fold into the exit-time rewrite via flush. *)
  Obs.Recorder.note "fault.retry";
  Obs.Recorder.flush ();
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Obs.Recorder.disarm ();
  Obs.Recorder.disable ();
  Obs.Recorder.clear ();
  match Json.parse s with
  | Error e -> Alcotest.failf "auto-dump does not re-parse: %s" e
  | Ok doc ->
    let kinds =
      match Json.member "events" doc with
      | Some (Json.List evs) ->
        List.filter_map
          (fun e -> match Json.member "kind" e with Some (Json.Str k) -> Some k | _ -> None)
          evs
      | _ -> Alcotest.fail "dump has no events array"
    in
    checkb "dump holds the fault event" true (List.mem "fault.drop" kinds);
    checkb "flush folded the later event in" true (List.mem "fault.retry" kinds)

(* ------------------------------------------------------------------ *)
(* Span recording under the pool                                       *)
(* ------------------------------------------------------------------ *)

let busy_work i =
  let acc = ref i in
  for j = 1 to 1000 do
    acc := (!acc * 31) + j
  done;
  Sys.opaque_identity !acc

let test_span_nesting () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Pool.with_domains 8 (fun () ->
          let (_ : int array) =
            Pool.mapi_array (Pool.default ())
              (fun i () ->
                Obs.span "task" ~attrs:[ ("i", Json.Int i) ] (fun () ->
                    Obs.span "task.inner" (fun () -> busy_work i)))
              (Array.make 64 ())
          in
          ());
      let spans = Obs.all_spans () in
      checkb "spans were recorded" true (List.length spans >= 128);
      List.iter
        (fun (s : Obs.span) ->
          checkb ("span closed: " ^ s.Obs.sp_name) false (Float.is_nan s.Obs.sp_end);
          checkb "start precedes end" true (s.Obs.sp_start <= s.Obs.sp_end))
        spans;
      (* Per domain: start order and [sp_seq] agree, and every nested
         span sits inside an enclosing span one level up. *)
      let doms = List.sort_uniq compare (List.map (fun s -> s.Obs.sp_dom) spans) in
      List.iter
        (fun dom ->
          let mine = List.filter (fun s -> s.Obs.sp_dom = dom) spans in
          let by_seq =
            List.sort (fun a b -> compare a.Obs.sp_seq b.Obs.sp_seq) mine
          in
          let rec check_order = function
            | a :: (b :: _ as rest) ->
              checkb "seq order matches start order" true
                (a.Obs.sp_start <= b.Obs.sp_start);
              checkb "seq values are distinct" true (a.Obs.sp_seq < b.Obs.sp_seq);
              check_order rest
            | _ -> ()
          in
          check_order by_seq;
          List.iter
            (fun s ->
              if s.Obs.sp_depth > 0 then
                checkb ("nested span has an enclosing span: " ^ s.Obs.sp_name) true
                  (List.exists
                     (fun p ->
                       p.Obs.sp_depth = s.Obs.sp_depth - 1
                       && p.Obs.sp_start <= s.Obs.sp_start
                       && s.Obs.sp_end <= p.Obs.sp_end)
                     mine))
            mine)
        doms;
      (* The inner span is always one level below its task span. *)
      List.iter
        (fun s ->
          if s.Obs.sp_name = "task.inner" then
            checkb "inner depth > 0" true (s.Obs.sp_depth > 0))
        spans)

let test_span_disabled_is_free () =
  Obs.disable ();
  let before = Obs.span_count () in
  let v = Obs.span "ghost" (fun () -> 17) in
  checki "span returns the body's value" 17 v;
  checki "disabled span records nothing" before (Obs.span_count ())

let test_sampler () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      let s = Obs.sampler ~every:4 in
      for i = 1 to 16 do
        ignore (Obs.sampled_span s "hot" (fun () -> i))
      done;
      checki "one span per [every] calls" 4
        (List.length
           (List.filter (fun sp -> sp.Obs.sp_name = "hot") (Obs.all_spans ()))))

(* ------------------------------------------------------------------ *)
(* Pool worker stats (the pool.mli invariant)                          *)
(* ------------------------------------------------------------------ *)

let test_worker_stats () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Pool.with_domains 2 (fun () ->
          let pool = Pool.default () in
          let sum_stats () =
            Array.fold_left
              (fun (t, e) (s : Pool.worker_stats) ->
                (t + s.Pool.tasks_run, e + s.Pool.exceptions_caught))
              (0, 0) (Pool.worker_stats pool)
          in
          let t0, e0 = sum_stats () in
          let m0 = Obs.Metrics.(value (counter "pool.chunks_run")) in
          let (_ : int array) = Pool.mapi_array pool (fun i () -> busy_work i) (Array.make 64 ()) in
          let t1, e1 = sum_stats () in
          let m1 = Obs.Metrics.(value (counter "pool.chunks_run")) in
          checkb "queued chunks were counted" true (t1 > t0);
          checki "stats sum equals the registry metric" (t1 - t0) (m1 - m0);
          (* A raising task is counted and the exception re-raised. *)
          (match
             Pool.mapi_array pool
               (fun i () -> if i = 3 then failwith "boom" else busy_work i)
               (Array.make 64 ())
           with
          | (_ : int array) -> Alcotest.fail "expected the task exception to re-raise"
          | exception Failure m -> checkb "first exception re-raised" true (m = "boom"));
          let _, e2 = sum_stats () in
          checkb "exceptions_caught advanced" true (e2 > e1);
          checki "exception metric agrees" (e2 - e0)
            Obs.Metrics.(value (counter "pool.task_exceptions"))))

(* ------------------------------------------------------------------ *)
(* End-to-end acceptance: identical results, valid exported trace      *)
(* ------------------------------------------------------------------ *)

let small_graph () =
  let rng = Rng.create 4242L in
  let g =
    Cg.generate
      { Cg.default_config with Cg.population = 16; degree_bound = 4; extra_contact_rate = 1.5 }
      rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
  g

let plan =
  Fault_plan.make ~drop_rate:0.1 ~churn_rate:0.1 ~crashed_committee:[ 2 ]
    ~aggregator_restarts:1 ~seed:2024L ()

let run_q ~trace () =
  let sys =
    Runtime.init
      { Runtime.default_config with
        Runtime.params = Params.test_small;
        degree_bound = 4;
        faults = Some plan;
        trace
      }
      (small_graph ())
  in
  match Runtime.run_query sys (Corpus.find "Q5").Corpus.sql with
  | Ok r -> r
  | Error _ -> Alcotest.fail "acceptance query failed"

let same_release (a : Runtime.query_result) (b : Runtime.query_result) =
  a.Runtime.noisy_bins = b.Runtime.noisy_bins
  && a.Runtime.result = b.Runtime.result
  && Injector.report_equal a.Runtime.degradation b.Runtime.degradation

let test_identical_on_off () =
  Obs.disable ();
  let base = run_q ~trace:false () in
  Obs.reset ();
  let traced = run_q ~trace:true () in
  Obs.disable ();
  checkb "tracing on/off releases are identical" true (same_release base traced);
  (* And across domain counts with tracing on. *)
  List.iter
    (fun d ->
      Obs.reset ();
      let r = Pool.with_domains d (fun () -> run_q ~trace:true ()) in
      Obs.disable ();
      checkb (Printf.sprintf "identical at %d domains (traced)" d) true
        (same_release base r))
    [ 1; 2; 8 ];
  (* Sweep the ring-backend switch too: trace on, either backend, must
     release the same bytes as the untraced default-backend baseline. *)
  List.iter
    (fun backend ->
      Obs.reset ();
      let r =
        Ring_backend.with_backend backend (fun () ->
            Pool.with_domains 8 (fun () -> run_q ~trace:true ()))
      in
      Obs.disable ();
      checkb (Printf.sprintf "identical on %s backend (traced, 8 domains)" backend) true
        (same_release base r))
    [ "reference"; "montgomery" ]

let test_exported_trace () =
  Obs.disable ();
  Obs.reset ();
  let (_ : Runtime.query_result) = run_q ~trace:true () in
  let s = Obs.chrome_trace_string () in
  Obs.disable ();
  match Json.parse s with
  | Error e -> Alcotest.failf "exported trace does not re-parse: %s" e
  | Ok doc ->
    let events =
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) -> evs
      | _ -> Alcotest.fail "trace has no traceEvents array"
    in
    checki "one event per recorded span" (Obs.span_count ()) (List.length events);
    let names =
      List.filter_map
        (fun e -> match Json.member "name" e with Some (Json.Str n) -> Some n | _ -> None)
        events
    in
    List.iter
      (fun phase ->
        checkb ("trace contains " ^ phase) true (List.mem phase names))
      [ "runtime.init"; "query.gather"; "query.aggregate"; "query.summation"; "query.decrypt" ];
    (* The metrics export also re-parses. *)
    (match Json.parse (Json.to_string (Obs.metrics_json ())) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "metrics JSON does not re-parse: %s" e)

(* ------------------------------------------------------------------ *)
(* Audit ledger: exact budget accounting                                *)
(* ------------------------------------------------------------------ *)

let test_ledger_exact_totals () =
  let path = Filename.temp_file "obs_ledger" ".jsonl" in
  Sys.remove path;
  Obs.disable ();
  let sys =
    Runtime.init
      { Runtime.default_config with
        Runtime.params = Params.test_small;
        degree_bound = 4;
        epsilon_budget = 2.5;
        ledger = Some path
      }
      (small_graph ())
  in
  let q = (Corpus.find "Q5").Corpus.sql in
  checkb "first charged query ok" true
    (Result.is_ok (Runtime.run_query ~epsilon:1.0 sys q));
  checkb "infinite-epsilon query ok" true
    (Result.is_ok (Runtime.run_query ~epsilon:infinity sys q));
  checkb "second charged query ok" true
    (Result.is_ok (Runtime.run_query ~epsilon:0.75 sys q));
  (* Q1 is infeasible under test_small parameters: an errored query
     that still lands in the ledger. *)
  (match Runtime.run_query ~epsilon:0.25 sys (Corpus.find "Q1").Corpus.sql with
  | Error (Runtime.Infeasible _) -> ()
  | Ok _ -> Alcotest.fail "Q1 should be infeasible under test_small"
  | Error _ -> Alcotest.fail "Q1 failed for an unexpected reason");
  (match Runtime.run_query ~epsilon:5.0 sys q with
  | Error (Runtime.Budget_exhausted _) -> ()
  | Ok _ -> Alcotest.fail "over-budget query should be rejected"
  | Error _ -> Alcotest.fail "over-budget query failed for the wrong reason");
  (* A parse failure never reaches the executor, so no record. *)
  (match Runtime.run_query sys "SELECT" with
  | Error (Runtime.Parse_error _) -> ()
  | _ -> Alcotest.fail "malformed query should be a parse error");
  let records =
    match Obs.Ledger.read path with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "ledger does not re-parse: %s" e
  in
  Sys.remove path;
  checki "one record per executed query" 5 (List.length records);
  let s = Obs.Ledger.summarize records in
  checki "ok queries" 3 s.Obs.Ledger.ok;
  checki "rejected queries" 1 s.Obs.Ledger.rejected;
  checki "errored queries" 1 s.Obs.Ledger.errored;
  checki "uncharged (infinite-epsilon) queries" 1 s.Obs.Ledger.uncharged;
  (* The acceptance bar: summing the ledger's charged epsilons
     reproduces the accountant bit for bit. *)
  let spent = Mycelium_dp.Dp.budget_spent (Runtime.budget sys) in
  checkb "ledger sum equals Dp.budget_spent exactly" true
    (s.Obs.Ledger.epsilon_spent = spent);
  (match s.Obs.Ledger.budget_total with
  | Some b -> checkb "budget_total carried through" true (b = 2.5)
  | None -> Alcotest.fail "budget_total missing");
  (match s.Obs.Ledger.budget_remaining with
  | Some r ->
    checkb "budget_remaining tracks the accountant" true
      (r = Mycelium_dp.Dp.budget_remaining (Runtime.budget sys))
  | None -> Alcotest.fail "budget_remaining missing");
  (* Per-name rollup covers every distinct query name. *)
  checkb "by_name covers each query name" true
    (List.length s.Obs.Ledger.by_name >= 1);
  let total_runs = List.fold_left (fun a (_, n, _) -> a + n) 0 s.Obs.Ledger.by_name in
  checki "by_name runs sum to the record count" 5 total_runs

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "unicode escapes and NUL" `Quick test_json_escapes;
          Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
          Alcotest.test_case "streaming writer" `Quick test_json_to_channel;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "ring window" `Quick test_timeseries_ring;
          Alcotest.test_case "sampler sources and ticker" `Quick test_sampler_sources;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_export;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "bounded ring and dump" `Quick test_recorder_ring;
          Alcotest.test_case "armed auto-dump" `Quick test_recorder_autodump;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order at 8 domains" `Quick test_span_nesting;
          Alcotest.test_case "disabled spans record nothing" `Quick test_span_disabled_is_free;
          Alcotest.test_case "sampled spans" `Quick test_sampler;
        ] );
      ( "pool",
        [ Alcotest.test_case "worker stats invariant" `Quick test_worker_stats ] );
      ( "acceptance",
        [
          Alcotest.test_case "identical release on/off and across domains" `Slow
            test_identical_on_off;
          Alcotest.test_case "exported trace re-parses with all phases" `Slow
            test_exported_trace;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "exact budget accounting" `Slow test_ledger_exact_totals;
        ] );
    ]
