(* Observability suite (DESIGN.md §8): span recording under the domain
   pool, histogram bucket math, exporter round-trips through the shared
   JSON codec, and the acceptance contract — query results, DP noise
   and degradation reports are byte-identical with tracing off or on,
   at any domain count.

   The @obs dune alias runs this twice: once plainly and once under
   MYCELIUM_DOMAINS=8, so every cell also executes with spans landing
   in eight per-domain buffers. *)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Corpus = Mycelium_query.Corpus
module Params = Mycelium_bgv.Params
module Runtime = Mycelium_core.Runtime
module Fault_plan = Mycelium_faults.Fault_plan
module Injector = Mycelium_faults.Injector
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs
module Ring_backend = Mycelium_math.Ring_backend
module Json = Mycelium_obs.Obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("bool", Json.Bool true);
      ("int", Json.Int (-42));
      ("num", Json.Num 3.25);
      ("str", Json.Str "a \"quoted\"\\\nline\x01");
      ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("obj", Json.Obj [ ("k", Json.Bool false) ]);
    ]

let test_json_roundtrip () =
  match Json.parse (Json.to_string sample_json) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok v -> checkb "round-trip preserves the value" true (v = sample_json)

let test_json_rejects () =
  let bad = [ "{\"a\":1} trailing"; "[1,]"; "{\"a\"}"; "nope"; "\"unterminated"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    bad

let test_json_member () =
  checkb "member finds a key" true (Json.member "int" sample_json = Some (Json.Int (-42)));
  checkb "member misses absent keys" true (Json.member "absent" sample_json = None);
  checkb "member on non-objects" true (Json.member "x" (Json.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Histogram bucket math                                               *)
(* ------------------------------------------------------------------ *)

let test_histogram () =
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4.; 8. |] "test.hist" in
  (* Upper bounds are inclusive; past the last bound is the overflow
     bucket. *)
  checki "0.5 -> bucket 0" 0 (Obs.Metrics.bucket_index h 0.5);
  checki "1.0 -> bucket 0 (bound inclusive)" 0 (Obs.Metrics.bucket_index h 1.0);
  checki "1.5 -> bucket 1" 1 (Obs.Metrics.bucket_index h 1.5);
  checki "4.0 -> bucket 2" 2 (Obs.Metrics.bucket_index h 4.0);
  checki "8.0 -> bucket 3" 3 (Obs.Metrics.bucket_index h 8.0);
  checki "9.0 -> overflow" 4 (Obs.Metrics.bucket_index h 9.0);
  Obs.with_enabled (fun () ->
      Obs.reset ();
      List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.5; 4.0; 8.0; 9.0; 100. ];
      checkb "counts per bucket" true
        (Obs.Metrics.histogram_counts h = [| 2; 1; 1; 1; 2 |]);
      checki "total count" 7 (Obs.Metrics.histogram_count h);
      checkb "sum" true (Float.abs (Obs.Metrics.histogram_sum h -. 124.0) < 1e-9));
  (* Disabled observations must not record. *)
  Obs.Metrics.observe h 1.0;
  checki "disabled observe is a no-op" 7 (Obs.Metrics.histogram_count h)

let test_counter_gauge () =
  let c = Obs.Metrics.counter "test.counter" in
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Obs.Metrics.set g 2.5);
  checki "counter accumulates" 5 (Obs.Metrics.value c);
  checkb "gauge holds the last value" true (Obs.Metrics.gauge_value g = 2.5);
  Obs.Metrics.incr c;
  checki "disabled incr is a no-op" 5 (Obs.Metrics.value c);
  checkb "same name returns the same metric" true
    (Obs.Metrics.value (Obs.Metrics.counter "test.counter") = 5)

(* ------------------------------------------------------------------ *)
(* Span recording under the pool                                       *)
(* ------------------------------------------------------------------ *)

let busy_work i =
  let acc = ref i in
  for j = 1 to 1000 do
    acc := (!acc * 31) + j
  done;
  Sys.opaque_identity !acc

let test_span_nesting () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Pool.with_domains 8 (fun () ->
          let (_ : int array) =
            Pool.mapi_array (Pool.default ())
              (fun i () ->
                Obs.span "task" ~attrs:[ ("i", Json.Int i) ] (fun () ->
                    Obs.span "task.inner" (fun () -> busy_work i)))
              (Array.make 64 ())
          in
          ());
      let spans = Obs.all_spans () in
      checkb "spans were recorded" true (List.length spans >= 128);
      List.iter
        (fun (s : Obs.span) ->
          checkb ("span closed: " ^ s.Obs.sp_name) false (Float.is_nan s.Obs.sp_end);
          checkb "start precedes end" true (s.Obs.sp_start <= s.Obs.sp_end))
        spans;
      (* Per domain: start order and [sp_seq] agree, and every nested
         span sits inside an enclosing span one level up. *)
      let doms = List.sort_uniq compare (List.map (fun s -> s.Obs.sp_dom) spans) in
      List.iter
        (fun dom ->
          let mine = List.filter (fun s -> s.Obs.sp_dom = dom) spans in
          let by_seq =
            List.sort (fun a b -> compare a.Obs.sp_seq b.Obs.sp_seq) mine
          in
          let rec check_order = function
            | a :: (b :: _ as rest) ->
              checkb "seq order matches start order" true
                (a.Obs.sp_start <= b.Obs.sp_start);
              checkb "seq values are distinct" true (a.Obs.sp_seq < b.Obs.sp_seq);
              check_order rest
            | _ -> ()
          in
          check_order by_seq;
          List.iter
            (fun s ->
              if s.Obs.sp_depth > 0 then
                checkb ("nested span has an enclosing span: " ^ s.Obs.sp_name) true
                  (List.exists
                     (fun p ->
                       p.Obs.sp_depth = s.Obs.sp_depth - 1
                       && p.Obs.sp_start <= s.Obs.sp_start
                       && s.Obs.sp_end <= p.Obs.sp_end)
                     mine))
            mine)
        doms;
      (* The inner span is always one level below its task span. *)
      List.iter
        (fun s ->
          if s.Obs.sp_name = "task.inner" then
            checkb "inner depth > 0" true (s.Obs.sp_depth > 0))
        spans)

let test_span_disabled_is_free () =
  Obs.disable ();
  let before = Obs.span_count () in
  let v = Obs.span "ghost" (fun () -> 17) in
  checki "span returns the body's value" 17 v;
  checki "disabled span records nothing" before (Obs.span_count ())

let test_sampler () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      let s = Obs.sampler ~every:4 in
      for i = 1 to 16 do
        ignore (Obs.sampled_span s "hot" (fun () -> i))
      done;
      checki "one span per [every] calls" 4
        (List.length
           (List.filter (fun sp -> sp.Obs.sp_name = "hot") (Obs.all_spans ()))))

(* ------------------------------------------------------------------ *)
(* Pool worker stats (the pool.mli invariant)                          *)
(* ------------------------------------------------------------------ *)

let test_worker_stats () =
  Obs.with_enabled (fun () ->
      Obs.reset ();
      Pool.with_domains 2 (fun () ->
          let pool = Pool.default () in
          let sum_stats () =
            Array.fold_left
              (fun (t, e) (s : Pool.worker_stats) ->
                (t + s.Pool.tasks_run, e + s.Pool.exceptions_caught))
              (0, 0) (Pool.worker_stats pool)
          in
          let t0, e0 = sum_stats () in
          let m0 = Obs.Metrics.(value (counter "pool.chunks_run")) in
          let (_ : int array) = Pool.mapi_array pool (fun i () -> busy_work i) (Array.make 64 ()) in
          let t1, e1 = sum_stats () in
          let m1 = Obs.Metrics.(value (counter "pool.chunks_run")) in
          checkb "queued chunks were counted" true (t1 > t0);
          checki "stats sum equals the registry metric" (t1 - t0) (m1 - m0);
          (* A raising task is counted and the exception re-raised. *)
          (match
             Pool.mapi_array pool
               (fun i () -> if i = 3 then failwith "boom" else busy_work i)
               (Array.make 64 ())
           with
          | (_ : int array) -> Alcotest.fail "expected the task exception to re-raise"
          | exception Failure m -> checkb "first exception re-raised" true (m = "boom"));
          let _, e2 = sum_stats () in
          checkb "exceptions_caught advanced" true (e2 > e1);
          checki "exception metric agrees" (e2 - e0)
            Obs.Metrics.(value (counter "pool.task_exceptions"))))

(* ------------------------------------------------------------------ *)
(* End-to-end acceptance: identical results, valid exported trace      *)
(* ------------------------------------------------------------------ *)

let small_graph () =
  let rng = Rng.create 4242L in
  let g =
    Cg.generate
      { Cg.default_config with Cg.population = 16; degree_bound = 4; extra_contact_rate = 1.5 }
      rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
  g

let plan =
  Fault_plan.make ~drop_rate:0.1 ~churn_rate:0.1 ~crashed_committee:[ 2 ]
    ~aggregator_restarts:1 ~seed:2024L ()

let run_q ~trace () =
  let sys =
    Runtime.init
      { Runtime.default_config with
        Runtime.params = Params.test_small;
        degree_bound = 4;
        faults = Some plan;
        trace
      }
      (small_graph ())
  in
  match Runtime.run_query sys (Corpus.find "Q5").Corpus.sql with
  | Ok r -> r
  | Error _ -> Alcotest.fail "acceptance query failed"

let same_release (a : Runtime.query_result) (b : Runtime.query_result) =
  a.Runtime.noisy_bins = b.Runtime.noisy_bins
  && a.Runtime.result = b.Runtime.result
  && Injector.report_equal a.Runtime.degradation b.Runtime.degradation

let test_identical_on_off () =
  Obs.disable ();
  let base = run_q ~trace:false () in
  Obs.reset ();
  let traced = run_q ~trace:true () in
  Obs.disable ();
  checkb "tracing on/off releases are identical" true (same_release base traced);
  (* And across domain counts with tracing on. *)
  List.iter
    (fun d ->
      Obs.reset ();
      let r = Pool.with_domains d (fun () -> run_q ~trace:true ()) in
      Obs.disable ();
      checkb (Printf.sprintf "identical at %d domains (traced)" d) true
        (same_release base r))
    [ 1; 2; 8 ];
  (* Sweep the ring-backend switch too: trace on, either backend, must
     release the same bytes as the untraced default-backend baseline. *)
  List.iter
    (fun backend ->
      Obs.reset ();
      let r =
        Ring_backend.with_backend backend (fun () ->
            Pool.with_domains 8 (fun () -> run_q ~trace:true ()))
      in
      Obs.disable ();
      checkb (Printf.sprintf "identical on %s backend (traced, 8 domains)" backend) true
        (same_release base r))
    [ "reference"; "montgomery" ]

let test_exported_trace () =
  Obs.disable ();
  Obs.reset ();
  let (_ : Runtime.query_result) = run_q ~trace:true () in
  let s = Obs.chrome_trace_string () in
  Obs.disable ();
  match Json.parse s with
  | Error e -> Alcotest.failf "exported trace does not re-parse: %s" e
  | Ok doc ->
    let events =
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) -> evs
      | _ -> Alcotest.fail "trace has no traceEvents array"
    in
    checki "one event per recorded span" (Obs.span_count ()) (List.length events);
    let names =
      List.filter_map
        (fun e -> match Json.member "name" e with Some (Json.Str n) -> Some n | _ -> None)
        events
    in
    List.iter
      (fun phase ->
        checkb ("trace contains " ^ phase) true (List.mem phase names))
      [ "runtime.init"; "query.gather"; "query.aggregate"; "query.summation"; "query.decrypt" ];
    (* The metrics export also re-parses. *)
    (match Json.parse (Json.to_string (Obs.metrics_json ())) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "metrics JSON does not re-parse: %s" e)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order at 8 domains" `Quick test_span_nesting;
          Alcotest.test_case "disabled spans record nothing" `Quick test_span_disabled_is_free;
          Alcotest.test_case "sampled spans" `Quick test_sampler;
        ] );
      ( "pool",
        [ Alcotest.test_case "worker stats invariant" `Quick test_worker_stats ] );
      ( "acceptance",
        [
          Alcotest.test_case "identical release on/off and across domains" `Slow
            test_identical_on_off;
          Alcotest.test_case "exported trace re-parses with all phases" `Slow
            test_exported_trace;
        ] );
    ]
