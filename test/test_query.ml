(* Tests for mycelium_query: parser, analysis (Figure 6 regression,
   sensitivity, feasibility per §6.2) and the reference semantics over
   generated epidemic graphs. *)

module Rng = Mycelium_util.Rng
module Schema = Mycelium_graph.Schema
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Ast = Mycelium_query.Ast
module Parser = Mycelium_query.Parser
module Analysis = Mycelium_query.Analysis
module Corpus = Mycelium_query.Corpus
module Semantics = Mycelium_query.Semantics
module Params = Mycelium_bgv.Params

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_corpus () =
  (* All ten Figure 2 queries are expressible and parse (the first half
     of the §6.2 generality result). *)
  List.iter
    (fun (e : Corpus.entry) ->
      checkb (e.Corpus.id ^ " parses") true (e.Corpus.query.Ast.name = e.Corpus.id))
    Corpus.all;
  checki "ten queries" 10 (List.length Corpus.all)

let test_parse_print_fixpoint () =
  (* print . parse . print = print *)
  List.iter
    (fun (e : Corpus.entry) ->
      let printed = Ast.to_string e.Corpus.query in
      let reparsed = Parser.parse_exn ~name:e.Corpus.id printed in
      Alcotest.(check string)
        (e.Corpus.id ^ " fixpoint") printed (Ast.to_string reparsed))
    Corpus.all

let test_parse_structure_q1 () =
  let q = (Corpus.find "Q1").Corpus.query in
  checki "two hops" 2 q.Ast.hops;
  (match q.Ast.output with
  | Ast.Histo Ast.Count -> ()
  | _ -> Alcotest.fail "expected HISTO(COUNT(*))");
  match q.Ast.where with
  | Ast.And (Ast.Truthy { Ast.group = Ast.Dest; field = Ast.Inf }, Ast.Truthy { Ast.group = Ast.Self; field = Ast.Inf }) -> ()
  | _ -> Alcotest.fail "unexpected WHERE shape"

let test_parse_structure_q10 () =
  let q = (Corpus.find "Q10").Corpus.query in
  (match q.Ast.output with
  | Ast.Gsum { ratio = true; clip = None; num = Ast.Sum { Ast.group = Ast.Dest; field = Ast.Inf } } -> ()
  | _ -> Alcotest.fail "expected GSUM ratio");
  match q.Ast.group_by with
  | Ast.By_fn ("stage", Ast.Minus_col (Ast.Col { Ast.group = Ast.Dest; field = Ast.T_inf }, { Ast.group = Ast.Self; field = Ast.T_inf })) -> ()
  | _ -> Alcotest.fail "expected GROUP BY stage(dest.tInf-self.tInf)"

let test_parse_clip () =
  let q = Parser.parse_exn "SELECT GSUM(SUM(edge.contacts)) FROM neigh(1) CLIP [2,8]" in
  match q.Ast.output with
  | Ast.Gsum { clip = Some (2, 8); ratio = false; _ } -> ()
  | _ -> Alcotest.fail "clip not parsed"

let test_parse_errors () =
  let bad =
    [
      "SELECT FROM neigh(1)" (* missing output *);
      "SELECT HISTO(COUNT(*)) FROM neigh(0)" (* zero hops *);
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.duration" (* field/group mismatch *);
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE edge.inf" (* field/group mismatch *);
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE bogus.inf" (* unknown group *);
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.wat" (* unknown field *);
      "SELECT HISTO(COUNT(*)) FROM neigh(1) trailing" (* trailing tokens *);
      "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE (self.inf" (* unbalanced *);
      "SELECT CLIP [1,2]" (* nonsense *);
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted: %s" src)
    bad

let test_parse_case_insensitive_keywords () =
  let q = Parser.parse_exn "select histo(count(*)) from NEIGH(1) where self.inf" in
  checki "hops" 1 q.Ast.hops

(* Random-query fuzzing: generate well-formed ASTs, print them, parse
   them back, and require the printed forms to agree (print . parse .
   print = print). *)
let gen_query =
  let open QCheck.Gen in
  let vertex_field = oneofl [ Ast.Inf; Ast.T_inf; Ast.Age ] in
  let edge_field = oneofl [ Ast.Duration; Ast.Contacts; Ast.Last_contact ] in
  let gen_colref =
    oneof
      [
        (let* f = vertex_field in
         let* g = oneofl [ Ast.Self; Ast.Dest ] in
         return { Ast.group = g; field = f });
        (let* f = edge_field in
         return { Ast.group = Ast.Edge; field = f });
      ]
  in
  let gen_scalar =
    oneof
      [
        map (fun c -> Ast.Col c) gen_colref;
        map (fun v -> Ast.Const v) (int_range 0 50);
        (let* c = gen_colref in
         let* v = int_range 1 20 in
         return (Ast.Plus (Ast.Col c, v)));
        (let* c = gen_colref in
         let* v = int_range 1 20 in
         return (Ast.Minus (Ast.Col c, v)));
      ]
  in
  let gen_atom =
    oneof
      [
        map (fun c -> Ast.Truthy c) gen_colref;
        (let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq ] in
         let* a = gen_scalar in
         let* b = gen_scalar in
         return (Ast.Cmp (op, a, b)));
        (let* x = gen_scalar in
         let* lo = int_range 0 10 in
         let* hi = int_range 11 30 in
         return (Ast.Between (x, Ast.Const lo, Ast.Const hi)));
        (let* f = edge_field in
         let* name = oneofl [ "onSubway"; "isHousehold" ] in
         return (Ast.Fn (name, { Ast.group = Ast.Edge; field = f })));
      ]
  in
  let gen_pred =
    let* n = int_range 1 3 in
    let* atoms = list_repeat n gen_atom in
    return (List.fold_left (fun acc a -> Ast.And (acc, a)) (List.hd atoms) (List.tl atoms))
  in
  let gen_agg =
    oneof [ return Ast.Count; map (fun c -> Ast.Sum c) gen_colref ]
  in
  let gen_output =
    oneof
      [
        map (fun a -> Ast.Histo a) gen_agg;
        (let* a = gen_agg in
         let* ratio = bool in
         let* clip = opt (pair (int_range 0 5) (int_range 6 20)) in
         return (Ast.Gsum { num = a; ratio; clip }));
      ]
  in
  let gen_group =
    oneofl
      [
        Ast.No_group;
        Ast.By_col { Ast.group = Ast.Self; field = Ast.Age };
        Ast.By_col { Ast.group = Ast.Edge; field = Ast.Setting };
        Ast.By_fn ("isHousehold", Ast.Col { Ast.group = Ast.Edge; field = Ast.Location });
      ]
  in
  let* output = gen_output in
  let* hops = int_range 1 3 in
  let* where = oneof [ return Ast.True; gen_pred ] in
  let* group_by = gen_group in
  return { Ast.name = "fuzz"; output; hops; where; group_by }

let prop_parse_print_fixpoint =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"random queries: print.parse.print = print"
       (QCheck.make ~print:Ast.to_string gen_query)
       (fun q ->
         let printed = Ast.to_string q in
         match Parser.parse printed with
         | Error _ -> false
         | Ok q' -> Ast.to_string q' = printed))

let prop_analysis_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"analysis is total on well-formed queries"
       (QCheck.make ~print:Ast.to_string gen_query)
       (fun q ->
         match Analysis.analyze q with
         | Ok info ->
           info.Analysis.ciphertext_count >= 1
           && info.Analysis.layout.Analysis.total_bins >= 1
           && info.Analysis.sensitivity > 0.
         | Error _ -> true (* rejection is fine; crashing is not *)))

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_fig6_ciphertext_counts () =
  (* Figure 6 regression: exact reproduction of the reported counts. *)
  List.iter
    (fun (id, expected) ->
      let info = Analysis.analyze_exn (Corpus.find id).Corpus.query in
      checki (id ^ " ciphertexts") expected info.Analysis.ciphertext_count)
    Corpus.paper_ciphertext_counts

let test_classification () =
  let atom src =
    let q = Parser.parse_exn ("SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE " ^ src) in
    match Analysis.classify_atom q.Ast.where with Ok s -> s | Error e -> Alcotest.fail e
  in
  checkb "self.inf is origin-side" true (atom "self.inf" = Analysis.Origin_side);
  checkb "dest.inf is dest-side" true (atom "dest.inf" = Analysis.Dest_side);
  checkb "edge fn is origin-side" true (atom "onSubway(edge.location)" = Analysis.Origin_side);
  checkb "dest+edge is dest-side" true
    (atom "dest.tInf IN [edge.last_contact+5, edge.last_contact+10]" = Analysis.Dest_side);
  checkb "dest vs self is cross(tInf)" true
    (atom "dest.tInf > self.tInf+2" = Analysis.Cross Ast.T_inf);
  checkb "age window is cross(age)" true
    (atom "self.age IN [dest.age-10, dest.age+10]" = Analysis.Cross Ast.Age)

let test_influence_bound () =
  (* 1-hop with d=10: the ball is 11; 2-hop: 1 + 10 + 10*9 = 101. *)
  let info1 = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  checki "1-hop ball" 11 info1.Analysis.influence_bound;
  let info2 = Analysis.analyze_exn (Corpus.find "Q1").Corpus.query in
  checki "2-hop ball" 101 info2.Analysis.influence_bound;
  checki "Q1 multiplications = d^2" 100 info2.Analysis.multiplications;
  checki "Q5 multiplications = d" 10 info1.Analysis.multiplications

let test_sensitivity () =
  let q5 = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  (* HISTO: 2 per influenced origin. *)
  Alcotest.(check (float 1e-9)) "Q5 sensitivity" 22. q5.Analysis.sensitivity;
  let q8 = Analysis.analyze_exn (Corpus.find "Q8").Corpus.query in
  (* GSUM ratio clipped to [0,1]: width 1 x 11. *)
  Alcotest.(check (float 1e-9)) "Q8 sensitivity" 11. q8.Analysis.sensitivity

let test_layouts_fit_ring () =
  List.iter
    (fun (e : Corpus.entry) ->
      let info = Analysis.analyze_exn e.Corpus.query in
      checkb
        (e.Corpus.id ^ " fits N=32768")
        true
        (info.Analysis.layout.Analysis.total_bins <= Params.paper.Params.degree))
    Corpus.all

let test_generality_section_6_2 () =
  (* The §6.2 result: every query is expressible; every query except Q1
     fits the HE multiplication budget at the paper's parameters. *)
  let budget = Analysis.max_multiplications Params.paper in
  checkb "budget supports 1-hop (d=10)" true (budget >= 10);
  checkb "budget below Q1's 100" true (budget < 100);
  List.iter
    (fun (e : Corpus.entry) ->
      let info = Analysis.analyze_exn e.Corpus.query in
      match (e.Corpus.id, Analysis.feasible info Params.paper) with
      | "Q1", Error _ -> ()
      | "Q1", Ok () -> Alcotest.fail "Q1 should exceed the noise budget (§6.2)"
      | id, Ok () -> ignore id
      | id, Error msg -> Alcotest.failf "%s unexpectedly infeasible: %s" id msg)
    Corpus.all

let test_group_kinds () =
  let kind id =
    (Analysis.analyze_exn (Corpus.find id).Corpus.query).Analysis.group_kind
  in
  checkb "Q5 self group" true (kind "Q5" = Analysis.Group_self);
  checkb "Q7 edge group" true (kind "Q7" = Analysis.Group_edge);
  checkb "Q8 edge group" true (kind "Q8" = Analysis.Group_edge);
  checkb "Q10 cross group" true (kind "Q10" = Analysis.Group_cross Ast.T_inf);
  checkb "Q1 no group" true (kind "Q1" = Analysis.Group_none)

let test_group_counts () =
  let count id =
    (Analysis.analyze_exn (Corpus.find id).Corpus.query).Analysis.layout.Analysis.group_count
  in
  checki "Q5 ten age groups" 10 (count "Q5");
  checki "Q7 three settings" 3 (count "Q7");
  checki "Q8 two groups" 2 (count "Q8");
  checki "Q10 two stages" 2 (count "Q10")

let test_bucketize () =
  checki "age 34 -> decade 3" 3 (Analysis.bucketize Ast.Age 34);
  checki "age 99 -> decade 9" 9 (Analysis.bucketize Ast.Age 99);
  checki "duration 90min -> 1h" 1 (Analysis.bucketize Ast.Duration 90);
  checki "duration clamped" 12 (Analysis.bucketize Ast.Duration 100000);
  checki "contacts capped" 20 (Analysis.bucketize Ast.Contacts 50);
  checki "inf clamped" 1 (Analysis.bucketize Ast.Inf 7)

let test_degree_bound_parameter () =
  let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find "Q1").Corpus.query in
  checki "d=4, k=2 ball" 17 info.Analysis.influence_bound;
  checki "d=4 mults" 16 info.Analysis.multiplications

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let test_graph =
  lazy
    (let rng = Rng.create 4242L in
     let g = Cg.generate { Cg.default_config with Cg.population = 300 } rng in
     let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
     g)

let test_epidemic_nontrivial () =
  let g = Lazy.force test_graph in
  let infected = Cg.fold_vertices g ~init:0 ~f:(fun acc _ v -> if v.Schema.infected then acc + 1 else acc) in
  checkb "some infections" true (infected > 10);
  checkb "not everyone" true (infected < 300);
  checkb "degree bound respected" true (Cg.max_degree g <= 10);
  (* Diagnosed vertices have t_inf within the horizon. *)
  Cg.fold_vertices g ~init:() ~f:(fun () _ v ->
      match v.Schema.t_inf with
      | Some t -> checkb "t_inf in range" true (t >= 0 && t < Cg.horizon_days g)
      | None -> checkb "uninfected has no t_inf" true (not v.Schema.infected))

let test_split_where () =
  let q = (Corpus.find "Q4").Corpus.query in
  match Semantics.split_where q.Ast.where with
  | Ok (globals, rows) ->
    checki "one global (self.inf)" 1 (List.length globals);
    checki "one row-level (onSubway)" 1 (List.length rows)
  | Error e -> Alcotest.fail e

let test_split_where_rejects_mixed_or () =
  let q = Parser.parse_exn "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.inf OR dest.inf" in
  match Semantics.split_where q.Ast.where with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-side OR should be rejected"

let test_split_where_allows_same_side_or () =
  let q =
    Parser.parse_exn "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE (dest.inf OR dest.tInf) AND self.inf"
  in
  match Semantics.split_where q.Ast.where with
  | Ok (globals, rows) ->
    checki "self.inf global" 1 (List.length globals);
    checki "dest disjunction row-level" 1 (List.length rows)
  | Error e -> Alcotest.fail e

let test_q1_semantics_manual () =
  (* Hand-checkable micro-graph: a path a - b - c, all infected. *)
  let rng = Rng.create 7L in
  let g = Cg.generate { Cg.default_config with Cg.population = 3; extra_contact_rate = 0.; mean_household = 3. } rng in
  (* Force a known topology is hard via generator config; instead check
     consistency: Q1 exponent for each origin equals the infected count
     in its 2-hop ball. *)
  let g = if Cg.edge_count g >= 1 then g else g in
  let info = Analysis.analyze_exn (Corpus.find "Q1").Corpus.query in
  (* Infect everyone. *)
  for i = 0 to 2 do
    let v = Cg.vertex g i in
    Cg.set_vertex g i { v with Schema.infected = true; t_inf = Some 3 }
  done;
  for origin = 0 to 2 do
    let ball = Cg.k_hop g origin ~k:2 in
    let expected = 1 + List.length ball in
    match Semantics.local_exponents info g ~origin with
    | Some [ e ] -> checki "counts infected ball" expected e
    | Some _ -> Alcotest.fail "single exponent expected"
    | None -> Alcotest.fail "origin gate should pass"
  done

let test_q1_gate () =
  (* A non-infected origin contributes Enc(0) (None). *)
  let rng = Rng.create 8L in
  let g = Cg.generate { Cg.default_config with Cg.population = 10 } rng in
  let info = Analysis.analyze_exn (Corpus.find "Q1").Corpus.query in
  checkb "uninfected origin skipped" true (Semantics.local_exponents info g ~origin:0 = None)

let test_q5_semantics () =
  (* Q5: contact-count histogram by age; exponent = degree + 1 (the
     origin row), group = origin's decade. *)
  let g = Lazy.force test_graph in
  let info = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  let group_stride = info.Analysis.layout.Analysis.count_slots * info.Analysis.layout.Analysis.value_slots in
  for origin = 0 to 20 do
    match Semantics.local_exponents info g ~origin with
    | Some [ e ] ->
      let v = Cg.vertex g origin in
      let expected_group = Schema.age_group v.Schema.age in
      checki "group" expected_group (e / group_stride);
      checki "count" (Cg.degree g origin + 1) (e mod group_stride)
    | Some _ | None -> Alcotest.fail "Q5 always contributes one exponent"
  done

let test_q8_ratio_packing () =
  let g = Lazy.force test_graph in
  let info = Analysis.analyze_exn (Corpus.find "Q8").Corpus.query in
  let l = info.Analysis.layout in
  let count_stride = l.Analysis.count_slots in
  let group_stride = l.Analysis.count_slots * l.Analysis.value_slots in
  (* Find an infected origin. *)
  let origin = ref (-1) in
  for i = 0 to Cg.population g - 1 do
    if !origin < 0 && (Cg.vertex g i).Schema.infected then origin := i
  done;
  if !origin >= 0 then begin
    match Semantics.local_exponents info g ~origin:!origin with
    | Some exps ->
      checki "one exponent per group" 2 (List.length exps);
      List.iteri
        (fun g_idx e ->
          checki "group region" g_idx (e / group_stride);
          let within = e mod group_stride in
          let s = within / count_stride and c = within mod count_stride in
          checkb "sum <= count" true (s <= c))
        exps
    | None -> Alcotest.fail "infected origin should contribute"
  end

let test_global_histogram_consistency () =
  (* The global histogram sums local contributions; total mass = number
     of contributing origins x groups contributed. *)
  let g = Lazy.force test_graph in
  List.iter
    (fun id ->
      let info = Analysis.analyze_exn (Corpus.find id).Corpus.query in
      let bins = Semantics.global_histogram info g in
      let mass = Array.fold_left ( + ) 0 bins in
      let expected = ref 0 in
      for origin = 0 to Cg.population g - 1 do
        match Semantics.local_exponents info g ~origin with
        | Some exps -> expected := !expected + List.length exps
        | None -> ()
      done;
      checki (id ^ " mass") !expected mass)
    [ "Q1"; "Q4"; "Q5"; "Q8"; "Q10" ]

let test_decode_histogram () =
  let info = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  let g = Lazy.force test_graph in
  let bins = Semantics.global_histogram info g in
  match Semantics.decode info (Array.map float_of_int bins) with
  | Semantics.Histogram groups ->
    checki "ten age groups" 10 (Array.length groups);
    let total = Array.fold_left (fun acc (_, arr) -> acc +. Array.fold_left ( +. ) 0. arr) 0. groups in
    checki "every origin counted" (Cg.population g) (int_of_float total)
  | Semantics.Sums _ -> Alcotest.fail "expected histogram"

let test_decode_gsum_ratio () =
  let info = Analysis.analyze_exn (Corpus.find "Q8").Corpus.query in
  let g = Lazy.force test_graph in
  let bins = Semantics.global_histogram info g in
  match Semantics.decode info (Array.map float_of_int bins) with
  | Semantics.Sums groups ->
    checki "two groups" 2 (Array.length groups);
    Array.iter
      (fun (label, v) ->
        checkb (label ^ " non-negative") true (v >= 0.);
        (* Each origin's clipped ratio is at most 1, so the sum is
           bounded by the number of infected origins. *)
        let infected =
          Cg.fold_vertices g ~init:0 ~f:(fun acc _ vd -> if vd.Schema.infected then acc + 1 else acc)
        in
        checkb (label ^ " bounded") true (v <= float_of_int infected))
      groups
  | Semantics.Histogram _ -> Alcotest.fail "expected sums"

let test_group_labels () =
  let labels id = Semantics.group_labels (Analysis.analyze_exn (Corpus.find id).Corpus.query) in
  checkb "Q7 settings" true (labels "Q7" = [| "family"; "social"; "work" |]);
  checkb "Q8 household split" true (labels "Q8" = [| "non-household"; "household" |]);
  checkb "Q10 stages" true (labels "Q10" = [| "incubation"; "illness" |]);
  checkb "Q1 single" true (labels "Q1" = [| "all" |])

(* ------------------------------------------------------------------ *)
(* Negative paths: malformed queries, infeasible depth, and budget
   exhaustion all surface as typed [Runtime.query_error] values from
   the full pipeline — never as exceptions.                            *)
(* ------------------------------------------------------------------ *)

module Runtime = Mycelium_core.Runtime

let negative_graph =
  lazy
    (let rng = Rng.create 77L in
     let g =
       Cg.generate
         { Cg.default_config with Cg.population = 16; degree_bound = 4; extra_contact_rate = 1.5 }
         rng
     in
     let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
     g)

let negative_config =
  { Runtime.default_config with Runtime.params = Params.test_small; degree_bound = 4 }

let negative_system = lazy (Runtime.init negative_config (Lazy.force negative_graph))

let neg_err_to_string = function
  | Runtime.Parse_error m -> "parse: " ^ m
  | Runtime.Analysis_error m -> "analysis: " ^ m
  | Runtime.Infeasible m -> "infeasible: " ^ m
  | Runtime.Budget_exhausted r -> Printf.sprintf "budget exhausted (%.2f left)" r
  | Runtime.Pipeline_error m -> "pipeline: " ^ m

let run_no_raise sys ?epsilon src =
  try Runtime.run_query ?epsilon sys src
  with ex -> Alcotest.failf "raised %s on %S" (Printexc.to_string ex) src

let test_negative_malformed_histo_gsum () =
  let sys = Lazy.force negative_system in
  let cases =
    [
      "SELECT HISTO() FROM neigh(1)";
      "SELECT HISTO(COUNT(*) FROM neigh(1)";
      "SELECT HISTO(SUM()) FROM neigh(1)";
      "SELECT HISTO(COUNT(dest.inf)) FROM neigh(1)";
      "SELECT GSUM() FROM neigh(1)";
      "SELECT GSUM(SUM(self.inf)) FROM neigh(1) CLIP [1]";
      "SELECT GSUM(SUM(edge.inf)) FROM neigh(1)";
      "SELECT HISTO(GSUM(COUNT(*))) FROM neigh(1)";
      "SELECT HISTO(COUNT(*)) FROM neigh(-1)";
      "SELECT HISTO(COUNT(*)) FROM neigh(one)";
      "SELECT HISTO(COUNT(*))";
    ]
  in
  List.iter
    (fun src ->
      match run_no_raise sys src with
      | Error (Runtime.Parse_error _) | Error (Runtime.Analysis_error _) -> ()
      | Error e -> Alcotest.failf "%S: wrong error class: %s" src (neg_err_to_string e)
      | Ok _ -> Alcotest.failf "accepted malformed query: %S" src)
    cases

let test_negative_deep_neigh_infeasible () =
  (* neigh(k) beyond the HE multiplication budget at these parameters
     is a typed Infeasible, whatever the depth. *)
  let sys = Lazy.force negative_system in
  List.iter
    (fun src ->
      match run_no_raise sys src with
      | Error (Runtime.Infeasible _) -> ()
      | Error e -> Alcotest.failf "%S: wrong error class: %s" src (neg_err_to_string e)
      | Ok _ -> Alcotest.failf "infeasible depth accepted: %S" src)
    [
      "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf AND self.inf";
      "SELECT HISTO(COUNT(*)) FROM neigh(3) WHERE dest.inf AND self.inf";
      "SELECT HISTO(COUNT(*)) FROM neigh(8) WHERE dest.inf AND self.inf";
    ];
  (* Same boundary straight from Analysis: the query analyzes fine and
     is rejected only by the feasibility check. *)
  let q = Parser.parse_exn "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf AND self.inf" in
  match Analysis.analyze ~degree_bound:4 q with
  | Error e -> Alcotest.failf "deep query should analyze: %s" e
  | Ok info ->
    (match Analysis.feasible info Params.test_small with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "2-hop should exceed test_small's budget")

let test_negative_budget_exhaustion_typed () =
  let sys =
    Runtime.init
      { negative_config with Runtime.epsilon_budget = 1.0 }
      (Lazy.force negative_graph)
  in
  let sql = (Corpus.find "Q5").Corpus.sql in
  (match run_no_raise sys ~epsilon:0.8 sql with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first query should fit the budget: %s" (neg_err_to_string e));
  (match run_no_raise sys ~epsilon:0.8 sql with
  | Error (Runtime.Budget_exhausted remaining) ->
    checkb "remaining reported" true (Float.abs (remaining -. 0.2) < 1e-9)
  | Error e -> Alcotest.failf "wrong error class: %s" (neg_err_to_string e)
  | Ok _ -> Alcotest.fail "over-budget query accepted");
  (* Exhaustion is per-charge, not terminal: a smaller request that
     fits the remaining budget still runs. *)
  match run_no_raise sys ~epsilon:0.1 sql with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "within-budget retry should run: %s" (neg_err_to_string e)

let () =
  Alcotest.run "mycelium-query"
    [
      ( "parser",
        [
          Alcotest.test_case "corpus parses" `Quick test_parse_corpus;
          Alcotest.test_case "print/parse fixpoint" `Quick test_parse_print_fixpoint;
          Alcotest.test_case "Q1 structure" `Quick test_parse_structure_q1;
          Alcotest.test_case "Q10 structure" `Quick test_parse_structure_q10;
          Alcotest.test_case "CLIP extension" `Quick test_parse_clip;
          Alcotest.test_case "errors rejected" `Quick test_parse_errors;
          Alcotest.test_case "case-insensitive keywords" `Quick test_parse_case_insensitive_keywords;
          prop_parse_print_fixpoint;
          prop_analysis_total;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "Figure 6 ciphertext counts" `Quick test_fig6_ciphertext_counts;
          Alcotest.test_case "predicate classification" `Quick test_classification;
          Alcotest.test_case "influence bounds" `Quick test_influence_bound;
          Alcotest.test_case "sensitivity (§4.7)" `Quick test_sensitivity;
          Alcotest.test_case "layouts fit the ring" `Quick test_layouts_fit_ring;
          Alcotest.test_case "generality (§6.2)" `Quick test_generality_section_6_2;
          Alcotest.test_case "group kinds" `Quick test_group_kinds;
          Alcotest.test_case "group counts" `Quick test_group_counts;
          Alcotest.test_case "bucketization" `Quick test_bucketize;
          Alcotest.test_case "degree bound parameter" `Quick test_degree_bound_parameter;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "epidemic generates workload" `Quick test_epidemic_nontrivial;
          Alcotest.test_case "WHERE splitting" `Quick test_split_where;
          Alcotest.test_case "mixed OR rejected" `Quick test_split_where_rejects_mixed_or;
          Alcotest.test_case "same-side OR allowed" `Quick test_split_where_allows_same_side_or;
          Alcotest.test_case "Q1 counts infected ball" `Quick test_q1_semantics_manual;
          Alcotest.test_case "Q1 origin gate" `Quick test_q1_gate;
          Alcotest.test_case "Q5 exponent layout" `Quick test_q5_semantics;
          Alcotest.test_case "Q8 ratio packing" `Quick test_q8_ratio_packing;
          Alcotest.test_case "global histogram mass" `Quick test_global_histogram_consistency;
          Alcotest.test_case "decode histogram" `Quick test_decode_histogram;
          Alcotest.test_case "decode GSUM ratio" `Quick test_decode_gsum_ratio;
          Alcotest.test_case "group labels" `Quick test_group_labels;
        ] );
      ( "negative-paths",
        [
          Alcotest.test_case "malformed HISTO/GSUM typed" `Quick
            test_negative_malformed_histo_gsum;
          Alcotest.test_case "infeasible neigh(k) typed" `Quick
            test_negative_deep_neigh_infeasible;
          Alcotest.test_case "budget exhaustion typed" `Quick
            test_negative_budget_exhaustion_typed;
        ] );
    ]
