(* Serving-layer suite (DESIGN.md §14): the admission accountant under
   concurrent submitters, the encrypted-aggregate cache's hit ≡ miss
   byte-identity, and the acceptance cell of the batching design —
   a workload released through batch-8 serving is byte-identical, per
   member, to the same workload released one query at a time, with
   faults injected, at 1/2/8 domains, tracing on or off. *)

module Rng = Mycelium_util.Rng
module Dp = Mycelium_dp.Dp
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Corpus = Mycelium_query.Corpus
module Params = Mycelium_bgv.Params
module Runtime = Mycelium_core.Runtime
module Sim = Mycelium_mixnet.Sim
module Fault_plan = Mycelium_faults.Fault_plan
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs
module Serve = Mycelium_serve.Serve
module Accountant = Mycelium_serve.Accountant
module Agg_cache = Mycelium_serve.Agg_cache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_graph ?(n = 16) ?(d = 4) ?(seed = 4242L) () =
  let rng = Rng.create seed in
  let g =
    Cg.generate
      { Cg.default_config with Cg.population = n; degree_bound = d; extra_contact_rate = 1.5 }
      rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
  g

(* The acceptance fixture: fast BGV parameters, faults on (transit
   drops, device churn, one crashed committee member), every 1-hop
   contribution routed through the mixnet. The mixnet's own churn and
   malicious-node knobs stay off: those losses are physical per-round
   events, while the injected fault plan is applied at each member's
   logical fault coordinate — the determinism contract batching relies
   on (DESIGN.md §14). *)
let mix_cfg =
  {
    Sim.default_config with
    Sim.hops = 2;
    replicas = 2;
    fraction = 0.4;
    fast_setup = true;
    verify_proofs = false;
  }

let serve_runtime ?(trace = false) ?ledger ?(faults = true) () =
  let plan =
    Fault_plan.make ~drop_rate:0.2 ~churn_rate:0.1 ~crashed_committee:[ 2 ] ~seed:7L ()
  in
  let cfg =
    {
      Runtime.default_config with
      Runtime.params = Params.test_small;
      degree_bound = 4;
      faults = (if faults then Some plan else None);
      route_through_mixnet = Some mix_cfg;
      trace;
      ledger;
    }
  in
  Runtime.init cfg (small_graph ())

(* A mixed six-query workload: three distinct shapes (Q5 histogram with
   group-by, Q4 filtered histogram, Q8 GSUM), with Q5 and Q4 repeated
   so a warm cache hits. *)
let workload =
  List.map
    (fun (user, q) ->
      { Serve.user; epsilon = 0.3; sql = (Corpus.find q).Corpus.sql; name = Some q })
    [ ("alice", "Q5"); ("bob", "Q4"); ("carol", "Q5"); ("alice", "Q8");
      ("bob", "Q5"); ("carol", "Q4") ]

let run_workload ?(trace = false) ?ledger ~batch_size ~cache_capacity () =
  let rt = serve_runtime ~trace ?ledger () in
  let config = { Serve.default_config with Serve.batch_size; cache_capacity } in
  let srv = Serve.create ~config rt in
  let responses = ref [] in
  List.iteri
    (fun i req ->
      let adm, flushed = Serve.submit srv ~arrival:(float_of_int i *. 0.01) req in
      (match adm with
      | Serve.Queued _ -> ()
      | Serve.Rejected r -> Alcotest.failf "unexpected rejection: %s" (Serve.rejection_to_string r));
      responses := !responses @ flushed)
    workload;
  let responses = !responses @ Serve.drain srv in
  (rt, srv, List.sort (fun a b -> compare a.Serve.seq b.Serve.seq) responses)

let released r =
  match r.Serve.outcome with
  | Ok qr ->
    (qr.Runtime.noisy_bins, qr.Runtime.mixnet_losses, qr.Runtime.discarded_contributions,
     qr.Runtime.origins_included)
  | Error _ -> Alcotest.failf "member %d errored" r.Serve.seq

(* ------------------------------------------------------------------ *)
(* Accountant                                                          *)
(* ------------------------------------------------------------------ *)

(* No over-admission under concurrent submitters: 4 domains hammer the
   same three users; whatever interleaving happens, no user's admitted
   total may exceed their budget, and the accountant's spent figure
   must equal the sum of exactly the admitted charges. Swept over the
   seed matrix the chaos tier uses. *)
let test_accountant_concurrent_no_overadmission () =
  List.iter
    (fun seed ->
      let total = 1.0 in
      let acct = Accountant.create ~per_user_total:total () in
      let n_domains = 4 and n_charges = 64 in
      let worker d () =
        let rng = Rng.create (Rng.mix64 seed (Int64.of_int d)) in
        let admitted = Array.make 3 0.0 in
        for _ = 1 to n_charges do
          let u = Rng.int rng 3 in
          let eps = 0.01 +. (0.1 *. Rng.float rng) in
          match Accountant.charge acct ~user:(Printf.sprintf "u%d" u) eps with
          | Ok () -> admitted.(u) <- admitted.(u) +. eps
          | Error (`Exhausted _) -> ()
        done;
        admitted
      in
      let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
      let per_domain = List.map Domain.join domains in
      for u = 0 to 2 do
        let user = Printf.sprintf "u%d" u in
        let spent = Accountant.spent acct ~user in
        checkb
          (Printf.sprintf "seed %Ld user %s not over-admitted" seed user)
          true
          (spent <= total +. 1e-9);
        let admitted_sum =
          List.fold_left (fun a arr -> a +. arr.(u)) 0.0 per_domain
        in
        checkb
          (Printf.sprintf "seed %Ld user %s spent = admitted sum" seed user)
          true
          (Float.abs (spent -. admitted_sum) < 1e-6);
        checkb
          (Printf.sprintf "seed %Ld user %s remaining consistent" seed user)
          true
          (Float.abs (Accountant.remaining acct ~user -. (total -. spent)) < 1e-6)
      done)
    [ 1L; 7L; 42L ]

(* Single-threaded, the same request sequence produces the same
   admit/reject decisions in the same order — the deterministic
   rejection order the batch scheduler inherits. *)
let test_accountant_rejection_order_deterministic () =
  let sequence acct =
    let rng = Rng.create 99L in
    List.init 40 (fun _ ->
        let u = Printf.sprintf "u%d" (Rng.int rng 2) in
        let eps = 0.05 +. (0.2 *. Rng.float rng) in
        match Accountant.charge acct ~user:u eps with
        | Ok () -> `Admitted (u, eps)
        | Error (`Exhausted r) -> `Rejected (u, r))
  in
  let a = sequence (Accountant.create ~per_user_total:1.0 ()) in
  let b = sequence (Accountant.create ~per_user_total:1.0 ()) in
  checkb "identical decision sequence" true (a = b);
  checkb "some rejections happened" true
    (List.exists (function `Rejected _ -> true | `Admitted _ -> false) a)

(* ------------------------------------------------------------------ *)
(* Admission gates                                                     *)
(* ------------------------------------------------------------------ *)

let test_unbudgeted_rejected () =
  let rt = serve_runtime ~faults:false () in
  let srv = Serve.create rt in
  let req = { Serve.user = "alice"; epsilon = Float.infinity;
              sql = (Corpus.find "Q5").Corpus.sql; name = Some "Q5" } in
  (match Serve.submit srv ~arrival:0.0 req with
  | Serve.Rejected Serve.Unbudgeted, [] -> ()
  | Serve.Rejected r, _ ->
    Alcotest.failf "wrong rejection: %s" (Serve.rejection_to_string r)
  | Serve.Queued _, _ -> Alcotest.fail "infinite epsilon must not be admitted");
  checki "nothing pending" 0 (Serve.pending_count srv);
  (* The explicit override restores the single-query debug semantics:
     admitted, released exactly, never charged. *)
  let srv =
    Serve.create
      ~config:{ Serve.default_config with Serve.allow_unbudgeted = true }
      (serve_runtime ~faults:false ())
  in
  match Serve.submit srv ~arrival:0.0 req with
  | Serve.Queued _, _ -> (
    match Serve.drain srv with
    | [ { Serve.outcome = Ok _; _ } ] ->
      checkb "unbudgeted query charged nothing" true
        (Accountant.spent (Serve.accountant srv) ~user:"alice" = 0.0)
    | _ -> Alcotest.fail "override run did not release")
  | Serve.Rejected r, _ ->
    Alcotest.failf "override rejected: %s" (Serve.rejection_to_string r)

let test_user_budget_gates_admission () =
  let rt = serve_runtime ~faults:false () in
  let config = { Serve.default_config with Serve.per_user_budget = 0.5; batch_size = 32 } in
  let srv = Serve.create ~config rt in
  let q = (Corpus.find "Q5").Corpus.sql in
  let submit user eps =
    fst (Serve.submit srv ~arrival:0.0 { Serve.user; epsilon = eps; sql = q; name = None })
  in
  (match submit "alice" 0.3 with
  | Serve.Queued _ -> ()
  | Serve.Rejected r -> Alcotest.failf "first charge rejected: %s" (Serve.rejection_to_string r));
  (match submit "alice" 0.3 with
  | Serve.Rejected (Serve.Budget_rejected remaining) ->
    checkb "rejection reports the remaining budget" true
      (Float.abs (remaining -. 0.2) < 1e-9)
  | _ -> Alcotest.fail "over-budget submit must be rejected");
  (* The rejected charge deducted nothing, and another user is
     unaffected. *)
  (match submit "alice" 0.2 with
  | Serve.Queued _ -> ()
  | Serve.Rejected _ -> Alcotest.fail "exact-fit charge after rejection must be admitted");
  match submit "bob" 0.5 with
  | Serve.Queued _ -> checki "admitted members pending" 3 (Serve.pending_count srv)
  | Serve.Rejected _ -> Alcotest.fail "bob's budget is his own"

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

(* The cache acceptance bar: the same workload served with the cache
   enabled releases byte-identical results to the cache-disabled run —
   a hit's decrypted aggregate is indistinguishable from a fresh
   gather + aggregation, because the member's noise seed and fault
   coordinate never depended on which path produced the ciphertext. *)
let test_cache_hit_byte_identical_to_miss () =
  let _, _, cold = run_workload ~batch_size:3 ~cache_capacity:0 () in
  let _, srv, warm = run_workload ~batch_size:3 ~cache_capacity:64 () in
  checki "cold run: every member released" 6 (List.length cold);
  checki "warm run: every member released" 6 (List.length warm);
  checkb "warm run hit the cache" true
    (List.exists (fun r -> r.Serve.cache_hit) warm);
  checkb "cold run never hit" true
    (List.for_all (fun r -> not r.Serve.cache_hit) cold);
  List.iter2
    (fun c w ->
      checki "seq aligned" c.Serve.seq w.Serve.seq;
      checkb
        (Printf.sprintf "member %d: hit ≡ miss released bytes" c.Serve.seq)
        true
        (released c = released w))
    cold warm;
  (* Three shapes in the workload, all cached after the run. *)
  checki "cache holds each distinct shape once" 3 (Agg_cache.length (Serve.cache srv))

(* Regression for intra-batch deduplication: with the whole six-member
   workload flushed as one batch, the three members repeating an
   earlier shape (Q5 twice more, Q4 once more) must still hit — the
   chunk's first pass computes each distinct shape and writes back, the
   second pass serves the duplicates from the cache.  Before the
   two-pass split these were misses: every lookup happened before any
   write-back. *)
let test_cache_hits_within_one_batch () =
  let _, srv, rs = run_workload ~batch_size:8 ~cache_capacity:64 () in
  checki "every member released" 6 (List.length rs);
  checki "duplicate shapes hit inside the batch" 3
    (List.length (List.filter (fun r -> r.Serve.cache_hit) rs));
  (* the hits must be the *duplicates* — the first occurrence of each
     shape (seqs 0/1/3) computes and writes back, every later repeat
     (seqs 2/4/5) decrypts the cached aggregate.  This pins the pass
     ordering: evaluating the duplicates pass first would invert the
     attribution while keeping the counts identical. *)
  Alcotest.(check (list int))
    "hits are exactly the later repeats" [ 2; 4; 5 ]
    (List.filter_map
       (fun r -> if r.Serve.cache_hit then Some r.Serve.seq else None)
       rs);
  let cache = Serve.cache srv in
  checki "three hits counted" 3 (Agg_cache.hits cache);
  checki "one miss per distinct shape" 3 (Agg_cache.misses cache);
  (* duplicates answer under their own analyst-facing names *)
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "member %d carries a corpus name" r.Serve.seq)
        true
        (List.mem r.Serve.query_name [ "Q5"; "Q4"; "Q8" ]))
    rs

let test_cache_eviction_deterministic () =
  let rt = serve_runtime ~faults:false () in
  let cache = Agg_cache.create ~capacity:2 ~graph:(Runtime.graph rt) in
  let prepared q =
    let query = (Corpus.find q).Corpus.query in
    let info =
      match Runtime.validate_query rt query with
      | Ok i -> i
      | Error _ -> Alcotest.failf "%s did not validate" q
    in
    let key = Agg_cache.key cache query ~info in
    let item =
      {
        Runtime.bi_query = query;
        bi_epsilon = Float.infinity;
        bi_noise_seed = 1L;
        bi_fault_round = Agg_cache.fault_round_of_key key;
        bi_cached = None;
      }
    in
    match Runtime.run_batch rt [ item ] with
    | [ Ok (_, p) ] -> (key, p)
    | _ -> Alcotest.failf "%s did not run" q
  in
  let k5, p5 = prepared "Q5" and k4, p4 = prepared "Q4" and k8, p8 = prepared "Q8" in
  Agg_cache.put cache k5 p5;
  Agg_cache.put cache k4 p4;
  (* Touch Q5 so Q4 is the LRU victim when Q8 arrives. *)
  checkb "Q5 hits" true (Agg_cache.find cache k5 <> None);
  Agg_cache.put cache k8 p8;
  checki "capacity held" 2 (Agg_cache.length cache);
  checki "one eviction" 1 (Agg_cache.evictions cache);
  checkb "LRU victim was Q4" true (Agg_cache.find cache k4 = None);
  checkb "Q5 survived" true (Agg_cache.find cache k5 <> None);
  checkb "Q8 present" true (Agg_cache.find cache k8 <> None)

(* ------------------------------------------------------------------ *)
(* Batched ≡ sequential acceptance cell                                *)
(* ------------------------------------------------------------------ *)

(* The tentpole's correctness bar: the full faulted workload, released
   through batch-8 serving (one shared mixnet round, one shared
   decryption session, warm cache) is byte-identical per member to the
   one-at-a-time release — at 1, 2 and 8 domains, tracing on or off. *)
let test_batched_equals_sequential () =
  let run ?(trace = false) ~batch_size ~domains () =
    Pool.with_domains domains (fun () ->
        let _, _, rs = run_workload ~trace ~batch_size ~cache_capacity:64 () in
        List.map released rs)
  in
  let sequential = run ~batch_size:1 ~domains:1 () in
  checki "sequential run released everything" 6 (List.length sequential);
  let batched = run ~batch_size:8 ~domains:1 () in
  checkb "batch-8 ≡ batch-1, per member" true (batched = sequential);
  List.iter
    (fun domains ->
      checkb
        (Printf.sprintf "batch-8 at %d domains ≡ sequential" domains)
        true
        (run ~batch_size:8 ~domains () = sequential))
    [ 2; 8 ];
  checkb "tracing does not move released bytes" true
    (run ~trace:true ~batch_size:8 ~domains:1 () = sequential);
  (* An intermediate batch size chunks the same members differently
     but releases the same bytes. *)
  checkb "batch-3 ≡ sequential" true (run ~batch_size:3 ~domains:1 () = sequential)

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

(* Every batch member gets its own ledger row; summing the rows'
   charged epsilons reproduces the runtime accountant bit for bit
   (shared-phase durations are attributed proportionally, but epsilon
   attribution is exact — each member's own charge). *)
let test_batch_ledger_rows_audit_bit_for_bit () =
  let path = Filename.temp_file "mycelium_serve_ledger" ".jsonl" in
  let rt, _, responses = run_workload ~ledger:path ~batch_size:8 ~cache_capacity:64 () in
  let records =
    match Obs.Ledger.read path with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "ledger does not re-parse: %s" e
  in
  Sys.remove path;
  checki "one ledger row per batch member" (List.length responses) (List.length records);
  let s = Obs.Ledger.summarize records in
  checki "all members ok" (List.length responses) s.Obs.Ledger.ok;
  checkb "ledger sum equals Dp.budget_spent exactly" true
    (s.Obs.Ledger.epsilon_spent = Dp.budget_spent (Runtime.budget rt));
  (* Each row names the analyst's actual query — the corpus id the
     scheduler admitted — never the parser's "query" placeholder.
     (Rows land in execution order: each chunk's compute pass precedes
     its deferred duplicates, so the multiset is what is stable.) *)
  let names =
    List.map
      (fun r ->
        match Obs.Json.member "name" r with
        | Some (Obs.Json.Str n) -> n
        | _ -> Alcotest.fail "ledger row lacks a name")
      records
  in
  Alcotest.(check (list string))
    "rows carry the admitted corpus names"
    [ "Q4"; "Q4"; "Q5"; "Q5"; "Q5"; "Q8" ]
    (List.sort String.compare names)

let () =
  Alcotest.run "serve"
    [
      ( "accountant",
        [
          Alcotest.test_case "concurrent charges never over-admit" `Quick
            test_accountant_concurrent_no_overadmission;
          Alcotest.test_case "rejection order is deterministic" `Quick
            test_accountant_rejection_order_deterministic;
        ] );
      ( "admission",
        [
          Alcotest.test_case "infinite epsilon refused without override" `Quick
            test_unbudgeted_rejected;
          Alcotest.test_case "per-user budget gates admission" `Quick
            test_user_budget_gates_admission;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit ≡ miss released bytes" `Quick
            test_cache_hit_byte_identical_to_miss;
          Alcotest.test_case "duplicate shapes hit within one batch" `Quick
            test_cache_hits_within_one_batch;
          Alcotest.test_case "LRU eviction is deterministic" `Quick
            test_cache_eviction_deterministic;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batched ≡ sequential, faults on, 1/2/8 domains" `Quick
            test_batched_equals_sequential;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "per-member rows audit bit-for-bit" `Quick
            test_batch_ledger_rows_audit_bit_for_bit;
        ] );
    ]
