(* Unit tests for the domain work pool: result correctness independent
   of domain count, fixed reduce order, nested submission, exception
   propagation, and the env/config/override precedence. *)

module Pool = Mycelium_parallel.Pool

let with_pool domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_matches_sequential () =
  let arr = Array.init 257 (fun i -> i) in
  let expect = Array.map (fun i -> (i * i) + 3) arr in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          let got = Pool.map_array pool (fun i -> (i * i) + 3) arr in
          Alcotest.(check (array int))
            (Printf.sprintf "map at %d domains" d)
            expect got))
    [ 1; 2; 3; 8 ]

let test_mapi_and_init () =
  with_pool 4 (fun pool ->
      let got = Pool.mapi_array pool (fun i x -> i + x) [| 10; 20; 30 |] in
      Alcotest.(check (array int)) "mapi" [| 10; 21; 32 |] got;
      let got = Pool.init pool 5 (fun i -> i * 2) in
      Alcotest.(check (array int)) "init" [| 0; 2; 4; 6; 8 |] got;
      Alcotest.(check (array int)) "init 0" [||] (Pool.init pool 0 (fun i -> i)))

(* Float addition is not associative: the reduce order must be the
   sequential element order no matter how many domains run the map. *)
let test_reduce_order_fixed () =
  let arr = Array.init 1000 (fun i -> 1.0 /. float_of_int (i + 1)) in
  let expect = Array.fold_left ( +. ) 0.0 arr in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          let got = Pool.reduce pool ~combine:( +. ) ~init:0.0 Fun.id arr in
          if got <> expect then
            Alcotest.failf "reduce at %d domains: %.17g <> %.17g" d got expect))
    [ 1; 2; 8 ]

(* A task that submits to the pool again must complete (sequentially)
   rather than deadlock on its own worker set. *)
let test_nested_submission () =
  with_pool 4 (fun pool ->
      let got =
        Pool.map_array pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool (fun j -> (i * 10) + j) [| 1; 2; 3 |]))
          [| 0; 1; 2; 3; 4; 5 |]
      in
      Alcotest.(check (array int)) "nested" [| 6; 36; 66; 96; 126; 156 |] got)

exception Boom of int

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      match
        Pool.map_array pool
          (fun i -> if i = 37 then raise (Boom i) else i)
          (Array.init 64 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ()
      | exception e -> raise e);
  (* The pool stays usable after a failed job. *)
  with_pool 2 (fun pool ->
      (try ignore (Pool.map_array pool (fun _ -> failwith "x") [| 1; 2 |])
       with Failure _ -> ());
      Alcotest.(check (array int)) "reusable" [| 2; 4 |]
        (Pool.map_array pool (fun i -> i * 2) [| 1; 2 |]))

let test_with_domains_override () =
  Pool.with_domains 3 (fun () ->
      Alcotest.(check int) "forced" 3 (Pool.current_domains ());
      Alcotest.(check int) "pool size" 3 (Pool.domains (Pool.default ()));
      Pool.with_domains 1 (fun () ->
          Alcotest.(check int) "nested force" 1 (Pool.current_domains ()));
      Alcotest.(check int) "restored" 3 (Pool.current_domains ()))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "mapi and init" `Quick test_mapi_and_init;
          Alcotest.test_case "reduce order is fixed" `Quick test_reduce_order_fixed;
          Alcotest.test_case "nested submission" `Quick test_nested_submission;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "with_domains override" `Quick test_with_domains_override;
        ] );
    ]
