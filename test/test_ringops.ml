(* Cross-checks for the evaluation-domain (double-CRT) ring backend:
   Eval-resident multiplication against the coefficient-domain NTT path
   and the schoolbook oracle, Shoup-vs-mod multiplier equivalence, the
   copy-free forward_into/inverse_into kernels, and representation
   round-trips at the BGV layer.  Seeded throughout; the @ringops alias
   runs this binary plainly and under MYCELIUM_DOMAINS=8, so every
   check also exercises the per-limb pool dispatch. *)

module Rng = Mycelium_util.Rng
module Modarith = Mycelium_math.Modarith
module Ntt = Mycelium_math.Ntt
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A 3-prime basis: every property below is checked per limb. *)
let basis = lazy (Rns.standard ~degree:256 ~prime_bits:30 ~levels:3)

let random_rows rng basis =
  let n = Rns.degree basis in
  Array.map (fun p -> Array.init n (fun _ -> Rng.int rng p)) (Rns.primes basis)

(* Eval-domain multiply vs coefficient-domain Ntt.multiply vs the
   O(n^2) schoolbook product, for every limb. *)
let test_eval_mul_cross_check () =
  let b = Lazy.force basis in
  let rng = Rng.create 41L in
  let primes = Rns.primes b in
  let plans = Rns.plans b in
  for _ = 1 to 8 do
    let rows_a = random_rows rng b and rows_b = random_rows rng b in
    let x = Rq.of_residues b rows_a and y = Rq.of_residues b rows_b in
    Rq.force_eval x;
    Rq.force_eval y;
    let prod = Rq.mul x y in
    checkb "product resident in Eval" true (Rq.repr_of prod = Rq.Eval);
    Rq.force_coeff prod;
    let prod_rows = Rq.residues prod in
    Array.iteri
      (fun j plan ->
        let expected = Ntt.multiply plan rows_a.(j) rows_b.(j) in
        let naive = Ntt.multiply_naive ~p:primes.(j) rows_a.(j) rows_b.(j) in
        checkb "coefficient-domain NTT = schoolbook" true (expected = naive);
        checkb "eval-domain mul = coefficient-domain mul" true (prod_rows.(j) = expected))
      plans
  done

(* Shoup precomputed-quotient multiplication agrees with "* w mod p"
   for every modulus find_primes can hand the ring backend at the
   30-bit operating point, including boundary operands. *)
let test_shoup_vs_mod () =
  let primes = Ntt.find_primes ~degree:1024 ~bits:30 ~count:10 in
  let rng = Rng.create 42L in
  List.iter
    (fun p ->
      for _ = 1 to 2000 do
        let w = Rng.int rng p in
        let w' = Modarith.shoup_precompute p w in
        let x = Rng.int rng p in
        checki "shoup = mod" (Modarith.mul p x w) (Modarith.shoup_mul p w w' x)
      done;
      List.iter
        (fun w ->
          let w' = Modarith.shoup_precompute p w in
          List.iter
            (fun x ->
              checki "shoup = mod (boundary)" (Modarith.mul p x w)
                (Modarith.shoup_mul p w w' x))
            [ 0; 1; 2; p - 2; p - 1 ])
        [ 0; 1; 2; p - 2; p - 1 ])
    primes

(* The copy-free kernels: forward_into leaves src intact and matches
   the in-place transform; inverse_into inverts it. *)
let test_into_variants () =
  let rng = Rng.create 43L in
  List.iter
    (fun n ->
      let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
      let plan = Ntt.make_plan ~p ~degree:n in
      for _ = 1 to 5 do
        let a = Array.init n (fun _ -> Rng.int rng p) in
        let keep = Array.copy a in
        let fa = Array.make n 0 in
        Ntt.forward_into plan ~src:a ~dst:fa;
        checkb "forward_into leaves src intact" true (a = keep);
        let ip = Array.copy a in
        Ntt.forward plan ip;
        checkb "forward_into = in-place forward" true (fa = ip);
        let back = Array.make n 0 in
        Ntt.inverse_into plan ~src:fa ~dst:back;
        checkb "inverse_into . forward_into = id" true (back = a);
        checkb "inverse_into leaves src intact" true (fa = ip);
        Ntt.inverse plan ip;
        checkb "inverse_into = in-place inverse" true (ip = back)
      done)
    [ 1; 2; 8; 64; 256; 1024 ]

let test_pointwise_kernels () =
  let n = 128 in
  let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:n in
  let rng = Rng.create 44L in
  let a = Array.init n (fun _ -> Rng.int rng p) in
  let b = Array.init n (fun _ -> Rng.int rng p) in
  let acc0 = Array.init n (fun _ -> Rng.int rng p) in
  let pw = Ntt.pointwise plan a b in
  for i = 0 to n - 1 do
    checki "pointwise" (Modarith.mul p a.(i) b.(i)) pw.(i)
  done;
  let acc = Array.copy acc0 in
  Ntt.pointwise_acc plan ~acc a b;
  for i = 0 to n - 1 do
    checki "pointwise_acc" (Modarith.add p acc0.(i) (Modarith.mul p a.(i) b.(i))) acc.(i)
  done;
  (* dst aliasing an input is allowed. *)
  let c = Array.copy a in
  Ntt.pointwise_into plan ~dst:c c b;
  checkb "pointwise_into aliasing" true (c = pw)

(* Rq.dot is the fused cross-term primitive behind Bgv.mul. *)
let test_dot_matches_sum_of_products () =
  let b = Lazy.force basis in
  let rng = Rng.create 45L in
  for k = 1 to 4 do
    let xs = Array.init k (fun _ -> Rq.random_uniform b rng) in
    let ys = Array.init k (fun _ -> Rq.random_uniform b rng) in
    let d = Rq.dot xs ys in
    checkb "dot resident in Eval" true (Rq.repr_of d = Rq.Eval);
    let expected = ref (Rq.zero b) in
    for i = 0 to k - 1 do
      expected := Rq.add !expected (Rq.mul xs.(i) ys.(i))
    done;
    checkb "dot = sum of products" true (Rq.equal d !expected)
  done

(* Linear ops must commute with the representation. *)
let test_linear_ops_domain_agnostic () =
  let b = Lazy.force basis in
  let rng = Rng.create 46L in
  for _ = 1 to 10 do
    let rows_x = random_rows rng b and rows_y = random_rows rng b in
    let fresh rows = Rq.of_residues b rows in
    let eval rows = let v = Rq.of_residues b rows in Rq.force_eval v; v in
    checkb "add commutes with repr" true
      (Rq.equal (Rq.add (fresh rows_x) (fresh rows_y)) (Rq.add (eval rows_x) (eval rows_y)));
    checkb "mixed-repr add" true
      (Rq.equal (Rq.add (fresh rows_x) (eval rows_y)) (Rq.add (eval rows_x) (fresh rows_y)));
    checkb "sub commutes with repr" true
      (Rq.equal (Rq.sub (fresh rows_x) (fresh rows_y)) (Rq.sub (eval rows_x) (eval rows_y)));
    checkb "neg commutes with repr" true (Rq.equal (Rq.neg (fresh rows_x)) (Rq.neg (eval rows_x)));
    checkb "mul_scalar commutes with repr" true
      (Rq.equal (Rq.mul_scalar (fresh rows_x) 17) (Rq.mul_scalar (eval rows_x) 17));
    (* Round-tripping the representation is the identity. *)
    let v = fresh rows_x in
    Rq.force_eval v;
    Rq.force_coeff v;
    checkb "force roundtrip is identity" true (Rq.equal v (fresh rows_x))
  done

(* BGV layer: fresh ciphertexts are Eval-resident, products decrypt
   correctly, serialization preserves the representation tag, and the
   decrypted plaintext does not depend on the resident domain. *)
let test_bgv_representation () =
  let ctx = Bgv.make_ctx Params.test_small in
  let rng = Rng.create 47L in
  let sk, pk = Bgv.keygen ctx rng in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  let a = Bgv.encrypt_value ctx rng pk 3 in
  let b = Bgv.encrypt_value ctx rng pk 5 in
  Array.iter
    (fun c -> checkb "fresh ciphertext is Eval-resident" true (Rq.repr_of c = Rq.Eval))
    (Bgv.components a);
  let prod = Bgv.relinearize ctx rk (Bgv.mul a b) in
  let pt = Bgv.decrypt ctx sk prod in
  checki "x^3 * x^5 decrypts to x^8" 1 (Plaintext.coeff pt 8);
  checki "no stray bin" 0 (Plaintext.coeff pt 7);
  (* Serialization round-trips bytes and tags in either domain. *)
  let check_roundtrip ct =
    let bytes = Bgv.serialize ct in
    match Bgv.deserialize ctx bytes with
    | None -> Alcotest.fail "deserialize rejected serialized ciphertext"
    | Some ct' ->
      checkb "serialize . deserialize stable" true (Bytes.equal (Bgv.serialize ct') bytes);
      Array.iteri
        (fun i c -> checkb "repr tag preserved" true (Rq.repr_of c = Rq.repr_of (Bgv.components ct).(i)))
        (Bgv.components ct')
  in
  check_roundtrip prod;
  Array.iter Rq.force_coeff (Bgv.components prod);
  check_roundtrip prod;
  let pt2 = Bgv.decrypt ctx sk prod in
  checkb "decrypt independent of resident domain" true
    (Plaintext.coeffs pt = Plaintext.coeffs pt2)

let () =
  Alcotest.run "mycelium-ringops"
    [
      ( "kernels",
        [
          Alcotest.test_case "shoup vs mod, all 30-bit moduli" `Quick test_shoup_vs_mod;
          Alcotest.test_case "forward_into / inverse_into" `Quick test_into_variants;
          Alcotest.test_case "pointwise kernels" `Quick test_pointwise_kernels;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "eval mul vs ntt vs naive, per limb" `Quick
            test_eval_mul_cross_check;
          Alcotest.test_case "dot = sum of products" `Quick test_dot_matches_sum_of_products;
          Alcotest.test_case "linear ops domain-agnostic" `Quick
            test_linear_ops_domain_agnostic;
        ] );
      ( "bgv",
        [ Alcotest.test_case "representation end-to-end" `Quick test_bgv_representation ] );
    ]
