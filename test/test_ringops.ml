(* Cross-checks for the evaluation-domain (double-CRT) ring backend:
   Eval-resident multiplication against the coefficient-domain NTT path
   and the schoolbook oracle, Shoup-vs-mod multiplier equivalence, the
   copy-free forward_into/inverse_into kernels, and representation
   round-trips at the BGV layer.  Seeded throughout; the @ringops alias
   runs this binary plainly and under MYCELIUM_DOMAINS=8, so every
   check also exercises the per-limb pool dispatch. *)

module Rng = Mycelium_util.Rng
module Modarith = Mycelium_math.Modarith
module Montarith = Mycelium_math.Montarith
module Ntt = Mycelium_math.Ntt
module Mont_backend = Mycelium_math.Mont_backend
module Ring_backend = Mycelium_math.Ring_backend
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A 3-prime basis: every property below is checked per limb. *)
let basis = lazy (Rns.standard ~degree:256 ~prime_bits:30 ~levels:3 ())

let random_rows rng basis =
  let n = Rns.degree basis in
  Array.map (fun p -> Array.init n (fun _ -> Rng.int rng p)) (Rns.primes basis)

(* Eval-domain multiply vs coefficient-domain Ntt.multiply vs the
   O(n^2) schoolbook product, for every limb. *)
let test_eval_mul_cross_check () =
  let b = Lazy.force basis in
  let rng = Rng.create 41L in
  let primes = Rns.primes b in
  let plans = Rns.plans b in
  for _ = 1 to 8 do
    let rows_a = random_rows rng b and rows_b = random_rows rng b in
    let x = Rq.of_residues b rows_a and y = Rq.of_residues b rows_b in
    Rq.force_eval x;
    Rq.force_eval y;
    let prod = Rq.mul x y in
    checkb "product resident in Eval" true (Rq.repr_of prod = Rq.Eval);
    Rq.force_coeff prod;
    let prod_rows = Rq.residues prod in
    Array.iteri
      (fun j plan ->
        let expected = Ring_backend.multiply plan rows_a.(j) rows_b.(j) in
        let naive = Ntt.multiply_naive ~p:primes.(j) rows_a.(j) rows_b.(j) in
        checkb "coefficient-domain NTT = schoolbook" true (expected = naive);
        checkb "eval-domain mul = coefficient-domain mul" true (prod_rows.(j) = expected))
      plans
  done

(* Shoup precomputed-quotient multiplication agrees with "* w mod p"
   for every modulus find_primes can hand the ring backend at the
   30-bit operating point, including boundary operands. *)
let test_shoup_vs_mod () =
  let primes = Ntt.find_primes ~degree:1024 ~bits:30 ~count:10 in
  let rng = Rng.create 42L in
  List.iter
    (fun p ->
      for _ = 1 to 2000 do
        let w = Rng.int rng p in
        let w' = Modarith.shoup_precompute p w in
        let x = Rng.int rng p in
        checki "shoup = mod" (Modarith.mul p x w) (Modarith.shoup_mul p w w' x)
      done;
      List.iter
        (fun w ->
          let w' = Modarith.shoup_precompute p w in
          List.iter
            (fun x ->
              checki "shoup = mod (boundary)" (Modarith.mul p x w)
                (Modarith.shoup_mul p w w' x))
            [ 0; 1; 2; p - 2; p - 1 ])
        [ 0; 1; 2; p - 2; p - 1 ])
    primes

(* The copy-free kernels: forward_into leaves src intact and matches
   the in-place transform; inverse_into inverts it. *)
let test_into_variants () =
  let rng = Rng.create 43L in
  List.iter
    (fun n ->
      let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
      let plan = Ntt.make_plan ~p ~degree:n in
      for _ = 1 to 5 do
        let a = Array.init n (fun _ -> Rng.int rng p) in
        let keep = Array.copy a in
        let fa = Array.make n 0 in
        Ntt.forward_into plan ~src:a ~dst:fa;
        checkb "forward_into leaves src intact" true (a = keep);
        let ip = Array.copy a in
        Ntt.forward plan ip;
        checkb "forward_into = in-place forward" true (fa = ip);
        let back = Array.make n 0 in
        Ntt.inverse_into plan ~src:fa ~dst:back;
        checkb "inverse_into . forward_into = id" true (back = a);
        checkb "inverse_into leaves src intact" true (fa = ip);
        Ntt.inverse plan ip;
        checkb "inverse_into = in-place inverse" true (ip = back)
      done)
    [ 1; 2; 8; 64; 256; 1024 ]

let test_pointwise_kernels () =
  let n = 128 in
  let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:n in
  let rng = Rng.create 44L in
  let a = Array.init n (fun _ -> Rng.int rng p) in
  let b = Array.init n (fun _ -> Rng.int rng p) in
  let acc0 = Array.init n (fun _ -> Rng.int rng p) in
  let pw = Ntt.pointwise plan a b in
  for i = 0 to n - 1 do
    checki "pointwise" (Modarith.mul p a.(i) b.(i)) pw.(i)
  done;
  let acc = Array.copy acc0 in
  Ntt.pointwise_acc plan ~acc a b;
  for i = 0 to n - 1 do
    checki "pointwise_acc" (Modarith.add p acc0.(i) (Modarith.mul p a.(i) b.(i))) acc.(i)
  done;
  (* dst aliasing an input is allowed. *)
  let c = Array.copy a in
  Ntt.pointwise_into plan ~dst:c c b;
  checkb "pointwise_into aliasing" true (c = pw)

(* Rq.dot is the fused cross-term primitive behind Bgv.mul. *)
let test_dot_matches_sum_of_products () =
  let b = Lazy.force basis in
  let rng = Rng.create 45L in
  for k = 1 to 4 do
    let xs = Array.init k (fun _ -> Rq.random_uniform b rng) in
    let ys = Array.init k (fun _ -> Rq.random_uniform b rng) in
    let d = Rq.dot xs ys in
    checkb "dot resident in Eval" true (Rq.repr_of d = Rq.Eval);
    let expected = ref (Rq.zero b) in
    for i = 0 to k - 1 do
      expected := Rq.add !expected (Rq.mul xs.(i) ys.(i))
    done;
    checkb "dot = sum of products" true (Rq.equal d !expected)
  done

(* Linear ops must commute with the representation. *)
let test_linear_ops_domain_agnostic () =
  let b = Lazy.force basis in
  let rng = Rng.create 46L in
  for _ = 1 to 10 do
    let rows_x = random_rows rng b and rows_y = random_rows rng b in
    let fresh rows = Rq.of_residues b rows in
    let eval rows = let v = Rq.of_residues b rows in Rq.force_eval v; v in
    checkb "add commutes with repr" true
      (Rq.equal (Rq.add (fresh rows_x) (fresh rows_y)) (Rq.add (eval rows_x) (eval rows_y)));
    checkb "mixed-repr add" true
      (Rq.equal (Rq.add (fresh rows_x) (eval rows_y)) (Rq.add (eval rows_x) (fresh rows_y)));
    checkb "sub commutes with repr" true
      (Rq.equal (Rq.sub (fresh rows_x) (fresh rows_y)) (Rq.sub (eval rows_x) (eval rows_y)));
    checkb "neg commutes with repr" true (Rq.equal (Rq.neg (fresh rows_x)) (Rq.neg (eval rows_x)));
    checkb "mul_scalar commutes with repr" true
      (Rq.equal (Rq.mul_scalar (fresh rows_x) 17) (Rq.mul_scalar (eval rows_x) 17));
    (* Round-tripping the representation is the identity. *)
    let v = fresh rows_x in
    Rq.force_eval v;
    Rq.force_coeff v;
    checkb "force roundtrip is identity" true (Rq.equal v (fresh rows_x))
  done

(* BGV layer: fresh ciphertexts are Eval-resident, products decrypt
   correctly, serialization preserves the representation tag, and the
   decrypted plaintext does not depend on the resident domain. *)
let test_bgv_representation () =
  let ctx = Bgv.make_ctx Params.test_small in
  let rng = Rng.create 47L in
  let sk, pk = Bgv.keygen ctx rng in
  let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
  let a = Bgv.encrypt_value ctx rng pk 3 in
  let b = Bgv.encrypt_value ctx rng pk 5 in
  Array.iter
    (fun c -> checkb "fresh ciphertext is Eval-resident" true (Rq.repr_of c = Rq.Eval))
    (Bgv.components a);
  let prod = Bgv.relinearize ctx rk (Bgv.mul a b) in
  let pt = Bgv.decrypt ctx sk prod in
  checki "x^3 * x^5 decrypts to x^8" 1 (Plaintext.coeff pt 8);
  checki "no stray bin" 0 (Plaintext.coeff pt 7);
  (* Serialization round-trips bytes and tags in either domain. *)
  let check_roundtrip ct =
    let bytes = Bgv.serialize ct in
    match Bgv.deserialize ctx bytes with
    | None -> Alcotest.fail "deserialize rejected serialized ciphertext"
    | Some ct' ->
      checkb "serialize . deserialize stable" true (Bytes.equal (Bgv.serialize ct') bytes);
      Array.iteri
        (fun i c -> checkb "repr tag preserved" true (Rq.repr_of c = Rq.repr_of (Bgv.components ct).(i)))
        (Bgv.components ct')
  in
  check_roundtrip prod;
  Array.iter Rq.force_coeff (Bgv.components prod);
  check_roundtrip prod;
  let pt2 = Bgv.decrypt ctx sk prod in
  checkb "decrypt independent of resident domain" true
    (Plaintext.coeffs pt = Plaintext.coeffs pt2)

(* --- Montgomery KATs (SNIPPETS.md №3 shape) -------------------------

   Known-answer vectors for Montarith, the scalar specification the
   Mont_backend butterflies hand-inline.  Each entry pins a modulus'
   derived constants (-p^-1 mod 2^62, R mod p, R^2 mod p), a list of
   (t, REDC(t)) reduction vectors — with boundary operands 0, 1, p-1
   and values straddling the R = 2^62 radix — and (x, y, mont_mul)
   product vectors.  Every expectation is additionally re-derived from
   the Modarith mod-based reference inside the test, so the fixed
   numbers and the independent oracle must agree with each other and
   with the implementation. *)
let montgomery_kats =
  [
    (* First two find_primes ~degree:1024 ~bits:30 moduli and the first
       ~degree:256 ~bits:28 modulus. *)
    ( 1073707009,
      2975768425902602239,
      553508864,
      1009923275,
      [
        (0, 0);
        (1, 692827613);
        (2, 311948217);
        (1073707008, 380879396);
        (1073707009, 0);
        (1073707010, 692827613);
        (2147483648, 1004485829);
        (2305843009213693952, 536853505);
        (2305843009213693953, 155974109);
        (4611686018427387903, 380879397);
        (4611686017353680895, 1);
        (4611686017353680896, 692827614);
        (1234567890123456789, 901025685);
      ],
      [
        (0, 0, 0);
        (0, 1, 0);
        (1, 1, 692827613);
        (1, 1073707008, 380879396);
        (1073707008, 1073707008, 692827613);
        (2, 536853504, 380879396);
        (123456789, 987654321, 107736587);
      ] );
    ( 1073698817,
      1203863690021918719,
      956215294,
      284234052,
      [
        (0, 0);
        (1, 280285131);
        (2, 560570262);
        (1073698816, 793413686);
        (1073698817, 0);
        (1073698818, 280285131);
        (2147483648, 685719733);
        (2305843009213693952, 536849409);
        (2305843009213693953, 817134540);
        (4611686018427387903, 793413687);
        (4611686017353689087, 1);
        (4611686017353689088, 280285132);
        (1234567890123456789, 297478379);
      ],
      [
        (0, 0, 0);
        (0, 1, 0);
        (1, 1, 280285131);
        (1, 1073698816, 793413686);
        (1073698816, 1073698816, 280285131);
        (2, 536849408, 793413686);
        (123456789, 987654321, 864628906);
      ] );
    ( 268432897,
      3840438174813517311,
      150669887,
      189441867,
      [
        (0, 0);
        (1, 223540792);
        (2, 178648687);
        (268432896, 44892105);
        (268432897, 0);
        (268432898, 223540792);
        (2147483648, 83065768);
        (2305843009213693952, 134216449);
        (2305843009213693953, 89324344);
        (4611686018427387903, 44892106);
        (4611686018158955007, 1);
        (4611686018158955008, 223540793);
        (1234567890123456789, 19781488);
      ],
      [
        (0, 0, 0);
        (0, 1, 0);
        (1, 1, 223540792);
        (1, 268432896, 44892105);
        (268432896, 268432896, 223540792);
        (2, 134216448, 44892105);
        (123456789, 182355630, 92186721);
      ] );
  ]

(* t * R^-1 mod p via the plain mod-based reference. *)
let redc_oracle p t =
  let r_inv = Modarith.inv p (Modarith.pow p 2 Montarith.r_bits) in
  Modarith.mul p (Modarith.reduce p t) r_inv

let test_montgomery_kat () =
  List.iter
    (fun (p, neg_p_inv, r_mod_p, r2_mod_p, reduces, muls) ->
      checkb "kat modulus supported" true (Montarith.supports p);
      let c = Montarith.precompute p in
      (* Derived constants. *)
      checki "kat -p^-1 mod 2^62" neg_p_inv (Montarith.neg_p_inv c);
      checki "kat R mod p" r_mod_p (Montarith.r_mod_p c);
      checki "kat R mod p vs modarith" (Modarith.pow p 2 Montarith.r_bits)
        (Montarith.r_mod_p c);
      checki "kat R^2 mod p" r2_mod_p (Montarith.r2_mod_p c);
      checki "kat R^2 mod p vs modarith"
        (Modarith.mul p (Montarith.r_mod_p c) (Montarith.r_mod_p c))
        (Montarith.r2_mod_p c);
      (* -p^-1 * p = -1 mod 2^62. *)
      let mask62 = (1 lsl 62) - 1 in
      checki "kat p * (-p^-1) = -1 mod 2^62" mask62 ((neg_p_inv * p) land mask62);
      (* montgomery_reduce vectors, each cross-checked against the
         mod-based oracle. *)
      List.iter
        (fun (t, expected) ->
          checki "kat reduce" expected (Montarith.reduce c t);
          checki "kat reduce vs modarith oracle" (redc_oracle p t) (Montarith.reduce c t))
        reduces;
      (* montgomery_mul vectors. *)
      List.iter
        (fun (x, y, expected) ->
          checki "kat mul" expected (Montarith.mul c x y);
          checki "kat mul vs modarith oracle" (redc_oracle p (x * y)) (Montarith.mul c x y))
        muls;
      (* Domain round-trip at the boundary operands. *)
      List.iter
        (fun x ->
          checki "to_mont/of_mont roundtrip" x (Montarith.of_mont c (Montarith.to_mont c x));
          checki "to_mont vs modarith" (Modarith.mul p x (Montarith.r_mod_p c))
            (Montarith.to_mont c x))
        [ 0; 1; 2; p - 2; p - 1 ];
      (* Randomized cross-check against the mod-based reference. *)
      let rng = Rng.create 48L in
      for _ = 1 to 2000 do
        let x = Rng.int rng p and y = Rng.int rng p in
        checki "mont mul vs mod oracle" (redc_oracle p (x * y)) (Montarith.mul c x y)
      done;
      (* Out-of-range operands must be rejected, not silently wrapped. *)
      Alcotest.check_raises "reduce rejects negatives" (Invalid_argument
        "Montarith.reduce: operand must lie in [0, 2^62)") (fun () ->
          ignore (Montarith.reduce c (-1)));
      Alcotest.check_raises "mul rejects unreduced"
        (Invalid_argument "Montarith.mul: operands must be reduced") (fun () ->
          ignore (Montarith.mul c p 1)))
    montgomery_kats

(* --- Cross-backend differential suite -------------------------------

   Seeded random polynomials for every find_primes 30-bit modulus at
   N in {1024, 8192, 32768} must transform and multiply identically on
   the Reference and Montgomery backends.  The @ringops alias runs
   this binary plainly, under MYCELIUM_DOMAINS=8 and under
   MYCELIUM_RING_BACKEND=reference, so the per-limb pool dispatch and
   the ambient-default paths are swept too. *)

let differential_profiles =
  (* (degree, moduli to cover, Rq/Rns rounds).  All ten 30-bit moduli
     at N=1024; transform cost bounds the counts at the larger sizes,
     with N=32768 — the paper's ring degree — covered by two moduli. *)
  [ (1024, 10, 3); (8192, 3, 2); (32768, 2, 1) ]

let test_cross_backend_differential () =
  List.iter
    (fun (degree, count, rq_rounds) ->
      let primes = Ntt.find_primes ~degree ~bits:30 ~count in
      let rng = Rng.create (Int64.of_int (49 + degree)) in
      (* Plan-level: forward / inverse / pointwise per modulus. *)
      List.iter
        (fun p ->
          let rp = Ring_backend.Reference.make_plan ~p ~degree in
          let mp = Ring_backend.Montgomery.make_plan ~p ~degree in
          checkb "reference plan tagged" true (rp.Ring_backend.backend = "reference");
          checkb "montgomery plan tagged" true (mp.Ring_backend.backend = "montgomery");
          let a = Array.init degree (fun _ -> Rng.int rng p) in
          let b = Array.init degree (fun _ -> Rng.int rng p) in
          let fa_r = Array.make degree 0 and fa_m = Array.make degree 0 in
          Ring_backend.forward_into rp ~src:a ~dst:fa_r;
          Ring_backend.forward_into mp ~src:a ~dst:fa_m;
          checkb "forward identical" true (fa_r = fa_m);
          let fb = Array.copy b in
          Ring_backend.forward mp fb;
          let pw_r = Ring_backend.pointwise rp fa_r fb in
          let pw_m = Ring_backend.pointwise mp fa_m fb in
          checkb "pointwise identical" true (pw_r = pw_m);
          let acc_r = Array.init degree (fun i -> i mod p) in
          let acc_m = Array.copy acc_r in
          Ring_backend.pointwise_acc rp ~acc:acc_r fa_r fb;
          Ring_backend.pointwise_acc mp ~acc:acc_m fa_m fb;
          checkb "pointwise_acc identical" true (acc_r = acc_m);
          let ia_r = Array.make degree 0 and ia_m = Array.make degree 0 in
          Ring_backend.inverse_into rp ~src:pw_r ~dst:ia_r;
          Ring_backend.inverse_into mp ~src:pw_m ~dst:ia_m;
          checkb "inverse identical" true (ia_r = ia_m);
          let rt = Array.copy a in
          Ring_backend.forward mp rt;
          Ring_backend.inverse mp rt;
          checkb "montgomery roundtrip is identity" true (rt = a))
        primes;
      (* Rq level: mul and dot on bases pinned to each backend must
         produce identical residue rows. *)
      let levels = min count 3 in
      let primes = Ntt.find_primes ~degree ~bits:30 ~count:levels in
      let b_ref = Rns.make ~backend:"reference" ~primes ~degree () in
      let b_mont = Rns.make ~backend:"montgomery" ~primes ~degree () in
      checkb "bases equal across backends" true (Rns.equal b_ref b_mont);
      checkb "reference basis tagged" true (Rns.backend_name b_ref = "reference");
      checkb "montgomery basis tagged" true (Rns.backend_name b_mont = "montgomery");
      let random_rows rng =
        Array.map (fun p -> Array.init degree (fun _ -> Rng.int rng p)) (Array.of_list primes)
      in
      for _ = 1 to rq_rounds do
        let rows_x = random_rows rng and rows_y = random_rows rng in
        let on basis =
          let x = Rq.of_residues basis rows_x and y = Rq.of_residues basis rows_y in
          let prod = Rq.mul x y in
          Rq.force_coeff prod;
          let d = Rq.dot [| x; y |] [| y; x |] in
          Rq.force_coeff d;
          (Rq.residues prod, Rq.residues d)
        in
        let prod_r, dot_r = on b_ref in
        let prod_m, dot_m = on b_mont in
        checkb "Rq.mul identical across backends" true (prod_r = prod_m);
        checkb "Rq.dot identical across backends" true (dot_r = dot_m)
      done)
    differential_profiles

(* BGV end-to-end: with a fixed rng seed, the entire
   keygen/encrypt/mul/keyswitch/decrypt pipeline must produce
   byte-identical ciphertexts and identical plaintexts on either
   backend — the wire format cannot see the kernel choice. *)
let test_bgv_backend_independent () =
  let run backend =
    let ctx = Bgv.make_ctx ~backend Params.test_small in
    let rng = Rng.create 50L in
    let sk, pk = Bgv.keygen ctx rng in
    let rk = Bgv.relin_keygen ctx rng sk ~max_degree:2 in
    let a = Bgv.encrypt_value ctx rng pk 3 in
    let b = Bgv.encrypt_value ctx rng pk 5 in
    let prod = Bgv.relinearize ctx rk (Bgv.mul a b) in
    let pt = Bgv.decrypt ctx sk prod in
    (Bgv.serialize a, Bgv.serialize prod, Plaintext.coeffs pt)
  in
  let ct_a_r, ct_p_r, pt_r = run "reference" in
  let ct_a_m, ct_p_m, pt_m = run "montgomery" in
  checkb "fresh ciphertext bytes identical" true (Bytes.equal ct_a_r ct_a_m);
  checkb "relinearized ciphertext bytes identical" true (Bytes.equal ct_p_r ct_p_m);
  checkb "plaintext identical" true (pt_r = pt_m);
  (* Mixed-backend interop: a ciphertext serialized under one backend
     deserializes and decrypts under the other. *)
  let ctx_m = Bgv.make_ctx ~backend:"montgomery" Params.test_small in
  let rng = Rng.create 50L in
  let sk, _pk = Bgv.keygen ctx_m rng in
  match Bgv.deserialize ctx_m ct_p_r with
  | None -> Alcotest.fail "cross-backend deserialize rejected"
  | Some ct ->
    let pt = Bgv.decrypt ctx_m sk ct in
    checkb "cross-backend decrypt" true (Plaintext.coeffs pt = pt_r)

(* The with_backend override pins plans built inside the callback and
   restores the ambient choice afterwards. *)
let test_with_backend_override () =
  let name_at ~p ~degree = (Ring_backend.make_plan ~p ~degree ()).Ring_backend.backend in
  let p = List.hd (Ntt.find_primes ~degree:64 ~bits:30 ~count:1) in
  let ambient = name_at ~p ~degree:64 in
  Ring_backend.with_backend "reference" (fun () ->
      checkb "override to reference" true (name_at ~p ~degree:64 = "reference");
      Ring_backend.with_backend "montgomery" (fun () ->
          checkb "nested override" true (name_at ~p ~degree:64 = "montgomery"));
      checkb "inner override restored" true (name_at ~p ~degree:64 = "reference"));
  checkb "ambient restored" true (name_at ~p ~degree:64 = ambient);
  (* Unknown names fail loudly. *)
  checkb "unknown backend rejected" true
    (try
       Ring_backend.with_backend "bogus" (fun () -> ());
       false
     with Invalid_argument _ -> true);
  (* Montgomery refuses moduli at or above 2^30; selection falls back
     to Reference rather than failing. *)
  let p31 = List.hd (Ntt.find_primes ~degree:64 ~bits:31 ~count:1) in
  checkb "31-bit modulus unavailable to montgomery" true
    (not (Ring_backend.Montgomery.available ~p:p31 ~degree:64));
  Ring_backend.with_backend "montgomery" (fun () ->
      checkb "fallback to reference for wide modulus" true
        (name_at ~p:p31 ~degree:64 = "reference"))

let () =
  Alcotest.run "mycelium-ringops"
    [
      ( "kernels",
        [
          Alcotest.test_case "shoup vs mod, all 30-bit moduli" `Quick test_shoup_vs_mod;
          Alcotest.test_case "montgomery KATs" `Quick test_montgomery_kat;
          Alcotest.test_case "forward_into / inverse_into" `Quick test_into_variants;
          Alcotest.test_case "pointwise kernels" `Quick test_pointwise_kernels;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "eval mul vs ntt vs naive, per limb" `Quick
            test_eval_mul_cross_check;
          Alcotest.test_case "dot = sum of products" `Quick test_dot_matches_sum_of_products;
          Alcotest.test_case "linear ops domain-agnostic" `Quick
            test_linear_ops_domain_agnostic;
        ] );
      ( "backends",
        [
          Alcotest.test_case "cross-backend differential, N in {1024, 8192, 32768}" `Quick
            test_cross_backend_differential;
          Alcotest.test_case "with_backend override + fallback" `Quick
            test_with_backend_override;
          Alcotest.test_case "BGV pipeline backend-independent" `Quick
            test_bgv_backend_independent;
        ] );
      ( "bgv",
        [ Alcotest.test_case "representation end-to-end" `Quick test_bgv_representation ] );
    ]
