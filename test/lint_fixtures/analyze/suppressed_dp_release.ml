(* The same leak as [Fire_dp_release.leak], silenced by the shared
   comment-suppression machinery — proves `lint: allow` covers the
   interprocedural rules too. *)

module Cg = Mycelium_graph.Contact_graph
module Rng = Mycelium_util.Rng

let leak () =
  let g = Cg.generate Cg.default_config (Rng.create 7L) in
  let first = List.hd (Cg.neighbors g 0) in
  (* lint: allow dp-release — fixture: deliberate leak, proves the
     suppression machinery silences analyzer rules *)
  print_int (fst first)
