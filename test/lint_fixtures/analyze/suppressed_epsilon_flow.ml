(* [Fire_epsilon_flow.charge_debug], silenced at the literal. *)

module Dp = Mycelium_dp.Dp

(* lint: allow epsilon-flow — fixture: deliberate constant epsilon,
   proves the suppression machinery silences analyzer rules *)
let charge_debug budget = Dp.budget_charge budget 0.125
