(* [Fire_pool_purity.race], silenced at the racing write. *)

module Pool = Mycelium_parallel.Pool

let race pool xs =
  let total = ref 0 in
  let _ys =
    Pool.map_array pool
      (fun x ->
        (* lint: allow pool-purity — fixture: deliberate racing write,
           proves the suppression machinery silences analyzer rules *)
        total := !total + x;
        x)
      xs
  in
  !total
