(* epsilon-flow fires: a float literal reaches the epsilon position of
   a budget charge — epsilons must originate from the parsed query
   AST, never from code constants.  The violation is attributed at the
   literal (its origin), so each constant is individually
   suppressible.  [charge_parsed], whose epsilon is a parameter with
   no constant provenance, must stay silent. *)

module Dp = Mycelium_dp.Dp

let charge_debug budget = Dp.budget_charge budget 0.125

let charge_parsed budget eps = Dp.budget_charge budget eps
