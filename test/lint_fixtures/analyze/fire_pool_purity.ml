(* pool-purity fires: the closure handed to [Pool.map_array] writes a
   captured ref, so parallel tasks race on it.  The two twins below
   are the sanctioned shapes and must stay silent: [disjoint] writes
   only its own index of a shared array (disjoint-by-index), and
   [sum] keeps the mutation in a sequential merge after the parallel
   compute (sequential-decide / parallel-compute / sequential-merge). *)

module Pool = Mycelium_parallel.Pool

let race pool xs =
  let total = ref 0 in
  let _ys =
    Pool.map_array pool
      (fun x ->
        total := !total + x;
        x)
      xs
  in
  !total

let disjoint pool (out : int array) xs =
  let _ys =
    Pool.mapi_array pool
      (fun i x ->
        out.(i) <- x + 1;
        x)
      xs
  in
  out

let sum pool xs =
  let parts = Pool.map_array pool (fun x -> x * x) xs in
  let total = ref 0 in
  Array.iter (fun p -> total := !total + p) parts;
  !total
