(* dp-release fires: a Secret contact graph reaches a stdout sink
   through a passthrough chain with no clip+noise on the way.  The
   [released] twin below takes the sanctioned path — clip at the
   graph, noise at the release — and must stay silent, proving the
   sanitizer modelling, not just the taint propagation. *)

module Cg = Mycelium_graph.Contact_graph
module Dp = Mycelium_dp.Dp
module Rng = Mycelium_util.Rng

let leak () =
  let g = Cg.generate Cg.default_config (Rng.create 7L) in
  let first = List.hd (Cg.neighbors g 0) in
  print_int (fst first)

let released () =
  let g = Cg.clip_to_degree_bound (Cg.generate Cg.default_config (Rng.create 7L)) in
  let d = float_of_int (fst (List.hd (Cg.neighbors g 0))) in
  let s = Dp.gsum_sensitivity ~clip_lo:0.0 ~clip_hi:64.0 ~neighborhood_bound:1 in
  print_float (Dp.release_sum (Rng.create 8L) ~sensitivity:s ~epsilon:0.5 d)
