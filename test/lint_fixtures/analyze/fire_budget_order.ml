(* budget-order fires: the [serve_entry_] prefix opts a function into
   the serve-path ordering discipline (tools/lint/policy.ml), and
   [serve_entry_uncharged] spins up BGV context work before the
   accountant charge.  The [serve_entry_charged] twin charges first
   and must stay silent. *)

module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Dp = Mycelium_dp.Dp

let serve_entry_uncharged budget eps =
  let ctx = Bgv.make_ctx Params.paper in
  match Dp.budget_charge budget eps with
  | Ok () -> Some ctx
  | Error (`Exhausted _) -> None

let serve_entry_charged budget eps =
  match Dp.budget_charge budget eps with
  | Ok () -> Some (Bgv.make_ctx Params.paper)
  | Error (`Exhausted _) -> None
