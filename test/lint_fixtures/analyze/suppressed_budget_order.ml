(* [Fire_budget_order.serve_entry_uncharged], silenced. *)

module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Dp = Mycelium_dp.Dp

let serve_entry_uncharged budget eps =
  (* lint: allow budget-order — fixture: deliberate pre-charge crypto,
     proves the suppression machinery silences analyzer rules *)
  let ctx = Bgv.make_ctx Params.paper in
  match Dp.budget_charge budget eps with
  | Ok () -> Some ctx
  | Error (`Exhausted _) -> None
