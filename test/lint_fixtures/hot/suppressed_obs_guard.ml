(* Fixture: the same update, consciously suppressed. *)

let init () =
  (* lint: allow obs-guard — fixture: one-time cold initialization path *)
  Obs.Metrics.incr "boot"
