(* Fixture: Bigarray scratch allocated on the tracing-disabled path
   of a hot-module butterfly. *)

let butterfly src =
  let n = Bigarray.Array1.dim src in
  if Obs.enabled () then Obs.Metrics.add "ntt.butterflies" (float_of_int n)
  else ignore (Bigarray.Array1.create Bigarray.int Bigarray.c_layout n);
  src
