(* Fixture: hot-module obs discipline violations. *)

let work x =
  Obs.Metrics.incr "ops";
  if Obs.enabled () then Obs.Metrics.add "n" (float_of_int x)
  else ignore (Printf.sprintf "%d" x);
  x
