(* Fixture: the same Bigarray create, consciously suppressed. *)

let make_scratch n =
  (* lint: allow obs-guard — fixture: one-time plan construction, not a butterfly *)
  if Obs.enabled () then () else ignore (Bigarray.Array1.create Bigarray.int Bigarray.c_layout n)
