(* Fixture: abstract t with no typed equal/compare. *)

type t

val make : int -> t
