(* Fixture: a compliant interface — abstract t with typed comparisons. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
