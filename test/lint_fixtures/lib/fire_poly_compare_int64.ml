(* Fixture: boxed-integer comparisons must trip the poly-compare rule. *)

let is_one (x : int64) = x = 1L
let at_zero (x : int32) = x = Int32.zero
let masked (x : int64) = Int64.logand x 3L = 0L
