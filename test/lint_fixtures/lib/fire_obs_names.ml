(* Fixture: metric names registered outside the Obs.Names registry. *)

let c = Obs.Metrics.counter "adhoc.counter"
let g = Mycelium_obs.Obs.Metrics.gauge "adhoc.gauge"
let h = Obs.Metrics.histogram "adhoc.histogram"
let s = Obs.Timeseries.register "adhoc.series"
let ok = Obs.Metrics.counter Obs.Names.bgv_encrypts
