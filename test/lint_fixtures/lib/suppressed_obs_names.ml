(* Fixture: an ad-hoc name, consciously suppressed. *)

let c =
  (* lint: allow obs-guard — fixture: experiment-local scratch metric *)
  Obs.Metrics.counter "scratch.counter"
