(* Fixture: a lib module with no interface file; the missing-.mli half
   of the interface rule must flag it. *)

let id x = x
