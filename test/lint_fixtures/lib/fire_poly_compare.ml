(* Fixture: every comparison below must trip the poly-compare rule. *)

type pt = { x : int; y : int }

let at_origin p = p = { x = 0; y = 0 }
let same_pair a b = (a, 0) = (b, 0)
let ordered a b = compare a b < 0
let known x xs = List.mem (x, x) xs
