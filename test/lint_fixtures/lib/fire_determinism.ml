(* Fixture: nondeterminism sources that are banned outside rng.ml. *)

let roll () = Random.int 6
let stamp () = Unix.gettimeofday ()
let total tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
