(* Fixture: the same patterns, each carrying a reasoned suppression. *)

type pt = { x : int; y : int }

(* lint: allow poly-compare — fixture: structural equality is intended *)
let at_origin p = p = { x = 0; y = 0 }

let ordered a b = (compare a b < 0) [@lint.allow "poly-compare"]
