(* Fixture: abstract t whose identity-only comparison is documented. *)

(* lint: allow interface — fixture: handles compare by identity only *)
type t

val make : int -> t
