(* Fixture: typed comparisons only; must produce no findings. *)

type t = { x : int; y : int }

let equal a b = Int.equal a.x b.x && Int.equal a.y b.y

let compare a b =
  match Int.compare a.x b.x with 0 -> Int.compare a.y b.y | c -> c
