(* Fixture: the same source, suppressed with a reason. *)

(* lint: allow determinism — fixture: feeds diagnostics, never results *)
let stamp () = Unix.gettimeofday ()
