(* Fixture: serving-layer metrics — ad-hoc literals fire, the
   registered serve.* names from Obs.Names stay silent. *)

let bad = Obs.Metrics.counter "serve.adhoc_hits"
let ok_admitted = Obs.Metrics.counter Obs.Names.serve_admitted
let ok_batches = Obs.Metrics.counter Obs.Names.serve_batches
let ok_hits = Obs.Metrics.counter Obs.Names.serve_cache_hits
let ok_evictions = Obs.Metrics.counter Obs.Names.serve_cache_evictions
