(* Fixture: the same boxed-integer patterns, suppressed or typed away. *)

(* lint: allow poly-compare — fixture: wire format fixes the representation *)
let is_one (x : int64) = x = 1L

(* [Int64.to_int] narrows to an immediate, so no suppression is needed. *)
let narrowed (x : int64) = Int64.to_int x = 1
