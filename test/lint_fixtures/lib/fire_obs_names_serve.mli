(* Fixture companion interface (keeps the missing-.mli check quiet). *)
