(* Fixture companion implementation. *)

type t = int

let make n = n
