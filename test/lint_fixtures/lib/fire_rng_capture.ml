(* Fixture: an Rng stream captured by a Pool task closure. *)

let jitter pool rng xs =
  Pool.map_array pool (fun x -> x + Rng.int rng 3) xs
