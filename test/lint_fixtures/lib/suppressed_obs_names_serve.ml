(* Fixture: a serving-layer scratch metric, consciously suppressed. *)

let c =
  (* lint: allow obs-guard — fixture: serving-experiment scratch counter *)
  Obs.Metrics.counter "serve.scratch"
