(* Fixture: the pre-split pattern, with a suppression citing rng.mli. *)

let jitter pool rng xs =
  (* lint: allow rng-capture — fixture: task_rng-style pre-split stream *)
  Pool.map_array pool (fun x -> x + Rng.int rng 3) xs
