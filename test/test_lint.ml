(* mycelium-lint suite (DESIGN.md §10): every rule is proven live
   against a firing fixture and proven silenceable against a suppressed
   one, with exact rule ids and line numbers asserted out of the JSON
   report — so a regression in either the rules or the suppression
   machinery turns the tree red, not silently green.

   The fixtures live in test/lint_fixtures/ (excluded from the repo
   walk and from the build); [run ~force_zone] pins them to the zone
   whose rule set they exercise.

   The typed-comparison cells at the bottom are the satellite
   regression tests for the poly-compare sweep: the handful of sites
   where swapping polymorphic for typed comparison could change
   behavior (floats with NaN, sum types, basis checks) are pinned. *)

module L = Mycelium_lint.Lint
module Json = Mycelium_obs.Obs.Json
module Stats = Mycelium_util.Stats
module Rng = Mycelium_util.Rng
module Ast = Mycelium_query.Ast
module Parser = Mycelium_query.Parser
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq
module Fault_plan = Mycelium_faults.Fault_plan

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sites = Alcotest.(list (pair string int))
(* (rule, line) pairs in report order *)

let site_list vs = List.map (fun (v : L.violation) -> (v.rule, v.line)) vs

let fixture zone root = L.run ~force_zone:zone ~roots:[ "lint_fixtures/" ^ root ] ()

let only file vs = List.filter (fun (v : L.violation) -> Filename.basename v.file = file) vs

(* ------------------------------------------------------------------ *)
(* Rules fire, with exact positions                                    *)
(* ------------------------------------------------------------------ *)

let lib_report = lazy (fixture L.Lib "lib")
let hot_report = lazy (fixture L.Lib_hot "hot")

let test_poly_compare_fires () =
  let r = Lazy.force lib_report in
  Alcotest.check sites "poly-compare sites"
    [ ("poly-compare", 5); ("poly-compare", 6); ("poly-compare", 7); ("poly-compare", 8) ]
    (site_list (only "fire_poly_compare.ml" r.violations))

let test_poly_compare_int64_fires () =
  (* The boxed-integer extension: suffixed literals are no longer
     immediate, and Int64/Int32 constants and application results are
     evidently structured. *)
  let r = Lazy.force lib_report in
  Alcotest.check sites "poly-compare int64 sites"
    [ ("poly-compare", 3); ("poly-compare", 4); ("poly-compare", 5) ]
    (site_list (only "fire_poly_compare_int64.ml" r.violations))

let test_determinism_fires () =
  let r = Lazy.force lib_report in
  Alcotest.check sites "determinism sites"
    [ ("determinism", 3); ("determinism", 4); ("determinism", 5) ]
    (site_list (only "fire_determinism.ml" r.violations))

let test_rng_capture_fires () =
  let r = Lazy.force lib_report in
  Alcotest.check sites "rng-capture sites"
    [ ("rng-capture", 4) ]
    (site_list (only "fire_rng_capture.ml" r.violations))

let test_interface_fires () =
  let r = Lazy.force lib_report in
  Alcotest.check sites "interface: t without equal/compare"
    [ ("interface", 3) ]
    (site_list (only "fire_interface.mli" r.violations));
  Alcotest.check sites "interface: missing .mli"
    [ ("interface", 1) ]
    (site_list (only "no_mli.ml" r.violations))

let test_obs_guard_fires () =
  let r = Lazy.force hot_report in
  Alcotest.check sites "obs-guard sites"
    [ ("obs-guard", 4); ("obs-guard", 6) ]
    (site_list (only "fire_obs_guard.ml" r.violations));
  (* The Bigarray extension of the allocating-head set: an unguarded
     scratch create inside a butterfly's disabled path fires. *)
  Alcotest.check sites "obs-guard bigarray sites"
    [ ("obs-guard", 7) ]
    (site_list (only "fire_obs_guard_ba.ml" r.violations))

let test_obs_names_fires () =
  (* The registry half of obs-guard, live in the plain-lib zone: every
     registration head (counter/gauge/histogram/Timeseries.register,
     bare or fully qualified) with an inline literal fires; the
     Obs.Names-drawn registration on the last line stays silent. *)
  let r = Lazy.force lib_report in
  Alcotest.check sites "obs-names sites"
    [ ("obs-guard", 3); ("obs-guard", 4); ("obs-guard", 5); ("obs-guard", 6) ]
    (site_list (only "fire_obs_names.ml" r.violations));
  (* The PR9 serving-layer names: only the ad-hoc literal fires; the
     four serve.* registrations drawn from Obs.Names stay silent. *)
  Alcotest.check sites "obs-names serve sites"
    [ ("obs-guard", 4) ]
    (site_list (only "fire_obs_names_serve.ml" r.violations))

let test_clean_files_are_clean () =
  let r = Lazy.force lib_report in
  Alcotest.check sites "clean.ml" [] (site_list (only "clean.ml" r.violations));
  Alcotest.check sites "clean.mli" [] (site_list (only "clean.mli" r.violations));
  Alcotest.check sites "clean.ml suppressed" [] (site_list (only "clean.ml" r.suppressed))

let test_parse_error () =
  let vs, _ = L.lint_source ~zone:L.Lib ~file:"broken.ml" ~kind:L.Ml "let = (" in
  Alcotest.check sites "parse failure surfaces as a violation"
    [ ("parse-error", 1) ] (site_list vs)

(* ------------------------------------------------------------------ *)
(* Suppressions silence, and are themselves reported                   *)
(* ------------------------------------------------------------------ *)

let test_suppressions_silence () =
  let r = Lazy.force lib_report in
  let h = Lazy.force hot_report in
  List.iter
    (fun file ->
      Alcotest.check sites (file ^ " has no live violations") []
        (site_list (only file r.violations)))
    [ "suppressed_poly_compare.ml"; "suppressed_poly_compare_int64.ml";
      "suppressed_determinism.ml"; "suppressed_rng_capture.ml";
      "suppressed_interface.mli"; "suppressed_obs_names.ml";
      "suppressed_obs_names_serve.ml" ];
  Alcotest.check sites "suppressed_obs_guard.ml has no live violations" []
    (site_list (only "suppressed_obs_guard.ml" h.violations));
  Alcotest.check sites "suppressed_obs_guard_ba.ml has no live violations" []
    (site_list (only "suppressed_obs_guard_ba.ml" h.violations))

let test_suppressions_are_counted () =
  let r = Lazy.force lib_report in
  let h = Lazy.force hot_report in
  (* comment form and attribute form both land in the suppressed list *)
  Alcotest.check sites "poly-compare suppressions recorded"
    [ ("poly-compare", 6); ("poly-compare", 8) ]
    (site_list (only "suppressed_poly_compare.ml" r.suppressed));
  Alcotest.check sites "poly-compare int64 suppression recorded"
    [ ("poly-compare", 4) ]
    (site_list (only "suppressed_poly_compare_int64.ml" r.suppressed));
  Alcotest.check sites "determinism suppression recorded"
    [ ("determinism", 4) ]
    (site_list (only "suppressed_determinism.ml" r.suppressed));
  Alcotest.check sites "rng-capture suppression recorded"
    [ ("rng-capture", 5) ]
    (site_list (only "suppressed_rng_capture.ml" r.suppressed));
  Alcotest.check sites "interface suppression recorded"
    [ ("interface", 4) ]
    (site_list (only "suppressed_interface.mli" r.suppressed));
  Alcotest.check sites "obs-names suppression recorded"
    [ ("obs-guard", 5) ]
    (site_list (only "suppressed_obs_names.ml" r.suppressed));
  Alcotest.check sites "obs-names serve suppression recorded"
    [ ("obs-guard", 5) ]
    (site_list (only "suppressed_obs_names_serve.ml" r.suppressed));
  Alcotest.check sites "obs-guard suppression recorded"
    [ ("obs-guard", 5) ]
    (site_list (only "suppressed_obs_guard.ml" h.suppressed));
  Alcotest.check sites "obs-guard bigarray suppression recorded"
    [ ("obs-guard", 5) ]
    (site_list (only "suppressed_obs_guard_ba.ml" h.suppressed))

(* ------------------------------------------------------------------ *)
(* JSON report round-trip                                              *)
(* ------------------------------------------------------------------ *)

let member_exn k j =
  match Json.member k j with Some v -> v | None -> Alcotest.failf "missing member %s" k

let test_json_report () =
  let r = Lazy.force lib_report in
  let j =
    match Json.parse (Json.to_string (L.json_of_report r)) with
    | Ok j -> j
    | Error e -> Alcotest.failf "report JSON does not re-parse: %s" e
  in
  (match member_exn "tool" j with
  | Json.Str s -> checkb "tool name" true (String.length s > 0)
  | _ -> Alcotest.fail "tool is not a string");
  (match member_exn "violation_count" j with
  | Json.Int n -> checki "violation_count matches list" (List.length r.violations) n
  | _ -> Alcotest.fail "violation_count is not an int");
  let entries =
    match member_exn "violations" j with
    | Json.List l -> l
    | _ -> Alcotest.fail "violations is not a list"
  in
  let decoded =
    List.map
      (fun e ->
        match (member_exn "rule" e, member_exn "file" e, member_exn "line" e) with
        | Json.Str rule, Json.Str file, Json.Int line -> (rule, Filename.basename file, line)
        | _ -> Alcotest.fail "violation entry shape")
      entries
  in
  (* exact (rule, file, line) triples out of the machine-readable report *)
  checkb "rng-capture at fire_rng_capture.ml:4" true
    (List.mem ("rng-capture", "fire_rng_capture.ml", 4) decoded);
  checkb "interface at fire_interface.mli:3" true
    (List.mem ("interface", "fire_interface.mli", 3) decoded);
  checkb "missing-mli at no_mli.ml:1" true
    (List.mem ("interface", "no_mli.ml", 1) decoded);
  checki "decoded entry count" (List.length r.violations) (List.length decoded)

let test_repo_zone_map () =
  let z p = L.zone_of_rel p in
  let is_some_eq a b = match (a, b) with Some x, Some y -> x = y | None, None -> true | _ -> false in
  checkb "rng.ml is the rng zone" true (is_some_eq (z "lib/util/rng.ml") (Some L.Lib_rng));
  checkb "lib/math is hot" true (is_some_eq (z "lib/math/ntt.ml") (Some L.Lib_hot));
  checkb "lib/bgv is hot" true (is_some_eq (z "lib/bgv/bgv.ml") (Some L.Lib_hot));
  checkb "lib/query is plain lib" true (is_some_eq (z "lib/query/ast.ml") (Some L.Lib));
  checkb "bench is bench" true (is_some_eq (z "bench/main.ml") (Some L.Bench));
  checkb "README is not analysed" true (is_some_eq (z "README.md") None)

(* ------------------------------------------------------------------ *)
(* Typed-comparison regressions from the sweep                         *)
(* ------------------------------------------------------------------ *)

let test_percentile_nan () =
  (* Float.compare (like the polymorphic compare it replaced) sorts NaN
     below every number, so a NaN contaminates the low percentiles but
     leaves the high ones intact — pinned so a future "fix" is loud. *)
  let a = [| 3.; Float.nan; 1.; 2. |] in
  checkb "p100 ignores the NaN" true (Float.equal (Stats.percentile a 100.) 3.);
  checkb "p0 is the NaN" true (Float.is_nan (Stats.percentile a 0.))

let test_geometric_p_one () =
  (* rng.ml: the p = 1. short-circuit now uses Float.equal. *)
  let rng = Rng.create 7L in
  checki "geometric at p=1 is 0 failures" 0 (Rng.geometric rng 1.)

let test_json_equal_nan () =
  (* Json.equal uses Float.equal: NaN payloads compare equal, unlike
     the structural (=) it replaces in callers. *)
  checkb "Num nan = Num nan" true (Json.equal (Json.Num Float.nan) (Json.Num Float.nan));
  checkb "Num 1. <> Num 2." false (Json.equal (Json.Num 1.) (Json.Num 2.));
  checkb "Int 1 <> Num 1." false (Json.equal (Json.Int 1) (Json.Num 1.))

let test_ast_equal () =
  let q s =
    match Parser.parse s with
    | Ok q -> q
    | Error e -> Alcotest.failf "parse: %s" e.Parser.message
  in
  let a = q "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE self.inf" in
  checkb "query equals itself structurally" true
    (Ast.equal a (q "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE self.inf"));
  checkb "different hops differ" false
    (Ast.equal a (q "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.inf"));
  checkb "field order is total" true (Ast.compare_field Ast.Inf Ast.Setting < 0);
  checkb "compare_field is reflexive" true (Ast.compare_field Ast.Age Ast.Age = 0)

let test_rns_equal () =
  let a = Rns.standard ~degree:64 ~prime_bits:20 ~levels:2 () in
  let b = Rns.standard ~degree:64 ~prime_bits:20 ~levels:2 () in
  let c = Rns.standard ~degree:64 ~prime_bits:20 ~levels:3 () in
  checkb "same construction, equal bases" true (Rns.equal a b);
  checkb "level count differs" false (Rns.equal a c);
  checkb "drop_last c equals a" true (Rns.equal (Rns.drop_last c) a);
  (* Rq's basis checks now go through Rns.equal *)
  let x = Rq.of_centered_coeffs a (Array.make 64 1) in
  let y = Rq.of_centered_coeffs c (Array.make 64 1) in
  checkb "cross-basis add rejected" true
    (match Rq.add x y with _ -> false | exception Invalid_argument _ -> true)

let test_fault_plan_equal () =
  let p1 = Fault_plan.make ~seed:9L ~drop_rate:0.25 ~crashed_committee:[ 1; 3 ] () in
  let p2 = Fault_plan.make ~seed:9L ~drop_rate:0.25 ~crashed_committee:[ 1; 3 ] () in
  let p3 = Fault_plan.make ~seed:9L ~drop_rate:0.5 ~crashed_committee:[ 1; 3 ] () in
  checkb "same plans equal" true (Fault_plan.equal p1 p2);
  checkb "rate differs" false (Fault_plan.equal p1 p3);
  checkb "none is none" true (Fault_plan.is_none Fault_plan.none);
  checkb "p1 is not none" false (Fault_plan.is_none p1)

let () =
  Alcotest.run "lint"
    [
      ( "rules-fire",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare_fires;
          Alcotest.test_case "poly-compare-int64" `Quick test_poly_compare_int64_fires;
          Alcotest.test_case "determinism" `Quick test_determinism_fires;
          Alcotest.test_case "rng-capture" `Quick test_rng_capture_fires;
          Alcotest.test_case "interface" `Quick test_interface_fires;
          Alcotest.test_case "obs-guard" `Quick test_obs_guard_fires;
          Alcotest.test_case "obs-names" `Quick test_obs_names_fires;
          Alcotest.test_case "clean-files" `Quick test_clean_files_are_clean;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "silence" `Quick test_suppressions_silence;
          Alcotest.test_case "counted" `Quick test_suppressions_are_counted;
        ] );
      ( "report",
        [
          Alcotest.test_case "json-round-trip" `Quick test_json_report;
          Alcotest.test_case "zone-map" `Quick test_repo_zone_map;
        ] );
      ( "typed-compare-regressions",
        [
          Alcotest.test_case "percentile-nan" `Quick test_percentile_nan;
          Alcotest.test_case "geometric-p1" `Quick test_geometric_p_one;
          Alcotest.test_case "json-equal-nan" `Quick test_json_equal_nan;
          Alcotest.test_case "ast-equal" `Quick test_ast_equal;
          Alcotest.test_case "rns-equal" `Quick test_rns_equal;
          Alcotest.test_case "fault-plan-equal" `Quick test_fault_plan_equal;
        ] );
    ]
