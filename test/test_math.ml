(* Tests for mycelium_util and mycelium_math: PRNG, modular arithmetic,
   NTT, bignum, RNS/CRT and the polynomial ring. *)

module Rng = Mycelium_util.Rng
module Hex = Mycelium_util.Hex
module Stats = Mycelium_util.Stats
module Modarith = Mycelium_math.Modarith
module Ntt = Mycelium_math.Ntt
module Bigint = Mycelium_math.Bigint
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  checkb "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniformity () =
  let rng = Rng.create 99L in
  let n = 10 and draws = 100_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let v = Rng.int rng n in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int draws /. float_of_int n in
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      checkb "within 5% of uniform" true (dev < 0.05))
    counts

let test_rng_split_independent () =
  let parent = Rng.create 3L in
  let child = Rng.split parent in
  let a = Array.init 32 (fun _ -> Rng.int64 parent) in
  let b = Array.init 32 (fun _ -> Rng.int64 child) in
  checkb "streams differ" true (a <> b)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 5L in
  let s = Rng.sample_without_replacement rng 10 100 in
  checki "ten elements" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.to_list sorted |> List.sort_uniq compare |> List.length in
  checki "all distinct" 10 distinct;
  Array.iter (fun v -> checkb "in range" true (v >= 0 && v < 100)) s;
  (* Dense case takes the shuffle path. *)
  let all = Rng.sample_without_replacement rng 100 100 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  checkb "permutation" true (sorted = Array.init 100 (fun i -> i))

let test_rng_laplace_moments () =
  let rng = Rng.create 11L in
  let b = 2.5 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.laplace rng b) in
  let mean = Stats.mean xs in
  let var = Stats.variance xs in
  checkb "mean near 0" true (Float.abs mean < 0.05);
  (* Laplace variance is 2 b^2 = 12.5. *)
  checkb "variance near 2b^2" true (Float.abs (var -. 12.5) < 0.5)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13L in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng 3.0) in
  checkb "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  checkb "stddev near 3" true (Float.abs (Stats.stddev xs -. 3.0) < 0.05)

let test_rng_geometric () =
  let rng = Rng.create 17L in
  let p = 0.25 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> float_of_int (Rng.geometric rng p)) in
  (* Mean of failures-before-success geometric is (1-p)/p = 3. *)
  checkb "mean near 3" true (Float.abs (Stats.mean xs -. 3.0) < 0.1)

let test_rng_bernoulli () =
  let rng = Rng.create 23L in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. 100_000. in
  checkb "fraction near 0.3" true (Float.abs (frac -. 0.3) < 0.01)

(* ------------------------------------------------------------------ *)
(* Hex / Stats                                                         *)
(* ------------------------------------------------------------------ *)

let test_hex_roundtrip () =
  let rng = Rng.create 1L in
  for _ = 1 to 50 do
    let b = Rng.bytes rng (Rng.int rng 64) in
    check Alcotest.bytes "roundtrip" b (Hex.decode (Hex.encode b))
  done

let test_hex_known () =
  check Alcotest.string "abc" "616263" (Hex.encode_string "abc");
  check Alcotest.bytes "decode upper" (Bytes.of_string "\xde\xad\xbe\xef") (Hex.decode "DEADBEEF")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Hex.decode "zz"))

let test_stats_basic () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean a);
  check (Alcotest.float 1e-9) "variance" 2.0 (Stats.variance a);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.median a);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile a 0.);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile a 100.);
  check (Alcotest.float 1e-9) "p25" 2.0 (Stats.percentile a 25.)

let test_stats_running () =
  let r = Stats.running_create () in
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Array.iter (Stats.running_add r) xs;
  checki "count" 8 (Stats.running_count r);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.running_mean r);
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.running_stddev r)

(* ------------------------------------------------------------------ *)
(* Modarith                                                            *)
(* ------------------------------------------------------------------ *)

let p31 = 2147483647 (* 2^31 - 1, prime *)

let test_modarith_basic () =
  checki "add wraps" 0 (Modarith.add p31 (p31 - 1) 1);
  checki "sub wraps" (p31 - 1) (Modarith.sub p31 0 1);
  checki "neg zero" 0 (Modarith.neg p31 0);
  checki "mul" 6 (Modarith.mul p31 2 3);
  checki "pow" 1024 (Modarith.pow p31 2 10);
  checki "pow zero exponent" 1 (Modarith.pow p31 12345 0);
  checki "reduce negative" (p31 - 5) (Modarith.reduce p31 (-5))

let test_modarith_fermat () =
  (* a^(p-1) = 1 mod p for prime p. *)
  List.iter
    (fun a -> checki "fermat" 1 (Modarith.pow p31 a (p31 - 1)))
    [ 2; 3; 12345; 99999999 ]

let test_modarith_inv () =
  let rng = Rng.create 31L in
  for _ = 1 to 200 do
    let a = 1 + Rng.int rng (p31 - 1) in
    let i = Modarith.inv p31 a in
    checki "a * a^-1 = 1" 1 (Modarith.mul p31 a i)
  done;
  Alcotest.check_raises "inv 0" (Invalid_argument "Modarith.inv: zero has no inverse")
    (fun () -> ignore (Modarith.inv p31 0))

let test_modarith_is_prime () =
  List.iter (fun n -> checkb (string_of_int n) true (Modarith.is_prime n))
    [ 2; 3; 5; 7; 97; 7681; 12289; 786433; 2147483647 ];
  List.iter (fun n -> checkb (string_of_int n) false (Modarith.is_prime n))
    [ 0; 1; 4; 9; 561; 1105; 1729; 2465; 6601; 2147483646 ]

let test_modarith_primitive_root () =
  List.iter
    (fun p ->
      let g = Modarith.primitive_root p in
      (* Order of g must be exactly p-1: g^((p-1)/q) <> 1 for prime q | p-1. *)
      checki "g^(p-1)=1" 1 (Modarith.pow p g (p - 1));
      checkb "g^((p-1)/2) <> 1" true (p = 2 || Modarith.pow p g ((p - 1) / 2) <> 1))
    [ 3; 5; 7; 12289; 7681; 786433 ]

let test_modarith_root_of_unity () =
  let p = 12289 in
  (* 12289 = 3 * 2^12 + 1: supports 2N up to 4096. *)
  let w = Modarith.nth_root_of_unity p 4096 in
  checki "w^4096 = 1" 1 (Modarith.pow p w 4096);
  checkb "w^2048 <> 1" true (Modarith.pow p w 2048 <> 1)

let test_modarith_to_signed () =
  checki "small stays" 3 (Modarith.to_signed 17 3);
  checki "large goes negative" (-8) (Modarith.to_signed 17 9);
  checki "boundary" 8 (Modarith.to_signed 17 8)

(* ------------------------------------------------------------------ *)
(* NTT                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ntt_find_primes () =
  let ps = Ntt.find_primes ~degree:1024 ~bits:30 ~count:5 in
  checki "five primes" 5 (List.length ps);
  List.iter
    (fun p ->
      checkb "prime" true (Modarith.is_prime p);
      checki "p mod 2N = 1" 1 (p mod 2048);
      checkb "below 2^30" true (p < 1 lsl 30))
    ps;
  checki "distinct" 5 (List.sort_uniq compare ps |> List.length)

let test_ntt_roundtrip () =
  let n = 256 in
  let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:n in
  let rng = Rng.create 101L in
  for _ = 1 to 20 do
    let a = Array.init n (fun _ -> Rng.int rng p) in
    let b = Array.copy a in
    Ntt.forward plan b;
    checkb "transform changes data" true (a <> b);
    Ntt.inverse plan b;
    checkb "roundtrip" true (a = b)
  done

let test_ntt_seeded_roundtrip_all_degrees () =
  (* forward/inverse is the identity in both composition orders for
     random vectors at every supported degree; fixed Rng seeds make
     each sweep reproducible. *)
  List.iter
    (fun n ->
      let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
      let plan = Ntt.make_plan ~p ~degree:n in
      let rng = Rng.create (Int64.of_int (7000 + n)) in
      for _ = 1 to 25 do
        let a = Array.init n (fun _ -> Rng.int rng p) in
        let b = Array.copy a in
        Ntt.forward plan b;
        Ntt.inverse plan b;
        checkb "inverse . forward = id" true (a = b);
        let c = Array.copy a in
        Ntt.inverse plan c;
        Ntt.forward plan c;
        checkb "forward . inverse = id" true (a = c)
      done)
    [ 8; 32; 128; 512 ]

let test_ntt_vs_naive () =
  List.iter
    (fun n ->
      let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
      let plan = Ntt.make_plan ~p ~degree:n in
      let rng = Rng.create (Int64.of_int n) in
      for _ = 1 to 10 do
        let a = Array.init n (fun _ -> Rng.int rng p) in
        let b = Array.init n (fun _ -> Rng.int rng p) in
        let fast = Ntt.multiply plan a b in
        let slow = Ntt.multiply_naive ~p a b in
        checkb "ntt = naive" true (fast = slow)
      done)
    [ 8; 64; 256 ]

let test_ntt_negacyclic_wraparound () =
  (* x^(N-1) * x = x^N = -1. *)
  let n = 64 in
  let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:n in
  let a = Array.make n 0 and b = Array.make n 0 in
  a.(n - 1) <- 1;
  b.(1) <- 1;
  let c = Ntt.multiply plan a b in
  checki "constant term is -1" (p - 1) c.(0);
  for i = 1 to n - 1 do
    checki "other terms zero" 0 c.(i)
  done

let test_ntt_monomial_exponent_addition () =
  (* The Mycelium histogram encoding: x^a * x^b = x^(a+b). *)
  let n = 128 in
  let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:n in
  let mono e = Array.init n (fun i -> if i = e then 1 else 0) in
  let c = Ntt.multiply plan (mono 17) (mono 40) in
  Array.iteri (fun i v -> checki "monomial product" (if i = 57 then 1 else 0) v) c

let test_ntt_linearity () =
  let n = 128 in
  let p = List.hd (Ntt.find_primes ~degree:n ~bits:28 ~count:1) in
  let plan = Ntt.make_plan ~p ~degree:n in
  let rng = Rng.create 202L in
  let a = Array.init n (fun _ -> Rng.int rng p) in
  let b = Array.init n (fun _ -> Rng.int rng p) in
  let sum = Array.init n (fun i -> Modarith.add p a.(i) b.(i)) in
  let fa = Array.copy a and fb = Array.copy b and fs = Array.copy sum in
  Ntt.forward plan fa;
  Ntt.forward plan fb;
  Ntt.forward plan fs;
  Array.iteri (fun i v -> checki "NTT(a+b) = NTT(a)+NTT(b)" v (Modarith.add p fa.(i) fb.(i))) fs

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)
(* ------------------------------------------------------------------ *)

let bigint_testable =
  Alcotest.testable (fun fmt v -> Bigint.pp fmt v) Bigint.equal

let bi = Bigint.of_int

let test_bigint_of_to_int () =
  List.iter
    (fun v -> checki "roundtrip" v (Bigint.to_int (bi v)))
    [ 0; 1; -1; 42; -42; max_int / 2; min_int / 2; 1 lsl 40; -(1 lsl 40) ]

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "decimal roundtrip" s Bigint.(to_string (of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999999999999999";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_bigint_arith_known () =
  let a = Bigint.of_string "123456789012345678901234567890" in
  let b = Bigint.of_string "987654321098765432109876543210" in
  check bigint_testable "add"
    (Bigint.of_string "1111111110111111111011111111100")
    (Bigint.add a b);
  check bigint_testable "sub"
    (Bigint.of_string "-864197532086419753208641975320")
    (Bigint.sub a b);
  check bigint_testable "mul"
    (Bigint.of_string "121932631137021795226185032733622923332237463801111263526900")
    (Bigint.mul a b)

let test_bigint_divmod_known () =
  let a = Bigint.of_string "121932631137021795226185032733622923332237463801111263526900" in
  let b = Bigint.of_string "987654321098765432109876543210" in
  let q, r = Bigint.divmod a b in
  check bigint_testable "exact quotient" (Bigint.of_string "123456789012345678901234567890") q;
  check bigint_testable "zero remainder" Bigint.zero r

let int_small = QCheck.int_range (-1000000000) 1000000000

let prop_bigint_matches_int =
  qtest "bigint arith matches int oracle" QCheck.(pair int_small int_small) (fun (a, b) ->
      let ba = bi a and bb = bi b in
      Bigint.to_int (Bigint.add ba bb) = a + b
      && Bigint.to_int (Bigint.sub ba bb) = a - b
      && Bigint.to_int (Bigint.mul ba bb) = a * b)

let prop_bigint_divmod_int =
  qtest "bigint divmod matches int oracle"
    QCheck.(pair int_small (int_small |> map (fun v -> if v = 0 then 1 else v)))
    (fun (a, b) ->
      let q, r = Bigint.divmod (bi a) (bi b) in
      Bigint.to_int q = a / b && Bigint.to_int r = a mod b)

let big_gen =
  (* Random bigints up to ~300 bits via hex strings. *)
  QCheck.Gen.(
    let* len = int_range 1 75 in
    let* neg = bool in
    let* digits = string_size ~gen:(oneofl [ '0'; '1'; '2'; '3'; '4'; '5'; '6'; '7'; '8'; '9'; 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ]) (return len) in
    return (let v = Bigint.of_hex digits in if neg then Bigint.neg v else v))

let arb_big = QCheck.make ~print:Bigint.to_string big_gen

let prop_bigint_divmod_invariant =
  qtest "divmod invariant: a = q*b + r, |r| < |b|" QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (Bigint.is_zero b));
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_bigint_ring_axioms =
  qtest "ring axioms" QCheck.(triple arb_big arb_big arb_big) (fun (a, b, c) ->
      Bigint.equal (Bigint.add a b) (Bigint.add b a)
      && Bigint.equal (Bigint.mul a b) (Bigint.mul b a)
      && Bigint.equal (Bigint.mul a (Bigint.add b c)) (Bigint.add (Bigint.mul a b) (Bigint.mul a c))
      && Bigint.equal (Bigint.mul (Bigint.mul a b) c) (Bigint.mul a (Bigint.mul b c)))

let prop_bigint_shift =
  qtest "shifts are multiplication/division by powers of two"
    QCheck.(pair arb_big (int_range 0 100))
    (fun (a, k) ->
      Bigint.equal (Bigint.shift_left a k) (Bigint.mul a (Bigint.pow Bigint.two k))
      && Bigint.equal (Bigint.shift_right (Bigint.abs a) k)
           (Bigint.div (Bigint.abs a) (Bigint.pow Bigint.two k)))

let prop_bigint_bytes_roundtrip =
  qtest "bytes_be roundtrip" arb_big (fun a ->
      let a = Bigint.abs a in
      Bigint.equal a (Bigint.of_bytes_be (Bigint.to_bytes_be a)))

let prop_bigint_rem_int =
  qtest "rem_int matches erem" QCheck.(pair arb_big (QCheck.int_range 1 2000000000))
    (fun (a, p) ->
      Bigint.rem_int a p = Bigint.to_int (Bigint.erem a (bi p)))

let test_bigint_seeded_divmod_mul_identities () =
  (* Seeded randomized sweep over wide, sign-mixed operands: the
     divmod contract, exact division of products, and the binomial
     identity (which stresses carries across limb boundaries). *)
  let rng = Rng.create 9001L in
  let random_big bits =
    let v = Bigint.random_bits rng (2 + Rng.int rng bits) in
    if Rng.bool rng then Bigint.neg v else v
  in
  for _ = 1 to 200 do
    let a = random_big 192 and b = random_big 128 in
    (if not (Bigint.is_zero b) then begin
       let q, r = Bigint.divmod a b in
       checkb "a = q*b + r" true (Bigint.equal a (Bigint.add (Bigint.mul q b) r));
       checkb "|r| < |b|" true (Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0);
       let q2, r2 = Bigint.divmod (Bigint.mul a b) b in
       checkb "(a*b)/b = a exactly" true (Bigint.equal q2 a && Bigint.is_zero r2)
     end);
    let sq x = Bigint.mul x x in
    let lhs = sq (Bigint.add a b) in
    let rhs =
      Bigint.add (sq a)
        (Bigint.add (Bigint.mul (Bigint.of_int 2) (Bigint.mul a b)) (sq b))
    in
    checkb "(a+b)^2 = a^2 + 2ab + b^2" true (Bigint.equal lhs rhs)
  done

let test_bigint_mod_pow () =
  (* 2^10 mod 1000 = 24; also a big case checked against repeated squaring. *)
  checki "small" 24 (Bigint.to_int (Bigint.mod_pow Bigint.two (bi 10) (bi 1000)));
  let m = Bigint.of_string "1000000007" in
  let r = Bigint.mod_pow (bi 3) (Bigint.of_string "1000000006") m in
  (* Fermat: 3^(p-1) = 1 mod p. *)
  check bigint_testable "fermat big" Bigint.one r

let test_bigint_mod_inv () =
  let rng = Rng.create 55L in
  let m = Bigint.of_string "170141183460469231731687303715884105727" (* 2^127-1, prime *) in
  for _ = 1 to 20 do
    let a = Bigint.add (Bigint.random rng (Bigint.sub m Bigint.one)) Bigint.one in
    let i = Bigint.mod_inv a m in
    check bigint_testable "a * a^-1 = 1 (mod m)" Bigint.one (Bigint.erem (Bigint.mul a i) m)
  done

let test_bigint_gcd () =
  check bigint_testable "gcd(12,18)" (bi 6) (Bigint.gcd (bi 12) (bi 18));
  check bigint_testable "gcd(a,0)" (bi 7) (Bigint.gcd (bi 7) Bigint.zero);
  check bigint_testable "coprime" Bigint.one (Bigint.gcd (bi 17) (bi 19))

let test_bigint_primality () =
  let rng = Rng.create 77L in
  checkb "2^127-1 prime" true
    (Bigint.is_probable_prime rng (Bigint.of_string "170141183460469231731687303715884105727"));
  checkb "2^128 composite" false
    (Bigint.is_probable_prime rng (Bigint.of_string "340282366920938463463374607431768211456"));
  (* Carmichael number 561 handled by the small-int fast path. *)
  checkb "561 composite" false (Bigint.is_probable_prime rng (bi 561))

let test_bigint_random_prime () =
  let rng = Rng.create 88L in
  let p = Bigint.random_prime rng ~bits:96 in
  checki "bit length" 96 (Bigint.num_bits p);
  checkb "probable prime" true (Bigint.is_probable_prime rng p)

let test_bigint_num_bits () =
  checki "zero" 0 (Bigint.num_bits Bigint.zero);
  checki "one" 1 (Bigint.num_bits Bigint.one);
  checki "255" 8 (Bigint.num_bits (bi 255));
  checki "256" 9 (Bigint.num_bits (bi 256));
  checki "2^100" 101 (Bigint.num_bits (Bigint.pow Bigint.two 100))

(* ------------------------------------------------------------------ *)
(* Rns / Rq                                                            *)
(* ------------------------------------------------------------------ *)

let small_basis = lazy (Rns.standard ~degree:64 ~prime_bits:28 ~levels:4 ())

let test_rns_modulus () =
  let b = Lazy.force small_basis in
  let expected =
    Array.fold_left (fun acc p -> Bigint.mul acc (bi p)) Bigint.one (Rns.primes b)
  in
  check bigint_testable "q = product of primes" expected (Rns.modulus b);
  checki "levels" 4 (Rns.level_count b)

let test_rns_roundtrip () =
  let b = Lazy.force small_basis in
  let rng = Rng.create 123L in
  for _ = 1 to 100 do
    let x = Bigint.random rng (Rns.modulus b) in
    let r = Rns.of_bigint b x in
    check bigint_testable "CRT roundtrip" x (Rns.to_bigint b r)
  done

let test_rns_centered () =
  let b = Lazy.force small_basis in
  (* -5 should come back as -5 after centering. *)
  let r = Rns.of_int b (-5) in
  check bigint_testable "centered small negative" (bi (-5)) (Rns.to_bigint_centered b r)

let test_rns_homomorphic_add () =
  let b = Lazy.force small_basis in
  let rng = Rng.create 124L in
  let primes = Rns.primes b in
  for _ = 1 to 50 do
    let x = Bigint.random rng (Rns.modulus b) and y = Bigint.random rng (Rns.modulus b) in
    let rx = Rns.of_bigint b x and ry = Rns.of_bigint b y in
    let rsum = Array.mapi (fun i v -> Modarith.add primes.(i) v ry.(i)) rx in
    check bigint_testable "residue add = bigint add mod q"
      (Bigint.erem (Bigint.add x y) (Rns.modulus b))
      (Rns.to_bigint b rsum)
  done

let test_rns_drop_last () =
  let b = Lazy.force small_basis in
  let b' = Rns.drop_last b in
  checki "one fewer prime" 3 (Rns.level_count b');
  check bigint_testable "modulus divides"
    Bigint.zero
    (Bigint.rem (Rns.modulus b) (Rns.modulus b'));
  (* Modulus switching must not re-run NTT planning: every surviving
     limb's plan (and prime entry) is physically shared with the
     parent's, not an equal recomputation. *)
  let plans = Rns.plans b and plans' = Rns.plans b' in
  for i = 0 to Rns.level_count b' - 1 do
    checkb (Printf.sprintf "plan %d physically shared" i) true (plans'.(i) == plans.(i));
    checki (Printf.sprintf "prime %d preserved" i) (Rns.primes b).(i) (Rns.primes b').(i)
  done;
  (* And the cheap fields must match a from-scratch basis exactly. *)
  let fresh =
    Rns.make
      ~primes:(Array.to_list (Array.sub (Rns.primes b) 0 (Rns.level_count b')))
      ~degree:(Rns.degree b) ()
  in
  check bigint_testable "modulus matches a fresh basis" (Rns.modulus fresh) (Rns.modulus b');
  let rng = Rng.create 321L in
  for _ = 1 to 50 do
    let x = Bigint.random rng (Rns.modulus b') in
    check bigint_testable "CRT reconstruction matches a fresh basis"
      (Rns.to_bigint fresh (Rns.of_bigint fresh x))
      (Rns.to_bigint b' (Rns.of_bigint b' x))
  done

let test_rq_monomial_mul () =
  let b = Lazy.force small_basis in
  (* x^a * x^b = x^(a+b): the core encoding trick of Mycelium (§4.1). *)
  let xa = Rq.monomial b ~coeff:1 ~exponent:20 in
  let xb = Rq.monomial b ~coeff:1 ~exponent:30 in
  let prod = Rq.mul xa xb in
  checkb "x^20 * x^30 = x^50" true (Rq.equal prod (Rq.monomial b ~coeff:1 ~exponent:50))

let test_rq_bin_aggregation () =
  let b = Lazy.force small_basis in
  (* Enc(x^0 + x^1) + Enc(x^0 + x^2) = 2x^0 + x^1 + x^2 as in §4.1. *)
  let s1 = Rq.add (Rq.monomial b ~coeff:1 ~exponent:0) (Rq.monomial b ~coeff:1 ~exponent:1) in
  let s2 = Rq.add (Rq.monomial b ~coeff:1 ~exponent:0) (Rq.monomial b ~coeff:1 ~exponent:2) in
  let sum = Rq.add s1 s2 in
  let coeffs = Rq.to_bigint_coeffs sum in
  checki "bin 0 has 2" 2 (Bigint.to_int coeffs.(0));
  checki "bin 1 has 1" 1 (Bigint.to_int coeffs.(1));
  checki "bin 2 has 1" 1 (Bigint.to_int coeffs.(2));
  checki "bin 3 has 0" 0 (Bigint.to_int coeffs.(3))

let test_rq_negacyclic () =
  let b = Lazy.force small_basis in
  let n = Rns.degree b in
  (* Exponent overflow wraps with sign flip: x^(N-1) * x^2 = -x^1. *)
  let prod = Rq.mul (Rq.monomial b ~coeff:1 ~exponent:(n - 1)) (Rq.monomial b ~coeff:1 ~exponent:2) in
  checkb "wraps negacyclically" true (Rq.equal prod (Rq.monomial b ~coeff:(-1) ~exponent:1))

let test_rq_ring_ops () =
  let b = Lazy.force small_basis in
  let rng = Rng.create 300L in
  for _ = 1 to 20 do
    let x = Rq.random_uniform b rng and y = Rq.random_uniform b rng and z = Rq.random_uniform b rng in
    checkb "add commutative" true (Rq.equal (Rq.add x y) (Rq.add y x));
    checkb "mul commutative" true (Rq.equal (Rq.mul x y) (Rq.mul y x));
    checkb "distributive" true
      (Rq.equal (Rq.mul x (Rq.add y z)) (Rq.add (Rq.mul x y) (Rq.mul x z)));
    checkb "sub inverse of add" true (Rq.equal x (Rq.sub (Rq.add x y) y));
    checkb "neg" true (Rq.equal (Rq.zero b) (Rq.add x (Rq.neg x)));
    checkb "one is identity" true (Rq.equal x (Rq.mul x (Rq.one b)))
  done

let test_rq_scalar () =
  let b = Lazy.force small_basis in
  let x = Rq.monomial b ~coeff:1 ~exponent:5 in
  let three_x = Rq.mul_scalar x 3 in
  checkb "scalar mult" true (Rq.equal three_x (Rq.monomial b ~coeff:3 ~exponent:5));
  let minus_x = Rq.mul_scalar x (-1) in
  checkb "scalar -1 = neg" true (Rq.equal minus_x (Rq.neg x))

let test_rq_equal_across_representations () =
  let b = Lazy.force small_basis in
  let rng = Rng.create 302L in
  for _ = 1 to 20 do
    (* The same value in both domains: equal must see through the
       representation tag (regression for the polymorphic-= version,
       which compared Eval rows against Coeff rows). *)
    let rows = Rq.residues (Rq.random_uniform b rng) in
    let x = Rq.of_residues b rows in
    let y = Rq.of_residues b rows in
    Rq.force_eval x;
    checkb "repr moved" true (Rq.repr_of x = Rq.Eval && Rq.repr_of y = Rq.Coeff);
    checkb "equal (eval x) (coeff x)" true (Rq.equal x y);
    checkb "equal (coeff x) (eval x)" true (Rq.equal y x);
    let z = Rq.add (Rq.of_residues b rows) (Rq.one b) in
    checkb "unequal values stay unequal across reprs" false (Rq.equal x z)
  done

let test_rq_sampling_ranges () =
  let b = Lazy.force small_basis in
  let rng = Rng.create 301L in
  let t = Rq.sample_ternary b rng in
  Array.iter
    (fun c ->
      let v = Bigint.to_int c in
      checkb "ternary in {-1,0,1}" true (v >= -1 && v <= 1))
    (Rq.to_bigint_coeffs t);
  let e = Rq.sample_cbd b ~eta:3 rng in
  Array.iter
    (fun c ->
      let v = Bigint.to_int c in
      checkb "cbd in [-eta, eta]" true (v >= -3 && v <= 3))
    (Rq.to_bigint_coeffs e)

let () =
  Alcotest.run "mycelium-math"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "sampling without replacement" `Quick test_rng_sample_without_replacement;
          Alcotest.test_case "laplace moments" `Slow test_rng_laplace_moments;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "geometric mean" `Slow test_rng_geometric;
          Alcotest.test_case "bernoulli" `Slow test_rng_bernoulli;
        ] );
      ( "hex-stats",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex known vectors" `Quick test_hex_known;
          Alcotest.test_case "hex invalid input" `Quick test_hex_invalid;
          Alcotest.test_case "stats basic" `Quick test_stats_basic;
          Alcotest.test_case "stats running" `Quick test_stats_running;
        ] );
      ( "modarith",
        [
          Alcotest.test_case "basic ops" `Quick test_modarith_basic;
          Alcotest.test_case "fermat little theorem" `Quick test_modarith_fermat;
          Alcotest.test_case "inverse" `Quick test_modarith_inv;
          Alcotest.test_case "primality" `Quick test_modarith_is_prime;
          Alcotest.test_case "primitive roots" `Quick test_modarith_primitive_root;
          Alcotest.test_case "roots of unity" `Quick test_modarith_root_of_unity;
          Alcotest.test_case "to_signed" `Quick test_modarith_to_signed;
        ] );
      ( "ntt",
        [
          Alcotest.test_case "find NTT primes" `Quick test_ntt_find_primes;
          Alcotest.test_case "roundtrip" `Quick test_ntt_roundtrip;
          Alcotest.test_case "seeded roundtrip, all degrees" `Quick
            test_ntt_seeded_roundtrip_all_degrees;
          Alcotest.test_case "matches naive convolution" `Quick test_ntt_vs_naive;
          Alcotest.test_case "negacyclic wraparound" `Quick test_ntt_negacyclic_wraparound;
          Alcotest.test_case "monomial exponent addition" `Quick test_ntt_monomial_exponent_addition;
          Alcotest.test_case "linearity" `Quick test_ntt_linearity;
        ] );
      ( "bigint",
        [
          Alcotest.test_case "of/to int" `Quick test_bigint_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_bigint_string_roundtrip;
          Alcotest.test_case "arith known values" `Quick test_bigint_arith_known;
          Alcotest.test_case "divmod known values" `Quick test_bigint_divmod_known;
          prop_bigint_matches_int;
          prop_bigint_divmod_int;
          prop_bigint_divmod_invariant;
          prop_bigint_ring_axioms;
          prop_bigint_shift;
          prop_bigint_bytes_roundtrip;
          prop_bigint_rem_int;
          Alcotest.test_case "seeded divmod/mul identities" `Quick
            test_bigint_seeded_divmod_mul_identities;
          Alcotest.test_case "mod_pow" `Quick test_bigint_mod_pow;
          Alcotest.test_case "mod_inv" `Quick test_bigint_mod_inv;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "primality" `Quick test_bigint_primality;
          Alcotest.test_case "random prime" `Slow test_bigint_random_prime;
          Alcotest.test_case "num_bits" `Quick test_bigint_num_bits;
        ] );
      ( "rns-rq",
        [
          Alcotest.test_case "modulus product" `Quick test_rns_modulus;
          Alcotest.test_case "CRT roundtrip" `Quick test_rns_roundtrip;
          Alcotest.test_case "centered reconstruction" `Quick test_rns_centered;
          Alcotest.test_case "homomorphic add" `Quick test_rns_homomorphic_add;
          Alcotest.test_case "drop_last" `Quick test_rns_drop_last;
          Alcotest.test_case "monomial multiplication" `Quick test_rq_monomial_mul;
          Alcotest.test_case "bin aggregation (§4.1)" `Quick test_rq_bin_aggregation;
          Alcotest.test_case "negacyclic exponent wrap" `Quick test_rq_negacyclic;
          Alcotest.test_case "ring axioms" `Quick test_rq_ring_ops;
          Alcotest.test_case "scalar multiplication" `Quick test_rq_scalar;
          Alcotest.test_case "equal across representations" `Quick
            test_rq_equal_across_representations;
          Alcotest.test_case "sampler ranges" `Quick test_rq_sampling_ranges;
        ] );
    ]
