(* mycelium-analyze suite (DESIGN.md §15): every interprocedural rule
   is proven live against a compiled firing fixture — exact rule ids
   and line numbers asserted out of the report — and proven
   silenceable against a suppressed twin, so a regression in the
   dataflow fixpoints, the policy, or the shared suppression machinery
   turns the tree red.

   The fixtures are a real bytecode library under
   lint_fixtures/analyze/ (the analyzer consumes .cmt files, so unlike
   the parse-only syntactic fixtures they must compile); the dune rule
   deps on its .cma so the cmts exist before the suite runs.  The
   suite runs from _build/default/test, so the build tree sits at
   lint_fixtures/analyze/.analyze_fixtures.objs/byte and the copied
   sources (for suppression comments) resolve from source root "..".

   The cache cells exercise the persistent summary cache end to end:
   cold run summarizes everything, warm run hits on every module and
   reports identical violations, and flipping one cmt's digest
   re-summarizes exactly that module. *)

module A = Mycelium_lint.Analyze
module L = Mycelium_lint.Lint
module Json = Mycelium_obs.Obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sites = Alcotest.(list (pair string int))
(* (rule, line) pairs in report order *)

let site_list vs = List.map (fun (v : L.violation) -> (v.rule, v.line)) vs
let only file vs = List.filter (fun (v : L.violation) -> Filename.basename v.file = file) vs

let fixture_root = "lint_fixtures/analyze/.analyze_fixtures.objs/byte"
let run () = A.run ~source_root:".." ~roots:[ fixture_root ] ()

(* One run shared by the rule cells: the analyzer is deterministic and
   the fixtures are fixed, so recomputing per cell would only slow the
   suite down. *)
let result = lazy (run ())

(* ------------------------------------------------------------------ *)
(* Rules fire, with exact positions                                    *)
(* ------------------------------------------------------------------ *)

let test_dp_release_fires () =
  let r = (Lazy.force result).A.report in
  Alcotest.check sites "secret reaches the sink at the print"
    [ ("dp-release", 14) ]
    (site_list (only "fire_dp_release.ml" r.L.violations));
  (* the clip+noise twin in the same file stays silent: exactly one
     violation in the file proves the sanitizer modelling *)
  checki "released() is silent" 1
    (List.length (only "fire_dp_release.ml" (r.L.violations @ r.L.suppressed)))

let test_budget_order_fires () =
  let r = (Lazy.force result).A.report in
  Alcotest.check sites "crypto before the charge, at the make_ctx"
    [ ("budget-order", 12) ]
    (site_list (only "fire_budget_order.ml" r.L.violations));
  checki "serve_entry_charged is silent" 1
    (List.length (only "fire_budget_order.ml" (r.L.violations @ r.L.suppressed)))

let test_epsilon_flow_fires () =
  let r = (Lazy.force result).A.report in
  Alcotest.check sites "attributed at the float literal's line"
    [ ("epsilon-flow", 10) ]
    (site_list (only "fire_epsilon_flow.ml" r.L.violations));
  checki "charge_parsed is silent" 1
    (List.length (only "fire_epsilon_flow.ml" (r.L.violations @ r.L.suppressed)))

let test_pool_purity_fires () =
  let r = (Lazy.force result).A.report in
  Alcotest.check sites "at the racing write inside the closure"
    [ ("pool-purity", 15) ]
    (site_list (only "fire_pool_purity.ml" r.L.violations));
  (* disjoint-by-index and sequential-merge twins stay silent *)
  checki "disjoint/sum are silent" 1
    (List.length (only "fire_pool_purity.ml" (r.L.violations @ r.L.suppressed)))

(* ------------------------------------------------------------------ *)
(* Suppression machinery covers analyzer rules                         *)
(* ------------------------------------------------------------------ *)

let test_suppressed_twins () =
  let r = (Lazy.force result).A.report in
  List.iter
    (fun (file, rule, line) ->
      Alcotest.check sites
        (rule ^ " suppressed at its exact site")
        [ (rule, line) ]
        (site_list (only file r.L.suppressed));
      checki (rule ^ " has no unsuppressed leftovers") 0
        (List.length (only file r.L.violations)))
    [
      ("suppressed_dp_release.ml", "dp-release", 13);
      ("suppressed_budget_order.ml", "budget-order", 10);
      ("suppressed_epsilon_flow.ml", "epsilon-flow", 7);
      ("suppressed_pool_purity.ml", "pool-purity", 12);
    ]

let test_rule_table () =
  let r = (Lazy.force result).A.report in
  List.iter
    (fun (rule, fired, suppressed) ->
      checki (rule ^ " fired") 1 fired;
      checki (rule ^ " suppressed") 1 suppressed)
    (A.rule_table r)

(* ------------------------------------------------------------------ *)
(* JSON report shape                                                   *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Json.Obj kvs -> List.assoc name kvs
  | _ -> Alcotest.fail "expected a JSON object"

let test_json_report () =
  let res = Lazy.force result in
  let j = A.json_of_result res in
  checkb "tool tag" true (field "tool" j = Json.Str "mycelium-analyze");
  checkb "violation count" true
    (field "violation_count" j = Json.Int (List.length res.A.report.L.violations));
  (match field "rules" j with
  | Json.Obj rules ->
    checki "all four rules tabulated" 4 (List.length rules);
    List.iter
      (fun (_, cell) ->
        checkb "one violation per rule" true (field "violations" cell = Json.Int 1))
      rules
  | _ -> Alcotest.fail "rules is an object");
  (* the JSON survives its own printer *)
  checkb "serializes" true (String.length (Json.to_string j) > 0)

(* ------------------------------------------------------------------ *)
(* Summary cache: warm hits, digest invalidation                       *)
(* ------------------------------------------------------------------ *)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

(* A private copy of the fixture cmts, so the digest-flip cell can
   scribble on one without perturbing dune's build tree. *)
let with_cmt_copy f =
  let dir = Filename.temp_file "mycelium_analyze" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let cmts =
        Sys.readdir fixture_root |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".cmt")
        |> List.sort String.compare
      in
      List.iter
        (fun n ->
          write_bytes (Filename.concat dir n) (read_bytes (Filename.concat fixture_root n)))
        cmts;
      f dir (List.length cmts))

let test_cache_warm_and_invalidation () =
  with_cmt_copy (fun dir n ->
      let cache = Filename.concat dir "summaries.cache" in
      let run () = A.run ~cache ~source_root:".." ~roots:[ dir ] () in
      let cold = run () in
      checki "cold run summarizes every module" n cold.A.stats.A.sa_summarized;
      checki "cold run has no hits" 0 cold.A.stats.A.sa_cache_hits;
      let warm = run () in
      checki "warm run hits every module" n warm.A.stats.A.sa_cache_hits;
      checki "warm run summarizes nothing" 0 warm.A.stats.A.sa_summarized;
      Alcotest.check sites "warm violations identical"
        (site_list cold.A.report.L.violations)
        (site_list warm.A.report.L.violations);
      Alcotest.check sites "warm suppressions identical"
        (site_list cold.A.report.L.suppressed)
        (site_list warm.A.report.L.suppressed);
      (* flip one cmt's digest: a trailing byte changes Digest.file but
         not what Cmt_format.read_cmt parses *)
      let victim = Filename.concat dir "analyze_fixtures__Fire_pool_purity.cmt" in
      checkb "victim exists" true (Sys.file_exists victim);
      write_bytes victim (read_bytes victim ^ "\x00");
      let stale = run () in
      checki "exactly the flipped module re-summarizes" 1 stale.A.stats.A.sa_summarized;
      checki "the rest still hit" (n - 1) stale.A.stats.A.sa_cache_hits;
      Alcotest.check sites "violations unchanged after re-summary"
        (site_list cold.A.report.L.violations)
        (site_list stale.A.report.L.violations))

let () =
  Alcotest.run "mycelium-analyze"
    [
      ( "rules-fire",
        [
          Alcotest.test_case "dp-release" `Quick test_dp_release_fires;
          Alcotest.test_case "budget-order" `Quick test_budget_order_fires;
          Alcotest.test_case "epsilon-flow" `Quick test_epsilon_flow_fires;
          Alcotest.test_case "pool-purity" `Quick test_pool_purity_fires;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "suppressed-twins" `Quick test_suppressed_twins;
          Alcotest.test_case "rule-table" `Quick test_rule_table;
        ] );
      ("json", [ Alcotest.test_case "report-shape" `Quick test_json_report ]);
      ( "summary-cache",
        [ Alcotest.test_case "warm-and-invalidation" `Quick test_cache_warm_and_invalidation ] );
    ]
