(* Tests for mycelium_secrets: Shamir sharing, Feldman commitments,
   verifiable secret redistribution, and threshold BGV decryption. *)

module Rng = Mycelium_util.Rng
module Modarith = Mycelium_math.Modarith
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq
module Shamir = Mycelium_secrets.Shamir
module Feldman = Mycelium_secrets.Feldman
module Vsr = Mycelium_secrets.Vsr
module Threshold = Mycelium_secrets.Threshold
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext
module Bgv = Mycelium_bgv.Bgv

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let field = 1073479681 (* an NTT-friendly prime below 2^30 *)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Shamir                                                              *)
(* ------------------------------------------------------------------ *)

let test_shamir_reconstruct_exact_threshold () =
  let rng = Rng.create 1L in
  let secret = 123456789 in
  let shares = Shamir.share_secret ~p:field rng ~threshold:3 ~parties:10 secret in
  (* Any 4 of the 10 shares reconstruct. *)
  let subsets = [ [ 0; 1; 2; 3 ]; [ 6; 7; 8; 9 ]; [ 0; 4; 5; 9 ]; [ 2; 3; 5; 7 ] ] in
  List.iter
    (fun idxs ->
      let subset = List.map (fun i -> shares.(i)) idxs in
      checki "reconstructs" secret (Shamir.reconstruct ~p:field subset))
    subsets

let test_shamir_too_few_shares_wrong () =
  let rng = Rng.create 2L in
  let secret = 42 in
  let shares = Shamir.share_secret ~p:field rng ~threshold:3 ~parties:10 secret in
  (* 3 shares interpolate a degree-2 polynomial: almost surely wrong. *)
  let v = Shamir.reconstruct ~p:field [ shares.(0); shares.(1); shares.(2) ] in
  checkb "three shares don't reconstruct" true (v <> secret)

let test_shamir_shares_look_random () =
  (* The same secret shared twice gives unrelated share values. *)
  let rng = Rng.create 3L in
  let s1 = Shamir.share_secret ~p:field rng ~threshold:2 ~parties:5 7 in
  let s2 = Shamir.share_secret ~p:field rng ~threshold:2 ~parties:5 7 in
  checkb "different randomness" true
    (Array.exists2 (fun a b -> a.Shamir.y <> b.Shamir.y) s1 s2)

let test_shamir_duplicate_x_rejected () =
  let rng = Rng.create 4L in
  let shares = Shamir.share_secret ~p:field rng ~threshold:1 ~parties:3 9 in
  Alcotest.check_raises "duplicate x" (Invalid_argument "Shamir.reconstruct: duplicate share x")
    (fun () -> ignore (Shamir.reconstruct ~p:field [ shares.(0); shares.(0) ]))

let test_shamir_any_subset_reconstructs () =
  (* Seeded randomized sweep of the §5 claim verbatim: ANY threshold+1
     of the shares reconstruct — random subsets, not a fixed prefix.
     The fixed Rng seed makes every sweep reproducible. *)
  let rng = Rng.create 4321L in
  for _ = 1 to 50 do
    let threshold = 1 + Rng.int rng 5 in
    let parties = threshold + 1 + Rng.int rng 6 in
    let secret = Rng.int rng field in
    let shares = Shamir.share_secret ~p:field rng ~threshold ~parties secret in
    let idx = Rng.sample_without_replacement rng (threshold + 1) parties in
    let subset = List.map (fun i -> shares.(i)) (Array.to_list idx) in
    checki "any t+1 subset reconstructs" secret (Shamir.reconstruct ~p:field subset)
  done

let test_shamir_validation () =
  let rng = Rng.create 5L in
  Alcotest.check_raises "threshold >= parties"
    (Invalid_argument "Shamir: too few parties for threshold") (fun () ->
      ignore (Shamir.share_secret ~p:field rng ~threshold:5 ~parties:5 1))

let prop_shamir_roundtrip =
  qtest "share/reconstruct roundtrip"
    QCheck.(triple (int_range 0 1000000) (int_range 0 5) (int_range 1 6))
    (fun (secret, threshold, extra) ->
      let parties = threshold + extra in
      let rng = Rng.create (Int64.of_int (secret + (parties * 131))) in
      let shares = Shamir.share_secret ~p:field rng ~threshold ~parties secret in
      let subset = Array.to_list (Array.sub shares 0 (threshold + 1)) in
      Shamir.reconstruct ~p:field subset = secret)

let test_shamir_linearity () =
  (* Share-wise addition shares the sum: the property threshold
     decryption relies on. *)
  let rng = Rng.create 6L in
  let a = 1111 and b = 2222 in
  let sa = Shamir.share_secret ~p:field rng ~threshold:2 ~parties:5 a in
  let sb = Shamir.share_secret ~p:field rng ~threshold:2 ~parties:5 b in
  let sum =
    Array.init 5 (fun i -> { Shamir.x = i + 1; y = Modarith.add field sa.(i).Shamir.y sb.(i).Shamir.y })
  in
  checki "sum of shares shares the sum" (a + b)
    (Shamir.reconstruct ~p:field [ sum.(0); sum.(2); sum.(4) ])

let small_basis = lazy (Rns.standard ~degree:32 ~prime_bits:28 ~levels:3 ())

let test_shamir_rq_roundtrip () =
  let basis = Lazy.force small_basis in
  let rng = Rng.create 7L in
  let v = Rq.random_uniform basis rng in
  let shares = Shamir.share_rq rng ~threshold:3 ~parties:8 v in
  checki "eight shares" 8 (Array.length shares);
  let subset = [ shares.(1); shares.(3); shares.(4); shares.(7) ] in
  checkb "reconstructs ring element" true (Rq.equal v (Shamir.reconstruct_rq basis subset));
  (* All 8 also reconstruct (degree < 8). *)
  checkb "full set reconstructs" true
    (Rq.equal v (Shamir.reconstruct_rq basis (Array.to_list shares)))

let test_shamir_rq_any_subset_reconstructs () =
  let basis = Lazy.force small_basis in
  let rng = Rng.create 4322L in
  for _ = 1 to 10 do
    let threshold = 1 + Rng.int rng 3 in
    let parties = threshold + 1 + Rng.int rng 4 in
    let v = Rq.random_uniform basis rng in
    let shares = Shamir.share_rq rng ~threshold ~parties v in
    let idx = Rng.sample_without_replacement rng (threshold + 1) parties in
    let subset = List.map (fun i -> shares.(i)) (Array.to_list idx) in
    checkb "any t+1 ring subset reconstructs" true
      (Rq.equal v (Shamir.reconstruct_rq basis subset))
  done

let test_shamir_rq_share_not_secret () =
  let basis = Lazy.force small_basis in
  let rng = Rng.create 8L in
  let v = Rq.random_uniform basis rng in
  let shares = Shamir.share_rq rng ~threshold:3 ~parties:8 v in
  checkb "single share differs from secret" true (not (Rq.equal v shares.(0).Shamir.value))

(* ------------------------------------------------------------------ *)
(* Feldman                                                             *)
(* ------------------------------------------------------------------ *)

(* A small prime keeps the subgroup search fast in tests. *)
let feldman_field = 7681
let feldman_group = lazy (Feldman.group_for_prime (Rng.create 100L) feldman_field)

let test_feldman_group_structure () =
  let g = Lazy.force feldman_group in
  let module B = Mycelium_math.Bigint in
  (* g has order exactly p: g^p = 1 and g <> 1. *)
  checkb "g <> 1" false (B.equal g.Feldman.g B.one);
  checkb "g^p = 1" true
    (B.equal (B.mod_pow g.Feldman.g (B.of_int feldman_field) g.Feldman.big_p) B.one)

let test_feldman_valid_shares_verify () =
  let g = Lazy.force feldman_group in
  let rng = Rng.create 101L in
  let shares, coeffs = Shamir.share_with_poly ~p:feldman_field rng ~threshold:3 ~parties:7 4242 in
  let c = Feldman.commit g coeffs in
  Array.iter (fun s -> checkb "verifies" true (Feldman.verify_share g c s)) shares

let test_feldman_bad_share_rejected () =
  let g = Lazy.force feldman_group in
  let rng = Rng.create 102L in
  let shares, coeffs = Shamir.share_with_poly ~p:feldman_field rng ~threshold:2 ~parties:5 777 in
  let c = Feldman.commit g coeffs in
  let bad = { shares.(2) with Shamir.y = Modarith.add feldman_field shares.(2).Shamir.y 1 } in
  checkb "tampered share rejected" false (Feldman.verify_share g c bad);
  let misplaced = { shares.(2) with Shamir.x = 4 } in
  checkb "misplaced share rejected" false (Feldman.verify_share g c misplaced)

let test_feldman_any_verified_subset_reconstructs () =
  (* Every share verifies against the published commitment, and any
     random threshold+1 of them reconstruct the committed secret. *)
  let g = Lazy.force feldman_group in
  let rng = Rng.create 4323L in
  for _ = 1 to 25 do
    let threshold = 1 + Rng.int rng 3 in
    let parties = threshold + 1 + Rng.int rng 5 in
    let secret = Rng.int rng feldman_field in
    let shares, coeffs =
      Shamir.share_with_poly ~p:feldman_field rng ~threshold ~parties secret
    in
    let c = Feldman.commit g coeffs in
    Array.iter (fun s -> checkb "share verifies" true (Feldman.verify_share g c s)) shares;
    let idx = Rng.sample_without_replacement rng (threshold + 1) parties in
    let subset = List.map (fun i -> shares.(i)) (Array.to_list idx) in
    checki "any verified t+1 subset reconstructs" secret
      (Shamir.reconstruct ~p:feldman_field subset)
  done

let test_feldman_commitment_binds_secret () =
  let g = Lazy.force feldman_group in
  let rng = Rng.create 103L in
  let _, coeffs = Shamir.share_with_poly ~p:feldman_field rng ~threshold:2 ~parties:5 999 in
  let c = Feldman.commit g coeffs in
  let module B = Mycelium_math.Bigint in
  checkb "C_0 = g^secret" true
    (B.equal (Feldman.commitment_to_secret c) (B.mod_pow g.Feldman.g (B.of_int 999) g.Feldman.big_p))

(* ------------------------------------------------------------------ *)
(* VSR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vsr_scalar_redistribution () =
  let g = Lazy.force feldman_group in
  let rng = Rng.create 200L in
  let secret = 31337 mod feldman_field in
  let old_t = 2 and new_t = 3 in
  let old_shares, old_coeffs =
    Shamir.share_with_poly ~p:feldman_field rng ~threshold:old_t ~parties:6 secret
  in
  let old_commitment = Feldman.commit g old_coeffs in
  (* Subset U of t+1 old members re-share. *)
  let dealers = [ old_shares.(0); old_shares.(2); old_shares.(5) ] in
  let dealings = List.map (Vsr.deal ~group:g rng ~new_threshold:new_t ~new_parties:9) dealers in
  (* Every dealing verifies against the old commitment. *)
  List.iter
    (fun d -> checkb "dealing verifies" true (Vsr.verify_dealing ~group:g ~old_commitment d))
    dealings;
  (* New members compute their shares; any new_t+1 reconstruct. *)
  let new_shares = List.init 9 (fun j -> Vsr.finish ~p:feldman_field ~dealings (j + 1)) in
  let subset = [ List.nth new_shares 0; List.nth new_shares 3; List.nth new_shares 5; List.nth new_shares 8 ] in
  checki "redistributed secret intact" secret (Shamir.reconstruct ~p:feldman_field subset);
  (* And the published new commitment matches the new shares. *)
  let nc = Vsr.new_commitment ~group:g ~dealings in
  List.iter
    (fun s -> checkb "new share verifies against new commitment" true (Feldman.verify_share g nc s))
    new_shares;
  let module B = Mycelium_math.Bigint in
  checkb "new commitment binds same secret" true
    (B.equal (Feldman.commitment_to_secret nc) (Feldman.commitment_to_secret old_commitment))

let test_vsr_lying_dealer_detected () =
  let g = Lazy.force feldman_group in
  let rng = Rng.create 201L in
  let old_shares, old_coeffs =
    Shamir.share_with_poly ~p:feldman_field rng ~threshold:2 ~parties:5 5555
  in
  let old_commitment = Feldman.commit g old_coeffs in
  (* Dealer 2 re-shares a *different* value than its real share. *)
  let forged = { old_shares.(1) with Shamir.y = 1 } in
  let dealing = Vsr.deal ~group:g rng ~new_threshold:2 ~new_parties:5 forged in
  checkb "constant-term check catches it" false
    (Vsr.verify_dealing ~group:g ~old_commitment dealing);
  (* But the sub-shares are internally consistent, so the per-member
     check alone would pass — both checks are needed. *)
  checkb "sub-share check alone insufficient" true (Vsr.verify_sub_share ~group:g dealing 1)

let test_vsr_tampered_subshare_detected () =
  let g = Lazy.force feldman_group in
  let rng = Rng.create 202L in
  let old_shares, _ = Shamir.share_with_poly ~p:feldman_field rng ~threshold:2 ~parties:5 5555 in
  let dealing = Vsr.deal ~group:g rng ~new_threshold:2 ~new_parties:5 old_shares.(0) in
  let tampered =
    {
      dealing with
      Vsr.sub_shares =
        Array.mapi
          (fun i s -> if i = 2 then { s with Shamir.y = Modarith.add feldman_field s.Shamir.y 1 } else s)
          dealing.Vsr.sub_shares;
    }
  in
  checkb "member 3 detects tampering" false (Vsr.verify_sub_share ~group:g tampered 3);
  checkb "member 1 unaffected" true (Vsr.verify_sub_share ~group:g tampered 1)

let test_vsr_old_and_new_cannot_mix () =
  (* Shares from different sharings interpolate garbage: members of two
     committees cannot pool shares (the §4.2 property). *)
  let secret = 424242 in
  (* Mixing 2 shares of one sharing with 1 of another (same x-coords)
     must not reconstruct. *)
  let rng2 = Rng.create 204L in
  let s1 = Shamir.share_secret ~p:field rng2 ~threshold:2 ~parties:5 secret in
  let s2 = Shamir.share_secret ~p:field rng2 ~threshold:2 ~parties:5 secret in
  let mixed = [ s1.(0); s1.(1); s2.(2) ] in
  checkb "mixed-committee shares do not reconstruct" true
    (Shamir.reconstruct ~p:field mixed <> secret)

let test_vsr_rq_redistribution () =
  let basis = Lazy.force small_basis in
  let rng = Rng.create 205L in
  let secret = Rq.random_uniform basis rng in
  let old_shares = Shamir.share_rq rng ~threshold:2 ~parties:6 secret in
  (* Hand off via any 3 old members to a bigger committee. *)
  let new_shares =
    Vsr.redistribute_rq rng ~new_threshold:4 ~new_parties:10
      [ old_shares.(0); old_shares.(3); old_shares.(5) ]
  in
  checki "ten new shares" 10 (Array.length new_shares);
  let subset = Array.to_list (Array.sub new_shares 2 5) in
  checkb "redistributed ring secret intact" true
    (Rq.equal secret (Shamir.reconstruct_rq basis subset));
  (* New shares are re-randomized: differ from old ones at same x. *)
  checkb "new share differs from old" true
    (not (Rq.equal old_shares.(0).Shamir.value new_shares.(0).Shamir.value))

let test_vsr_repeated_handoffs () =
  (* Committee rotation over several rounds (the system's steady state):
     the key survives every hand-off. *)
  let basis = Lazy.force small_basis in
  let rng = Rng.create 206L in
  let secret = Rq.random_uniform basis rng in
  let shares = ref (Array.to_list (Shamir.share_rq rng ~threshold:3 ~parties:8 secret)) in
  for _round = 1 to 4 do
    let dealers =
      match !shares with a :: b :: c :: d :: _ -> [ a; b; c; d ] | _ -> assert false
    in
    shares := Array.to_list (Vsr.redistribute_rq rng ~new_threshold:3 ~new_parties:8 dealers)
  done;
  let subset = match !shares with a :: b :: c :: d :: _ -> [ a; b; c; d ] | _ -> assert false in
  checkb "secret survives four hand-offs" true (Rq.equal secret (Shamir.reconstruct_rq basis subset))

let test_vsr_batch_weights_deterministic () =
  let basis = Lazy.force small_basis in
  let w1 = Vsr.batch_weights basis ~context:(Bytes.of_string "round-7") in
  let w2 = Vsr.batch_weights basis ~context:(Bytes.of_string "round-7") in
  let w3 = Vsr.batch_weights basis ~context:(Bytes.of_string "round-8") in
  checkb "same context same weights" true (w1 = w2);
  checkb "different context different weights" true (w1 <> w3)

let test_vsr_fold_commutes_with_reconstruction () =
  (* fold_rq is linear, so folding shares then reconstructing scalars
     equals folding the reconstructed secret — the batched VSR check. *)
  let basis = Lazy.force small_basis in
  let rng = Rng.create 207L in
  let secret = Rq.random_uniform basis rng in
  let gamma = Vsr.batch_weights basis ~context:(Bytes.of_string "handoff-1") in
  let shares = Shamir.share_rq rng ~threshold:2 ~parties:5 secret in
  let primes = Rns.primes basis in
  let folded_secret = Vsr.fold_rq basis gamma secret in
  let subset = [ shares.(0); shares.(2); shares.(4) ] in
  let folded_shares =
    List.map (fun s -> (s.Shamir.idx, Vsr.fold_rq basis gamma s.Shamir.value)) subset
  in
  Array.iteri
    (fun pi p ->
      let scalar_shares =
        List.map (fun (x, folded) -> { Shamir.x; y = folded.(pi) }) folded_shares
      in
      checki (Printf.sprintf "prime %d" p) folded_secret.(pi)
        (Shamir.reconstruct ~p scalar_shares))
    primes

(* ------------------------------------------------------------------ *)
(* Threshold decryption                                                *)
(* ------------------------------------------------------------------ *)

let ctx = lazy (Bgv.make_ctx Params.test_small)
let keys = lazy (Bgv.keygen (Lazy.force ctx) (Rng.create 300L))

let test_threshold_decrypt () =
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 301L in
  let shares = Threshold.share_secret_key ctx rng ~threshold:4 ~parties:10 sk in
  let ct = Bgv.encrypt_value ctx rng pk 17 in
  (* Committee members 2,3,5,7,9,10 participate (6 >= t+1 = 5). *)
  let participants = [| 2; 3; 5; 7; 9; 10 |] in
  let partials =
    Array.to_list participants
    |> List.map (fun x -> Threshold.partial_decrypt ctx rng ~participants shares.(x - 1) ct)
  in
  let pt = Threshold.combine ctx ct partials in
  checki "threshold decryption" 1 (Plaintext.coeff pt 17);
  checkb "monomial" true (Plaintext.is_monomial pt = Some (17, 1))

let test_threshold_matches_direct_decrypt () =
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 302L in
  let shares = Threshold.share_secret_key ctx rng ~threshold:2 ~parties:5 sk in
  (* An aggregate: sum of three encrypted values. *)
  let agg =
    Bgv.add
      (Bgv.add (Bgv.encrypt_value ctx rng pk 3) (Bgv.encrypt_value ctx rng pk 3))
      (Bgv.encrypt_value ctx rng pk 9)
  in
  let participants = [| 1; 2; 3 |] in
  let partials =
    [ 1; 2; 3 ] |> List.map (fun x -> Threshold.partial_decrypt ctx rng ~participants shares.(x - 1) agg)
  in
  let pt = Threshold.combine ctx agg partials in
  checkb "matches direct decryption" true (Plaintext.equal pt (Bgv.decrypt ctx sk agg))

let test_threshold_wrong_participant_set_garbles () =
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 303L in
  let shares = Threshold.share_secret_key ctx rng ~threshold:2 ~parties:5 sk in
  let ct = Bgv.encrypt_value ctx rng pk 4 in
  (* Partials computed for set {1,2,3} but member 3 never contributes. *)
  let participants = [| 1; 2; 3 |] in
  let partials =
    [ 1; 2 ] |> List.map (fun x -> Threshold.partial_decrypt ctx rng ~participants shares.(x - 1) ct)
  in
  let pt = Threshold.combine ctx ct partials in
  checkb "missing partial garbles output" false (Plaintext.equal pt (Bgv.decrypt ctx sk ct))

let test_threshold_requires_degree1 () =
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 304L in
  let shares = Threshold.share_secret_key ctx rng ~threshold:2 ~parties:5 sk in
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 1) (Bgv.encrypt_value ctx rng pk 1) in
  Alcotest.check_raises "degree-2 rejected"
    (Invalid_argument "Threshold.partial_decrypt: ciphertext must be relinearized to degree 1")
    (fun () ->
      ignore (Threshold.partial_decrypt ctx rng ~participants:[| 1; 2; 3 |] shares.(0) prod))

let test_threshold_committee_capture () =
  (* Fig 8a's failure mode: threshold+1 malicious members reconstruct
     the key outright. *)
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 305L in
  let shares = Threshold.share_secret_key ctx rng ~threshold:4 ~parties:10 sk in
  let captured = Threshold.reconstruct_secret_key ctx (Array.to_list (Array.sub shares 0 5)) in
  let ct = Bgv.encrypt_value ctx rng pk 13 in
  checkb "captured key decrypts everything" true
    (Plaintext.equal (Bgv.decrypt ctx captured ct) (Bgv.decrypt ctx sk ct))

let test_threshold_decrypt_any_live_subset () =
  (* The §6.3 liveness helper: decryption succeeds from any >= t+1
     live shares (random subsets, fixed seed), takes exactly t+1
     participants, and fails below quorum or on unrelinearized
     input. *)
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 307L in
  let shares = Threshold.share_secret_key ctx rng ~threshold:4 ~parties:10 sk in
  let ct = Bgv.encrypt_value ctx rng pk 23 in
  for _ = 1 to 5 do
    let live_n = 5 + Rng.int rng 6 in
    let idx = Rng.sample_without_replacement rng live_n 10 in
    let live = List.map (fun i -> shares.(i)) (Array.to_list idx) in
    match Threshold.decrypt ctx rng ~threshold:4 ~live ct with
    | Ok (pt, participants) ->
      checki "monomial 23" 1 (Plaintext.coeff pt 23);
      checki "exactly t+1 participate" 5 (Array.length participants)
    | Error e -> Alcotest.fail e
  done;
  (match
     Threshold.decrypt ctx rng ~threshold:4 ~live:(Array.to_list (Array.sub shares 0 4)) ct
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4 shares decrypted with threshold 4");
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 1) (Bgv.encrypt_value ctx rng pk 1) in
  match Threshold.decrypt ctx rng ~threshold:4 ~live:(Array.to_list shares) prod with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "degree-2 ciphertext accepted"

let test_threshold_after_vsr_handoff () =
  (* End-to-end §4.2 lifecycle: genesis shares -> VSR hand-off -> the
     *new* committee threshold-decrypts. *)
  let ctx = Lazy.force ctx in
  let sk, pk = Lazy.force keys in
  let rng = Rng.create 306L in
  let genesis = Threshold.share_secret_key ctx rng ~threshold:3 ~parties:7 sk in
  let second =
    Vsr.redistribute_rq rng ~new_threshold:4 ~new_parties:10
      [ genesis.(0); genesis.(2); genesis.(4); genesis.(6) ]
  in
  let ct = Bgv.encrypt_value ctx rng pk 21 in
  let participants = [| 1; 4; 5; 8; 10 |] in
  let partials =
    Array.to_list participants
    |> List.map (fun x -> Threshold.partial_decrypt ctx rng ~participants second.(x - 1) ct)
  in
  let pt = Threshold.combine ctx ct partials in
  checki "new committee decrypts" 1 (Plaintext.coeff pt 21)

let () =
  Alcotest.run "mycelium-secrets"
    [
      ( "shamir",
        [
          Alcotest.test_case "reconstruct with t+1" `Quick test_shamir_reconstruct_exact_threshold;
          Alcotest.test_case "t shares insufficient" `Quick test_shamir_too_few_shares_wrong;
          Alcotest.test_case "rerandomized" `Quick test_shamir_shares_look_random;
          Alcotest.test_case "duplicate x rejected" `Quick test_shamir_duplicate_x_rejected;
          Alcotest.test_case "validation" `Quick test_shamir_validation;
          prop_shamir_roundtrip;
          Alcotest.test_case "any t+1 subset (seeded sweep)" `Quick
            test_shamir_any_subset_reconstructs;
          Alcotest.test_case "linearity" `Quick test_shamir_linearity;
          Alcotest.test_case "ring-element roundtrip" `Quick test_shamir_rq_roundtrip;
          Alcotest.test_case "any t+1 ring subset (seeded sweep)" `Quick
            test_shamir_rq_any_subset_reconstructs;
          Alcotest.test_case "ring share hides secret" `Quick test_shamir_rq_share_not_secret;
        ] );
      ( "feldman",
        [
          Alcotest.test_case "group structure" `Quick test_feldman_group_structure;
          Alcotest.test_case "valid shares verify" `Quick test_feldman_valid_shares_verify;
          Alcotest.test_case "bad share rejected" `Quick test_feldman_bad_share_rejected;
          Alcotest.test_case "any verified t+1 subset (seeded sweep)" `Quick
            test_feldman_any_verified_subset_reconstructs;
          Alcotest.test_case "commitment binds secret" `Quick test_feldman_commitment_binds_secret;
        ] );
      ( "vsr",
        [
          Alcotest.test_case "scalar redistribution" `Quick test_vsr_scalar_redistribution;
          Alcotest.test_case "lying dealer detected" `Quick test_vsr_lying_dealer_detected;
          Alcotest.test_case "tampered sub-share detected" `Quick test_vsr_tampered_subshare_detected;
          Alcotest.test_case "committees cannot mix shares" `Quick test_vsr_old_and_new_cannot_mix;
          Alcotest.test_case "ring redistribution" `Quick test_vsr_rq_redistribution;
          Alcotest.test_case "repeated hand-offs" `Quick test_vsr_repeated_handoffs;
          Alcotest.test_case "batch weights deterministic" `Quick test_vsr_batch_weights_deterministic;
          Alcotest.test_case "fold commutes with reconstruction" `Quick test_vsr_fold_commutes_with_reconstruction;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "committee decrypts" `Quick test_threshold_decrypt;
          Alcotest.test_case "matches direct decryption" `Quick test_threshold_matches_direct_decrypt;
          Alcotest.test_case "wrong participant set garbles" `Quick test_threshold_wrong_participant_set_garbles;
          Alcotest.test_case "degree-1 required" `Quick test_threshold_requires_degree1;
          Alcotest.test_case "committee capture (Fig 8a)" `Quick test_threshold_committee_capture;
          Alcotest.test_case "any live subset (seeded sweep)" `Quick
            test_threshold_decrypt_any_live_subset;
          Alcotest.test_case "decrypt after VSR hand-off" `Quick test_threshold_after_vsr_handoff;
        ] );
    ]
