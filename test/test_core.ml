(* Tests for mycelium_baseline (plaintext engine, Pregel) and
   mycelium_core (committee lifecycle and the end-to-end encrypted
   query pipeline, checked bin-for-bin against the plaintext oracle). *)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Schema = Mycelium_graph.Schema
module Epidemic = Mycelium_graph.Epidemic
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Corpus = Mycelium_query.Corpus
module Ast = Mycelium_query.Ast
module Params = Mycelium_bgv.Params
module Bgv = Mycelium_bgv.Bgv
module Pregel = Mycelium_baseline.Pregel
module Engine = Mycelium_baseline.Engine
module Committee = Mycelium_core.Committee
module Runtime = Mycelium_core.Runtime
module Contribution = Mycelium_core.Contribution
module Sim = Mycelium_mixnet.Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_graph ?(n = 24) ?(d = 4) ?(seed = 4242L) () =
  let rng = Rng.create seed in
  let g =
    Cg.generate
      { Cg.default_config with Cg.population = n; degree_bound = d; extra_contact_rate = 1.5 }
      rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
  g

let err_to_string = function
  | Runtime.Parse_error m -> "parse: " ^ m
  | Runtime.Analysis_error m -> "analysis: " ^ m
  | Runtime.Infeasible m -> "infeasible: " ^ m
  | Runtime.Budget_exhausted r -> Printf.sprintf "budget exhausted (%.2f left)" r
  | Runtime.Pipeline_error m -> "pipeline: " ^ m

(* ------------------------------------------------------------------ *)
(* Pregel                                                              *)
(* ------------------------------------------------------------------ *)

let test_pregel_bfs () =
  (* Single-source distances as a vertex program. *)
  let g = small_graph () in
  let source = 0 in
  let program (ctx : (int, int) Pregel.vertex_ctx) =
    let best =
      List.fold_left (fun acc m -> min acc (m + 1)) ctx.Pregel.state ctx.Pregel.messages
    in
    let best = if ctx.Pregel.vertex = source then 0 else best in
    if best < ctx.Pregel.state || (ctx.Pregel.superstep = 0 && ctx.Pregel.vertex = source) then
      ctx.Pregel.send_all_neighbors best
    else ctx.Pregel.vote_halt ();
    best
  in
  let states, _ = Pregel.run g ~init:(fun _ -> max_int - 1) ~program ~max_supersteps:50 in
  (* Compare with BFS. *)
  let expected = Hashtbl.create 64 in
  Hashtbl.replace expected source 0;
  List.iter (fun (v, dist) -> Hashtbl.replace expected v dist) (Cg.k_hop g source ~k:100);
  for v = 0 to Cg.population g - 1 do
    match Hashtbl.find_opt expected v with
    | Some dist -> checki (Printf.sprintf "vertex %d" v) dist states.(v)
    | None -> checkb "unreachable stays infinite" true (states.(v) = max_int - 1)
  done

let test_pregel_halting () =
  let g = small_graph ~n:10 () in
  (* Everyone halts immediately: one superstep. *)
  let program (ctx : (unit, unit) Pregel.vertex_ctx) =
    ctx.Pregel.vote_halt ();
    ()
  in
  let _, steps = Pregel.run g ~init:(fun _ -> ()) ~program ~max_supersteps:50 in
  checki "one superstep" 1 steps

let test_pregel_send_checks_neighbors () =
  let g = small_graph ~n:10 () in
  let program (ctx : (unit, unit) Pregel.vertex_ctx) =
    if ctx.Pregel.vertex = 0 && ctx.Pregel.superstep = 0 then begin
      (* Find a non-neighbor. *)
      let neigh = List.map fst (Cg.neighbors g 0) in
      let non_neighbor =
        let rec go i = if i <> 0 && not (List.mem i neigh) then i else go (i + 1) in
        go 1
      in
      ctx.Pregel.send non_neighbor ()
    end;
    ctx.Pregel.vote_halt ();
    ()
  in
  Alcotest.check_raises "non-neighbor send rejected"
    (Invalid_argument "Pregel: send to non-neighbor") (fun () ->
      ignore (Pregel.run g ~init:(fun _ -> ()) ~program ~max_supersteps:2))

(* ------------------------------------------------------------------ *)
(* Baseline engine                                                     *)
(* ------------------------------------------------------------------ *)

let test_flooded_matches_direct () =
  let g = small_graph () in
  List.iter
    (fun id ->
      let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find id).Corpus.query in
      let direct = Engine.histogram info g in
      let flooded, supersteps = Engine.run_flooded info g in
      checkb (id ^ " flooded = direct") true (direct = flooded);
      checki (id ^ " 2k supersteps") (2 * info.Analysis.query.Ast.hops) supersteps)
    [ "Q1"; "Q2"; "Q4"; "Q5"; "Q6"; "Q7"; "Q8"; "Q9"; "Q10" ]

let test_baseline_q1_counts () =
  (* Sanity: Q1 bins sum to the number of infected origins. *)
  let g = small_graph () in
  let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find "Q1").Corpus.query in
  let bins = Engine.histogram info g in
  let infected =
    Cg.fold_vertices g ~init:0 ~f:(fun acc _ v -> if v.Schema.infected then acc + 1 else acc)
  in
  checki "one contribution per infected origin" infected (Array.fold_left ( + ) 0 bins)

let test_baseline_timer () =
  let g = small_graph () in
  let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find "Q5").Corpus.query in
  checkb "positive time" true (Engine.time_plaintext_query info g >= 0.)

(* ------------------------------------------------------------------ *)
(* Committee                                                           *)
(* ------------------------------------------------------------------ *)

let fast_params = Params.test_small

let test_committee_lifecycle () =
  let ctx = Bgv.make_ctx fast_params in
  let rng = Rng.create 1L in
  let genesis, pk, _relin, _srs =
    Committee.genesis ctx rng ~size:7 ~threshold:3 ~relin_degree:2
  in
  checki "genesis generation" 0 (Committee.generation genesis);
  checkb "genesis members are placeholders" true
    (Array.for_all (fun m -> m = -1) (Committee.members genesis));
  let c1 = Committee.rotate genesis rng ~population:100 in
  checki "generation 1" 1 (Committee.generation c1);
  checkb "members drawn from population" true
    (Array.for_all (fun m -> m >= 0 && m < 100) (Committee.members c1));
  (* The rotated committee can still decrypt. *)
  let ct = Bgv.encrypt_value ctx rng pk 9 in
  let info = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  match Committee.decrypt_and_release c1 rng ctx ~info ~epsilon:Float.infinity ct with
  | Ok release ->
    (* x^9 under Q5's layout: bin 9 of the flat space. *)
    checkb "bin 9 is 1" true (release.Committee.noisy_bins.(9) = 1.)
  | Error e -> Alcotest.fail e

let test_committee_many_rotations () =
  let ctx = Bgv.make_ctx fast_params in
  let rng = Rng.create 2L in
  let genesis, pk, _, _ = Committee.genesis ctx rng ~size:5 ~threshold:2 ~relin_degree:2 in
  let c = ref genesis in
  for _ = 1 to 5 do
    c := Committee.rotate !c rng ~population:50
  done;
  checki "generation 5" 5 (Committee.generation !c);
  let sk = Committee.reconstruct_for_tests !c ctx in
  let ct = Bgv.encrypt_value ctx rng pk 3 in
  checkb "key survives five hand-offs" true
    (Mycelium_bgv.Plaintext.coeff (Bgv.decrypt ctx sk ct) 3 = 1)

let test_committee_liveness_retry () =
  let ctx = Bgv.make_ctx fast_params in
  let rng = Rng.create 4L in
  let genesis, pk, _, _ = Committee.genesis ctx rng ~size:10 ~threshold:4 ~relin_degree:2 in
  let c = Committee.rotate genesis rng ~population:100 in
  let info = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  let ct = Bgv.encrypt_value ctx rng pk 7 in
  (* Heavy churn: decryption still succeeds, via retries. *)
  (match
     Committee.decrypt_and_release ~churn:0.6 ~max_attempts:200 c rng ctx ~info
       ~epsilon:Float.infinity ct
   with
  | Ok r ->
    checkb "eventually decrypts" true (r.Committee.noisy_bins.(7) = 1.);
    checkb "took at least one attempt" true (r.Committee.attempts >= 1)
  | Error e -> Alcotest.fail e);
  (* Total churn: liveness failure reported. *)
  match
    Committee.decrypt_and_release ~churn:1.0 ~max_attempts:3 c rng ctx ~info ~epsilon:1.0 ct
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dead committee decrypted"

let test_committee_rejects_high_degree () =
  let ctx = Bgv.make_ctx fast_params in
  let rng = Rng.create 3L in
  let genesis, pk, _, _ = Committee.genesis ctx rng ~size:5 ~threshold:2 ~relin_degree:2 in
  let c = Committee.rotate genesis rng ~population:50 in
  let prod = Bgv.mul (Bgv.encrypt_value ctx rng pk 1) (Bgv.encrypt_value ctx rng pk 1) in
  let info = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  match Committee.decrypt_and_release c rng ctx ~info ~epsilon:1.0 prod with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "degree-2 ciphertext accepted"

(* ------------------------------------------------------------------ *)
(* Contribution                                                        *)
(* ------------------------------------------------------------------ *)

let contribution_fixture =
  lazy
    (let ctx = Bgv.make_ctx fast_params in
     let rng = Rng.create 10L in
     let _, pk = Bgv.keygen ctx rng in
     let srs = Mycelium_zkp.Zkp.setup rng in
     (ctx, rng, pk, srs))

let test_contribution_sequence_lengths () =
  let ctx, rng, pk, srs = Lazy.force contribution_fixture in
  let dest = { Schema.infected = true; t_inf = Some 5; age = 30; household = 1 } in
  List.iter
    (fun (id, expected) ->
      let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find id).Corpus.query in
      checki (id ^ " sequence") expected (Contribution.sequence_length info);
      let c = Contribution.build srs ctx rng pk info ~dest ~edge:None in
      checki (id ^ " ciphertext count") expected (Array.length c.Contribution.ciphertexts);
      checkb (id ^ " verifies") true (Contribution.verify srs ctx info c))
    [ ("Q1", 1); ("Q3", 14); ("Q9", 10) ]

let test_contribution_malicious_rejected () =
  let ctx, rng, pk, srs = Lazy.force contribution_fixture in
  let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find "Q5").Corpus.query in
  let bad = Contribution.build_malicious ctx rng pk info ~exponent:1 ~coeff:100 in
  checkb "forged proofs rejected" false (Contribution.verify srs ctx info bad)

let test_contribution_wire_roundtrip () =
  let ctx, rng, pk, srs = Lazy.force contribution_fixture in
  let info = Analysis.analyze_exn ~degree_bound:4 (Corpus.find "Q5").Corpus.query in
  let dest = { Schema.infected = false; t_inf = None; age = 61; household = 2 } in
  let c = Contribution.build srs ctx rng pk info ~dest ~edge:None in
  match Contribution.of_bytes ctx (Contribution.to_bytes c) with
  | Some c' -> checkb "roundtrip verifies" true (Contribution.verify srs ctx info c')
  | None -> Alcotest.fail "wire roundtrip failed"

(* ------------------------------------------------------------------ *)
(* Summation tree                                                      *)
(* ------------------------------------------------------------------ *)

module Summation_tree = Mycelium_core.Summation_tree

let summation_fixture n =
  let ctx = Bgv.make_ctx fast_params in
  let rng = Rng.create (Int64.of_int (1000 + n)) in
  let sk, pk = Bgv.keygen ctx rng in
  let leaves = Array.init n (fun i -> Bgv.encrypt_value ctx rng pk (i mod 7)) in
  (ctx, sk, leaves)

let test_summation_tree_sums_correctly () =
  List.iter
    (fun n ->
      let ctx, sk, leaves = summation_fixture n in
      let tree = Summation_tree.build leaves in
      checki "leaf count" n (Summation_tree.leaf_count tree);
      let expected =
        Array.fold_left (fun acc ct -> Bgv.add acc ct) leaves.(0) (Array.sub leaves 1 (n - 1))
      in
      checkb "root sum decrypts like the fold" true
        (Mycelium_bgv.Plaintext.equal
           (Bgv.decrypt ctx sk (Summation_tree.root_sum tree))
           (Bgv.decrypt ctx sk expected)))
    [ 1; 2; 3; 5; 8; 13 ]

let test_summation_tree_audits_pass () =
  List.iter
    (fun n ->
      let _, _, leaves = summation_fixture n in
      let tree = Summation_tree.build leaves in
      for i = 0 to n - 1 do
        checkb
          (Printf.sprintf "n=%d leaf %d" n i)
          true
          (Summation_tree.verify_audit leaves.(i)
             ~root_hash:(Summation_tree.root_hash tree)
             ~root_sum:(Summation_tree.root_sum tree)
             ~leaf_count:n (Summation_tree.audit tree i))
      done)
    [ 1; 2; 5; 9 ]

let test_summation_tree_detects_cheating () =
  let ctx, _, leaves = summation_fixture 6 in
  let rng = Rng.create 31L in
  let _, pk = Bgv.keygen ctx rng in
  (* Dropped contribution: the aggregator built a tree without leaf 3
     and answers device 3's audit with a path from its own tree. *)
  let without = Array.append (Array.sub leaves 0 3) (Array.sub leaves 4 2) in
  let forged = Summation_tree.build without in
  checkb "dropped contribution detected" false
    (Summation_tree.verify_audit leaves.(3)
       ~root_hash:(Summation_tree.root_hash forged)
       ~root_sum:(Summation_tree.root_sum forged)
       ~leaf_count:5 (Summation_tree.audit forged 3));
  (* Substituted contribution at the device's own slot. *)
  let swapped = Array.copy leaves in
  swapped.(3) <- Bgv.encrypt_value ctx rng pk 6;
  let forged2 = Summation_tree.build swapped in
  checkb "substituted contribution detected" false
    (Summation_tree.verify_audit leaves.(3)
       ~root_hash:(Summation_tree.root_hash forged2)
       ~root_sum:(Summation_tree.root_sum forged2)
       ~leaf_count:6 (Summation_tree.audit forged2 3));
  (* Duplicated contribution (included twice): another device's audit
     against the duplicated tree still verifies, but the device whose
     slot was stolen detects it. *)
  let duped = Array.copy leaves in
  duped.(4) <- leaves.(3);
  let forged3 = Summation_tree.build duped in
  checkb "stolen slot detected" false
    (Summation_tree.verify_audit leaves.(4)
       ~root_hash:(Summation_tree.root_hash forged3)
       ~root_sum:(Summation_tree.root_sum forged3)
       ~leaf_count:6 (Summation_tree.audit forged3 4))

let test_summation_tree_wrong_root_sum () =
  (* The aggregator cannot announce a different total: the audit binds
     the running sum to the announced root. *)
  let ctx, _, leaves = summation_fixture 4 in
  let rng = Rng.create 33L in
  let _, pk = Bgv.keygen ctx rng in
  let tree = Summation_tree.build leaves in
  checkb "forged total rejected" false
    (Summation_tree.verify_audit leaves.(0)
       ~root_hash:(Summation_tree.root_hash tree)
       ~root_sum:(Bgv.encrypt_value ctx rng pk 0)
       ~leaf_count:4 (Summation_tree.audit tree 0))

(* ------------------------------------------------------------------ *)
(* End-to-end                                                          *)
(* ------------------------------------------------------------------ *)

let e2e_config =
  { Runtime.default_config with Runtime.params = fast_params; degree_bound = 4 }

let e2e_system = lazy (Runtime.init e2e_config (small_graph ()))

let run_exact sys id =
  match Runtime.run_query ~epsilon:Float.infinity sys (Corpus.find id).Corpus.sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s failed: %s" id (err_to_string e)

let check_matches_oracle sys id =
  let r = run_exact sys id in
  let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
  checkb (id ^ " = plaintext oracle") true
    (Array.for_all2 (fun a b -> int_of_float a = b) r.Runtime.noisy_bins exact);
  checki (id ^ " no discards") 0 r.Runtime.discarded_contributions

let test_e2e_simple_queries () =
  let sys = Lazy.force e2e_system in
  List.iter (check_matches_oracle sys) [ "Q2"; "Q4"; "Q5" ]

let test_e2e_cross_column_queries () =
  let sys = Lazy.force e2e_system in
  List.iter (check_matches_oracle sys) [ "Q3"; "Q9" ]

let test_e2e_grouped_queries () =
  let sys = Lazy.force e2e_system in
  List.iter (check_matches_oracle sys) [ "Q6"; "Q7"; "Q8"; "Q10" ]

let test_e2e_two_hop () =
  (* Q1 on a tiny graph with parameters deep enough for d^2-ish
     products. *)
  let g = small_graph ~n:12 ~d:2 ~seed:99L () in
  let sys =
    Runtime.init
      {
        e2e_config with
        Runtime.params = Params.test_medium;
        degree_bound = 2;
        relin_degree = Some 8;
      }
      g
  in
  let r = run_exact sys "Q1" in
  let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
  checkb "Q1 = oracle" true
    (Array.for_all2 (fun a b -> int_of_float a = b) r.Runtime.noisy_bins exact)

let test_e2e_q1_infeasible_at_small_params () =
  (* §6.2's generality result at this parameter scale: the 2-hop query
     exceeds the multiplication budget. *)
  let sys = Lazy.force e2e_system in
  match Runtime.run_query sys (Corpus.find "Q1").Corpus.sql with
  | Error (Runtime.Infeasible _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (err_to_string e)
  | Ok _ -> Alcotest.fail "Q1 should be infeasible at test_small"

let test_e2e_noise_present_at_finite_epsilon () =
  let sys = Runtime.init e2e_config (small_graph ~seed:5L ()) in
  match Runtime.run_query ~epsilon:0.5 sys (Corpus.find "Q5").Corpus.sql with
  | Ok r ->
    let exact = Array.map float_of_int (Runtime.exact_bins_for_tests sys r.Runtime.info) in
    checkb "noise applied" true (r.Runtime.noisy_bins <> exact);
    (* Noise is centered: the total mass should be within a loose bound
       of the truth. *)
    let sum a = Array.fold_left ( +. ) 0. a in
    let sens = r.Runtime.info.Analysis.sensitivity in
    let bins = float_of_int (Array.length exact) in
    checkb "mass in statistical range" true
      (Float.abs (sum r.Runtime.noisy_bins -. sum exact) < 20. *. sens /. 0.5 *. sqrt bins)
  | Error e -> Alcotest.fail (err_to_string e)

let test_e2e_budget_enforced () =
  let sys = Runtime.init { e2e_config with Runtime.epsilon_budget = 1.0 } (small_graph ~n:12 ~seed:6L ()) in
  (match Runtime.run_query ~epsilon:0.7 sys (Corpus.find "Q4").Corpus.sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (err_to_string e));
  match Runtime.run_query ~epsilon:0.7 sys (Corpus.find "Q4").Corpus.sql with
  | Error (Runtime.Budget_exhausted remaining) ->
    checkb "remaining reported" true (Float.abs (remaining -. 0.3) < 1e-9)
  | Error e -> Alcotest.failf "wrong error: %s" (err_to_string e)
  | Ok _ -> Alcotest.fail "over-budget query accepted"

let test_e2e_committee_rotates_per_query () =
  let sys = Runtime.init e2e_config (small_graph ~n:12 ~seed:7L ()) in
  let g1 = (run_exact sys "Q4").Runtime.committee_generation in
  let g2 = (run_exact sys "Q4").Runtime.committee_generation in
  checki "rotated between queries" (g1 + 1) g2

let test_e2e_byzantine_contributions_discarded () =
  let g = small_graph ~n:20 ~seed:8L () in
  let sys = Runtime.init { e2e_config with Runtime.byzantine_fraction = 0.2 } g in
  let r = run_exact sys "Q5" in
  checkb "some contributions discarded" true (r.Runtime.discarded_contributions > 0);
  checkb "honest origins still included" true (r.Runtime.origins_included > 0);
  (* The released histogram never contains the Byzantine coefficient
     (200 per §4.6 attack attempt): values stay bounded by n. *)
  Array.iter
    (fun v -> checkb "no over-weighting" true (v <= float_of_int (Cg.population g)))
    r.Runtime.noisy_bins

let test_e2e_through_mixnet () =
  let g = small_graph ~n:16 ~d:4 ~seed:9L () in
  let mix_cfg =
    {
      Sim.default_config with
      Sim.hops = 2;
      replicas = 2;
      fraction = 0.4;
      fast_setup = true;
      verify_proofs = false;
    }
  in
  let sys =
    Runtime.init { e2e_config with Runtime.route_through_mixnet = Some mix_cfg } g
  in
  let r = run_exact sys "Q5" in
  checki "nothing lost without churn" 0 r.Runtime.mixnet_losses;
  let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
  checkb "mixnet-routed result = oracle" true
    (Array.for_all2 (fun a b -> int_of_float a = b) r.Runtime.noisy_bins exact)

let test_e2e_mixnet_churn_degrades_gracefully () =
  let g = small_graph ~n:16 ~d:4 ~seed:10L () in
  let mix_cfg =
    {
      Sim.default_config with
      Sim.hops = 2;
      replicas = 1;
      fraction = 0.4;
      churn = 0.25;
      fast_setup = true;
      verify_proofs = false;
    }
  in
  let sys =
    Runtime.init { e2e_config with Runtime.route_through_mixnet = Some mix_cfg } g
  in
  let r = run_exact sys "Q5" in
  checkb "some rows lost in transit" true (r.Runtime.mixnet_losses > 0);
  (* Missing inputs default to neutral values (§6.3): the query still
     completes and bins stay bounded. *)
  Array.iter
    (fun v -> checkb "bounded" true (v >= 0. && v <= float_of_int (Cg.population g)))
    r.Runtime.noisy_bins

let test_e2e_over_degree_graph_clipped () =
  (* A graph loaded from external data (outside [Contact_graph.generate])
     may exceed the runtime's degree bound: [Runtime.init] must clip it
     deterministically rather than fail, and in mixnet mode the
     per-device target lists must come out at exactly d entries. *)
  let n = 12 in
  let d = 3 in
  let rng = Rng.create 77L in
  let vertices =
    Array.init n (fun i ->
        {
          Schema.infected = i mod 2 = 0;
          t_inf = (if i mod 2 = 0 then Some (i mod 14) else None);
          age = 20 + (i * 7 mod 60);
          household = i / 3;
        })
  in
  let edge () =
    {
      Schema.duration_min = 30 + Rng.int rng 60;
      contacts = 1 + Rng.int rng 4;
      last_contact = Rng.int rng 14;
      location = Schema.Household;
      setting = Schema.Family;
    }
  in
  (* Star around vertex 0 (degree n-1 >> d) plus a path over the rest. *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (0, v, edge ()) :: !edges
  done;
  for v = 1 to n - 2 do
    edges := (v, v + 1, edge ()) :: !edges
  done;
  let g = Cg.of_edges ~degree_bound:d ~vertices ~edges:!edges () in
  checkb "fixture exceeds bound" true (Cg.max_degree g > d);
  let sys = Runtime.init { e2e_config with Runtime.degree_bound = d } g in
  checkb "runtime graph clipped" true (Cg.max_degree (Runtime.graph sys) <= d);
  let r = run_exact sys "Q5" in
  let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
  checkb "clipped result = oracle" true
    (Array.for_all2 (fun a b -> int_of_float a = b) r.Runtime.noisy_bins exact);
  (* Same over-degree graph through the mixnet: the target lists handed
     to path setup are clipped and self-loop padded to exactly d, so
     setup accepts them and nothing is lost. *)
  let mix_cfg =
    {
      Sim.default_config with
      Sim.hops = 2;
      replicas = 2;
      fraction = 0.4;
      fast_setup = true;
      verify_proofs = false;
    }
  in
  let sys2 =
    Runtime.init
      { e2e_config with Runtime.degree_bound = d; route_through_mixnet = Some mix_cfg }
      g
  in
  let r2 = run_exact sys2 "Q5" in
  checki "nothing lost" 0 r2.Runtime.mixnet_losses;
  let exact2 = Runtime.exact_bins_for_tests sys2 r2.Runtime.info in
  checkb "mixnet over-degree result = oracle" true
    (Array.for_all2 (fun a b -> int_of_float a = b) r2.Runtime.noisy_bins exact2)

let test_e2e_parse_and_analysis_errors () =
  let sys = Lazy.force e2e_system in
  (match Runtime.run_query sys "SELECT nonsense" with
  | Error (Runtime.Parse_error _) -> ()
  | _ -> Alcotest.fail "parse error expected");
  match Runtime.run_query sys "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE self.inf OR dest.inf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unplaceable OR should fail"

let () =
  Alcotest.run "mycelium-core"
    [
      ( "pregel",
        [
          Alcotest.test_case "BFS vertex program" `Quick test_pregel_bfs;
          Alcotest.test_case "halting" `Quick test_pregel_halting;
          Alcotest.test_case "neighbor check" `Quick test_pregel_send_checks_neighbors;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "flooded = direct" `Quick test_flooded_matches_direct;
          Alcotest.test_case "Q1 mass" `Quick test_baseline_q1_counts;
          Alcotest.test_case "timer" `Quick test_baseline_timer;
        ] );
      ( "committee",
        [
          Alcotest.test_case "lifecycle" `Quick test_committee_lifecycle;
          Alcotest.test_case "many rotations" `Quick test_committee_many_rotations;
          Alcotest.test_case "liveness retry (§6.5)" `Quick test_committee_liveness_retry;
          Alcotest.test_case "degree-2 rejected" `Quick test_committee_rejects_high_degree;
        ] );
      ( "contribution",
        [
          Alcotest.test_case "sequence lengths" `Quick test_contribution_sequence_lengths;
          Alcotest.test_case "malicious rejected" `Quick test_contribution_malicious_rejected;
          Alcotest.test_case "wire roundtrip" `Quick test_contribution_wire_roundtrip;
        ] );
      ( "summation-tree",
        [
          Alcotest.test_case "sums correctly" `Quick test_summation_tree_sums_correctly;
          Alcotest.test_case "audits pass" `Quick test_summation_tree_audits_pass;
          Alcotest.test_case "detects cheating" `Quick test_summation_tree_detects_cheating;
          Alcotest.test_case "forged total rejected" `Quick test_summation_tree_wrong_root_sum;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "simple queries (Q2,Q4,Q5)" `Slow test_e2e_simple_queries;
          Alcotest.test_case "cross-column (Q3,Q9)" `Slow test_e2e_cross_column_queries;
          Alcotest.test_case "grouped (Q6,Q7,Q8,Q10)" `Slow test_e2e_grouped_queries;
          Alcotest.test_case "two-hop Q1" `Slow test_e2e_two_hop;
          Alcotest.test_case "Q1 infeasible at small params" `Quick test_e2e_q1_infeasible_at_small_params;
          Alcotest.test_case "noise at finite epsilon" `Slow test_e2e_noise_present_at_finite_epsilon;
          Alcotest.test_case "budget enforced" `Slow test_e2e_budget_enforced;
          Alcotest.test_case "committee rotates per query" `Slow test_e2e_committee_rotates_per_query;
          Alcotest.test_case "byzantine discarded" `Slow test_e2e_byzantine_contributions_discarded;
          Alcotest.test_case "through the mixnet" `Slow test_e2e_through_mixnet;
          Alcotest.test_case "mixnet churn degrades gracefully" `Slow test_e2e_mixnet_churn_degrades_gracefully;
          Alcotest.test_case "over-degree graph clipped" `Slow test_e2e_over_degree_graph_clipped;
          Alcotest.test_case "error paths" `Quick test_e2e_parse_and_analysis_errors;
        ] );
    ]
