(* Chaos suite for the deterministic fault-injection layer: the plan
   engine itself (stateless decisions, retry/backoff accounting), and
   the end-to-end pipeline degrading per §6.3 under each fault class.

   Every run is keyed by MYCELIUM_CHAOS_SEED (default 1), which the
   @chaos dune alias sweeps over a small matrix — the same seed always
   injects exactly the same faults, so a failure here is replayed with
   `MYCELIUM_CHAOS_SEED=<n> dune exec test/test_faults.exe`. *)

module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Epidemic = Mycelium_graph.Epidemic
module Analysis = Mycelium_query.Analysis
module Corpus = Mycelium_query.Corpus
module Ast = Mycelium_query.Ast
module Params = Mycelium_bgv.Params
module Bgv = Mycelium_bgv.Bgv
module Ring_backend = Mycelium_math.Ring_backend
module Committee = Mycelium_core.Committee
module Runtime = Mycelium_core.Runtime
module Sim = Mycelium_mixnet.Sim
module Fault_plan = Mycelium_faults.Fault_plan
module Injector = Mycelium_faults.Injector
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs
module Json = Mycelium_obs.Obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let chaos_seed =
  match Sys.getenv_opt "MYCELIUM_CHAOS_SEED" with
  | Some s -> Int64.of_string s
  | None -> 1L

let small_graph ?(n = 16) ?(d = 4) ?(seed = 4242L) () =
  let rng = Rng.create seed in
  let g =
    Cg.generate
      { Cg.default_config with Cg.population = n; degree_bound = d; extra_contact_rate = 1.5 }
      rng
  in
  let (_ : Epidemic.outcome) = Epidemic.run Epidemic.default_config rng g in
  g

let err_to_string = function
  | Runtime.Parse_error m -> "parse: " ^ m
  | Runtime.Analysis_error m -> "analysis: " ^ m
  | Runtime.Infeasible m -> "infeasible: " ^ m
  | Runtime.Budget_exhausted r -> Printf.sprintf "budget exhausted (%.2f left)" r
  | Runtime.Pipeline_error m -> "pipeline: " ^ m

(* Acceptance shape: committee of 10 with threshold 4 over a 16-device
   graph, fast BGV parameters. *)
let chaos_config plan =
  {
    Runtime.default_config with
    Runtime.params = Params.test_small;
    degree_bound = 4;
    faults = Some plan;
  }

let run_chaos ?(query = "Q5") plan =
  let g = small_graph () in
  let sys = Runtime.init (chaos_config plan) g in
  match Runtime.run_query ~epsilon:Float.infinity sys (Corpus.find query).Corpus.sql with
  | Error e -> Alcotest.failf "chaos run failed: %s" (err_to_string e)
  | Ok r -> (sys, r)

(* ------------------------------------------------------------------ *)
(* Oracles recomputed from the plan alone                              *)
(* ------------------------------------------------------------------ *)

(* Replays one droppable send's retry loop from the plan. *)
let send_outcome plan ~source ~dest =
  let max_attempts = plan.Fault_plan.max_send_attempts in
  let rec go a retries =
    if Fault_plan.send_dropped plan ~round:0 ~source ~dest ~attempt:a then begin
      if a >= max_attempts then
        `Lost (retries, Fault_plan.backoff_units plan ~attempts:a)
      else go (a + 1) (retries + 1)
    end
    else begin
      let delayed = Fault_plan.send_delay plan ~round:0 ~source ~dest > 0 in
      `Delivered (retries, Fault_plan.backoff_units plan ~attempts:a, delayed)
    end
  in
  go 1 0

(* The degradation report the runtime must produce for a query of
   [hops] hops over [g] on the abstract channel — the chaos suite's
   core assertion is that this, computed from the plan alone, matches
   what the pipeline actually recorded. *)
let expected_report plan g ~hops ~committee_size =
  let n = Cg.population g in
  let churned d = Fault_plan.device_churned plan ~device:d in
  let substituted = ref 0 and dropped = ref 0 and delayed = ref 0 in
  let retries = ref 0 and backoff = ref 0 in
  for origin = 0 to n - 1 do
    if churned origin then incr substituted (* Enc(0) leaf at the aggregator *)
    else
      List.iter
        (fun (m, _dist) ->
          if churned m then incr substituted
          else begin
            match send_outcome plan ~source:m ~dest:origin with
            | `Lost (r, b) ->
              incr dropped;
              retries := !retries + r;
              backoff := !backoff + b
            | `Delivered (r, b, late) ->
              retries := !retries + r;
              backoff := !backoff + b;
              if late then incr delayed
          end)
        (Cg.k_hop g origin ~k:hops)
  done;
  if Fault_plan.is_none plan then Injector.empty_report
  else
    {
      Injector.substituted_contributions = !substituted;
      dropped_messages = !dropped;
      delayed_messages = !delayed;
      channel_retries = !retries;
      backoff_units = !backoff;
      excluded_committee_members =
        List.length (Fault_plan.crashed_members plan ~size:committee_size);
      forged_rejected = List.length (Fault_plan.forging_devices plan ~n);
      aggregator_restarts = plan.Fault_plan.aggregator_restarts;
      decryption_attempts = 1;
    }

(* Origins whose released contribution can differ from the no-fault
   run: churned, forging, or missing at least one neighbor row. Each
   such origin moves at most [sensitivity] of mass per bin. *)
let affected_origins plan g ~hops =
  let n = Cg.population g in
  let churned d = Fault_plan.device_churned plan ~device:d in
  let count = ref 0 in
  for origin = 0 to n - 1 do
    let hit =
      churned origin
      || Fault_plan.contribution_forged plan ~device:origin
      || List.exists
           (fun (m, _) ->
             churned m
             || (match send_outcome plan ~source:m ~dest:origin with
                | `Lost _ -> true
                | `Delivered _ -> false))
           (Cg.k_hop g origin ~k:hops)
    in
    if hit then incr count
  done;
  !count

let check_report msg expected actual =
  if not (Injector.report_equal expected actual) then
    Alcotest.failf "%s:\n  expected %s\n  got      %s" msg
      (Injector.report_to_string expected)
      (Injector.report_to_string actual)

(* With epsilon = infinity there is no noise, so any deviation from
   the plaintext oracle is pure degradation — bounded per bin by
   (affected origins) * sensitivity. *)
let check_bins msg sys (r : Runtime.query_result) plan =
  let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
  let hops = r.Runtime.info.Analysis.query.Ast.hops in
  let affected = affected_origins plan (Runtime.graph sys) ~hops in
  let bound = (float_of_int affected *. r.Runtime.info.Analysis.sensitivity) +. 1e-6 in
  Array.iteri
    (fun i b ->
      let e = float_of_int exact.(i) in
      if Float.abs (b -. e) > bound then
        Alcotest.failf "%s: bin %d released %.1f vs exact %.1f exceeds bound %.1f" msg i b e
          bound)
    r.Runtime.noisy_bins

(* ------------------------------------------------------------------ *)
(* Fault_plan unit properties                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_deterministic () =
  let p = Fault_plan.make ~drop_rate:0.4 ~delay_rate:0.3 ~churn_rate:0.2 ~forge_rate:0.1
      ~seed:chaos_seed ()
  in
  for d = 0 to 63 do
    checkb "churn stable" (Fault_plan.device_churned p ~device:d)
      (Fault_plan.device_churned p ~device:d);
    checkb "forge stable" (Fault_plan.contribution_forged p ~device:d)
      (Fault_plan.contribution_forged p ~device:d)
  done;
  for a = 1 to 8 do
    checkb "drop stable"
      (Fault_plan.send_dropped p ~round:0 ~source:3 ~dest:7 ~attempt:a)
      (Fault_plan.send_dropped p ~round:0 ~source:3 ~dest:7 ~attempt:a)
  done;
  checki "delay stable"
    (Fault_plan.send_delay p ~round:1 ~source:2 ~dest:9)
    (Fault_plan.send_delay p ~round:1 ~source:2 ~dest:9)

let test_plan_extremes () =
  let off = Fault_plan.make ~seed:chaos_seed () in
  checkb "zero-rate plan is none" true (Fault_plan.is_none off);
  checkb "none is none" true (Fault_plan.is_none Fault_plan.none);
  for d = 0 to 31 do
    checkb "no churn at 0" false (Fault_plan.device_churned off ~device:d);
    checkb "no forge at 0" false (Fault_plan.contribution_forged off ~device:d)
  done;
  let on = Fault_plan.make ~drop_rate:1.0 ~churn_rate:1.0 ~seed:chaos_seed () in
  for d = 0 to 31 do
    checkb "all churn at 1" true (Fault_plan.device_churned on ~device:d);
    (* churn precedence: an offline device cannot also forge *)
    checkb "churn beats forge" false (Fault_plan.contribution_forged on ~device:d);
    checkb "all drops at 1" true
      (Fault_plan.send_dropped on ~round:0 ~source:d ~dest:(d + 1) ~attempt:1)
  done

let test_plan_rates_are_calibrated () =
  (* Statistical sanity at a fixed internal seed: about half of a big
     population churns at rate 0.5. *)
  let p = Fault_plan.make ~churn_rate:0.5 ~seed:123L () in
  let c = List.length (Fault_plan.churned_devices p ~n:1000) in
  checkb (Printf.sprintf "churn count %d in [400, 600]" c) true (c >= 400 && c <= 600)

let test_plan_attempts_independent () =
  (* At drop rate 0.5 some send must drop on attempt 1 and succeed on
     attempt 2 — the transient-loss model behind retry. *)
  let p = Fault_plan.make ~drop_rate:0.5 ~seed:chaos_seed () in
  let found = ref false in
  for s = 0 to 99 do
    if
      Fault_plan.send_dropped p ~round:0 ~source:s ~dest:0 ~attempt:1
      && not (Fault_plan.send_dropped p ~round:0 ~source:s ~dest:0 ~attempt:2)
    then found := true
  done;
  checkb "retry can succeed" true !found

let test_plan_backoff_and_validation () =
  let p = Fault_plan.none in
  List.iter
    (fun (attempts, units) -> checki "backoff" units (Fault_plan.backoff_units p ~attempts))
    [ (1, 0); (2, 1); (3, 3); (4, 7); (5, 15) ];
  (try
     ignore (Fault_plan.make ~drop_rate:1.5 ~seed:0L ());
     Alcotest.fail "drop_rate 1.5 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Fault_plan.make ~max_send_attempts:0 ~seed:0L ());
     Alcotest.fail "0 attempts accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Fault_plan.make ~aggregator_restarts:(-1) ~seed:0L ());
    Alcotest.fail "negative restarts accepted"
  with Invalid_argument _ -> ()

let test_injector_retry_accounting () =
  (* Certain loss: every attempt drops, so the injector retries to the
     budget, sleeps the full backoff, and reports a permanent drop. *)
  let inj = Injector.create (Fault_plan.make ~drop_rate:1.0 ~max_send_attempts:3 ~seed:7L ()) in
  checkb "lost" false (Injector.send inj ~round:0 ~source:1 ~dest:2);
  let r = Injector.report inj in
  checki "dropped" 1 r.Injector.dropped_messages;
  checki "retries" 2 r.Injector.channel_retries;
  checki "backoff" 3 r.Injector.backoff_units;
  (* Fault-free plan: sends always deliver and the report stays empty. *)
  let quiet = Injector.create Fault_plan.none in
  checkb "inactive" false (Injector.active quiet);
  checkb "delivered" true (Injector.send quiet ~round:0 ~source:1 ~dest:2);
  checkb "empty report" true (Injector.report_equal Injector.empty_report (Injector.report quiet))

(* ------------------------------------------------------------------ *)
(* Chaos matrix: fault class x intensity                               *)
(* ------------------------------------------------------------------ *)

let intensities = [ 0.0; 0.1; 0.3 ]

let run_matrix_class name mk () =
  List.iter
    (fun intensity ->
      let plan = mk intensity in
      let sys, r = run_chaos plan in
      let label = Printf.sprintf "%s@%.1f" name intensity in
      let expected =
        expected_report plan (Runtime.graph sys) ~hops:1 ~committee_size:10
      in
      check_report (label ^ " report") expected r.Runtime.degradation;
      check_bins (label ^ " bins") sys r plan)
    intensities

let test_chaos_drop =
  run_matrix_class "drop" (fun i -> Fault_plan.make ~drop_rate:i ~seed:chaos_seed ())

let test_chaos_delay =
  run_matrix_class "delay" (fun i -> Fault_plan.make ~delay_rate:i ~seed:chaos_seed ())

let test_chaos_churn =
  run_matrix_class "churn" (fun i -> Fault_plan.make ~churn_rate:i ~seed:chaos_seed ())

let test_chaos_forge =
  run_matrix_class "forge" (fun i -> Fault_plan.make ~forge_rate:i ~seed:chaos_seed ())

let test_chaos_committee_crash () =
  (* 3 of 10 crashed with threshold 4: any 5 of the 7 survivors carry
     the decryption. *)
  let plan = Fault_plan.make ~crashed_committee:[ 1; 5; 8 ] ~seed:chaos_seed () in
  let sys, r = run_chaos plan in
  let expected = expected_report plan (Runtime.graph sys) ~hops:1 ~committee_size:10 in
  check_report "crash report" expected r.Runtime.degradation;
  checki "3 excluded" 3 r.Runtime.degradation.Injector.excluded_committee_members;
  check_bins "crash bins" sys r plan

let test_chaos_aggregator_restart () =
  List.iter
    (fun restarts ->
      let plan = Fault_plan.make ~aggregator_restarts:restarts ~seed:chaos_seed () in
      let sys, r = run_chaos plan in
      let expected = expected_report plan (Runtime.graph sys) ~hops:1 ~committee_size:10 in
      check_report "restart report" expected r.Runtime.degradation;
      checki "restarts recorded" restarts r.Runtime.degradation.Injector.aggregator_restarts;
      (* The rebuilt tree released the exact result: restarts are
         lossless by construction. *)
      check_bins "restart bins" sys r plan)
    [ 1; 3 ]

let test_chaos_all_classes_combined () =
  let plan =
    Fault_plan.make ~drop_rate:0.2 ~delay_rate:0.2 ~churn_rate:0.1 ~forge_rate:0.1
      ~crashed_committee:[ 2 ] ~aggregator_restarts:1 ~seed:chaos_seed ()
  in
  let sys, r = run_chaos plan in
  let expected = expected_report plan (Runtime.graph sys) ~hops:1 ~committee_size:10 in
  check_report "combined report" expected r.Runtime.degradation;
  check_bins "combined bins" sys r plan

(* ------------------------------------------------------------------ *)
(* Acceptance: reproducibility and liveness                            *)
(* ------------------------------------------------------------------ *)

let test_acceptance_reproducible_degradation () =
  (* 10% churn + 1 crashed committee member (of 10, threshold 4): the
     query still releases within the degradation bound, and re-running
     the identical seed reproduces bit-identical results. *)
  let plan = Fault_plan.make ~churn_rate:0.1 ~crashed_committee:[ 2 ] ~seed:chaos_seed () in
  let sys1, r1 = run_chaos plan in
  let _sys2, r2 = run_chaos plan in
  checkb "same degradation report" true
    (Injector.report_equal r1.Runtime.degradation r2.Runtime.degradation);
  checkb "same released bins" true (r1.Runtime.noisy_bins = r2.Runtime.noisy_bins);
  checki "one excluded member" 1 r1.Runtime.degradation.Injector.excluded_committee_members;
  check_bins "acceptance bins" sys1 r1 plan

let test_chaos_finite_epsilon_still_bounded () =
  (* Under faults and real noise the release stays within the loose
     statistical envelope around the degraded truth. *)
  let plan = Fault_plan.make ~churn_rate:0.1 ~crashed_committee:[ 2 ] ~seed:chaos_seed () in
  let g = small_graph () in
  let sys = Runtime.init (chaos_config plan) g in
  let eps = 0.5 in
  match Runtime.run_query ~epsilon:eps sys (Corpus.find "Q5").Corpus.sql with
  | Error e -> Alcotest.failf "finite-eps chaos failed: %s" (err_to_string e)
  | Ok r ->
    let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
    let sens = r.Runtime.info.Analysis.sensitivity in
    let hops = r.Runtime.info.Analysis.query.Ast.hops in
    let degradation = float_of_int (affected_origins plan g ~hops) *. sens in
    let sum a = Array.fold_left ( +. ) 0. a in
    let noise_env = 20. *. sens /. eps *. sqrt (float_of_int (Array.length exact)) in
    checkb "mass within degradation + noise envelope" true
      (Float.abs (sum r.Runtime.noisy_bins -. float_of_int (Array.fold_left ( + ) 0 exact))
      < (float_of_int (Array.length exact) *. degradation) +. noise_env)

let test_committee_threshold_liveness_boundary () =
  (* Direct committee-level check of "any threshold+1 live shares":
     size 10, threshold 4 — 5 crashed members still decrypt, 6 cannot. *)
  let ctx = Bgv.make_ctx Params.test_small in
  let rng = Rng.create 31L in
  let genesis, pk, _, _ = Committee.genesis ctx rng ~size:10 ~threshold:4 ~relin_degree:2 in
  let c = Committee.rotate genesis rng ~population:40 in
  let info = Analysis.analyze_exn (Corpus.find "Q5").Corpus.query in
  let ct = Bgv.encrypt_value ctx rng pk 7 in
  (match
     Committee.decrypt_and_release ~excluded:[ 0; 1; 2; 3; 4 ] c rng ctx ~info
       ~epsilon:Float.infinity ct
   with
  | Ok r -> checkb "5 survivors decrypt" true (r.Committee.noisy_bins.(7) = 1.)
  | Error e -> Alcotest.failf "5 crashed members should leave a quorum: %s" e);
  match
    Committee.decrypt_and_release ~excluded:[ 0; 1; 2; 3; 4; 5 ] ~max_attempts:3 c rng ctx
      ~info ~epsilon:Float.infinity ct
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4 survivors decrypted below the threshold quorum"

let test_chaos_through_mixnet () =
  (* Transit drops ride the mixnet's replica copies; with aggressive
     dropping some logical messages lose every copy and surface as
     §6.3 defaults, yet the run completes and replays identically. *)
  let mix_cfg =
    {
      Sim.default_config with
      Sim.hops = 2;
      replicas = 2;
      fraction = 0.4;
      fast_setup = true;
      verify_proofs = false;
    }
  in
  let plan = Fault_plan.make ~drop_rate:0.5 ~seed:2024L () in
  let run () =
    let g = small_graph () in
    let sys =
      Runtime.init
        { (chaos_config plan) with Runtime.route_through_mixnet = Some mix_cfg }
        g
    in
    match Runtime.run_query ~epsilon:Float.infinity sys (Corpus.find "Q5").Corpus.sql with
    | Error e -> Alcotest.failf "mixnet chaos failed: %s" (err_to_string e)
    | Ok r -> (sys, r)
  in
  let _, r1 = run () in
  let _, r2 = run () in
  checkb "copies dropped" true (r1.Runtime.degradation.Injector.dropped_messages > 0);
  checkb "some logical messages lost" true (r1.Runtime.mixnet_losses > 0);
  checkb "replay: identical report" true
    (Injector.report_equal r1.Runtime.degradation r2.Runtime.degradation);
  checkb "replay: identical losses" true (r1.Runtime.mixnet_losses = r2.Runtime.mixnet_losses);
  checkb "replay: identical bins" true (r1.Runtime.noisy_bins = r2.Runtime.noisy_bins);
  (* Bins stay bounded even with rows lost in transit. *)
  let g = small_graph () in
  Array.iter
    (fun v -> checkb "bounded" true (v >= 0. && v <= float_of_int (Cg.population g)))
    r1.Runtime.noisy_bins

let test_mixnet_arena_domains_identical () =
  (* The arena/sharded forwarding path (DESIGN.md §12) carries the same
     determinism contract as the query pipeline: a mixnet run with
     churn, Byzantine forwarders, injected transit drops and sampled
     verification must produce byte-identical deliveries and stats at
     1, 2 and 8 domains — the sequential-decide / parallel-compute /
     sequential-merge split leaves nothing to scheduling. *)
  let cfg =
    {
      Sim.default_config with
      Sim.n_devices = 120;
      degree = 2;
      hops = 3;
      replicas = 2;
      churn = 0.05;
      malicious_fraction = 0.1;
      fast_setup = true;
      verify_sample = 3;
      anon_sample = 2;
      seed = 4242L;
    }
  in
  let run domains =
    Pool.with_domains domains (fun () ->
        let t = Sim.create cfg in
        ignore (Sim.setup_paths t);
        Sim.set_fault_hook t
          (Some
             (fun ~round ~source ~dest ~copy -> (round + source + dest + copy) mod 7 = 0));
        let r1 = Sim.run_query_round t ~payload:(Bytes.of_string "chaos-a") in
        let r2 = Sim.run_query_round t ~payload:(Bytes.of_string "chaos-b") in
        (r1, r2, Sim.deliveries t))
  in
  let a1, a2, del1 = run 1 in
  checkb "hook dropped copies" true (a1.Sim.copies_lost > 0);
  List.iter
    (fun d ->
      let b1, b2, del = run d in
      checkb (Printf.sprintf "round-1 stats identical at %d domains" d) true (b1 = a1);
      checkb (Printf.sprintf "round-2 stats identical at %d domains" d) true (b2 = a2);
      checkb
        (Printf.sprintf "deliveries byte-identical at %d domains" d)
        true (del = del1))
    [ 2; 8 ]

let test_parallel_domains_identical () =
  (* The determinism contract of the parallel layer, checked where it
     matters most: a chaotic run (drops, churn, forgeries, a committee
     crash) must release byte-identical bins, DP noise and degradation
     reports at 1, 2 and 8 domains. [Pool.with_domains] force-overrides
     both the runtime config and MYCELIUM_DOMAINS for the extent of the
     run. *)
  let plan =
    Fault_plan.make ~drop_rate:0.2 ~churn_rate:0.1 ~forge_rate:0.1
      ~crashed_committee:[ 2 ] ~seed:chaos_seed ()
  in
  let run domains =
    Pool.with_domains domains (fun () ->
        let sys, r = run_chaos plan in
        (* A finite-epsilon release on the same system covers the
           in-MPC DP-noise path with the same byte-identical claim. *)
        match Runtime.run_query ~epsilon:0.5 sys (Corpus.find "Q4").Corpus.sql with
        | Error e -> Alcotest.failf "finite-eps run failed: %s" (err_to_string e)
        | Ok r2 -> (r.Runtime.noisy_bins, r.Runtime.degradation, r2.Runtime.noisy_bins)
    )
  in
  let bins1, rep1, noisy1 = run 1 in
  List.iter
    (fun d ->
      let bins, rep, noisy = run d in
      checkb (Printf.sprintf "exact bins identical at %d domains" d) true (bins = bins1);
      checkb
        (Printf.sprintf "degradation report identical at %d domains" d)
        true
        (Injector.report_equal rep rep1);
      checkb (Printf.sprintf "DP noise identical at %d domains" d) true (noisy = noisy1))
    [ 2; 8 ];
  (* The ring-kernel backend is a pure performance knob: pinning either
     backend, at 1 or 8 domains, must still release the exact bytes the
     default produced. *)
  List.iter
    (fun backend ->
      List.iter
        (fun d ->
          let bins, rep, noisy = Ring_backend.with_backend backend (fun () -> run d) in
          checkb
            (Printf.sprintf "exact bins identical on %s at %d domains" backend d)
            true (bins = bins1);
          checkb
            (Printf.sprintf "degradation report identical on %s at %d domains" backend d)
            true
            (Injector.report_equal rep rep1);
          checkb
            (Printf.sprintf "DP noise identical on %s at %d domains" backend d)
            true (noisy = noisy1))
        [ 1; 8 ])
    [ "reference"; "montgomery" ]

(* ------------------------------------------------------------------ *)
(* Flight recorder under chaos                                         *)
(* ------------------------------------------------------------------ *)

(* Every injected fault notes an event and triggers the armed
   recorder, so each fault class must leave a parseable post-mortem
   dump carrying its own event kind. *)
let flight_classes =
  [
    ("drop", Fault_plan.make ~drop_rate:0.5 ~seed:chaos_seed (), "fault.drop");
    ("delay", Fault_plan.make ~delay_rate:0.5 ~seed:chaos_seed (), "fault.delay");
    ("churn", Fault_plan.make ~churn_rate:0.5 ~seed:chaos_seed (), "fault.substituted");
    ("forge", Fault_plan.make ~forge_rate:0.5 ~seed:chaos_seed (), "fault.forged_rejected");
    ( "committee-crash",
      Fault_plan.make ~crashed_committee:[ 1; 5; 8 ] ~seed:chaos_seed (),
      "fault.excluded_committee" );
    ( "aggregator-restart",
      Fault_plan.make ~aggregator_restarts:2 ~seed:chaos_seed (),
      "fault.aggregator_restart" );
  ]

let test_chaos_flight_dumps () =
  List.iter
    (fun (name, plan, kind) ->
      let path = Filename.temp_file "chaos_flight" ".json" in
      Sys.remove path;
      Obs.Recorder.enable ~capacity:4096 ();
      Obs.Recorder.arm path;
      let _sys, (_ : Runtime.query_result) = run_chaos plan in
      Obs.Recorder.flush ();
      Obs.Recorder.disarm ();
      Obs.Recorder.disable ();
      Obs.Recorder.clear ();
      checkb (name ^ ": dump produced") true (Sys.file_exists path);
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      match Json.parse s with
      | Error e -> Alcotest.failf "%s: dump does not re-parse: %s" name e
      | Ok doc ->
        checkb (name ^ ": flight schema") true
          (Json.member "schema" doc = Some (Json.Str "mycelium-flight/1"));
        let kinds =
          match Json.member "events" doc with
          | Some (Json.List evs) ->
            List.filter_map
              (fun e ->
                match Json.member "kind" e with Some (Json.Str k) -> Some k | _ -> None)
              evs
          | _ -> Alcotest.failf "%s: dump has no events array" name
        in
        checkb (name ^ ": dump carries " ^ kind) true (List.mem kind kinds))
    flight_classes

let test_recorder_identical_releases () =
  (* The recorder rides the same contract as tracing: enabling it must
     not move a single released byte, at any domain count. *)
  let plan =
    Fault_plan.make ~drop_rate:0.2 ~churn_rate:0.1 ~forge_rate:0.1
      ~crashed_committee:[ 2 ] ~aggregator_restarts:1 ~seed:chaos_seed ()
  in
  let run ~recorder domains =
    Pool.with_domains domains (fun () ->
        if recorder then Obs.Recorder.enable ~capacity:4096 ();
        let _sys, r = run_chaos plan in
        if recorder then begin
          checkb "chaos run recorded events" true (Obs.Recorder.recorded () > 0);
          Obs.Recorder.disable ();
          Obs.Recorder.clear ()
        end;
        (r.Runtime.noisy_bins, r.Runtime.degradation))
  in
  let bins1, rep1 = run ~recorder:false 1 in
  List.iter
    (fun d ->
      let off_bins, off_rep = run ~recorder:false d in
      let on_bins, on_rep = run ~recorder:true d in
      checkb (Printf.sprintf "recorder off: identical at %d domains" d) true
        (off_bins = bins1 && Injector.report_equal off_rep rep1);
      checkb (Printf.sprintf "recorder on: identical at %d domains" d) true
        (on_bins = bins1 && Injector.report_equal on_rep rep1))
    [ 1; 2; 8 ]

let test_no_faults_empty_report () =
  (* faults = None and faults = Some none-plan both report empty and
     release the exact oracle. *)
  let g = small_graph () in
  let sys =
    Runtime.init { (chaos_config Fault_plan.none) with Runtime.faults = None } g
  in
  match Runtime.run_query ~epsilon:Float.infinity sys (Corpus.find "Q5").Corpus.sql with
  | Error e -> Alcotest.failf "fault-free run failed: %s" (err_to_string e)
  | Ok r ->
    checkb "empty report" true
      (Injector.report_equal Injector.empty_report r.Runtime.degradation);
    let exact = Runtime.exact_bins_for_tests sys r.Runtime.info in
    checkb "exact release" true
      (Array.for_all2 (fun a b -> int_of_float a = b) r.Runtime.noisy_bins exact)

let () =
  Alcotest.run "mycelium-faults"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "stateless decisions are stable" `Quick test_plan_deterministic;
          Alcotest.test_case "rate extremes" `Quick test_plan_extremes;
          Alcotest.test_case "rates calibrated" `Quick test_plan_rates_are_calibrated;
          Alcotest.test_case "attempts independent" `Quick test_plan_attempts_independent;
          Alcotest.test_case "backoff + validation" `Quick test_plan_backoff_and_validation;
          Alcotest.test_case "injector retry accounting" `Quick test_injector_retry_accounting;
        ] );
      ( "chaos-matrix",
        [
          Alcotest.test_case "drop x intensity" `Quick test_chaos_drop;
          Alcotest.test_case "delay x intensity" `Quick test_chaos_delay;
          Alcotest.test_case "churn x intensity" `Quick test_chaos_churn;
          Alcotest.test_case "forge x intensity" `Quick test_chaos_forge;
          Alcotest.test_case "committee crash" `Quick test_chaos_committee_crash;
          Alcotest.test_case "aggregator restart" `Quick test_chaos_aggregator_restart;
          Alcotest.test_case "all classes combined" `Quick test_chaos_all_classes_combined;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "reproducible degradation" `Quick
            test_acceptance_reproducible_degradation;
          Alcotest.test_case "finite epsilon bounded" `Quick
            test_chaos_finite_epsilon_still_bounded;
          Alcotest.test_case "threshold liveness boundary" `Quick
            test_committee_threshold_liveness_boundary;
          Alcotest.test_case "chaos through the mixnet" `Quick test_chaos_through_mixnet;
          Alcotest.test_case "identical across domain counts" `Quick
            test_parallel_domains_identical;
          Alcotest.test_case "mixnet arena identical across domains" `Quick
            test_mixnet_arena_domains_identical;
          Alcotest.test_case "no faults, empty report" `Quick test_no_faults_empty_report;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "dump per fault class" `Quick test_chaos_flight_dumps;
          Alcotest.test_case "recorder on/off identical releases" `Quick
            test_recorder_identical_releases;
        ] );
    ]
