(** The verifiable maps M1 and M2 of §3.3.

    For a query epoch, the aggregator compiles every device's recent
    pseudonyms. M1 is a Merkle tree mapping each pseudonym number in
    [0, Np*P) to a leaf (h_i, pk_i, d_i); M2 maps each device number to
    the hashes of that device's pseudonyms and public keys. Both roots
    go on the bulletin board. Devices then audit:

    - each device looks up its own pseudonyms in M1 (detecting
      omission);
    - each device spot-checks x random M1 entries against M2 (a device
      with more than P pseudonyms overflows its M2 leaf; a Sybil
      aggregator runs out of M2's Np leaves).

    Lookup proofs are positional (see {!Mycelium_crypto.Merkle}), so
    the aggregator cannot answer a lookup for index n with a different
    leaf. *)

type m1_leaf = { pseudonym : bytes; pk : bytes; device : int }

(* lint: allow interface — a VMap log is compared through its Merkle roots (m1_root/m2_root), not structurally *)
type t

val build : max_pseudonyms_per_device:int -> m1_leaf array -> (t, string) result
(** Checks the advertised bound and that pseudonyms are distinct. An
    honest aggregator also guarantees h = H(pk); [build] checks it when
    the pk parses ({!Mycelium_crypto.Elgamal.pub_of_bytes}). *)

val build_unchecked : max_pseudonyms_per_device:int -> m1_leaf array -> t
(** What a malicious aggregator does; audits must catch it. *)

val size : t -> int
(** Number of M1 entries (= Np * P for a full map). *)

val device_count : t -> int
val max_pseudonyms : t -> int

val m1_root : t -> bytes
val m2_root : t -> bytes

val roots_payload : t -> bytes
(** Canonical encoding of both roots for the bulletin board. *)

type lookup = { leaf : m1_leaf; proof : Mycelium_crypto.Merkle.proof }

val lookup : t -> int -> lookup
(** Aggregator-side answer to "give me pseudonym number n". *)

val verify_lookup : m1_root:bytes -> index:int -> lookup -> bool
(** Device-side check: proof verifies, the path matches [index], and
    the leaf's pseudonym is H(pk). *)

val pub_of_lookup : lookup -> Mycelium_crypto.Elgamal.public_key option
(** Parse the looked-up public key. *)

val index_of_pseudonym : t -> bytes -> int option

type m2_lookup = { payload : bytes; proof : Mycelium_crypto.Merkle.proof }

val m2_lookup : t -> device:int -> m2_lookup

val verify_m2_lookup : m2_root:bytes -> device:int -> m2_lookup -> bool

val m2_contains_pk : m2_lookup -> pk:bytes -> bool
(** Whether H(pk) appears among the device's registered key hashes —
    the §3.3 cross-check between M1 and M2. *)

val audit_own_pseudonyms : t -> device:int -> pseudonyms:bytes list -> bool
(** The first device-side audit: all my pseudonyms are present and
    correctly mapped to me. *)

val audit_spot_check :
  t -> Mycelium_util.Rng.t -> samples:int -> bool
(** The second audit, as run by an honest device: sample random M1
    indices, verify each lookup, and verify M1/M2 consistency for it.
    Returns false as soon as any check fails. *)
