module Rng = Mycelium_util.Rng
module Pool = Mycelium_parallel.Pool
module Sha256 = Mycelium_crypto.Sha256
module Elgamal = Mycelium_crypto.Elgamal
module Merkle = Mycelium_crypto.Merkle
module Obs = Mycelium_obs.Obs

(* Mixnet observability (DESIGN.md §8): spans for setup and each
   forwarding stage of a query round, counters for onion layers peeled
   and bytes deposited at the aggregator's mailboxes, and a histogram
   of per-message anonymity-set sizes.  None of it touches the Rng or
   the protocol state, so results are identical with tracing on/off. *)
let m_deposited_bytes = Obs.Metrics.counter Obs.Names.mixnet_deposited_bytes
let m_layers_peeled = Obs.Metrics.counter Obs.Names.onion_layers_peeled
let m_dummies = Obs.Metrics.counter Obs.Names.mixnet_dummies_uploaded
let h_anonymity = Obs.Metrics.histogram Obs.Names.mixnet_anonymity_set

(* Growable int vector: the simulator's workhorse container.  Reused
   across rounds so steady-state forwarding allocates no per-slot
   boxes. *)
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let clear v = v.n <- 0
  let length v = v.n
  let get v i = v.a.(i)

  let push v x =
    if v.n >= Array.length v.a then begin
      let cap = max 16 (2 * Array.length v.a) in
      let a = Array.make cap 0 in
      Array.blit v.a 0 a 0 v.n;
      v.a <- a
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let to_array v = Array.sub v.a 0 v.n
end

type config = {
  n_devices : int;
  pseudonyms_per_device : int;
  hops : int;
  replicas : int;
  fraction : float;
  degree : int;
  malicious_fraction : float;
  churn : float;
  payload_bytes : int;
  fast_setup : bool;
  fast_keys : bool;
  verify_proofs : bool;
  verify_sample : int;
  anon_sample : int;
  seed : int64;
}

let default_config =
  {
    n_devices = 500;
    pseudonyms_per_device = 1;
    hops = 3;
    replicas = 2;
    fraction = 0.1;
    degree = 10;
    malicious_fraction = 0.02;
    churn = 0.;
    payload_bytes = 64;
    fast_setup = false;
    fast_keys = false;
    verify_proofs = true;
    verify_sample = 0;
    anon_sample = 0;
    seed = 1L;
  }

type device = {
  id : int;
  keys : (Elgamal.public_key * Elgamal.private_key) array;  (* one per pseudonym *)
  pseudonyms : bytes array;
  malicious : bool;
}

(* Observer bookkeeping, one byte tag plus two ints per mailbox slot
   (the former [slot_origin] variant, unboxed into the slot slab):
     0  Deposited            a = source device
     1  Forwarded_honest     a = device, b = C-round
     2  Forwarded_malicious  a = upstream sid
     3  Dummy_honest         a = device, b = C-round
     4  Dummy_malicious *)
let tag_deposited = 0
let tag_fwd_honest = 1
let tag_fwd_malicious = 2
let tag_dummy_honest = 3
let tag_dummy_malicious = 4

type t = {
  cfg : config;
  rng : Rng.t;
  devices : device array;
  vmap : Vmap.t;
  bulletin : Bulletin.t;
  beacon : bytes;
  mutable round : int;
  (* Flat path store: field f of path p lives at p_f.(p); hop pseudonyms
     at p_hops.(p*k .. p*k+k-1); the k hop keys then the destination AE
     key packed at key_arena[p*(k+1)*32 ..].  Link i of path p carries
     id p_base.(p) + i. *)
  mutable n_paths : int;
  mutable p_src : int array;
  mutable p_dst : int array;
  mutable p_msg : int array;
  mutable p_hops : int array;
  mutable p_base : int64 array;
  mutable key_arena : Bytes.t;
  (* Per-device forwarding duties, packed (pid lsl 4) lor stage; the
     key, in/out links and next pseudonym all derive from the path
     store, so a route entry is one immediate int. *)
  routes : Ivec.t array;
  mutable groups_cache : int array array option;
  mutable next_link : int64;
  (* Slot slab, reused across query rounds: sids restart at 0 each
     round and index these arrays.  Bodies live in two ping-pong
     arenas: the slot allocated as the j-th of its C-round owns bytes
     [j*body_len, (j+1)*body_len) of the round's arena. *)
  mutable next_sid : int;
  mutable cur_base : int;  (* first sid of the C-round held in arena_cur *)
  mutable body_len : int;
  mutable s_link : int64 array;
  mutable s_next : int array;  (* intrusive per-mailbox list, -1 ends *)
  mutable s_tag : Bytes.t;
  mutable s_a : int array;
  mutable s_b : int array;
  mutable arena_cur : Bytes.t;
  mutable arena_next : Bytes.t;
  mailbox_head : int array;  (* pseudonym -> newest sid, -1 empty *)
  touched : Ivec.t;  (* non-empty mailboxes, tracked at deposit time *)
  link_index : (int, int) Hashtbl.t;  (* link id -> sid, current C-round *)
  (* adversary view, reset per query round *)
  downloads : (int, int array) Hashtbl.t;  (* dev*k + stage-1 -> sids *)
  mutable delivered_sid : int array;  (* pid -> final-stage sid, -1 none *)
  scratch : Ivec.t;
  scratch2 : Ivec.t;
  mutable last_deliveries : (int * int * bytes) list;
  mutable fault_hook : (round:int -> source:int -> dest:int -> copy:int -> bool) option;
}

let beacon t = t.beacon
let vmap t = t.vmap
let bulletin t = t.bulletin
let is_malicious t i = t.devices.(i).malicious
let current_round t = t.round

(* Pseudonym numbers are device-major: device d owns [d*P, (d+1)*P). *)
let device_of t pseudo = pseudo / t.cfg.pseudonyms_per_device
let own_pseudo t dev = dev * t.cfg.pseudonyms_per_device
let sk_of t pseudo =
  snd t.devices.(device_of t pseudo).keys.(pseudo mod t.cfg.pseudonyms_per_device)

let create cfg =
  if cfg.n_devices < 2 then invalid_arg "Sim.create: need at least two devices";
  if cfg.hops < 1 then invalid_arg "Sim.create: need at least one hop";
  if cfg.hops > 15 then invalid_arg "Sim.create: at most 15 hops (packed route encoding)";
  if cfg.pseudonyms_per_device < 1 then invalid_arg "Sim.create: need at least one pseudonym";
  if cfg.verify_sample < 0 || cfg.anon_sample < 0 then
    invalid_arg "Sim.create: sampling strides must be non-negative";
  if cfg.fast_keys && not cfg.fast_setup then
    invalid_arg "Sim.create: fast_keys requires fast_setup (setup exercises PEnc)";
  let rng = Rng.create cfg.seed in
  let n_mal =
    int_of_float (Float.round (float_of_int cfg.n_devices *. cfg.malicious_fraction))
  in
  let mal_ids = Rng.sample_without_replacement rng n_mal cfg.n_devices in
  let mal_set = Hashtbl.create 16 in
  Array.iter (fun i -> Hashtbl.replace mal_set i ()) mal_ids;
  let p_count = cfg.pseudonyms_per_device in
  let keygen = if cfg.fast_keys then Elgamal.generate_insecure else Elgamal.generate in
  let devices =
    Array.init cfg.n_devices (fun id ->
        let keys = Array.init p_count (fun _ -> keygen rng) in
        {
          id;
          keys;
          pseudonyms = Array.map (fun (pk, _) -> Elgamal.fingerprint pk) keys;
          malicious = Hashtbl.mem mal_set id;
        })
  in
  let leaves =
    Array.init (cfg.n_devices * p_count) (fun i ->
        let d = devices.(i / p_count) and j = i mod p_count in
        {
          Vmap.pseudonym = d.pseudonyms.(j);
          pk = Elgamal.pub_to_bytes (fst d.keys.(j));
          device = d.id;
        })
  in
  let vmap =
    match Vmap.build ~max_pseudonyms_per_device:p_count leaves with
    | Ok v -> v
    | Error e -> failwith ("Sim.create: vmap: " ^ e)
  in
  let bulletin = Bulletin.create () in
  ignore (Bulletin.post bulletin ~author:"aggregator" (Vmap.roots_payload vmap));
  (* The beacon is fixed only after the map is committed (§3.4). *)
  let beacon = Sha256.digest (Bulletin.head_hash bulletin) in
  {
    cfg;
    rng;
    devices;
    vmap;
    bulletin;
    beacon;
    round = 0;
    n_paths = 0;
    p_src = [||];
    p_dst = [||];
    p_msg = [||];
    p_hops = [||];
    p_base = [||];
    key_arena = Bytes.create 0;
    routes = Array.init cfg.n_devices (fun _ -> Ivec.create ());
    groups_cache = None;
    next_link = 0L;
    next_sid = 0;
    cur_base = 0;
    body_len = 1;
    s_link = [||];
    s_next = [||];
    s_tag = Bytes.create 0;
    s_a = [||];
    s_b = [||];
    arena_cur = Bytes.create 0;
    arena_next = Bytes.create 0;
    mailbox_head = Array.make (cfg.n_devices * p_count) (-1);
    touched = Ivec.create ();
    link_index = Hashtbl.create 4096;
    downloads = Hashtbl.create 4096;
    delivered_sid = [||];
    scratch = Ivec.create ();
    scratch2 = Ivec.create ();
    last_deliveries = [];
    fault_hook = None;
  }
  |> fun t ->
  (* Footprint telemetry for the background sampler.  The source reads
     mutable sizing fields without locks: a torn read can only yield a
     slightly stale point, and the sampler never feeds back into the
     simulation.  Registration replaces the previous simulator's
     source, keeping the series pointed at the live instance. *)
  Obs.Sampler.register_source ~name:"mixnet" (fun () ->
      [
        (Obs.Names.mixnet_established_paths, float_of_int t.n_paths);
        ( Obs.Names.mixnet_arena_bytes,
          float_of_int (Bytes.length t.arena_cur + Bytes.length t.arena_next) );
        (Obs.Names.mixnet_key_bytes, float_of_int (Bytes.length t.key_arena));
        ( Obs.Names.mixnet_route_entries,
          float_of_int
            (Array.fold_left (fun acc v -> acc + Ivec.length v) 0 t.routes) );
        (Obs.Names.mixnet_mailboxes_in_use, float_of_int (Ivec.length t.touched));
      ]);
  t

let set_fault_hook t hook = t.fault_hook <- hook

let audit_all t =
  let ok = ref true in
  Array.iter
    (fun d ->
      if not d.malicious then begin
        if
          not
            (Vmap.audit_own_pseudonyms t.vmap ~device:d.id
               ~pseudonyms:(Array.to_list d.pseudonyms))
        then ok := false;
        if not (Vmap.audit_spot_check t.vmap t.rng ~samples:4) then ok := false
      end)
    t.devices;
  !ok

let online t _device = not (Rng.bernoulli t.rng t.cfg.churn)

(* ------------------------------------------------------------------ *)
(* Path store                                                          *)
(* ------------------------------------------------------------------ *)

let key_off t pid i = ((pid * (t.cfg.hops + 1)) + i) * Onion.layer_key_size
let hop_key t pid i = Bytes.sub t.key_arena (key_off t pid i) Onion.layer_key_size
let dest_key t pid = hop_key t pid t.cfg.hops

let ensure_path_capacity t =
  let k = t.cfg.hops in
  let cap = Array.length t.p_src in
  if t.n_paths >= cap then begin
    let cap' = max 64 (2 * cap) in
    let grow a = let b = Array.make cap' 0 in Array.blit a 0 b 0 cap; b in
    t.p_src <- grow t.p_src;
    t.p_dst <- grow t.p_dst;
    t.p_msg <- grow t.p_msg;
    t.p_hops <- (let b = Array.make (cap' * k) 0 in Array.blit t.p_hops 0 b 0 (cap * k); b);
    t.p_base <- (let b = Array.make cap' 0L in Array.blit t.p_base 0 b 0 cap; b);
    t.key_arena <-
      (let b = Bytes.create (cap' * (k + 1) * Onion.layer_key_size) in
       Bytes.blit t.key_arena 0 b 0 (Bytes.length t.key_arena);
       b)
  end

(* ------------------------------------------------------------------ *)
(* Path setup                                                          *)
(* ------------------------------------------------------------------ *)

type setup_stats = {
  paths_requested : int;
  paths_established : int;
  paths_failed : int;
  setup_rounds : int;
  complaints : int;
}

let default_targets t =
  (* Self-loop padding (§3.2): d messages to the device's own (first)
     pseudonym. *)
  Array.init t.cfg.n_devices (fun id -> Array.make t.cfg.degree (own_pseudo t id))

(* Run the telescoping extension for one path with real key exchanges.
   Relay delays/drops are sampled per traversed link; a malicious or
   persistently-offline relay during setup surfaces as a failed
   extension, which the source detects by timeout and reports.

   The candidate path occupies slot [t.n_paths] of the flat store while
   the handshake runs; only a successful extension commits it (and its
   route entries).  A failed slot is simply overwritten by the next
   attempt — but its Rng draws and link ids are consumed either way,
   exactly as the legacy record-based code behaved. *)
let establish_path t ~source ~dest ~msg_id =
  let k = t.cfg.hops in
  let hop_pseudos =
    Hopselect.draw_path t.rng ~beacon:t.beacon ~fraction:t.cfg.fraction ~hops:k
      ~total:(Vmap.size t.vmap)
  in
  ensure_path_capacity t;
  let pid = t.n_paths in
  Array.blit hop_pseudos 0 t.p_hops (pid * k) k;
  (* One contiguous fill draws the identical stream as k+1 separate
     32-byte draws: k hop keys, then the destination AE key. *)
  Rng.fill t.rng t.key_arena ~pos:(key_off t pid 0)
    ~len:((k + 1) * Onion.layer_key_size);
  let base = t.next_link in
  t.next_link <- Int64.add base (Int64.of_int (k + 1));
  let commit () =
    t.p_src.(pid) <- source;
    t.p_dst.(pid) <- dest;
    t.p_msg.(pid) <- msg_id;
    t.p_base.(pid) <- base;
    t.n_paths <- pid + 1;
    t.groups_cache <- None;
    for i = 0 to k - 1 do
      let dev = device_of t hop_pseudos.(i) in
      Ivec.push t.routes.(dev) ((pid lsl 4) lor (i + 1))
    done
  in
  if t.cfg.fast_setup then begin
    commit ();
    Ok pid
  end
  else begin
    let m1_root = Vmap.m1_root t.vmap in
    let lookup_pk who_looks idx =
      ignore who_looks;
      let l = Vmap.lookup t.vmap idx in
      if not (Vmap.verify_lookup ~m1_root ~index:idx l) then None
      else Vmap.pub_of_lookup l
    in
    let rec extend i =
      if i > k then Ok ()
      else begin
        (* The extension request relays over the established prefix;
           any relay that is offline for the whole exchange, or
           Byzantine and dropping, kills the extension. *)
        let relay_failure =
          (* A relay kills the extension if it stays offline through the
             exchange and its buffered retry (two consecutive samples at
             the churn rate). Byzantine relays follow the setup protocol
             — dropping here would only deny themselves observations. *)
          let failed = ref false in
          for j = 0 to i - 2 do
            let relay = device_of t hop_pseudos.(j) in
            if (not (online t relay)) && not (online t relay) then failed := true
          done;
          !failed
        in
        if relay_failure then Error (`Dropped_at i)
        else begin
          let looker = if i = 1 then source else hop_pseudos.(i - 2) in
          match lookup_pk looker hop_pseudos.(i - 1) with
          | None -> Error (`Bad_proof i)
          | Some hop_pk ->
            (* PEnc the fresh symmetric key to the hop; the hop decrypts
               and acknowledges. *)
            let key = hop_key t pid (i - 1) in
            let sealed = Elgamal.encrypt t.rng hop_pk key in
            let hop_sk = sk_of t hop_pseudos.(i - 1) in
            (match Elgamal.decrypt hop_sk sealed with
            | Some k' when Bytes.equal k' key -> extend (i + 1)
            | Some _ | None -> Error (`Bad_crypto i))
        end
      end
    in
    match extend 1 with
    | Error e -> Error e
    | Ok () -> (
      (* Final step: the last hop looks up the destination's key and the
         source establishes the end-to-end AE key (used for the §3.5
         inner layer). *)
      match lookup_pk hop_pseudos.(k - 1) dest with
      | None -> Error (`Bad_proof (k + 1))
      | Some dst_pk -> (
        let dkey = dest_key t pid in
        let sealed = Elgamal.encrypt t.rng dst_pk dkey in
        match Elgamal.decrypt (sk_of t dest) sealed with
        | Some k' when Bytes.equal k' dkey ->
          commit ();
          Ok pid
        | Some _ | None -> Error (`Bad_crypto (k + 1))))
  end

let setup_paths ?targets t =
  Obs.span "mixnet.setup" ~attrs:[ ("hops", Obs.Json.Int t.cfg.hops) ] @@ fun () ->
  let targets = match targets with Some x -> x | None -> default_targets t in
  let requested = ref 0 and established = ref 0 and failed = ref 0 and complaints = ref 0 in
  let next_msg = ref 0 in
  Array.iteri
    (fun source dests ->
      Array.iter
        (fun dest ->
          let msg_id = !next_msg in
          incr next_msg;
          for _replica = 1 to t.cfg.replicas do
            incr requested;
            match establish_path t ~source ~dest ~msg_id with
            | Ok _pid -> incr established
            | Error _ ->
              incr failed;
              incr complaints;
              ignore
                (Bulletin.post t.bulletin ~author:(Printf.sprintf "device-%d" source)
                   (Bytes.of_string "complaint: path setup dropped"))
          done)
        dests)
    targets;
  let setup_rounds = Model.telescoping_rounds ~hops:t.cfg.hops in
  t.round <- t.round + setup_rounds;
  {
    paths_requested = !requested;
    paths_established = !established;
    paths_failed = !failed;
    setup_rounds;
    complaints = !complaints;
  }

(* ------------------------------------------------------------------ *)
(* Mailboxes and C-round commits                                       *)
(* ------------------------------------------------------------------ *)

let ensure_slab t cap =
  let cur = Array.length t.s_next in
  if cap > cur then begin
    let cap' = max 1024 (max cap (2 * cur)) in
    t.s_link <- (let b = Array.make cap' 0L in Array.blit t.s_link 0 b 0 cur; b);
    t.s_next <- (let b = Array.make cap' (-1) in Array.blit t.s_next 0 b 0 cur; b);
    t.s_a <- (let b = Array.make cap' 0 in Array.blit t.s_a 0 b 0 cur; b);
    t.s_b <- (let b = Array.make cap' 0 in Array.blit t.s_b 0 b 0 cur; b);
    t.s_tag <-
      (let b = Bytes.make cap' '\x00' in
       Bytes.blit t.s_tag 0 b 0 (Bytes.length t.s_tag);
       b)
  end

let ensure_arena_next t len =
  if Bytes.length t.arena_next < len then begin
    let len' = max 4096 (max len (2 * Bytes.length t.arena_next)) in
    let b = Bytes.create len' in
    (* dummies already written this round must survive the growth *)
    Bytes.blit t.arena_next 0 b 0 (Bytes.length t.arena_next);
    t.arena_next <- b
  end

let swap_arenas t ~new_base =
  let tmp = t.arena_cur in
  t.arena_cur <- t.arena_next;
  t.arena_next <- tmp;
  t.cur_base <- new_base

(* Deposit slot [sid] (whose body is already in place in the incoming
   arena) into [pseudo]'s mailbox.  Non-empty mailboxes are tracked
   incrementally here, so the commit never rescans the mailbox array. *)
let mailbox_push t ~pseudo ~link sid =
  if t.mailbox_head.(pseudo) < 0 then Ivec.push t.touched pseudo;
  t.s_next.(sid) <- t.mailbox_head.(pseudo);
  t.mailbox_head.(pseudo) <- sid;
  t.s_link.(sid) <- link;
  Hashtbl.replace t.link_index (Int64.to_int link) sid;
  if Obs.enabled () then Obs.Metrics.add m_deposited_bytes t.body_len

let clear_mailboxes t =
  for i = 0 to Ivec.length t.touched - 1 do
    t.mailbox_head.(Ivec.get t.touched i) <- -1
  done;
  Ivec.clear t.touched;
  Hashtbl.clear t.link_index

(* O(1) slot lookup by link id, replacing the per-route linear scan of
   the device's mailbox lists.  Link ids are globally unique and a slot
   under link l only ever lands in the mailbox of the device holding
   the route entry for l, so the global index answers exactly the
   former own-mailbox search.  The [Int64.equal] re-check keeps the
   comparison typed end to end. *)
let find_slot t link =
  match Hashtbl.find_opt t.link_index (Int64.to_int link) with
  | Some sid when Int64.equal t.s_link.(sid) link -> Some sid
  | Some _ | None -> None

(* Commit this round's mailboxes to the bulletin (§3.4) and verify
   inclusion proofs, playing the devices' checks: every non-empty
   mailbox when [verify_sample <= 1], else a deterministic stride over
   them.  Tree building is sharded over the pool; each task hashes its
   mailbox's slots straight out of the body arena. *)
let commit_round t pool =
  let nb = Ivec.length t.touched in
  if nb > 0 then begin
    let boxes = Ivec.to_array t.touched in
    Array.sort Int.compare boxes;
    let verify = t.cfg.verify_proofs in
    let stride = if verify && t.cfg.verify_sample > 1 then t.cfg.verify_sample else 1 in
    let arena = t.arena_cur
    and blen = t.body_len
    and base = t.cur_base
    and s_next = t.s_next
    and head = t.mailbox_head in
    let jobs =
      Array.mapi (fun i pseudo -> (pseudo, verify && (stride = 1 || i mod stride = 0))) boxes
    in
    let results =
      Pool.map_array pool
        (fun (pseudo, sampled) ->
          let cnt =
            let c = ref 0 and sid = ref head.(pseudo) in
            while !sid >= 0 do
              incr c;
              sid := s_next.(!sid)
            done;
            !c
          in
          let hashes = Array.make cnt Merkle.empty_hash in
          let first_off = ref 0 in
          let sid = ref head.(pseudo) in
          for j = 0 to cnt - 1 do
            let off = (!sid - base) * blen in
            if j = 0 then first_off := off;
            hashes.(j) <- Merkle.leaf_hash_sub arena ~pos:off ~len:blen;
            sid := s_next.(!sid)
          done;
          let tree = Merkle.build_hashed hashes in
          let check =
            if sampled then Some (Merkle.prove tree 0, Bytes.sub arena !first_off blen)
            else None
          in
          (Merkle.root tree, check))
        jobs
    in
    let round_tree = Merkle.build (Array.map fst results) in
    ignore
      (Bulletin.post t.bulletin ~author:"aggregator"
         (Bytes.cat (Bytes.of_string (Printf.sprintf "round %d " t.round)) (Merkle.root round_tree)));
    Array.iter
      (fun (root, check) ->
        match check with
        | Some (proof, leaf) ->
          if not (Merkle.verify ~root ~leaf proof) then
            failwith "Sim.commit_round: aggregator produced an invalid proof"
        | None -> ())
      results
  end

let record_download t dev ~key =
  let p = t.cfg.pseudonyms_per_device in
  Ivec.clear t.scratch2;
  for j = 0 to p - 1 do
    let sid = ref t.mailbox_head.((dev * p) + j) in
    while !sid >= 0 do
      Ivec.push t.scratch2 !sid;
      sid := t.s_next.(!sid)
    done
  done;
  Hashtbl.replace t.downloads key (Ivec.to_array t.scratch2)

(* ------------------------------------------------------------------ *)
(* Forwarding                                                          *)
(* ------------------------------------------------------------------ *)

type round_stats = {
  messages_sent : int;
  delivered : int;
  lost : int;
  copies_delivered : int;
  copies_lost : int;
  dummies_uploaded : int;
  identified : int;
  anonymity_sets : int array;
  deposited_bytes : int;
  rounds_used : int;
}

(* Established paths grouped by logical message, in the iteration order
   of the legacy per-round hash table (same keys, same insertion
   sequence, so the replay — churn draws, fault-hook consults, stats
   order — is unchanged).  Paths only change at [setup_paths], so the
   grouping is cached. *)
let groups_of t =
  match t.groups_cache with
  | Some g -> g
  | None ->
    let by_message = Hashtbl.create 256 in
    for pid = t.n_paths - 1 downto 0 do
      let m = t.p_msg.(pid) in
      Hashtbl.replace by_message m
        (pid :: Option.value ~default:[] (Hashtbl.find_opt by_message m))
    done;
    let acc = ref [] in
    (* lint: allow determinism — unseeded Hashtbl iteration is reproducible
       for a fixed insertion sequence, and messages are inserted in a fixed
       order; the group order matches the legacy per-round construction *)
    Hashtbl.iter (fun _msg pids -> acc := Array.of_list pids :: !acc) by_message;
    let g = Array.of_list (List.rev !acc) in
    t.groups_cache <- Some g;
    g

(* ------------------------------------------------------------------ *)
(* Adversary analysis                                                  *)
(* ------------------------------------------------------------------ *)

(* Candidate-sender sets, scale-aware (DESIGN.md §12): [Full] for
   "no information", a sorted array while the set stays below the
   density threshold (~n/64, where the bitset becomes the cheaper
   representation), a bitset with a cached popcount above it.  At small
   n everything densifies immediately and the arithmetic matches the
   former all-bitset code ([Full] behaves as the all-ones set). *)
type cset = Full | Sparse of int array | Dense of Bytes.t * int

type analysis = {
  a_messages : int;
  a_delivered : int;
  a_lost : int;
  a_copies_delivered : int;
  a_copies_lost : int;
  a_identified : int;
  a_anon : int array;
}

let analyze t ~groups ~query_round ~n =
  let k = t.cfg.hops in
  let dense_threshold = max 8 (n / 64) in
  let set_bytes = (n + 7) / 8 in
  let popcount b =
    let c = ref 0 in
    for i = 0 to set_bytes - 1 do
      let v = ref (Bytes.get_uint8 b i) in
      while !v <> 0 do
        v := !v land (!v - 1);
        incr c
      done
    done;
    !c
  in
  let set_bit b x =
    Bytes.set_uint8 b (x / 8) (Bytes.get_uint8 b (x / 8) lor (1 lsl (x mod 8)))
  in
  let mem_set s x =
    match s with
    | Full -> true
    | Dense (b, _) -> Bytes.get_uint8 b (x / 8) land (1 lsl (x mod 8)) <> 0
    | Sparse a ->
      let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) = x then found := true
        else if a.(mid) < x then lo := mid + 1
        else hi := mid - 1
      done;
      !found
  in
  let of_sorted a =
    if Array.length a >= dense_threshold then begin
      let b = Bytes.make set_bytes '\x00' in
      Array.iter (set_bit b) a;
      Dense (b, Array.length a)
    end
    else Sparse a
  in
  let sort_dedup a =
    Array.sort Int.compare a;
    let m = ref 0 in
    Array.iteri
      (fun i x ->
        if i = 0 || x <> a.(!m - 1) then begin
          a.(!m) <- x;
          incr m
        end)
      a;
    Array.sub a 0 !m
  in
  let union_list sets =
    if Array.exists (fun s -> match s with Full -> true | _ -> false) sets then Full
    else if Array.for_all (fun s -> match s with Sparse _ -> true | _ -> false) sets
    then begin
      let total =
        Array.fold_left
          (fun acc s -> match s with Sparse a -> acc + Array.length a | _ -> acc)
          0 sets
      in
      let buf = Array.make (max 1 total) 0 in
      let pos = ref 0 in
      Array.iter
        (function
          | Sparse a ->
            Array.blit a 0 buf !pos (Array.length a);
            pos := !pos + Array.length a
          | _ -> ())
        sets;
      of_sorted (sort_dedup (Array.sub buf 0 total))
    end
    else begin
      let b = Bytes.make set_bytes '\x00' in
      Array.iter
        (function
          | Sparse a -> Array.iter (set_bit b) a
          | Dense (d, _) ->
            for i = 0 to set_bytes - 1 do
              Bytes.set_uint8 b i (Bytes.get_uint8 b i lor Bytes.get_uint8 d i)
            done
          | Full -> ())
        sets;
      Dense (b, popcount b)
    end
  in
  let sparse_filter a other =
    let buf = Array.make (max 1 (Array.length a)) 0 in
    let m = ref 0 in
    Array.iter
      (fun x ->
        if mem_set other x then begin
          buf.(!m) <- x;
          incr m
        end)
      a;
    Sparse (Array.sub buf 0 !m)
  in
  let inter2 a b =
    match (a, b) with
    | Full, x | x, Full -> x
    | Sparse sa, other -> sparse_filter sa other
    | other, Sparse sb -> sparse_filter sb other
    | Dense (da, _), Dense (db, _) ->
      let c = Bytes.create set_bytes in
      for i = 0 to set_bytes - 1 do
        Bytes.set_uint8 c i (Bytes.get_uint8 da i land Bytes.get_uint8 db i)
      done;
      Dense (c, popcount c)
  in
  let size_set = function Full -> n | Sparse a -> Array.length a | Dense (_, pc) -> pc in
  (* Backward closure (§6.3).  Memoized per (device, C-round): the
     candidates of every slot a device re-uploaded in round r depend
     only on its round-r download set, not on the slot.  The recursion
     terminates without a cycle-break: a malicious forward points at a
     strictly earlier sid, and a download set only contains sids from
     strictly earlier C-rounds. *)
  let memo = Hashtbl.create 1024 in
  let rec cand_sid sid =
    match Bytes.get_uint8 t.s_tag sid with
    | 0 (* Deposited *) -> Sparse [| t.s_a.(sid) |]
    | 2 (* Forwarded_malicious *) -> cand_sid t.s_a.(sid)
    | 1 | 3 (* Forwarded_honest / Dummy_honest *) ->
      let off = t.s_b.(sid) - query_round - 1 in
      if off < 0 || off >= k then Full else dev_round ((t.s_a.(sid) * k) + off)
    | _ (* Dummy_malicious *) -> Full
  and dev_round key =
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v =
        match Hashtbl.find_opt t.downloads key with
        | Some sids -> union_list (Array.map cand_sid sids)
        | None -> Full
      in
      Hashtbl.replace memo key v;
      v
  in
  (* Per logical message: delivery, anonymity, identification. *)
  let messages_sent = ref 0 and delivered = ref 0 and lost = ref 0 in
  let copies_delivered = ref 0 and copies_lost = ref 0 and identified = ref 0 in
  let anon = ref [] in
  let anon_stride = max 1 t.cfg.anon_sample in
  Array.iter
    (fun pids ->
      incr messages_sent;
      let n_arrived = ref 0 in
      Array.iter (fun pid -> if t.delivered_sid.(pid) >= 0 then incr n_arrived) pids;
      copies_delivered := !copies_delivered + !n_arrived;
      copies_lost := !copies_lost + Array.length pids - !n_arrived;
      if !n_arrived = 0 then incr lost
      else begin
        (* Replica intersection (§6.3): the adversary links the copies
           and intersects their candidate sets.  With [anon_sample > 1]
           only every stride-th delivered message is closed over; the
           delivery and identification accounting still covers all. *)
        if !delivered mod anon_stride = 0 then begin
          let acc = ref Full in
          Array.iter
            (fun pid ->
              let sid = t.delivered_sid.(pid) in
              if sid >= 0 then acc := inter2 !acc (cand_sid sid))
            pids;
          anon := min n (size_set !acc) :: !anon
        end;
        incr delivered
      end;
      (* Full identification: a replica path made of malicious hops. *)
      let fully_malicious =
        Array.exists
          (fun pid ->
            let all = ref true in
            for i = 0 to k - 1 do
              if not t.devices.(device_of t t.p_hops.((pid * k) + i)).malicious then
                all := false
            done;
            !all)
          pids
      in
      if fully_malicious then incr identified)
    groups;
  {
    a_messages = !messages_sent;
    a_delivered = !delivered;
    a_lost = !lost;
    a_copies_delivered = !copies_delivered;
    a_copies_lost = !copies_lost;
    a_identified = !identified;
    a_anon = Array.of_list !anon;
  }

let run_query_round_impl t ~payload_of =
  let k = t.cfg.hops in
  let query_round = t.round in
  let pool = Pool.default () in
  let ksz = Onion.layer_key_size in
  let groups = groups_of t in
  let ng = Array.length groups in
  (* Per-query-round lifecycle: sids restart at 0, the observer tables
     are emptied, delivery marks reset.  The slab, arenas and download
     table keep their high-water capacity, so repeated rounds reach a
     fixed footprint instead of growing without bound. *)
  t.next_sid <- 0;
  t.cur_base <- 0;
  Hashtbl.clear t.downloads;
  if Array.length t.delivered_sid < t.n_paths then
    t.delivered_sid <- Array.make (max 1 t.n_paths) (-1)
  else Array.fill t.delivered_sid 0 (Array.length t.delivered_sid) (-1);
  clear_mailboxes t;
  let deposits_count = ref 0 in
  (* ---- Round 0: deposits ----
     Three phases, so the result never depends on the domain count.
     Phase 1 (sequential) makes every Rng draw (sender churn) and
     fault-hook consult in the original iteration order and lays out
     the arena.  Phase 2 runs the expensive crypto — payload
     construction, inner AE layer, onion wrapping — on the pool,
     each task writing its copies' disjoint arena ranges; [payload_of]
     must be pure (see the mli).  Phase 3 (sequential) links the slots
     into the mailboxes in the original order. *)
  let g_online = Array.make (max 1 ng) false in
  let g_offs = Array.make (max 1 ng) [||] in  (* per-copy slot index, -1 dropped *)
  let dep_pid = Ivec.create () in
  Array.iteri
    (fun gi pids ->
      let p0 = pids.(0) in
      if online t (t.p_src.(p0)) then begin
        g_online.(gi) <- true;
        let offs = Array.make (Array.length pids) (-1) in
        Array.iteri
          (fun copy pid ->
            (* Injected transit loss: the copy vanishes on its first
               link (the replicas are the protocol's own redundancy
               against exactly this). *)
            let injected_drop =
              match t.fault_hook with
              | Some hook ->
                hook ~round:query_round ~source:(t.p_src.(pid)) ~dest:(t.p_dst.(pid)) ~copy
              | None -> false
            in
            if not injected_drop then begin
              offs.(copy) <- Ivec.length dep_pid;
              Ivec.push dep_pid pid
            end)
          pids;
        g_offs.(gi) <- offs
      end)
    groups;
  (* Probe the first sending group's payload once for the slot length;
     every slot of a round shares it, so arena offsets are just
     slot * body_len. *)
  let probe_plen =
    let r = ref (-1) and gi = ref 0 in
    while !r < 0 && !gi < ng do
      if g_online.(!gi) then begin
        let p0 = groups.(!gi).(0) in
        r := Bytes.length (payload_of ~source:(t.p_src.(p0)) ~dest:(t.p_dst.(p0)))
      end;
      incr gi
    done;
    !r
  in
  t.body_len <- (if probe_plen < 0 then 1 else probe_plen + Onion.inner_overhead);
  let n_dep = Ivec.length dep_pid in
  (* Capacity planning from the (round-invariant) path and route
     tables rather than this round's churn-dependent deposit counts:
     the slab and arenas hit their high-water marks in the first
     query round and [footprint] stays flat thereafter.  Stage [s]
     can deposit at most one slot per route entry tagged [s]. *)
  let stage_counts = Array.make (k + 1) 0 in
  Array.iter
    (fun rv ->
      for i = 0 to Ivec.length rv - 1 do
        let s = Ivec.get rv i land 0xF in
        stage_counts.(s) <- stage_counts.(s) + 1
      done)
    t.routes;
  ensure_slab t (t.n_paths + Array.fold_left ( + ) 0 stage_counts);
  ensure_arena_next t (t.n_paths * t.body_len);
  for i = 0 to n_dep - 1 do
    Bytes.set_uint8 t.s_tag i tag_deposited;
    t.s_a.(i) <- t.p_src.(Ivec.get dep_pid i)
  done;
  t.next_sid <- n_dep;
  let wrap_tasks =
    let acc = ref [] in
    Array.iteri
      (fun gi pids -> if g_online.(gi) then acc := (pids, g_offs.(gi)) :: !acc)
      groups;
    Array.of_list (List.rev !acc)
  in
  let blen = t.body_len
  and arena_out = t.arena_next
  and karena = t.key_arena
  and p_src = t.p_src
  and p_dst = t.p_dst in
  let wrap_res =
    Obs.span "mixnet.deposit" @@ fun () ->
    Pool.map_array pool
      (fun (pids, offs) ->
        let p0 = pids.(0) in
        let payload = payload_of ~source:p_src.(p0) ~dest:p_dst.(p0) in
        let plen = Bytes.length payload in
        (* Guard the arena: a task whose payload length disagrees with
           the probe writes nothing; the merge raises. *)
        if plen <> probe_plen then plen
        else begin
          Array.iteri
            (fun copy pid ->
              let slot = offs.(copy) in
              if slot >= 0 then begin
                let koff i = ((pid * (k + 1)) + i) * ksz in
                let dkey = Bytes.sub karena (koff k) ksz in
                let inner = Onion.seal_inner ~key:dkey ~round:query_round payload in
                let hop_keys = Array.init k (fun i -> Bytes.sub karena (koff i) ksz) in
                Onion.wrap_into ~hop_keys ~round:query_round ~inner ~dst:arena_out
                  ~dst_pos:(slot * blen)
              end)
            pids;
          plen
        end)
      wrap_tasks
  in
  Array.iter
    (fun plen ->
      if plen <> probe_plen then
        invalid_arg "Sim.run_query_round_with: payloads must have equal length")
    wrap_res;
  swap_arenas t ~new_base:0;
  for i = 0 to n_dep - 1 do
    let pid = Ivec.get dep_pid i in
    mailbox_push t ~pseudo:(t.p_hops.(pid * k)) ~link:(t.p_base.(pid)) i
  done;
  deposits_count := n_dep;
  commit_round t pool;
  t.round <- t.round + 1;
  (* ---- Rounds 1..k: forwarding ----
     Same three-phase shape: the sequential pass replays the exact Rng
     stream (churn draws, mixing shuffles, dummy bodies) and allocates
     sids in the original shuffled order; only the layer-peeling of
     honest forwards — pure symmetric crypto — runs on the pool,
     straight from the previous round's arena into the next one's. *)
  let dummies = ref 0 in
  for stage = 1 to k do
    Obs.span "mixnet.stage" ~attrs:[ ("stage", Obs.Json.Int stage) ] @@ fun () ->
    let new_base = t.next_sid in
    ensure_arena_next t (stage_counts.(stage) * t.body_len);
    let dep_route = Ivec.create () in  (* deposit order -> packed route *)
    let peel_pids = Ivec.create () in
    let peel_srcs = Ivec.create () in
    let peel_dsts = Ivec.create () in
    for dev = 0 to t.cfg.n_devices - 1 do
      Ivec.clear t.scratch;
      let rv = t.routes.(dev) in
      for i = 0 to Ivec.length rv - 1 do
        let e = Ivec.get rv i in
        if e land 0xF = stage then Ivec.push t.scratch e
      done;
      if Ivec.length t.scratch > 0 then begin
        let malicious = t.devices.(dev).malicious in
        if online t dev then begin
          record_download t dev ~key:((dev * k) + (stage - 1));
          (* Process in a random order: the mixing step. *)
          let expected = Ivec.to_array t.scratch in
          Rng.shuffle t.rng expected;
          Array.iter
            (fun e ->
              let pid = e lsr 4 in
              let in_link = Int64.add t.p_base.(pid) (Int64.of_int (stage - 1)) in
              let sid = t.next_sid in
              t.next_sid <- sid + 1;
              ensure_slab t t.next_sid;
              let off = (sid - new_base) * t.body_len in
              ensure_arena_next t (off + t.body_len);
              (match find_slot t in_link with
              | Some src_sid when not malicious ->
                Bytes.set_uint8 t.s_tag sid tag_fwd_honest;
                t.s_a.(sid) <- dev;
                t.s_b.(sid) <- t.round;
                Ivec.push peel_pids pid;
                Ivec.push peel_srcs src_sid;
                Ivec.push peel_dsts sid
              | Some src_sid ->
                (* Byzantine: reveal the mapping to the adversary and
                   covertly drop, masking with a dummy (§3.5). *)
                incr dummies;
                Bytes.set_uint8 t.s_tag sid tag_fwd_malicious;
                t.s_a.(sid) <- src_sid;
                Onion.dummy_into t.rng ~dst:t.arena_next ~dst_pos:off ~length:t.body_len
              | None ->
                (* Missing input: cover with a dummy so the traffic
                   pattern is unchanged (§3.5). *)
                incr dummies;
                if malicious then Bytes.set_uint8 t.s_tag sid tag_dummy_malicious
                else begin
                  Bytes.set_uint8 t.s_tag sid tag_dummy_honest;
                  t.s_a.(sid) <- dev;
                  t.s_b.(sid) <- t.round
                end;
                Onion.dummy_into t.rng ~dst:t.arena_next ~dst_pos:off ~length:t.body_len);
              Ivec.push dep_route e)
            expected
        end
      end
    done;
    let n_peel = Ivec.length peel_pids in
    let peel_jobs =
      Array.init n_peel (fun i ->
          (Ivec.get peel_pids i, Ivec.get peel_srcs i, Ivec.get peel_dsts i))
    in
    let arena_src = t.arena_cur
    and arena_dst = t.arena_next
    and blen = t.body_len
    and base_src = t.cur_base
    and karena = t.key_arena
    and st = stage - 1 in
    ignore
      (Pool.map_array pool
         (fun (pid, src_sid, dst_sid) ->
           let key = Bytes.sub karena (((pid * (k + 1)) + st) * ksz) ksz in
           Onion.peel_into ~key ~round:query_round ~src:arena_src
             ~src_pos:((src_sid - base_src) * blen)
             ~dst:arena_dst
             ~dst_pos:((dst_sid - new_base) * blen)
             blen)
         peel_jobs);
    if Obs.enabled () then Obs.Metrics.add m_layers_peeled n_peel;
    (* Clear processed mailboxes, link the new deposits in. *)
    clear_mailboxes t;
    swap_arenas t ~new_base;
    for i = 0 to Ivec.length dep_route - 1 do
      let e = Ivec.get dep_route i in
      let pid = e lsr 4 in
      let out_link = Int64.add t.p_base.(pid) (Int64.of_int stage) in
      let next_pseudo =
        if stage = k then t.p_dst.(pid) else t.p_hops.((pid * k) + stage)
      in
      mailbox_push t ~pseudo:next_pseudo ~link:out_link (new_base + i)
    done;
    deposits_count := !deposits_count + Ivec.length dep_route;
    commit_round t pool;
    t.round <- t.round + 1
  done;
  (* ---- Destinations pick up ----
     Slot lookup and replica dedup stay sequential in the original
     message order; the AE open of each found copy runs on the pool. *)
  let final_link pid = Int64.add t.p_base.(pid) (Int64.of_int k) in
  let open_pids = Ivec.create () and open_sids = Ivec.create () in
  Array.iter
    (fun pids ->
      Array.iter
        (fun pid ->
          match find_slot t (final_link pid) with
          | Some sid ->
            Ivec.push open_pids pid;
            Ivec.push open_sids sid
          | None -> ())
        pids)
    groups;
  let arena_in = t.arena_cur and base_in = t.cur_base and blen = t.body_len in
  let opened =
    Obs.span "mixnet.pickup" @@ fun () ->
    Pool.map_array pool
      (fun (pid, sid) ->
        let key = Bytes.sub karena (((pid * (k + 1)) + k) * ksz) ksz in
        let body = Bytes.sub arena_in ((sid - base_in) * blen) blen in
        Onion.open_inner ~key ~round:query_round body)
      (Array.init (Ivec.length open_pids) (fun i ->
           (Ivec.get open_pids i, Ivec.get open_sids i)))
  in
  let deliveries = ref [] in
  let next_open = ref 0 in
  Array.iter
    (fun pids ->
      let got_one = ref false in
      Array.iter
        (fun pid ->
          match find_slot t (final_link pid) with
          | None -> ()
          | Some sid -> (
            let result = opened.(!next_open) in
            incr next_open;
            match result with
            | Some body ->
              t.delivered_sid.(pid) <- sid;
              (* The destination deduplicates replica copies. *)
              if not !got_one then begin
                got_one := true;
                deliveries := (t.p_src.(pid), t.p_dst.(pid), body) :: !deliveries
              end
            | None -> ()))
        pids)
    groups;
  clear_mailboxes t;
  t.last_deliveries <- !deliveries;
  (* ---- adversary analysis ---- *)
  let n = t.cfg.n_devices in
  let stats = analyze t ~groups ~query_round ~n in
  t.round <- t.round + (k + 1);
  {
    messages_sent = stats.a_messages;
    delivered = stats.a_delivered;
    lost = stats.a_lost;
    copies_delivered = stats.a_copies_delivered;
    copies_lost = stats.a_copies_lost;
    dummies_uploaded = !dummies;
    identified = stats.a_identified;
    anonymity_sets = stats.a_anon;
    deposited_bytes = !deposits_count * t.body_len;
    rounds_used = Model.forwarding_rounds ~hops:k;
  }

let run_query_round_with t ~payload_of =
  Obs.span "mixnet.round" ~attrs:[ ("hops", Obs.Json.Int t.cfg.hops) ] @@ fun () ->
  let stats = run_query_round_impl t ~payload_of in
  if Obs.enabled () then begin
    Obs.Metrics.add m_dummies stats.dummies_uploaded;
    Array.iter (fun s -> Obs.Metrics.observe h_anonymity (float_of_int s)) stats.anonymity_sets
  end;
  stats

let run_query_round t ~payload =
  run_query_round_with t ~payload_of:(fun ~source:_ ~dest:_ -> payload)

let deliveries t = t.last_deliveries

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type footprint = {
  established_paths : int;
  route_entries : int;
  slot_capacity : int;
  arena_bytes : int;
  key_bytes : int;
  download_entries : int;
  link_index_entries : int;
  mailboxes_in_use : int;
}

let footprint t =
  {
    established_paths = t.n_paths;
    route_entries = Array.fold_left (fun acc v -> acc + Ivec.length v) 0 t.routes;
    slot_capacity = Array.length t.s_next;
    arena_bytes = Bytes.length t.arena_cur + Bytes.length t.arena_next;
    key_bytes = Bytes.length t.key_arena;
    download_entries = Hashtbl.length t.downloads;
    link_index_entries = Hashtbl.length t.link_index;
    mailboxes_in_use = Ivec.length t.touched;
  }
