module Rng = Mycelium_util.Rng
module Pool = Mycelium_parallel.Pool
module Sha256 = Mycelium_crypto.Sha256
module Elgamal = Mycelium_crypto.Elgamal
module Merkle = Mycelium_crypto.Merkle
module Obs = Mycelium_obs.Obs

(* Mixnet observability (DESIGN.md §8): spans for setup and each
   forwarding stage of a query round, counters for onion layers peeled
   and bytes deposited at the aggregator's mailboxes, and a histogram
   of per-message anonymity-set sizes.  None of it touches the Rng or
   the protocol state, so results are identical with tracing on/off. *)
let m_deposited_bytes = Obs.Metrics.counter "mixnet.deposited_bytes"
let m_layers_peeled = Obs.Metrics.counter "onion.layers_peeled"
let m_dummies = Obs.Metrics.counter "mixnet.dummies_uploaded"
let h_anonymity = Obs.Metrics.histogram "mixnet.anonymity_set"

type config = {
  n_devices : int;
  pseudonyms_per_device : int;
  hops : int;
  replicas : int;
  fraction : float;
  degree : int;
  malicious_fraction : float;
  churn : float;
  payload_bytes : int;
  fast_setup : bool;
  verify_proofs : bool;
  seed : int64;
}

let default_config =
  {
    n_devices = 500;
    pseudonyms_per_device = 1;
    hops = 3;
    replicas = 2;
    fraction = 0.1;
    degree = 10;
    malicious_fraction = 0.02;
    churn = 0.;
    payload_bytes = 64;
    fast_setup = false;
    verify_proofs = true;
    seed = 1L;
  }

type device = {
  id : int;
  keys : (Elgamal.public_key * Elgamal.private_key) array;  (* one per pseudonym *)
  pseudonyms : bytes array;
  malicious : bool;
}

type path = {
  source : int;  (* device id *)
  dest : int;  (* pseudonym number *)
  msg_id : int;  (* logical message; replicas share it *)
  path_hops : int array;  (* device ids *)
  keys : bytes array;  (* symmetric key per hop *)
  mutable dst_key : bytes;
  link_ids : int64 array;  (* link i carries path id link_ids.(i) *)
  mutable established : bool;
}

(* What a forwarder remembers from path setup (§3.4): incoming path id
   -> key, outgoing path id, next pseudonym, and the stage (how many
   hops from the source it sits). *)
type route_entry = { key : bytes; out_id : int64; next_pseudo : int; stage : int }

(* Observer bookkeeping: one record per mailbox slot. *)
type slot_origin =
  | Deposited of int  (* source device: round-0 deposits, visible links *)
  | Forwarded_honest of int * int  (* (device, round): candidates = its downloads *)
  | Forwarded_malicious of int  (* upstream slot id: mapping known to adversary *)
  | Dummy_honest of int * int
  | Dummy_malicious

type slot = { sid : int; link_id : int64; body : bytes }

type t = {
  cfg : config;
  rng : Rng.t;
  devices : device array;
  vmap : Vmap.t;
  bulletin : Bulletin.t;
  beacon : bytes;
  mutable round : int;
  mailboxes : slot list array;  (* indexed by pseudonym number *)
  routes : (int64, route_entry) Hashtbl.t array;  (* per device *)
  mutable paths : path list;
  mutable next_sid : int;
  mutable next_link : int64;
  (* adversary view *)
  origins : (int, slot_origin) Hashtbl.t;
  downloads : (int * int, int list) Hashtbl.t;  (* (device, round) -> sids *)
  mutable last_deliveries : (int * int * bytes) list;
  mutable fault_hook : (round:int -> source:int -> dest:int -> copy:int -> bool) option;
}

let beacon t = t.beacon
let vmap t = t.vmap
let bulletin t = t.bulletin
let is_malicious t i = t.devices.(i).malicious
let current_round t = t.round

(* Pseudonym numbers are device-major: device d owns [d*P, (d+1)*P). *)
let device_of t pseudo = pseudo / t.cfg.pseudonyms_per_device
let own_pseudo t dev = dev * t.cfg.pseudonyms_per_device
let sk_of t pseudo =
  snd t.devices.(device_of t pseudo).keys.(pseudo mod t.cfg.pseudonyms_per_device)

let create cfg =
  if cfg.n_devices < 2 then invalid_arg "Sim.create: need at least two devices";
  if cfg.hops < 1 then invalid_arg "Sim.create: need at least one hop";
  if cfg.pseudonyms_per_device < 1 then invalid_arg "Sim.create: need at least one pseudonym";
  let rng = Rng.create cfg.seed in
  let n_mal =
    int_of_float (Float.round (float_of_int cfg.n_devices *. cfg.malicious_fraction))
  in
  let mal_ids = Rng.sample_without_replacement rng n_mal cfg.n_devices in
  let mal_set = Hashtbl.create 16 in
  Array.iter (fun i -> Hashtbl.replace mal_set i ()) mal_ids;
  let p_count = cfg.pseudonyms_per_device in
  let devices =
    Array.init cfg.n_devices (fun id ->
        let keys = Array.init p_count (fun _ -> Elgamal.generate rng) in
        {
          id;
          keys;
          pseudonyms = Array.map (fun (pk, _) -> Elgamal.fingerprint pk) keys;
          malicious = Hashtbl.mem mal_set id;
        })
  in
  let leaves =
    Array.init (cfg.n_devices * p_count) (fun i ->
        let d = devices.(i / p_count) and j = i mod p_count in
        {
          Vmap.pseudonym = d.pseudonyms.(j);
          pk = Elgamal.pub_to_bytes (fst d.keys.(j));
          device = d.id;
        })
  in
  let vmap =
    match Vmap.build ~max_pseudonyms_per_device:p_count leaves with
    | Ok v -> v
    | Error e -> failwith ("Sim.create: vmap: " ^ e)
  in
  let bulletin = Bulletin.create () in
  ignore (Bulletin.post bulletin ~author:"aggregator" (Vmap.roots_payload vmap));
  (* The beacon is fixed only after the map is committed (§3.4). *)
  let beacon = Sha256.digest (Bulletin.head_hash bulletin) in
  {
    cfg;
    rng;
    devices;
    vmap;
    bulletin;
    beacon;
    round = 0;
    mailboxes = Array.make (cfg.n_devices * cfg.pseudonyms_per_device) [];
    routes = Array.init cfg.n_devices (fun _ -> Hashtbl.create 16);
    paths = [];
    next_sid = 0;
    next_link = 0L;
    origins = Hashtbl.create 4096;
    downloads = Hashtbl.create 4096;
    last_deliveries = [];
    fault_hook = None;
  }

let set_fault_hook t hook = t.fault_hook <- hook

let audit_all t =
  let ok = ref true in
  Array.iter
    (fun d ->
      if not d.malicious then begin
        if
          not
            (Vmap.audit_own_pseudonyms t.vmap ~device:d.id
               ~pseudonyms:(Array.to_list d.pseudonyms))
        then ok := false;
        if not (Vmap.audit_spot_check t.vmap t.rng ~samples:4) then ok := false
      end)
    t.devices;
  !ok

let fresh_link t =
  let v = t.next_link in
  t.next_link <- Int64.add v 1L;
  v

let online t _device = not (Rng.bernoulli t.rng t.cfg.churn)

(* ------------------------------------------------------------------ *)
(* Path setup                                                          *)
(* ------------------------------------------------------------------ *)

type setup_stats = {
  paths_requested : int;
  paths_established : int;
  paths_failed : int;
  setup_rounds : int;
  complaints : int;
}

let default_targets t =
  (* Self-loop padding (§3.2): d messages to the device's own (first)
     pseudonym. *)
  Array.init t.cfg.n_devices (fun id -> Array.make t.cfg.degree (own_pseudo t id))

(* Run the telescoping extension for one path with real key exchanges.
   Relay delays/drops are sampled per traversed link; a malicious or
   persistently-offline relay during setup surfaces as a failed
   extension, which the source detects by timeout and reports. *)
let establish_path t ~source ~dest ~msg_id =
  let k = t.cfg.hops in
  let hop_pseudos =
    Hopselect.draw_path t.rng ~beacon:t.beacon ~fraction:t.cfg.fraction ~hops:k
      ~total:(Vmap.size t.vmap)
  in
  let path =
    {
      source;
      dest;
      msg_id;
      path_hops = Array.copy hop_pseudos;
      keys = Array.init k (fun _ -> Rng.bytes t.rng Onion.layer_key_size);
      dst_key = Rng.bytes t.rng Onion.layer_key_size;
      link_ids = Array.init (k + 1) (fun _ -> fresh_link t);
      established = false;
    }
  in
  if t.cfg.fast_setup then begin
    path.established <- true;
    Ok path
  end
  else begin
    let m1_root = Vmap.m1_root t.vmap in
    let lookup_pk who_looks idx =
      ignore who_looks;
      let l = Vmap.lookup t.vmap idx in
      if not (Vmap.verify_lookup ~m1_root ~index:idx l) then None
      else Vmap.pub_of_lookup l
    in
    let rec extend i =
      if i > k then Ok ()
      else begin
        (* The extension request relays over the established prefix;
           any relay that is offline for the whole exchange, or
           Byzantine and dropping, kills the extension. *)
        let relay_failure =
          (* A relay kills the extension if it stays offline through the
             exchange and its buffered retry (two consecutive samples at
             the churn rate). Byzantine relays follow the setup protocol
             — dropping here would only deny themselves observations. *)
          let failed = ref false in
          for j = 0 to i - 2 do
            let relay = t.devices.(device_of t path.path_hops.(j)) in
            if (not (online t relay.id)) && not (online t relay.id) then failed := true
          done;
          !failed
        in
        if relay_failure then Error (`Dropped_at i)
        else begin
          let looker = if i = 1 then source else path.path_hops.(i - 2) in
          match lookup_pk looker hop_pseudos.(i - 1) with
          | None -> Error (`Bad_proof i)
          | Some hop_pk ->
            (* PEnc the fresh symmetric key to the hop; the hop decrypts
               and acknowledges. *)
            let sealed = Elgamal.encrypt t.rng hop_pk path.keys.(i - 1) in
            let hop_sk = sk_of t path.path_hops.(i - 1) in
            (match Elgamal.decrypt hop_sk sealed with
            | Some key when Bytes.equal key path.keys.(i - 1) -> extend (i + 1)
            | Some _ | None -> Error (`Bad_crypto i))
        end
      end
    in
    match extend 1 with
    | Error e -> Error e
    | Ok () -> (
      (* Final step: the last hop looks up the destination's key and the
         source establishes the end-to-end AE key (used for the §3.5
         inner layer). *)
      match lookup_pk path.path_hops.(k - 1) dest with
      | None -> Error (`Bad_proof (k + 1))
      | Some dst_pk -> (
        let sealed = Elgamal.encrypt t.rng dst_pk path.dst_key in
        match Elgamal.decrypt (sk_of t dest) sealed with
        | Some key when Bytes.equal key path.dst_key ->
          path.established <- true;
          Ok path
        | Some _ | None -> Error (`Bad_crypto (k + 1))))
  end
  |> function
  | Ok _ when path.established -> Ok path
  | Ok _ -> Error `Incomplete
  | Error e -> Error e

let install_routes t path =
  let k = t.cfg.hops in
  for i = 0 to k - 1 do
    let dev = device_of t path.path_hops.(i) in
    let next_pseudo = if i = k - 1 then path.dest else path.path_hops.(i + 1) in
    Hashtbl.replace t.routes.(dev)
      path.link_ids.(i)
      { key = path.keys.(i); out_id = path.link_ids.(i + 1); next_pseudo; stage = i + 1 }
  done

let setup_paths ?targets t =
  Obs.span "mixnet.setup" ~attrs:[ ("hops", Obs.Json.Int t.cfg.hops) ] @@ fun () ->
  let targets = match targets with Some x -> x | None -> default_targets t in
  let requested = ref 0 and established = ref 0 and failed = ref 0 and complaints = ref 0 in
  let next_msg = ref 0 in
  Array.iteri
    (fun source dests ->
      Array.iter
        (fun dest ->
          let msg_id = !next_msg in
          incr next_msg;
          for _replica = 1 to t.cfg.replicas do
            incr requested;
            match establish_path t ~source ~dest ~msg_id with
            | Ok path ->
              incr established;
              install_routes t path;
              t.paths <- path :: t.paths
            | Error _ ->
              incr failed;
              incr complaints;
              ignore
                (Bulletin.post t.bulletin ~author:(Printf.sprintf "device-%d" source)
                   (Bytes.of_string "complaint: path setup dropped"))
          done)
        dests)
    targets;
  let setup_rounds = Model.telescoping_rounds ~hops:t.cfg.hops in
  t.round <- t.round + setup_rounds;
  {
    paths_requested = !requested;
    paths_established = !established;
    paths_failed = !failed;
    setup_rounds;
    complaints = !complaints;
  }

(* ------------------------------------------------------------------ *)
(* Forwarding                                                          *)
(* ------------------------------------------------------------------ *)

type round_stats = {
  messages_sent : int;
  delivered : int;
  lost : int;
  copies_delivered : int;
  copies_lost : int;
  dummies_uploaded : int;
  identified : int;
  anonymity_sets : int array;
  rounds_used : int;
}

let fresh_sid t =
  let v = t.next_sid in
  t.next_sid <- v + 1;
  v

let deposit t ~pseudo ~link_id ~body ~origin =
  if Obs.enabled () then Obs.Metrics.add m_deposited_bytes (Bytes.length body);
  let sid = fresh_sid t in
  Hashtbl.replace t.origins sid origin;
  t.mailboxes.(pseudo) <- { sid; link_id; body } :: t.mailboxes.(pseudo);
  sid

(* Commit this round's mailboxes to the bulletin (§3.4) and optionally
   verify one inclusion proof per non-empty mailbox, playing the
   devices' checks. *)
let commit_round t =
  let nonempty =
    Array.to_seq t.mailboxes
    |> Seq.filter (fun slots -> slots <> [])
    |> Seq.map (fun slots -> Array.of_list (List.map (fun s -> s.body) slots))
    |> Array.of_seq
  in
  if Array.length nonempty > 0 then begin
    let mailbox_trees = Array.map Merkle.build nonempty in
    let round_tree = Merkle.build (Array.map Merkle.root mailbox_trees) in
    ignore
      (Bulletin.post t.bulletin ~author:"aggregator"
         (Bytes.cat (Bytes.of_string (Printf.sprintf "round %d " t.round)) (Merkle.root round_tree)));
    if t.cfg.verify_proofs then
      Array.iteri
        (fun i tree ->
          let proof = Merkle.prove tree 0 in
          if not (Merkle.verify ~root:(Merkle.root tree) ~leaf:nonempty.(i).(0) proof) then
            failwith "Sim.commit_round: aggregator produced an invalid proof")
        mailbox_trees
  end

let record_download t dev sids = Hashtbl.replace t.downloads (dev, t.round) sids

let run_query_round_impl t ~payload_of =
  let k = t.cfg.hops in
  let query_round = t.round in
  let pool = Pool.default () in
  (* Group established paths by logical message. *)
  let by_message = Hashtbl.create 256 in
  List.iter
    (fun p ->
      if p.established then
        Hashtbl.replace by_message p.msg_id
          (p :: Option.value ~default:[] (Hashtbl.find_opt by_message p.msg_id)))
    t.paths;
  (* Round 0: deposits, in three phases so the result never depends on
     the domain count.  Phase 1 (sequential) makes every Rng draw
     (sender churn) and fault-hook consult in the original iteration
     order.  Phase 2 runs the expensive crypto — payload construction,
     inner AE layer, onion wrapping — on the pool; [payload_of] must be
     pure (see the mli).  Phase 3 (sequential) deposits the surviving
     copies in the original order, so sid allocation is unchanged. *)
  let msg_groups = ref [] in
  (* lint: allow determinism — unseeded Hashtbl iteration is reproducible
     for a fixed insertion sequence, and messages are inserted in sid
     order; phase 3 re-sorts deposits into the original order anyway *)
  Hashtbl.iter
    (fun _msg paths ->
      match paths with
      | [] -> ()
      | first :: _ ->
        if online t first.source then begin
          let copies =
            List.mapi
              (fun copy p ->
                (* Injected transit loss: the copy vanishes on its first
                   link (the replicas are the protocol's own redundancy
                   against exactly this). *)
                let injected_drop =
                  match t.fault_hook with
                  | Some hook -> hook ~round:query_round ~source:p.source ~dest:p.dest ~copy
                  | None -> false
                in
                (p, injected_drop))
              paths
          in
          msg_groups := copies :: !msg_groups
        end)
    by_message;
  let built =
    Obs.span "mixnet.deposit" @@ fun () ->
    Pool.map_array pool
      (fun copies ->
        match copies with
        | [] -> []
        | (first, _) :: _ ->
          (* Replica copies share one logical payload; each copy seals
             and wraps it under its own path keys.  The inner layer is
             computed for dropped copies too: the dummy length probe
             below must see it, exactly as the sequential code did. *)
          let payload = payload_of ~source:first.source ~dest:first.dest in
          List.map
            (fun (p, dropped) ->
              let inner = Onion.seal_inner ~key:p.dst_key ~round:query_round payload in
              let onion =
                if dropped then None
                else Some (Onion.wrap ~hop_keys:(Array.to_list p.keys) ~round:query_round inner)
              in
              (p, Bytes.length payload, Bytes.length inner, onion))
            copies)
      (Array.of_list (List.rev !msg_groups))
  in
  let payload_len = ref None in
  (* Probe one payload for the dummy length. *)
  let body_len = ref 0 in
  Array.iter
    (fun copies ->
      List.iter
        (fun (p, plen, inner_len, onion) ->
          (match !payload_len with
          | None -> payload_len := Some plen
          | Some l ->
            if l <> plen then
              invalid_arg "Sim.run_query_round_with: payloads must have equal length");
          if !body_len = 0 then body_len := inner_len;
          match onion with
          | None -> ()
          | Some onion ->
            ignore
              (deposit t ~pseudo:p.path_hops.(0) ~link_id:p.link_ids.(0) ~body:onion
                 ~origin:(Deposited p.source)))
        copies)
    built;
  let body_len = max 1 !body_len in
  commit_round t;
  t.round <- t.round + 1;
  let dummies = ref 0 in
  (* Rounds 1..k: forwarding. A device fetches all of its pseudonyms'
     mailboxes. *)
  for stage = 1 to k do
    Obs.span "mixnet.stage" ~attrs:[ ("stage", Obs.Json.Int stage) ] @@ fun () ->
    (* Same three-phase shape as round 0: the sequential pass replays
       the exact Rng stream (churn draws, mixing shuffles, dummy bodies)
       and allocates sids in the original shuffled order; only the
       layer-peeling of honest forwards — pure symmetric crypto — is
       deferred to the pool and patched back in below. *)
    let deposits = ref [] in
    let peel_tasks = ref [] in
    let n_peel = ref 0 in
    Array.iteri
      (fun dev (_ : device) ->
        let slots =
          List.concat
            (List.init t.cfg.pseudonyms_per_device (fun j ->
                 t.mailboxes.(own_pseudo t dev + j)))
        in
        let expected =
          (* lint: allow determinism — per-device route table, deterministic
             insertion sequence; fold order is reproducible run to run *)
          Hashtbl.fold
            (fun link_id entry acc -> if entry.stage = stage then (link_id, entry) :: acc else acc)
            t.routes.(dev) []
        in
        if expected <> [] then begin
          let device = t.devices.(dev) in
          if online t dev then begin
            record_download t dev (List.map (fun s -> s.sid) slots);
            (* Process in a random order: the mixing step. *)
            let expected = Array.of_list expected in
            Rng.shuffle t.rng expected;
            Array.iter
              (fun (link_id, entry) ->
                let found = List.find_opt (fun s -> s.link_id = link_id) slots in
                match found with
                | Some s when not device.malicious ->
                  let sid = fresh_sid t in
                  Hashtbl.replace t.origins sid (Forwarded_honest (dev, t.round));
                  let idx = !n_peel in
                  incr n_peel;
                  peel_tasks := (entry.key, s.body) :: !peel_tasks;
                  deposits := (entry.next_pseudo, entry.out_id, `Peel idx, sid) :: !deposits
                | Some s ->
                  (* Byzantine: reveal the mapping to the adversary and
                     covertly drop, masking with a dummy (§3.5). *)
                  incr dummies;
                  let sid = fresh_sid t in
                  Hashtbl.replace t.origins sid (Forwarded_malicious s.sid);
                  deposits :=
                    (entry.next_pseudo, entry.out_id, `Body (Onion.dummy t.rng ~length:body_len), sid)
                    :: !deposits
                | None when not device.malicious ->
                  (* Missing input: cover with a dummy so the traffic
                     pattern is unchanged (§3.5). *)
                  incr dummies;
                  let sid = fresh_sid t in
                  Hashtbl.replace t.origins sid (Dummy_honest (dev, t.round));
                  deposits :=
                    (entry.next_pseudo, entry.out_id, `Body (Onion.dummy t.rng ~length:body_len), sid)
                    :: !deposits
                | None ->
                  incr dummies;
                  let sid = fresh_sid t in
                  Hashtbl.replace t.origins sid Dummy_malicious;
                  deposits :=
                    (entry.next_pseudo, entry.out_id, `Body (Onion.dummy t.rng ~length:body_len), sid)
                    :: !deposits)
              expected
          end
        end)
      t.devices;
    let peeled =
      Pool.map_array pool
        (fun (key, body) -> Onion.peel_layer ~key ~round:query_round body)
        (Array.of_list (List.rev !peel_tasks))
    in
    if Obs.enabled () then Obs.Metrics.add m_layers_peeled (Array.length peeled);
    (* Clear processed mailboxes, apply deposits. *)
    Array.iteri (fun i _ -> t.mailboxes.(i) <- []) t.mailboxes;
    List.iter
      (fun (pseudo, link_id, body, sid) ->
        let body = match body with `Body b -> b | `Peel i -> peeled.(i) in
        if Obs.enabled () then Obs.Metrics.add m_deposited_bytes (Bytes.length body);
        t.mailboxes.(pseudo) <- { sid; link_id; body } :: t.mailboxes.(pseudo))
      !deposits;
    commit_round t;
    t.round <- t.round + 1
  done;
  (* Destinations pick up.  Slot lookup and replica dedup stay
     sequential in the original message order; the AE open of each
     found copy runs on the pool. *)
  let delivered_sids = Hashtbl.create 256 in
  let deliveries = ref [] in
  let pickup = ref [] in
  (* lint: allow determinism — iteration over messages inserted in sid
     order; delivery is re-sequenced by the sequential deposit phase *)
  Hashtbl.iter
    (fun _msg paths ->
      let entries =
        List.map
          (fun p ->
            let final_link = p.link_ids.(k) in
            (p, List.find_opt (fun s -> s.link_id = final_link) t.mailboxes.(p.dest)))
          paths
      in
      pickup := entries :: !pickup)
    by_message;
  let pickup = List.rev !pickup in
  let opened =
    Obs.span "mixnet.pickup" @@ fun () ->
    Pool.map_array pool
      (fun (key, body) -> Onion.open_inner ~key ~round:query_round body)
      (Array.of_list
         (List.concat_map
            (List.filter_map (fun (p, slot) ->
                 Option.map (fun s -> (p.dst_key, s.body)) slot))
            pickup))
  in
  let next_open = ref 0 in
  List.iter
    (fun entries ->
      let got_one = ref false in
      List.iter
        (fun ((p : path), slot) ->
          match slot with
          | None -> ()
          | Some s -> (
            let result = opened.(!next_open) in
            incr next_open;
            match result with
            | Some body ->
              Hashtbl.replace delivered_sids p.link_ids.(k) s.sid;
              (* The destination deduplicates replica copies. *)
              if not !got_one then begin
                got_one := true;
                deliveries := (p.source, p.dest, body) :: !deliveries
              end
            | None -> ()))
        entries)
    pickup;
  Array.iteri (fun i _ -> t.mailboxes.(i) <- []) t.mailboxes;
  t.last_deliveries <- !deliveries;
  (* ---- adversary analysis ---- *)
  let n = t.cfg.n_devices in
  let set_bytes = (n + 7) / 8 in
  let memo = Hashtbl.create 1024 in
  let singleton i =
    let b = Bytes.make set_bytes '\x00' in
    Bytes.set_uint8 b (i / 8) (1 lsl (i mod 8));
    b
  in
  let union a b =
    let out = Bytes.create set_bytes in
    for i = 0 to set_bytes - 1 do
      Bytes.set_uint8 out i (Bytes.get_uint8 a i lor Bytes.get_uint8 b i)
    done;
    out
  in
  let inter a b =
    let out = Bytes.create set_bytes in
    for i = 0 to set_bytes - 1 do
      Bytes.set_uint8 out i (Bytes.get_uint8 a i land Bytes.get_uint8 b i)
    done;
    out
  in
  let popcount b =
    let c = ref 0 in
    for i = 0 to set_bytes - 1 do
      let v = ref (Bytes.get_uint8 b i) in
      while !v <> 0 do
        v := !v land (!v - 1);
        incr c
      done
    done;
    !c
  in
  let full =
    let b = Bytes.make set_bytes '\xff' in
    b
  in
  let rec candidates sid =
    match Hashtbl.find_opt memo sid with
    | Some v -> v
    | None ->
      Hashtbl.replace memo sid full (* break cycles conservatively *);
      let v =
        match Hashtbl.find_opt t.origins sid with
        | Some (Deposited src) -> singleton src
        | Some (Forwarded_malicious upstream) -> candidates upstream
        | Some (Forwarded_honest (dev, round)) | Some (Dummy_honest (dev, round)) -> (
          match Hashtbl.find_opt t.downloads (dev, round) with
          | Some sids ->
            List.fold_left
              (fun acc s -> union acc (candidates s))
              (Bytes.make set_bytes '\x00')
              sids
          | None -> full)
        | Some Dummy_malicious | None -> full
      in
      Hashtbl.replace memo sid v;
      v
  in
  (* Per logical message: delivery, anonymity, identification. *)
  let messages_sent = ref 0 and delivered = ref 0 and lost = ref 0 in
  let copies_delivered = ref 0 and copies_lost = ref 0 and identified = ref 0 in
  let anon = ref [] in
  (* lint: allow determinism — per-message counters commute; the anon list
     is only consumed through its sorted summary statistics *)
  Hashtbl.iter
    (fun _msg paths ->
      incr messages_sent;
      let arrived =
        List.filter_map (fun p -> Hashtbl.find_opt delivered_sids p.link_ids.(k)) paths
      in
      copies_delivered := !copies_delivered + List.length arrived;
      copies_lost := !copies_lost + List.length paths - List.length arrived;
      if arrived = [] then incr lost
      else begin
        incr delivered;
        (* Replica intersection (§6.3): the adversary links the copies
           and intersects their candidate sets. *)
        let sets = List.map candidates arrived in
        let inter_set = List.fold_left inter full sets in
        anon := min n (popcount inter_set) :: !anon
      end;
      (* Full identification: a replica path made of malicious hops. *)
      let fully_malicious =
        List.exists
          (fun p -> Array.for_all (fun h -> t.devices.(device_of t h).malicious) p.path_hops)
          paths
      in
      if fully_malicious then incr identified)
    by_message;
  (* Account for the response direction too: a query round is 2k+2
     C-rounds in total; we simulated the outbound k+1. *)
  t.round <- t.round + (k + 1);
  {
    messages_sent = !messages_sent;
    delivered = !delivered;
    lost = !lost;
    copies_delivered = !copies_delivered;
    copies_lost = !copies_lost;
    dummies_uploaded = !dummies;
    identified = !identified;
    anonymity_sets = Array.of_list !anon;
    rounds_used = Model.forwarding_rounds ~hops:k;
  }

let run_query_round_with t ~payload_of =
  Obs.span "mixnet.round" ~attrs:[ ("hops", Obs.Json.Int t.cfg.hops) ] @@ fun () ->
  let stats = run_query_round_impl t ~payload_of in
  if Obs.enabled () then begin
    Obs.Metrics.add m_dummies stats.dummies_uploaded;
    Array.iter (fun s -> Obs.Metrics.observe h_anonymity (float_of_int s)) stats.anonymity_sets
  end;
  stats

let run_query_round t ~payload =
  run_query_round_with t ~payload_of:(fun ~source:_ ~dest:_ -> payload)

let deliveries t = t.last_deliveries
