module Chacha20 = Mycelium_crypto.Chacha20
module Aead = Mycelium_crypto.Aead
module Rng = Mycelium_util.Rng

let layer_key_size = 32

let seal_inner ~key ~round msg = Aead.seal ~key ~round msg

let open_inner ~key ~round ct = Aead.open_ ~key ~round ct

let inner_overhead = Aead.overhead

let add_layer ~key ~round msg =
  Chacha20.encrypt ~key ~nonce:(Chacha20.nonce_of_round round) msg

let peel_layer = add_layer (* XOR stream: involutive *)

let peel_into ~key ~round ~src ~src_pos ~dst ~dst_pos len =
  Chacha20.xor_into ~key ~nonce:(Chacha20.nonce_of_round round) ~src ~src_pos ~dst
    ~dst_pos len

let wrap ~hop_keys ~round inner =
  (* The first hop peels first, so its layer goes on last. *)
  List.fold_left (fun acc key -> add_layer ~key ~round acc) inner (List.rev hop_keys)

let wrap_into ~hop_keys ~round ~inner ~dst ~dst_pos =
  (* Same layering as [wrap] but into a caller-provided slice: copy the
     inner ciphertext once, then XOR each layer in place (the stream
     kernel is aliasing-safe). *)
  let len = Bytes.length inner in
  Bytes.blit inner 0 dst dst_pos len;
  for i = Array.length hop_keys - 1 downto 0 do
    peel_into ~key:hop_keys.(i) ~round ~src:dst ~src_pos:dst_pos ~dst ~dst_pos len
  done

let unwrap ~hop_keys ~round ct =
  List.fold_left (fun acc key -> peel_layer ~key ~round acc) ct hop_keys

let dummy rng ~length = Rng.bytes rng length

let dummy_into rng ~dst ~dst_pos ~length = Rng.fill rng dst ~pos:dst_pos ~len:length
