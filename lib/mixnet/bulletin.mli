(** The public bulletin board (assumption 5 of §3.1): an append-only,
    hash-chained log that prevents the aggregator from equivocating.
    The paper suggests a blockchain; for the simulation a single
    authoritative log with hash chaining gives the property that
    matters — all honest parties see the same sequence, and any
    retroactive edit changes the head hash. *)

type t

type entry = {
  seq : int;
  author : string;
  payload : bytes;
  prev_hash : bytes;
  hash : bytes;
}

val create : unit -> t

val post : t -> author:string -> bytes -> entry
(** Append and return the new entry. *)

val equal : t -> t -> bool
(** Same length and head hash — the chained hash commits to the whole
    log. *)

val length : t -> int
val get : t -> int -> entry option
val head_hash : t -> bytes

val entries_since : t -> int -> entry list
(** All entries with [seq >= n], oldest first. *)

val find : t -> f:(entry -> bool) -> entry option
(** Most recent entry satisfying [f]. *)

val verify_chain : t -> bool
(** Recompute the hash chain; false if the log was tampered with. *)
