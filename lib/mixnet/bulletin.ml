module Sha256 = Mycelium_crypto.Sha256

type entry = { seq : int; author : string; payload : bytes; prev_hash : bytes; hash : bytes }

type t = { mutable log : entry list (* newest first *); mutable n : int }

let genesis_hash = Sha256.digest_string "mycelium:bulletin:genesis"

let create () = { log = []; n = 0 }

let entry_hash ~seq ~author ~payload ~prev_hash =
  let ctx = Sha256.init () in
  Sha256.update_string ctx (string_of_int seq);
  Sha256.update_string ctx "|";
  Sha256.update_string ctx author;
  Sha256.update_string ctx "|";
  Sha256.update ctx payload;
  Sha256.update ctx prev_hash;
  Sha256.finalize ctx

let head_hash t = match t.log with [] -> genesis_hash | e :: _ -> e.hash

let post t ~author payload =
  let seq = t.n in
  let prev_hash = head_hash t in
  let e = { seq; author; payload; prev_hash; hash = entry_hash ~seq ~author ~payload ~prev_hash } in
  t.log <- e :: t.log;
  t.n <- t.n + 1;
  e

let length t = t.n

(* The head hash chains over every entry, so equal heads at equal
   length mean identical logs. *)
let equal a b = Int.equal a.n b.n && Bytes.equal (head_hash a) (head_hash b)

let get t seq = List.find_opt (fun e -> e.seq = seq) t.log

let entries_since t n = List.rev (List.filter (fun e -> e.seq >= n) t.log)

let find t ~f = List.find_opt f t.log

let verify_chain t =
  let rec go = function
    | [] -> true
    | [ e ] ->
      Bytes.equal e.prev_hash genesis_hash
      && Bytes.equal e.hash (entry_hash ~seq:e.seq ~author:e.author ~payload:e.payload ~prev_hash:e.prev_hash)
    | e :: (prev :: _ as rest) ->
      Bytes.equal e.prev_hash prev.hash
      && Bytes.equal e.hash (entry_hash ~seq:e.seq ~author:e.author ~payload:e.payload ~prev_hash:e.prev_hash)
      && go rest
  in
  go t.log
