(** Discrete C-round simulation of Mycelium's communication layer
    (§3.2–§3.5).

    One process plays every device plus the aggregator. Time advances
    in C-rounds; messages deposited in a pseudonym's mailbox during
    round t are picked up in round t+1 (or later, if the owner is
    offline — the aggregator buffers). The aggregator commits a Merkle
    tree over every mailbox and a round tree over those to the bulletin
    board each round, and devices verify inclusion proofs for their
    batches, so dropped messages are detectable (§3.4).

    Fault injection: a configurable fraction of devices is Byzantine
    (they collude with the aggregator-side observer, reveal their
    mix mappings, and drop the messages they forward — covering the
    drop with a §3.5 dummy so the traffic pattern stays intact), and
    every device goes offline each round with the churn probability.

    The adversary model is the honest-but-curious aggregator plus the
    Byzantine devices: an {!Observer} records which mailbox slots every
    device downloads and uploads, and computes candidate-sender sets by
    backward closure over those observations (intersecting the replica
    copies of a message, the stronger attack discussed in §6.3).

    Path setup can run the full telescoping hand-shake with real
    public-key cryptography ([fast_setup = false]; C-round accounting
    follows §3.4's k^2+2k), or install the per-hop symmetric keys
    out of band ([fast_setup = true]) for large Monte Carlo runs where
    only the forwarding phase is being measured.

    Memory model (DESIGN.md §12): mailbox slots live in a flat slab
    and their bodies in two ping-pong byte arenas reused across
    C-rounds and query rounds, so a run's footprint is a function of
    the configured scale, not of how many rounds it has executed. *)

type config = {
  n_devices : int;
  pseudonyms_per_device : int;
      (** P: each device registers this many pseudonyms, numbered
          device-major (device d owns [d*P, (d+1)*P)); the M1/M2 bound
          the §3.3 audits enforce *)
  hops : int;  (** k, at most 15 (packed route encoding) *)
  replicas : int;  (** r *)
  fraction : float;  (** f *)
  degree : int;  (** d: messages per device per query round *)
  malicious_fraction : float;
  churn : float;  (** per-device per-round offline probability *)
  payload_bytes : int;
  fast_setup : bool;
  fast_keys : bool;
      (** draw device keypairs without the modular exponentiation;
          the public keys parse, range-check and fingerprint but cannot
          decrypt, so this is valid only together with [fast_setup]
          (enforced by {!create}).  Changes the Rng stream relative to
          [fast_keys = false]: a new mode, not a replay of the old one. *)
  verify_proofs : bool;  (** devices check mailbox MHT proofs *)
  verify_sample : int;
      (** 0 or 1: verify an inclusion proof for every non-empty mailbox
          each C-round (the historical behaviour).  s > 1: verify a
          deterministic 1-in-s stride over the non-empty mailboxes,
          for large-n runs where building every proof dominates.  Never
          consults the Rng, so it cannot shift any simulated outcome. *)
  anon_sample : int;
      (** 0 or 1: compute the §6.3 candidate-set closure for every
          delivered message.  s > 1: close over every s-th delivered
          message only ([round_stats.anonymity_sets] then holds the
          sample); delivery and identification accounting always covers
          all messages.  Never consults the Rng. *)
  seed : int64;
}

val default_config : config
(** Figure 4's parameters at simulable scale: k=3, r=2, f=0.1, d=10,
    2% malicious, no churn, n=500; exact verification (no sampling). *)

(* lint: allow interface — the simulator is a mutable world (mailboxes, routes, in-flight messages); structural comparison is meaningless *)
type t

val create : config -> t

val beacon : t -> bytes
val vmap : t -> Vmap.t
val bulletin : t -> Bulletin.t
val is_malicious : t -> int -> bool
val current_round : t -> int

val audit_all : t -> bool
(** Every honest device runs its §3.3 M1/M2 audits. *)

val set_fault_hook :
  t -> (round:int -> source:int -> dest:int -> copy:int -> bool) option -> unit
(** Install (or clear) an external fault-injection hook consulted once
    per replica copy at deposit time; returning [true] drops that copy
    in transit before it reaches its first relay. Lets a deterministic
    fault plan add message loss on top of the simulator's own churn
    and Byzantine drops; a message whose copies are all dropped
    surfaces as a §6.3 default-value substitution at the
    destination. *)

type setup_stats = {
  paths_requested : int;
  paths_established : int;
  paths_failed : int;  (** dropped extensions, detected and abandoned *)
  setup_rounds : int;  (** C-rounds consumed (k^2 + 2k when full) *)
  complaints : int;  (** bulletin complaints posted *)
}

val setup_paths : ?targets:int array array -> t -> setup_stats
(** [targets.(device)] lists destination *pseudonym numbers* (defaults
    to [degree] copies of the device's own pseudonym, the §3.2
    self-loop padding). Each target gets [replicas] independent
    paths. *)

type round_stats = {
  messages_sent : int;  (** logical messages (before replication) *)
  delivered : int;  (** at least one replica arrived intact *)
  lost : int;
  copies_delivered : int;
  copies_lost : int;
  dummies_uploaded : int;
  identified : int;  (** messages with a fully-malicious replica path *)
  anonymity_sets : int array;
      (** per delivered message, from the observer (a 1-in-[anon_sample]
          subsample of them when [anon_sample > 1]) *)
  deposited_bytes : int;
      (** bytes deposited across the round's C-rounds: every mailbox
          slot, dummies included, at the round's uniform body length —
          measured, independent of the Obs counters *)
  rounds_used : int;  (** k+1 C-rounds *)
}

val run_query_round : t -> payload:bytes -> round_stats
(** One communication round of the vertex program: every device sends
    its [degree] messages over its established paths; the stats report
    delivery and what the adversary could infer. *)

val run_query_round_with : t -> payload_of:(source:int -> dest:int -> bytes) -> round_stats
(** Same, with a per-(source, destination) payload — how the vertex
    program actually uses the layer (distinct contribution per
    neighbor). All payloads must have equal length, or messages become
    distinguishable; raises [Invalid_argument] otherwise.

    [payload_of] must be pure (same bytes for the same pair, no shared
    mutable state): it is invoked at least once per logical message
    from the parallel wrap phase, on an arbitrary pool domain, and one
    sending pair is probed an extra time sequentially to size the body
    arena.  Derive any randomness it needs from a pre-split per-pair
    seed. *)

val deliveries : t -> (int * int * bytes) list
(** [(source_device, dest_pseudonym, payload)] messages opened by their
    destinations in the last query round; lets callers (the vertex
    program runtime) consume actual message contents. *)

type footprint = {
  established_paths : int;
  route_entries : int;  (** forwarding duties across all devices *)
  slot_capacity : int;  (** slot-slab high-water mark, in slots *)
  arena_bytes : int;  (** both body arenas *)
  key_bytes : int;  (** packed per-path symmetric keys *)
  download_entries : int;  (** observer download records held *)
  link_index_entries : int;  (** live slots in the C-round link index *)
  mailboxes_in_use : int;  (** currently non-empty mailboxes *)
}

val footprint : t -> footprint
(** Sizes of the simulator's long-lived structures, for the bench
    memory gate and the leak-regression tests: after any number of
    query rounds at a fixed configuration, every field must be stable
    (capacities at their high-water mark, per-round tables emptied or
    constant). *)
