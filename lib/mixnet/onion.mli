(** Onion message encoding (§3.2, §3.5).

    The innermost layer — source to destination — uses authenticated
    encryption (ciphertext integrity end to end). Every outer layer
    uses the plain stream cipher SEnc, *without* a MAC: §3.5's
    dummy-generation argument requires that a forwarder can substitute
    a uniformly random string for a dropped message and the next hop
    cannot tell. Nonces are never transmitted; both ends derive them
    from the C-round number. All layers preserve length, so message
    size does not reveal position along the path. *)

val layer_key_size : int (* 32 *)

val seal_inner : key:bytes -> round:int -> bytes -> bytes
(** AE to the destination; adds {!inner_overhead} bytes. *)

val open_inner : key:bytes -> round:int -> bytes -> bytes option

val inner_overhead : int

val add_layer : key:bytes -> round:int -> bytes -> bytes
(** One SEnc layer (length-preserving). *)

val peel_layer : key:bytes -> round:int -> bytes -> bytes
(** Inverse of {!add_layer} under the same key and round. *)

val peel_into :
  key:bytes -> round:int -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> int -> unit
(** Allocation-free {!peel_layer} (equally, {!add_layer}) over byte
    ranges; [src] and [dst] may alias at the same offset. The arena
    simulator peels each forwarded message from the previous round's
    body arena straight into the next round's. *)

val wrap : hop_keys:bytes list -> round:int -> bytes -> bytes
(** [wrap ~hop_keys ~round inner] applies layers so that the first key
    in the list peels first (the first hop). *)

val wrap_into :
  hop_keys:bytes array -> round:int -> inner:bytes -> dst:Bytes.t -> dst_pos:int -> unit
(** [wrap] written into a caller-provided slice of length
    [Bytes.length inner]: one blit plus per-layer in-place XOR, no
    intermediate onions. [hop_keys.(0)] peels first, as in {!wrap}. *)

val unwrap : hop_keys:bytes list -> round:int -> bytes -> bytes
(** Peels all layers in order; for tests and reverse-path handling. *)

val dummy : Mycelium_util.Rng.t -> length:int -> bytes
(** A uniformly random string of the given length: what a forwarder
    uploads in place of a missing message. *)

val dummy_into : Mycelium_util.Rng.t -> dst:Bytes.t -> dst_pos:int -> length:int -> unit
(** {!dummy} written into a slice; draws the identical Rng stream. *)
