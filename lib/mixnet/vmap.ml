module Merkle = Mycelium_crypto.Merkle
module Sha256 = Mycelium_crypto.Sha256
module Elgamal = Mycelium_crypto.Elgamal
module Rng = Mycelium_util.Rng

type m1_leaf = { pseudonym : bytes; pk : bytes; device : int }

type t = {
  leaves : m1_leaf array;
  m1 : Merkle.tree;
  m2 : Merkle.tree;
  m2_payloads : bytes array;
  by_pseudonym : (string, int) Hashtbl.t Lazy.t;
      (* built on first reverse lookup: at 10^6 devices the index costs
         ~150 MB of string keys, and forwarding-only runs never ask *)
  n_devices : int;
  max_pseudonyms : int;
}

let encode_m1_leaf l =
  let buf = Buffer.create 80 in
  Buffer.add_bytes buf l.pseudonym;
  Buffer.add_string buf (string_of_int (Bytes.length l.pk));
  Buffer.add_char buf '|';
  Buffer.add_bytes buf l.pk;
  Buffer.add_string buf (string_of_int l.device);
  Buffer.to_bytes buf

(* M2 leaf: device number followed by exactly P slots of
   (H(h_i), H(pk_i)) pairs, zero-padded. The fixed capacity is the
   point (§3.3): a device registering more than P pseudonyms cannot
   have all of them covered by its leaf, so a spot check fails with
   high probability. *)
let encode_m2_payload ~capacity device entries =
  let buf = Buffer.create (16 + (capacity * 64)) in
  Buffer.add_string buf (string_of_int device);
  Buffer.add_char buf '|';
  let rec fill n = function
    | l :: rest when n > 0 ->
      Buffer.add_bytes buf (Sha256.digest l.pseudonym);
      Buffer.add_bytes buf (Sha256.digest l.pk);
      fill (n - 1) rest
    | _ ->
      Buffer.add_bytes buf (Bytes.make (n * 64) '\x00')
  in
  fill capacity entries;
  Buffer.to_bytes buf

let assemble ~max_pseudonyms_per_device leaves =
  let n_devices =
    1 + Array.fold_left (fun acc l -> max acc l.device) (-1) leaves
  in
  let per_device = Array.make (max 1 n_devices) [] in
  Array.iter (fun l -> per_device.(l.device) <- l :: per_device.(l.device)) leaves;
  let m2_payloads =
    Array.mapi
      (fun d entries ->
        encode_m2_payload ~capacity:max_pseudonyms_per_device d (List.rev entries))
      per_device
  in
  let by_pseudonym =
    lazy
      (let tbl = Hashtbl.create (Array.length leaves) in
       Array.iteri
         (fun i l -> Hashtbl.replace tbl (Bytes.to_string l.pseudonym) i)
         leaves;
       tbl)
  in
  {
    leaves;
    m1 = Merkle.build (Array.map encode_m1_leaf leaves);
    m2 = Merkle.build m2_payloads;
    m2_payloads;
    by_pseudonym;
    n_devices;
    max_pseudonyms = max_pseudonyms_per_device;
  }

let build_unchecked ~max_pseudonyms_per_device leaves =
  assemble ~max_pseudonyms_per_device leaves

let build ~max_pseudonyms_per_device leaves =
  if Array.length leaves = 0 then Error "empty map"
  else begin
    let seen = Hashtbl.create (Array.length leaves) in
    let counts = Hashtbl.create 64 in
    let problem = ref None in
    Array.iter
      (fun l ->
        let key = Bytes.to_string l.pseudonym in
        if Hashtbl.mem seen key then problem := Some "duplicate pseudonym";
        Hashtbl.replace seen key ();
        let c = Option.value ~default:0 (Hashtbl.find_opt counts l.device) + 1 in
        Hashtbl.replace counts l.device c;
        if c > max_pseudonyms_per_device then problem := Some "device exceeds pseudonym bound";
        (match Elgamal.pub_of_bytes l.pk with
        | Some pk ->
          if not (Bytes.equal (Elgamal.fingerprint pk) l.pseudonym) then
            problem := Some "pseudonym is not H(pk)"
        | None -> problem := Some "unparseable public key");
        if l.device < 0 then problem := Some "negative device number")
      leaves;
    match !problem with
    | Some e -> Error e
    | None -> Ok (assemble ~max_pseudonyms_per_device leaves)
  end

let size t = Array.length t.leaves
let device_count t = t.n_devices
let max_pseudonyms t = t.max_pseudonyms

let m1_root t = Merkle.root t.m1
let m2_root t = Merkle.root t.m2

let roots_payload t = Bytes.cat (m1_root t) (m2_root t)

type lookup = { leaf : m1_leaf; proof : Merkle.proof }

let lookup t index = { leaf = t.leaves.(index); proof = Merkle.prove t.m1 index }

let verify_lookup ~m1_root ~index l =
  l.proof.Merkle.index = index
  && Merkle.verify ~root:m1_root ~leaf:(encode_m1_leaf l.leaf) l.proof
  &&
  match Elgamal.pub_of_bytes l.leaf.pk with
  | Some pk -> Bytes.equal (Elgamal.fingerprint pk) l.leaf.pseudonym
  | None -> false

let pub_of_lookup l = Elgamal.pub_of_bytes l.leaf.pk

let index_of_pseudonym t h = Hashtbl.find_opt (Lazy.force t.by_pseudonym) (Bytes.to_string h)

type m2_lookup = { payload : bytes; proof : Merkle.proof }

let m2_lookup t ~device = { payload = t.m2_payloads.(device); proof = Merkle.prove t.m2 device }

let verify_m2_lookup ~m2_root ~device l =
  l.proof.Merkle.index = device && Merkle.verify ~root:m2_root ~leaf:l.payload l.proof

let m2_contains_pk l ~pk =
  let needle = Bytes.to_string (Sha256.digest pk) in
  let hay = Bytes.to_string l.payload in
  (* The payload embeds 32-byte hash blocks; a substring check over the
     encoded form suffices for 32-byte digests. *)
  let nlen = String.length needle and hlen = String.length hay in
  let rec scan i =
    i + nlen <= hlen && (String.equal (String.sub hay i nlen) needle || scan (i + 1))
  in
  scan 0

let audit_own_pseudonyms t ~device ~pseudonyms =
  List.for_all
    (fun h ->
      match index_of_pseudonym t h with
      | None -> false
      | Some i ->
        let l = lookup t i in
        verify_lookup ~m1_root:(m1_root t) ~index:i l && l.leaf.device = device)
    pseudonyms

let audit_spot_check t rng ~samples =
  let n = size t in
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let i = Rng.int rng n in
      let l = lookup t i in
      if not (verify_lookup ~m1_root:(m1_root t) ~index:i l) then ok := false
      else begin
        let d = l.leaf.device in
        if d < 0 || d >= device_count t then ok := false
        else begin
          let m2l = m2_lookup t ~device:d in
          if not (verify_m2_lookup ~m2_root:(m2_root t) ~device:d m2l) then ok := false
          else if not (m2_contains_pk m2l ~pk:l.leaf.pk) then ok := false
        end
      end
    end
  done;
  !ok
