module Rng = Mycelium_util.Rng
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params

type key_share = Shamir.rq_share

let share_secret_key _ctx rng ~threshold ~parties sk =
  Shamir.share_rq rng ~threshold ~parties (Bgv.secret_poly sk)

let reconstruct_secret_key ctx shares =
  Bgv.secret_key_of_poly ctx (Shamir.reconstruct_rq (Bgv.basis ctx) shares)

let partial_decrypt ctx rng ~participants (share : key_share) ct =
  if Bgv.degree ct <> 1 then
    invalid_arg "Threshold.partial_decrypt: ciphertext must be relinearized to degree 1";
  if not (Array.exists (fun x -> x = share.Shamir.idx) participants) then
    invalid_arg "Threshold.partial_decrypt: share not in participant set";
  let basis = Bgv.basis ctx in
  let lambdas = Shamir.lambda_rows basis participants in
  let my_pos =
    let rec find i = if participants.(i) = share.Shamir.idx then i else find (i + 1) in
    find 0
  in
  let my_lambda = Array.map (fun row -> row.(my_pos)) lambdas in
  let c1 = (Bgv.components ct).(1) in
  let weighted = Rq.mul_scalar_residues (Rq.mul c1 share.Shamir.value) my_lambda in
  (* Smudging: a fresh t-multiple error so the partial reveals nothing
     about the share beyond its contribution to the plaintext. *)
  let t = (Bgv.params ctx).Params.plain_modulus in
  let smudge =
    Rq.mul_scalar (Rq.sample_cbd basis ~eta:(Bgv.params ctx).Params.error_eta rng) t
  in
  Rq.add weighted smudge

let combine ctx ct partials =
  if Bgv.degree ct <> 1 then invalid_arg "Threshold.combine: ciphertext must be degree 1";
  let c0 = (Bgv.components ct).(0) in
  let v = List.fold_left Rq.add c0 partials in
  Bgv.decode_noisy ctx v

let decrypt ctx rng ~threshold ~live ct =
  if Bgv.degree ct <> 1 then Error "ciphertext must be relinearized to degree 1"
  else begin
    let needed = threshold + 1 in
    if List.length live < needed then
      Error
        (Printf.sprintf "threshold decryption needs %d live shares, have %d" needed
           (List.length live))
    else begin
      (* Any >= threshold+1 subset works; take the first [needed] of
         whatever is live — crashed members simply never appear here. *)
      let chosen = List.filteri (fun i _ -> i < needed) live in
      let participants = Array.of_list (List.map (fun s -> s.Shamir.idx) chosen) in
      let partials =
        List.map (fun s -> partial_decrypt ctx rng ~participants s ct) chosen
      in
      Ok (combine ctx ct partials, participants)
    end
  end
