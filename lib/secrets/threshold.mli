(** Threshold BGV decryption by a user-device committee (§4.2, §5).

    The aggregator hands the committee a relinearized (degree-1)
    aggregate ciphertext. Each participating member locally computes a
    partial decryption from its key share — applying its Lagrange
    coefficient itself and adding t-scaled smudging noise so that
    nothing beyond the plaintext leaks — and the partials plus c_0
    simply sum to the noisy plaintext. The Laplace noise for
    differential privacy is added inside this MPC, before anything is
    released to the aggregator (implementation change (2) of §5). *)

type key_share = Shamir.rq_share

val share_secret_key :
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  threshold:int ->
  parties:int ->
  Mycelium_bgv.Bgv.secret_key ->
  key_share array
(** Share the BGV key polynomial coefficient-wise. *)

val reconstruct_secret_key :
  Mycelium_bgv.Bgv.ctx -> key_share list -> Mycelium_bgv.Bgv.secret_key
(** What [threshold+1] *malicious* members could do (a privacy failure,
    Fig. 8a); exists for tests and the committee-capture experiment. *)

val partial_decrypt :
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  participants:int array ->
  key_share ->
  Mycelium_bgv.Bgv.ciphertext ->
  Mycelium_math.Rq.t
(** [partial_decrypt ctx rng ~participants share ct] for a degree-1
    [ct]: lambda_x * (c_1 * s_x) + t * e_smudge. [participants] lists
    the share indices taking part (must include this share's). *)

val combine :
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_bgv.Bgv.ciphertext ->
  Mycelium_math.Rq.t list ->
  Mycelium_bgv.Plaintext.t
(** c_0 + sum of partials, decoded mod t. Correct when the partials
    come from exactly the announced participant set. *)

val decrypt :
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  threshold:int ->
  live:key_share list ->
  Mycelium_bgv.Bgv.ciphertext ->
  (Mycelium_bgv.Plaintext.t * int array, string) result
(** Full threshold decryption from whichever shares are live: picks
    any [threshold + 1] of [live] (Shamir guarantees every such subset
    reconstructs the same plaintext — the §6.3 liveness story under
    committee crashes), runs {!partial_decrypt} for each and
    {!combine}s. Returns the plaintext and the participant indices
    used. Fails if fewer than [threshold + 1] shares are live or the
    ciphertext is not degree 1. *)
