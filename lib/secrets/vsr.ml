module Rng = Mycelium_util.Rng
module Bigint = Mycelium_math.Bigint
module Modarith = Mycelium_math.Modarith
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq

type dealing = {
  from_x : int;
  sub_shares : Shamir.share array;
  commitment : Feldman.commitment;
}

let deal ~group rng ~new_threshold ~new_parties (share : Shamir.share) =
  let p = group.Feldman.order in
  let sub_shares, coeffs =
    Shamir.share_with_poly ~p rng ~threshold:new_threshold ~parties:new_parties share.Shamir.y
  in
  { from_x = share.Shamir.x; sub_shares; commitment = Feldman.commit group coeffs }

let expected_constant ~group ~old_commitment x =
  let p = group.Feldman.order in
  let acc = ref Bigint.one and xk = ref 1 in
  Array.iter
    (fun c ->
      let factor = Bigint.mod_pow c (Bigint.of_int !xk) group.Feldman.big_p in
      acc := Bigint.erem (Bigint.mul !acc factor) group.Feldman.big_p;
      xk := Modarith.mul p !xk x)
    old_commitment;
  !acc

let verify_sub_share ~group dealing j =
  if j < 1 || j > Array.length dealing.sub_shares then false
  else Feldman.verify_share group dealing.commitment dealing.sub_shares.(j - 1)

let verify_dealing ~group ~old_commitment dealing =
  Bigint.equal
    (Feldman.commitment_to_secret dealing.commitment)
    (expected_constant ~group ~old_commitment dealing.from_x)
  && Array.for_all (Feldman.verify_share group dealing.commitment) dealing.sub_shares

let check_distinct_dealers dealings =
  let xs = List.map (fun d -> d.from_x) dealings in
  if List.length (List.sort_uniq Int.compare xs) <> List.length xs then
    invalid_arg "Vsr: duplicate dealer"

let finish ~p ~dealings j =
  check_distinct_dealers dealings;
  let xs = Array.of_list (List.map (fun d -> d.from_x) dealings) in
  let lambdas = Shamir.lagrange_at_zero ~p xs in
  let y =
    List.fold_left
      (fun acc (i, d) ->
        let sub = d.sub_shares.(j - 1) in
        if sub.Shamir.x <> j then invalid_arg "Vsr.finish: misaddressed sub-share";
        Modarith.add p acc (Modarith.mul p lambdas.(i) sub.Shamir.y))
      0
      (List.mapi (fun i d -> (i, d)) dealings)
  in
  { Shamir.x = j; y }

let new_commitment ~group ~dealings =
  check_distinct_dealers dealings;
  let p = group.Feldman.order in
  let xs = Array.of_list (List.map (fun d -> d.from_x) dealings) in
  let lambdas = Shamir.lagrange_at_zero ~p xs in
  Feldman.combine_commitments group (List.map (fun d -> d.commitment) dealings) lambdas

let redistribute_rq rng ~new_threshold ~new_parties old_shares =
  match old_shares with
  | [] -> invalid_arg "Vsr.redistribute_rq: no shares"
  | first :: _ ->
    let basis = Rq.basis_of first.Shamir.value in
    let xs = Array.of_list (List.map (fun s -> s.Shamir.idx) old_shares) in
    if Array.length xs <> (Array.to_list xs |> List.sort_uniq Int.compare |> List.length) then
      invalid_arg "Vsr.redistribute_rq: duplicate share index";
    let lambdas = Shamir.lambda_rows basis xs in
    let primes = Rns.primes basis in
    let n = Rns.degree basis in
    (* Each old member re-shares its ring share; accumulate
       lambda-weighted sub-shares per new member. *)
    let acc = Array.init new_parties (fun _ -> Array.map (fun _ -> Array.make n 0) primes) in
    List.iteri
      (fun i old ->
        let subs = Shamir.share_rq rng ~threshold:new_threshold ~parties:new_parties old.Shamir.value in
        Array.iteri
          (fun j sub ->
            (* share_rq emits Eval-domain shares; the accumulate below
               is linear, so the redistributed shares stay Eval. *)
            let rows = Rq.residues sub.Shamir.value in
            Array.iteri
              (fun pi p ->
                (* Fixed weight per row: Shoup companion, as in
                   Shamir.reconstruct_rq. *)
                let l = lambdas.(pi).(i) in
                let l' = Modarith.shoup_precompute p l in
                for c = 0 to n - 1 do
                  acc.(j).(pi).(c) <-
                    Modarith.add p acc.(j).(pi).(c) (Modarith.shoup_mul p l l' rows.(pi).(c))
                done)
              primes)
          subs)
      old_shares;
    Array.mapi
      (fun j rows -> { Shamir.idx = j + 1; value = Rq.of_residues ~repr:Rq.Eval basis rows })
      acc

let batch_weights basis ~context =
  let primes = Rns.primes basis in
  let n = Rns.degree basis in
  Array.mapi
    (fun pi p ->
      (* Stretch the context hash into weights with a counter-mode
         SHA-256; deterministic for both prover and verifier. *)
      let weights = Array.make n 0 in
      let filled = ref 0 and counter = ref 0 in
      while !filled < n do
        let block =
          let ctx = Mycelium_crypto.Sha256.init () in
          Mycelium_crypto.Sha256.update ctx context;
          Mycelium_crypto.Sha256.update_string ctx (Printf.sprintf "|%d|%d" pi !counter);
          Mycelium_crypto.Sha256.finalize ctx
        in
        let i = ref 0 in
        while !filled < n && !i + 4 <= Bytes.length block do
          let v = Int32.to_int (Bytes.get_int32_le block !i) land max_int in
          weights.(!filled) <- v mod p;
          incr filled;
          i := !i + 4
        done;
        incr counter
      done;
      weights)
    primes

let fold_rq basis gamma v =
  let primes = Rns.primes basis in
  (* The fold is a random linear functional of the raw rows, so prover
     and verifier must read the rows in the same domain: pin Eval, the
     canonical domain for shares. *)
  Rq.force_eval v;
  let rows = Rq.residues v in
  Array.mapi
    (fun pi p ->
      let acc = ref 0 in
      Array.iteri (fun c w -> acc := Modarith.add p !acc (Modarith.mul p w rows.(pi).(c))) gamma.(pi);
      !acc)
    primes
