module Rng = Mycelium_util.Rng
module Modarith = Mycelium_math.Modarith
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq

type share = { x : int; y : int }

let validate ~p ~threshold ~parties =
  if threshold < 0 then invalid_arg "Shamir: negative threshold";
  if parties < threshold + 1 then invalid_arg "Shamir: too few parties for threshold";
  if parties >= p then invalid_arg "Shamir: more parties than field elements"

let eval_poly ~p coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Modarith.add p (Modarith.mul p !acc x) coeffs.(i)
  done;
  !acc

let share_with_poly ~p rng ~threshold ~parties v =
  validate ~p ~threshold ~parties;
  let coeffs = Array.init (threshold + 1) (fun i -> if i = 0 then Modarith.reduce p v else Rng.int rng p) in
  let shares = Array.init parties (fun j -> { x = j + 1; y = eval_poly ~p coeffs (j + 1) }) in
  (shares, coeffs)

let share_secret ~p rng ~threshold ~parties v =
  fst (share_with_poly ~p rng ~threshold ~parties v)

let lagrange_at_zero ~p xs =
  let k = Array.length xs in
  Array.init k (fun i ->
      let num = ref 1 and den = ref 1 in
      for j = 0 to k - 1 do
        if j <> i then begin
          (* lambda_i = prod_j x_j / (x_j - x_i) evaluated at 0. *)
          num := Modarith.mul p !num (Modarith.reduce p xs.(j));
          den := Modarith.mul p !den (Modarith.sub p (Modarith.reduce p xs.(j)) (Modarith.reduce p xs.(i)))
        end
      done;
      Modarith.mul p !num (Modarith.inv p !den))

let reconstruct ~p shares =
  let xs = Array.of_list (List.map (fun s -> s.x) shares) in
  let distinct = Array.to_list xs |> List.sort_uniq Int.compare |> List.length in
  if distinct <> Array.length xs then invalid_arg "Shamir.reconstruct: duplicate share x";
  let lambdas = lagrange_at_zero ~p xs in
  List.fold_left
    (fun acc (i, s) -> Modarith.add p acc (Modarith.mul p lambdas.(i) (Modarith.reduce p s.y)))
    0
    (List.mapi (fun i s -> (i, s)) shares)

type rq_share = { idx : int; value : Rq.t }

(* Ring shares live canonically in the evaluation domain: the secret
   key is Eval-resident after keygen, partial decryptions multiply
   shares straight into Eval ciphertexts, and sharing, interpolation
   and redistribution are all linear, so they commute with the NTT —
   sharing the transformed rows IS sharing the polynomial. *)
let share_rq rng ~threshold ~parties v =
  let basis = Rq.basis_of v in
  let primes = Rns.primes basis in
  let n = Rns.degree basis in
  Rq.force_eval v;
  let rows = Rq.residues v in
  (* One residue matrix per party, filled coefficient by coefficient. *)
  let outs = Array.init parties (fun _ -> Array.map (fun _ -> Array.make n 0) primes) in
  let coeffs = Array.make (threshold + 1) 0 in
  Array.iteri
    (fun pi p ->
      validate ~p ~threshold ~parties;
      for c = 0 to n - 1 do
        coeffs.(0) <- rows.(pi).(c);
        for k = 1 to threshold do
          coeffs.(k) <- Rng.int rng p
        done;
        for j = 0 to parties - 1 do
          outs.(j).(pi).(c) <- eval_poly ~p coeffs (j + 1)
        done
      done)
    primes;
  Array.mapi (fun j rows -> { idx = j + 1; value = Rq.of_residues ~repr:Rq.Eval basis rows }) outs

let lambda_rows basis xs =
  Array.map (fun p -> lagrange_at_zero ~p xs) (Rns.primes basis)

let reconstruct_rq basis shares =
  let xs = Array.of_list (List.map (fun s -> s.idx) shares) in
  let lambdas = lambda_rows basis xs in
  let primes = Rns.primes basis in
  let n = Rns.degree basis in
  let acc = Array.map (fun _ -> Array.make n 0) primes in
  List.iteri
    (fun i s ->
      Rq.force_eval s.value;
      let rows = Rq.residues s.value in
      Array.iteri
        (fun pi p ->
          (* The Lagrange weight is fixed across the whole row, so a
             Shoup companion turns the per-coefficient reduction into
             two multiplies — this loop is degree * limbs * shares at
             paper scale. *)
          let l = lambdas.(pi).(i) in
          let l' = Modarith.shoup_precompute p l in
          for c = 0 to n - 1 do
            acc.(pi).(c) <- Modarith.add p acc.(pi).(c) (Modarith.shoup_mul p l l' rows.(pi).(c))
          done)
        primes)
    shares;
  Rq.of_residues ~repr:Rq.Eval basis acc
