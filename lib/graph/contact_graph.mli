(** Bounded-degree contact graphs: the population substrate over which
    Mycelium queries run (Figure 1).

    The generator builds a household structure (complete small cliques,
    [Family]/[Household] edges) and overlays random work/social/transit
    contacts subject to a global degree bound d — the paper assumes
    such a bound (assumption 1 of §3.1, d = 10 in Figure 4). Vertex
    infection fields start empty and are filled by {!Epidemic}. *)

type config = {
  population : int;
  degree_bound : int;  (** hard cap d on vertex degree *)
  mean_household : float;  (** average household size *)
  extra_contact_rate : float;  (** target non-household degree per person *)
  horizon_days : int;  (** contact history length, also epidemic length *)
}

val default_config : config
(** 1000 people, d = 10, households ~2.5, 14-day horizon. *)

(* lint: allow interface — graphs are large mutable adjacency stores; tests compare derived views (edges, vertices), never whole graphs *)
type t

val generate : config -> Mycelium_util.Rng.t -> t

val population : t -> int
val degree_bound : t -> int
val horizon_days : t -> int

val vertex : t -> int -> Schema.vertex_data
val set_vertex : t -> int -> Schema.vertex_data -> unit
(** Used by {!Epidemic} to write infection outcomes. *)

val neighbors : t -> int -> (int * Schema.edge_data) list
(** Adjacent vertices with the attributes of the connecting edge. *)

val edge : t -> int -> int -> Schema.edge_data option

val degree : t -> int -> int
val max_degree : t -> int
val edge_count : t -> int

val of_edges :
  degree_bound:int ->
  ?horizon_days:int ->
  vertices:Schema.vertex_data array ->
  edges:(int * int * Schema.edge_data) list ->
  unit ->
  t
(** Load a graph from explicit vertex and edge data (trace imports, test
    fixtures).  Unlike {!generate}, the degree bound is {e not} enforced
    — externally-sourced graphs may exceed it, and the runtime clips
    them (see {!clip_to_degree_bound}).  Rejects self-loops, duplicate
    edges and out-of-range endpoints. *)

val clip_to_degree_bound : ?bound:int -> t -> t
(** A copy of the graph in which every vertex has degree [<= bound]
    (default [degree_bound t]; the copy's [degree_bound] becomes the
    bound used): edges are visited in canonical (min endpoint, max
    endpoint) order and kept iff both endpoints still have capacity.
    Deterministic and independent of adjacency-list order; the identity
    (up to adjacency order) for graphs already within the bound. *)

val k_hop : t -> int -> k:int -> (int * int) list
(** [(vertex, distance)] pairs with distance in [1..k]; excludes the
    origin. BFS, matching the flooding semantics of §4.4. *)

val spanning_parents : t -> int -> k:int -> (int, int) Hashtbl.t
(** For each vertex in the k-hop neighborhood, its upstream neighbor on
    the BFS tree ("the upstream neighbor", §4.4). *)

val fold_vertices : t -> init:'a -> f:('a -> int -> Schema.vertex_data -> 'a) -> 'a
