module Rng = Mycelium_util.Rng

type config = {
  population : int;
  degree_bound : int;
  mean_household : float;
  extra_contact_rate : float;
  horizon_days : int;
}

let default_config =
  {
    population = 1000;
    degree_bound = 10;
    mean_household = 2.5;
    extra_contact_rate = 4.0;
    horizon_days = 14;
  }

type t = {
  config : config;
  vertices : Schema.vertex_data array;
  adj : (int * Schema.edge_data) list array;
  mutable n_edges : int;
}

let population t = t.config.population
let degree_bound t = t.config.degree_bound
let horizon_days t = t.config.horizon_days

let vertex t i = t.vertices.(i)
let set_vertex t i v = t.vertices.(i) <- v

let neighbors t i = t.adj.(i)

let edge t u v =
  List.find_map (fun (w, e) -> if w = v then Some e else None) t.adj.(u)

let degree t i = List.length t.adj.(i)
let max_degree t =
  let m = ref 0 in
  Array.iter (fun l -> m := max !m (List.length l)) t.adj;
  !m

let edge_count t = t.n_edges

let random_edge_data rng ~config ~location ~setting =
  let horizon = config.horizon_days in
  {
    Schema.duration_min = 5 + Rng.int rng 240;
    contacts = 1 + Rng.int rng 20;
    last_contact = Rng.int rng horizon;
    location;
    setting;
  }

let add_edge g rng ~location ~setting u v =
  if u <> v && edge g u v = None
     && degree g u < g.config.degree_bound
     && degree g v < g.config.degree_bound
  then begin
    let data = random_edge_data rng ~config:g.config ~location ~setting in
    g.adj.(u) <- (v, data) :: g.adj.(u);
    g.adj.(v) <- (u, data) :: g.adj.(v);
    g.n_edges <- g.n_edges + 1
  end

let generate config rng =
  if config.population < 2 then invalid_arg "Contact_graph.generate: population too small";
  if config.degree_bound < 1 then invalid_arg "Contact_graph.generate: degree bound too small";
  let n = config.population in
  (* Assign people to households with geometric-ish sizes around the
     configured mean. *)
  let households = Array.make n 0 in
  let hh = ref 0 and i = ref 0 in
  while !i < n do
    let size = 1 + Rng.geometric rng (1. /. config.mean_household) in
    let size = min size (n - !i) in
    for j = !i to !i + size - 1 do
      households.(j) <- !hh
    done;
    incr hh;
    i := !i + size
  done;
  let vertices =
    Array.init n (fun i ->
        {
          Schema.infected = false;
          t_inf = None;
          age = Rng.int rng 100;
          household = households.(i);
        })
  in
  let g = { config; vertices; adj = Array.make n []; n_edges = 0 } in
  (* Household cliques. *)
  let start = ref 0 in
  while !start < n do
    let h = households.(!start) in
    let stop = ref !start in
    while !stop < n && households.(!stop) = h do
      incr stop
    done;
    for u = !start to !stop - 1 do
      for v = u + 1 to !stop - 1 do
        add_edge g rng ~location:Schema.Household ~setting:Schema.Family u v
      done
    done;
    start := !stop
  done;
  (* Random extra contacts: work, social, transit. *)
  let extra_target = int_of_float (float_of_int n *. config.extra_contact_rate /. 2.) in
  let attempts = ref 0 in
  let placed = ref 0 in
  while !placed < extra_target && !attempts < extra_target * 20 do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    let before = g.n_edges in
    let location, setting =
      match Rng.int rng 4 with
      | 0 -> (Schema.Workplace, Schema.Work)
      | 1 -> (Schema.Subway, Schema.Social)
      | 2 -> (Schema.SocialVenue, Schema.Social)
      | _ -> (Schema.Other, Schema.Social)
    in
    add_edge g rng ~location ~setting u v;
    if g.n_edges > before then incr placed
  done;
  g

(* Externally-sourced graphs (trace imports, test fixtures) are not
   produced by [generate] and may violate the degree bound; loading is
   therefore unbounded and callers clip explicitly. *)
let of_edges ~degree_bound ?(horizon_days = default_config.horizon_days) ~vertices ~edges () =
  let n = Array.length vertices in
  if n < 2 then invalid_arg "Contact_graph.of_edges: population too small";
  if degree_bound < 1 then invalid_arg "Contact_graph.of_edges: degree bound too small";
  let config = { default_config with population = n; degree_bound; horizon_days } in
  let g = { config; vertices = Array.copy vertices; adj = Array.make n []; n_edges = 0 } in
  List.iter
    (fun (u, v, data) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Contact_graph.of_edges: vertex out of range";
      if u = v then invalid_arg "Contact_graph.of_edges: self-loop";
      if edge g u v <> None then invalid_arg "Contact_graph.of_edges: duplicate edge";
      g.adj.(u) <- (v, data) :: g.adj.(u);
      g.adj.(v) <- (u, data) :: g.adj.(v);
      g.n_edges <- g.n_edges + 1)
    edges;
  g

(* Deterministic repair for over-degree graphs: walk the edge set in
   canonical (min endpoint, max endpoint) order and keep an edge iff
   both endpoints still have capacity.  Independent of adjacency-list
   representation order, so a reloaded graph clips identically. *)
let clip_to_degree_bound ?bound t =
  let n = t.config.population in
  let b = match bound with Some b -> b | None -> t.config.degree_bound in
  if b < 1 then invalid_arg "Contact_graph.clip_to_degree_bound: bound too small";
  let edges = ref [] in
  Array.iteri
    (fun u l -> List.iter (fun (v, data) -> if u < v then edges := (u, v, data) :: !edges) l)
    t.adj;
  let edges =
    List.sort
      (fun (u1, v1, _) (u2, v2, _) ->
        match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
      !edges
  in
  let g =
    {
      config = { t.config with degree_bound = b };
      vertices = Array.copy t.vertices;
      adj = Array.make n [];
      n_edges = 0;
    }
  in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, data) ->
      if deg.(u) < b && deg.(v) < b then begin
        g.adj.(u) <- (v, data) :: g.adj.(u);
        g.adj.(v) <- (u, data) :: g.adj.(v);
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        g.n_edges <- g.n_edges + 1
      end)
    edges;
  g

let k_hop t origin ~k =
  let dist = Hashtbl.create 64 in
  Hashtbl.add dist origin 0;
  let queue = Queue.create () in
  Queue.add origin queue;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < k then
      List.iter
        (fun (v, _) ->
          if not (Hashtbl.mem dist v) then begin
            Hashtbl.add dist v (du + 1);
            out := (v, du + 1) :: !out;
            Queue.add v queue
          end)
        t.adj.(u)
  done;
  List.rev !out

let spanning_parents t origin ~k =
  let parent = Hashtbl.create 64 in
  let dist = Hashtbl.create 64 in
  Hashtbl.add dist origin 0;
  let queue = Queue.create () in
  Queue.add origin queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < k then
      List.iter
        (fun (v, _) ->
          if not (Hashtbl.mem dist v) then begin
            Hashtbl.add dist v (du + 1);
            Hashtbl.add parent v u;
            Queue.add v queue
          end)
        t.adj.(u)
  done;
  parent

let fold_vertices t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i v -> acc := f !acc i v) t.vertices;
  !acc
