module Bigint = Mycelium_math.Bigint
module Rng = Mycelium_util.Rng

(* A fixed 256-bit safe prime (generated once with
   Bigint.random_safe_prime, seed 20260706). 256 bits is far below
   cryptographic strength — deliberately: the simulation spends one
   modexp per PEnc across thousands of simulated devices, and the
   protocol logic is what matters here. Swap in RFC 3526 constants for
   a production build. *)
let p =
  Bigint.of_hex "90109c1cdccd1bf85cde95dee93ea51985ddccdef6b802a9ad2d527a156ad5bb"

(* q = (p-1)/2 is prime; g = 4 generates the order-q subgroup of
   quadratic residues. *)
let q = Bigint.shift_right (Bigint.sub p Bigint.one) 1
let g = Bigint.of_int 4

let group_bytes = 32 (* 256 bits *)

type public_key = Bigint.t
type private_key = { x : Bigint.t; pk : Bigint.t }

let generate rng =
  let x = Bigint.add (Bigint.random rng (Bigint.sub q Bigint.one)) Bigint.one in
  let pk = Bigint.mod_pow g x p in
  (pk, { x; pk })

let generate_insecure rng =
  (* A uniform group-range element instead of g^x: skips the modexp
     (~500µs each), which dominates simulator creation at 10^6 devices.
     The pk parses, fingerprints and range-checks like a real key, but
     decryption under it fails — callers must never run PEnc exchanges
     against these keys (the mixnet gates this behind
     [fast_keys && fast_setup]). *)
  let x = Bigint.add (Bigint.random rng (Bigint.sub q Bigint.one)) Bigint.one in
  let pk = Bigint.add (Bigint.random rng (Bigint.sub p Bigint.one)) Bigint.one in
  (pk, { x; pk })

let encode_element e =
  let b = Bigint.to_bytes_be e in
  let out = Bytes.make group_bytes '\x00' in
  Bytes.blit b 0 out (group_bytes - Bytes.length b) (Bytes.length b);
  out

let kdf shared =
  Sha256.digest (encode_element shared)

let zero_nonce = Bytes.make Chacha20.nonce_size '\x00'

let encrypt rng pk msg =
  let y = Bigint.add (Bigint.random rng (Bigint.sub q Bigint.one)) Bigint.one in
  let eph = Bigint.mod_pow g y p in
  let shared = Bigint.mod_pow pk y p in
  (* Fresh key per encryption, so a fixed nonce is safe. *)
  let sealed = Aead.seal_nonce ~key:(kdf shared) ~nonce:zero_nonce msg in
  Bytes.cat (encode_element eph) sealed

let ciphertext_overhead = group_bytes + Aead.overhead

let decrypt sk ct =
  if Bytes.length ct < ciphertext_overhead then None
  else begin
    let eph = Bigint.of_bytes_be (Bytes.sub ct 0 group_bytes) in
    if Bigint.compare eph p >= 0 || Bigint.sign eph <= 0 then None
    else begin
      let shared = Bigint.mod_pow eph sk.x p in
      Aead.open_nonce ~key:(kdf shared) ~nonce:zero_nonce
        (Bytes.sub ct group_bytes (Bytes.length ct - group_bytes))
    end
  end

let pub_to_bytes pk = encode_element pk

let pub_of_bytes b =
  if Bytes.length b <> group_bytes then None
  else begin
    let v = Bigint.of_bytes_be b in
    if Bigint.sign v <= 0 || Bigint.compare v p >= 0 then None else Some v
  end

let fingerprint pk = Sha256.digest (pub_to_bytes pk)
