(** ChaCha20 stream cipher (RFC 8439).

    Instantiates Mycelium's SEnc (§5): a symmetric cipher whose output
    is indistinguishable from random bytes and carries no integrity
    tag — exactly the property §3.5 needs so that forwarders can
    substitute random dummies for dropped onion layers without
    detection. *)

val key_size : int (* 32 *)
val nonce_size : int (* 12 *)

val block : key:bytes -> nonce:bytes -> counter:int -> bytes
(** The raw 64-byte keystream block; exposed for test vectors. *)

val encrypt : key:bytes -> nonce:bytes -> ?counter:int -> bytes -> bytes
(** XOR with the keystream starting at block [counter] (default 1, as
    in RFC 8439 AEAD). Decryption is the same operation. *)

val xor_into :
  key:bytes ->
  nonce:bytes ->
  ?counter:int ->
  src:Bytes.t ->
  src_pos:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  int ->
  unit
(** [xor_into ~key ~nonce ~src ~src_pos ~dst ~dst_pos len]: the
    allocation-free form of {!encrypt} over a byte range. [src] and
    [dst] may be the same buffer at the same offset (each byte is read
    before it is written), which is how the mixnet peels onion layers
    inside its arena. *)

val nonce_of_round : int -> bytes
(** Mycelium does not transmit nonces: both endpoints derive them from
    the monotonically increasing C-round number (§3.5, avoiding the
    nonce-leak pitfalls of [14]). *)
