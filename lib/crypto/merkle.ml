type tree = {
  levels : bytes array array;
  (* levels.(0) is the padded leaf-hash layer; the last level has one
     node, the root. *)
  n_leaves : int;
}

type proof = { index : int; leaf_count : int; siblings : bytes list }

let leaf_prefix = Bytes.make 1 '\x00'

let leaf_hash_sub leaf ~pos ~len =
  let ctx = Sha256.init () in
  Sha256.update ctx leaf_prefix;
  Sha256.update_sub ctx leaf ~pos ~len;
  Sha256.finalize ctx

let leaf_hash leaf = leaf_hash_sub leaf ~pos:0 ~len:(Bytes.length leaf)

let node_hash l r =
  let ctx = Sha256.init () in
  Sha256.update ctx (Bytes.make 1 '\x01');
  Sha256.update ctx l;
  Sha256.update ctx r;
  Sha256.finalize ctx

let empty_hash = Sha256.digest_string "mycelium:merkle:empty"

let next_pow2 n =
  let rec go v = if v >= n then v else go (v * 2) in
  go 1

let build_hashed hashes =
  let n = Array.length hashes in
  if n = 0 then invalid_arg "Merkle.build_hashed: no leaves";
  let padded = next_pow2 n in
  let layer0 =
    Array.init padded (fun i -> if i < n then hashes.(i) else empty_hash)
  in
  let rec build_up acc layer =
    if Array.length layer = 1 then List.rev (layer :: acc)
    else begin
      let next =
        Array.init
          (Array.length layer / 2)
          (fun i -> node_hash layer.(2 * i) layer.((2 * i) + 1))
      in
      build_up (layer :: acc) next
    end
  in
  { levels = Array.of_list (build_up [] layer0); n_leaves = n }

let build leaves = build_hashed (Array.map leaf_hash leaves)

let root t = t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = t.n_leaves
let depth t = Array.length t.levels - 1

let prove t index =
  if index < 0 || index >= t.n_leaves then invalid_arg "Merkle.prove: index out of range";
  let siblings = ref [] in
  let pos = ref index in
  for level = 0 to depth t - 1 do
    let sibling = !pos lxor 1 in
    siblings := t.levels.(level).(sibling) :: !siblings;
    pos := !pos / 2
  done;
  { index; leaf_count = t.n_leaves; siblings = List.rev !siblings }

let verify ~root:expected_root ~leaf proof =
  if proof.index < 0 || proof.index >= proof.leaf_count then false
  else begin
    let padded = next_pow2 proof.leaf_count in
    let expected_depth =
      let rec go d v = if v = 1 then d else go (d + 1) (v / 2) in
      go 0 padded
    in
    if List.length proof.siblings <> expected_depth then false
    else begin
      (* Recompute the root; bit i of the index dictates whether our
         node is the left or right child at level i. *)
      let h = ref (leaf_hash leaf) and pos = ref proof.index in
      List.iter
        (fun sibling ->
          h := (if !pos land 1 = 0 then node_hash !h sibling else node_hash sibling !h);
          pos := !pos / 2)
        proof.siblings;
      Bytes.equal !h expected_root
    end
  end
