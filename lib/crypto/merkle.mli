(** Binary Merkle hash trees with positional inclusion proofs.

    Mycelium uses these for the verifiable maps M1 and M2 (§3.3), the
    per-mailbox MHTs and the C-round MHT (§3.4), and the summation tree
    of the global aggregation (§4.2). Proof verification checks not
    only the hashes but also that the authentication path matches the
    binary representation of the claimed index — the property devices
    rely on to audit that the aggregator walked the tree honestly. *)

type tree

type proof = {
  index : int; (** leaf position, 0-based *)
  leaf_count : int; (** number of real leaves in the tree *)
  siblings : bytes list; (** bottom-up sibling hashes *)
}

val build : bytes array -> tree
(** Build over the given leaves (at least one). Leaves are hashed with
    a 0x00 domain-separation prefix, inner nodes with 0x01, and the
    leaf layer is padded to a power of two with a distinguished empty
    hash, so the tree shape is a function of [leaf_count] alone. *)

val build_hashed : bytes array -> tree
(** Build from precomputed {!leaf_hash} values. [build leaves] equals
    [build_hashed (Array.map leaf_hash leaves)]; callers whose leaves
    live packed in an arena hash them in place with {!leaf_hash_sub}
    and build from the hashes, skipping the per-leaf copies. *)

val root : tree -> bytes
val leaf_count : tree -> int
val depth : tree -> int

val prove : tree -> int -> proof
(** Inclusion proof for the leaf at the given index. *)

val verify : root:bytes -> leaf:bytes -> proof -> bool
(** Checks the proof against the root, including that the path
    direction at level [i] equals bit [i] of [proof.index]. *)

val leaf_hash : bytes -> bytes

val leaf_hash_sub : bytes -> pos:int -> len:int -> bytes
(** [leaf_hash] of the sub-range [pos, pos+len) without copying. *)

val node_hash : bytes -> bytes -> bytes
val empty_hash : bytes
