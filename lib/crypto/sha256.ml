(* SHA-256 over native ints masked to 32 bits; OCaml's 63-bit int holds
   all intermediate sums before masking. *)

let digest_size = 32

let mask = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  mutable finished : bool;
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    finished = false;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    w.(i) <-
      (Bytes.get_uint8 block j lsl 24)
      lor (Bytes.get_uint8 block (j + 1) lsl 16)
      lor (Bytes.get_uint8 block (j + 2) lsl 8)
      lor Bytes.get_uint8 block (j + 3)
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let update_sub ctx data ~pos:start ~len =
  if ctx.finished then invalid_arg "Sha256.update: context already finalized";
  if start < 0 || len < 0 || start + len > Bytes.length data then
    invalid_arg "Sha256.update_sub: range out of bounds";
  ctx.total <- ctx.total + len;
  let pos = ref start in
  let stop = start + len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit data start ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := start + take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while stop - !pos >= 64 do
    compress ctx data !pos;
    pos := !pos + 64
  done;
  if !pos < stop then begin
    Bytes.blit data !pos ctx.buf 0 (stop - !pos);
    ctx.buf_len <- stop - !pos
  end

let update ctx data = update_sub ctx data ~pos:0 ~len:(Bytes.length data)

let update_string ctx s = update ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  if ctx.finished then invalid_arg "Sha256.finalize: context already finalized";
  ctx.finished <- true;
  let bit_len = ctx.total * 8 in
  (* Padding: 0x80, zeros, 64-bit big-endian length. *)
  let pad_len =
    let r = (ctx.total + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  let tail = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set_uint8 tail 0 0x80;
  for i = 0 to 7 do
    Bytes.set_uint8 tail (pad_len + i) ((bit_len lsr (8 * (7 - i))) land 0xFF)
  done;
  ctx.finished <- false;
  update ctx tail;
  ctx.finished <- true;
  let out = Bytes.create 32 in
  Array.iteri
    (fun i v ->
      Bytes.set_uint8 out (4 * i) ((v lsr 24) land 0xFF);
      Bytes.set_uint8 out ((4 * i) + 1) ((v lsr 16) land 0xFF);
      Bytes.set_uint8 out ((4 * i) + 2) ((v lsr 8) land 0xFF);
      Bytes.set_uint8 out ((4 * i) + 3) (v land 0xFF))
    ctx.h;
  out

let digest data =
  let ctx = init () in
  update ctx data;
  finalize ctx

let digest_string s = digest (Bytes.unsafe_of_string s)

let hex b = Mycelium_util.Hex.encode (digest b)

let hmac ~key data =
  let key =
    if Bytes.length key > 64 then digest key else key
  in
  let block_key = Bytes.make 64 '\x00' in
  Bytes.blit key 0 block_key 0 (Bytes.length key);
  let xor_pad byte =
    Bytes.init 64 (fun i -> Char.chr (Bytes.get_uint8 block_key i lxor byte))
  in
  let inner = init () in
  update inner (xor_pad 0x36);
  update inner data;
  let inner_hash = finalize inner in
  let outer = init () in
  update outer (xor_pad 0x5c);
  update outer inner_hash;
  finalize outer

let hkdf ?salt ~ikm ~info ~length () =
  let salt = match salt with Some s -> s | None -> Bytes.make 32 '\x00' in
  let prk = hmac ~key:salt ikm in
  let blocks = (length + 31) / 32 in
  if blocks > 255 then invalid_arg "Sha256.hkdf: output too long";
  let out = Buffer.create length in
  let prev = ref Bytes.empty in
  for i = 1 to blocks do
    let data = Buffer.create (Bytes.length !prev + String.length info + 1) in
    Buffer.add_bytes data !prev;
    Buffer.add_string data info;
    Buffer.add_char data (Char.chr i);
    prev := hmac ~key:prk (Buffer.to_bytes data);
    Buffer.add_bytes out !prev
  done;
  Buffer.sub out 0 length |> Bytes.of_string
