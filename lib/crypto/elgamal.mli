(** ElGamal KEM + AEAD public-key encryption over a fixed safe-prime
    group (RFC 2409 Oakley Group 1, 768 bits).

    The paper instantiates PEnc with RSA-PKCS1; {!Rsa} provides that,
    but RSA key generation is too slow to give thousands of simulated
    devices individual keypairs. This module is the simulation's
    default PEnc: key generation is a single modular exponentiation,
    and the scheme is still genuinely asymmetric, so the simulated
    adversary learns nothing it shouldn't. Costs at paper scale are
    charged by the cost model regardless of which PEnc the simulation
    uses. *)

type public_key
type private_key

val generate : Mycelium_util.Rng.t -> public_key * private_key

val generate_insecure : Mycelium_util.Rng.t -> public_key * private_key
(** A keypair whose public half is a uniform group-range element rather
    than [g^x]: no modular exponentiation, so a million simulated
    devices can be created in seconds. The key fingerprints and
    serializes like a real one but cannot decrypt — strictly for
    simulation paths that never exercise PEnc (the mixnet's
    [fast_keys], valid only together with [fast_setup]). *)

val encrypt : Mycelium_util.Rng.t -> public_key -> bytes -> bytes
(** KEM-DEM: g^y || ChaCha20-Poly1305 under H(pk^y). *)

val decrypt : private_key -> bytes -> bytes option

val ciphertext_overhead : int
(** Bytes added to the plaintext: the 96-byte group element plus the
    16-byte AEAD tag. *)

val fingerprint : public_key -> bytes
(** SHA-256 of the encoded key: the pseudonym derivation h = H(pk). *)

val pub_to_bytes : public_key -> bytes
val pub_of_bytes : bytes -> public_key option
