let key_size = 32
let nonce_size = 12

let mask = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let le32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let store_le32 b off v =
  Bytes.set_uint8 b off (v land 0xFF);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xFF)

let init_state ~key ~nonce ~counter =
  if Bytes.length key <> key_size then invalid_arg "Chacha20: bad key size";
  if Bytes.length nonce <> nonce_size then invalid_arg "Chacha20: bad nonce size";
  let st = Array.make 16 0 in
  (* "expand 32-byte k" *)
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- le32 key (4 * i)
  done;
  st.(12) <- counter land mask;
  for i = 0 to 2 do
    st.(13 + i) <- le32 nonce (4 * i)
  done;
  st

let block ~key ~nonce ~counter =
  let st = init_state ~key ~nonce ~counter in
  let work = Array.copy st in
  for _ = 1 to 10 do
    quarter_round work 0 4 8 12;
    quarter_round work 1 5 9 13;
    quarter_round work 2 6 10 14;
    quarter_round work 3 7 11 15;
    quarter_round work 0 5 10 15;
    quarter_round work 1 6 11 12;
    quarter_round work 2 7 8 13;
    quarter_round work 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    store_le32 out (4 * i) ((work.(i) + st.(i)) land mask)
  done;
  out

let xor_into ~key ~nonce ?(counter = 1) ~src ~src_pos ~dst ~dst_pos len =
  if
    src_pos < 0 || dst_pos < 0 || len < 0
    || src_pos + len > Bytes.length src
    || dst_pos + len > Bytes.length dst
  then invalid_arg "Chacha20.xor_into: range out of bounds";
  let nblocks = (len + 63) / 64 in
  for b = 0 to nblocks - 1 do
    let ks = block ~key ~nonce ~counter:(counter + b) in
    let off = b * 64 in
    let chunk = min 64 (len - off) in
    for i = 0 to chunk - 1 do
      Bytes.set_uint8 dst
        (dst_pos + off + i)
        (Bytes.get_uint8 src (src_pos + off + i) lxor Bytes.get_uint8 ks i)
    done
  done

let encrypt ~key ~nonce ?(counter = 1) data =
  let len = Bytes.length data in
  let out = Bytes.create len in
  xor_into ~key ~nonce ~counter ~src:data ~src_pos:0 ~dst:out ~dst_pos:0 len;
  out

let nonce_of_round round =
  let b = Bytes.make nonce_size '\x00' in
  Bytes.set_int64_le b 4 (Int64.of_int round);
  b
