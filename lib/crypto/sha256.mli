(** SHA-256 (FIPS 180-4), written from scratch for the sealed
    environment. Used for pseudonym derivation (h = H(pk), §3.1),
    Merkle hash trees, hop selection (§3.4), HMAC and HKDF. *)

val digest_size : int
(** 32. *)

val digest : bytes -> bytes
(** One-shot hash of a byte string. *)

val digest_string : string -> bytes

val hex : bytes -> string
(** Convenience: lowercase hex digest. *)

type ctx
(** Incremental hashing. *)

val init : unit -> ctx
val update : ctx -> bytes -> unit

val update_sub : ctx -> bytes -> pos:int -> len:int -> unit
(** Hash a sub-range of [data] without copying it out first; equivalent
    to [update ctx (Bytes.sub data pos len)]. For arena-packed callers
    (mixnet mailbox commits) where a per-slot [Bytes.sub] per leaf
    would dominate the allocation profile. *)

val update_string : ctx -> string -> unit
val finalize : ctx -> bytes
(** May be called once per context. *)

val hmac : key:bytes -> bytes -> bytes
(** HMAC-SHA256 (RFC 2104). *)

val hkdf : ?salt:bytes -> ikm:bytes -> info:string -> length:int -> unit -> bytes
(** HKDF-SHA256 (RFC 5869) extract-then-expand. *)
