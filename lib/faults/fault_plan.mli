(** Deterministic, seed-driven fault plans for the query pipeline.

    A plan describes *which* faults a chaos run injects — per-message
    drops and delays on droppable channels, device churn, crashed
    committee members, forged ZKP contributions, and aggregator
    restarts — without holding any mutable state. Every decision is a
    pure function of [(plan.seed, fault class, event coordinates)]
    computed with {!Mycelium_util.Rng.mix64}, so:

    - the same plan injects exactly the same faults on every run
      (reproducible chaos: rerunning a failing seed replays the run);
    - injection is independent of evaluation order — components can
      consult the plan concurrently or in any order without skewing
      each other's outcomes;
    - tests can *recompute* the expected fault set and check the
      runtime's degradation report against it exactly.

    The degradation semantics the plan drives are the paper's §6.3:
    churned devices' contributions are substituted with default
    values, droppable channel sends are retried with exponential
    backoff, threshold decryption succeeds with any [threshold + 1]
    live shares, and a restarted aggregator rebuilds its summation
    tree from durable leaves. *)

type t = {
  seed : int64;  (** decision key; independent of the runtime's seed *)
  drop_rate : float;
      (** per-attempt probability that a droppable channel send is
          lost in transit *)
  max_send_attempts : int;
      (** retry budget per send (exponential backoff between tries);
          a message dropped on every attempt is permanently lost *)
  delay_rate : float;  (** probability a delivered message is late *)
  max_delay_rounds : int;  (** worst-case lateness, in C-rounds *)
  churn_rate : float;
      (** per-device probability of being offline for the whole query
          — its contributions get §6.3 default-value substitution *)
  crashed_committee : int list;
      (** committee member indices that crash before decryption and
          are excluded from the participant set *)
  forge_rate : float;
      (** per-device probability of submitting an over-weighted
          contribution with a forged ZKP (§4.6's attack) *)
  aggregator_restarts : int;
      (** how many times the aggregator crashes and recovers while
          building the summation tree *)
}

val none : t
(** The empty plan: every rate 0, nothing crashes. Injecting [none]
    must be behaviourally identical to not injecting at all. *)

val make :
  ?drop_rate:float ->
  ?max_send_attempts:int ->
  ?delay_rate:float ->
  ?max_delay_rounds:int ->
  ?churn_rate:float ->
  ?crashed_committee:int list ->
  ?forge_rate:float ->
  ?aggregator_restarts:int ->
  seed:int64 ->
  unit ->
  t
(** Defaults: all rates 0, [max_send_attempts = 4],
    [max_delay_rounds = 3]. Raises [Invalid_argument] on rates outside
    [0, 1] or non-positive attempt/delay bounds. *)

val is_none : t -> bool
(** No fault of any class can fire under this plan. *)

val equal : t -> t -> bool
(** Field-wise equality (floats compare with [Float.equal]); equal
    plans inject identical fault sets. *)

(** {2 Stateless decisions}

    Coordinates identify the event, not the call site: the same
    coordinates always give the same answer. *)

val device_churned : t -> device:int -> bool
(** Offline for the whole query round. *)

val contribution_forged : t -> device:int -> bool
(** This device forges its ZKPs for this query. Churn takes
    precedence: an offline device sends nothing, forged or not. *)

val send_dropped : t -> round:int -> source:int -> dest:int -> attempt:int -> bool
(** The [attempt]-th transmission of the (source, dest) message of a
    given round is lost. Independent across attempts, so retrying can
    succeed — the transient-loss model behind retry-with-backoff. *)

val send_delay : t -> round:int -> source:int -> dest:int -> int
(** Delivery lateness in rounds: 0 for on-time, otherwise in
    [1, max_delay_rounds]. Late messages still arrive (reordering,
    not loss). *)

val committee_crashed : t -> member:int -> bool

val backoff_units : t -> attempts:int -> int
(** Total backoff an operation retried [attempts - 1] times slept
    through, in units of the base delay: sum of 2^i for the failed
    attempts (1 + 2 + 4 + ...). 0 when the first attempt succeeded. *)

(** {2 Expected fault sets — for checking degradation reports} *)

val churned_devices : t -> n:int -> int list
(** Devices in [0, n) that [device_churned] marks offline. *)

val forging_devices : t -> n:int -> int list
(** Devices in [0, n) that forge, excluding churned ones. *)

val crashed_members : t -> size:int -> int list
(** [crashed_committee] clamped to valid indices, deduplicated,
    sorted. *)

val pp : Format.formatter -> t -> unit
