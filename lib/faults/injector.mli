(** Runtime side of fault injection: a {!Fault_plan.t} plus the
    mutable counters that become the query's degradation report.

    One injector lives for one query execution. Pipeline components
    consult it at their droppable points; it decides from the plan
    (statelessly) and records what actually happened. The counts must
    match what a test recomputes from the plan alone — that equality
    is the chaos suite's core assertion. *)

type report = {
  substituted_contributions : int;
      (** contributions replaced by the §6.3 default value because the
          contributing device was churned offline *)
  dropped_messages : int;
      (** channel sends permanently lost after the retry budget *)
  delayed_messages : int;  (** sends that arrived late but arrived *)
  channel_retries : int;  (** individual failed attempts that were retried *)
  backoff_units : int;
      (** total exponential backoff slept, in base-delay units *)
  excluded_committee_members : int;
      (** crashed members excluded from the decryption participant set *)
  forged_rejected : int;
      (** plan-injected forged-ZKP contributions rejected by
          verification *)
  aggregator_restarts : int;
      (** summation-tree rebuilds from durable leaves *)
  decryption_attempts : int;
      (** committee recruitment rounds before threshold+1 answered
          (0 until decryption runs; 1 = first try succeeded) *)
}

val empty_report : report
(** All counters zero: what a fault-free run reports. *)

val report_equal : report -> report -> bool
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(* lint: allow interface — an injector wraps a mutable degradation report; only identity comparison makes sense *)
type t

val create : Fault_plan.t -> t
val plan : t -> Fault_plan.t
val report : t -> report
(** Snapshot of the counters so far. *)

val active : t -> bool
(** [false] when the plan is {!Fault_plan.none} — callers may skip
    their injection points entirely. *)

(** {2 Injection points} *)

val device_offline : t -> device:int -> bool
(** Plan lookup only; pair with {!note_substituted} when the pipeline
    substitutes a default for the missing contribution. *)

val contribution_forged : t -> device:int -> bool

val send : t -> round:int -> source:int -> dest:int -> bool
(** One droppable channel operation: attempts delivery up to the
    plan's retry budget with exponential backoff between tries,
    recording retries, backoff, delays and permanent drops. Returns
    [true] if the message (eventually) arrived. *)

val note_dropped : t -> unit
(** A message lost in transit with no retry loop around it (a mixnet
    replica copy): counts toward [dropped_messages] directly. *)

val note_substituted : t -> unit
val note_excluded_committee : t -> int -> unit
val note_forged_rejected : t -> unit
val note_aggregator_restart : t -> unit
val note_decryption_attempts : t -> int -> unit
