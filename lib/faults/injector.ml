module Obs = Mycelium_obs.Obs

(* Every report counter mirrors into the observability registry (same
   names under the [faults.] prefix) so degradation shows up next to
   the tracing/metrics view of a run.  Metric updates are no-ops while
   tracing is disabled; the report itself is always exact.

   Each injected fault is additionally noted in the flight recorder
   and [trigger]ed, so an armed recorder turns a chaos failure into a
   replayable post-mortem dump.  Both calls are one atomic load while
   the recorder is off. *)
let m_substituted = Obs.Metrics.counter Obs.Names.faults_substituted_contributions
let m_dropped = Obs.Metrics.counter Obs.Names.faults_dropped_messages
let m_delayed = Obs.Metrics.counter Obs.Names.faults_delayed_messages
let m_retries = Obs.Metrics.counter Obs.Names.faults_channel_retries
let m_backoff = Obs.Metrics.counter Obs.Names.faults_backoff_units
let m_excluded = Obs.Metrics.counter Obs.Names.faults_excluded_committee_members
let m_forged_rejected = Obs.Metrics.counter Obs.Names.faults_forged_rejected
let m_restarts = Obs.Metrics.counter Obs.Names.faults_aggregator_restarts
let m_decrypt_attempts = Obs.Metrics.counter Obs.Names.faults_decryption_attempts

type report = {
  substituted_contributions : int;
  dropped_messages : int;
  delayed_messages : int;
  channel_retries : int;
  backoff_units : int;
  excluded_committee_members : int;
  forged_rejected : int;
  aggregator_restarts : int;
  decryption_attempts : int;
}

let empty_report =
  {
    substituted_contributions = 0;
    dropped_messages = 0;
    delayed_messages = 0;
    channel_retries = 0;
    backoff_units = 0;
    excluded_committee_members = 0;
    forged_rejected = 0;
    aggregator_restarts = 0;
    decryption_attempts = 0;
  }

let report_equal a b = a = b

let pp_report fmt r =
  Format.fprintf fmt
    "@[<hov 2>degradation{substituted=%d;@ dropped=%d;@ delayed=%d;@ retries=%d;@ \
     backoff=%d;@ excluded-committee=%d;@ forged-rejected=%d;@ restarts=%d;@ \
     decryption-attempts=%d}@]"
    r.substituted_contributions r.dropped_messages r.delayed_messages r.channel_retries
    r.backoff_units r.excluded_committee_members r.forged_rejected r.aggregator_restarts
    r.decryption_attempts

let report_to_string r = Format.asprintf "%a" pp_report r

(* Note a fault event and signal the recorder's post-mortem latch. *)
let recorded kind detail =
  Obs.Recorder.note ~detail kind;
  Obs.Recorder.trigger ()

type t = { plan : Fault_plan.t; mutable r : report }

let create plan =
  let t = { plan; r = empty_report } in
  (* The live injector's exact report is sampled (counters in the
     metrics registry only move while tracing is on); replacing the
     source on each [create] keeps it pointed at the current query. *)
  Obs.Sampler.register_source ~name:"faults" (fun () ->
      let r = t.r in
      [
        (Obs.Names.faults_substituted_contributions, float_of_int r.substituted_contributions);
        (Obs.Names.faults_dropped_messages, float_of_int r.dropped_messages);
        (Obs.Names.faults_delayed_messages, float_of_int r.delayed_messages);
        (Obs.Names.faults_channel_retries, float_of_int r.channel_retries);
        (Obs.Names.faults_backoff_units, float_of_int r.backoff_units);
        (Obs.Names.faults_excluded_committee_members, float_of_int r.excluded_committee_members);
        (Obs.Names.faults_forged_rejected, float_of_int r.forged_rejected);
        (Obs.Names.faults_aggregator_restarts, float_of_int r.aggregator_restarts);
        (Obs.Names.faults_decryption_attempts, float_of_int r.decryption_attempts);
      ]);
  t
let plan t = t.plan
let report t = t.r
let active t = not (Fault_plan.is_none t.plan)

let device_offline t ~device = Fault_plan.device_churned t.plan ~device
let contribution_forged t ~device = Fault_plan.contribution_forged t.plan ~device

let send t ~round ~source ~dest =
  let max_attempts = t.plan.Fault_plan.max_send_attempts in
  let rec attempt_send attempt =
    if Fault_plan.send_dropped t.plan ~round ~source ~dest ~attempt then begin
      if attempt >= max_attempts then begin
        let backoff = Fault_plan.backoff_units t.plan ~attempts:attempt in
        t.r <-
          {
            t.r with
            dropped_messages = t.r.dropped_messages + 1;
            backoff_units = t.r.backoff_units + backoff;
          };
        Obs.Metrics.incr m_dropped;
        Obs.Metrics.add m_backoff backoff;
        recorded "fault.drop"
          [
            ("round", Obs.Json.Int round);
            ("source", Obs.Json.Int source);
            ("dest", Obs.Json.Int dest);
            ("attempts", Obs.Json.Int attempt);
            ("backoff_units", Obs.Json.Int backoff);
          ];
        false
      end
      else begin
        t.r <- { t.r with channel_retries = t.r.channel_retries + 1 };
        Obs.Metrics.incr m_retries;
        recorded "fault.retry"
          [
            ("round", Obs.Json.Int round);
            ("source", Obs.Json.Int source);
            ("dest", Obs.Json.Int dest);
            ("attempt", Obs.Json.Int attempt);
          ];
        attempt_send (attempt + 1)
      end
    end
    else begin
      let backoff = Fault_plan.backoff_units t.plan ~attempts:attempt in
      t.r <- { t.r with backoff_units = t.r.backoff_units + backoff };
      Obs.Metrics.add m_backoff backoff;
      if backoff > 0 then
        recorded "fault.backoff"
          [ ("round", Obs.Json.Int round); ("units", Obs.Json.Int backoff) ];
      if Fault_plan.send_delay t.plan ~round ~source ~dest > 0 then begin
        t.r <- { t.r with delayed_messages = t.r.delayed_messages + 1 };
        Obs.Metrics.incr m_delayed;
        recorded "fault.delay"
          [
            ("round", Obs.Json.Int round);
            ("source", Obs.Json.Int source);
            ("dest", Obs.Json.Int dest);
          ]
      end;
      true
    end
  in
  attempt_send 1

let note_dropped t =
  t.r <- { t.r with dropped_messages = t.r.dropped_messages + 1 };
  Obs.Metrics.incr m_dropped;
  recorded "fault.drop" []

let note_substituted t =
  t.r <- { t.r with substituted_contributions = t.r.substituted_contributions + 1 };
  Obs.Metrics.incr m_substituted;
  recorded "fault.substituted" []

let note_excluded_committee t n =
  t.r <- { t.r with excluded_committee_members = t.r.excluded_committee_members + n };
  Obs.Metrics.add m_excluded n;
  if n > 0 then recorded "fault.excluded_committee" [ ("members", Obs.Json.Int n) ]

let note_forged_rejected t =
  t.r <- { t.r with forged_rejected = t.r.forged_rejected + 1 };
  Obs.Metrics.incr m_forged_rejected;
  recorded "fault.forged_rejected" []

let note_aggregator_restart t =
  t.r <- { t.r with aggregator_restarts = t.r.aggregator_restarts + 1 };
  Obs.Metrics.incr m_restarts;
  recorded "fault.aggregator_restart" []

let note_decryption_attempts t n =
  t.r <- { t.r with decryption_attempts = t.r.decryption_attempts + n };
  Obs.Metrics.add m_decrypt_attempts n;
  (* Only an actual fallback (more than one threshold-decryption
     attempt) is a fault-class event. *)
  if n > 1 then recorded "decrypt.fallback" [ ("attempts", Obs.Json.Int n) ]
