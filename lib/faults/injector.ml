type report = {
  substituted_contributions : int;
  dropped_messages : int;
  delayed_messages : int;
  channel_retries : int;
  backoff_units : int;
  excluded_committee_members : int;
  forged_rejected : int;
  aggregator_restarts : int;
  decryption_attempts : int;
}

let empty_report =
  {
    substituted_contributions = 0;
    dropped_messages = 0;
    delayed_messages = 0;
    channel_retries = 0;
    backoff_units = 0;
    excluded_committee_members = 0;
    forged_rejected = 0;
    aggregator_restarts = 0;
    decryption_attempts = 0;
  }

let report_equal a b = a = b

let pp_report fmt r =
  Format.fprintf fmt
    "@[<hov 2>degradation{substituted=%d;@ dropped=%d;@ delayed=%d;@ retries=%d;@ \
     backoff=%d;@ excluded-committee=%d;@ forged-rejected=%d;@ restarts=%d;@ \
     decryption-attempts=%d}@]"
    r.substituted_contributions r.dropped_messages r.delayed_messages r.channel_retries
    r.backoff_units r.excluded_committee_members r.forged_rejected r.aggregator_restarts
    r.decryption_attempts

let report_to_string r = Format.asprintf "%a" pp_report r

type t = { plan : Fault_plan.t; mutable r : report }

let create plan = { plan; r = empty_report }
let plan t = t.plan
let report t = t.r
let active t = not (Fault_plan.is_none t.plan)

let device_offline t ~device = Fault_plan.device_churned t.plan ~device
let contribution_forged t ~device = Fault_plan.contribution_forged t.plan ~device

let send t ~round ~source ~dest =
  let max_attempts = t.plan.Fault_plan.max_send_attempts in
  let rec attempt_send attempt =
    if Fault_plan.send_dropped t.plan ~round ~source ~dest ~attempt then begin
      if attempt >= max_attempts then begin
        t.r <-
          {
            t.r with
            dropped_messages = t.r.dropped_messages + 1;
            backoff_units = t.r.backoff_units + Fault_plan.backoff_units t.plan ~attempts:attempt;
          };
        false
      end
      else begin
        t.r <- { t.r with channel_retries = t.r.channel_retries + 1 };
        attempt_send (attempt + 1)
      end
    end
    else begin
      t.r <-
        {
          t.r with
          backoff_units = t.r.backoff_units + Fault_plan.backoff_units t.plan ~attempts:attempt;
        };
      if Fault_plan.send_delay t.plan ~round ~source ~dest > 0 then
        t.r <- { t.r with delayed_messages = t.r.delayed_messages + 1 };
      true
    end
  in
  attempt_send 1

let note_dropped t =
  t.r <- { t.r with dropped_messages = t.r.dropped_messages + 1 }

let note_substituted t =
  t.r <- { t.r with substituted_contributions = t.r.substituted_contributions + 1 }

let note_excluded_committee t n =
  t.r <- { t.r with excluded_committee_members = t.r.excluded_committee_members + n }

let note_forged_rejected t =
  t.r <- { t.r with forged_rejected = t.r.forged_rejected + 1 }

let note_aggregator_restart t =
  t.r <- { t.r with aggregator_restarts = t.r.aggregator_restarts + 1 }

let note_decryption_attempts t n =
  t.r <- { t.r with decryption_attempts = t.r.decryption_attempts + n }
