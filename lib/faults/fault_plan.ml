module Rng = Mycelium_util.Rng

type t = {
  seed : int64;
  drop_rate : float;
  max_send_attempts : int;
  delay_rate : float;
  max_delay_rounds : int;
  churn_rate : float;
  crashed_committee : int list;
  forge_rate : float;
  aggregator_restarts : int;
}

let none =
  {
    seed = 0L;
    drop_rate = 0.;
    max_send_attempts = 4;
    delay_rate = 0.;
    max_delay_rounds = 3;
    churn_rate = 0.;
    crashed_committee = [];
    forge_rate = 0.;
    aggregator_restarts = 0;
  }

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault_plan.make: %s must be in [0, 1]" name)

let make ?(drop_rate = 0.) ?(max_send_attempts = 4) ?(delay_rate = 0.)
    ?(max_delay_rounds = 3) ?(churn_rate = 0.) ?(crashed_committee = [])
    ?(forge_rate = 0.) ?(aggregator_restarts = 0) ~seed () =
  check_rate "drop_rate" drop_rate;
  check_rate "delay_rate" delay_rate;
  check_rate "churn_rate" churn_rate;
  check_rate "forge_rate" forge_rate;
  if max_send_attempts < 1 then invalid_arg "Fault_plan.make: max_send_attempts < 1";
  if max_delay_rounds < 1 then invalid_arg "Fault_plan.make: max_delay_rounds < 1";
  if aggregator_restarts < 0 then invalid_arg "Fault_plan.make: negative restarts";
  {
    seed;
    drop_rate;
    max_send_attempts;
    delay_rate;
    max_delay_rounds;
    churn_rate;
    crashed_committee;
    forge_rate;
    aggregator_restarts;
  }

let rate_zero r = Float.equal r 0.

let is_none t =
  rate_zero t.drop_rate && rate_zero t.delay_rate && rate_zero t.churn_rate
  && rate_zero t.forge_rate
  && (match t.crashed_committee with [] -> true | _ :: _ -> false)
  && t.aggregator_restarts = 0

let equal a b =
  Int64.equal a.seed b.seed
  && Float.equal a.drop_rate b.drop_rate
  && Int.equal a.max_send_attempts b.max_send_attempts
  && Float.equal a.delay_rate b.delay_rate
  && Int.equal a.max_delay_rounds b.max_delay_rounds
  && Float.equal a.churn_rate b.churn_rate
  && List.equal Int.equal a.crashed_committee b.crashed_committee
  && Float.equal a.forge_rate b.forge_rate
  && Int.equal a.aggregator_restarts b.aggregator_restarts

(* Fault-class salts keep the decision streams of different classes
   independent even at identical coordinates. *)
let salt_churn = 0x43485552L (* "CHUR" *)
let salt_drop = 0x44524F50L (* "DROP" *)
let salt_delay = 0x44454C41L (* "DELA" *)
let salt_forge = 0x464F5247L (* "FORG" *)

let key t salt coords =
  List.fold_left
    (fun acc v -> Rng.mix64 acc (Int64.of_int v))
    (Rng.mix64 t.seed salt) coords

(* 53 uniform bits of the decision key as a float in [0, 1). *)
let chance k = Int64.to_float (Int64.shift_right_logical k 11) *. 0x1.0p-53

let device_churned t ~device =
  t.churn_rate > 0. && chance (key t salt_churn [ device ]) < t.churn_rate

let contribution_forged t ~device =
  t.forge_rate > 0.
  && (not (device_churned t ~device))
  && chance (key t salt_forge [ device ]) < t.forge_rate

let send_dropped t ~round ~source ~dest ~attempt =
  t.drop_rate > 0.
  && chance (key t salt_drop [ round; source; dest; attempt ]) < t.drop_rate

let send_delay t ~round ~source ~dest =
  if rate_zero t.delay_rate then 0
  else begin
    let k = key t salt_delay [ round; source; dest ] in
    if chance k >= t.delay_rate then 0
    else 1 + Int64.to_int (Int64.rem (Int64.shift_right_logical (Rng.mix64 k 1L) 1) (Int64.of_int t.max_delay_rounds))
  end

let committee_crashed t ~member = List.exists (Int.equal member) t.crashed_committee

let backoff_units t ~attempts =
  ignore t;
  (* attempts - 1 failed tries slept 1, 2, 4, ... base-delay units. *)
  let rec go i acc = if i >= attempts then acc else go (i + 1) (acc + (1 lsl (i - 1))) in
  if attempts <= 1 then 0 else go 1 0

let churned_devices t ~n =
  List.filter (fun d -> device_churned t ~device:d) (List.init n Fun.id)

let forging_devices t ~n =
  List.filter (fun d -> contribution_forged t ~device:d) (List.init n Fun.id)

let crashed_members t ~size =
  List.sort_uniq Int.compare (List.filter (fun m -> m >= 0 && m < size) t.crashed_committee)

let pp fmt t =
  Format.fprintf fmt
    "@[<hov 2>fault-plan{seed=%Ld;@ drop=%.2f/%d;@ delay=%.2f/%d;@ churn=%.2f;@ \
     crashed=[%s];@ forge=%.2f;@ restarts=%d}@]"
    t.seed t.drop_rate t.max_send_attempts t.delay_rate t.max_delay_rounds t.churn_rate
    (String.concat ";" (List.map string_of_int t.crashed_committee))
    t.forge_rate t.aggregator_restarts
