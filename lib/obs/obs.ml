(* Structured tracing + metrics for the query pipeline.

   Design constraints (see DESIGN.md §8):
   - The disabled path of every instrumentation point is a single load
     of [enabled_flag] plus a branch; no allocation, no clock read, no
     atomic write happens unless tracing is on.  The flag is write-once
     configuration: it is set from MYCELIUM_TRACE at startup or by
     [enable]/[with_enabled] before a run, never mid-phase.
   - Span recording is per-domain: each domain owns a growable buffer
     reached through Domain.DLS, so instrumented code inside Pool
     workers records without taking any lock (the global registry
     mutex is touched once per domain, at first use).
   - Observability never draws from any [Rng.t] and never feeds back
     into results: query output, DP noise and degradation reports are
     byte-identical with tracing on or off.  Timestamps exist only in
     exported traces. *)

(* ------------------------------------------------------------------ *)
(* JSON (the one encoder/parser in the tree; bench and the exporters   *)
(* share it)                                                           *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool a, Bool b -> Bool.equal a b
    | Int a, Int b -> Int.equal a b
    | Num a, Num b -> Float.equal a b
    | Str a, Str b -> String.equal a b
    | List a, List b -> List.equal equal a b
    | Obj a, Obj b ->
      List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
    | (Null | Bool _ | Int _ | Num _ | Str _ | List _ | Obj _), _ -> false

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec to_buf buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6f" f)
    | Str s -> add_escaped buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buf buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    to_buf buf j;
    Buffer.contents buf

  exception Parse_fail of string

  (* A small strict parser, enough to round-trip everything the emitter
     above produces (the exporter tests lean on this).  \uXXXX escapes
     decode to a single byte for code points < 256 and to '?' above
     (the emitter only writes them for control characters). *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let peek_is c = !pos < n && Char.equal s.[!pos] c in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else begin
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'; advance ()
            | '\\' -> Buffer.add_char buf '\\'; advance ()
            | '/' -> Buffer.add_char buf '/'; advance ()
            | 'b' -> Buffer.add_char buf '\b'; advance ()
            | 'f' -> Buffer.add_char buf '\012'; advance ()
            | 'n' -> Buffer.add_char buf '\n'; advance ()
            | 'r' -> Buffer.add_char buf '\r'; advance ()
            | 't' -> Buffer.add_char buf '\t'; advance ()
            | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
          | c -> Buffer.add_char buf c; advance (); go ()
        end
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
      then begin
        match float_of_string_opt tok with
        | Some f -> Num f
        | None -> fail "bad number"
      end
      else begin
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with
          | Some f -> Num f
          | None -> fail "bad number")
      end
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek_is '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek_is ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_fail msg -> Error msg

  let member key = function
    | Obj kvs ->
      List.find_map (fun (k, v) -> if String.equal k key then Some v else None) kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* The switch                                                          *)
(* ------------------------------------------------------------------ *)

(* lint: allow determinism — wall-clock feeds span timestamps only; trace
   content is diagnostic and never enters query results *)
let now () = Unix.gettimeofday ()

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "MYCELIUM_TRACE" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let enabled () = Atomic.get enabled_flag

(* Trace epoch: all span timestamps are seconds since the last enable
   (or process start, for MYCELIUM_TRACE). *)
let epoch = Atomic.make (now ())

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.set epoch (now ());
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_attrs : (string * Json.t) list;
  sp_dom : int;  (* numeric domain id *)
  sp_depth : int;  (* nesting depth within its domain at start *)
  sp_seq : int;  (* per-domain start order *)
  sp_start : float;  (* seconds since trace epoch *)
  mutable sp_end : float;  (* NaN while still open *)
}

type dbuf = {
  dom_id : int;
  mutable items : span array;
  mutable len : int;
  mutable depth : int;
  mutable seq : int;
}

let registry : dbuf list ref = ref []
let registry_mutex = Mutex.create ()

let dbuf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom_id = (Domain.self () :> int); items = [||]; len = 0; depth = 0; seq = 0 }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let my_buf () = Domain.DLS.get dbuf_key

let push b sp =
  if b.len = Array.length b.items then begin
    let cap = max 64 (2 * Array.length b.items) in
    let items = Array.make cap sp in
    Array.blit b.items 0 items 0 b.len;
    b.items <- items
  end;
  b.items.(b.len) <- sp;
  b.len <- b.len + 1

let record_enter name attrs =
  let b = my_buf () in
  let sp =
    {
      sp_name = name;
      sp_attrs = attrs;
      sp_dom = b.dom_id;
      sp_depth = b.depth;
      sp_seq = b.seq;
      sp_start = now () -. Atomic.get epoch;
      sp_end = Float.nan;
    }
  in
  push b sp;
  b.seq <- b.seq + 1;
  b.depth <- b.depth + 1;
  (b, sp)

let record_exit (b, sp) =
  b.depth <- b.depth - 1;
  sp.sp_end <- now () -. Atomic.get epoch

let span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let open_sp = record_enter name attrs in
    Fun.protect ~finally:(fun () -> record_exit open_sp) f
  end

(* Hot-op sampling: record one span for every [every]-th call through
   the sampler; all other calls (and every call while disabled) just
   run [f].  The counter only advances while tracing is on, so the
   disabled path stays a branch. *)
type sampler = { every : int; calls : int Atomic.t }

let sampler ~every =
  if every < 1 then invalid_arg "Obs.sampler: every must be >= 1";
  { every; calls = Atomic.make 0 }

let sampled_span s ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let k = Atomic.fetch_and_add s.calls 1 in
    if k mod s.every = 0 then span ?attrs name f else f ()
  end

let all_spans () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let out =
    List.concat_map (fun b -> Array.to_list (Array.sub b.items 0 b.len)) bufs
  in
  List.sort
    (fun a b ->
      match Float.compare a.sp_start b.sp_start with
      | 0 -> (
        match Int.compare a.sp_dom b.sp_dom with
        | 0 -> Int.compare a.sp_seq b.sp_seq
        | c -> c)
      | c -> c)
    out

let span_count () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left (fun acc b -> acc + b.len) 0 bufs

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = { c_name : string; c : int Atomic.t }
  type gauge = { g_name : string; g : float Atomic.t }

  type histogram = {
    h_name : string;
    bounds : float array;  (* ascending upper bounds; +inf implicit *)
    counts : int Atomic.t array;  (* length = bounds + 1 (overflow) *)
    h_sum : float Atomic.t;
  }

  type metric = C of counter | G of gauge | H of histogram

  let table : (string, metric) Hashtbl.t = Hashtbl.create 64
  let table_mutex = Mutex.create ()

  let register name mk =
    Mutex.lock table_mutex;
    let m =
      match Hashtbl.find_opt table name with
      | Some m -> m
      | None ->
        let m = mk () in
        Hashtbl.replace table name m;
        m
    in
    Mutex.unlock table_mutex;
    m

  let counter name =
    match register name (fun () -> C { c_name = name; c = Atomic.make 0 }) with
    | C c -> c
    | G _ | H _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " registered with another kind")

  let gauge name =
    match register name (fun () -> G { g_name = name; g = Atomic.make 0. }) with
    | G g -> g
    | C _ | H _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " registered with another kind")

  (* Default buckets: powers of two from 1 to 2^20 — generic enough for
     counts and for microsecond-scale durations expressed in us. *)
  let default_buckets = Array.init 21 (fun i -> Float.of_int (1 lsl i))

  let histogram ?(buckets = default_buckets) name =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.Metrics.histogram: buckets must be strictly ascending")
      buckets;
    match
      register name (fun () ->
          H
            {
              h_name = name;
              bounds = Array.copy buckets;
              counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              h_sum = Atomic.make 0.;
            })
    with
    | H h -> h
    | C _ | G _ -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " registered with another kind")

  let incr c = if Atomic.get enabled_flag then Atomic.incr c.c
  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c n)
  let value c = Atomic.get c.c

  let set g v = if Atomic.get enabled_flag then Atomic.set g.g v
  let gauge_value g = Atomic.get g.g

  (* First bucket whose upper bound is >= v; the last slot is the
     overflow bucket. *)
  let bucket_index h v =
    let n = Array.length h.bounds in
    let rec go i = if i >= n then n else if v <= h.bounds.(i) then i else go (i + 1) in
    go 0

  let rec atomic_add_float a x =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

  let observe h v =
    if Atomic.get enabled_flag then begin
      Atomic.incr h.counts.(bucket_index h v);
      atomic_add_float h.h_sum v
    end

  let histogram_counts h = Array.map Atomic.get h.counts
  let histogram_sum h = Atomic.get h.h_sum
  let histogram_count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

  let reset_values () =
    Mutex.lock table_mutex;
    (* lint: allow determinism — per-entry reset is order-insensitive *)
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c -> Atomic.set c.c 0
        | G g -> Atomic.set g.g 0.
        | H h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.h_sum 0.)
      table;
    Mutex.unlock table_mutex

  let sorted_metrics () =
    Mutex.lock table_mutex;
    (* lint: allow determinism — fold order is erased by the sort below *)
    let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [] in
    Mutex.unlock table_mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

  let to_json () =
    let entry = function
      | C c -> Json.Int (value c)
      | G g -> Json.Num (gauge_value g)
      | H h ->
        Json.Obj
          [
            ("count", Json.Int (histogram_count h));
            ("sum", Json.Num (histogram_sum h));
            ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Num b) h.bounds)));
            ( "counts",
              Json.List
                (Array.to_list (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts)) );
          ]
    in
    Json.Obj (List.map (fun (name, m) -> (name, entry m)) (sorted_metrics ()))

  let to_table () =
    let buf = Buffer.create 512 in
    List.iter
      (fun (name, m) ->
        match m with
        | C c ->
          if value c <> 0 then Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name (value c))
        | G g ->
          if not (Float.equal (gauge_value g) 0.) then
            Buffer.add_string buf (Printf.sprintf "  %-40s %.3f\n" name (gauge_value g))
        | H h ->
          if histogram_count h <> 0 then
            Buffer.add_string buf
              (Printf.sprintf "  %-40s count=%d sum=%.3f mean=%.3f\n" name
                 (histogram_count h) (histogram_sum h)
                 (histogram_sum h /. float_of_int (histogram_count h))))
      (sorted_metrics ());
    if Buffer.length buf = 0 then "  (no metrics recorded)\n" else Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Reset / scoping                                                     *)
(* ------------------------------------------------------------------ *)

(* Clear every recorded span and every metric value (registrations
   survive).  Must only be called while no instrumented parallel work
   is in flight. *)
let reset () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun b ->
      b.items <- [||];
      b.len <- 0;
      b.depth <- 0;
      b.seq <- 0)
    bufs;
  Metrics.reset_values ();
  Atomic.set epoch (now ())

let with_enabled f =
  let was = Atomic.get enabled_flag in
  enable ();
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag was) f

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let duration_s sp = if Float.is_nan sp.sp_end then 0. else Float.max 0. (sp.sp_end -. sp.sp_start)

(* Pretty console tree: spans grouped by domain, indented by nesting
   depth, in start order. *)
let console_tree () =
  let buf = Buffer.create 1024 in
  let spans = all_spans () in
  let doms = List.sort_uniq Int.compare (List.map (fun sp -> sp.sp_dom) spans) in
  Buffer.add_string buf
    (Printf.sprintf "=== trace: %d spans across %d domain(s) ===\n" (List.length spans)
       (List.length doms));
  List.iter
    (fun dom ->
      Buffer.add_string buf (Printf.sprintf "[domain %d]\n" dom);
      let mine =
        List.filter (fun sp -> sp.sp_dom = dom) spans
        |> List.sort (fun a b -> Int.compare a.sp_seq b.sp_seq)
      in
      List.iter
        (fun sp ->
          let indent = String.make (2 + (2 * sp.sp_depth)) ' ' in
          let attrs =
            match sp.sp_attrs with
            | [] -> ""
            | kvs ->
              "  {"
              ^ String.concat ", "
                  (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) kvs)
              ^ "}"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%-28s %10.3f ms%s\n" indent sp.sp_name
               (duration_s sp *. 1e3) attrs))
        mine)
    doms;
  Buffer.contents buf

(* Chrome trace_event JSON, loadable in about://tracing or Perfetto:
   one complete ("X") event per span, ts/dur in microseconds, tid = the
   recording domain. *)
let chrome_trace () =
  let events =
    List.map
      (fun sp ->
        Json.Obj
          [
            ("name", Json.Str sp.sp_name);
            ("cat", Json.Str "mycelium");
            ("ph", Json.Str "X");
            ("ts", Json.Num (sp.sp_start *. 1e6));
            ("dur", Json.Num (duration_s sp *. 1e6));
            ("pid", Json.Int 0);
            ("tid", Json.Int sp.sp_dom);
            ("args", Json.Obj sp.sp_attrs);
          ])
      (all_spans ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("tool", Json.Str "mycelium-obs") ]);
    ]

let chrome_trace_string () = Json.to_string (chrome_trace ())

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace_string ()))

let metrics_json = Metrics.to_json
let metrics_table = Metrics.to_table
