(* Structured tracing + metrics + continuous telemetry for the query
   pipeline.

   Design constraints (see DESIGN.md §8 and §13):
   - The disabled path of every instrumentation point is a single load
     of one atomic flag plus a branch; no allocation, no clock read, no
     atomic write happens unless that subsystem is on.  Spans check
     [live_flag] (tracing or the flight recorder), metric updates check
     [enabled_flag], [Recorder.note] checks the recorder flag, and the
     background sampler runs on its own thread so instrumented code
     never pays for it at all.  The flags are write-once configuration:
     set from the environment at startup or by [enable] / [Recorder.
     enable] / [Sampler.start] before a run, never mid-phase.
   - Span recording is per-domain: each domain owns a growable buffer
     reached through Domain.DLS, so instrumented code inside Pool
     workers records without taking any lock (the global registry
     mutex is touched once per domain, at first use).
   - Observability never draws from any [Rng.t] and never feeds back
     into results: query output, DP noise and degradation reports are
     byte-identical with tracing, recorder and sampler on or off.
     Timestamps exist only in exported traces. *)

(* ------------------------------------------------------------------ *)
(* JSON (the one encoder/parser in the tree; bench and the exporters   *)
(* share it)                                                           *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool a, Bool b -> Bool.equal a b
    | Int a, Int b -> Int.equal a b
    | Num a, Num b -> Float.equal a b
    | Str a, Str b -> String.equal a b
    | List a, List b -> List.equal equal a b
    | Obj a, Obj b ->
      List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
    | (Null | Bool _ | Int _ | Num _ | Str _ | List _ | Obj _), _ -> false

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6f" f

  let rec to_buf buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> add_escaped buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buf buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    to_buf buf j;
    Buffer.contents buf

  (* Streamed emission: the document is written piece by piece through
     a reused scratch buffer (needed only for string escaping), so the
     peak allocation is one escaped string, not the whole document. *)
  let to_channel oc j =
    let scratch = Buffer.create 64 in
    let str s =
      Buffer.clear scratch;
      add_escaped scratch s;
      Buffer.output_buffer oc scratch
    in
    let rec go = function
      | Null -> output_string oc "null"
      | Bool b -> output_string oc (if b then "true" else "false")
      | Int i -> output_string oc (string_of_int i)
      | Num f -> output_string oc (num_to_string f)
      | Str s -> str s
      | List xs ->
        output_char oc '[';
        List.iteri
          (fun i x ->
            if i > 0 then output_char oc ',';
            go x)
          xs;
        output_char oc ']'
      | Obj kvs ->
        output_char oc '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then output_char oc ',';
            str k;
            output_char oc ':';
            go v)
          kvs;
        output_char oc '}'
    in
    go j

  exception Parse_fail of string

  (* Maximum container nesting the parser accepts.  The recursive
     descent would otherwise turn "[[[[…" into a stack overflow — a
     hard crash rather than an [Error] — and the flight-recorder /
     ledger files make the parser load-bearing for untrusted input. *)
  let max_depth = 512

  (* A small strict parser, enough to round-trip everything the emitter
     above produces (the exporter tests lean on this).  \uXXXX escapes
     decode to UTF-8; surrogate pairs combine into one code point, and
     lone or misordered surrogates are an error. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let peek_is c = !pos < n && Char.equal s.[!pos] c in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    (* Exactly four hex digits; [int_of_string "0x…"] would accept
       OCaml-isms like underscores. *)
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = ref 0 in
      for k = 0 to 3 do
        let c = s.[!pos + k] in
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail "bad \\u escape"
        in
        v := (!v lsl 4) lor d
      done;
      pos := !pos + 4;
      !v
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else begin
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'; advance ()
            | '\\' -> Buffer.add_char buf '\\'; advance ()
            | '/' -> Buffer.add_char buf '/'; advance ()
            | 'b' -> Buffer.add_char buf '\b'; advance ()
            | 'f' -> Buffer.add_char buf '\012'; advance ()
            | 'n' -> Buffer.add_char buf '\n'; advance ()
            | 'r' -> Buffer.add_char buf '\r'; advance ()
            | 't' -> Buffer.add_char buf '\t'; advance ()
            | 'u' ->
              advance ();
              let code = hex4 () in
              let cp =
                if code >= 0xD800 && code <= 0xDBFF then begin
                  (* High surrogate: only valid immediately followed by
                     an escaped low surrogate. *)
                  if
                    not (!pos + 2 <= n && Char.equal s.[!pos] '\\'
                        && Char.equal s.[!pos + 1] 'u')
                  then fail "unpaired high surrogate";
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired high surrogate";
                  0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else if code >= 0xDC00 && code <= 0xDFFF then
                  fail "unpaired low surrogate"
                else code
              in
              add_utf8 buf cp
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
          | c -> Buffer.add_char buf c; advance (); go ()
        end
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
      then begin
        match float_of_string_opt tok with
        | Some f -> Num f
        | None -> fail "bad number"
      end
      else begin
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with
          | Some f -> Num f
          | None -> fail "bad number")
      end
    in
    let rec parse_value depth =
      if depth > max_depth then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek_is '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek_is ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_fail msg -> Error msg

  let member key = function
    | Obj kvs ->
      List.find_map (fun (k, v) -> if String.equal k key then Some v else None) kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* The switches                                                        *)
(* ------------------------------------------------------------------ *)

(* lint: allow determinism — wall-clock feeds span timestamps only; trace
   content is diagnostic and never enters query results *)
let now () = Unix.gettimeofday ()

let env_truthy var =
  match Sys.getenv_opt var with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let enabled_flag = Atomic.make (env_truthy "MYCELIUM_TRACE")

(* Flight-recorder switch lives next to the tracing switch so the span
   fast path can check one derived flag (below) for both. *)
let recorder_flag = Atomic.make (env_truthy "MYCELIUM_RECORDER")

(* [live_flag] = tracing or recording: the single load on the span fast
   path.  Recomputed by every flag setter (they are rare, configuration
   events); never flipped mid-phase. *)
let live_flag =
  Atomic.make (Atomic.get enabled_flag || Atomic.get recorder_flag)

let refresh_live () =
  Atomic.set live_flag (Atomic.get enabled_flag || Atomic.get recorder_flag)

let enabled () = Atomic.get enabled_flag

(* Trace epoch: all span timestamps are seconds since the last enable
   (or process start, for MYCELIUM_TRACE). *)
let epoch = Atomic.make (now ())

let now_s () = now () -. Atomic.get epoch
let elapsed_ns () = int_of_float (now_s () *. 1e9)

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.set epoch (now ());
    Atomic.set enabled_flag true
  end;
  refresh_live ()

let disable () =
  Atomic.set enabled_flag false;
  refresh_live ()

(* ------------------------------------------------------------------ *)
(* Metric-name registry                                                *)
(* ------------------------------------------------------------------ *)

(* Every metric or time-series name used by library code is declared
   here; mycelium-lint's obs-guard rule flags registrations that pass a
   bare string literal instead of one of these constants, so the full
   vocabulary of exported names stays greppable in one place.  Bench
   and test executables are free zones and may register ad-hoc names. *)
module Names = struct
  (* lib/math — ring layer *)
  let rq_limb_ntt_muls = "rq.limb_ntt_muls"
  let rq_limb_transforms = "rq.limb_transforms"

  (* lib/bgv *)
  let bgv_encrypts = "bgv.encrypts"
  let bgv_ciphertext_muls = "bgv.ciphertext_muls"
  let bgv_relinearizations = "bgv.relinearizations"

  (* lib/parallel *)
  let pool_chunks_run = "pool.chunks_run"
  let pool_task_exceptions = "pool.task_exceptions"
  let pool_domains = "pool.domains"
  let pool_tasks_run = "pool.tasks_run"
  let pool_exceptions_caught = "pool.exceptions_caught"

  (* lib/faults — mirrors of [Injector.report] *)
  let faults_substituted_contributions = "faults.substituted_contributions"
  let faults_dropped_messages = "faults.dropped_messages"
  let faults_delayed_messages = "faults.delayed_messages"
  let faults_channel_retries = "faults.channel_retries"
  let faults_backoff_units = "faults.backoff_units"
  let faults_excluded_committee_members = "faults.excluded_committee_members"
  let faults_forged_rejected = "faults.forged_rejected"
  let faults_aggregator_restarts = "faults.aggregator_restarts"
  let faults_decryption_attempts = "faults.decryption_attempts"

  (* lib/mixnet *)
  let mixnet_deposited_bytes = "mixnet.deposited_bytes"
  let onion_layers_peeled = "onion.layers_peeled"
  let mixnet_dummies_uploaded = "mixnet.dummies_uploaded"
  let mixnet_anonymity_set = "mixnet.anonymity_set"
  let mixnet_established_paths = "mixnet.established_paths"
  let mixnet_arena_bytes = "mixnet.arena_bytes"
  let mixnet_key_bytes = "mixnet.key_bytes"
  let mixnet_route_entries = "mixnet.route_entries"
  let mixnet_mailboxes_in_use = "mixnet.mailboxes_in_use"

  (* lib/serve — the batched serving layer *)
  let serve_admitted = "serve.admitted"
  let serve_rejected = "serve.rejected"
  let serve_batches = "serve.batches"
  let serve_batch_members = "serve.batch_members"
  let serve_cache_hits = "serve.cache_hits"
  let serve_cache_misses = "serve.cache_misses"
  let serve_cache_evictions = "serve.cache_evictions"

  (* Sampler built-ins (Gc.quick_stat) *)
  let gc_top_heap_words = "gc.top_heap_words"
  let gc_heap_words = "gc.heap_words"
  let gc_minor_collections = "gc.minor_collections"
  let gc_major_collections = "gc.major_collections"
  let gc_promoted_words = "gc.promoted_words"

  let all =
    [
      rq_limb_ntt_muls;
      rq_limb_transforms;
      bgv_encrypts;
      bgv_ciphertext_muls;
      bgv_relinearizations;
      pool_chunks_run;
      pool_task_exceptions;
      pool_domains;
      pool_tasks_run;
      pool_exceptions_caught;
      faults_substituted_contributions;
      faults_dropped_messages;
      faults_delayed_messages;
      faults_channel_retries;
      faults_backoff_units;
      faults_excluded_committee_members;
      faults_forged_rejected;
      faults_aggregator_restarts;
      faults_decryption_attempts;
      mixnet_deposited_bytes;
      onion_layers_peeled;
      mixnet_dummies_uploaded;
      mixnet_anonymity_set;
      mixnet_established_paths;
      mixnet_arena_bytes;
      mixnet_key_bytes;
      mixnet_route_entries;
      mixnet_mailboxes_in_use;
      serve_admitted;
      serve_rejected;
      serve_batches;
      serve_batch_members;
      serve_cache_hits;
      serve_cache_misses;
      serve_cache_evictions;
      gc_top_heap_words;
      gc_heap_words;
      gc_minor_collections;
      gc_major_collections;
      gc_promoted_words;
    ]
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* A lock-free bounded ring of the last N structured events.  Writers
   claim a slot with one [fetch_and_add] and store an immutable event
   record into it; a torn read can at worst surface a slightly stale
   event in a dump (each slot holds either [None] or one complete
   event, never a partial one).  The ring is dumped to a self-contained
   JSON file automatically when a fault fires ([trigger], wired into
   [Injector]) and when the process dies (at_exit / uncaught-exception
   handler at the bottom of this file). *)
module Recorder = struct
  type event = {
    ev_seq : int;  (* global claim order *)
    ev_ns : int;  (* nanoseconds since the trace epoch *)
    ev_dom : int;  (* recording domain *)
    ev_kind : string;
    ev_detail : (string * Json.t) list;
  }

  let default_capacity = 1024
  let ring : event option array Atomic.t = Atomic.make (Array.make default_capacity None)
  let cursor = Atomic.make 0

  let recording () = Atomic.get recorder_flag
  let capacity () = Array.length (Atomic.get ring)

  let set_capacity n =
    if n < 1 then invalid_arg "Obs.Recorder: capacity must be >= 1";
    Atomic.set ring (Array.make n None);
    Atomic.set cursor 0

  let clear () =
    Atomic.set ring (Array.make (capacity ()) None);
    Atomic.set cursor 0

  (* Armed dump path + post-mortem state.  [dirty] is set by every
     [note] so an exit-time [flush] rewrites the file with the final
     ring; [fired] makes the first fault after [arm] write immediately
     (the dump survives even a later hard crash). *)
  let dump_path : string option Atomic.t =
    Atomic.make
      (match Sys.getenv_opt "MYCELIUM_RECORDER_DUMP" with
      | Some p when not (String.equal p "") -> Some p
      | Some _ | None -> None)

  let dirty = Atomic.make false
  let fired = Atomic.make false

  let enable ?capacity () =
    (match capacity with Some n -> set_capacity n | None -> ());
    Atomic.set recorder_flag true;
    refresh_live ()

  let disable () =
    Atomic.set recorder_flag false;
    refresh_live ()

  let note ?(detail = []) kind =
    if Atomic.get recorder_flag then begin
      let r = Atomic.get ring in
      let seq = Atomic.fetch_and_add cursor 1 in
      r.(seq mod Array.length r) <-
        Some
          {
            ev_seq = seq;
            ev_ns = elapsed_ns ();
            ev_dom = (Domain.self () :> int);
            ev_kind = kind;
            ev_detail = detail;
          };
      Atomic.set dirty true
    end

  let events () =
    let r = Atomic.get ring in
    Array.to_list r
    |> List.filter_map Fun.id
    |> List.sort (fun a b -> Int.compare a.ev_seq b.ev_seq)

  let recorded () = Atomic.get cursor

  let event_json e =
    Json.Obj
      [
        ("seq", Json.Int e.ev_seq);
        ("ns", Json.Int e.ev_ns);
        ("dom", Json.Int e.ev_dom);
        ("kind", Json.Str e.ev_kind);
        ("detail", Json.Obj e.ev_detail);
      ]

  let to_json () =
    let total = Atomic.get cursor in
    Json.Obj
      [
        ("schema", Json.Str "mycelium-flight/1");
        ("capacity", Json.Int (capacity ()));
        ("recorded", Json.Int total);
        ("dropped", Json.Int (max 0 (total - capacity ())));
        ("events", Json.List (List.map event_json (events ())));
      ]

  let dump_string () = Json.to_string (to_json ())

  let write path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Json.to_channel oc (to_json ()))

  let arm path =
    Atomic.set dump_path (Some path);
    Atomic.set fired false;
    Atomic.set dirty false

  let disarm () = Atomic.set dump_path None

  (* Dump failures must never mask the fault that triggered them. *)
  let try_write p = try write p with Sys_error _ -> ()

  let flush () =
    match Atomic.get dump_path with
    | Some p when Atomic.get dirty ->
      Atomic.set dirty false;
      try_write p
    | Some _ | None -> ()

  let trigger () =
    if Atomic.get recorder_flag then begin
      Atomic.set dirty true;
      match Atomic.get dump_path with
      | Some p when Atomic.compare_and_set fired false true ->
        Atomic.set dirty false;
        try_write p
      | Some _ | None -> ()
    end
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_attrs : (string * Json.t) list;
  sp_dom : int;  (* numeric domain id *)
  sp_depth : int;  (* nesting depth within its domain at start *)
  sp_seq : int;  (* per-domain start order *)
  sp_start : float;  (* seconds since trace epoch *)
  mutable sp_end : float;  (* NaN while still open *)
}

type dbuf = {
  dom_id : int;
  mutable items : span array;
  mutable len : int;
  mutable depth : int;
  mutable seq : int;
}

let registry : dbuf list ref = ref []
let registry_mutex = Mutex.create ()

let dbuf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom_id = (Domain.self () :> int); items = [||]; len = 0; depth = 0; seq = 0 }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let my_buf () = Domain.DLS.get dbuf_key

let push b sp =
  if b.len = Array.length b.items then begin
    let cap = max 64 (2 * Array.length b.items) in
    let items = Array.make cap sp in
    Array.blit b.items 0 items 0 b.len;
    b.items <- items
  end;
  b.items.(b.len) <- sp;
  b.len <- b.len + 1

let record_enter name attrs =
  let b = my_buf () in
  let sp =
    {
      sp_name = name;
      sp_attrs = attrs;
      sp_dom = b.dom_id;
      sp_depth = b.depth;
      sp_seq = b.seq;
      sp_start = now () -. Atomic.get epoch;
      sp_end = Float.nan;
    }
  in
  push b sp;
  b.seq <- b.seq + 1;
  b.depth <- b.depth + 1;
  (b, sp)

let record_exit (b, sp) =
  b.depth <- b.depth - 1;
  sp.sp_end <- now () -. Atomic.get epoch

let span_slow attrs name f =
  let tracing = Atomic.get enabled_flag in
  let recording = Recorder.recording () in
  if recording then Recorder.note ~detail:[ ("name", Json.Str name) ] "span.open";
  let t0 = if recording then now () else 0. in
  let open_sp = if tracing then Some (record_enter name attrs) else None in
  Fun.protect
    ~finally:(fun () ->
      (match open_sp with Some o -> record_exit o | None -> ());
      if recording then
        Recorder.note
          ~detail:
            [ ("name", Json.Str name); ("ms", Json.Num ((now () -. t0) *. 1e3)) ]
          "span.close")
    f

let span ?(attrs = []) name f =
  if not (Atomic.get live_flag) then f () else span_slow attrs name f

(* Hot-op sampling: record one span for every [every]-th call through
   the sampler; all other calls (and every call while disabled) just
   run [f].  The counter only advances while tracing is on, so the
   disabled path stays a branch.  Sampled hot-op spans are trace-only:
   they never land in the flight recorder. *)
type sampler = { every : int; calls : int Atomic.t }

let sampler ~every =
  if every < 1 then invalid_arg "Obs.sampler: every must be >= 1";
  { every; calls = Atomic.make 0 }

let sampled_span s ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let k = Atomic.fetch_and_add s.calls 1 in
    if k mod s.every = 0 then begin
      let open_sp = record_enter name attrs in
      Fun.protect ~finally:(fun () -> record_exit open_sp) f
    end
    else f ()
  end

let all_spans () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let out =
    List.concat_map (fun b -> Array.to_list (Array.sub b.items 0 b.len)) bufs
  in
  List.sort
    (fun a b ->
      match Float.compare a.sp_start b.sp_start with
      | 0 -> (
        match Int.compare a.sp_dom b.sp_dom with
        | 0 -> Int.compare a.sp_seq b.sp_seq
        | c -> c)
      | c -> c)
    out

let span_count () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left (fun acc b -> acc + b.len) 0 bufs

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = { c_name : string; c : int Atomic.t }
  type gauge = { g_name : string; g : float Atomic.t }

  type histogram = {
    h_name : string;
    bounds : float array;  (* ascending upper bounds; +inf implicit *)
    counts : int Atomic.t array;  (* length = bounds + 1 (overflow) *)
    h_sum : float Atomic.t;
  }

  type metric = C of counter | G of gauge | H of histogram

  let table : (string, metric) Hashtbl.t = Hashtbl.create 64
  let table_mutex = Mutex.create ()

  let register name mk =
    Mutex.lock table_mutex;
    let m =
      match Hashtbl.find_opt table name with
      | Some m -> m
      | None ->
        let m = mk () in
        Hashtbl.replace table name m;
        m
    in
    Mutex.unlock table_mutex;
    m

  let counter name =
    match register name (fun () -> C { c_name = name; c = Atomic.make 0 }) with
    | C c -> c
    | G _ | H _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " registered with another kind")

  let gauge name =
    match register name (fun () -> G { g_name = name; g = Atomic.make 0. }) with
    | G g -> g
    | C _ | H _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " registered with another kind")

  (* Default buckets: powers of two from 1 to 2^20 — generic enough for
     counts and for microsecond-scale durations expressed in us. *)
  let default_buckets = Array.init 21 (fun i -> Float.of_int (1 lsl i))

  let histogram ?(buckets = default_buckets) name =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.Metrics.histogram: buckets must be strictly ascending")
      buckets;
    match
      register name (fun () ->
          H
            {
              h_name = name;
              bounds = Array.copy buckets;
              counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              h_sum = Atomic.make 0.;
            })
    with
    | H h -> h
    | C _ | G _ -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " registered with another kind")

  let incr c = if Atomic.get enabled_flag then Atomic.incr c.c
  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c n)
  let value c = Atomic.get c.c

  let set g v = if Atomic.get enabled_flag then Atomic.set g.g v
  let gauge_value g = Atomic.get g.g

  (* First bucket whose upper bound is >= v; the last slot is the
     overflow bucket. *)
  let bucket_index h v =
    let n = Array.length h.bounds in
    let rec go i = if i >= n then n else if v <= h.bounds.(i) then i else go (i + 1) in
    go 0

  let rec atomic_add_float a x =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

  let observe h v =
    if Atomic.get enabled_flag then begin
      Atomic.incr h.counts.(bucket_index h v);
      atomic_add_float h.h_sum v
    end

  let histogram_counts h = Array.map Atomic.get h.counts
  let histogram_sum h = Atomic.get h.h_sum
  let histogram_count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

  let reset_values () =
    Mutex.lock table_mutex;
    (* lint: allow determinism — per-entry reset is order-insensitive *)
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c -> Atomic.set c.c 0
        | G g -> Atomic.set g.g 0.
        | H h ->
          Array.iter (fun c -> Atomic.set c 0) h.counts;
          Atomic.set h.h_sum 0.)
      table;
    Mutex.unlock table_mutex

  let sorted_metrics () =
    Mutex.lock table_mutex;
    (* lint: allow determinism — fold order is erased by the sort below *)
    let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [] in
    Mutex.unlock table_mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

  let to_json () =
    let entry = function
      | C c -> Json.Int (value c)
      | G g -> Json.Num (gauge_value g)
      | H h ->
        Json.Obj
          [
            ("count", Json.Int (histogram_count h));
            ("sum", Json.Num (histogram_sum h));
            ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Num b) h.bounds)));
            ( "counts",
              Json.List
                (Array.to_list (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts)) );
          ]
    in
    Json.Obj (List.map (fun (name, m) -> (name, entry m)) (sorted_metrics ()))

  let to_table () =
    let buf = Buffer.create 512 in
    List.iter
      (fun (name, m) ->
        match m with
        | C c ->
          if value c <> 0 then Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name (value c))
        | G g ->
          if not (Float.equal (gauge_value g) 0.) then
            Buffer.add_string buf (Printf.sprintf "  %-40s %.3f\n" name (gauge_value g))
        | H h ->
          if histogram_count h <> 0 then
            Buffer.add_string buf
              (Printf.sprintf "  %-40s count=%d sum=%.3f mean=%.3f\n" name
                 (histogram_count h) (histogram_sum h)
                 (histogram_sum h /. float_of_int (histogram_count h))))
      (sorted_metrics ());
    if Buffer.length buf = 0 then "  (no metrics recorded)\n" else Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Time series                                                         *)
(* ------------------------------------------------------------------ *)

(* Fixed-capacity rings of (ns-since-epoch, value) points, one per
   registered series.  The writer is normally the sampler thread; a
   per-series mutex keeps snapshots coherent without touching any
   instrumented hot path (no library code records points inline). *)
module Timeseries = struct
  type series = {
    s_name : string;
    s_cap : int;
    s_ts : int array;
    s_vs : float array;
    mutable s_total : int;  (* points ever recorded *)
    s_mu : Mutex.t;
  }

  let default_capacity = 240
  let table : (string, series) Hashtbl.t = Hashtbl.create 32
  let table_mutex = Mutex.create ()

  let register ?(capacity = default_capacity) name =
    if capacity < 1 then invalid_arg "Obs.Timeseries.register: capacity must be >= 1";
    Mutex.lock table_mutex;
    let s =
      match Hashtbl.find_opt table name with
      | Some s -> s
      | None ->
        let s =
          {
            s_name = name;
            s_cap = capacity;
            s_ts = Array.make capacity 0;
            s_vs = Array.make capacity 0.;
            s_total = 0;
            s_mu = Mutex.create ();
          }
        in
        Hashtbl.replace table name s;
        s
    in
    Mutex.unlock table_mutex;
    s

  let name s = s.s_name
  let capacity s = s.s_cap

  let record s v =
    let ns = elapsed_ns () in
    Mutex.lock s.s_mu;
    let i = s.s_total mod s.s_cap in
    s.s_ts.(i) <- ns;
    s.s_vs.(i) <- v;
    s.s_total <- s.s_total + 1;
    Mutex.unlock s.s_mu

  let total s =
    Mutex.lock s.s_mu;
    let t = s.s_total in
    Mutex.unlock s.s_mu;
    t

  (* Oldest-first snapshot of the ring's live window. *)
  let points s =
    Mutex.lock s.s_mu;
    let kept = min s.s_total s.s_cap in
    let first = s.s_total - kept in
    let out =
      Array.init kept (fun k ->
          let i = (first + k) mod s.s_cap in
          (s.s_ts.(i), s.s_vs.(i)))
    in
    Mutex.unlock s.s_mu;
    out

  let last s =
    Mutex.lock s.s_mu;
    let r =
      if s.s_total = 0 then None
      else begin
        let i = (s.s_total - 1) mod s.s_cap in
        Some (s.s_ts.(i), s.s_vs.(i))
      end
    in
    Mutex.unlock s.s_mu;
    r

  let sorted_series () =
    Mutex.lock table_mutex;
    (* lint: allow determinism — fold order is erased by the sort below *)
    let all = Hashtbl.fold (fun name s acc -> (name, s) :: acc) table [] in
    Mutex.unlock table_mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

  let reset_values () =
    Mutex.lock table_mutex;
    (* lint: allow determinism — per-entry reset is order-insensitive *)
    Hashtbl.iter
      (fun _ s ->
        Mutex.lock s.s_mu;
        s.s_total <- 0;
        Mutex.unlock s.s_mu)
      table;
    Mutex.unlock table_mutex

  let to_json () =
    Json.Obj
      (List.map
         (fun (name, s) ->
           let pts = points s in
           ( name,
             Json.Obj
               [
                 ("capacity", Json.Int s.s_cap);
                 ("total", Json.Int (total s));
                 ( "points",
                   Json.List
                     (Array.to_list
                        (Array.map
                           (fun (ns, v) -> Json.List [ Json.Int ns; Json.Num v ])
                           pts)) );
               ] ))
         (sorted_series ()))
end

(* ------------------------------------------------------------------ *)
(* Background sampler                                                  *)
(* ------------------------------------------------------------------ *)

(* One ticker thread (off by default) that appends a point per
   registered series every period: Gc.quick_stat built-ins plus any
   registered sources (the pool, each live mixnet simulator and each
   fault injector register one).  Instrumented code pays nothing for
   the sampler — it runs entirely on its own thread — and sources only
   read shared state, so results stay byte-identical with it on. *)
module Sampler = struct
  let running = Atomic.make false
  let period = Atomic.make 0.01
  let ticks = Atomic.make 0

  let sources : (string * (unit -> (string * float) list)) list ref = ref []
  let sources_mu = Mutex.create ()

  let register_source ~name f =
    Mutex.lock sources_mu;
    sources := (name, f) :: List.filter (fun (n, _) -> not (String.equal n name)) !sources;
    Mutex.unlock sources_mu

  let source_names () =
    Mutex.lock sources_mu;
    let names = List.map fst !sources in
    Mutex.unlock sources_mu;
    List.sort String.compare names

  let record name v = Timeseries.record (Timeseries.register name) v

  let sample_once () =
    let s = Gc.quick_stat () in
    record Names.gc_top_heap_words (float_of_int s.Gc.top_heap_words);
    record Names.gc_heap_words (float_of_int s.Gc.heap_words);
    record Names.gc_minor_collections (float_of_int s.Gc.minor_collections);
    record Names.gc_major_collections (float_of_int s.Gc.major_collections);
    record Names.gc_promoted_words s.Gc.promoted_words;
    Mutex.lock sources_mu;
    let srcs = !sources in
    Mutex.unlock sources_mu;
    List.iter
      (fun (_, f) ->
        (* A failing source must never take the process down: telemetry
           is strictly best-effort. *)
        match f () with
        | pairs -> List.iter (fun (n, v) -> record n v) pairs
        | exception _ -> ())
      srcs;
    Atomic.incr ticks

  let worker : Thread.t option ref = ref None
  let worker_mu = Mutex.create ()

  let rec loop () =
    if Atomic.get running then begin
      sample_once ();
      Thread.delay (Atomic.get period);
      loop ()
    end

  let start ?(period_s = 0.01) () =
    if period_s <= 0. then invalid_arg "Obs.Sampler.start: period must be positive";
    if Atomic.compare_and_set running false true then begin
      Atomic.set period period_s;
      Mutex.lock worker_mu;
      worker := Some (Thread.create loop ());
      Mutex.unlock worker_mu
    end

  let stop () =
    if Atomic.compare_and_set running true false then begin
      Mutex.lock worker_mu;
      let t = !worker in
      worker := None;
      Mutex.unlock worker_mu;
      Option.iter Thread.join t
    end

  let active () = Atomic.get running
  let tick_count () = Atomic.get ticks
end

(* ------------------------------------------------------------------ *)
(* Reset / scoping                                                     *)
(* ------------------------------------------------------------------ *)

(* Clear every recorded span, metric value and time-series window
   (registrations survive; the flight-recorder ring is left alone — it
   is a post-mortem artifact cleared explicitly via [Recorder.clear]).
   Must only be called while no instrumented parallel work is in
   flight. *)
let reset () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun b ->
      b.items <- [||];
      b.len <- 0;
      b.depth <- 0;
      b.seq <- 0)
    bufs;
  Metrics.reset_values ();
  Timeseries.reset_values ();
  Atomic.set epoch (now ())

let with_enabled f =
  let was = Atomic.get enabled_flag in
  enable ();
  Fun.protect ~finally:(fun () -> if not was then disable ()) f

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let duration_s sp = if Float.is_nan sp.sp_end then 0. else Float.max 0. (sp.sp_end -. sp.sp_start)

(* Pretty console tree: spans grouped by domain, indented by nesting
   depth, in start order. *)
let console_tree () =
  let buf = Buffer.create 1024 in
  let spans = all_spans () in
  let doms = List.sort_uniq Int.compare (List.map (fun sp -> sp.sp_dom) spans) in
  Buffer.add_string buf
    (Printf.sprintf "=== trace: %d spans across %d domain(s) ===\n" (List.length spans)
       (List.length doms));
  List.iter
    (fun dom ->
      Buffer.add_string buf (Printf.sprintf "[domain %d]\n" dom);
      let mine =
        List.filter (fun sp -> sp.sp_dom = dom) spans
        |> List.sort (fun a b -> Int.compare a.sp_seq b.sp_seq)
      in
      List.iter
        (fun sp ->
          let indent = String.make (2 + (2 * sp.sp_depth)) ' ' in
          let attrs =
            match sp.sp_attrs with
            | [] -> ""
            | kvs ->
              "  {"
              ^ String.concat ", "
                  (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) kvs)
              ^ "}"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%-28s %10.3f ms%s\n" indent sp.sp_name
               (duration_s sp *. 1e3) attrs))
        mine)
    doms;
  Buffer.contents buf

(* Chrome trace_event JSON, loadable in about://tracing or Perfetto:
   one complete ("X") event per span, ts/dur in microseconds, tid = the
   recording domain. *)
let span_event sp =
  Json.Obj
    [
      ("name", Json.Str sp.sp_name);
      ("cat", Json.Str "mycelium");
      ("ph", Json.Str "X");
      ("ts", Json.Num (sp.sp_start *. 1e6));
      ("dur", Json.Num (duration_s sp *. 1e6));
      ("pid", Json.Int 0);
      ("tid", Json.Int sp.sp_dom);
      ("args", Json.Obj sp.sp_attrs);
    ]

let chrome_trace () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map span_event (all_spans ())));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("tool", Json.Str "mycelium-obs") ]);
    ]

(* Streamed writer: one event is rendered at a time through a reused
   scratch buffer, so a 10^6-device trace never materializes as one
   string.  The string API below is a thin wrapper over the same
   stream. *)
let chrome_trace_stream emit =
  emit "{\"traceEvents\":[";
  let scratch = Buffer.create 256 in
  List.iteri
    (fun i sp ->
      if i > 0 then emit ",";
      Buffer.clear scratch;
      Json.to_buf scratch (span_event sp);
      emit (Buffer.contents scratch))
    (all_spans ());
  emit "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"mycelium-obs\"}}"

let chrome_trace_to_channel oc = chrome_trace_stream (output_string oc)

let chrome_trace_string () =
  let buf = Buffer.create 4096 in
  chrome_trace_stream (Buffer.add_string buf);
  Buffer.contents buf

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> chrome_trace_to_channel oc)

let metrics_json = Metrics.to_json
let metrics_table = Metrics.to_table
let timeseries_json = Timeseries.to_json

let telemetry_json () =
  Json.Obj [ ("metrics", metrics_json ()); ("timeseries", timeseries_json ()) ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* One snapshot in the text exposition format: every metric as its own
   family (dots mangled to underscores under a [mycelium_] prefix,
   histograms with cumulative [le] buckets), and the latest point of
   every time series as one [mycelium_timeseries] gauge family keyed by
   a [series] label. *)
let prometheus_name name =
  let b = Bytes.of_string ("mycelium_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let prometheus_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus_stream emit =
  let line fmt = Printf.ksprintf (fun s -> emit s; emit "\n") fmt in
  List.iter
    (fun (name, m) ->
      let p = prometheus_name name in
      match m with
      | Metrics.C c ->
        line "# TYPE %s counter" p;
        line "%s %d" p (Metrics.value c)
      | Metrics.G g ->
        line "# TYPE %s gauge" p;
        line "%s %s" p (prometheus_num (Metrics.gauge_value g))
      | Metrics.H h ->
        line "# TYPE %s histogram" p;
        let counts = Metrics.histogram_counts h in
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            if i < Array.length counts - 1 then
              line "%s_bucket{le=\"%s\"} %d" p
                (prometheus_num h.Metrics.bounds.(i))
                !cum)
          counts;
        line "%s_bucket{le=\"+Inf\"} %d" p !cum;
        line "%s_sum %s" p (prometheus_num (Metrics.histogram_sum h));
        line "%s_count %d" p !cum)
    (Metrics.sorted_metrics ());
  let series = Timeseries.sorted_series () in
  let live =
    List.filter (fun (_, s) -> Option.is_some (Timeseries.last s)) series
  in
  match live with
  | [] -> ()
  | _ :: _ ->
    line "# TYPE mycelium_timeseries gauge";
    List.iter
      (fun (name, s) ->
        match Timeseries.last s with
        | Some (_, v) -> line "mycelium_timeseries{series=\"%s\"} %s" name (prometheus_num v)
        | None -> ())
      live

let prometheus_to_channel oc = prometheus_stream (output_string oc)

let prometheus_string () =
  let buf = Buffer.create 2048 in
  prometheus_stream (Buffer.add_string buf);
  Buffer.contents buf

let write_prometheus path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> prometheus_to_channel oc)

(* ------------------------------------------------------------------ *)
(* Audit ledger                                                        *)
(* ------------------------------------------------------------------ *)

(* Append-only JSONL: one self-contained record per runtime query,
   flushed per line so a crash loses at most the in-flight record.  The
   reading side (the [mycelium audit] verb and tests) parses and
   summarizes cumulative per-user budget spend. *)
module Ledger = struct
  type t = { l_path : string; oc : out_channel; mu : Mutex.t }

  let open_ path =
    {
      l_path = path;
      oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path;
      mu = Mutex.create ();
    }

  let path t = t.l_path

  let append t j =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        Json.to_channel t.oc j;
        output_char t.oc '\n';
        flush t.oc)

  let close t = close_out t.oc

  let read path =
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line ->
              if String.equal (String.trim line) "" then go (lineno + 1) acc
              else begin
                match Json.parse line with
                | Ok j -> go (lineno + 1) (j :: acc)
                | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
              end
          in
          go 1 [])

  type summary = {
    records : int;
    ok : int;
    rejected : int;
    errored : int;
    epsilon_spent : float;  (* sum of charged per-query epsilons *)
    uncharged : int;  (* infinite-epsilon (uncharged) queries *)
    by_name : (string * int * float) list;  (* query name, runs, epsilon *)
    budget_total : float option;
    budget_remaining : float option;
  }

  let num_of = function Json.Num f -> Some f | Json.Int i -> Some (float_of_int i) | _ -> None

  let summarize entries =
    let records = List.length entries in
    let ok = ref 0 and rejected = ref 0 and errored = ref 0 in
    let spent = ref 0. in
    let uncharged = ref 0 in
    let by_name : (string, int * float) Hashtbl.t = Hashtbl.create 8 in
    let name_order = ref [] in
    let budget_total = ref None and budget_remaining = ref None in
    List.iter
      (fun e ->
        (match Json.member "status" e with
        | Some (Json.Str "ok") -> incr ok
        | Some (Json.Str "rejected") -> incr rejected
        | Some _ | None -> incr errored);
        let charged =
          match Json.member "charged" e with Some (Json.Bool b) -> b | _ -> false
        in
        let eps =
          match Option.bind (Json.member "epsilon" e) num_of with
          | Some f -> f
          | None -> 0.
        in
        if charged then spent := !spent +. eps
        else if
          match Json.member "status" e with Some (Json.Str "ok") -> true | _ -> false
        then incr uncharged;
        (match Json.member "name" e with
        | Some (Json.Str name) ->
          let n, s =
            match Hashtbl.find_opt by_name name with Some p -> p | None -> (0, 0.)
          in
          if n = 0 then name_order := name :: !name_order;
          Hashtbl.replace by_name name (n + 1, s +. (if charged then eps else 0.))
        | Some _ | None -> ());
        (match Option.bind (Json.member "budget_total" e) num_of with
        | Some f -> budget_total := Some f
        | None -> ());
        match Option.bind (Json.member "budget_remaining" e) num_of with
        | Some f -> budget_remaining := Some f
        | None -> ())
      entries;
    {
      records;
      ok = !ok;
      rejected = !rejected;
      errored = !errored;
      epsilon_spent = !spent;
      uncharged = !uncharged;
      by_name =
        List.rev_map
          (fun name ->
            let n, s = Hashtbl.find by_name name in
            (name, n, s))
          !name_order;
      budget_total = !budget_total;
      budget_remaining = !budget_remaining;
    }
end

(* ------------------------------------------------------------------ *)
(* Process hooks                                                       *)
(* ------------------------------------------------------------------ *)

(* Flight-recorder dumps survive process death: the armed dump file is
   rewritten from the final ring at exit, and an uncaught exception is
   recorded as its own event before the default handler prints it.
   Both are no-ops unless the recorder ran with a dump path armed. *)
let () =
  at_exit (fun () ->
      Sampler.stop ();
      Recorder.flush ());
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      Recorder.note ~detail:[ ("exn", Json.Str (Printexc.to_string exn)) ]
        "process.uncaught";
      Recorder.trigger ();
      Recorder.flush ();
      Printexc.default_uncaught_exception_handler exn bt)

(* MYCELIUM_SAMPLE_MS=<n> starts the background sampler at startup. *)
let () =
  match Sys.getenv_opt "MYCELIUM_SAMPLE_MS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some ms when ms > 0 -> Sampler.start ~period_s:(float_of_int ms /. 1000.) ()
    | Some _ | None -> ())
  | None -> ()
