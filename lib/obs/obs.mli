(** Structured tracing, metrics and continuous telemetry for the query
    pipeline (DESIGN.md §8 and §13).

    {b The overhead contract.}  Every instrumentation point —
    [span], [sampled_span], and each [Metrics] update — starts with a
    single load of one atomic flag and a conditional branch.  While the
    relevant subsystem is disabled nothing else happens: no allocation,
    no clock read, no atomic write.  [span] checks a derived flag that
    is on when tracing {e or} the flight recorder is on; metric updates
    and [sampled_span] check the tracing flag; [Recorder.note] checks
    the recorder flag.  The background [Sampler] runs on its own thread
    and adds zero work to instrumented code.  The flags are write-once
    configuration ([MYCELIUM_TRACE] / [MYCELIUM_RECORDER] /
    [MYCELIUM_SAMPLE_MS] at startup, or the corresponding enable
    functions before a run); they are never flipped mid-phase.

    {b Domain safety.}  Spans are recorded into a per-domain buffer
    reached through [Domain.DLS]; recording takes no lock (a global
    registry mutex is touched once per domain, on its first span), so
    instrumented code is safe inside [Pool] workers.  Metrics are
    shared [Atomic] cells, the flight recorder is a lock-free ring.
    Exporters ([console_tree], [chrome_trace], [metrics_json], the
    Prometheus dump) read every domain's buffer and must only be
    called while no instrumented parallel work is in flight.

    {b Determinism.}  Observability never draws from an [Rng.t] and
    never feeds back into computation: query results, DP noise and
    degradation reports are byte-identical with tracing, recorder and
    sampler on or off.  Timestamps exist only in exported traces,
    never in results. *)

(** Minimal JSON — the one encoder (and parser) in the tree; the bench
    harness, the exporters, the flight recorder and the audit ledger
    share it. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val equal : t -> t -> bool
  (** Structural equality; [Num] compares with [Float.equal] (so [nan]
      equals [nan]) and object fields compare in order. *)

  val to_buf : Buffer.t -> t -> unit
  val to_string : t -> string

  val to_channel : out_channel -> t -> unit
  (** Stream the document to a channel without materializing it as one
      string; peak allocation is a single escaped string. *)

  val max_depth : int
  (** Maximum container nesting [parse] accepts (deeper input is an
      [Error], not a stack overflow). *)

  val parse : string -> (t, string) result
  (** Strict parser covering everything [to_string] emits; used by the
      exporter round-trip tests and the ledger / flight-recorder
      readers.  [\uXXXX] escapes decode to UTF-8; surrogate pairs
      combine into one code point, and lone or misordered surrogates
      are rejected. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k], if any. *)
end

(** {1 The switch} *)

val enabled : unit -> bool
val enable : unit -> unit
(** Turn tracing on (idempotent); resets the trace epoch on the
    off->on edge.  Honoured automatically when [MYCELIUM_TRACE] is set
    to [1]/[true]/[on]/[yes] at startup. *)

val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run with tracing forced on, restoring the previous state after. *)

val reset : unit -> unit
(** Clear all recorded spans, metric values and time-series windows
    (registrations survive; the flight-recorder ring is kept — clear it
    with [Recorder.clear]) and restart the trace epoch.  Only call
    while no instrumented parallel work is in flight. *)

val now_s : unit -> float
(** Seconds since the trace epoch (wall clock; diagnostic only — never
    feed this into results). *)

(** {1 Metric-name registry} *)

(** Every metric / time-series name used by library code, in one
    module: registrations in [lib/] and [bin/] must draw names from
    here (enforced by mycelium-lint's obs-guard rule); bench and test
    executables may register ad-hoc names. *)
module Names : sig
  val rq_limb_ntt_muls : string
  val rq_limb_transforms : string
  val bgv_encrypts : string
  val bgv_ciphertext_muls : string
  val bgv_relinearizations : string
  val pool_chunks_run : string
  val pool_task_exceptions : string
  val pool_domains : string
  val pool_tasks_run : string
  val pool_exceptions_caught : string
  val faults_substituted_contributions : string
  val faults_dropped_messages : string
  val faults_delayed_messages : string
  val faults_channel_retries : string
  val faults_backoff_units : string
  val faults_excluded_committee_members : string
  val faults_forged_rejected : string
  val faults_aggregator_restarts : string
  val faults_decryption_attempts : string
  val mixnet_deposited_bytes : string
  val onion_layers_peeled : string
  val mixnet_dummies_uploaded : string
  val mixnet_anonymity_set : string
  val mixnet_established_paths : string
  val mixnet_arena_bytes : string
  val mixnet_key_bytes : string
  val mixnet_route_entries : string
  val mixnet_mailboxes_in_use : string
  val serve_admitted : string
  val serve_rejected : string
  val serve_batches : string
  val serve_batch_members : string
  val serve_cache_hits : string
  val serve_cache_misses : string
  val serve_cache_evictions : string
  val gc_top_heap_words : string
  val gc_heap_words : string
  val gc_minor_collections : string
  val gc_major_collections : string
  val gc_promoted_words : string

  val all : string list
  (** Every name above, for docs and exhaustiveness tests. *)
end

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_attrs : (string * Json.t) list;
  sp_dom : int;  (** recording domain's numeric id *)
  sp_depth : int;  (** nesting depth within that domain *)
  sp_seq : int;  (** per-domain start order *)
  sp_start : float;  (** seconds since the trace epoch *)
  mutable sp_end : float;  (** NaN while the span is still open *)
}

val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a hierarchical span around it
    when tracing is enabled and a [span.open]/[span.close] event pair
    in the flight recorder when that is enabled.  Exceptions propagate;
    the span is closed either way. *)

type sampler

val sampler : every:int -> sampler
(** A call counter for hot operations: used with [sampled_span] to
    record one span per [every] calls instead of one per call. *)

val sampled_span : sampler -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Trace-only (hot-op spans never land in the flight recorder). *)

val all_spans : unit -> span list
(** Every recorded span, sorted by start time. *)

val span_count : unit -> int

(** {1 Metrics} *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Registry lookup-or-create; a name is bound to one metric kind
      for the process lifetime.  Library code must pass a [Names]
      constant (obs-guard enforces this). *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val default_buckets : float array
  (** Powers of two from 1 to 2^20. *)

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are strictly ascending upper bounds; one overflow
      bucket is added past the last bound. *)

  val observe : histogram -> float -> unit
  val bucket_index : histogram -> float -> int
  (** Index of the bucket [observe] would count [v] in: the first
      bucket whose upper bound is [>= v], or the overflow index
      [Array.length buckets]. *)

  val histogram_counts : histogram -> int array
  val histogram_sum : histogram -> float
  val histogram_count : histogram -> int

  val to_json : unit -> Json.t
  val to_table : unit -> string
end

(** {1 Time series} *)

(** Fixed-capacity rings of [(ns-since-epoch, value)] points, one per
    registered series; the background [Sampler] is the usual writer. *)
module Timeseries : sig
  type series

  val default_capacity : int
  (** 240 points per ring unless overridden. *)

  val register : ?capacity:int -> string -> series
  (** Lookup-or-create; [capacity] only applies on first registration. *)

  val name : series -> string
  val capacity : series -> int

  val record : series -> float -> unit
  (** Append a point stamped with the current ns-since-epoch, evicting
      the oldest point once the ring is full. *)

  val points : series -> (int * float) array
  (** Oldest-first snapshot of the live window. *)

  val last : series -> (int * float) option
  val total : series -> int
  (** Points ever recorded (>= the window length). *)

  val to_json : unit -> Json.t
  (** Every series: capacity, total, and the live window. *)
end

(** {1 Background sampler} *)

(** One ticker thread (off by default; [MYCELIUM_SAMPLE_MS=<n>] starts
    it at startup) appending a point per series every period:
    [Gc.quick_stat] built-ins plus registered sources (the pool, each
    live mixnet simulator, each fault injector).  Instrumented code
    pays nothing — sampling happens entirely on the ticker thread, and
    sources only read shared state. *)
module Sampler : sig
  val start : ?period_s:float -> unit -> unit
  (** Start the ticker (default period 10 ms); idempotent while
      running. *)

  val stop : unit -> unit
  (** Stop and join the ticker thread; idempotent. *)

  val active : unit -> bool

  val register_source : name:string -> (unit -> (string * float) list) -> unit
  (** Register (or replace, by [name]) a source polled once per tick;
      it returns [(series_name, value)] pairs.  Exceptions from a
      source are swallowed: telemetry is strictly best-effort. *)

  val source_names : unit -> string list

  val sample_once : unit -> unit
  (** Take one sample synchronously (used by tests and the CLI for a
      final snapshot). *)

  val tick_count : unit -> int
end

(** {1 Flight recorder} *)

(** A lock-free bounded ring of the last N structured events — span
    open/close, fault injections, retry/backoff decisions, threshold-
    decryption fallbacks — dumped to a self-contained JSON file when a
    fault fires ([trigger], wired into [Injector]) and when the process
    dies (at_exit / uncaught-exception handler).  Enable with
    [MYCELIUM_RECORDER=1]; arm the dump file with
    [MYCELIUM_RECORDER_DUMP=<path>] or [arm]. *)
module Recorder : sig
  type event = {
    ev_seq : int;  (** global claim order *)
    ev_ns : int;  (** nanoseconds since the trace epoch *)
    ev_dom : int;  (** recording domain *)
    ev_kind : string;
    ev_detail : (string * Json.t) list;
  }

  val default_capacity : int

  val enable : ?capacity:int -> unit -> unit
  (** Turn the recorder on; [capacity] (default 1024) resizes and
      clears the ring first. *)

  val disable : unit -> unit
  val recording : unit -> bool
  val capacity : unit -> int
  val clear : unit -> unit

  val note : ?detail:(string * Json.t) list -> string -> unit
  (** Record one event; a single flag load + branch while disabled. *)

  val arm : string -> unit
  (** Arm automatic dumps to the given path (resets the
      first-fault-writes-immediately latch). *)

  val disarm : unit -> unit

  val trigger : unit -> unit
  (** Signal that a fault fired: the first trigger after [arm] writes
      the dump immediately; later events are folded into the exit-time
      rewrite. *)

  val flush : unit -> unit
  (** Rewrite the armed dump from the current ring if anything was
      recorded since the last write. *)

  val events : unit -> event list
  (** Ring contents, oldest first. *)

  val recorded : unit -> int
  (** Events ever noted (>= ring length). *)

  val to_json : unit -> Json.t
  (** Self-contained dump: schema, capacity, recorded/dropped counts,
      events. *)

  val dump_string : unit -> string
  val write : string -> unit
end

(** {1 Audit ledger} *)

(** Append-only JSONL of per-query audit records (one line per runtime
    query, flushed per line).  [read]/[summarize] back the
    [mycelium audit] CLI verb. *)
module Ledger : sig
  (* lint: allow interface — a ledger handle owns an out_channel and a
     mutex; identity is the only meaningful equality *)
  type t

  val open_ : string -> t
  (** Open (append, create) a ledger file. *)

  val path : t -> string

  val append : t -> Json.t -> unit
  (** Write one record as a single line and flush. *)

  val close : t -> unit

  val read : string -> (Json.t list, string) result
  (** Parse every non-empty line; the first malformed line is an
      [Error] naming its line number. *)

  type summary = {
    records : int;
    ok : int;
    rejected : int;
    errored : int;
    epsilon_spent : float;  (** sum of charged per-query epsilons *)
    uncharged : int;  (** infinite-epsilon (uncharged) ok queries *)
    by_name : (string * int * float) list;
        (** query name, runs, epsilon charged — first-seen order *)
    budget_total : float option;  (** from the last record carrying it *)
    budget_remaining : float option;
  }

  val summarize : Json.t list -> summary
end

(** {1 Exporters} *)

val console_tree : unit -> string
(** Spans grouped by domain, indented by nesting depth. *)

val chrome_trace : unit -> Json.t
(** Chrome [trace_event] format (complete "X" events, ts/dur in
    microseconds, tid = recording domain) — loadable in
    [about://tracing] and Perfetto. *)

val chrome_trace_to_channel : out_channel -> unit
(** Stream the trace one event at a time — a 10^6-device trace never
    materializes as one string. *)

val chrome_trace_string : unit -> string
(** Thin wrapper over the streamed writer. *)

val write_chrome_trace : string -> unit

val metrics_json : unit -> Json.t
val metrics_table : unit -> string

val timeseries_json : unit -> Json.t
(** The [Timeseries] section on its own. *)

val telemetry_json : unit -> Json.t
(** [{ "metrics": …, "timeseries": … }]. *)

val prometheus_to_channel : out_channel -> unit
(** Prometheus text exposition: each metric as a [mycelium_]-prefixed
    family ([# TYPE] lines, cumulative [le] buckets for histograms) and
    the latest point of every time series as one
    [mycelium_timeseries{series="…"}] gauge family. *)

val prometheus_string : unit -> string
val write_prometheus : string -> unit
